//! Salary survey: private statistics over skewed, heavy-tailed income
//! data — the workload the paper's introduction motivates.
//!
//! Income data is log-normal-ish with occasional extreme outliers (a
//! founder's exit year). No analyst can honestly state an a-priori range
//! `[−R, R]` that is both valid and tight, which is exactly the setting
//! where the A1-dependent baselines break and the universal estimators
//! shine.
//!
//! ```text
//! cargo run --release --example salary_survey
//! ```

use updp::baselines::naive_clipped_mean;
use updp::core::rng;
use updp::dist::{ContinuousDistribution, LogNormal};
use updp::prelude::*;

fn main() -> Result<()> {
    let mut rng = rng::seeded(7);

    // Synthetic salary population: log-normal body (median ~65k) with a
    // 0.1% contamination of extreme comp packages.
    let body = LogNormal::new(11.08, 0.45).expect("valid parameters");
    let n = 100_000;
    let mut salaries = body.sample_vec(&mut rng, n);
    for i in 0..n / 1000 {
        salaries[i * 997 % n] = 5.0e7 + (i as f64) * 1.0e6; // outliers
    }

    let epsilon = Epsilon::new(0.5).expect("valid epsilon");
    let estimator = UniversalEstimator::new(epsilon);

    let mean = estimator.mean(&mut rng, &salaries)?;
    let iqr = estimator.iqr(&mut rng, &salaries)?;

    // Non-private truth for reference (the curator can see it).
    let true_mean = salaries.iter().sum::<f64>() / n as f64;
    let mut sorted = salaries.clone();
    sorted.sort_by(f64::total_cmp);
    let true_iqr = sorted[3 * n / 4 - 1] - sorted[n / 4 - 1];

    println!("salary survey, n = {n}, ε = {} per release", epsilon.get());
    println!("  universal private mean : {:>14.0}", mean.estimate);
    println!(
        "  empirical mean         : {:>14.0}  (outlier-inflated)",
        true_mean
    );
    println!("  universal private IQR  : {:>14.0}", iqr.estimate);
    println!("  empirical IQR          : {:>14.0}", true_iqr);
    println!(
        "  clipping range chosen  : [{:.0}, {:.0}] ({} records clipped)",
        mean.range.lo, mean.range.hi, mean.clipped
    );
    println!();

    // What the folklore baseline does with a guessed range. Guess too
    // small and the answer is pinned; guess defensively large and the
    // noise floor explodes.
    for r in [1.0e5, 1.0e9] {
        let naive = naive_clipped_mean(&mut rng, &salaries, r, epsilon)?;
        println!(
            "  naive clip with guessed R = {r:>9.0e}: {naive:>14.0}  (noise scale {:.0})",
            2.0 * r / (epsilon.get() * n as f64)
        );
    }
    println!();
    println!(
        "note: the universal mean tracks the clipped bulk (robust, like a trimmed mean),\n\
         while the naive baseline must either truncate the market or drown in noise."
    );
    Ok(())
}
