//! Sensor calibration: private variance estimation across unknown scales.
//!
//! A fleet of sensors reports readings whose noise level σ varies by six
//! orders of magnitude across device generations. Calibration needs each
//! cohort's variance, but the readings are privacy-sensitive (they embed
//! user location/behaviour). Prior pure-DP variance estimators need
//! `[σ_min, σ_max]` as input and pay for its width; the universal
//! estimator (Theorem 5.3) needs nothing and pays only `log log σ`.
//!
//! ```text
//! cargo run --release --example sensor_calibration
//! ```

use updp::core::rng;
use updp::dist::{ContinuousDistribution, Gaussian};
use updp::prelude::*;

fn main() -> Result<()> {
    let mut rng = rng::seeded(99);
    let epsilon = Epsilon::new(0.8).expect("valid epsilon");
    let estimator = UniversalEstimator::new(epsilon);

    println!("per-cohort private variance (ε = {} each):", epsilon.get());
    println!(
        "  {:>10}  {:>14}  {:>14}  {:>9}",
        "true σ", "true σ²", "private σ̃²", "rel err"
    );

    // Device generations with wildly different noise scales — and
    // different (irrelevant) baseline offsets.
    let cohorts = [
        ("gen-1", 2.5e-3, 1.2),
        ("gen-2", 4.0e-1, -3.8),
        ("gen-3", 1.7e1, 250.0),
        ("gen-4", 6.0e3, -1.0e6),
    ];

    for (name, sigma, offset) in cohorts {
        let dist = Gaussian::new(offset, sigma).expect("valid parameters");
        let readings = dist.sample_vec(&mut rng, 40_000);
        let var = estimator.variance(&mut rng, &readings)?;
        let truth = sigma * sigma;
        println!(
            "  {:>10}  {:>14.4e}  {:>14.4e}  {:>8.2}%   [{name}]",
            sigma,
            truth,
            var.estimate,
            100.0 * (var.estimate - truth).abs() / truth
        );
    }

    println!();
    println!(
        "the same code handled σ from 2.5e-3 to 6e3 with no σ_min/σ_max inputs;\n\
         a KV18-style baseline would need those bounds and pay log(σ_max/σ_min) in samples."
    );
    Ok(())
}
