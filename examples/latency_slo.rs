//! Latency SLO monitoring: private quantiles over heavy-tailed service
//! latencies using the empirical estimators directly.
//!
//! Request latencies are Pareto-tailed; operators want private medians
//! and tail quantiles per time window. This example drives the §3
//! empirical machinery (`InfiniteDomainQuantile` via its real-domain
//! wrapper) rather than the statistical facade, showing the lower-level
//! API a metrics pipeline would embed.
//!
//! ```text
//! cargo run --release --example latency_slo
//! ```

use updp::core::privacy::Epsilon;
use updp::core::rng;
use updp::dist::{ContinuousDistribution, Pareto};
use updp::empirical::discretize::real_quantile;

fn main() -> updp::core::Result<()> {
    let mut rng = rng::seeded(5150);
    // Latency model: 12ms floor with a Pareto tail (α = 1.8: infinite
    // variance — tail quantiles are the only meaningful statistics).
    let latency = Pareto::new(12.0, 1.8).expect("valid parameters");
    let n = 200_000;
    let window = latency.sample_vec(&mut rng, n);

    let epsilon = Epsilon::new(1.0).expect("valid epsilon");
    // Millisecond-resolution buckets: plenty for SLO reporting and far
    // below the rank-error granularity at this n.
    let bucket_ms = 0.1;

    println!(
        "private latency quantiles, n = {n}, ε = {} total",
        epsilon.get()
    );
    println!("  {:>6}  {:>12}  {:>12}", "q", "private (ms)", "true (ms)");

    let quantiles = [0.50, 0.90, 0.99];
    let shares = epsilon.split(&[1.0, 1.0, 1.0]);
    let mut sorted = window.clone();
    sorted.sort_by(f64::total_cmp);
    for (q, share) in quantiles.iter().zip(shares) {
        let tau = ((n as f64) * q) as usize;
        let private = real_quantile(&mut rng, &window, tau, bucket_ms, share, 0.05)?;
        let truth = sorted[tau - 1];
        println!(
            "  p{:<5}  {private:>12.2}  {truth:>12.2}",
            (q * 100.0) as u32
        );
    }

    println!();
    println!(
        "rank error is O(log(γ/b)/ε) ≈ {:.0} ranks out of {n} — the p99 of a window\n\
         this size is released almost exactly, with pure ε-DP and no latency cap configured.",
        (sorted[n - 1] / bucket_ms).ln() / epsilon.get() * 3.0
    );
    Ok(())
}
