//! Feature-vector means: the multivariate extension (§1.2) on
//! mixed-scale tabular features.
//!
//! A model-monitoring job wants the per-feature mean of production
//! inputs (age in years, income in dollars, a normalized score, a
//! millisecond timing) under one privacy budget. The features live at
//! completely different locations and scales — exactly what defeats any
//! single `[−R, R]` clipping configuration — and the coordinate-wise
//! universal estimator needs no per-feature tuning at all.
//!
//! ```text
//! cargo run --release --example feature_means
//! ```

use updp::core::rng;
use updp::dist::{ContinuousDistribution, Exponential, Gaussian, LogNormal};
use updp::prelude::*;
use updp::statistical::estimate_mean_multivariate;

fn main() -> Result<()> {
    let mut rng = rng::seeded(31337);

    // Four features with wildly different scales.
    let age = Gaussian::new(41.0, 12.0).expect("valid");
    let income = LogNormal::new(11.0, 0.5).expect("valid");
    let score = Gaussian::new(0.0, 1.0).expect("valid");
    let latency = Exponential::new(1.0 / 85.0).expect("valid"); // mean 85ms

    let n = 60_000;
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|_| {
            vec![
                age.sample(&mut rng),
                income.sample(&mut rng),
                score.sample(&mut rng),
                latency.sample(&mut rng),
            ]
        })
        .collect();

    let epsilon = Epsilon::new(2.0).expect("valid epsilon");
    let result = estimate_mean_multivariate(&mut rng, &rows, epsilon, 0.1)?;

    let names = ["age (years)", "income ($)", "score (z)", "latency (ms)"];
    let truths = [age.mean(), income.mean(), score.mean(), latency.mean()];
    println!(
        "multivariate universal mean, n = {n}, total ε = {} (ε/4 per feature):",
        epsilon.get()
    );
    println!(
        "  {:>14}  {:>12}  {:>12}  {:>22}",
        "feature", "private", "true", "range found privately"
    );
    for ((name, truth), coord) in names.iter().zip(truths).zip(&result.coordinates) {
        println!(
            "  {:>14}  {:>12.3}  {:>12.3}  [{:.1}, {:.1}]",
            name, coord.estimate, truth, coord.range.lo, coord.range.hi
        );
    }
    println!();
    println!(
        "each feature's clipping range was discovered privately at its own scale —\n\
         no single R could serve both the z-score (≈1) and the income (≈60k) column."
    );
    Ok(())
}
