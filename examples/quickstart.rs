//! Quickstart: estimate mean, variance, and IQR of unknown data under
//! pure ε-DP with zero prior knowledge.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use updp::core::rng;
use updp::dist::{ContinuousDistribution, Gaussian};
use updp::prelude::*;

fn main() -> Result<()> {
    // Pretend this is sensitive data we know nothing about: the analyst
    // has NOT been told the mean is ~37000 or the scale is ~250.
    let secret_distribution = Gaussian::new(37_000.0, 250.0).expect("valid parameters");
    let mut rng = rng::seeded(2023);
    let data = secret_distribution.sample_vec(&mut rng, 50_000);

    // One configured estimator, total privacy cost ε = 1 for all three
    // parameters (the budget is split internally via basic composition).
    let epsilon = Epsilon::new(1.0).expect("valid epsilon");
    let estimator = UniversalEstimator::new(epsilon);
    let all = estimator.all(&mut rng, &data)?;

    println!("universal private estimators (total ε = {})", epsilon.get());
    println!("  records           : {}", data.len());
    println!(
        "  mean              : {:>12.2}   (true {:.2})",
        all.mean.estimate,
        secret_distribution.mean()
    );
    println!(
        "  variance          : {:>12.2}   (true {:.2})",
        all.variance.estimate,
        secret_distribution.variance()
    );
    println!(
        "  IQR               : {:>12.2}   (true {:.2})",
        all.iqr.estimate,
        secret_distribution.iqr()
    );
    println!();
    println!("diagnostics:");
    println!(
        "  bucket (private IQR lower bound) : {:.4}",
        all.mean.bucket
    );
    println!(
        "  clipping range found privately   : [{:.1}, {:.1}]",
        all.mean.range.lo, all.mean.range.hi
    );
    println!(
        "  full-data points clipped         : {} of {}",
        all.mean.clipped,
        data.len()
    );
    Ok(())
}
