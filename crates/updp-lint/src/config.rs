//! `lint.toml` — the committed scoping config for the auditor.
//!
//! The rule *semantics* live in code ([`crate::rules`]); the config
//! only decides **where** each rule applies, because the determinism
//! scope (DESIGN.md §5/§7) is a property of the repository layout, not
//! of the language. A tiny first-party TOML-subset parser keeps the
//! crate dependency-free (DESIGN.md §4): tables, string keys, string
//! values, string arrays, and booleans — exactly what scoping needs.
//! Unknown keys and malformed values are hard errors: a config typo
//! must never silently widen or narrow the audited surface.

use std::collections::BTreeMap;

/// Where one rule applies, as path prefixes relative to the workspace
/// root (`/`-separated; the engine normalizes `\` before matching).
#[derive(Debug, Clone, Default)]
pub struct RuleScope {
    /// Path prefixes the rule audits. Empty ⇒ the whole tree (minus
    /// excludes).
    pub paths: Vec<String>,
    /// Path prefixes exempted from this rule.
    pub exclude: Vec<String>,
    /// Audit `#[cfg(test)]` / `#[test]` items and `tests/` trees?
    pub include_tests: bool,
    /// Audit binary targets (`src/bin/`, `src/main.rs`) and
    /// `benches/` / `examples/`?
    pub include_bins: bool,
}

/// One `paths`/`exclude` array element with its source position, kept
/// for audit-time scope validation: a path that matches no file on
/// disk, or a duplicate entry, silently distorts a rule's scope and
/// is diagnosed by the engine (DESIGN.md §13).
#[derive(Debug, Clone)]
pub struct PathEntry {
    /// Section the entry came from (`global` or `rule.R<n>`).
    pub section: String,
    /// `paths` or `exclude`.
    pub key: String,
    pub value: String,
    /// 1-based `lint.toml` line of the array's key (multi-line array
    /// elements share the key's line).
    pub line: usize,
}

/// Parsed `lint.toml`.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Path prefixes no rule ever audits (build artifacts, vendored
    /// upstream shims).
    pub global_exclude: Vec<String>,
    /// Per-rule scopes, keyed by rule id (`R1`…). A rule absent from
    /// the config uses [`RuleScope::default`] (whole tree, no tests,
    /// no bins).
    pub rules: BTreeMap<String, RuleScope>,
    /// Every path array element with its source line (validation).
    pub path_entries: Vec<PathEntry>,
    /// Every `[section]` header with its source line (validation).
    pub sections: Vec<(String, usize)>,
}

impl Config {
    /// The scope for `rule_id` (default scope when unconfigured).
    pub fn scope(&self, rule_id: &str) -> RuleScope {
        self.rules.get(rule_id).cloned().unwrap_or_default()
    }

    /// Parses the committed config text. Errors carry the offending
    /// line number.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut cfg = Config::default();
        let mut section: Option<String> = None;
        let lines: Vec<&str> = text.lines().collect();
        let mut idx = 0usize;
        while idx < lines.len() {
            let lineno = idx + 1;
            let mut line = strip_comment(lines[idx]).trim().to_string();
            idx += 1;
            if line.is_empty() {
                continue;
            }
            // A multi-line array: keep consuming until the closing `]`.
            while line.contains('[')
                && !line.contains(']')
                && line
                    .split_once('=')
                    .is_some_and(|(_, v)| v.trim().starts_with('['))
            {
                let Some(next) = lines.get(idx) else {
                    return Err(format!("lint.toml:{lineno}: unterminated array"));
                };
                line.push_str(strip_comment(next).trim());
                idx += 1;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
                let name = name.trim();
                match name {
                    "global" => {}
                    _ if name.strip_prefix("rule.").is_some_and(valid_rule_id) => {}
                    _ => {
                        return Err(format!(
                            "lint.toml:{lineno}: unknown section `[{name}]` (expected `[global]` or `[rule.R<n>]`)"
                        ));
                    }
                }
                section = Some(name.to_string());
                cfg.sections.push((name.to_string(), lineno));
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("lint.toml:{lineno}: expected `key = value`"));
            };
            let (key, value) = (key.trim(), value.trim());
            match section.as_deref() {
                Some("global") => match key {
                    "exclude" => {
                        cfg.global_exclude = parse_string_array(value, lineno)?;
                        record_entries(
                            &mut cfg.path_entries,
                            "global",
                            key,
                            &cfg.global_exclude,
                            lineno,
                        );
                    }
                    _ => {
                        return Err(format!(
                            "lint.toml:{lineno}: unknown key `{key}` in [global]"
                        ))
                    }
                },
                Some(rule) => {
                    let id = rule.trim_start_matches("rule.").to_string();
                    let section_name = rule.to_string();
                    let scope = cfg.rules.entry(id).or_default();
                    match key {
                        "paths" => {
                            scope.paths = parse_string_array(value, lineno)?;
                            record_entries(
                                &mut cfg.path_entries,
                                &section_name,
                                key,
                                &scope.paths,
                                lineno,
                            );
                        }
                        "exclude" => {
                            scope.exclude = parse_string_array(value, lineno)?;
                            record_entries(
                                &mut cfg.path_entries,
                                &section_name,
                                key,
                                &scope.exclude,
                                lineno,
                            );
                        }
                        "include_tests" => scope.include_tests = parse_bool(value, lineno)?,
                        "include_bins" => scope.include_bins = parse_bool(value, lineno)?,
                        _ => {
                            return Err(format!(
                                "lint.toml:{lineno}: unknown key `{key}` in [{rule}]"
                            ))
                        }
                    }
                }
                None => return Err(format!("lint.toml:{lineno}: `{key}` outside any section")),
            }
        }
        Ok(cfg)
    }
}

fn valid_rule_id(s: &str) -> bool {
    let mut chars = s.chars();
    chars.next() == Some('R') && !s[1..].is_empty() && s[1..].chars().all(|c| c.is_ascii_digit())
}

/// Strips a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            _ if escaped => escaped = false,
            '\\' if in_string => escaped = true,
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_bool(value: &str, lineno: usize) -> Result<bool, String> {
    match value {
        "true" => Ok(true),
        "false" => Ok(false),
        _ => Err(format!(
            "lint.toml:{lineno}: expected `true` or `false`, got `{value}`"
        )),
    }
}

fn parse_string(value: &str, lineno: usize) -> Result<String, String> {
    value
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .map(str::to_owned)
        .ok_or_else(|| {
            format!("lint.toml:{lineno}: expected a double-quoted string, got `{value}`")
        })
}

/// Records each parsed array element with its source position for
/// audit-time scope validation.
fn record_entries(
    entries: &mut Vec<PathEntry>,
    section: &str,
    key: &str,
    values: &[String],
    lineno: usize,
) {
    for value in values {
        entries.push(PathEntry {
            section: section.to_string(),
            key: key.to_string(),
            value: value.clone(),
            line: lineno,
        });
    }
}

fn parse_string_array(value: &str, lineno: usize) -> Result<Vec<String>, String> {
    let inner = value
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| format!("lint.toml:{lineno}: expected `[\"…\", …]`, got `{value}`"))?;
    let inner = inner.trim().trim_end_matches(',');
    if inner.trim().is_empty() {
        return Ok(Vec::new());
    }
    inner
        .split(',')
        .map(|item| parse_string(item.trim(), lineno))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_arrays_and_bools() {
        let cfg = Config::parse(
            r#"
            # scoping
            [global]
            exclude = ["target", "vendor"]  # artifacts

            [rule.R1]
            paths = ["crates/updp-core/src", "crates/updp-dist/src"]
            exclude = ["crates/updp-core/src/bin"]
            include_tests = false

            [rule.R6]
            include_bins = false
            "#,
        )
        .unwrap();
        assert_eq!(cfg.global_exclude, vec!["target", "vendor"]);
        let r1 = cfg.scope("R1");
        assert_eq!(r1.paths.len(), 2);
        assert_eq!(r1.exclude, vec!["crates/updp-core/src/bin"]);
        assert!(!r1.include_tests);
        // Unconfigured rule falls back to the default scope.
        let r4 = cfg.scope("R4");
        assert!(r4.paths.is_empty());
    }

    #[test]
    fn rejects_unknown_sections_and_keys() {
        assert!(Config::parse("[surprise]\n").is_err());
        assert!(Config::parse("[rule.notarule]\n").is_err());
        assert!(Config::parse("[global]\nfrobnicate = true\n").is_err());
        assert!(
            Config::parse("[rule.R1]\npath = [\"x\"]\n").is_err(),
            "typo must not pass"
        );
        assert!(
            Config::parse("exclude = [\"x\"]\n").is_err(),
            "key outside section"
        );
        assert!(Config::parse("[rule.R1]\ninclude_tests = maybe\n").is_err());
    }

    #[test]
    fn parses_multiline_arrays() {
        let cfg =
            Config::parse("[rule.R1]\npaths = [\n  \"a/b\",  # one\n  \"c/d\",\n]\n").unwrap();
        assert_eq!(cfg.scope("R1").paths, vec!["a/b", "c/d"]);
        assert!(
            Config::parse("[rule.R1]\npaths = [\n  \"a/b\",\n").is_err(),
            "unterminated"
        );
    }

    #[test]
    fn records_path_entries_and_sections_with_lines() {
        let cfg = Config::parse(
            "[global]\nexclude = [\"target\"]\n\n[rule.R1]\npaths = [\n  \"a/b\",\n  \"a/b\",\n]\n",
        )
        .unwrap();
        assert_eq!(
            cfg.sections,
            vec![("global".to_string(), 1), ("rule.R1".to_string(), 4)]
        );
        let entries: Vec<(&str, &str, &str, usize)> = cfg
            .path_entries
            .iter()
            .map(|e| (e.section.as_str(), e.key.as_str(), e.value.as_str(), e.line))
            .collect();
        assert_eq!(
            entries,
            vec![
                ("global", "exclude", "target", 2),
                // Duplicates are preserved verbatim — validation wants
                // to see them.
                ("rule.R1", "paths", "a/b", 5),
                ("rule.R1", "paths", "a/b", 5),
            ]
        );
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let cfg = Config::parse("[global]\nexclude = [\"has#hash\"]\n").unwrap();
        assert_eq!(cfg.global_exclude, vec!["has#hash"]);
    }
}
