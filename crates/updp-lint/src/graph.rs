//! The workspace model and intra-crate call graph the semantic rules
//! walk (DESIGN.md §13).
//!
//! Call-graph soundness is deliberately asymmetric. Edges are added
//! only where the lexical evidence is unambiguous: `self.m()` resolved
//! within the receiver's own `impl` block, `Type::m()` path calls to a
//! known impl, and free-function calls whose name maps to exactly one
//! `fn` in the same crate. Common method names (`len`, `read`,
//! `flush`) on arbitrary receivers produce *no* edge — a false edge
//! would manufacture lock-order or budget-flow violations out of thin
//! air, while a missing edge only narrows what the cross-file rules
//! can prove (the per-site checks still apply). §13.2 documents this
//! under-approximation.

use crate::parser::{FnItem, ParsedFile};
use std::collections::BTreeMap;

/// How a call site names its callee.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CallKind {
    /// `self.m(…)` — resolvable within the enclosing impl type.
    SelfMethod,
    /// `recv.m(…)` on any other receiver — never resolved to an edge.
    Method,
    /// `f(…)` — resolved when `f` names exactly one fn in the crate.
    Free,
    /// `Type::m(…)` — resolved against known impl blocks.
    Path,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    pub kind: CallKind,
    /// Callee name (method or function ident).
    pub name: String,
    /// `Type` of a [`CallKind::Path`] call.
    pub qualifier: Option<String>,
    /// Token index of the callee-name token.
    pub tok: usize,
    pub line: u32,
}

/// Identifier keywords that look like free calls lexically
/// (`if (…)`, `while (…)`) but are control flow.
const NON_CALL_KEYWORDS: [&str; 14] = [
    "if", "while", "match", "for", "return", "loop", "unsafe", "else", "in", "as", "move", "let",
    "fn", "where",
];

/// Extracts the call sites inside `f`'s body (token indices are into
/// `file.tokens`).
pub fn calls_in(file: &ParsedFile, f: &FnItem) -> Vec<Call> {
    let tokens = &file.tokens;
    let mut out = Vec::new();
    for i in f.body.0..f.body.1.min(tokens.len()) {
        let Some(name) = tokens[i].ident() else {
            continue;
        };
        if !tokens.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            continue;
        }
        let prev_dot = i > 0 && tokens[i - 1].is_punct('.');
        if prev_dot {
            let kind = if i >= 2 && tokens[i - 2].ident() == Some("self") {
                CallKind::SelfMethod
            } else {
                CallKind::Method
            };
            out.push(Call {
                kind,
                name: name.to_string(),
                qualifier: None,
                tok: i,
                line: tokens[i].line,
            });
            continue;
        }
        if NON_CALL_KEYWORDS.contains(&name) {
            continue;
        }
        // `fn f(` of a nested item is a definition, not a call.
        if i > 0 && tokens[i - 1].ident() == Some("fn") {
            continue;
        }
        let path_call = i >= 2 && tokens[i - 1].is_punct(':') && tokens[i - 2].is_punct(':');
        if path_call {
            let qualifier = (i >= 3)
                .then(|| tokens[i - 3].ident().map(str::to_string))
                .flatten();
            out.push(Call {
                kind: CallKind::Path,
                name: name.to_string(),
                qualifier,
                tok: i,
                line: tokens[i].line,
            });
        } else {
            out.push(Call {
                kind: CallKind::Free,
                name: name.to_string(),
                qualifier: None,
                tok: i,
                line: tokens[i].line,
            });
        }
    }
    out
}

/// A function's identity in the workspace: `(file index, fn index)`.
pub type FnId = (usize, usize);

/// The parsed workspace plus its resolvable call edges.
pub struct Workspace<'a> {
    pub files: Vec<&'a ParsedFile>,
    /// Per function: its extracted call sites.
    pub calls: BTreeMap<FnId, Vec<Call>>,
    /// `crate → method name → impl type → FnId` (only unambiguous
    /// single-impl entries survive).
    methods: BTreeMap<(String, String, String), Vec<FnId>>,
    /// `crate → free/assoc fn name → FnIds` with that bare name.
    by_name: BTreeMap<(String, String), Vec<FnId>>,
}

impl<'a> Workspace<'a> {
    /// Builds the model over the given parsed files (typically the
    /// files one rule's scope selected).
    pub fn build<I: IntoIterator<Item = &'a ParsedFile>>(files: I) -> Workspace<'a> {
        let files: Vec<&'a ParsedFile> = files.into_iter().collect();
        let mut calls = BTreeMap::new();
        let mut methods: BTreeMap<(String, String, String), Vec<FnId>> = BTreeMap::new();
        let mut by_name: BTreeMap<(String, String), Vec<FnId>> = BTreeMap::new();
        for (fi, file) in files.iter().enumerate() {
            let krate = file.crate_name().to_string();
            for (gi, f) in file.fns.iter().enumerate() {
                let id: FnId = (fi, gi);
                calls.insert(id, calls_in(file, f));
                if let Some(t) = &f.impl_type {
                    methods
                        .entry((krate.clone(), t.clone(), f.name.clone()))
                        .or_default()
                        .push(id);
                }
                by_name
                    .entry((krate.clone(), f.name.clone()))
                    .or_default()
                    .push(id);
            }
        }
        Workspace {
            files,
            calls,
            methods,
            by_name,
        }
    }

    pub fn fn_item(&self, id: FnId) -> &FnItem {
        &self.files[id.0].fns[id.1]
    }

    /// Resolves one call site inside `caller` to a callee, using only
    /// unambiguous evidence (see module docs). Returns `None` for
    /// anything that cannot be pinned to exactly one function.
    pub fn resolve(&self, caller: FnId, call: &Call) -> Option<FnId> {
        let file = &self.files[caller.0];
        let krate = file.crate_name().to_string();
        match call.kind {
            CallKind::SelfMethod => {
                let impl_type = file.fns[caller.1].impl_type.clone()?;
                self.unique(self.methods.get(&(krate, impl_type, call.name.clone())))
            }
            CallKind::Path => {
                let q = call.qualifier.clone()?;
                self.unique(self.methods.get(&(krate, q, call.name.clone())))
            }
            CallKind::Free => self.unique(
                self.by_name
                    .get(&(krate, call.name.clone()))
                    .filter(|ids| ids.iter().all(|id| self.fn_item(*id).impl_type.is_none())),
            ),
            CallKind::Method => None,
        }
    }

    fn unique(&self, ids: Option<&Vec<FnId>>) -> Option<FnId> {
        match ids {
            Some(v) if v.len() == 1 => Some(v[0]),
            _ => None,
        }
    }

    /// All `(caller, call, callee)` resolved edges.
    pub fn edges(&self) -> Vec<(FnId, &Call, FnId)> {
        let mut out = Vec::new();
        for (&caller, calls) in &self.calls {
            for call in calls {
                if let Some(callee) = self.resolve(caller, call) {
                    if callee != caller {
                        out.push((caller, call, callee));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse_file;

    fn parsed(path: &str, src: &str) -> ParsedFile {
        let lexed = lex(src);
        let n = lexed.tokens.len();
        parse_file(path, lexed.tokens, vec![false; n])
    }

    #[test]
    fn self_method_calls_resolve_within_the_impl() {
        let f = parsed(
            "crates/c/src/a.rs",
            "struct S;\nimpl S {\n  fn outer(&self) { self.inner(); other.inner(); }\n  fn inner(&self) {}\n}\n",
        );
        let files = [f];
        let ws = Workspace::build(&files);
        let edges = ws.edges();
        assert_eq!(edges.len(), 1);
        assert_eq!(ws.fn_item(edges[0].2).qual_name(), "S::inner");
    }

    #[test]
    fn free_calls_resolve_only_when_unique_in_crate() {
        let a = parsed("crates/c/src/a.rs", "fn caller() { helper(); }\n");
        let b = parsed("crates/c/src/b.rs", "pub fn helper() {}\n");
        let files = [a, b];
        let ws = Workspace::build(&files);
        assert_eq!(ws.edges().len(), 1);

        // Ambiguous name (two fns) → no edge.
        let a = parsed(
            "crates/c/src/a.rs",
            "fn caller() { helper(); }\nfn helper() {}\n",
        );
        let b = parsed("crates/c/src/b.rs", "pub fn helper() {}\n");
        let files = [a, b];
        let ws = Workspace::build(&files);
        assert!(ws.edges().is_empty());

        // Same name in a *different* crate → no edge either.
        let a = parsed("crates/c/src/a.rs", "fn caller() { helper(); }\n");
        let b = parsed("crates/d/src/b.rs", "pub fn helper() {}\n");
        let files = [a, b];
        let ws = Workspace::build(&files);
        assert!(ws.edges().is_empty());
    }

    #[test]
    fn common_method_names_on_foreign_receivers_make_no_edges() {
        let f = parsed(
            "crates/c/src/a.rs",
            "struct S;\nimpl S {\n  fn len(&self) -> usize { 0 }\n}\nfn g(v: Vec<u32>) { v.len(); }\n",
        );
        let files = [f];
        let ws = Workspace::build(&files);
        assert!(ws.edges().is_empty(), "v.len() must not resolve to S::len");
    }

    #[test]
    fn path_calls_resolve_to_known_impls() {
        let f = parsed(
            "crates/c/src/a.rs",
            "struct S;\nimpl S {\n  fn make() -> S { S }\n}\nfn g() { let s = S::make(); }\n",
        );
        let files = [f];
        let ws = Workspace::build(&files);
        let edges = ws.edges();
        assert_eq!(edges.len(), 1);
        assert_eq!(ws.fn_item(edges[0].2).qual_name(), "S::make");
    }

    #[test]
    fn control_flow_keywords_are_not_calls() {
        let f = parsed(
            "crates/c/src/a.rs",
            "fn g(x: bool) { if (x) { } while (x) { } match (x) { _ => {} } }\n",
        );
        let files = [f];
        let ws = Workspace::build(&files);
        let calls = ws.calls.values().flatten().count();
        assert_eq!(calls, 0);
    }
}
