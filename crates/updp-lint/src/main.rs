//! The `updp-lint` CLI — the CI gate for the invariant catalog.
//!
//! ```text
//! updp-lint --check [--root DIR] [--format github]
//!                                   audit the workspace; exit 1 on any diagnostic
//!                                   (`--format github` adds `::error` workflow
//!                                   annotations after the human-readable lines)
//! updp-lint --explain R<n>          print one rule's contract rationale
//! updp-lint --list                  print the invariant catalog
//! ```

use std::path::PathBuf;
use std::process::ExitCode;
use updp_lint::{audit_workspace, rules, CATALOG};

fn usage() -> ExitCode {
    eprintln!(
        "usage: updp-lint --check [--root DIR] [--format human|github] | --explain RULE | --list"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root: Option<PathBuf> = None;
    let mut mode: Option<&str> = None;
    let mut explain_rule = String::new();
    let mut github_format = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--check" => mode = Some("check"),
            "--list" => mode = Some("list"),
            "--explain" => {
                mode = Some("explain");
                i += 1;
                match args.get(i) {
                    Some(r) => explain_rule = r.clone(),
                    None => return usage(),
                }
            }
            "--root" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => root = Some(PathBuf::from(dir)),
                    None => return usage(),
                }
            }
            "--format" => {
                i += 1;
                match args.get(i).map(String::as_str) {
                    Some("human") => github_format = false,
                    Some("github") => github_format = true,
                    _ => return usage(),
                }
            }
            _ => return usage(),
        }
        i += 1;
    }

    match mode {
        Some("list") => {
            for rule in &CATALOG {
                println!(
                    "{} ({}) [{}]: {}",
                    rule.id, rule.name, rule.contract, rule.summary
                );
            }
            ExitCode::SUCCESS
        }
        Some("explain") => match rules::find(&explain_rule) {
            Some(rule) => {
                println!("{} ({}) — {}", rule.id, rule.name, rule.contract);
                println!("{}", rule.summary);
                println!();
                println!("{}", rule.rationale);
                println!();
                println!(
                    "Escape hatch: `// updp-lint: allow({}, reason=\"…\")` on (or directly \
                     above) the flagged line; the reason is mandatory and unused allows fail \
                     the audit (DESIGN.md §9).",
                    rule.id
                );
                ExitCode::SUCCESS
            }
            None => {
                eprintln!(
                    "unknown rule `{explain_rule}` (known: {})",
                    CATALOG.map(|r| r.id).join(", ")
                );
                ExitCode::from(2)
            }
        },
        Some("check") => {
            let root = match root.or_else(find_workspace_root) {
                Some(r) => r,
                None => {
                    eprintln!("updp-lint: no lint.toml found here or in any parent directory");
                    return ExitCode::from(2);
                }
            };
            match audit_workspace(&root) {
                Ok(report) => {
                    for d in &report.diagnostics {
                        println!("{d}");
                    }
                    if github_format {
                        // Workflow annotations surface each diagnostic
                        // on the PR diff; they ride alongside (not
                        // instead of) the human lines so a `tee`'d log
                        // stays readable.
                        for d in &report.diagnostics {
                            println!(
                                "::error file={},line={}::{} ({}): {} [{}]",
                                d.path, d.line, d.rule_id, d.rule_name, d.message, d.contract
                            );
                        }
                    }
                    if report.diagnostics.is_empty() {
                        eprintln!(
                            "updp-lint: clean — {} files audited, {} rules, 0 violations",
                            report.files_audited,
                            CATALOG.len()
                        );
                        ExitCode::SUCCESS
                    } else {
                        eprintln!(
                            "updp-lint: {} violation(s) across {} files audited — run \
                             `updp-lint --explain RULE` for the contract rationale",
                            report.diagnostics.len(),
                            report.files_audited
                        );
                        ExitCode::FAILURE
                    }
                }
                Err(e) => {
                    eprintln!("updp-lint: {e}");
                    ExitCode::from(2)
                }
            }
        }
        _ => usage(),
    }
}

/// Walks up from the current directory to the nearest `lint.toml`.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("lint.toml").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}
