//! The semantic pass: cross-file rules R7–R10 over the parsed
//! workspace (DESIGN.md §13).
//!
//! Unlike R1–R6, these rules reason about *flow* — where a seed came
//! from, which locks a call chain acquires, whether a reservation
//! dominates an estimate — so they run once over the whole audited
//! file set rather than per file. They activate only for rules
//! explicitly configured in `lint.toml`: each binds to named
//! subsystems (the determinism trees, the serve stack, the reactor),
//! and a default whole-tree scope would be meaningless for them.

use crate::config::{Config, RuleScope};
use crate::engine::{classify, scope_covers};
use crate::graph::{Call, CallKind, FnId, Workspace};
use crate::parser::{matching_brace, matching_paren, FnItem, ParsedFile};
use crate::rules::{self, Rule};
use std::collections::{BTreeMap, BTreeSet};

/// One semantic-rule hit, pre-allow-resolution.
#[derive(Debug, Clone)]
pub struct SemFinding {
    pub path: String,
    pub rule: &'static Rule,
    pub line: u32,
    pub message: String,
}

/// Runs every configured semantic rule over the parsed files.
pub fn scan_workspace(files: &[ParsedFile], config: &Config) -> Vec<SemFinding> {
    let mut out = Vec::new();
    for id in ["R7", "R8", "R9", "R10"] {
        // Semantic rules never fall back to the default whole-tree
        // scope: absent from lint.toml means off (module docs).
        if !config.rules.contains_key(id) {
            continue;
        }
        let rule = rules::find(id).expect("semantic rules are in the catalog");
        let scope = config.scope(id);
        let selected: Vec<&ParsedFile> = files
            .iter()
            .filter(|f| scope_covers(&scope, &f.path, classify(&f.path)))
            .collect();
        match id {
            "R7" => scan_seed_discipline(rule, &selected, &scope, &mut out),
            "R8" => scan_lock_order(rule, &selected, &scope, &mut out),
            "R9" => scan_reserve_before_estimate(rule, &selected, &scope, &mut out),
            "R10" => scan_panic_surface(rule, &selected, &scope, &mut out),
            _ => unreachable!(),
        }
    }
    // Overlapping fn ranges (nested fns) can hit the same site twice.
    out.sort_by(|a, b| {
        (&a.path, a.line, a.rule.id, &a.message).cmp(&(&b.path, b.line, b.rule.id, &b.message))
    });
    out.dedup_by(|a, b| a.path == b.path && a.line == b.line && a.rule.id == b.rule.id);
    out
}

fn ident_at(tokens: &[crate::lexer::Token], i: usize) -> Option<&str> {
    tokens.get(i).and_then(crate::lexer::Token::ident)
}

fn punct_at(tokens: &[crate::lexer::Token], i: usize, c: char) -> bool {
    tokens.get(i).is_some_and(|t| t.is_punct(c))
}

/// Is this fn a test item (body starts inside the test mask)?
fn is_test_fn(file: &ParsedFile, f: &FnItem) -> bool {
    file.test_mask.get(f.body.0).copied().unwrap_or(false)
}

// ---------------------------------------------------------------- R7

/// Idents that mint randomness from ambient entropy: always a
/// violation in determinism scope, whatever the arguments.
const AMBIENT_RNG: [&str; 3] = ["from_entropy", "from_os_rng", "OsRng"];

/// Seed-consuming RNG constructors: compliant only when the seed
/// argument traces to `child_seed` or a caller-passed value.
const SEEDED_CTORS: [&str; 4] = ["seeded", "from_seed", "seed_from_u64", "from_rng"];

fn scan_seed_discipline(
    rule: &'static Rule,
    files: &[&ParsedFile],
    scope: &RuleScope,
    out: &mut Vec<SemFinding>,
) {
    for file in files {
        for f in &file.fns {
            if !scope.include_tests && is_test_fn(file, f) {
                continue;
            }
            let locals = collect_locals(file, f);
            let tokens = &file.tokens;
            for i in f.body.0..f.body.1.min(tokens.len()) {
                let Some(name) = ident_at(tokens, i) else {
                    continue;
                };
                if AMBIENT_RNG.contains(&name) {
                    out.push(SemFinding {
                        path: file.path.clone(),
                        rule,
                        line: tokens[i].line,
                        message: format!(
                            "`{name}` mints randomness from ambient entropy inside \
                             determinism-scoped code — every RNG must trace to the §1.1 \
                             `child_seed` tree or a caller-passed generator"
                        ),
                    });
                    continue;
                }
                if SEEDED_CTORS.contains(&name) && punct_at(tokens, i + 1, '(') {
                    let close = matching_paren(tokens, i + 1);
                    if !seed_traces(tokens, i + 2, close, f, &locals) {
                        out.push(SemFinding {
                            path: file.path.clone(),
                            rule,
                            line: tokens[i].line,
                            message: format!(
                                "`{name}(…)` constructs an RNG from a seed that does not trace \
                                 to `child_seed` or a caller-passed value — fixed or ad-hoc \
                                 seeds fork the §1.1 seed tree and break bit-reproducibility"
                            ),
                        });
                    }
                }
            }
        }
    }
}

/// `let`-bound locals of a fn body: name → initializer token range.
fn collect_locals(file: &ParsedFile, f: &FnItem) -> BTreeMap<String, (usize, usize)> {
    let tokens = &file.tokens;
    let mut locals = BTreeMap::new();
    let mut i = f.body.0;
    while i < f.body.1.min(tokens.len()) {
        if ident_at(tokens, i) != Some("let") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if ident_at(tokens, j) == Some("mut") {
            j += 1;
        }
        let Some(name) = ident_at(tokens, j) else {
            i += 1;
            continue;
        };
        // Only plain `let name [: ty] = init;` bindings — destructuring
        // patterns are skipped (a missed binding only narrows tracing).
        let mut k = j + 1;
        let mut depth = 0i64;
        let mut init_start = None;
        while k < f.body.1.min(tokens.len()) {
            match tokens[k].kind {
                crate::lexer::TokenKind::Punct('(' | '[' | '{') => depth += 1,
                crate::lexer::TokenKind::Punct(')' | ']' | '}') => depth -= 1,
                crate::lexer::TokenKind::Punct('=')
                    if depth == 0 && init_start.is_none() && !punct_at(tokens, k + 1, '=') =>
                {
                    init_start = Some(k + 1);
                }
                crate::lexer::TokenKind::Punct(';') if depth <= 0 => break,
                _ => {}
            }
            k += 1;
        }
        if let Some(start) = init_start {
            locals.insert(name.to_string(), (start, k));
        }
        i = k + 1;
    }
    locals
}

/// Does the token span `[start, end)` trace (through local bindings)
/// to `child_seed`, a parameter of `f`, or `self`?
fn seed_traces(
    tokens: &[crate::lexer::Token],
    start: usize,
    end: usize,
    f: &FnItem,
    locals: &BTreeMap<String, (usize, usize)>,
) -> bool {
    let mut queue = vec![(start, end)];
    let mut visited: BTreeSet<String> = BTreeSet::new();
    while let Some((s, e)) = queue.pop() {
        for i in s..e.min(tokens.len()) {
            let Some(name) = ident_at(tokens, i) else {
                continue;
            };
            if name == "child_seed" || name == "self" {
                return true;
            }
            if f.params.iter().any(|p| p == name) {
                return true;
            }
            if let Some(&span) = locals.get(name) {
                if visited.insert(name.to_string()) {
                    queue.push(span);
                }
            }
        }
    }
    false
}

// ---------------------------------------------------------------- R8

/// One lock acquisition and the token range its guard is live for.
#[derive(Debug, Clone)]
struct Acquisition {
    /// The field/receiver ident naming the lock (`pending`, `shard`…).
    label: String,
    /// Token index of the `.`, for ordering.
    tok: usize,
    line: u32,
    /// Token index one past which the guard is treated as dropped.
    end: usize,
}

fn scan_lock_order(
    rule: &'static Rule,
    files: &[&ParsedFile],
    scope: &RuleScope,
    out: &mut Vec<SemFinding>,
) {
    let selected: Vec<&ParsedFile> = files.to_vec();
    let ws = Workspace::build(selected.iter().copied());

    // Per fn: direct acquisitions and resolved outgoing calls.
    let mut acqs: BTreeMap<FnId, Vec<Acquisition>> = BTreeMap::new();
    for (fi, file) in selected.iter().enumerate() {
        for (gi, f) in file.fns.iter().enumerate() {
            if !scope.include_tests && is_test_fn(file, f) {
                continue;
            }
            acqs.insert((fi, gi), acquisitions_in(file, f));
        }
    }

    // Transitive label sets: every lock a call into `f` may acquire.
    let mut all_labels: BTreeMap<FnId, BTreeSet<String>> = acqs
        .iter()
        .map(|(&id, v)| (id, v.iter().map(|a| a.label.clone()).collect()))
        .collect();
    loop {
        let mut changed = false;
        for (&caller, calls) in &ws.calls {
            if !all_labels.contains_key(&caller) {
                continue;
            }
            let mut add: BTreeSet<String> = BTreeSet::new();
            for call in calls {
                if let Some(callee) = ws.resolve(caller, call) {
                    if let Some(labels) = all_labels.get(&callee) {
                        add.extend(labels.iter().cloned());
                    }
                }
            }
            let mine = all_labels.entry(caller).or_default();
            let before = mine.len();
            mine.extend(add);
            changed |= mine.len() != before;
        }
        if !changed {
            break;
        }
    }

    // Ordered pairs: (outer label, inner label) with the inner site.
    #[derive(Debug)]
    struct PairSite {
        path: String,
        line: u32,
    }
    let mut pairs: BTreeMap<(String, String), PairSite> = BTreeMap::new();
    for (&(fi, _gi), fn_acqs) in &acqs {
        let file = selected[fi];
        for a in fn_acqs {
            // Same-fn nesting.
            for b in fn_acqs {
                if a.tok < b.tok && b.tok < a.end {
                    pairs
                        .entry((a.label.clone(), b.label.clone()))
                        .or_insert(PairSite {
                            path: file.path.clone(),
                            line: b.line,
                        });
                }
            }
        }
    }
    for (&caller, calls) in &ws.calls {
        let Some(fn_acqs) = acqs.get(&caller) else {
            continue;
        };
        let file = selected[caller.0];
        for call in calls {
            let Some(callee) = ws.resolve(caller, call) else {
                continue;
            };
            let Some(inner_labels) = all_labels.get(&callee) else {
                continue;
            };
            for a in fn_acqs {
                if a.tok < call.tok && call.tok < a.end {
                    for l in inner_labels {
                        pairs
                            .entry((a.label.clone(), l.clone()))
                            .or_insert(PairSite {
                                path: file.path.clone(),
                                line: call.line,
                            });
                    }
                }
            }
        }
    }

    // Same-label nesting is an immediate self-deadlock risk.
    for ((outer, inner), site) in &pairs {
        if outer == inner {
            out.push(SemFinding {
                path: site.path.clone(),
                rule,
                line: site.line,
                message: format!(
                    "lock `{outer}` acquired while a guard for `{outer}` is still live — \
                     self-deadlock (Mutex) or writer-starvation deadlock (RwLock) under \
                     contention"
                ),
            });
        }
    }

    // Inconsistent ordering: an edge whose reverse direction is
    // reachable forms a cycle.
    let edges: BTreeSet<(String, String)> = pairs.keys().filter(|(a, b)| a != b).cloned().collect();
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (a, b) in &edges {
        adj.entry(a.as_str()).or_default().push(b.as_str());
    }
    for (a, b) in &edges {
        if reachable(&adj, b, a) {
            let site = &pairs[&(a.clone(), b.clone())];
            let opposite = pairs
                .get(&(b.clone(), a.clone()))
                .map(|s| format!("{}:{}", s.path, s.line))
                .unwrap_or_else(|| "a transitive chain".to_string());
            out.push(SemFinding {
                path: site.path.clone(),
                rule,
                line: site.line,
                message: format!(
                    "inconsistent lock order: `{a}` → `{b}` here, but `{b}` → `{a}` via \
                     {opposite} — two threads taking the two paths deadlock"
                ),
            });
        }
    }
}

fn reachable(adj: &BTreeMap<&str, Vec<&str>>, from: &str, to: &str) -> bool {
    let mut stack = vec![from];
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    while let Some(n) = stack.pop() {
        if n == to {
            return true;
        }
        if !seen.insert(n) {
            continue;
        }
        if let Some(next) = adj.get(n) {
            stack.extend(next.iter().copied());
        }
    }
    false
}

/// Finds `.lock()` / argless `.read()` / `.write()` acquisitions in a
/// fn body and approximates each guard's live token range:
/// a `let`-bound guard lives to the end of its enclosing block (or an
/// explicit `drop(name)`); a guard acquired in an `if`/`while`/
/// `match`/`for` head lives to the end of the construct; a chained
/// temporary lives to the end of its statement.
fn acquisitions_in(file: &ParsedFile, f: &FnItem) -> Vec<Acquisition> {
    let tokens = &file.tokens;
    let body_end = f.body.1.min(tokens.len());
    let mut out = Vec::new();
    for i in f.body.0..body_end {
        if !tokens[i].is_punct('.') {
            continue;
        }
        if !matches!(ident_at(tokens, i + 1), Some("lock" | "read" | "write")) {
            continue;
        }
        if !(punct_at(tokens, i + 2, '(') && punct_at(tokens, i + 3, ')')) {
            continue;
        }
        let Some(label) = receiver_label(tokens, i) else {
            continue;
        };
        let stmt_start = statement_start(tokens, f.body.0, i);
        let end = match ident_at(tokens, stmt_start) {
            Some("let") => {
                let mut j = stmt_start + 1;
                if ident_at(tokens, j) == Some("mut") {
                    j += 1;
                }
                let bound = ident_at(tokens, j).map(str::to_string);
                let block_end = enclosing_block_end(tokens, body_end, i);
                match bound {
                    Some(name) => drop_site(tokens, i, block_end, &name).unwrap_or(block_end),
                    None => block_end,
                }
            }
            Some("if" | "while" | "match" | "for") => construct_end(tokens, stmt_start, body_end),
            _ => statement_end(tokens, body_end, i),
        };
        out.push(Acquisition {
            label,
            tok: i,
            line: tokens[i + 1].line,
            end,
        });
    }
    out
}

/// The ident naming the lock: the field or method directly left of the
/// acquisition's `.`, skipping one balanced call-argument list
/// (`self.shard(name).write()` → `shard`).
fn receiver_label(tokens: &[crate::lexer::Token], dot: usize) -> Option<String> {
    if dot == 0 {
        return None;
    }
    let mut k = dot - 1;
    if tokens[k].is_punct(')') {
        let mut depth = 0i64;
        loop {
            if tokens[k].is_punct(')') {
                depth += 1;
            } else if tokens[k].is_punct('(') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            if k == 0 {
                return None;
            }
            k -= 1;
        }
        if k == 0 {
            return None;
        }
        k -= 1;
    }
    tokens[k].ident().map(str::to_string)
}

/// Token index where the statement containing `tok` starts.
fn statement_start(tokens: &[crate::lexer::Token], body_start: usize, tok: usize) -> usize {
    let mut k = tok;
    let mut depth = 0i64;
    while k > body_start {
        k -= 1;
        match tokens[k].kind {
            crate::lexer::TokenKind::Punct(')' | ']') => depth += 1,
            crate::lexer::TokenKind::Punct('(' | '[') => {
                if depth == 0 {
                    return k + 1;
                }
                depth -= 1;
            }
            crate::lexer::TokenKind::Punct('{' | '}' | ';') if depth == 0 => return k + 1,
            _ => {}
        }
    }
    body_start
}

/// Index of the `}` closing the block enclosing `tok`.
fn enclosing_block_end(tokens: &[crate::lexer::Token], body_end: usize, tok: usize) -> usize {
    let mut depth = 0i64;
    for (k, t) in tokens.iter().enumerate().take(body_end).skip(tok) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            if depth == 0 {
                return k;
            }
            depth -= 1;
        }
    }
    body_end
}

/// Index of a `drop(name)` call between `from` and `until`, if any.
fn drop_site(
    tokens: &[crate::lexer::Token],
    from: usize,
    until: usize,
    name: &str,
) -> Option<usize> {
    (from..until.min(tokens.len())).find(|&k| {
        ident_at(tokens, k) == Some("drop")
            && punct_at(tokens, k + 1, '(')
            && ident_at(tokens, k + 2) == Some(name)
            && punct_at(tokens, k + 3, ')')
    })
}

/// Index one past the end of the `if`/`while`/`match`/`for` construct
/// starting at `start` (follows `else`/`else if` chains).
fn construct_end(tokens: &[crate::lexer::Token], start: usize, body_end: usize) -> usize {
    let mut paren = 0i64;
    let mut k = start;
    // First body `{` at paren depth 0.
    while k < body_end {
        match tokens[k].kind {
            crate::lexer::TokenKind::Punct('(') => paren += 1,
            crate::lexer::TokenKind::Punct(')') => paren -= 1,
            crate::lexer::TokenKind::Punct('{') if paren == 0 => break,
            _ => {}
        }
        k += 1;
    }
    if k >= body_end {
        return body_end;
    }
    let mut end = matching_brace(tokens, k);
    while ident_at(tokens, end) == Some("else") {
        let mut j = end + 1;
        if ident_at(tokens, j) == Some("if") {
            // Walk the `else if` condition to its block.
            let mut paren = 0i64;
            while j < body_end {
                match tokens[j].kind {
                    crate::lexer::TokenKind::Punct('(') => paren += 1,
                    crate::lexer::TokenKind::Punct(')') => paren -= 1,
                    crate::lexer::TokenKind::Punct('{') if paren == 0 => break,
                    _ => {}
                }
                j += 1;
            }
        }
        if j >= body_end || !tokens[j].is_punct('{') {
            return end;
        }
        end = matching_brace(tokens, j);
    }
    end.min(body_end)
}

/// Index of the `;` (or closing `}`) ending the statement containing
/// `tok`.
fn statement_end(tokens: &[crate::lexer::Token], body_end: usize, tok: usize) -> usize {
    let mut depth = 0i64;
    for (k, t) in tokens.iter().enumerate().take(body_end).skip(tok) {
        match t.kind {
            crate::lexer::TokenKind::Punct('(' | '[' | '{') => depth += 1,
            crate::lexer::TokenKind::Punct(')' | ']' | '}') => {
                if depth == 0 {
                    return k;
                }
                depth -= 1;
            }
            crate::lexer::TokenKind::Punct(';') if depth == 0 => return k,
            _ => {}
        }
    }
    body_end
}

// ---------------------------------------------------------------- R9

fn scan_reserve_before_estimate(
    rule: &'static Rule,
    files: &[&ParsedFile],
    scope: &RuleScope,
    out: &mut Vec<SemFinding>,
) {
    let selected: Vec<&ParsedFile> = files.to_vec();
    let ws = Workspace::build(selected.iter().copied());

    // Per fn: token position of the first ledger reservation, and the
    // positions of direct `.estimate(` calls.
    let mut first_res: BTreeMap<FnId, usize> = BTreeMap::new();
    let mut estimates: BTreeMap<FnId, Vec<&Call>> = BTreeMap::new();
    let mut audited: BTreeSet<FnId> = BTreeSet::new();
    for (fi, file) in selected.iter().enumerate() {
        for (gi, f) in file.fns.iter().enumerate() {
            if !scope.include_tests && is_test_fn(file, f) {
                continue;
            }
            let id = (fi, gi);
            audited.insert(id);
            for call in &ws.calls[&id] {
                if matches!(call.kind, CallKind::SelfMethod | CallKind::Method) {
                    match call.name.as_str() {
                        "reserve" | "reserve_many" => {
                            let e = first_res.entry(id).or_insert(call.tok);
                            *e = (*e).min(call.tok);
                        }
                        "estimate" => estimates.entry(id).or_default().push(call),
                        _ => {}
                    }
                }
            }
        }
    }

    // Exposure fixpoint: a fn is exposed when some path through it
    // reaches `.estimate(` with no reservation at an earlier position.
    let mut exposed: BTreeMap<FnId, (u32, String)> = BTreeMap::new();
    for (&id, ests) in &estimates {
        let guard = first_res.get(&id).copied().unwrap_or(usize::MAX);
        if let Some(c) = ests.iter().find(|c| c.tok < guard) {
            exposed.insert(
                id,
                (
                    c.line,
                    "`.estimate(…)` with no ledger reservation on any earlier path \
                     position in this function"
                        .to_string(),
                ),
            );
        }
    }
    loop {
        let mut grew = false;
        for &id in &audited {
            if exposed.contains_key(&id) {
                continue;
            }
            let guard = first_res.get(&id).copied().unwrap_or(usize::MAX);
            for call in &ws.calls[&id] {
                if call.tok >= guard {
                    continue;
                }
                let Some(callee) = ws.resolve(id, call) else {
                    continue;
                };
                if exposed.contains_key(&callee) {
                    exposed.insert(
                        id,
                        (
                            call.line,
                            format!(
                                "call to `{}` reaches `Estimator::estimate` with no ledger \
                                 reservation at any earlier position in this function",
                                ws.fn_item(callee).qual_name()
                            ),
                        ),
                    );
                    grew = true;
                    break;
                }
            }
        }
        if !grew {
            break;
        }
    }

    // Callers within the audited set.
    let mut has_caller: BTreeSet<FnId> = BTreeSet::new();
    for &id in &audited {
        for call in &ws.calls[&id] {
            if let Some(callee) = ws.resolve(id, call) {
                if callee != id {
                    has_caller.insert(callee);
                }
            }
        }
    }

    // An exposed fn is a violation when budget-free estimation is
    // reachable from outside: it is `pub`, or nothing in scope calls
    // it (so every caller is outside the audited surface).
    for (&id, (line, detail)) in &exposed {
        let f = ws.fn_item(id);
        if f.is_pub || !has_caller.contains(&id) {
            let why = if f.is_pub {
                "is `pub`"
            } else {
                "has no in-scope caller that could hold the reservation"
            };
            out.push(SemFinding {
                path: selected[id.0].path.clone(),
                rule,
                line: *line,
                message: format!(
                    "`{}` {why} and reaches estimation without a dominating reservation: \
                     {detail} — every `Estimator::estimate` call must be preceded by a \
                     ledger `reserve`/`reserve_many` on the same path (§6.2)",
                    f.qual_name()
                ),
            });
        }
    }
}

// --------------------------------------------------------------- R10

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Idents that legitimately precede a `[` without it being an index
/// expression (`&mut [u8]`, `dyn [..]`, `return [..]`, …).
const NON_INDEX_PREV: [&str; 10] = [
    "mut", "ref", "dyn", "move", "return", "break", "in", "else", "as", "const",
];

fn scan_panic_surface(
    rule: &'static Rule,
    files: &[&ParsedFile],
    scope: &RuleScope,
    out: &mut Vec<SemFinding>,
) {
    for file in files {
        let tokens = &file.tokens;
        let caught = catch_unwind_mask(tokens);
        for i in 0..tokens.len() {
            if caught[i] {
                continue;
            }
            if !scope.include_tests && file.test_mask.get(i).copied().unwrap_or(false) {
                continue;
            }
            // `.unwrap()` / `.expect(` — exact names only
            // (`unwrap_or_default` and friends are the *fix*).
            if tokens[i].is_punct('.')
                && matches!(ident_at(tokens, i + 1), Some("unwrap" | "expect"))
                && punct_at(tokens, i + 2, '(')
            {
                out.push(SemFinding {
                    path: file.path.clone(),
                    rule,
                    line: tokens[i + 1].line,
                    message: format!(
                        "`.{}()` outside the catch_unwind dispatch boundary — a panic here \
                         kills the event-loop worker and every connection it carries (§10); \
                         degrade to an error or default instead",
                        ident_at(tokens, i + 1).unwrap_or_default()
                    ),
                });
            }
            if let Some(name) = ident_at(tokens, i) {
                if PANIC_MACROS.contains(&name) && punct_at(tokens, i + 1, '!') {
                    out.push(SemFinding {
                        path: file.path.clone(),
                        rule,
                        line: tokens[i].line,
                        message: format!(
                            "`{name}!` outside the catch_unwind dispatch boundary — the \
                             reactor must degrade, never panic (§10)"
                        ),
                    });
                }
            }
            // Index/slice expressions: `expr[…]` panics on
            // out-of-bounds. Only a `[` directly after a value
            // (ident, `)`, `]`) is an index; type positions
            // (`&mut [u8]`, `-> [u8; 4]`) are not.
            if tokens[i].is_punct('[') && i > 0 {
                let is_index = match &tokens[i - 1].kind {
                    crate::lexer::TokenKind::Ident(s) => !NON_INDEX_PREV.contains(&s.as_str()),
                    crate::lexer::TokenKind::Punct(')' | ']') => true,
                    _ => false,
                };
                if is_index {
                    out.push(SemFinding {
                        path: file.path.clone(),
                        rule,
                        line: tokens[i].line,
                        message: "unchecked index/slice expression outside the catch_unwind \
                                  dispatch boundary — out-of-bounds panics kill the event-loop \
                                  worker (§10); use get()/take()/iterator forms"
                            .to_string(),
                    });
                }
            }
        }
    }
}

/// Marks the token spans of `catch_unwind(...)` argument lists — the
/// one place the reactor is allowed to observe a panic.
fn catch_unwind_mask(tokens: &[crate::lexer::Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    for i in 0..tokens.len() {
        if ident_at(tokens, i) == Some("catch_unwind") && punct_at(tokens, i + 1, '(') {
            let close = matching_paren(tokens, i + 1);
            for m in &mut mask[i..=close.min(tokens.len() - 1)] {
                *m = true;
            }
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse_file;

    fn parsed(path: &str, src: &str) -> ParsedFile {
        let lexed = lex(src);
        let mask = crate::engine::test_item_mask(&lexed.tokens);
        parse_file(path, lexed.tokens, mask)
    }

    fn run(config_extra: &str, files: Vec<ParsedFile>) -> Vec<(String, String, u32)> {
        let config = Config::parse(config_extra).unwrap();
        scan_workspace(&files, &config)
            .into_iter()
            .map(|f| (f.rule.id.to_string(), f.path, f.line))
            .collect()
    }

    #[test]
    fn r7_traces_seeds_through_locals_to_params_and_child_seed() {
        let cfg = "[rule.R7]\npaths = [\"crates/c/src\"]\n";
        // Compliant: direct child_seed, via local, via param.
        let ok = parsed(
            "crates/c/src/ok.rs",
            "fn a(master: u64) {\n\
               let mut r = seeded(child_seed(master, 1));\n\
               let s = child_seed(master, 2);\n\
               let mut r2 = seeded(s);\n\
               let mut r3 = seeded(master);\n\
             }\n",
        );
        assert!(run(cfg, vec![ok]).is_empty());

        // Violations: ambient entropy and a fixed literal seed.
        let bad = parsed(
            "crates/c/src/bad.rs",
            "fn b() {\n\
               let mut r = seeded(42);\n\
               let mut q = StdRng::from_entropy();\n\
             }\n",
        );
        let got = run(cfg, vec![bad]);
        assert_eq!(
            got,
            vec![
                ("R7".into(), "crates/c/src/bad.rs".into(), 2),
                ("R7".into(), "crates/c/src/bad.rs".into(), 3),
            ]
        );
    }

    #[test]
    fn r7_skips_test_items_and_out_of_scope_files() {
        let cfg = "[rule.R7]\npaths = [\"crates/c/src\"]\n";
        let test_only = parsed(
            "crates/c/src/t.rs",
            "#[cfg(test)]\nmod tests {\n  #[test]\n  fn t() { let r = seeded(7); }\n}\n",
        );
        assert!(run(cfg, vec![test_only]).is_empty());
        let elsewhere = parsed("crates/other/src/x.rs", "fn f() { let r = seeded(7); }\n");
        assert!(run(cfg, vec![elsewhere]).is_empty());
    }

    #[test]
    fn r8_flags_inconsistent_order_across_files() {
        let cfg = "[rule.R8]\npaths = [\"crates/c/src\"]\n";
        let a = parsed(
            "crates/c/src/a.rs",
            "fn f(x: L) {\n  let g = x.alpha.lock();\n  let h = x.beta.lock();\n}\n",
        );
        let b = parsed(
            "crates/c/src/b.rs",
            "fn g(x: L) {\n  let g = x.beta.lock();\n  let h = x.alpha.lock();\n}\n",
        );
        let got = run(cfg, vec![a, b]);
        assert_eq!(got.len(), 2, "{got:?}");
        assert!(got.iter().any(|(_, p, l)| p.ends_with("a.rs") && *l == 3));
        assert!(got.iter().any(|(_, p, l)| p.ends_with("b.rs") && *l == 3));
    }

    #[test]
    fn r8_consistent_order_and_dropped_guards_pass() {
        let cfg = "[rule.R8]\npaths = [\"crates/c/src\"]\n";
        let consistent = parsed(
            "crates/c/src/a.rs",
            "fn f(x: L) { let g = x.alpha.lock(); let h = x.beta.lock(); }\n\
             fn g(x: L) { let g = x.alpha.lock(); let h = x.beta.lock(); }\n",
        );
        assert!(run(cfg, vec![consistent]).is_empty());

        // drop() ends the live range before the second acquisition.
        let dropped = parsed(
            "crates/c/src/b.rs",
            "fn f(x: L) {\n  let g = x.alpha.lock();\n  drop(g);\n  let h = x.beta.lock();\n}\n\
             fn g(x: L) {\n  let h = x.beta.lock();\n  let g = x.alpha.lock();\n}\n",
        );
        assert!(run(cfg, vec![dropped]).is_empty());

        // Read-then-write on the same lock in *sequential* constructs
        // (the view-cache pattern) is not nesting.
        let seq = parsed(
            "crates/c/src/c.rs",
            "fn f(s: S) {\n  if let Ok(g) = s.slot.read() { use_it(&g); }\n  match s.slot.write() { Ok(mut w) => { *w = 1; } Err(_) => {} }\n}\n",
        );
        assert!(run(cfg, vec![seq]).is_empty());
    }

    #[test]
    fn r8_same_label_nesting_and_self_method_propagation() {
        let cfg = "[rule.R8]\npaths = [\"crates/c/src\"]\n";
        let same = parsed(
            "crates/c/src/a.rs",
            "fn f(x: L) {\n  let g = x.inner.lock();\n  let h = x.inner.lock();\n}\n",
        );
        let got = run(cfg, vec![same]);
        assert_eq!(got, vec![("R8".into(), "crates/c/src/a.rs".into(), 3)]);

        // Held guard across a self-method call that locks in reverse.
        let prop = parsed(
            "crates/c/src/b.rs",
            "struct S;\nimpl S {\n\
               fn a(&self) {\n  let g = self.alpha.lock();\n  self.locks_beta();\n}\n\
               fn locks_beta(&self) { let h = self.beta.lock(); }\n\
               fn b(&self) {\n  let g = self.beta.lock();\n  let h = self.alpha.lock();\n}\n\
             }\n",
        );
        let got = run(cfg, vec![prop]);
        assert_eq!(got.len(), 2, "{got:?}");
    }

    #[test]
    fn r9_flags_pub_unreserved_estimate_and_exposure_through_calls() {
        let cfg = "[rule.R9]\npaths = [\"crates/updp-serve/src\"]\n";
        let bad = parsed(
            "crates/updp-serve/src/engine.rs",
            "pub fn free_estimate(e: E, v: V) -> f64 {\n  e.estimate(v)\n}\n",
        );
        let got = run(cfg, vec![bad]);
        assert_eq!(
            got,
            vec![("R9".into(), "crates/updp-serve/src/engine.rs".into(), 2)]
        );

        // A private estimate helper whose only caller reserves first
        // is clean; a pub wrapper that skips the reservation is not.
        let layered = parsed(
            "crates/updp-serve/src/engine.rs",
            "fn run_one(e: E) -> f64 { e.estimate(v) }\n\
             pub fn guarded(l: L, e: E) -> f64 {\n  l.reserve_many(q);\n  run_one(e)\n}\n\
             pub fn unguarded(e: E) -> f64 {\n  run_one(e)\n}\n",
        );
        let got = run(cfg, vec![layered]);
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].2, 7, "the witness call inside the unguarded wrapper");
    }

    #[test]
    fn r10_flags_panics_outside_catch_unwind_and_masks_inside() {
        let cfg = "[rule.R10]\npaths = [\"crates/updp-serve/src/reactor.rs\"]\n";
        let f = parsed(
            "crates/updp-serve/src/reactor.rs",
            "fn f(v: Vec<u8>, i: usize) {\n\
               let x = v[i];\n\
               let y = v.get(i).unwrap();\n\
               panic!(\"boom\");\n\
               let ok = catch_unwind(|| v[i] + v.get(i).unwrap());\n\
               let z = v.get(i).copied().unwrap_or_default();\n\
             }\n",
        );
        let got = run(cfg, vec![f]);
        assert_eq!(
            got,
            vec![
                ("R10".into(), "crates/updp-serve/src/reactor.rs".into(), 2),
                ("R10".into(), "crates/updp-serve/src/reactor.rs".into(), 3),
                ("R10".into(), "crates/updp-serve/src/reactor.rs".into(), 4),
            ]
        );
    }

    #[test]
    fn r10_spares_type_position_brackets_and_attributes() {
        let cfg = "[rule.R10]\npaths = [\"crates/updp-serve/src/poll.rs\"]\n";
        let f = parsed(
            "crates/updp-serve/src/poll.rs",
            "#[derive(Debug)]\nstruct E { buf: [u8; 4] }\nfn f(b: &mut [u8]) -> [u8; 2] { [0, 1] }\n",
        );
        assert!(run(cfg, vec![f]).is_empty());
    }

    #[test]
    fn semantic_rules_require_explicit_configuration() {
        // No [rule.R7] section → the rule is off even for files that
        // would violate it under the default whole-tree scope.
        let f = parsed("crates/c/src/x.rs", "fn f() { let r = seeded(7); }\n");
        assert!(run("[rule.R1]\npaths = [\"crates/c/src\"]\n", vec![f]).is_empty());
    }
}
