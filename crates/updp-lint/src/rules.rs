//! The invariant catalog: what each rule enforces, which DESIGN.md
//! contract it audits, and the lexical matcher that detects
//! violations.
//!
//! Rules are deliberately *lexical over the token stream*, not
//! type-aware: the auditor runs on every CI push, must never miss a
//! violation because type inference got complicated, and accepts the
//! cost that a rare legitimate use needs an explicit
//! `// updp-lint: allow(R<n>, reason="…")` — a written, reviewable
//! justification is exactly the escape-hatch policy (DESIGN.md §9).

use crate::lexer::{Comment, Token, TokenKind};

/// One catalog entry.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// Stable id, cited in diagnostics and allow comments (`R1`…).
    pub id: &'static str,
    /// Short kebab-case name.
    pub name: &'static str,
    /// The DESIGN.md contract section the rule enforces.
    pub contract: &'static str,
    /// One-line summary (shown by `--list`).
    pub summary: &'static str,
    /// The full rationale (shown by `--explain`).
    pub rationale: &'static str,
    /// Semantic rules (R7–R10) run in the workspace-level pass over
    /// the parsed item/call structure, not the per-file token scan,
    /// and activate only when explicitly configured in `lint.toml`
    /// (DESIGN.md §13).
    pub semantic: bool,
}

/// The audited invariants (DESIGN.md §9 and §13 document this
/// catalog): six lexical per-file rules plus four semantic
/// workspace-level rules.
pub const CATALOG: [Rule; 10] = [
    Rule {
        id: "R1",
        name: "ambient-authority",
        contract: "DESIGN.md §5, §7",
        summary: "no wall clocks, ambient RNG, or environment reads in determinism-scoped code",
        rationale: "Released values must be a pure function of (data, seed): bit-identical at any \
                    thread count (§5) and across cached vs. bare dataset views (§7). A single \
                    `Instant::now()`, `SystemTime`, `thread_rng()`, or `std::env` read inside an \
                    estimator, the view cache, the parallel engine, or an experiment trial path \
                    makes output depend on machine state that no seed controls — and the breakage \
                    is invisible until a golden-bits test happens to cover the path. Clocks and \
                    environment belong in binaries and the serve transport, never in the \
                    determinism scope. Legitimate exceptions (e.g. the documented UPDP_THREADS \
                    worker-count override, which §5 proves cannot change output bits) carry an \
                    allow with the proof sketched in its reason.",
        semantic: false,
    },
    Rule {
        id: "R2",
        name: "hash-order",
        contract: "DESIGN.md §5, §7",
        summary: "no HashMap/HashSet in determinism-scoped code (BTree or explicit sort instead)",
        rationale: "std's HashMap/HashSet iterate in randomized order (SipHash keys differ per \
                    process), so any released value derived from their iteration order differs \
                    run to run. Keyed lookup is semantically safe but a reviewer cannot tell a \
                    lookup-only map from one that is iterated three PRs later, so the determinism \
                    scope bans the types outright: use BTreeMap/BTreeSet (deterministic order, \
                    and the maps here are small), or sort explicitly on a total key, or justify a \
                    lookup-only use with an allow.",
        semantic: false,
    },
    Rule {
        id: "R3",
        name: "lock-poison-unwrap",
        contract: "DESIGN.md §6",
        summary:
            "no .unwrap()/.expect() on Mutex/RwLock guards; map poisoning to structured errors",
        rationale: "A panicking worker poisons the locks it held; unwrap()ing a poisoned guard \
                    cascades that one panic into every thread that touches the lock, taking down \
                    the whole serve process instead of failing one request. The registry and \
                    ledger map poisoning to structured `Poisoned` errors that surface as a 500 \
                    `internal` wire error (§6); all first-party lock acquisitions must either do \
                    the same or recover explicitly (e.g. PoisonError::into_inner where the \
                    guarded data is provably consistent), with the argument written down.",
        semantic: false,
    },
    Rule {
        id: "R4",
        name: "safety-comment",
        contract: "DESIGN.md §4",
        summary: "every `unsafe` block needs an adjacent `// SAFETY:` comment",
        rationale: "The workspace is currently 100% `#![forbid(unsafe_code)]` (§4). If a future \
                    optimization genuinely needs unsafe, the block must state the invariant it \
                    relies on in a `// SAFETY:` comment on or immediately above the block, so the \
                    proof obligation is reviewable and survives refactors. Unjustified unsafe is \
                    rejected at CI time.",
        semantic: false,
    },
    Rule {
        id: "R5",
        name: "float-eq",
        contract: "DESIGN.md §1, §5",
        summary: "no float ==/!= against float literals or float consts; use total_cmp/to_bits",
        rationale: "The determinism contracts are stated bitwise (§5: identical bits at any \
                    thread count; §7/§8: cached and merge-maintained artifacts bit-identical to \
                    cold builds), and float == is the classic way to *almost* check that: it \
                    conflates -0.0 with 0.0, never matches NaN, and silently depends on \
                    intermediate rounding. Comparisons that matter go through total_cmp or \
                    to_bits. Exact sentinel checks against representable constants (0.0 width \
                    degeneracy, fract() == 0.0 integrality) are legitimate — each carries an \
                    allow whose reason states why exact equality is the intended semantics.",
        semantic: false,
    },
    Rule {
        id: "R6",
        name: "no-print",
        contract: "DESIGN.md §6",
        summary: "no println!/eprintln! in library crates (binaries own their streams)",
        rationale: "Library stdout/stderr is owned by callers: the serve binary speaks a framed \
                    wire protocol, the experiments binary emits machine-diffed tables, and the \
                    bench binaries write committed JSON reports. A stray println! in a library \
                    corrupts whichever of those streams the caller was producing (the §6 wire \
                    framing bugs were exactly this class). Libraries return values and structured \
                    errors; only binary targets print. (dbg! is covered by the workspace clippy \
                    lint `dbg_macro` — complementary, no overlap.)",
        semantic: false,
    },
    Rule {
        id: "R7",
        name: "seed-discipline",
        contract: "DESIGN.md §1.1, §5, §13",
        summary: "every RNG in determinism scope must trace to child_seed or a caller-passed seed",
        rationale: "The seed tree (§1.1) is the sole randomness root: trial t of any cell is a \
                    pure function of (master_seed, t), which is what makes execution order and \
                    thread count irrelevant (§5). An RNG minted from ambient entropy \
                    (from_entropy, OsRng) or from a fixed ad-hoc literal forks that tree: the \
                    former breaks reproducibility outright, the latter silently correlates \
                    trials that the accounting assumes independent. The rule traces each \
                    seed-consuming constructor's argument through local bindings and accepts \
                    only spans that reach child_seed, a parameter of the enclosing fn, or self \
                    — anything else needs a written allow. This is a semantic rule: it runs \
                    over the parsed item structure in the workspace pass (§13) and only where \
                    lint.toml scopes it.",
        semantic: true,
    },
    Rule {
        id: "R8",
        name: "lock-order",
        contract: "DESIGN.md §6, §10, §13",
        summary: "nested lock acquisitions must agree on one global order (deadlock detector)",
        rationale: "The serve stack holds locks across calls: the registry's pending buffer \
                    feeds snapshot publication, the ledger serializes persistence behind its \
                    accounts map, and the view cache layers read/write slots (§6). Two code \
                    paths that nest the same two locks in opposite orders deadlock under \
                    contention — a bug the hammer tests can only find probabilistically. The \
                    rule collects (outer, inner) acquisition pairs across every scoped file, \
                    approximating guard live ranges (let-binding → enclosing block or \
                    drop(); if/while/match head → end of construct; chained temporary → end \
                    of statement) and propagating through self-method calls, then rejects any \
                    cycle in the resulting order graph and any same-lock re-acquisition. \
                    Semantic rule: workspace pass, explicit scope (§13).",
        semantic: true,
    },
    Rule {
        id: "R9",
        name: "reserve-before-estimate",
        contract: "DESIGN.md §6.2, §13",
        summary: "every path to Estimator::estimate must be dominated by a ledger reservation",
        rationale: "The privacy ledger is only sound if no estimate runs without its epsilon \
                    reserved first (§6.2): a budget-free estimation path leaks privacy without \
                    any runtime signal, and the hammer tests cannot exhaustively rule one out. \
                    The rule computes an exposure fixpoint over the serve crate's call graph: \
                    a fn is exposed when it reaches an .estimate() call with no \
                    reserve/reserve_many at an earlier position, directly or through a call to \
                    an exposed fn. An exposed fn that is pub, or that no in-scope caller \
                    guards, is a violation. Call-graph edges are added only on unambiguous \
                    evidence (§13.2), so a refactor that obscures the call chain fails loudly \
                    here rather than silently passing. Semantic rule: workspace pass, \
                    explicit scope (§13).",
        semantic: true,
    },
    Rule {
        id: "R10",
        name: "panic-surface",
        contract: "DESIGN.md §10, §13",
        summary: "no unwrap/expect/indexing/panic! in the reactor outside catch_unwind",
        rationale: "The reactor multiplexes every connection of a worker onto one event loop \
                    (§10); a panic outside the catch_unwind dispatch boundary does not 500 one \
                    request — it kills the worker and silently drops every connection it \
                    carried. Handler panics are caught at exactly one place (the route \
                    dispatch); everywhere else the loop must degrade: unwrap/expect become \
                    unwrap_or-style defaults or early returns, index and slice expressions \
                    become get()/take()/iterator forms. Sites where the bounds are guaranteed \
                    by a platform contract carry an allow with that argument written down. \
                    Semantic rule: workspace pass, explicit scope (§13).",
        semantic: true,
    },
];

/// Looks up a catalog rule by id.
pub fn find(id: &str) -> Option<&'static Rule> {
    CATALOG.iter().find(|r| r.id == id)
}

/// One raw rule hit (pre-allow): the violated rule, the line, and a
/// message describing the specific match.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: &'static Rule,
    pub line: u32,
    pub message: String,
}

fn finding(rule: &'static Rule, line: u32, message: String) -> Finding {
    Finding {
        rule,
        line,
        message,
    }
}

/// Runs one rule's matcher over a (possibly test-filtered) token
/// stream. `comments` is the full comment list (R4 reads it).
pub fn scan(rule: &'static Rule, tokens: &[Token], comments: &[Comment]) -> Vec<Finding> {
    match rule.id {
        "R1" => scan_ambient_authority(rule, tokens),
        "R2" => scan_hash_order(rule, tokens),
        "R3" => scan_lock_unwrap(rule, tokens),
        "R4" => scan_safety_comment(rule, tokens, comments),
        "R5" => scan_float_eq(rule, tokens),
        "R6" => scan_no_print(rule, tokens),
        other => unreachable!("no matcher for rule {other}"),
    }
}

fn ident_at(tokens: &[Token], i: usize) -> Option<&str> {
    tokens.get(i).and_then(Token::ident)
}

fn punct_at(tokens: &[Token], i: usize, c: char) -> bool {
    tokens.get(i).is_some_and(|t| t.is_punct(c))
}

/// `tokens[i..]` starts with `a :: b`.
fn path_pair(tokens: &[Token], i: usize, a: &str, b: &str) -> bool {
    ident_at(tokens, i) == Some(a)
        && punct_at(tokens, i + 1, ':')
        && punct_at(tokens, i + 2, ':')
        && ident_at(tokens, i + 3) == Some(b)
}

fn scan_ambient_authority(rule: &'static Rule, tokens: &[Token]) -> Vec<Finding> {
    const ENV_READS: [&str; 9] = [
        "var",
        "var_os",
        "vars",
        "set_var",
        "remove_var",
        "args",
        "args_os",
        "temp_dir",
        "current_dir",
    ];
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        let line = tokens[i].line;
        if path_pair(tokens, i, "Instant", "now") {
            out.push(finding(
                rule,
                line,
                "`Instant::now()` inside determinism-scoped code — wall-clock time must not \
                 influence released values"
                    .into(),
            ));
        } else if ident_at(tokens, i) == Some("SystemTime") {
            out.push(finding(
                rule,
                line,
                "`SystemTime` inside determinism-scoped code — wall-clock time must not \
                 influence released values"
                    .into(),
            ));
        } else if ident_at(tokens, i) == Some("thread_rng") {
            out.push(finding(
                rule,
                line,
                "`thread_rng()` inside determinism-scoped code — all randomness must flow from \
                 the §1.1 seed tree"
                    .into(),
            ));
        } else if path_pair(tokens, i, "std", "env") {
            out.push(finding(
                rule,
                line,
                "`std::env` access inside determinism-scoped code — process environment must \
                 not influence released values"
                    .into(),
            ));
        } else if ident_at(tokens, i) == Some("env")
            && punct_at(tokens, i + 1, ':')
            && punct_at(tokens, i + 2, ':')
            && ident_at(tokens, i + 3).is_some_and(|m| ENV_READS.contains(&m))
            // `std::env::var` already reported at the `std` token.
            && !(i >= 2 && punct_at(tokens, i - 1, ':') && punct_at(tokens, i - 2, ':'))
        {
            out.push(finding(
                rule,
                line,
                format!(
                    "`env::{}` inside determinism-scoped code — process environment must not \
                     influence released values",
                    ident_at(tokens, i + 3).unwrap_or_default()
                ),
            ));
        }
    }
    out
}

fn scan_hash_order(rule: &'static Rule, tokens: &[Token]) -> Vec<Finding> {
    tokens
        .iter()
        .filter(|t| matches!(t.ident(), Some("HashMap" | "HashSet")))
        .map(|t| {
            finding(
                rule,
                t.line,
                format!(
                    "`{}` in determinism-scoped code — iteration order is per-process random; \
                     use BTreeMap/BTreeSet or an explicit sort on a total key",
                    t.ident().unwrap_or_default()
                ),
            )
        })
        .collect()
}

fn scan_lock_unwrap(rule: &'static Rule, tokens: &[Token]) -> Vec<Finding> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        // `. lock ( ) . unwrap|expect (` — argless read()/write() are
        // lock acquisitions (io::Read::read takes a buffer argument).
        if punct_at(tokens, i, '.')
            && matches!(ident_at(tokens, i + 1), Some("lock" | "read" | "write"))
            && punct_at(tokens, i + 2, '(')
            && punct_at(tokens, i + 3, ')')
            && punct_at(tokens, i + 4, '.')
            && matches!(ident_at(tokens, i + 5), Some("unwrap" | "expect"))
            && punct_at(tokens, i + 6, '(')
        {
            out.push(finding(
                rule,
                tokens[i + 5].line,
                format!(
                    "`.{}().{}()` on a lock guard — a poisoned lock cascades one worker's panic \
                     into every thread; map poisoning to a structured error instead",
                    ident_at(tokens, i + 1).unwrap_or_default(),
                    ident_at(tokens, i + 5).unwrap_or_default(),
                ),
            ));
        }
    }
    out
}

fn scan_safety_comment(
    rule: &'static Rule,
    tokens: &[Token],
    comments: &[Comment],
) -> Vec<Finding> {
    let mut out = Vec::new();
    for t in tokens {
        if t.ident() != Some("unsafe") {
            continue;
        }
        // A `// SAFETY:` comment counts when it ends on the unsafe
        // block's line or within the 2 lines above it (attributes or
        // the fn signature may sit between).
        let justified = comments.iter().any(|c| {
            c.text.contains("SAFETY:") && c.end_line <= t.line && c.end_line + 2 >= t.line
        });
        if !justified {
            out.push(finding(
                rule,
                t.line,
                "`unsafe` without an adjacent `// SAFETY:` comment — state the invariant the \
                 block relies on, on or immediately above it"
                    .into(),
            ));
        }
    }
    out
}

/// Float constants that identify a comparison operand as a float even
/// without type information, when qualified by `f32`/`f64`.
const FLOAT_CONSTS: [&str; 7] = [
    "NAN",
    "INFINITY",
    "NEG_INFINITY",
    "EPSILON",
    "MIN_POSITIVE",
    "MAX",
    "MIN",
];

/// Is the token ending at `i` (reading left) a float operand?
/// Matches `1.5` and `f64::NAN`-style qualified consts.
fn float_operand_before(tokens: &[Token], i: usize) -> bool {
    let Some(t) = tokens.get(i) else { return false };
    match &t.kind {
        TokenKind::Num { float } => *float,
        TokenKind::Ident(name) if FLOAT_CONSTS.contains(&name.as_str()) => {
            i >= 3
                && punct_at(tokens, i - 1, ':')
                && punct_at(tokens, i - 2, ':')
                && matches!(ident_at(tokens, i - 3), Some("f32" | "f64"))
        }
        _ => false,
    }
}

/// Is the token sequence starting at `i` (reading right) a float
/// operand? Skips a leading unary minus; matches literals and
/// `f64::CONST` paths.
fn float_operand_after(tokens: &[Token], mut i: usize) -> bool {
    if punct_at(tokens, i, '-') {
        i += 1;
    }
    match tokens.get(i).map(|t| &t.kind) {
        Some(TokenKind::Num { float }) => *float,
        Some(TokenKind::Ident(name)) if name == "f32" || name == "f64" => {
            punct_at(tokens, i + 1, ':')
                && punct_at(tokens, i + 2, ':')
                && ident_at(tokens, i + 3).is_some_and(|c| FLOAT_CONSTS.contains(&c))
        }
        _ => false,
    }
}

fn scan_float_eq(rule: &'static Rule, tokens: &[Token]) -> Vec<Finding> {
    let mut out = Vec::new();
    for i in 0..tokens.len().saturating_sub(1) {
        let op = if punct_at(tokens, i, '=') && punct_at(tokens, i + 1, '=') {
            // Exclude `<=`, `>=`, `!=`'s second char, and `==`'s own
            // second char re-matching.
            if i > 0 && matches!(tokens[i - 1].kind, TokenKind::Punct('<' | '>' | '!' | '=')) {
                continue;
            }
            "=="
        } else if punct_at(tokens, i, '!') && punct_at(tokens, i + 1, '=') {
            "!="
        } else {
            continue;
        };
        if tokens[i].line != tokens[i + 1].line {
            continue;
        }
        if float_operand_before(tokens, i.wrapping_sub(1)) || float_operand_after(tokens, i + 2) {
            out.push(finding(
                rule,
                tokens[i].line,
                format!(
                    "float `{op}` against a float literal/constant — bitwise contracts compare \
                     via total_cmp or to_bits; if exact equality is the intended semantics, say \
                     why in an allow reason"
                ),
            ));
        }
    }
    out
}

fn scan_no_print(rule: &'static Rule, tokens: &[Token]) -> Vec<Finding> {
    let mut out = Vec::new();
    for i in 0..tokens.len().saturating_sub(1) {
        if matches!(
            ident_at(tokens, i),
            Some("println" | "eprintln" | "print" | "eprint")
        ) && punct_at(tokens, i + 1, '!')
        {
            out.push(finding(
                rule,
                tokens[i].line,
                format!(
                    "`{}!` in a library crate — libraries return values and structured errors; \
                     stdout/stderr belong to binary targets",
                    ident_at(tokens, i).unwrap_or_default()
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn hits(rule_id: &str, src: &str) -> Vec<(u32, String)> {
        let lexed = lex(src);
        scan(find(rule_id).unwrap(), &lexed.tokens, &lexed.comments)
            .into_iter()
            .map(|f| (f.line, f.message))
            .collect()
    }

    #[test]
    fn r1_matches_each_ambient_source_with_exact_lines() {
        let src = "fn f() {\n  let t = Instant::now();\n  let r = thread_rng();\n  let e = std::env::var(\"X\");\n  let s = SystemTime::now();\n  let v = env::var(\"Y\");\n}\n";
        let got: Vec<u32> = hits("R1", src).into_iter().map(|(l, _)| l).collect();
        assert_eq!(got, vec![2, 3, 4, 5, 6]);
    }

    #[test]
    fn r1_clean_code_and_masked_mentions_pass() {
        assert!(hits(
            "R1",
            "// Instant::now in a comment\nlet s = \"thread_rng\";\nlet instant = now();\n"
        )
        .is_empty());
        // `environment` as a plain ident is not `env::`.
        assert!(hits("R1", "let env = environment();\n").is_empty());
    }

    #[test]
    fn r2_flags_hash_types_and_spares_btree() {
        assert_eq!(hits("R2", "use std::collections::HashMap;\n")[0].0, 1);
        assert_eq!(hits("R2", "let s: HashSet<u32> = x;\n").len(), 1);
        assert!(hits("R2", "use std::collections::BTreeMap;\n").is_empty());
    }

    #[test]
    fn r3_flags_guard_unwraps_including_multiline_and_spares_mapped() {
        assert_eq!(hits("R3", "let g = m.lock().unwrap();\n").len(), 1);
        assert_eq!(
            hits("R3", "let g = m\n  .read()\n  .expect(\"x\");\n")[0].0,
            3
        );
        assert_eq!(hits("R3", "let g = m.write().unwrap();\n").len(), 1);
        assert!(hits("R3", "let g = m.lock().map_err(|_| E::Poisoned)?;\n").is_empty());
        // io::Read::read takes a buffer — not a lock acquisition.
        assert!(hits("R3", "stream.read(&mut buf).unwrap();\n").is_empty());
        assert!(hits(
            "R3",
            "let g = m.lock().unwrap_or_else(PoisonError::into_inner);\n"
        )
        .is_empty());
    }

    #[test]
    fn r4_requires_adjacent_safety_comment() {
        assert_eq!(hits("R4", "fn f() {\n  unsafe { core() }\n}\n").len(), 1);
        assert!(hits(
            "R4",
            "// SAFETY: ptr is valid for len bytes\nunsafe { core() }\n"
        )
        .is_empty());
        assert!(hits("R4", "unsafe { core() } // SAFETY: same-line note\n").is_empty());
        // Too far away: three lines of separation is no longer adjacent.
        assert_eq!(
            hits(
                "R4",
                "// SAFETY: stale\nfn a() {}\nfn b() {}\nunsafe { core() }\n"
            )
            .len(),
            1
        );
    }

    #[test]
    fn r5_flags_literal_and_const_float_comparisons() {
        assert_eq!(hits("R5", "if width == 0.0 { }\n").len(), 1);
        assert_eq!(hits("R5", "if x != 1.5 { }\n").len(), 1);
        assert_eq!(hits("R5", "if x == -2.5e3 { }\n").len(), 1);
        assert_eq!(hits("R5", "if w == f64::NEG_INFINITY { }\n").len(), 1);
        assert_eq!(hits("R5", "if f64::NAN == w { }\n").len(), 1);
        assert_eq!(hits("R5", "if 0.5 == x { }\n").len(), 1);
    }

    #[test]
    fn r5_spares_integers_ranges_and_bitwise_idioms() {
        assert!(hits("R5", "if n == 0 { }\n").is_empty());
        assert!(
            hits("R5", "if i32::MAX == n { }\n").is_empty(),
            "int consts are not floats"
        );
        assert!(hits("R5", "for i in 0..5 { }\n").is_empty());
        assert!(hits("R5", "if a.to_bits() == b.to_bits() { }\n").is_empty());
        assert!(
            hits("R5", "if x <= 1.0 { }\n").is_empty(),
            "ordering comparisons are fine"
        );
        assert!(hits("R5", "if x >= 1.0 { }\n").is_empty());
        assert!(
            hits("R5", "let f = |x| x == y;\n").is_empty(),
            "untyped operands are clippy float_cmp's job"
        );
    }

    #[test]
    fn r6_flags_prints_and_spares_write_macros() {
        assert_eq!(hits("R6", "println!(\"x\");\neprintln!(\"y\");\n").len(), 2);
        assert_eq!(hits("R6", "print!(\"x\");\n").len(), 1);
        assert!(hits("R6", "writeln!(out, \"x\")?;\n").is_empty());
        assert!(
            hits("R6", "let println = 3; let x = println + 1;\n").is_empty(),
            "ident without bang"
        );
    }
}
