//! A lightweight item parser on top of [`crate::lexer`]: extracts
//! `fn` items (with parameter names and body token ranges), the
//! `impl` block each method belongs to, and `use`/`mod` declarations.
//!
//! This is *not* a Rust parser — it is the minimum structure the
//! semantic rules (R7–R10, DESIGN.md §13) need: which tokens belong
//! to which function, what that function's inputs are named, and
//! enough of the item tree to resolve `self.method()` and
//! unique-name free-function calls within a crate. The extraction is
//! a single forward walk with brace matching; constructs it cannot
//! classify (trait-object sugar, const-generic braces in signatures)
//! degrade to "no item recorded", never to a panic — the same
//! totality discipline as the lexer.

use crate::lexer::{Token, TokenKind};

/// One `fn` item with a body.
#[derive(Debug, Clone)]
pub struct FnItem {
    pub name: String,
    /// The `impl`/`trait` self-type name, for methods.
    pub impl_type: Option<String>,
    /// `pub` (any visibility qualifier) on the item.
    pub is_pub: bool,
    /// Parameter identifier names, including `self` when present.
    pub params: Vec<String>,
    /// 1-based line of the function name.
    pub line: u32,
    /// Token index range of the body, `{` and `}` inclusive:
    /// `[body.0, body.1)`.
    pub body: (usize, usize),
}

impl FnItem {
    /// `Type::name` for methods, bare `name` otherwise.
    pub fn qual_name(&self) -> String {
        match &self.impl_type {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// One `use` declaration, flattened to its joined path text.
#[derive(Debug, Clone)]
pub struct UseDecl {
    pub path: String,
    pub line: u32,
}

/// One `mod` declaration (inline or file-backed).
#[derive(Debug, Clone)]
pub struct ModDecl {
    pub name: String,
    pub line: u32,
}

/// Parsed form of one source file: the full token stream plus the
/// item structure the semantic pass walks.
#[derive(Debug)]
pub struct ParsedFile {
    /// Workspace-relative, `/`-separated path.
    pub path: String,
    pub tokens: Vec<Token>,
    /// Per-token flag: inside a `#[cfg(test)]` / `#[test]` item.
    pub test_mask: Vec<bool>,
    pub fns: Vec<FnItem>,
    pub uses: Vec<UseDecl>,
    pub mods: Vec<ModDecl>,
}

impl ParsedFile {
    /// The crate a workspace-relative path belongs to
    /// (`crates/<name>/…` → `<name>`; anything else → `workspace`).
    pub fn crate_name(&self) -> &str {
        crate_of(&self.path)
    }
}

pub fn crate_of(path: &str) -> &str {
    let mut parts = path.split('/');
    if parts.next() == Some("crates") {
        parts.next().unwrap_or("workspace")
    } else {
        "workspace"
    }
}

fn ident_at(tokens: &[Token], i: usize) -> Option<&str> {
    tokens.get(i).and_then(Token::ident)
}

fn punct_at(tokens: &[Token], i: usize, c: char) -> bool {
    tokens.get(i).is_some_and(|t| t.is_punct(c))
}

/// Index one past the `}` matching the `{` at `open` (or `tokens.len()`
/// when unbalanced — truncated input must not wedge the walk).
pub fn matching_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i64;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return k + 1;
            }
        }
    }
    tokens.len()
}

/// Index of the `)` matching the `(` at `open` (or `tokens.len()` when
/// unbalanced).
pub fn matching_paren(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i64;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
    }
    tokens.len()
}

/// Skips a balanced `<…>` generic-parameter list starting at `open`
/// (which must be `<`); `->` inside bounds does not count as a close.
fn skip_generics(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i64;
    let mut i = open;
    while i < tokens.len() {
        if punct_at(tokens, i, '-') && punct_at(tokens, i + 1, '>') {
            i += 2;
            continue;
        }
        if punct_at(tokens, i, '<') {
            depth += 1;
        } else if punct_at(tokens, i, '>') {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    tokens.len()
}

/// Is index `i` at *item position* — the start of a declaration rather
/// than mid-expression (`-> impl Trait`, `&dyn Fn`, …)?
fn at_item_position(tokens: &[Token], i: usize) -> bool {
    if i == 0 {
        return true;
    }
    let prev = &tokens[i - 1];
    if matches!(prev.kind, TokenKind::Punct(';' | '{' | '}' | ']')) {
        return true;
    }
    matches!(
        prev.ident(),
        Some("pub" | "unsafe" | "async" | "const" | "default" | "extern")
    ) || matches!(prev.kind, TokenKind::Punct(')')) && is_vis_paren(tokens, i - 1)
}

/// `pub(crate)` / `pub(super)` / `pub(in path)` before an item: the
/// `)` at `close` belongs to a visibility qualifier.
fn is_vis_paren(tokens: &[Token], close: usize) -> bool {
    let mut k = close;
    let mut depth = 0i64;
    loop {
        if punct_at(tokens, k, ')') {
            depth += 1;
        } else if punct_at(tokens, k, '(') {
            depth -= 1;
            if depth == 0 {
                return k > 0 && ident_at(tokens, k - 1) == Some("pub");
            }
        }
        if k == 0 {
            return false;
        }
        k -= 1;
    }
}

/// Is `pub` (with or without a `(crate)`-style restriction) among the
/// qualifiers directly before the `fn` keyword at `fn_kw`?
fn has_pub_qualifier(tokens: &[Token], fn_kw: usize) -> bool {
    let mut k = fn_kw;
    while k > 0 {
        k -= 1;
        match &tokens[k].kind {
            TokenKind::Ident(s)
                if matches!(
                    s.as_str(),
                    "const"
                        | "async"
                        | "unsafe"
                        | "extern"
                        | "default"
                        | "crate"
                        | "super"
                        | "in"
                        | "self"
                ) => {}
            TokenKind::Ident(s) if s == "pub" => return true,
            TokenKind::Punct('(' | ')') => {}
            TokenKind::Literal => {} // extern "C"
            _ => return false,
        }
    }
    false
}

/// The self-type name of an `impl` header whose tokens span
/// `[start, body_open)`: the type after `for` when present
/// (trait impls), else the first type ident after the generics.
fn impl_self_type(tokens: &[Token], start: usize, body_open: usize) -> Option<String> {
    let mut i = start;
    if punct_at(tokens, i, '<') {
        i = skip_generics(tokens, i);
    }
    // A `for` not opening an HRTB (`for<'a>`) splits trait from type.
    let mut type_start = i;
    let mut k = i;
    while k < body_open {
        if ident_at(tokens, k) == Some("for") && !punct_at(tokens, k + 1, '<') {
            type_start = k + 1;
        }
        k += 1;
    }
    (type_start..body_open).find_map(|k| match ident_at(tokens, k) {
        Some("mut" | "dyn" | "where") | None => None,
        Some(name) => Some(name.to_string()),
    })
}

/// Parameter names of the list opening at `open` (a `(`); returns the
/// names and the index one past the closing `)`.
fn parse_params(tokens: &[Token], open: usize) -> (Vec<String>, usize) {
    let mut names = Vec::new();
    let mut depth = 0i64;
    let mut i = open;
    while i < tokens.len() {
        if punct_at(tokens, i, '(') {
            depth += 1;
        } else if punct_at(tokens, i, ')') {
            depth -= 1;
            if depth == 0 {
                return (names, i + 1);
            }
        } else if depth == 1 {
            if ident_at(tokens, i) == Some("self") {
                names.push("self".to_string());
            } else if let Some(name) = ident_at(tokens, i) {
                // `name :` (single colon) binds a typed parameter.
                if punct_at(tokens, i + 1, ':') && !punct_at(tokens, i + 2, ':') {
                    names.push(name.to_string());
                }
            }
        }
        i += 1;
    }
    (names, tokens.len())
}

/// Parses one file's token stream. `test_mask` is the per-token
/// `#[cfg(test)]` classification (see the engine's mask builder).
pub fn parse_file(path: &str, tokens: Vec<Token>, test_mask: Vec<bool>) -> ParsedFile {
    let mut fns = Vec::new();
    let mut uses = Vec::new();
    let mut mods = Vec::new();
    // Innermost-last stack of (self type, end token index) for
    // `impl`/`trait` blocks the walk is currently inside.
    let mut impl_stack: Vec<(Option<String>, usize)> = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        while impl_stack.last().is_some_and(|(_, end)| i >= *end) {
            impl_stack.pop();
        }
        match ident_at(&tokens, i) {
            Some("impl" | "trait") if at_item_position(&tokens, i) => {
                let body_open = (i + 1..tokens.len())
                    .find(|&k| punct_at(&tokens, k, '{') || punct_at(&tokens, k, ';'));
                match body_open {
                    Some(open) if punct_at(&tokens, open, '{') => {
                        let self_type = impl_self_type(&tokens, i + 1, open);
                        impl_stack.push((self_type, matching_brace(&tokens, open)));
                        i = open + 1;
                    }
                    _ => i += 1,
                }
            }
            Some("fn") if ident_at(&tokens, i + 1).is_some() => {
                let name = ident_at(&tokens, i + 1).unwrap_or_default().to_string();
                let line = tokens[i + 1].line;
                let mut j = i + 2;
                if punct_at(&tokens, j, '<') {
                    j = skip_generics(&tokens, j);
                }
                if !punct_at(&tokens, j, '(') {
                    i += 1;
                    continue;
                }
                let (params, after_params) = parse_params(&tokens, j);
                // Walk the return type / where clause to the body.
                let mut k = after_params;
                while k < tokens.len() && !punct_at(&tokens, k, '{') && !punct_at(&tokens, k, ';') {
                    k += 1;
                }
                if k >= tokens.len() || punct_at(&tokens, k, ';') {
                    // Bodiless signature (trait method declaration).
                    i = k + 1;
                    continue;
                }
                let body_end = matching_brace(&tokens, k);
                fns.push(FnItem {
                    name,
                    impl_type: impl_stack.last().and_then(|(t, _)| t.clone()),
                    is_pub: has_pub_qualifier(&tokens, i),
                    params,
                    line,
                    body: (k, body_end),
                });
                // Keep walking *inside* the body: nested fns and
                // methods of nested impls are items too.
                i = k + 1;
            }
            Some("use") if at_item_position(&tokens, i) => {
                let line = tokens[i].line;
                let mut text = String::new();
                let mut k = i + 1;
                while k < tokens.len() && !punct_at(&tokens, k, ';') {
                    match &tokens[k].kind {
                        TokenKind::Ident(s) => text.push_str(s),
                        TokenKind::Punct(c) => text.push(*c),
                        _ => {}
                    }
                    k += 1;
                }
                uses.push(UseDecl { path: text, line });
                i = k + 1;
            }
            Some("mod") if at_item_position(&tokens, i) => {
                if let Some(name) = ident_at(&tokens, i + 1) {
                    mods.push(ModDecl {
                        name: name.to_string(),
                        line: tokens[i].line,
                    });
                }
                i += 2;
            }
            _ => i += 1,
        }
    }
    ParsedFile {
        path: path.to_string(),
        tokens,
        test_mask,
        fns,
        uses,
        mods,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> ParsedFile {
        let lexed = lex(src);
        let n = lexed.tokens.len();
        parse_file("crates/x/src/lib.rs", lexed.tokens, vec![false; n])
    }

    #[test]
    fn extracts_free_fns_with_params_and_visibility() {
        let p = parse("pub fn a(x: u32, mut y: f64) -> u32 { x }\nfn b() {}\n");
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.fns[0].name, "a");
        assert!(p.fns[0].is_pub);
        assert_eq!(p.fns[0].params, vec!["x", "y"]);
        assert_eq!(p.fns[0].line, 1);
        assert!(!p.fns[1].is_pub);
        assert_eq!(p.fns[1].line, 2);
    }

    #[test]
    fn methods_carry_their_impl_type() {
        let p = parse(
            "struct S;\nimpl S {\n  pub(crate) fn m(&self, k: u64) {}\n}\n\
             impl Clone for S {\n  fn clone(&self) -> S { S }\n}\n\
             trait T {\n  fn d(&self) {}\n  fn sig_only(&self);\n}\n",
        );
        let quals: Vec<String> = p.fns.iter().map(FnItem::qual_name).collect();
        assert_eq!(quals, vec!["S::m", "S::clone", "T::d"]);
        assert!(p.fns[0].is_pub, "pub(crate) counts as pub");
        assert_eq!(p.fns[0].params, vec!["self", "k"]);
    }

    #[test]
    fn generic_signatures_and_return_position_impl_parse() {
        let p = parse(
            "pub fn g<R: RngCore, F: Fn(u32) -> u32>(rng: &mut R, f: F) -> impl Iterator<Item = u32> {\n\
               std::iter::empty()\n}\n\
             fn after() {}\n",
        );
        assert_eq!(p.fns.len(), 2, "{:?}", p.fns);
        assert_eq!(p.fns[0].params, vec!["rng", "f"]);
        assert_eq!(p.fns[1].name, "after");
        assert!(
            p.fns[1].impl_type.is_none(),
            "impl in return type is not a block"
        );
    }

    #[test]
    fn nested_fns_and_body_ranges_are_recorded() {
        let p = parse("fn outer() {\n  fn inner(q: u8) {}\n  inner(1);\n}\n");
        assert_eq!(p.fns.len(), 2);
        let outer = &p.fns[0];
        let inner = &p.fns[1];
        assert!(outer.body.0 < inner.body.0 && inner.body.1 <= outer.body.1);
    }

    #[test]
    fn uses_and_mods_are_collected() {
        let p = parse("use std::sync::{Arc, Mutex};\nmod reactor;\nmod inline { fn f() {} }\n");
        assert_eq!(p.uses.len(), 1);
        assert!(p.uses[0].path.contains("std::sync"));
        let names: Vec<&str> = p.mods.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, vec!["reactor", "inline"]);
        assert_eq!(p.fns.len(), 1, "fn inside inline mod still parsed");
    }

    #[test]
    fn crate_attribution_from_path() {
        assert_eq!(crate_of("crates/updp-serve/src/engine.rs"), "updp-serve");
        assert_eq!(crate_of("examples/quickstart.rs"), "workspace");
    }
}
