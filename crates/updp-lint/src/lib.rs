//! `updp-lint` — the first-party invariant auditor (DESIGN.md §9).
//!
//! The workspace's value rests on contracts that ordinary tests only
//! check after the fact: bit-identical results at any thread count
//! (DESIGN.md §5), RNG-free cached artifacts (§7), structured
//! lock-poisoning and budget-ledger discipline (§6), and
//! merge-determinism on append (§8). This crate enforces the *static*
//! face of those contracts in two passes: a lightweight Rust lexer
//! ([`lexer`] — comments, strings, and raw strings handled exactly)
//! feeding per-file token rules, and an item parser ([`parser`]) plus
//! intra-crate call graph ([`graph`]) feeding cross-file *semantic*
//! rules ([`semantic`], DESIGN.md §13). The invariant catalog
//! ([`rules::CATALOG`]):
//!
//! | id  | invariant | contract |
//! |-----|-----------|----------|
//! | R1  | no clocks / ambient RNG / env reads in determinism scope | §5, §7 |
//! | R2  | no `HashMap`/`HashSet` in determinism scope              | §5, §7 |
//! | R3  | no `.unwrap()`/`.expect()` on lock guards                | §6     |
//! | R4  | every `unsafe` block carries `// SAFETY:`                | §4     |
//! | R5  | no float `==`/`!=` vs. float literals/consts             | §1, §5 |
//! | R6  | no `println!`/`eprintln!` in library crates              | §6     |
//! | R7  | every RNG seed traces to the `child_seed` tree           | §1.1, §5, §13 |
//! | R8  | lock pairs acquire in one global order                   | §6, §10, §13 |
//! | R9  | `estimate` calls are dominated by a ledger reservation   | §6.2, §13 |
//! | R10 | no panic surface in the reactor outside `catch_unwind`   | §10, §13 |
//!
//! Scoping lives in the committed `lint.toml` ([`config`]); per-line
//! exemptions use `// updp-lint: allow(R<n>, reason="…")` and the
//! reason is mandatory — the auditor turns undocumented exemptions,
//! malformed allows, and *stale* allows into diagnostics of their own,
//! and audit-time config validation flags scope entries matching no
//! file. The `updp-lint` binary is the CI gate: `--check` exits
//! non-zero with `file:line` diagnostics citing the violated contract
//! section (`--format github` adds workflow annotations);
//! `--explain R<n>` prints the rationale.
//!
//! No external dependencies, per the vendored-shim policy (§4).

#![forbid(unsafe_code)]

pub mod config;
pub mod engine;
pub mod graph;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod semantic;

pub use config::Config;
pub use engine::{
    audit_files, audit_source, audit_workspace, validate_config, AuditReport, Diagnostic,
};
pub use rules::{Rule, CATALOG};
