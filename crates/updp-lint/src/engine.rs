//! The audit engine: walks the workspace, applies each catalog rule
//! in its configured scope, runs the cross-file semantic pass
//! (DESIGN.md §13), resolves `// updp-lint: allow(...)` escape
//! hatches, and produces `file:line` diagnostics.

use crate::config::{Config, RuleScope};
use crate::lexer::{lex, Lexed, Token};
use crate::parser::{parse_file, ParsedFile};
use crate::rules::{self, CATALOG};
use crate::semantic;
use std::collections::BTreeSet;
use std::fmt;
use std::path::Path;

/// A reportable violation (or escape-hatch misuse).
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Workspace-relative, `/`-separated path.
    pub path: String,
    pub line: u32,
    /// `R1`… for catalog rules, `allow` for escape-hatch misuse.
    pub rule_id: String,
    pub rule_name: String,
    pub message: String,
    /// The contract the diagnostic cites.
    pub contract: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {} ({}): {} [{}]",
            self.path, self.line, self.rule_id, self.rule_name, self.message, self.contract
        )
    }
}

/// How a file's target class maps onto rule scoping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum FileClass {
    /// Library source — fully audited.
    Lib,
    /// Executable-adjacent source (`src/bin/`, `src/main.rs`,
    /// `benches/`, `examples/`): exempt from rules with
    /// `include_bins = false`.
    Bin,
    /// Test tree (`tests/`): exempt from rules with
    /// `include_tests = false`.
    Test,
}

pub(crate) fn classify(rel_path: &str) -> FileClass {
    let parts: Vec<&str> = rel_path.split('/').collect();
    if parts.contains(&"tests") {
        return FileClass::Test;
    }
    if parts.contains(&"benches") || parts.contains(&"examples") {
        return FileClass::Bin;
    }
    if rel_path.ends_with("src/main.rs") || parts.windows(2).any(|w| w == ["src", "bin"]) {
        return FileClass::Bin;
    }
    FileClass::Lib
}

fn path_in(rel_path: &str, prefixes: &[String]) -> bool {
    prefixes.iter().any(|p| {
        let p = p.trim_end_matches('/');
        rel_path == p || rel_path.starts_with(&format!("{p}/"))
    })
}

pub(crate) fn scope_covers(scope: &RuleScope, rel_path: &str, class: FileClass) -> bool {
    if !scope.paths.is_empty() && !path_in(rel_path, &scope.paths) {
        return false;
    }
    if path_in(rel_path, &scope.exclude) {
        return false;
    }
    match class {
        FileClass::Lib => true,
        FileClass::Bin => scope.include_bins,
        FileClass::Test => scope.include_tests,
    }
}

/// One parsed `// updp-lint: allow(RULE, reason="…")` escape hatch.
#[derive(Debug)]
struct Allow {
    rule_id: String,
    /// The code line the allow applies to.
    target_line: u32,
    /// Line of the allow comment itself (for diagnostics).
    comment_line: u32,
    used: bool,
}

const ALLOW_MARKER: &str = "updp-lint:";

/// Parses allows out of the comment list. A trailing comment targets
/// its own line; a standalone comment targets the next code line.
/// Malformed allows become diagnostics immediately — an escape hatch
/// that doesn't parse must fail loudly, not silently not apply.
fn collect_allows(rel_path: &str, lexed: &Lexed, diagnostics: &mut Vec<Diagnostic>) -> Vec<Allow> {
    let mut allows = Vec::new();
    for c in &lexed.comments {
        // Only a comment that *opens* with the marker is an escape
        // hatch; prose or doc examples that mention the syntax
        // mid-sentence are not.
        let body = c.text.trim_start_matches(['/', '*', '!']).trim_start();
        let Some(rest) = body.strip_prefix(ALLOW_MARKER) else {
            continue;
        };
        let target_line = if c.trailing {
            c.line
        } else {
            next_code_line(&lexed.tokens, c.end_line)
        };
        match parse_allow(rest.trim()) {
            Ok(rule_id) => allows.push(Allow {
                rule_id,
                target_line,
                comment_line: c.line,
                used: false,
            }),
            Err(msg) => diagnostics.push(allow_misuse(rel_path, c.line, msg)),
        }
    }
    allows
}

fn next_code_line(tokens: &[Token], after: u32) -> u32 {
    tokens
        .iter()
        .map(|t| t.line)
        .find(|&l| l > after)
        .unwrap_or(after)
}

/// Parses `allow(RULE, reason="…")`; returns the rule id. The reason
/// string is mandatory and must be non-empty: the whole point of the
/// escape hatch is a written, reviewable justification.
fn parse_allow(text: &str) -> Result<String, String> {
    let inner = text
        .strip_prefix("allow(")
        .and_then(|s| s.strip_suffix(')'))
        .ok_or_else(|| {
            "malformed escape hatch — expected `updp-lint: allow(RULE, reason=\"…\")`".to_string()
        })?;
    let (rule_id, rest) = inner
        .split_once(',')
        .ok_or_else(|| "allow() is missing the mandatory `reason=\"…\"` argument".to_string())?;
    let rule_id = rule_id.trim();
    if rules::find(rule_id).is_none() {
        return Err(format!(
            "allow() names unknown rule `{rule_id}` (known: {})",
            CATALOG.map(|r| r.id).join(", ")
        ));
    }
    let reason = rest
        .trim()
        .strip_prefix("reason=\"")
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| "allow() is missing the mandatory `reason=\"…\"` argument".to_string())?;
    if reason.trim().is_empty() {
        return Err("allow() reason must not be empty — justify the exemption".to_string());
    }
    Ok(rule_id.to_string())
}

fn allow_misuse(rel_path: &str, line: u32, message: String) -> Diagnostic {
    Diagnostic {
        path: rel_path.to_string(),
        line,
        rule_id: "allow".into(),
        rule_name: "escape-hatch".into(),
        message,
        contract: "DESIGN.md §9".into(),
    }
}

/// Marks token indices belonging to `#[cfg(test)]` / `#[test]` items
/// so rules with `include_tests = false` skip in-file test code.
pub(crate) fn test_item_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if !(tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))) {
            i += 1;
            continue;
        }
        let (attr_end, is_test_attr) = read_attribute(tokens, i + 1);
        if !is_test_attr {
            i = attr_end;
            continue;
        }
        // Skip any further attributes between the test attr and the
        // item, then mask the whole item.
        let mut j = attr_end;
        while tokens.get(j).is_some_and(|t| t.is_punct('#'))
            && tokens.get(j + 1).is_some_and(|t| t.is_punct('['))
        {
            j = read_attribute(tokens, j + 1).0;
        }
        let item_end = skip_item(tokens, j);
        for m in &mut mask[i..item_end] {
            *m = true;
        }
        i = item_end;
    }
    mask
}

/// Reads the bracketed attribute starting at the `[` token index;
/// returns (index past `]`, whether it is `#[test]` or `#[cfg(test)]`
/// — including `cfg(all(test, …))`-style conjunctions but never
/// `cfg(not(test))`).
fn read_attribute(tokens: &[Token], open: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut end = open;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                end = k + 1;
                break;
            }
        }
        end = k + 1;
    }
    let body: Vec<&Token> = tokens[open + 1..end.saturating_sub(1)].iter().collect();
    let is_test = match body.first().and_then(|t| t.ident()) {
        Some("test") => body.len() == 1,
        Some("cfg") => {
            let mut not_depth: Option<usize> = None;
            let mut depth = 0usize;
            let mut found = false;
            let mut prev_ident: Option<&str> = None;
            for t in &body[1..] {
                if t.is_punct('(') {
                    depth += 1;
                    if prev_ident == Some("not") && not_depth.is_none() {
                        not_depth = Some(depth);
                    }
                } else if t.is_punct(')') {
                    if not_depth == Some(depth) {
                        not_depth = None;
                    }
                    depth = depth.saturating_sub(1);
                }
                if t.ident() == Some("test") && not_depth.is_none() {
                    found = true;
                }
                prev_ident = t.ident();
            }
            found
        }
        _ => false,
    };
    (end, is_test)
}

/// Returns the index one past the end of the item starting at `start`:
/// either the `;` closing a braceless item or the `}` matching the
/// item's first top-level `{`.
fn skip_item(tokens: &[Token], start: usize) -> usize {
    let mut paren = 0i64;
    let mut bracket = 0i64;
    let mut brace = 0i64;
    for (k, t) in tokens.iter().enumerate().skip(start) {
        match t.kind {
            crate::lexer::TokenKind::Punct('(') => paren += 1,
            crate::lexer::TokenKind::Punct(')') => paren -= 1,
            crate::lexer::TokenKind::Punct('[') => bracket += 1,
            crate::lexer::TokenKind::Punct(']') => bracket -= 1,
            crate::lexer::TokenKind::Punct('{') => brace += 1,
            crate::lexer::TokenKind::Punct('}') => {
                brace -= 1;
                if brace == 0 {
                    return k + 1;
                }
            }
            crate::lexer::TokenKind::Punct(';') if paren == 0 && bracket == 0 && brace == 0 => {
                return k + 1;
            }
            _ => {}
        }
    }
    tokens.len()
}

/// Audits one file's source text under `config`, as `rel_path`
/// (workspace-relative, `/`-separated). Pure: no filesystem access,
/// which is what the golden-fixture tests build on. Semantic rules see
/// a one-file "workspace" — enough for fixtures, while the CLI path
/// ([`audit_workspace`]) gives them the full tree.
pub fn audit_source(rel_path: &str, source: &str, config: &Config) -> Vec<Diagnostic> {
    audit_files(&[(rel_path.to_string(), source.to_string())], config).diagnostics
}

/// Audits a set of `(rel_path, source)` files as one workspace: the
/// per-file rules R1–R6 first, then the cross-file semantic pass
/// (R7–R10) over all parsed files at once, then a unified
/// unused-allow sweep. Pure; the filesystem is touched only by
/// [`audit_workspace`].
pub fn audit_files(files: &[(String, String)], config: &Config) -> AuditReport {
    let mut diagnostics = Vec::new();
    let mut parsed: Vec<ParsedFile> = Vec::with_capacity(files.len());
    let mut allows_by_file: Vec<Vec<Allow>> = Vec::with_capacity(files.len());

    for (rel_path, source) in files {
        let class = classify(rel_path);
        let lexed = lex(source);
        let allows = collect_allows(rel_path, &lexed, &mut diagnostics);
        allows_by_file.push(allows);
        let allows = allows_by_file.last_mut().expect("just pushed");
        let mask = test_item_mask(&lexed.tokens);
        let non_test_tokens: Vec<Token> = lexed
            .tokens
            .iter()
            .zip(&mask)
            .filter(|(_, &in_test)| !in_test)
            .map(|(t, _)| t.clone())
            .collect();

        for rule in &CATALOG {
            if rule.semantic {
                // Cross-file rules run once over the whole set below.
                continue;
            }
            let scope = config.scope(rule.id);
            if !scope_covers(&scope, rel_path, class) {
                continue;
            }
            let tokens: &[Token] = if scope.include_tests {
                &lexed.tokens
            } else {
                &non_test_tokens
            };
            for f in rules::scan(rule, tokens, &lexed.comments) {
                let allowed = allows
                    .iter_mut()
                    .find(|a| a.rule_id == rule.id && a.target_line == f.line);
                if let Some(a) = allowed {
                    a.used = true;
                    continue;
                }
                diagnostics.push(Diagnostic {
                    path: rel_path.to_string(),
                    line: f.line,
                    rule_id: rule.id.into(),
                    rule_name: rule.name.into(),
                    message: f.message,
                    contract: rule.contract.into(),
                });
            }
        }

        parsed.push(parse_file(rel_path, lexed.tokens, mask));
    }

    for finding in semantic::scan_workspace(&parsed, config) {
        let fi = parsed
            .iter()
            .position(|p| p.path == finding.path)
            .expect("semantic findings only cite audited files");
        let allowed = allows_by_file[fi]
            .iter_mut()
            .find(|a| a.rule_id == finding.rule.id && a.target_line == finding.line);
        if let Some(a) = allowed {
            a.used = true;
            continue;
        }
        diagnostics.push(Diagnostic {
            path: finding.path,
            line: finding.line,
            rule_id: finding.rule.id.into(),
            rule_name: finding.rule.name.into(),
            message: finding.message,
            contract: finding.rule.contract.into(),
        });
    }

    // An allow that suppressed nothing is itself a violation: stale
    // exemptions must not linger as invisible holes in the audit.
    for (file, allows) in parsed.iter().zip(&allows_by_file) {
        for a in allows.iter().filter(|a| !a.used) {
            diagnostics.push(allow_misuse(
                &file.path,
                a.comment_line,
                format!(
                    "unused escape hatch for {} — the rule no longer fires on line {}; delete the allow",
                    a.rule_id, a.target_line
                ),
            ));
        }
    }

    diagnostics.sort_by(|a, b| (&a.path, a.line, &a.rule_id).cmp(&(&b.path, b.line, &b.rule_id)));
    AuditReport {
        diagnostics,
        files_audited: files.len(),
    }
}

/// Result of a whole-workspace audit.
#[derive(Debug)]
pub struct AuditReport {
    pub diagnostics: Vec<Diagnostic>,
    pub files_audited: usize,
}

fn config_diag(line: usize, message: String) -> Diagnostic {
    Diagnostic {
        path: "lint.toml".into(),
        line: line as u32,
        rule_id: "config".into(),
        rule_name: "scope-validation".into(),
        message,
        contract: "DESIGN.md §13".into(),
    }
}

/// Validates the parsed config against the audited file set: a rule
/// `paths` entry matching no file, a duplicate array entry, or a
/// `[rule.R<n>]` section for a rule not in the catalog all silently
/// distort the audited surface, so each becomes a diagnostic at its
/// `lint.toml` line. Only `audit_workspace` calls this — single-file
/// fixtures would otherwise drown in spurious no-match noise.
pub fn validate_config(config: &Config, rel_paths: &[String]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (section, line) in &config.sections {
        if let Some(id) = section.strip_prefix("rule.") {
            if rules::find(id).is_none() {
                out.push(config_diag(
                    *line,
                    format!(
                        "[{section}] configures unknown rule `{id}` (known: {}) — dead \
                         config suggests a typo or a removed rule",
                        CATALOG.map(|r| r.id).join(", ")
                    ),
                ));
            }
        }
    }
    for e in &config.path_entries {
        // Only rule `paths` arrays must match files: excludes may
        // legitimately name build dirs (`target`) absent on a clean
        // checkout.
        if e.key == "paths"
            && !rel_paths
                .iter()
                .any(|p| path_in(p, std::slice::from_ref(&e.value)))
        {
            out.push(config_diag(
                e.line,
                format!(
                    "[{}] paths entry `{}` matches no audited file — a stale scope \
                     silently narrows the audit; fix or delete the entry",
                    e.section, e.value
                ),
            ));
        }
    }
    let mut seen: BTreeSet<(&str, &str, &str)> = BTreeSet::new();
    for e in &config.path_entries {
        if !seen.insert((&e.section, &e.key, &e.value)) {
            out.push(config_diag(
                e.line,
                format!(
                    "duplicate `{}` entry `{}` in [{}] — delete the repeat",
                    e.key, e.value, e.section
                ),
            ));
        }
    }
    out
}

/// Audits every `.rs` file under `root`, reading scoping from
/// `<root>/lint.toml`. Config-scope validation runs here too: stale
/// or duplicated path entries are diagnostics like any other.
pub fn audit_workspace(root: &Path) -> Result<AuditReport, String> {
    let config_path = root.join("lint.toml");
    let text = std::fs::read_to_string(&config_path)
        .map_err(|e| format!("cannot read {}: {e}", config_path.display()))?;
    let config = Config::parse(&text)?;

    let mut files = Vec::new();
    collect_rs_files(root, root, &config.global_exclude, &mut files)?;
    files.sort();

    let mut sources = Vec::with_capacity(files.len());
    for rel in files {
        let source = std::fs::read_to_string(root.join(&rel))
            .map_err(|e| format!("cannot read {rel}: {e}"))?;
        sources.push((rel, source));
    }
    let rel_paths: Vec<String> = sources.iter().map(|(p, _)| p.clone()).collect();

    let mut report = audit_files(&sources, &config);
    let mut cfg_diags = validate_config(&config, &rel_paths);
    if !cfg_diags.is_empty() {
        report.diagnostics.append(&mut cfg_diags);
        report
            .diagnostics
            .sort_by(|a, b| (&a.path, a.line, &a.rule_id).cmp(&(&b.path, b.line, &b.rule_id)));
    }
    Ok(report)
}

fn collect_rs_files(
    root: &Path,
    dir: &Path,
    global_exclude: &[String],
    out: &mut Vec<String>,
) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("walk error under {}: {e}", dir.display()))?;
        let path = entry.path();
        let rel = path
            .strip_prefix(root)
            .map_err(|_| "walked outside root".to_string())?
            .components()
            .map(|c| c.as_os_str().to_string_lossy().into_owned())
            .collect::<Vec<_>>()
            .join("/");
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.starts_with('.') || path_in(&rel, global_exclude) {
            continue;
        }
        let kind = entry
            .file_type()
            .map_err(|e| format!("cannot stat {rel}: {e}"))?;
        if kind.is_dir() {
            collect_rs_files(root, &path, global_exclude, out)?;
        } else if name.ends_with(".rs") {
            out.push(rel);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> Config {
        Config::parse(
            r#"
            [rule.R1]
            paths = ["crates/scoped/src"]
            [rule.R2]
            paths = ["crates/scoped/src"]
            [rule.R6]
            include_bins = false
            "#,
        )
        .unwrap()
    }

    #[test]
    fn scoping_applies_r1_only_inside_determinism_paths() {
        let cfg = config();
        let src = "fn f() { let t = Instant::now(); }\n";
        assert_eq!(audit_source("crates/scoped/src/a.rs", src, &cfg).len(), 1);
        assert!(audit_source("crates/other/src/a.rs", src, &cfg).is_empty());
    }

    #[test]
    fn bins_tests_benches_examples_are_exempt_by_class() {
        let cfg = config();
        let print = "fn f() { println!(\"x\"); }\n";
        assert_eq!(audit_source("crates/x/src/lib.rs", print, &cfg).len(), 1);
        assert!(audit_source("crates/x/src/bin/tool.rs", print, &cfg).is_empty());
        assert!(audit_source("crates/x/src/main.rs", print, &cfg).is_empty());
        assert!(audit_source("crates/x/benches/b.rs", print, &cfg).is_empty());
        assert!(audit_source("examples/quickstart.rs", print, &cfg).is_empty());
        assert!(audit_source("crates/x/tests/t.rs", print, &cfg).is_empty());
    }

    #[test]
    fn cfg_test_items_are_exempt_but_live_code_is_not() {
        let cfg = config();
        let src = "\
fn live() { let g = m.lock().unwrap(); }\n\
#[cfg(test)]\n\
mod tests {\n\
    #[test]\n\
    fn t() { let g = m.lock().unwrap(); }\n\
}\n";
        let diags = audit_source("crates/x/src/lib.rs", src, &cfg);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].line, 1);
        // cfg(not(test)) is live code and stays audited.
        let src = "#[cfg(not(test))]\nfn live() { let g = m.lock().unwrap(); }\n";
        assert_eq!(audit_source("crates/x/src/lib.rs", src, &cfg).len(), 1);
    }

    #[test]
    fn allow_suppresses_with_reason_and_fails_without() {
        let cfg = config();
        let trailing = "fn f() { let g = m.lock().unwrap(); } // updp-lint: allow(R3, reason=\"test fixture\")\n";
        assert!(audit_source("crates/x/src/lib.rs", trailing, &cfg).is_empty());
        let standalone = "// updp-lint: allow(R3, reason=\"test fixture\")\nfn f() { let g = m.lock().unwrap(); }\n";
        assert!(audit_source("crates/x/src/lib.rs", standalone, &cfg).is_empty());

        let missing_reason = "// updp-lint: allow(R3)\nfn f() { let g = m.lock().unwrap(); }\n";
        let diags = audit_source("crates/x/src/lib.rs", missing_reason, &cfg);
        assert_eq!(
            diags.len(),
            2,
            "missing reason + unsuppressed violation: {diags:?}"
        );
        assert!(diags.iter().any(|d| d.rule_id == "allow"));
        assert!(diags.iter().any(|d| d.rule_id == "R3"));

        let empty_reason =
            "fn f() { let g = m.lock().unwrap(); } // updp-lint: allow(R3, reason=\"  \")\n";
        assert!(audit_source("crates/x/src/lib.rs", empty_reason, &cfg)
            .iter()
            .any(|d| d.message.contains("must not be empty")));
    }

    #[test]
    fn unused_and_unknown_allows_are_diagnosed() {
        let cfg = config();
        let unused = "// updp-lint: allow(R3, reason=\"nothing here\")\nfn f() {}\n";
        let diags = audit_source("crates/x/src/lib.rs", unused, &cfg);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("unused escape hatch"));

        let unknown = "fn f() {} // updp-lint: allow(R99, reason=\"?\")\n";
        let diags = audit_source("crates/x/src/lib.rs", unknown, &cfg);
        assert!(diags[0].message.contains("unknown rule"));
    }

    #[test]
    fn diagnostics_carry_exact_file_line_and_contract() {
        let cfg = config();
        let src = "use std::collections::HashMap;\n\nfn f() {\n  let t = Instant::now();\n}\n";
        let diags = audit_source("crates/scoped/src/m.rs", src, &cfg);
        let rendered: Vec<String> = diags.iter().map(|d| d.to_string()).collect();
        assert_eq!(diags.len(), 2);
        assert!(
            rendered[0].starts_with("crates/scoped/src/m.rs:1: R2 (hash-order):"),
            "{}",
            rendered[0]
        );
        assert!(
            rendered[0].ends_with("[DESIGN.md §5, §7]"),
            "{}",
            rendered[0]
        );
        assert!(
            rendered[1].starts_with("crates/scoped/src/m.rs:4: R1 (ambient-authority):"),
            "{}",
            rendered[1]
        );
    }
}
