//! A lightweight Rust lexer, sufficient for contract auditing.
//!
//! The auditor's rules are lexical patterns over *code* tokens —
//! `Instant :: now`, `. lock ( ) . unwrap`, a float literal adjacent to
//! `==` — so the one thing the lexer must get exactly right is telling
//! code apart from non-code: line comments, (nested) block comments,
//! string literals with escapes, raw strings `r#"…"#` with any hash
//! count, byte / raw-byte / C-string literals (`b"…"`, `br"…"`,
//! `c"…"`, `cr"…"`), char and byte-char literals, and lifetimes.
//! A stray `"Instant::now"` inside a string or a `// thread_rng` in a
//! comment must never produce a diagnostic, and a real violation must
//! never hide behind one. Comments are kept (with position info)
//! because two rules read them: `// SAFETY:` justifications (R4) and
//! `// updp-lint: allow(...)` escape hatches.
//!
//! This is deliberately not a full Rust lexer: numeric suffix grammar,
//! `'label:` loop labels, and exotic literals are handled only as far
//! as misclassifying them could flip an audit verdict.

/// One code token (comments are reported separately, see [`Comment`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    /// 1-based source line of the token's first character.
    pub line: u32,
}

/// Token classification. String/char literal *contents* are dropped:
/// no rule may ever match inside them.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw identifiers, without `r#`).
    Ident(String),
    /// Numeric literal; `float` is true for literals with a fractional
    /// part, an exponent, or an `f32`/`f64` suffix.
    Num { float: bool },
    /// String, raw-string, byte-string, or char literal.
    Literal,
    /// A lifetime such as `'a` (or a loop label).
    Lifetime,
    /// Any other single character (operators, braces, `#`, …).
    Punct(char),
}

impl Token {
    /// The identifier text, if this token is one.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// True when this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }
}

/// A comment, kept verbatim for SAFETY/allow scanning.
#[derive(Debug, Clone, PartialEq)]
pub struct Comment {
    /// Full comment text including the `//` / `/*` markers.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (differs for block comments).
    pub end_line: u32,
    /// True when code tokens precede the comment on its starting line
    /// (a trailing comment annotates its own line; a standalone one
    /// annotates the next code line).
    pub trailing: bool,
}

/// Lexed form of one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

/// Lexes `src` into code tokens and comments. Never fails: unknown or
/// unterminated constructs degrade to punctuation/literal tokens
/// rather than aborting the audit of the rest of the file.
pub fn lex(src: &str) -> Lexed {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
        last_token_line: 0,
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Lexed,
    last_token_line: u32,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, kind: TokenKind, line: u32) {
        self.last_token_line = line;
        self.out.tokens.push(Token { kind, line });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => {
                    self.bump();
                    self.string_body();
                    self.push(TokenKind::Literal, line);
                }
                'r' if matches!(self.peek(1), Some('"' | '#')) => self.raw_prefixed(line),
                'b' if self.peek(1) == Some('"') => {
                    self.bump();
                    self.bump();
                    self.string_body();
                    self.push(TokenKind::Literal, line);
                }
                'b' if self.peek(1) == Some('r') && matches!(self.peek(2), Some('"' | '#')) => {
                    self.bump();
                    self.raw_prefixed(line);
                }
                'b' if self.peek(1) == Some('\'') => {
                    self.bump();
                    self.char_or_lifetime(line);
                }
                'c' if self.peek(1) == Some('"') => {
                    self.bump();
                    self.bump();
                    self.string_body();
                    self.push(TokenKind::Literal, line);
                }
                'c' if self.peek(1) == Some('r') && matches!(self.peek(2), Some('"' | '#')) => {
                    self.bump();
                    self.raw_prefixed(line);
                }
                '\'' => self.char_or_lifetime(line),
                c if c.is_ascii_digit() => self.number(line),
                c if c == '_' || c.is_alphabetic() => self.ident(line),
                c => {
                    self.bump();
                    self.push(TokenKind::Punct(c), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let trailing = self.last_token_line == line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment {
            text,
            line,
            end_line: line,
            trailing,
        });
    }

    fn block_comment(&mut self) {
        let line = self.line;
        let trailing = self.last_token_line == line;
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.out.comments.push(Comment {
            text,
            line,
            end_line: self.line,
            trailing,
        });
    }

    /// Consumes a plain/byte string body after the opening quote.
    fn string_body(&mut self) {
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
    }

    /// At `r`, resolves the `r"…"` / `r#"…"#` / `r#ident` ambiguity.
    fn raw_prefixed(&mut self, line: u32) {
        self.bump(); // the `r`
        let mut hashes = 0usize;
        while self.peek(hashes) == Some('#') {
            hashes += 1;
        }
        match self.peek(hashes) {
            Some('"') => {
                for _ in 0..=hashes {
                    self.bump();
                }
                self.raw_string_body(hashes);
                self.push(TokenKind::Literal, line);
            }
            // `r#ident` — a raw identifier, lexed without the prefix.
            _ if hashes == 1 => {
                self.bump();
                self.ident(line);
            }
            // Bare `r` followed by neither quote nor raw ident.
            _ => self.push(TokenKind::Ident("r".into()), line),
        }
    }

    /// Consumes a raw string body after `r#…#"`, closed by `"#…#` with
    /// exactly `hashes` hashes.
    fn raw_string_body(&mut self, hashes: usize) {
        while let Some(c) = self.bump() {
            if c == '"' {
                let mut seen = 0usize;
                while seen < hashes && self.peek(0) == Some('#') {
                    self.bump();
                    seen += 1;
                }
                if seen == hashes {
                    break;
                }
            }
        }
    }

    /// At `'`: a char literal (`'x'`, `'\n'`, `'\u{1F600}'`) or a
    /// lifetime/label (`'a`). Disambiguation: an escape or a
    /// non-ident first char means char literal; an ident char followed
    /// by a closing quote means char literal (`'x'`); otherwise
    /// lifetime.
    fn char_or_lifetime(&mut self, line: u32) {
        self.bump(); // the `'`
        match self.peek(0) {
            Some('\\') => {
                self.bump();
                self.bump(); // the escaped char (or `u` of \u{…})
                while let Some(c) = self.bump() {
                    if c == '\'' {
                        break;
                    }
                }
                self.push(TokenKind::Literal, line);
            }
            Some(c) if c == '_' || c.is_alphanumeric() => {
                if self.peek(1) == Some('\'') {
                    self.bump();
                    self.bump();
                    self.push(TokenKind::Literal, line);
                } else {
                    while let Some(c) = self.peek(0) {
                        if c == '_' || c.is_alphanumeric() {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    self.push(TokenKind::Lifetime, line);
                }
            }
            Some(c) => {
                // Punctuation char literal such as `'('`.
                self.bump();
                if self.peek(0) == Some('\'') {
                    self.bump();
                    self.push(TokenKind::Literal, line);
                } else {
                    // Unterminated / unknown: degrade to punctuation.
                    self.push(TokenKind::Punct(c), line);
                }
            }
            None => self.push(TokenKind::Punct('\''), line),
        }
    }

    fn number(&mut self, line: u32) {
        let mut float = false;
        // Radix prefixes never start a float.
        if self.peek(0) == Some('0') && matches!(self.peek(1), Some('x' | 'o' | 'b')) {
            self.bump();
            self.bump();
            while matches!(self.peek(0), Some(c) if c.is_ascii_alphanumeric() || c == '_') {
                self.bump();
            }
            self.push(TokenKind::Num { float }, line);
            return;
        }
        while matches!(self.peek(0), Some(c) if c.is_ascii_digit() || c == '_') {
            self.bump();
        }
        // A fractional part: `.` followed by a digit (or end-of-number
        // `1.`), but never `..` (range) or `.ident` (method call).
        if self.peek(0) == Some('.') {
            match self.peek(1) {
                Some(c) if c.is_ascii_digit() => {
                    float = true;
                    self.bump();
                    while matches!(self.peek(0), Some(c) if c.is_ascii_digit() || c == '_') {
                        self.bump();
                    }
                }
                Some('.') => {}
                Some(c) if c == '_' || c.is_alphabetic() => {}
                _ => {
                    float = true;
                    self.bump();
                }
            }
        }
        // Exponent.
        if matches!(self.peek(0), Some('e' | 'E')) {
            let sign = usize::from(matches!(self.peek(1), Some('+' | '-')));
            if matches!(self.peek(1 + sign), Some(c) if c.is_ascii_digit()) {
                float = true;
                self.bump();
                for _ in 0..sign {
                    self.bump();
                }
                while matches!(self.peek(0), Some(c) if c.is_ascii_digit() || c == '_') {
                    self.bump();
                }
            }
        }
        // Type suffix (`1.0f64`, `1u32`, …).
        let mut suffix = String::new();
        while matches!(self.peek(0), Some(c) if c == '_' || c.is_ascii_alphanumeric()) {
            suffix.push(self.peek(0).unwrap_or_default());
            self.bump();
        }
        if suffix == "f32" || suffix == "f64" {
            float = true;
        }
        self.push(TokenKind::Num { float }, line);
    }

    fn ident(&mut self, line: u32) {
        let mut s = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Ident(s), line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.ident().map(str::to_owned))
            .collect()
    }

    #[test]
    fn code_in_strings_and_comments_is_invisible() {
        let src = r##"
            let a = "Instant::now() thread_rng()"; // Instant::now()
            /* HashMap::new() */
            let b = r#"SystemTime::now() "quoted" "#;
            let c = 'x'; let d: &'static str = "\" // not a comment";
        "##;
        let ids = idents(src);
        assert!(!ids.iter().any(|i| i == "Instant" || i == "thread_rng"));
        assert!(!ids.iter().any(|i| i == "HashMap" || i == "SystemTime"));
        // The real code idents survive.
        // (`'static` is a lifetime token, so `static` is rightly absent.)
        for want in ["let", "a", "b", "c", "d", "str"] {
            assert!(ids.iter().any(|i| i == want), "missing ident {want}");
        }
    }

    #[test]
    fn comments_are_collected_with_positions_and_trailing_flag() {
        let src =
            "let x = 1; // trailing\n// standalone\nlet y = 2;\n/* block\nspans */ let z = 3;";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 3);
        assert_eq!(lexed.comments[0].line, 1);
        assert!(lexed.comments[0].trailing);
        assert_eq!(lexed.comments[1].line, 2);
        assert!(!lexed.comments[1].trailing);
        assert_eq!(lexed.comments[2].line, 4);
        assert_eq!(lexed.comments[2].end_line, 5);
        assert!(!lexed.comments[2].trailing);
    }

    #[test]
    fn nested_block_comments_terminate_correctly() {
        let lexed = lex("/* outer /* inner */ still comment */ let live = 1;");
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(
            idents("/* a /* b */ c */ let live = 1;"),
            vec!["let", "live"]
        );
    }

    #[test]
    fn raw_strings_with_hashes_and_raw_idents() {
        // Raw string containing an unescaped quote + hash pattern.
        let ids = idents(r###"let s = r##"has "# inside"##; let r#fn = 1;"###);
        assert_eq!(ids, vec!["let", "s", "let", "fn"]);
        // Byte and raw-byte strings.
        let ids = idents(r#"let b = b"bytes"; let rb = br"raw bytes";"#);
        assert_eq!(ids, vec!["let", "b", "let", "rb"]);
    }

    #[test]
    fn byte_and_c_string_prefixes_swallow_interiors() {
        // The prefix letter must never leak as an identifier and the
        // interior must never produce tokens.
        let ids = idents(r#"let s = c"thread_rng()"; let t = cr"Instant::now()";"#);
        assert_eq!(ids, vec!["let", "s", "let", "t"]);
        let ids = idents(r###"let u = cr##"has "# inside"##; let v = b'x';"###);
        assert_eq!(ids, vec!["let", "u", "let", "v"]);
        // `c`/`b` as ordinary identifiers are untouched.
        let ids = idents("let c = b + cr + 1;");
        assert_eq!(ids, vec!["let", "c", "b", "cr"]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let lexed =
            lex("fn f<'a>(x: &'a str) { let c = 'c'; let n = '\\n'; let u = '\\u{1F600}'; }");
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count();
        let chars = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 3);
    }

    #[test]
    fn float_vs_integer_literals() {
        let float_flags: Vec<bool> =
            lex("1 1.5 1. 1e3 1E-3 0x1F 0b10 1_000 2.5f32 3f64 7u8 0..5 t.0")
                .tokens
                .iter()
                .filter_map(|t| match t.kind {
                    TokenKind::Num { float } => Some(float),
                    _ => None,
                })
                .collect();
        assert_eq!(
            float_flags,
            vec![
                false, true, true, true, true, false, false, false, true, true, false, false,
                false, false
            ]
        );
    }

    #[test]
    fn line_numbers_are_accurate() {
        let lexed = lex("a\nb\n\nc /* x\ny */ d");
        let lines: Vec<(Option<&str>, u32)> =
            lexed.tokens.iter().map(|t| (t.ident(), t.line)).collect();
        assert_eq!(
            lines,
            vec![
                (Some("a"), 1),
                (Some("b"), 2),
                (Some("c"), 4),
                (Some("d"), 5)
            ]
        );
    }
}
