//! The gate itself, as a test: the shipped tree must audit clean, and
//! a planted violation must fail with a `file:line` diagnostic and a
//! non-zero exit. Running this under plain `cargo test` means the
//! invariant catalog is enforced even where CI's dedicated lint step
//! is not wired (e.g. local pre-push runs).

use std::path::{Path, PathBuf};
use std::process::Command;
use updp_lint::{audit_files, audit_workspace, validate_config, Config};

/// The workspace root, resolved from this crate's manifest dir — the
/// directory holding the committed `lint.toml`.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
}

#[test]
fn shipped_tree_audits_clean() {
    let root = workspace_root();
    assert!(
        root.join("lint.toml").is_file(),
        "lint.toml missing at {}",
        root.display()
    );
    let report = audit_workspace(&root).expect("audit runs");
    assert!(
        report.files_audited > 50,
        "suspiciously few files audited ({}) — walk is broken",
        report.files_audited
    );
    assert!(
        report.diagnostics.is_empty(),
        "shipped tree has lint violations:\n{}",
        report
            .diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn planted_violation_yields_file_line_diagnostic() {
    // A violating fixture pushed through the *committed* config, so
    // the test exercises the real scoping: a determinism-scoped path
    // with an ambient time read and a HashMap.
    let root = workspace_root();
    let config_text = std::fs::read_to_string(root.join("lint.toml")).expect("lint.toml readable");
    let config = Config::parse(&config_text).expect("committed lint.toml parses");

    let fixture = "use std::time::Instant;\n\
                   use std::collections::HashMap;\n\
                   pub fn now() -> std::time::Instant {\n\
                       Instant::now()\n\
                   }\n";
    let diags = updp_lint::audit_source("crates/updp-core/src/planted.rs", fixture, &config);
    let rendered: Vec<String> = diags.iter().map(|d| d.to_string()).collect();
    assert!(
        rendered
            .iter()
            .any(|d| d.starts_with("crates/updp-core/src/planted.rs:4: R1")),
        "R1 diagnostic with exact line missing: {rendered:?}"
    );
    assert!(
        rendered.iter().any(|d| d.contains(": R2")),
        "R2 diagnostic missing: {rendered:?}"
    );
    // Diagnostics cite the contract section the rule enforces.
    assert!(
        rendered.iter().all(|d| d.contains("DESIGN.md")),
        "diagnostics must cite contract sections: {rendered:?}"
    );

    // The same fixture under a *test* path is out of scope (R1/R2
    // audit shipped library code, not test helpers).
    let diags = updp_lint::audit_source("crates/updp-core/tests/planted.rs", fixture, &config);
    assert!(diags.is_empty(), "test files must be exempt: {diags:?}");
}

fn committed_config() -> Config {
    let root = workspace_root();
    let text = std::fs::read_to_string(root.join("lint.toml")).expect("lint.toml readable");
    Config::parse(&text).expect("committed lint.toml parses")
}

/// Planted violations for each semantic rule, audited through the
/// *committed* config so the real scoping is exercised end to end.
#[test]
fn planted_semantic_violations_yield_exact_line_diagnostics() {
    let config = committed_config();

    // R7: a constant-seeded RNG inside a determinism-scoped crate.
    let files = vec![(
        "crates/updp-core/src/planted.rs".to_string(),
        "pub fn sample() -> f64 {\n    let mut rng = seeded(42);\n    rng.gen()\n}\n".to_string(),
    )];
    let rendered: Vec<String> = audit_files(&files, &config)
        .diagnostics
        .iter()
        .map(|d| d.to_string())
        .collect();
    assert!(
        rendered
            .iter()
            .any(|d| d.starts_with("crates/updp-core/src/planted.rs:2: R7")),
        "R7 diagnostic with exact line missing: {rendered:?}"
    );

    // R8: inconsistent lock order across two serve files — both sites
    // are cited.
    let files = vec![
        (
            "crates/updp-serve/src/planted_a.rs".to_string(),
            "fn a(r: R, l: L) {\n    let g = r.pending.lock();\n    let h = l.accounts.lock();\n}\n"
                .to_string(),
        ),
        (
            "crates/updp-serve/src/planted_b.rs".to_string(),
            "fn b(r: R, l: L) {\n    let h = l.accounts.lock();\n    let g = r.pending.lock();\n}\n"
                .to_string(),
        ),
    ];
    let rendered: Vec<String> = audit_files(&files, &config)
        .diagnostics
        .iter()
        .map(|d| d.to_string())
        .collect();
    assert!(
        rendered
            .iter()
            .any(|d| d.starts_with("crates/updp-serve/src/planted_a.rs:3: R8")),
        "R8 diagnostic at the first site missing: {rendered:?}"
    );
    assert!(
        rendered
            .iter()
            .any(|d| d.starts_with("crates/updp-serve/src/planted_b.rs:3: R8")),
        "R8 diagnostic at the opposing site missing: {rendered:?}"
    );

    // R9: a pub fn reaching `.estimate(` with no ledger reservation.
    let files = vec![(
        "crates/updp-serve/src/planted.rs".to_string(),
        "pub fn free_estimate(e: E, v: V) -> f64 {\n    e.estimate(v)\n}\n".to_string(),
    )];
    let rendered: Vec<String> = audit_files(&files, &config)
        .diagnostics
        .iter()
        .map(|d| d.to_string())
        .collect();
    assert!(
        rendered
            .iter()
            .any(|d| d.starts_with("crates/updp-serve/src/planted.rs:2: R9")),
        "R9 diagnostic with exact line missing: {rendered:?}"
    );

    // R10: panic surface planted into the reactor module itself (the
    // committed scope names the file, not the directory).
    let files = vec![(
        "crates/updp-serve/src/reactor.rs".to_string(),
        "fn f(v: Vec<u8>, i: usize) -> u8 {\n    let x = v[i];\n    v.get(i).unwrap()\n}\n"
            .to_string(),
    )];
    let rendered: Vec<String> = audit_files(&files, &config)
        .diagnostics
        .iter()
        .map(|d| d.to_string())
        .collect();
    assert!(
        rendered
            .iter()
            .any(|d| d.starts_with("crates/updp-serve/src/reactor.rs:2: R10")),
        "R10 indexing diagnostic missing: {rendered:?}"
    );
    assert!(
        rendered
            .iter()
            .any(|d| d.starts_with("crates/updp-serve/src/reactor.rs:3: R10")),
        "R10 unwrap diagnostic missing: {rendered:?}"
    );
}

/// Semantic findings honor the same `allow(...)` escape hatch as the
/// per-file rules, including the stale-allow diagnostic.
#[test]
fn semantic_findings_respect_allows() {
    let config = committed_config();
    let files = vec![(
        "crates/updp-serve/src/reactor.rs".to_string(),
        "fn f(v: Vec<u8>, i: usize) -> u8 {\n    v[i] // updp-lint: allow(R10, reason=\"caller checked bounds\")\n}\n"
            .to_string(),
    )];
    let diags = audit_files(&files, &config).diagnostics;
    assert!(
        diags.is_empty(),
        "allowed R10 site must not fire: {diags:?}"
    );
}

#[test]
fn config_scope_validation_flags_stale_and_duplicate_entries() {
    // The committed config is valid against the committed tree.
    let root = workspace_root();
    let report = audit_workspace(&root).expect("audit runs");
    assert!(
        !report.diagnostics.iter().any(|d| d.rule_id == "config"),
        "committed lint.toml has scope problems: {:?}",
        report.diagnostics
    );

    // A paths entry matching no file, a duplicate entry, and an
    // unknown rule section each become diagnostics at their line.
    let cfg = Config::parse(
        "[rule.R1]\npaths = [\"crates/ghost/src\", \"crates/real/src\", \"crates/real/src\"]\n\n[rule.R99]\ninclude_tests = true\n",
    )
    .expect("config parses");
    let rel_paths = vec!["crates/real/src/lib.rs".to_string()];
    let rendered: Vec<String> = validate_config(&cfg, &rel_paths)
        .iter()
        .map(|d| d.to_string())
        .collect();
    assert!(
        rendered
            .iter()
            .any(|d| d.starts_with("lint.toml:2:") && d.contains("`crates/ghost/src` matches no")),
        "no-match entry must be diagnosed: {rendered:?}"
    );
    assert!(
        rendered
            .iter()
            .any(|d| d.starts_with("lint.toml:2:") && d.contains("duplicate")),
        "duplicate entry must be diagnosed: {rendered:?}"
    );
    assert!(
        rendered
            .iter()
            .any(|d| d.starts_with("lint.toml:4:") && d.contains("unknown rule `R99`")),
        "unknown rule section must be diagnosed: {rendered:?}"
    );
}

#[test]
fn check_mode_exit_codes() {
    let bin = env!("CARGO_BIN_EXE_updp-lint");

    // Clean tree → exit 0.
    let ok = Command::new(bin)
        .args(["--check", "--root"])
        .arg(workspace_root())
        .output()
        .expect("updp-lint runs");
    assert!(
        ok.status.success(),
        "clean tree must pass --check\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&ok.stdout),
        String::from_utf8_lossy(&ok.stderr)
    );

    // Tree with a planted violation → non-zero exit, file:line on stdout.
    let dir = std::env::temp_dir().join(format!("updp-lint-fixture-{}", std::process::id()));
    let src_dir = dir.join("crates/updp-core/src");
    std::fs::create_dir_all(&src_dir).expect("fixture tree");
    std::fs::copy(workspace_root().join("lint.toml"), dir.join("lint.toml"))
        .expect("fixture lint.toml");
    std::fs::write(
        src_dir.join("bad.rs"),
        "pub fn now() -> std::time::Instant { std::time::Instant::now() }\n",
    )
    .expect("fixture source");

    let bad = Command::new(bin)
        .args(["--check", "--format", "github", "--root"])
        .arg(&dir)
        .output()
        .expect("updp-lint runs");
    let stdout = String::from_utf8_lossy(&bad.stdout);
    std::fs::remove_dir_all(&dir).ok();

    assert!(!bad.status.success(), "planted violation must fail --check");
    assert!(
        stdout.contains("crates/updp-core/src/bad.rs:1: R1"),
        "diagnostic must carry file:line and rule id, got: {stdout}"
    );
    assert!(
        stdout.contains("::error file=crates/updp-core/src/bad.rs,line=1::R1"),
        "--format github must add workflow annotations, got: {stdout}"
    );
}

#[test]
fn explain_covers_every_rule() {
    let bin = env!("CARGO_BIN_EXE_updp-lint");
    for rule in updp_lint::CATALOG.iter() {
        let out = Command::new(bin)
            .args(["--explain", rule.id])
            .output()
            .expect("updp-lint runs");
        assert!(out.status.success(), "--explain {} failed", rule.id);
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(
            text.contains(rule.contract),
            "--explain {} must cite {}",
            rule.id,
            rule.contract
        );
    }
}
