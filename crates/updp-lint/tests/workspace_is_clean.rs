//! The gate itself, as a test: the shipped tree must audit clean, and
//! a planted violation must fail with a `file:line` diagnostic and a
//! non-zero exit. Running this under plain `cargo test` means the
//! invariant catalog is enforced even where CI's dedicated lint step
//! is not wired (e.g. local pre-push runs).

use std::path::{Path, PathBuf};
use std::process::Command;
use updp_lint::{audit_workspace, Config};

/// The workspace root, resolved from this crate's manifest dir — the
/// directory holding the committed `lint.toml`.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
}

#[test]
fn shipped_tree_audits_clean() {
    let root = workspace_root();
    assert!(
        root.join("lint.toml").is_file(),
        "lint.toml missing at {}",
        root.display()
    );
    let report = audit_workspace(&root).expect("audit runs");
    assert!(
        report.files_audited > 50,
        "suspiciously few files audited ({}) — walk is broken",
        report.files_audited
    );
    assert!(
        report.diagnostics.is_empty(),
        "shipped tree has lint violations:\n{}",
        report
            .diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn planted_violation_yields_file_line_diagnostic() {
    // A violating fixture pushed through the *committed* config, so
    // the test exercises the real scoping: a determinism-scoped path
    // with an ambient time read and a HashMap.
    let root = workspace_root();
    let config_text = std::fs::read_to_string(root.join("lint.toml")).expect("lint.toml readable");
    let config = Config::parse(&config_text).expect("committed lint.toml parses");

    let fixture = "use std::time::Instant;\n\
                   use std::collections::HashMap;\n\
                   pub fn now() -> std::time::Instant {\n\
                       Instant::now()\n\
                   }\n";
    let diags = updp_lint::audit_source("crates/updp-core/src/planted.rs", fixture, &config);
    let rendered: Vec<String> = diags.iter().map(|d| d.to_string()).collect();
    assert!(
        rendered
            .iter()
            .any(|d| d.starts_with("crates/updp-core/src/planted.rs:4: R1")),
        "R1 diagnostic with exact line missing: {rendered:?}"
    );
    assert!(
        rendered.iter().any(|d| d.contains(": R2")),
        "R2 diagnostic missing: {rendered:?}"
    );
    // Diagnostics cite the contract section the rule enforces.
    assert!(
        rendered.iter().all(|d| d.contains("DESIGN.md")),
        "diagnostics must cite contract sections: {rendered:?}"
    );

    // The same fixture under a *test* path is out of scope (R1/R2
    // audit shipped library code, not test helpers).
    let diags = updp_lint::audit_source("crates/updp-core/tests/planted.rs", fixture, &config);
    assert!(diags.is_empty(), "test files must be exempt: {diags:?}");
}

#[test]
fn check_mode_exit_codes() {
    let bin = env!("CARGO_BIN_EXE_updp-lint");

    // Clean tree → exit 0.
    let ok = Command::new(bin)
        .args(["--check", "--root"])
        .arg(workspace_root())
        .output()
        .expect("updp-lint runs");
    assert!(
        ok.status.success(),
        "clean tree must pass --check\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&ok.stdout),
        String::from_utf8_lossy(&ok.stderr)
    );

    // Tree with a planted violation → non-zero exit, file:line on stdout.
    let dir = std::env::temp_dir().join(format!("updp-lint-fixture-{}", std::process::id()));
    let src_dir = dir.join("crates/updp-core/src");
    std::fs::create_dir_all(&src_dir).expect("fixture tree");
    std::fs::copy(workspace_root().join("lint.toml"), dir.join("lint.toml"))
        .expect("fixture lint.toml");
    std::fs::write(
        src_dir.join("bad.rs"),
        "pub fn now() -> std::time::Instant { std::time::Instant::now() }\n",
    )
    .expect("fixture source");

    let bad = Command::new(bin)
        .args(["--check", "--root"])
        .arg(&dir)
        .output()
        .expect("updp-lint runs");
    let stdout = String::from_utf8_lossy(&bad.stdout);
    std::fs::remove_dir_all(&dir).ok();

    assert!(!bad.status.success(), "planted violation must fail --check");
    assert!(
        stdout.contains("crates/updp-core/src/bad.rs:1: R1"),
        "diagnostic must carry file:line and rule id, got: {stdout}"
    );
}

#[test]
fn explain_covers_every_rule() {
    let bin = env!("CARGO_BIN_EXE_updp-lint");
    for rule in updp_lint::CATALOG.iter() {
        let out = Command::new(bin)
            .args(["--explain", rule.id])
            .output()
            .expect("updp-lint runs");
        assert!(out.status.success(), "--explain {} failed", rule.id);
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(
            text.contains(rule.contract),
            "--explain {} must cite {}",
            rule.id,
            rule.contract
        );
    }
}
