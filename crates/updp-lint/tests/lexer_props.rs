//! Property tests for the lexer's *invisibility* guarantees.
//!
//! Every rule matcher works on the token stream, so the entire audit is
//! only as sound as the lexer's claim that comment and string interiors
//! produce no tokens. These properties pin that claim over randomized
//! content — including `//`, `"` and `#` runs *inside* the wrapped
//! text — rather than the handful of hand-picked cases in the unit
//! tests.

use proptest::prelude::*;
use updp_lint::lexer::{lex, TokenKind};

/// Maps a random byte vector onto printable ASCII (space..`~`), the
/// alphabet all wrapped-content properties draw from. Newlines are
/// excluded here; properties that need them insert them deliberately.
fn printable(bytes: &[u8]) -> String {
    bytes.iter().map(|b| char::from(32 + (b % 95))).collect()
}

/// True when `tokens` contains an identifier — the leak the wrapping
/// properties assert can never happen.
fn has_ident(src: &str) -> bool {
    lex(src)
        .tokens
        .iter()
        .any(|t| matches!(t.kind, TokenKind::Ident(_)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Anything after `//` on a line is comment text: no tokens, one
    /// comment record, regardless of what the content looks like
    /// (quotes, `/*`, more slashes, ...).
    #[test]
    fn line_comment_swallows_content(bytes in prop::collection::vec(0u8..255, 0..60)) {
        let body = printable(&bytes);
        let src = format!("// {body}\n");
        let lexed = lex(&src);
        prop_assert!(lexed.tokens.is_empty(), "tokens leaked from {src:?}");
        prop_assert_eq!(lexed.comments.len(), 1);
        prop_assert_eq!(lexed.comments[0].line, 1);
    }

    /// Block-comment interiors are invisible. The content is sanitized
    /// so it cannot open or close a nested block itself (`*`+`/`
    /// adjacency broken), which keeps the wrapper balanced; everything
    /// else — quotes, slashes, hashes — rides along unescaped.
    #[test]
    fn block_comment_swallows_content(bytes in prop::collection::vec(0u8..255, 0..60)) {
        let body = printable(&bytes).replace("*/", "* /").replace("/*", "/ *");
        let src = format!("let a = 1; /* {body} */ let b = 2;");
        let lexed = lex(&src);
        let idents: Vec<&str> = lexed
            .tokens
            .iter()
            .filter_map(|t| match &t.kind {
                TokenKind::Ident(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        prop_assert_eq!(idents, vec!["let", "a", "let", "b"], "from {}", src);
    }

    /// String interiors are a single `Literal` token: no identifier in
    /// the content can leak, however it is quoted or escaped. `"` and
    /// `\` are escaped to keep the wrapper itself balanced.
    #[test]
    fn string_swallows_content(bytes in prop::collection::vec(0u8..255, 0..60)) {
        let body = printable(&bytes).replace('\\', "\\\\").replace('"', "\\\"");
        let src = format!("let s = \"{body}\";");
        let lexed = lex(&src);
        let literals = lexed
            .tokens
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::Literal))
            .count();
        prop_assert_eq!(literals, 1, "from {}", src);
        prop_assert!(!has_ident(&format!("\"{body}\"")), "ident leaked from string {body:?}");
        prop_assert!(lexed.comments.is_empty(), "comment conjured inside {src:?}");
    }

    /// Raw strings swallow *anything* — backslashes, quotes, even `"#`
    /// runs — once the delimiter uses more hashes than the longest run
    /// in the content. Exercises the hash-counting loop at every depth.
    #[test]
    fn raw_string_swallows_content(bytes in prop::collection::vec(0u8..255, 0..60)) {
        let body = printable(&bytes);
        let longest_run = body
            .split(|c| c != '#')
            .map(str::len)
            .max()
            .unwrap_or(0);
        let hashes = "#".repeat(longest_run + 1);
        let src = format!("let s = r{hashes}\"{body}\"{hashes};");
        let lexed = lex(&src);
        let literals = lexed
            .tokens
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::Literal))
            .count();
        prop_assert_eq!(literals, 1, "from {}", src);
        let idents: Vec<bool> = lexed
            .tokens
            .iter()
            .map(|t| matches!(&t.kind, TokenKind::Ident(s) if s != "let" && s != "s"))
            .collect();
        prop_assert!(!idents.contains(&true), "ident leaked from {src:?}");
    }

    /// Byte-string (`b"…"`) and C-string (`c"…"`) interiors are as
    /// invisible as plain strings, and the prefix letter never leaks
    /// as an identifier. Same escape discipline as the plain-string
    /// property.
    #[test]
    fn prefixed_string_swallows_content(
        bytes in prop::collection::vec(0u8..255, 0..60),
        c_prefix in 0u8..2,
    ) {
        let body = printable(&bytes).replace('\\', "\\\\").replace('"', "\\\"");
        let prefix = if c_prefix == 1 { "c" } else { "b" };
        let src = format!("let s = {prefix}\"{body}\";");
        let lexed = lex(&src);
        let literals = lexed
            .tokens
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::Literal))
            .count();
        prop_assert_eq!(literals, 1, "from {}", src);
        let idents: Vec<&str> = lexed
            .tokens
            .iter()
            .filter_map(|t| match &t.kind {
                TokenKind::Ident(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        prop_assert_eq!(idents, vec!["let", "s"], "leak from {}", src);
    }

    /// Raw byte- and raw C-strings (`br#"…"#`, `cr#"…"#`) swallow
    /// anything once the hash count beats the longest `#` run inside.
    #[test]
    fn prefixed_raw_string_swallows_content(
        bytes in prop::collection::vec(0u8..255, 0..60),
        c_prefix in 0u8..2,
    ) {
        let body = printable(&bytes);
        let longest_run = body
            .split(|c| c != '#')
            .map(str::len)
            .max()
            .unwrap_or(0);
        let hashes = "#".repeat(longest_run + 1);
        let prefix = if c_prefix == 1 { "cr" } else { "br" };
        let src = format!("let s = {prefix}{hashes}\"{body}\"{hashes};");
        let lexed = lex(&src);
        let literals = lexed
            .tokens
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::Literal))
            .count();
        prop_assert_eq!(literals, 1, "from {}", src);
        let leaked: Vec<bool> = lexed
            .tokens
            .iter()
            .map(|t| matches!(&t.kind, TokenKind::Ident(s) if s != "let" && s != "s"))
            .collect();
        prop_assert!(!leaked.contains(&true), "ident leaked from {src:?}");
    }

    /// The lexer is total and line numbers are monotone non-decreasing
    /// over completely arbitrary printable soup with injected newlines
    /// — it must never panic, loop, or walk lines backwards, even on
    /// unbalanced delimiters.
    #[test]
    fn lexing_is_total_and_lines_monotone(
        bytes in prop::collection::vec(0u8..255, 0..120),
        newline_mask in 0u64..u64::MAX,
    ) {
        let mut src = printable(&bytes);
        let mut out = String::with_capacity(src.len() + 8);
        for (i, c) in src.drain(..).enumerate() {
            out.push(c);
            if i < 64 && newline_mask & (1 << i) != 0 {
                out.push('\n');
            }
        }
        let lexed = lex(&out);
        let mut prev = 0u32;
        for t in &lexed.tokens {
            prop_assert!(t.line >= prev, "line went backwards in {out:?}");
            prev = t.line;
        }
        let total_lines = out.lines().count().max(1) as u32;
        for t in &lexed.tokens {
            prop_assert!(t.line <= total_lines, "token line {} beyond {total_lines}", t.line);
        }
    }

    /// Code *between* comments keeps correct line numbers: a token
    /// following `k` comment-only lines sits on line `k + 1`.
    #[test]
    fn comments_do_not_shift_line_numbers(k in 0usize..12) {
        let mut src = String::new();
        for i in 0..k {
            src.push_str(&format!("// filler {i}\n"));
        }
        src.push_str("marker");
        let lexed = lex(&src);
        prop_assert_eq!(lexed.tokens.len(), 1);
        prop_assert_eq!(lexed.tokens[0].line, (k + 1) as u32);
        prop_assert_eq!(lexed.comments.len(), k);
    }
}
