//! Privacy amplification by subsampling (Theorem 2.4, [BBG18]).
//!
//! Running an ε-DP mechanism on a without-replacement subsample of rate
//! `η` yields `log(1 + η(e^ε − 1))`-DP on the full dataset. The statistical
//! estimators (Algorithms 8 and 9) exploit this by finding the clipping
//! range on a subsample of `m = εn` elements: the paper sets the *inner*
//! budget to `ε′ = log((e^ε − 1)/ε + 1)` so that after amplification at
//! rate `η = ε` the outer cost is exactly ε.

use crate::privacy::Epsilon;

/// Amplified (outer) ε after running an `inner`-DP mechanism on a
/// without-replacement subsample of rate `rate ∈ (0, 1]`.
pub fn amplified_epsilon(inner: Epsilon, rate: f64) -> Epsilon {
    assert!(
        rate > 0.0 && rate <= 1.0,
        "sampling rate must be in (0, 1], got {rate}"
    );
    let outer = (1.0 + rate * (inner.get().exp() - 1.0)).ln();
    // outer ≤ inner always holds, and inner is valid, so this cannot fail.
    Epsilon::new(outer).expect("amplified epsilon is positive and finite")
}

/// The paper's inner budget for Algorithms 8–9:
/// `ε′ = log((e^ε − 1)/ε + 1)`, chosen so that a subsample of rate `ε`
/// running an ε′-DP mechanism costs exactly ε overall.
pub fn paper_inner_epsilon(epsilon: Epsilon) -> Epsilon {
    let e = epsilon.get();
    let inner = ((e.exp() - 1.0) / e + 1.0).ln();
    Epsilon::new(inner).expect("inner epsilon is positive and finite")
}

/// Inverse of [`amplified_epsilon`]: the largest inner ε whose subsampled
/// execution at `rate` is `target`-DP.
pub fn inner_epsilon_for(target: Epsilon, rate: f64) -> Epsilon {
    assert!(
        rate > 0.0 && rate <= 1.0,
        "sampling rate must be in (0, 1], got {rate}"
    );
    let inner = (1.0 + (target.get().exp() - 1.0) / rate).ln();
    Epsilon::new(inner).expect("inner epsilon is positive and finite")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn amplification_reduces_epsilon() {
        let inner = eps(1.0);
        let outer = amplified_epsilon(inner, 0.1);
        assert!(outer.get() < inner.get());
        // For small ε·η, outer ≈ η·ε.
        let small = amplified_epsilon(eps(0.01), 0.1);
        assert!((small.get() - 0.001).abs() / 0.001 < 0.05);
    }

    #[test]
    fn rate_one_is_identity() {
        let inner = eps(0.7);
        let outer = amplified_epsilon(inner, 1.0);
        assert!((outer.get() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn paper_inner_epsilon_amplifies_back_to_epsilon() {
        // Subsampling rate η = ε with inner budget ε′ must cost exactly ε:
        // log(1 + ε(e^{ε′} − 1)) = log(1 + ε·(e^ε − 1)/ε) = ε.
        for e in [0.01, 0.1, 0.5, 0.9] {
            let inner = paper_inner_epsilon(eps(e));
            let outer = amplified_epsilon(inner, e);
            assert!(
                (outer.get() - e).abs() < 1e-12,
                "ε = {e}: outer = {}",
                outer.get()
            );
        }
    }

    #[test]
    fn paper_inner_epsilon_exceeds_epsilon() {
        // ε′ > ε: the subsample gets a *larger* working budget.
        for e in [0.05, 0.2, 0.8] {
            assert!(paper_inner_epsilon(eps(e)).get() > e);
        }
    }

    #[test]
    fn inner_for_inverts_amplified() {
        for (e, rate) in [(0.3, 0.25), (0.05, 0.01), (1.5, 0.5)] {
            let inner = inner_epsilon_for(eps(e), rate);
            let outer = amplified_epsilon(inner, rate);
            assert!((outer.get() - e).abs() < 1e-10);
        }
    }

    #[test]
    #[should_panic(expected = "sampling rate")]
    fn rejects_zero_rate() {
        amplified_epsilon(eps(1.0), 0.0);
    }
}
