//! Randomness plumbing.
//!
//! Every mechanism takes `&mut impl Rng` so that experiments and tests can
//! supply deterministic, per-trial seeded generators; an application that
//! wants OS entropy seeds one at its own boundary, outside determinism
//! scope. Helper functions here derive independent child seeds from a
//! master seed (SplitMix64), which keeps many-trial experiments
//! reproducible without correlated streams.
//!
//! Security note: a DP deployment should draw noise from a CSPRNG. The
//! vendored `rand` shim's `StdRng` is xoshiro256++ — statistically
//! strong but not cryptographic (DESIGN.md §1.2); restoring upstream
//! `rand` swaps ChaCha12 back in behind the same API. Separately, the
//! floating-point Laplace sampler in [`crate::laplace`] is the textbook
//! inverse-CDF construction used by the paper's analysis, not hardened
//! against the Mironov floating-point attack; [`crate::snapping`] is the
//! hardened release path (DESIGN.md §1.3).

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Creates a deterministic RNG from a 64-bit seed.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// SplitMix64 step: derives a well-mixed child seed from `state`.
///
/// Used to fan a master experiment seed out into independent per-trial
/// seeds: `child_seed(master, trial_index)`.
#[inline]
pub fn child_seed(master: u64, index: u64) -> u64 {
    let mut z = master.wrapping_add(0x9E3779B97F4A7C15u64.wrapping_mul(index.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn seeded_is_deterministic() {
        let mut a = seeded(42);
        let mut b = seeded(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = seeded(1);
        let mut b = seeded(2);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn child_seeds_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(child_seed(7, i)), "collision at index {i}");
        }
    }

    #[test]
    fn child_seed_depends_on_master() {
        assert_ne!(child_seed(1, 0), child_seed(2, 0));
    }

    #[test]
    fn same_master_reproduces_child_streams_exactly() {
        // The contract experiments rely on: one integer (the master
        // seed) pins down every per-trial generator bit-for-bit —
        // across processes and machines, not merely within this run.
        // Golden values pin the exact streams; if the generator behind
        // `StdRng` is ever swapped (e.g. restoring upstream ChaCha12),
        // this test fails and the stored experiment outputs must be
        // consciously regenerated alongside these constants.
        let master = 0xDECA_FBAD;
        let golden: [(u64, u64, [u64; 3]); 3] = [
            (
                0,
                0x96ba_75ba_ddc1_b3bd,
                [
                    0xceab_87be_1b77_defc,
                    0x78be_1f0b_c37e_7981,
                    0x4f03_f155_4783_48b1,
                ],
            ),
            (
                1,
                0xf826_3722_a16d_6aa5,
                [
                    0x72ed_44e7_54cc_f072,
                    0x4c80_d58b_2ff9_60a4,
                    0x6d7c_0404_2c44_3099,
                ],
            ),
            (
                7,
                0x223c_bd02_9858_b0d0,
                [
                    0xc493_16eb_e1e5_3ed1,
                    0xd852_73ba_43b8_ac4a,
                    0xe3ad_2754_ac33_6378,
                ],
            ),
        ];
        for (trial, expected_seed, expected_draws) in golden {
            assert_eq!(child_seed(master, trial), expected_seed);
            let mut rng = seeded(expected_seed);
            for expected in expected_draws {
                assert_eq!(rng.gen::<u64>(), expected);
            }
        }
    }

    #[test]
    fn distinct_trial_indices_give_uncorrelated_streams() {
        // Smoke test, not a statistical certificate: adjacent trial
        // streams must (a) differ, and (b) show no visible linear
        // correlation in their uniform draws. For independent uniforms
        // the sample correlation over n = 4096 draws is ~N(0, 1/n);
        // |r| < 0.08 is a > 5σ envelope.
        let master = 7;
        let n = 4096;
        for trial in 0..8u64 {
            let mut a = seeded(child_seed(master, trial));
            let mut b = seeded(child_seed(master, trial + 1));
            let xs: Vec<f64> = (0..n).map(|_| a.gen::<f64>()).collect();
            let ys: Vec<f64> = (0..n).map(|_| b.gen::<f64>()).collect();
            assert_ne!(xs, ys, "adjacent trials produced identical streams");
            let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
            let (mx, my) = (mean(&xs), mean(&ys));
            let cov: f64 = xs
                .iter()
                .zip(&ys)
                .map(|(x, y)| (x - mx) * (y - my))
                .sum::<f64>();
            let var = |v: &[f64], m: f64| v.iter().map(|x| (x - m).powi(2)).sum::<f64>();
            let r = cov / (var(&xs, mx) * var(&ys, my)).sqrt();
            assert!(
                r.abs() < 0.08,
                "trials {trial} and {} correlate: r = {r}",
                trial + 1
            );
        }
    }
}
