//! Randomness plumbing.
//!
//! Every mechanism takes `&mut impl Rng` so that experiments and tests can
//! supply deterministic, per-trial seeded generators while applications
//! use OS entropy. Helper functions here derive independent child seeds
//! from a master seed (SplitMix64), which keeps many-trial experiments
//! reproducible without correlated streams.
//!
//! Security note: `StdRng` (ChaCha-based) is a CSPRNG, which is what a DP
//! deployment should use; the floating-point Laplace sampler in
//! [`crate::laplace`] is the textbook inverse-CDF construction used by the
//! paper's analysis, not a hardened implementation against the
//! Mironov floating-point attack. This matches the reproduction's goal of
//! studying *utility*, and is documented in DESIGN.md.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Creates a deterministic RNG from a 64-bit seed.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Creates an RNG from OS entropy.
pub fn from_entropy() -> StdRng {
    StdRng::from_entropy()
}

/// SplitMix64 step: derives a well-mixed child seed from `state`.
///
/// Used to fan a master experiment seed out into independent per-trial
/// seeds: `child_seed(master, trial_index)`.
#[inline]
pub fn child_seed(master: u64, index: u64) -> u64 {
    let mut z = master.wrapping_add(0x9E3779B97F4A7C15u64.wrapping_mul(index.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn seeded_is_deterministic() {
        let mut a = seeded(42);
        let mut b = seeded(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = seeded(1);
        let mut b = seeded(2);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn child_seeds_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(child_seed(7, i)), "collision at index {i}");
        }
    }

    #[test]
    fn child_seed_depends_on_master() {
        assert_ne!(child_seed(1, 0), child_seed(2, 0));
    }
}
