//! First-party JSON: the one shared writer/parser of the workspace.
//!
//! The build environment has no crates.io access and the vendored
//! `serde` shim carries no JSON backend, so the workspace owns a
//! minimal JSON implementation. It began life inside
//! `updp-bench::baseline` as the perf-report codec and was promoted
//! here so every schema — the perf baseline (`BENCH_baseline.json`),
//! the serving ledger snapshot, the `updp-serve` wire format, and the
//! load-generator report (`BENCH_serve.json`) — flows through exactly
//! one implementation with its own tests. `updp-bench` re-exports this
//! module for backwards compatibility.
//!
//! Scope: the JSON subset the workspace schemas use — objects, arrays,
//! strings (with `\uXXXX` and surrogate-pair escapes), finite numbers,
//! booleans, and `null`. Numbers are written with Rust's
//! shortest-round-trip `Display` for `f64`, so
//! `parse(to_compact(v))` reproduces `v` bit-for-bit; non-finite
//! numbers serialize as `null` (JSON has no NaN/∞).

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; insertion order is preserved by the writer.
    Object(Vec<(String, JsonValue)>),
}

/// Borrowed accessor over an object's fields with named-key errors.
pub struct Object<'a>(&'a [(String, JsonValue)]);

impl<'a> Object<'a> {
    /// The field `key`, or an error naming the missing key.
    pub fn get(&self, key: &str) -> Result<&'a JsonValue, String> {
        self.opt(key).ok_or_else(|| format!("missing key `{key}`"))
    }

    /// The field `key` if present (and not `null`).
    pub fn opt(&self, key: &str) -> Option<&'a JsonValue> {
        self.0
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .filter(|v| !matches!(v, JsonValue::Null))
    }

    /// The string field `key`.
    pub fn get_str(&self, key: &str) -> Result<String, String> {
        match self.get(key)? {
            JsonValue::String(s) => Ok(s.clone()),
            _ => Err(format!("key `{key}` is not a string")),
        }
    }

    /// The numeric field `key`.
    pub fn get_f64(&self, key: &str) -> Result<f64, String> {
        match self.get(key)? {
            JsonValue::Number(x) => Ok(*x),
            _ => Err(format!("key `{key}` is not a number")),
        }
    }

    /// The numeric field `key` as a non-negative integer.
    pub fn get_usize(&self, key: &str) -> Result<usize, String> {
        let x = self.get_f64(key)?;
        // updp-lint: allow(R5, reason="fract() == 0.0 is the exact integrality test for a JSON number; inexact values must be rejected, not rounded")
        if x >= 0.0 && x.fract() == 0.0 && x <= u64::MAX as f64 {
            Ok(x as usize)
        } else {
            Err(format!("key `{key}` is not a non-negative integer"))
        }
    }

    /// The boolean field `key`.
    pub fn get_bool(&self, key: &str) -> Result<bool, String> {
        match self.get(key)? {
            JsonValue::Bool(b) => Ok(*b),
            _ => Err(format!("key `{key}` is not a boolean")),
        }
    }

    /// The array field `key`.
    pub fn get_array(&self, key: &str) -> Result<&'a [JsonValue], String> {
        self.get(key)?.as_array(key)
    }
}

impl JsonValue {
    /// Builds an object from `(key, value)` pairs (writer keeps order).
    pub fn object(fields: Vec<(&str, JsonValue)>) -> JsonValue {
        JsonValue::Object(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds a number array from a slice of `f64`.
    pub fn numbers(xs: &[f64]) -> JsonValue {
        JsonValue::Array(xs.iter().map(|&x| JsonValue::Number(x)).collect())
    }

    /// Views this value as an object; `what` names it in the error.
    pub fn as_object(&self, what: &str) -> Result<Object<'_>, String> {
        match self {
            JsonValue::Object(fields) => Ok(Object(fields)),
            _ => Err(format!("{what} is not an object")),
        }
    }

    /// Views this value as an array; `what` names it in the error.
    pub fn as_array(&self, what: &str) -> Result<&[JsonValue], String> {
        match self {
            JsonValue::Array(items) => Ok(items),
            _ => Err(format!("{what} is not an array")),
        }
    }

    /// Views this value as a number; `what` names it in the error.
    pub fn as_f64(&self, what: &str) -> Result<f64, String> {
        match self {
            JsonValue::Number(x) => Ok(*x),
            _ => Err(format!("{what} is not a number")),
        }
    }

    /// Views this value as a string; `what` names it in the error.
    pub fn as_str(&self, what: &str) -> Result<&str, String> {
        match self {
            JsonValue::String(s) => Ok(s),
            _ => Err(format!("{what} is not a string")),
        }
    }

    /// Serializes without any whitespace (the wire format).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes pretty-printed with two-space indentation (the
    /// on-disk report format).
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(x) => {
                if x.is_finite() {
                    out.push_str(&x.to_string());
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::String(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                write_seq(out, indent, depth, b'[', items.len(), |out, i| {
                    items[i].write(out, indent, depth + 1)
                })
            }
            JsonValue::Object(fields) => {
                write_seq(out, indent, depth, b'{', fields.len(), |out, i| {
                    write_escaped(out, &fields[i].0);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    fields[i].1.write(out, indent, depth + 1);
                })
            }
        }
    }

    /// Parses a complete JSON document (rejects trailing garbage).
    pub fn parse(input: &str) -> Result<JsonValue, String> {
        let bytes = input.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }
}

impl From<f64> for JsonValue {
    fn from(x: f64) -> Self {
        JsonValue::Number(x)
    }
}

impl From<usize> for JsonValue {
    fn from(x: usize) -> Self {
        JsonValue::Number(x as f64)
    }
}

impl From<bool> for JsonValue {
    fn from(b: bool) -> Self {
        JsonValue::Bool(b)
    }
}

impl From<&str> for JsonValue {
    fn from(s: &str) -> Self {
        JsonValue::String(s.into())
    }
}

impl From<String> for JsonValue {
    fn from(s: String) -> Self {
        JsonValue::String(s)
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: u8,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    let close = if open == b'[' { ']' } else { '}' };
    out.push(open as char);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (depth + 1)));
        }
        item(out, i);
        if i + 1 < len {
            out.push(',');
        }
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parser recursion limit; documents cannot realistically need more.
const MAX_DEPTH: usize = 128;

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && (b[*pos] as char).is_ascii_whitespace() {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected `{}` at byte {} (found `{}`)",
            c as char,
            pos,
            b.get(*pos).map(|&x| x as char).unwrap_or('∅')
        ))
    }
}

fn parse_value(b: &[u8], pos: &mut usize, depth: usize) -> Result<JsonValue, String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH}"));
    }
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos, depth),
        Some(b'[') => parse_array(b, pos, depth),
        Some(b'"') => Ok(JsonValue::String(parse_string(b, pos)?)),
        Some(b't') => parse_literal(b, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_literal(b, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_literal(b, pos, "null", JsonValue::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        other => Err(format!(
            "unexpected `{}` at byte {}",
            other.map(|&x| x as char).unwrap_or('∅'),
            pos
        )),
    }
}

fn parse_literal(
    b: &[u8],
    pos: &mut usize,
    word: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if b[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos} (expected `{word}`)"))
    }
}

fn parse_object(b: &[u8], pos: &mut usize, depth: usize) -> Result<JsonValue, String> {
    expect(b, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Object(fields));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        expect(b, pos, b':')?;
        let value = parse_value(b, pos, depth + 1)?;
        fields.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Object(fields));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize, depth: usize) -> Result<JsonValue, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Array(items));
    }
    loop {
        items.push(parse_value(b, pos, depth + 1)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}")),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    while *pos < b.len() {
        match b[*pos] {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'u') => {
                        *pos += 1;
                        out.push(parse_unicode_escape(b, pos)?);
                        continue;
                    }
                    other => {
                        return Err(format!(
                            "unsupported escape `\\{}` at byte {}",
                            other.map(|&x| x as char).unwrap_or('∅'),
                            pos
                        ))
                    }
                }
                *pos += 1;
            }
            _ => {
                // Multi-byte UTF-8 passes through unchanged.
                let start = *pos;
                while *pos < b.len() && b[*pos] != b'"' && b[*pos] != b'\\' {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?);
            }
        }
    }
    Err("unterminated string".into())
}

/// Parses the 4 hex digits after `\u` (and a following low-surrogate
/// escape when the first unit is a high surrogate). `pos` sits on the
/// first hex digit on entry and one past the consumed escape on exit.
fn parse_unicode_escape(b: &[u8], pos: &mut usize) -> Result<char, String> {
    let unit = parse_hex4(b, pos)?;
    if (0xD800..0xDC00).contains(&unit) {
        // High surrogate: a `\uXXXX` low surrogate must follow.
        if b.get(*pos) == Some(&b'\\') && b.get(*pos + 1) == Some(&b'u') {
            *pos += 2;
            let low = parse_hex4(b, pos)?;
            if (0xDC00..0xE000).contains(&low) {
                let c = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                return char::from_u32(c).ok_or_else(|| format!("bad surrogate pair at {pos}"));
            }
        }
        return Err(format!("unpaired high surrogate before byte {pos}"));
    }
    char::from_u32(unit).ok_or_else(|| format!("unpaired surrogate `\\u{unit:04x}`"))
}

fn parse_hex4(b: &[u8], pos: &mut usize) -> Result<u32, String> {
    let slice = b
        .get(*pos..*pos + 4)
        .ok_or_else(|| format!("truncated \\u escape at byte {pos}"))?;
    let text = std::str::from_utf8(slice).map_err(|e| e.to_string())?;
    let unit =
        u32::from_str_radix(text, 16).map_err(|_| format!("bad \\u escape `{text}` at {pos}"))?;
    *pos += 4;
    Ok(unit)
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(JsonValue::Number)
        .map_err(|e| format!("bad number `{text}`: {e}"))
}

#[cfg(test)]
// Exact `==` on f64 is deliberate in tests: they pin bit-identical
// outputs (DESIGN.md §5), so an epsilon tolerance would weaken them.
#[allow(clippy::float_cmp)]
mod tests {
    use super::JsonValue as J;

    #[test]
    fn round_trips_all_value_kinds() {
        let v = J::object(vec![
            ("null", J::Null),
            ("yes", J::Bool(true)),
            ("no", J::Bool(false)),
            ("n", J::Number(-17.25)),
            ("s", J::from("héllo \"quoted\" \\ \n\ttab")),
            ("a", J::Array(vec![J::Number(1.0), J::Null, J::from("x")])),
            ("o", J::object(vec![("inner", J::numbers(&[0.1, 0.2]))])),
        ]);
        for text in [v.to_compact(), v.to_pretty()] {
            assert_eq!(J::parse(&text).unwrap(), v, "through {text}");
        }
    }

    #[test]
    fn numbers_round_trip_exactly() {
        for x in [
            0.1 + 0.2,
            f64::MIN_POSITIVE,
            f64::MAX,
            -0.0,
            1e300,
            123_456_789.123_456_79,
        ] {
            let text = J::Number(x).to_compact();
            match J::parse(&text).unwrap() {
                J::Number(y) => assert_eq!(y.to_bits(), x.to_bits(), "through {text}"),
                other => panic!("parsed {other:?}"),
            }
        }
    }

    #[test]
    fn non_finite_numbers_serialize_as_null() {
        assert_eq!(J::Number(f64::NAN).to_compact(), "null");
        assert_eq!(J::Number(f64::INFINITY).to_compact(), "null");
    }

    #[test]
    fn parses_standard_escapes_and_unicode() {
        assert_eq!(
            J::parse(r#""a\/bé€😀\b\f""#).unwrap(),
            J::from("a/bé€😀\u{0008}\u{000C}")
        );
        assert!(J::parse(r#""\ud83d""#).is_err(), "unpaired high surrogate");
        assert!(J::parse(r#""\q""#).is_err(), "unknown escape");
        assert!(J::parse(r#""\u12"#).is_err(), "truncated \\u");
    }

    #[test]
    fn control_chars_escape_on_write() {
        let text = J::from("a\u{0001}b").to_compact();
        assert_eq!(text, "\"a\\u0001b\"");
        assert_eq!(J::parse(&text).unwrap(), J::from("a\u{0001}b"));
    }

    #[test]
    fn pretty_format_is_stable() {
        let v = J::object(vec![
            ("a", J::Number(1.0)),
            ("b", J::Array(vec![J::Bool(true)])),
            ("empty", J::Array(vec![])),
        ]);
        assert_eq!(
            v.to_pretty(),
            "{\n  \"a\": 1,\n  \"b\": [\n    true\n  ],\n  \"empty\": []\n}"
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "{\"a\": 1} extra",
            "nul",
            "truee",
            "--1",
            "\"unterminated",
        ] {
            assert!(J::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn rejects_pathological_nesting() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(J::parse(&deep).is_err());
    }

    #[test]
    fn object_accessors_name_the_key_in_errors() {
        let v = J::parse(r#"{"n": 3, "s": "x", "b": true, "a": [1], "f": 1.5}"#).unwrap();
        let obj = v.as_object("top").unwrap();
        assert_eq!(obj.get_f64("n").unwrap(), 3.0);
        assert_eq!(obj.get_usize("n").unwrap(), 3);
        assert_eq!(obj.get_str("s").unwrap(), "x");
        assert!(obj.get_bool("b").unwrap());
        assert_eq!(obj.get_array("a").unwrap().len(), 1);
        assert!(obj.get_usize("f").unwrap_err().contains('f'));
        assert!(obj.get("missing").unwrap_err().contains("missing"));
        assert!(obj.opt("missing").is_none());
    }

    #[test]
    fn null_fields_read_as_absent() {
        let v = J::parse(r#"{"a": null}"#).unwrap();
        let obj = v.as_object("top").unwrap();
        assert!(obj.opt("a").is_none());
        assert!(obj.get("a").is_err());
    }
}
