//! The clipped mean estimator (Section 2.6).
//!
//! `ClippedMean(D, [l, r]) = μ(Clip(D, [l, r]))` has global sensitivity
//! `(r − l)/n`, so adding `Lap((r−l)/(εn))` gives an ε-DP release. All the
//! paper's mean estimators reduce to this once a privatized range has been
//! found; the art is entirely in choosing `[l, r]`.

use crate::error::{ensure_finite, ensure_nonempty, Result, UpdpError};
use crate::laplace::sample_laplace;
use crate::privacy::Epsilon;
use rand::Rng;

/// Clips a single value into `[lo, hi]`.
#[inline]
pub fn clip(x: f64, lo: f64, hi: f64) -> f64 {
    debug_assert!(lo <= hi);
    x.clamp(lo, hi)
}

/// Clips a single integer value into `[lo, hi]`.
#[inline]
pub fn clip_i64(x: i64, lo: i64, hi: i64) -> i64 {
    debug_assert!(lo <= hi);
    x.clamp(lo, hi)
}

/// The (non-private) clipped mean `μ(Clip(D, [lo, hi]))`.
///
/// Uses a numerically stable streaming mean; clipping bounds every term by
/// `max(|lo|, |hi|)` so no intermediate overflow is possible.
pub fn clipped_mean(data: &[f64], lo: f64, hi: f64) -> Result<f64> {
    ensure_nonempty(data)?;
    validate_interval(lo, hi)?;
    let mut mean = 0.0f64;
    for (i, &x) in data.iter().enumerate() {
        let c = clip(x, lo, hi);
        mean += (c - mean) / (i + 1) as f64;
    }
    Ok(mean)
}

/// Integer-domain clipped mean, returned as `f64`.
pub fn clipped_mean_i64(data: &[i64], lo: i64, hi: i64) -> Result<f64> {
    ensure_nonempty(data)?;
    if lo > hi {
        return Err(UpdpError::InvalidParameter {
            name: "interval",
            reason: format!("lo ({lo}) must not exceed hi ({hi})"),
        });
    }
    // i128 accumulation cannot overflow: n ≤ 2^63 terms of magnitude ≤ 2^63.
    let sum: i128 = data.iter().map(|&x| clip_i64(x, lo, hi) as i128).sum();
    Ok(sum as f64 / data.len() as f64)
}

/// ε-DP release of the clipped mean:
/// `ClippedMean(D, [lo, hi]) + Lap((hi − lo)/(εn))`.
///
/// This is the exact mechanism invoked by Algorithms 5, 8, and 9 (each
/// with its own noise multiplier folded into `epsilon`).
pub fn private_clipped_mean<R: Rng + ?Sized>(
    rng: &mut R,
    data: &[f64],
    lo: f64,
    hi: f64,
    epsilon: Epsilon,
) -> Result<f64> {
    ensure_finite(data, "private_clipped_mean input")?;
    let mean = clipped_mean(data, lo, hi)?;
    let width = hi - lo;
    // updp-lint: allow(R5, reason="exact zero-width degeneracy test: hi - lo == 0.0 iff hi == lo bitwise up to zero sign, and only that case is data-independent")
    if width == 0.0 {
        // Degenerate interval: the clipped mean is data-independent
        // (always `lo`), so releasing it exactly is 0-DP.
        return Ok(mean);
    }
    let scale = width / (epsilon.get() * data.len() as f64);
    Ok(mean + sample_laplace(rng, scale))
}

/// The number of elements of `data` strictly outside `[lo, hi]` — the
/// clipping bias diagnostic reported by the statistical estimators.
pub fn count_outside(data: &[f64], lo: f64, hi: f64) -> usize {
    data.iter().filter(|&&x| x < lo || x > hi).count()
}

/// Fused single-pass `(clipped_mean, count_outside)`.
///
/// The Algorithm 8/9 hot path needs both the clipped mean (the release)
/// and the number of clipped elements (the bias diagnostic); computing
/// them separately re-reads the full dataset. This fuses both into the
/// one pass, with the mean accumulated by *exactly* the same streaming
/// recurrence as [`clipped_mean`] — the returned mean is bit-identical
/// to calling the two functions separately.
pub fn clipped_mean_with_outside(data: &[f64], lo: f64, hi: f64) -> Result<(f64, usize)> {
    ensure_nonempty(data)?;
    validate_interval(lo, hi)?;
    let mut mean = 0.0f64;
    let mut outside = 0usize;
    for (i, &x) in data.iter().enumerate() {
        if x < lo || x > hi {
            outside += 1;
        }
        let c = clip(x, lo, hi);
        mean += (c - mean) / (i + 1) as f64;
    }
    Ok((mean, outside))
}

fn validate_interval(lo: f64, hi: f64) -> Result<()> {
    if !(lo.is_finite() && hi.is_finite()) {
        return Err(UpdpError::NonFiniteInput {
            context: "clipping interval",
        });
    }
    if lo > hi {
        return Err(UpdpError::InvalidParameter {
            name: "interval",
            reason: format!("lo ({lo}) must not exceed hi ({hi})"),
        });
    }
    Ok(())
}

#[cfg(test)]
// Exact `==` on f64 is deliberate in tests: they pin bit-identical
// outputs (DESIGN.md §5), so an epsilon tolerance would weaken them.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::rng::seeded;

    #[test]
    fn clip_basics() {
        assert_eq!(clip(5.0, 0.0, 10.0), 5.0);
        assert_eq!(clip(-5.0, 0.0, 10.0), 0.0);
        assert_eq!(clip(15.0, 0.0, 10.0), 10.0);
        assert_eq!(clip_i64(7, -3, 3), 3);
        assert_eq!(clip_i64(-7, -3, 3), -3);
    }

    #[test]
    fn clipped_mean_no_clipping_equals_mean() {
        let data = [1.0, 2.0, 3.0, 4.0];
        let m = clipped_mean(&data, -100.0, 100.0).unwrap();
        assert!((m - 2.5).abs() < 1e-12);
    }

    #[test]
    fn clipped_mean_clips_outliers() {
        let data = [0.0, 0.0, 1e9];
        let m = clipped_mean(&data, 0.0, 1.0).unwrap();
        assert!((m - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn clipped_mean_i64_matches_f64_version() {
        let data_i = [-10i64, 0, 5, 100];
        let data_f = [-10.0, 0.0, 5.0, 100.0];
        let mi = clipped_mean_i64(&data_i, -3, 50).unwrap();
        let mf = clipped_mean(&data_f, -3.0, 50.0).unwrap();
        assert!((mi - mf).abs() < 1e-12);
    }

    #[test]
    fn clipped_mean_i64_handles_extreme_values() {
        let data = [i64::MIN, i64::MAX, 0];
        let m = clipped_mean_i64(&data, i64::MIN, i64::MAX).unwrap();
        // MIN + MAX = −1, so mean = −1/3.
        assert!((m - (-1.0 / 3.0)).abs() < 1.0);
    }

    #[test]
    fn private_mean_concentrates_with_large_n() {
        let mut rng = seeded(1);
        let n = 10_000;
        let data: Vec<f64> = (0..n).map(|i| (i % 100) as f64).collect();
        let truth = clipped_mean(&data, 0.0, 99.0).unwrap();
        let eps = Epsilon::new(1.0).unwrap();
        let est = private_clipped_mean(&mut rng, &data, 0.0, 99.0, eps).unwrap();
        // noise scale = 99/(1·10000) ≈ 0.01
        assert!((est - truth).abs() < 0.2, "est {est} vs truth {truth}");
    }

    #[test]
    fn private_mean_degenerate_interval() {
        let mut rng = seeded(2);
        let data = [1.0, 2.0, 3.0];
        let eps = Epsilon::new(1.0).unwrap();
        let est = private_clipped_mean(&mut rng, &data, 5.0, 5.0, eps).unwrap();
        assert_eq!(est, 5.0);
    }

    #[test]
    fn rejects_invalid_intervals_and_nan() {
        let mut rng = seeded(3);
        let eps = Epsilon::new(1.0).unwrap();
        assert!(clipped_mean(&[1.0], 2.0, 1.0).is_err());
        assert!(clipped_mean(&[1.0], f64::NAN, 1.0).is_err());
        assert!(private_clipped_mean(&mut rng, &[f64::NAN], 0.0, 1.0, eps).is_err());
        assert!(clipped_mean_i64(&[1], 2, 1).is_err());
        assert!(clipped_mean(&[], 0.0, 1.0).is_err());
    }

    #[test]
    fn count_outside_counts() {
        let data = [-5.0, 0.0, 5.0, 10.0, 15.0];
        assert_eq!(count_outside(&data, 0.0, 10.0), 2);
        assert_eq!(count_outside(&data, -10.0, 20.0), 0);
    }

    #[test]
    fn fused_pass_matches_separate_calls_bitwise() {
        let mut rng = seeded(4);
        use rand::Rng;
        let data: Vec<f64> = (0..1000)
            .map(|_| rng.gen::<f64>() * 200.0 - 100.0)
            .collect();
        for (lo, hi) in [(-100.0, 100.0), (-10.0, 10.0), (0.0, 0.0), (-1e-3, 1e9)] {
            let (mean, outside) = clipped_mean_with_outside(&data, lo, hi).unwrap();
            assert_eq!(
                mean.to_bits(),
                clipped_mean(&data, lo, hi).unwrap().to_bits()
            );
            assert_eq!(outside, count_outside(&data, lo, hi));
        }
        assert!(clipped_mean_with_outside(&[], 0.0, 1.0).is_err());
        assert!(clipped_mean_with_outside(&[1.0], 2.0, 1.0).is_err());
    }

    #[test]
    fn streaming_mean_is_stable_for_large_values() {
        let data = vec![1e15; 1000];
        let m = clipped_mean(&data, 0.0, 2e15).unwrap();
        assert!((m - 1e15).abs() / 1e15 < 1e-12);
    }
}
