//! The clipped mean estimator (Section 2.6).
//!
//! `ClippedMean(D, [l, r]) = μ(Clip(D, [l, r]))` has global sensitivity
//! `(r − l)/n`, so adding `Lap((r−l)/(εn))` gives an ε-DP release. All the
//! paper's mean estimators reduce to this once a privatized range has been
//! found; the art is entirely in choosing `[l, r]`.

use crate::error::{ensure_finite, ensure_nonempty, Result, UpdpError};
use crate::laplace::sample_laplace;
use crate::privacy::Epsilon;
use rand::Rng;

/// Clips a single value into `[lo, hi]`.
#[inline]
pub fn clip(x: f64, lo: f64, hi: f64) -> f64 {
    debug_assert!(lo <= hi);
    x.clamp(lo, hi)
}

/// Clips a single integer value into `[lo, hi]`.
#[inline]
pub fn clip_i64(x: i64, lo: i64, hi: i64) -> i64 {
    debug_assert!(lo <= hi);
    x.clamp(lo, hi)
}

/// Fixed chunk width of the branchless clip/count/sum kernels below
/// (DESIGN.md §12). The width is a compile-time constant so the inner
/// loops have a known trip count the compiler unrolls and
/// autovectorizes; 64 f64s fill eight AVX-512 / sixteen SSE2 registers
/// and stay far below any overflow bound the integer kernels need.
pub const KERNEL_CHUNK: usize = 64;

/// The shared clip+count+mean kernel: per [`KERNEL_CHUNK`]-wide chunk,
/// clamp into a stack buffer and count out-of-range elements
/// branchlessly (two simple elementwise loops, written to
/// autovectorize), then fold the clamped chunk through **exactly** the
/// serial streaming recurrence of the historical implementation.
///
/// Bit-identity argument (DESIGN.md §12): the mean recurrence
/// `m += (c − m)/(i+1)` is order-dependent and is **not** re-associated
/// — it consumes the same clamped values in the same order as before.
/// Only the clamp (elementwise, no cross-element data flow) and the
/// count (integer addition, exact and associative) are re-chunked, and
/// neither can change any released bit.
fn clipped_mean_outside_kernel(data: &[f64], lo: f64, hi: f64) -> (f64, usize) {
    let mut mean = 0.0f64;
    let mut outside = 0usize;
    let mut i = 0usize;
    let mut buf = [0.0f64; KERNEL_CHUNK];
    let mut chunks = data.chunks_exact(KERNEL_CHUNK);
    for chunk in &mut chunks {
        for (slot, &x) in buf.iter_mut().zip(chunk) {
            *slot = x.clamp(lo, hi);
        }
        let mut out = 0usize;
        for &x in chunk {
            out += usize::from(x < lo) + usize::from(x > hi);
        }
        outside += out;
        for &c in &buf {
            mean += (c - mean) / (i + 1) as f64;
            i += 1;
        }
    }
    for &x in chunks.remainder() {
        outside += usize::from(x < lo) + usize::from(x > hi);
        let c = x.clamp(lo, hi);
        mean += (c - mean) / (i + 1) as f64;
        i += 1;
    }
    (mean, outside)
}

/// The (non-private) clipped mean `μ(Clip(D, [lo, hi]))`.
///
/// Uses a numerically stable streaming mean; clipping bounds every term by
/// `max(|lo|, |hi|)` so no intermediate overflow is possible. The clamp
/// pass is chunked to autovectorize ([`KERNEL_CHUNK`]); the recurrence
/// itself is untouched, so the result is bit-identical to the
/// historical per-element loop.
pub fn clipped_mean(data: &[f64], lo: f64, hi: f64) -> Result<f64> {
    ensure_nonempty(data)?;
    validate_interval(lo, hi)?;
    // Mean-only kernel: same chunked clamp + untouched recurrence as
    // `clipped_mean_outside_kernel`, minus the outside-count loop the
    // caller would discard.
    let mut mean = 0.0f64;
    let mut i = 0usize;
    let mut buf = [0.0f64; KERNEL_CHUNK];
    let mut chunks = data.chunks_exact(KERNEL_CHUNK);
    for chunk in &mut chunks {
        for (slot, &x) in buf.iter_mut().zip(chunk) {
            *slot = x.clamp(lo, hi);
        }
        for &c in &buf {
            mean += (c - mean) / (i + 1) as f64;
            i += 1;
        }
    }
    for &x in chunks.remainder() {
        mean += (x.clamp(lo, hi) - mean) / (i + 1) as f64;
        i += 1;
    }
    Ok(mean)
}

/// Exact clipped sum `Σ clamp(x, [lo, hi])` with `i128` accumulation.
///
/// Unlike the f64 streaming mean, integer addition is associative and
/// the clamp is elementwise, so this kernel may be freely re-chunked
/// without changing a single bit. When `max(|lo|, |hi|)` guarantees a
/// [`KERNEL_CHUNK`]-wide partial cannot overflow `i64`, chunks
/// accumulate in `i64` (which autovectorizes — `i128` adds do not) and
/// fold into the `i128` total; otherwise it falls back to the
/// historical per-element `i128` accumulation. Both paths are exact.
pub fn clipped_sum_i64(data: &[i64], lo: i64, hi: i64) -> i128 {
    debug_assert!(lo <= hi);
    let bound = lo.unsigned_abs().max(hi.unsigned_abs());
    if bound > i64::MAX as u64 / KERNEL_CHUNK as u64 {
        return data.iter().map(|&x| clip_i64(x, lo, hi) as i128).sum();
    }
    let mut total: i128 = 0;
    let mut chunks = data.chunks_exact(KERNEL_CHUNK);
    for chunk in &mut chunks {
        let mut part: i64 = 0;
        for &x in chunk {
            part += x.clamp(lo, hi);
        }
        total += part as i128;
    }
    let mut part: i64 = 0;
    for &x in chunks.remainder() {
        part += x.clamp(lo, hi);
    }
    total + part as i128
}

/// Integer-domain clipped mean, returned as `f64`.
pub fn clipped_mean_i64(data: &[i64], lo: i64, hi: i64) -> Result<f64> {
    ensure_nonempty(data)?;
    if lo > hi {
        return Err(UpdpError::InvalidParameter {
            name: "interval",
            reason: format!("lo ({lo}) must not exceed hi ({hi})"),
        });
    }
    let sum = clipped_sum_i64(data, lo, hi);
    Ok(sum as f64 / data.len() as f64)
}

/// ε-DP release of the clipped mean:
/// `ClippedMean(D, [lo, hi]) + Lap((hi − lo)/(εn))`.
///
/// This is the exact mechanism invoked by Algorithms 5, 8, and 9 (each
/// with its own noise multiplier folded into `epsilon`).
pub fn private_clipped_mean<R: Rng + ?Sized>(
    rng: &mut R,
    data: &[f64],
    lo: f64,
    hi: f64,
    epsilon: Epsilon,
) -> Result<f64> {
    ensure_finite(data, "private_clipped_mean input")?;
    let mean = clipped_mean(data, lo, hi)?;
    let width = hi - lo;
    // updp-lint: allow(R5, reason="exact zero-width degeneracy test: hi - lo == 0.0 iff hi == lo bitwise up to zero sign, and only that case is data-independent")
    if width == 0.0 {
        // Degenerate interval: the clipped mean is data-independent
        // (always `lo`), so releasing it exactly is 0-DP.
        return Ok(mean);
    }
    let scale = width / (epsilon.get() * data.len() as f64);
    Ok(mean + sample_laplace(rng, scale))
}

/// The number of elements of `data` strictly outside `[lo, hi]` — the
/// clipping bias diagnostic reported by the statistical estimators.
///
/// Branchless: each element contributes `(x < lo) + (x > hi)` as
/// integers, which vectorizes to compare+mask lanes. NaN compares
/// false on both sides, so NaNs are not counted — exactly the
/// behavior of the historical `x < lo || x > hi` filter.
pub fn count_outside(data: &[f64], lo: f64, hi: f64) -> usize {
    let mut outside = 0usize;
    let mut chunks = data.chunks_exact(KERNEL_CHUNK);
    for chunk in &mut chunks {
        let mut out = 0usize;
        for &x in chunk {
            out += usize::from(x < lo) + usize::from(x > hi);
        }
        outside += out;
    }
    for &x in chunks.remainder() {
        outside += usize::from(x < lo) + usize::from(x > hi);
    }
    outside
}

/// Fused single-pass `(clipped_mean, count_outside)`.
///
/// The Algorithm 8/9 hot path needs both the clipped mean (the release)
/// and the number of clipped elements (the bias diagnostic); computing
/// them separately re-reads the full dataset. Both are produced by the
/// shared chunked kernel, with the mean accumulated by *exactly* the
/// same streaming recurrence as [`clipped_mean`] — the returned mean is
/// bit-identical to calling the two functions separately.
pub fn clipped_mean_with_outside(data: &[f64], lo: f64, hi: f64) -> Result<(f64, usize)> {
    ensure_nonempty(data)?;
    validate_interval(lo, hi)?;
    Ok(clipped_mean_outside_kernel(data, lo, hi))
}

fn validate_interval(lo: f64, hi: f64) -> Result<()> {
    if !(lo.is_finite() && hi.is_finite()) {
        return Err(UpdpError::NonFiniteInput {
            context: "clipping interval",
        });
    }
    if lo > hi {
        return Err(UpdpError::InvalidParameter {
            name: "interval",
            reason: format!("lo ({lo}) must not exceed hi ({hi})"),
        });
    }
    Ok(())
}

#[cfg(test)]
// Exact `==` on f64 is deliberate in tests: they pin bit-identical
// outputs (DESIGN.md §5), so an epsilon tolerance would weaken them.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::rng::seeded;

    #[test]
    fn clip_basics() {
        assert_eq!(clip(5.0, 0.0, 10.0), 5.0);
        assert_eq!(clip(-5.0, 0.0, 10.0), 0.0);
        assert_eq!(clip(15.0, 0.0, 10.0), 10.0);
        assert_eq!(clip_i64(7, -3, 3), 3);
        assert_eq!(clip_i64(-7, -3, 3), -3);
    }

    #[test]
    fn clipped_mean_no_clipping_equals_mean() {
        let data = [1.0, 2.0, 3.0, 4.0];
        let m = clipped_mean(&data, -100.0, 100.0).unwrap();
        assert!((m - 2.5).abs() < 1e-12);
    }

    #[test]
    fn clipped_mean_clips_outliers() {
        let data = [0.0, 0.0, 1e9];
        let m = clipped_mean(&data, 0.0, 1.0).unwrap();
        assert!((m - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn clipped_mean_i64_matches_f64_version() {
        let data_i = [-10i64, 0, 5, 100];
        let data_f = [-10.0, 0.0, 5.0, 100.0];
        let mi = clipped_mean_i64(&data_i, -3, 50).unwrap();
        let mf = clipped_mean(&data_f, -3.0, 50.0).unwrap();
        assert!((mi - mf).abs() < 1e-12);
    }

    #[test]
    fn clipped_mean_i64_handles_extreme_values() {
        let data = [i64::MIN, i64::MAX, 0];
        let m = clipped_mean_i64(&data, i64::MIN, i64::MAX).unwrap();
        // MIN + MAX = −1, so mean = −1/3.
        assert!((m - (-1.0 / 3.0)).abs() < 1.0);
    }

    #[test]
    fn private_mean_concentrates_with_large_n() {
        let mut rng = seeded(1);
        let n = 10_000;
        let data: Vec<f64> = (0..n).map(|i| (i % 100) as f64).collect();
        let truth = clipped_mean(&data, 0.0, 99.0).unwrap();
        let eps = Epsilon::new(1.0).unwrap();
        let est = private_clipped_mean(&mut rng, &data, 0.0, 99.0, eps).unwrap();
        // noise scale = 99/(1·10000) ≈ 0.01
        assert!((est - truth).abs() < 0.2, "est {est} vs truth {truth}");
    }

    #[test]
    fn private_mean_degenerate_interval() {
        let mut rng = seeded(2);
        let data = [1.0, 2.0, 3.0];
        let eps = Epsilon::new(1.0).unwrap();
        let est = private_clipped_mean(&mut rng, &data, 5.0, 5.0, eps).unwrap();
        assert_eq!(est, 5.0);
    }

    #[test]
    fn rejects_invalid_intervals_and_nan() {
        let mut rng = seeded(3);
        let eps = Epsilon::new(1.0).unwrap();
        assert!(clipped_mean(&[1.0], 2.0, 1.0).is_err());
        assert!(clipped_mean(&[1.0], f64::NAN, 1.0).is_err());
        assert!(private_clipped_mean(&mut rng, &[f64::NAN], 0.0, 1.0, eps).is_err());
        assert!(clipped_mean_i64(&[1], 2, 1).is_err());
        assert!(clipped_mean(&[], 0.0, 1.0).is_err());
    }

    #[test]
    fn count_outside_counts() {
        let data = [-5.0, 0.0, 5.0, 10.0, 15.0];
        assert_eq!(count_outside(&data, 0.0, 10.0), 2);
        assert_eq!(count_outside(&data, -10.0, 20.0), 0);
    }

    #[test]
    fn fused_pass_matches_separate_calls_bitwise() {
        let mut rng = seeded(4);
        use rand::Rng;
        let data: Vec<f64> = (0..1000)
            .map(|_| rng.gen::<f64>() * 200.0 - 100.0)
            .collect();
        for (lo, hi) in [(-100.0, 100.0), (-10.0, 10.0), (0.0, 0.0), (-1e-3, 1e9)] {
            let (mean, outside) = clipped_mean_with_outside(&data, lo, hi).unwrap();
            assert_eq!(
                mean.to_bits(),
                clipped_mean(&data, lo, hi).unwrap().to_bits()
            );
            assert_eq!(outside, count_outside(&data, lo, hi));
        }
        assert!(clipped_mean_with_outside(&[], 0.0, 1.0).is_err());
        assert!(clipped_mean_with_outside(&[1.0], 2.0, 1.0).is_err());
    }

    #[test]
    fn streaming_mean_is_stable_for_large_values() {
        let data = vec![1e15; 1000];
        let m = clipped_mean(&data, 0.0, 2e15).unwrap();
        assert!((m - 1e15).abs() / 1e15 < 1e-12);
    }

    /// Per-element reference implementations of the historical
    /// (pre-chunking) kernels — the chunked versions must match these
    /// bitwise on every input, including NaN.
    fn reference_mean_outside(data: &[f64], lo: f64, hi: f64) -> (f64, usize) {
        let mut mean = 0.0f64;
        let mut outside = 0usize;
        for (i, &x) in data.iter().enumerate() {
            if x < lo || x > hi {
                outside += 1;
            }
            mean += (clip(x, lo, hi) - mean) / (i + 1) as f64;
        }
        (mean, outside)
    }

    #[test]
    fn chunked_kernel_matches_reference_bitwise() {
        let mut rng = seeded(11);
        use rand::Rng;
        // Lengths straddling the chunk width exercise both the exact
        // chunks and the remainder loop.
        for n in [1usize, 63, 64, 65, 128, 130, 1000] {
            let mut data: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() * 2e3 - 1e3).collect();
            if n > 4 {
                data[1] = f64::NAN;
                data[2] = f64::NEG_INFINITY;
                data[3] = -0.0;
                data[4] = f64::INFINITY;
            }
            for (lo, hi) in [(-500.0, 500.0), (0.0, 0.0), (-1e300, 1e300)] {
                let (rm, ro) = reference_mean_outside(&data, lo, hi);
                let (m, o) = clipped_mean_with_outside(&data, lo, hi).unwrap();
                assert_eq!(m.to_bits(), rm.to_bits(), "n={n} lo={lo} hi={hi}");
                assert_eq!(o, ro);
                assert_eq!(count_outside(&data, lo, hi), ro);
                assert_eq!(clipped_mean(&data, lo, hi).unwrap().to_bits(), rm.to_bits());
            }
        }
    }

    #[test]
    fn clipped_sum_matches_reference_on_both_paths() {
        let mut rng = seeded(12);
        use rand::Rng;
        for n in [0usize, 1, 64, 65, 200] {
            let data: Vec<i64> = (0..n).map(|_| rng.gen::<i64>()).collect();
            // Fast path: bounds small enough for i64 chunk partials.
            let (lo, hi) = (-1_000_000, 1_000_000);
            let want: i128 = data.iter().map(|&x| clip_i64(x, lo, hi) as i128).sum();
            assert_eq!(clipped_sum_i64(&data, lo, hi), want);
            // Fallback path: bounds too large for the chunked partials.
            let (lo, hi) = (i64::MIN, i64::MAX);
            let want: i128 = data.iter().map(|&x| x as i128).sum();
            assert_eq!(clipped_sum_i64(&data, lo, hi), want);
        }
    }

    #[test]
    fn clipped_sum_extreme_bounds_cannot_overflow() {
        let data = vec![i64::MAX; 300];
        let want = i64::MAX as i128 * 300;
        assert_eq!(clipped_sum_i64(&data, i64::MIN, i64::MAX), want);
        let data = vec![i64::MIN; 300];
        assert_eq!(
            clipped_sum_i64(&data, i64::MIN, i64::MAX),
            i64::MIN as i128 * 300
        );
    }
}
