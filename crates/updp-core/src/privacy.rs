//! Privacy-parameter types and budget accounting.
//!
//! A mechanism `M : Xⁿ → Y` is (ε, δ)-DP if for all neighboring datasets
//! `D ~ D′` and measurable `S ⊆ Y`,
//! `Pr[M(D) ∈ S] ≤ e^ε · Pr[M(D′) ∈ S] + δ` (paper, Eq. (1)). The case
//! `δ = 0` is *pure* DP, written ε-DP — the regime this whole repository
//! targets.
//!
//! ε is represented by the validated newtype [`Epsilon`] so that "ε is
//! positive and finite" is checked exactly once, at the API boundary, and
//! every internal algorithm can rely on it. Budget splitting (basic
//! composition, Lemma 2.2) is expressed through [`Epsilon::scale`] and the
//! [`BudgetAccountant`].

use crate::error::{Result, UpdpError};
use serde::{Deserialize, Serialize};

/// A validated pure-DP privacy parameter: finite and strictly positive.
///
/// The paper additionally assumes `ε < 1` for its *analysis* (the
/// high-privacy regime, §1), but the *algorithms* are well-defined for any
/// positive ε, so the type admits any finite positive value.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Epsilon(f64);

impl Epsilon {
    /// Creates a new ε, validating `0 < ε < ∞`.
    pub fn new(value: f64) -> Result<Self> {
        if value.is_finite() && value > 0.0 {
            Ok(Epsilon(value))
        } else {
            Err(UpdpError::InvalidParameter {
                name: "epsilon",
                reason: format!("must be finite and positive, got {value}"),
            })
        }
    }

    /// Returns the raw ε value.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }

    /// Returns `factor · ε` as a new budget share.
    ///
    /// Panics in debug builds if `factor` is not in `(0, 1]`; budget
    /// *splitting* must never create more budget than it started with.
    #[inline]
    pub fn scale(self, factor: f64) -> Epsilon {
        debug_assert!(
            factor > 0.0 && factor <= 1.0,
            "budget scale factor must be in (0, 1], got {factor}"
        );
        Epsilon(self.0 * factor)
    }

    /// Splits the budget into shares proportional to `weights`.
    ///
    /// The shares sum exactly to `ε` (up to floating-point rounding), so
    /// running one mechanism per share and composing (Lemma 2.2) costs ε.
    pub fn split(self, weights: &[f64]) -> Vec<Epsilon> {
        let total: f64 = weights.iter().sum();
        assert!(
            total > 0.0 && weights.iter().all(|&w| w > 0.0),
            "split weights must be positive"
        );
        weights
            .iter()
            .map(|&w| Epsilon(self.0 * w / total))
            .collect()
    }
}

/// A validated approximate-DP failure probability: `0 ≤ δ < 1`.
///
/// Pure DP is `Delta::ZERO`. Only the [DL09] baseline uses δ > 0.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Delta(f64);

impl Delta {
    /// δ = 0, i.e. pure DP.
    pub const ZERO: Delta = Delta(0.0);

    /// Creates a new δ, validating `0 ≤ δ < 1`.
    pub fn new(value: f64) -> Result<Self> {
        if value.is_finite() && (0.0..1.0).contains(&value) {
            Ok(Delta(value))
        } else {
            Err(UpdpError::InvalidParameter {
                name: "delta",
                reason: format!("must be in [0, 1), got {value}"),
            })
        }
    }

    /// Returns the raw δ value.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }

    /// Whether this is the pure-DP case δ = 0.
    #[inline]
    pub fn is_pure(self) -> bool {
        // updp-lint: allow(R5, reason="pure DP is exactly delta == 0.0; any positive delta, however tiny, is approximate DP and must not pass this test")
        self.0 == 0.0
    }
}

/// A combined (ε, δ) privacy guarantee.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrivacyGuarantee {
    /// The ε part of the guarantee.
    pub epsilon: Epsilon,
    /// The δ part; zero for pure DP.
    pub delta: Delta,
}

impl PrivacyGuarantee {
    /// A pure ε-DP guarantee.
    pub fn pure(epsilon: Epsilon) -> Self {
        PrivacyGuarantee {
            epsilon,
            delta: Delta::ZERO,
        }
    }

    /// Basic composition (Lemma 2.2): both ε and δ add.
    pub fn compose(self, other: PrivacyGuarantee) -> Self {
        PrivacyGuarantee {
            epsilon: Epsilon(self.epsilon.0 + other.epsilon.0),
            delta: Delta((self.delta.0 + other.delta.0).min(1.0 - f64::EPSILON)),
        }
    }
}

/// Absolute slack allowed when comparing accumulated ε spend against a
/// total budget: repeated splitting (e.g. ten shares of `total/10`)
/// need not sum to exactly `total` in floating point. Shared by
/// [`BudgetAccountant`] and the serving ledger (`updp-serve`) so the
/// overshoot rule has exactly one definition.
pub fn budget_tolerance(total: f64) -> f64 {
    1e-9 * total.max(1.0)
}

/// A simple sequential-composition budget accountant.
///
/// Mechanisms that make several sub-calls (e.g. `EstimateMean`, which runs
/// `EstimateIQRLowerBound`, a subsampled range finder, and one Laplace
/// release) use an accountant to assert — in tests and debug builds — that
/// their internal budget arithmetic adds up to the advertised total.
#[derive(Debug, Clone)]
pub struct BudgetAccountant {
    total: f64,
    spent: f64,
    log: Vec<(&'static str, f64)>,
}

impl BudgetAccountant {
    /// Creates an accountant with `total` ε of budget.
    pub fn new(total: Epsilon) -> Self {
        BudgetAccountant {
            total: total.get(),
            spent: 0.0,
            log: Vec::new(),
        }
    }

    /// Requests `share` of ε for a sub-mechanism labeled `label`.
    ///
    /// Returns the share back (for ergonomic chaining) or an error if it
    /// would exceed the remaining budget beyond floating-point tolerance.
    pub fn charge(&mut self, label: &'static str, share: Epsilon) -> Result<Epsilon> {
        let eps = share.get();
        if self.spent + eps > self.total + budget_tolerance(self.total) {
            return Err(UpdpError::BudgetExceeded {
                requested: eps,
                available: self.total - self.spent,
            });
        }
        self.spent += eps;
        self.log.push((label, eps));
        Ok(share)
    }

    /// ε spent so far.
    pub fn spent(&self) -> f64 {
        self.spent
    }

    /// ε remaining.
    pub fn remaining(&self) -> f64 {
        (self.total - self.spent).max(0.0)
    }

    /// The itemized spend log: `(label, ε)` pairs in charge order.
    pub fn log(&self) -> &[(&'static str, f64)] {
        &self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epsilon_rejects_bad_values() {
        assert!(Epsilon::new(0.0).is_err());
        assert!(Epsilon::new(-1.0).is_err());
        assert!(Epsilon::new(f64::NAN).is_err());
        assert!(Epsilon::new(f64::INFINITY).is_err());
        assert!(Epsilon::new(0.5).is_ok());
    }

    #[test]
    fn epsilon_scale_and_get() {
        let eps = Epsilon::new(1.0).unwrap();
        assert!((eps.scale(0.25).get() - 0.25).abs() < 1e-15);
    }

    #[test]
    fn epsilon_split_sums_to_total() {
        let eps = Epsilon::new(0.8).unwrap();
        let parts = eps.split(&[1.0, 2.0, 5.0]);
        let sum: f64 = parts.iter().map(|e| e.get()).sum();
        assert!((sum - 0.8).abs() < 1e-12);
        assert!((parts[2].get() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn delta_validation() {
        assert!(Delta::new(0.0).is_ok());
        assert!(Delta::new(1e-9).is_ok());
        assert!(Delta::new(1.0).is_err());
        assert!(Delta::new(-0.1).is_err());
        assert!(Delta::ZERO.is_pure());
        assert!(!Delta::new(1e-6).unwrap().is_pure());
    }

    #[test]
    fn guarantee_composition_adds() {
        let a = PrivacyGuarantee::pure(Epsilon::new(0.3).unwrap());
        let b = PrivacyGuarantee {
            epsilon: Epsilon::new(0.2).unwrap(),
            delta: Delta::new(1e-8).unwrap(),
        };
        let c = a.compose(b);
        assert!((c.epsilon.get() - 0.5).abs() < 1e-15);
        assert!((c.delta.get() - 1e-8).abs() < 1e-20);
    }

    #[test]
    fn accountant_tracks_and_rejects_overspend() {
        let total = Epsilon::new(1.0).unwrap();
        let mut acc = BudgetAccountant::new(total);
        acc.charge("stage-1", total.scale(0.5)).unwrap();
        acc.charge("stage-2", total.scale(0.5)).unwrap();
        assert!(acc.remaining() < 1e-9);
        let err = acc.charge("stage-3", total.scale(0.5)).unwrap_err();
        assert!(matches!(err, UpdpError::BudgetExceeded { .. }));
        assert_eq!(acc.log().len(), 2);
    }

    #[test]
    fn accountant_tolerates_float_rounding() {
        let total = Epsilon::new(1.0).unwrap();
        let mut acc = BudgetAccountant::new(total);
        // Ten shares of 0.1 may not sum to exactly 1.0 in floating point.
        for _ in 0..10 {
            acc.charge("share", total.scale(0.1)).unwrap();
        }
        assert!(acc.remaining() < 1e-9);
    }
}
