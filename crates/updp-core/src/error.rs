//! Error taxonomy shared by every crate in the workspace.
//!
//! All fallible public APIs return [`Result`]. Errors distinguish between
//! *caller mistakes* (invalid parameters, non-finite inputs), *data
//! problems* (empty or too-small datasets — the paper's theorems all carry
//! a minimum-`n` requirement), and *mechanism-level failures* (e.g. the
//! propose-test-release baseline declining to answer).

use std::fmt;

/// Errors produced by the universal-private-estimator stack.
#[derive(Debug, Clone, PartialEq)]
pub enum UpdpError {
    /// A dataset was empty where at least one element is required.
    EmptyDataset,
    /// The dataset is smaller than the minimum size required for the
    /// requested mechanism to offer its utility guarantee.
    InsufficientData {
        /// Minimum number of records required.
        required: usize,
        /// Number of records actually supplied.
        actual: usize,
        /// Which guarantee the requirement comes from.
        context: &'static str,
    },
    /// A caller-supplied parameter was out of range (e.g. `ε ≤ 0`,
    /// `β ∉ (0, 1)`, an empty domain, a negative bucket size).
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// An input value was NaN or infinite. DP mechanisms over the reals
    /// require finite inputs; NaN would silently poison sorting and sums.
    NonFiniteInput {
        /// Where the non-finite value was observed.
        context: &'static str,
    },
    /// Discretization overflowed the `i64` bucket domain. This can only
    /// happen with astronomically small bucket sizes relative to the data
    /// magnitude; see `updp-empirical::discretize`.
    DomainOverflow {
        /// The real value whose bucket index did not fit in `i64`.
        value: f64,
        /// The bucket size in effect.
        bucket: f64,
    },
    /// A mechanism declined to produce an answer. Pure-DP mechanisms in
    /// this crate never fail this way; it exists for (ε,δ)-DP baselines
    /// such as propose-test-release ([DL09]) whose privacy argument
    /// *requires* a refusal branch.
    MechanismRefused {
        /// Which mechanism refused.
        mechanism: &'static str,
        /// Why it refused.
        reason: String,
    },
    /// A privacy-budget accountant was asked for more budget than remains.
    BudgetExceeded {
        /// ε requested by the caller.
        requested: f64,
        /// ε still available.
        available: f64,
    },
}

impl fmt::Display for UpdpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UpdpError::EmptyDataset => write!(f, "dataset is empty"),
            UpdpError::InsufficientData {
                required,
                actual,
                context,
            } => write!(
                f,
                "dataset has {actual} records but {context} requires at least {required}"
            ),
            UpdpError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            UpdpError::NonFiniteInput { context } => {
                write!(f, "non-finite (NaN or infinite) input in {context}")
            }
            UpdpError::DomainOverflow { value, bucket } => write!(
                f,
                "value {value} with bucket size {bucket} overflows the i64 bucket domain"
            ),
            UpdpError::MechanismRefused { mechanism, reason } => {
                write!(f, "mechanism {mechanism} refused to answer: {reason}")
            }
            UpdpError::BudgetExceeded {
                requested,
                available,
            } => write!(
                f,
                "privacy budget exceeded: requested ε={requested}, available ε={available}"
            ),
        }
    }
}

impl std::error::Error for UpdpError {}

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, UpdpError>;

/// Validates that every element of `data` is finite, returning
/// [`UpdpError::NonFiniteInput`] otherwise.
pub fn ensure_finite(data: &[f64], context: &'static str) -> Result<()> {
    if data.iter().all(|x| x.is_finite()) {
        Ok(())
    } else {
        Err(UpdpError::NonFiniteInput { context })
    }
}

/// Validates that `data` is non-empty.
pub fn ensure_nonempty<T>(data: &[T]) -> Result<()> {
    if data.is_empty() {
        Err(UpdpError::EmptyDataset)
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = UpdpError::InsufficientData {
            required: 100,
            actual: 3,
            context: "Theorem 3.3",
        };
        let msg = e.to_string();
        assert!(msg.contains("100"));
        assert!(msg.contains('3'));
        assert!(msg.contains("Theorem 3.3"));
    }

    #[test]
    fn ensure_finite_accepts_finite() {
        assert!(ensure_finite(&[0.0, -1.5, 1e300], "test").is_ok());
    }

    #[test]
    fn ensure_finite_rejects_nan() {
        let err = ensure_finite(&[0.0, f64::NAN], "ctx").unwrap_err();
        assert!(matches!(err, UpdpError::NonFiniteInput { context: "ctx" }));
    }

    #[test]
    fn ensure_finite_rejects_infinity() {
        assert!(ensure_finite(&[f64::INFINITY], "ctx").is_err());
        assert!(ensure_finite(&[f64::NEG_INFINITY], "ctx").is_err());
    }

    #[test]
    fn ensure_nonempty_works() {
        assert!(ensure_nonempty::<f64>(&[]).is_err());
        assert!(ensure_nonempty(&[1.0]).is_ok());
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(UpdpError::EmptyDataset, UpdpError::EmptyDataset);
        assert_ne!(
            UpdpError::EmptyDataset,
            UpdpError::NonFiniteInput { context: "x" }
        );
    }
}
