//! The snapping mechanism: a floating-point-safe Laplace release.
//!
//! The textbook Laplace mechanism on `f64` leaks through the structure of
//! floating-point numbers (Mironov, CCS 2012): the set of representable
//! outputs differs between neighboring inputs, so an adversary observing
//! exact bit patterns can distinguish them. Mironov's *snapping
//! mechanism* repairs this by (1) computing the noisy value with the
//! log-of-uniform construction, (2) clamping to a public bound `±B`, and
//! (3) *snapping* to the coarse grid `Λ·Z`, where `Λ` is the smallest
//! power of two ≥ the noise scale. The snapped release satisfies
//! `(ε′, 0)`-DP with `ε′ = ε·(1 + 12·B·η) + 2^{−46}·ε`-style inflation;
//! for the `B`, scale combinations used here the inflation is below 1%
//! and is absorbed by [`snapping_epsilon_inflation`].
//!
//! This module exists so deployments that release raw outputs to
//! adversarial consumers have a hardened alternative to
//! [`crate::laplace::laplace_mechanism`]; the paper-facing estimators
//! keep the textbook sampler (DESIGN.md records the scope decision).

use crate::error::{Result, UpdpError};
use crate::laplace::sample_laplace;
use crate::privacy::Epsilon;
use rand::Rng;

/// Smallest power of two ≥ `x` (for `x > 0`).
fn next_power_of_two(x: f64) -> f64 {
    debug_assert!(x > 0.0 && x.is_finite());
    let mut p = 2f64.powi(x.log2().floor() as i32);
    while p < x {
        p *= 2.0;
    }
    p
}

/// Rounds `x` to the nearest multiple of `lambda` (ties to even via the
/// underlying `f64` rounding).
fn snap_to_grid(x: f64, lambda: f64) -> f64 {
    (x / lambda).round() * lambda
}

/// A snapped-Laplace release of `value` with the given `sensitivity`,
/// clamped to `[−bound, bound]` and snapped to the power-of-two grid.
///
/// Returns the released value. The effective privacy parameter is
/// `epsilon · (1 + inflation)` with `inflation =`
/// [`snapping_epsilon_inflation`]; callers requiring exactly ε should
/// pre-scale.
pub fn snapped_laplace_mechanism<R: Rng + ?Sized>(
    rng: &mut R,
    value: f64,
    sensitivity: f64,
    epsilon: Epsilon,
    bound: f64,
) -> Result<f64> {
    if !(sensitivity.is_finite() && sensitivity > 0.0) {
        return Err(UpdpError::InvalidParameter {
            name: "sensitivity",
            reason: format!("must be finite and positive, got {sensitivity}"),
        });
    }
    if !(bound.is_finite() && bound > 0.0) {
        return Err(UpdpError::InvalidParameter {
            name: "bound",
            reason: format!("must be finite and positive, got {bound}"),
        });
    }
    if !value.is_finite() {
        return Err(UpdpError::NonFiniteInput {
            context: "snapped_laplace_mechanism value",
        });
    }
    let scale = sensitivity / epsilon.get();
    // Clamp the *input* first (part of the published construction: the
    // clamp must not depend on the noisy value's magnitude).
    let clamped = value.clamp(-bound, bound);
    let noisy = clamped + sample_laplace(rng, scale);
    let lambda = next_power_of_two(scale);
    Ok(snap_to_grid(noisy.clamp(-bound, bound), lambda))
}

/// The snapping grid width `Λ`: the smallest power of two ≥ the noise
/// scale `sensitivity/ε`. Every [`snapped_laplace_mechanism`] release
/// is an exact multiple of `Λ`; serving layers expose it so clients
/// (and tests) can verify grid membership.
pub fn snapping_lambda(scale: f64) -> f64 {
    next_power_of_two(scale)
}

/// Upper bound on the multiplicative ε inflation of the snapping
/// mechanism for a given noise scale and clamp bound — the
/// `(1 + 12·B·η)` factor of Mironov's Theorem 1 with machine epsilon
/// `η = 2⁻⁵²`, expressed relative to ε.
pub fn snapping_epsilon_inflation(scale: f64, bound: f64) -> f64 {
    let eta = 2f64.powi(-52);
    12.0 * (bound / scale).max(1.0) * eta + 2f64.powi(-46)
}

#[cfg(test)]
// Exact `==` on f64 is deliberate in tests: they pin bit-identical
// outputs (DESIGN.md §5), so an epsilon tolerance would weaken them.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::rng::seeded;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn next_power_of_two_values() {
        assert_eq!(next_power_of_two(1.0), 1.0);
        assert_eq!(next_power_of_two(1.5), 2.0);
        assert_eq!(next_power_of_two(4.0), 4.0);
        assert_eq!(next_power_of_two(0.3), 0.5);
        assert_eq!(next_power_of_two(1e-3), 2f64.powi(-9));
    }

    #[test]
    fn outputs_lie_on_the_grid_and_inside_bounds() {
        let mut rng = seeded(1);
        let e = eps(0.5);
        let scale = 1.0 / 0.5;
        let lambda = snapping_lambda(scale);
        assert_eq!(lambda, next_power_of_two(scale));
        for _ in 0..2_000 {
            let y = snapped_laplace_mechanism(&mut rng, 3.7, 1.0, e, 100.0).unwrap();
            assert!((-100.0..=100.0).contains(&y));
            let k = y / lambda;
            assert!(
                (k - k.round()).abs() < 1e-9,
                "output {y} not on grid Λ = {lambda}"
            );
        }
    }

    #[test]
    fn distribution_still_centers_on_value() {
        let mut rng = seeded(2);
        let e = eps(1.0);
        let n = 50_000;
        let mean: f64 = (0..n)
            .map(|_| snapped_laplace_mechanism(&mut rng, 25.0, 1.0, e, 1_000.0).unwrap())
            .sum::<f64>()
            / n as f64;
        // Grid Λ = 1 adds ≤ Λ/2 of bias at worst.
        assert!((mean - 25.0).abs() < 0.5, "mean {mean}");
    }

    #[test]
    fn clamps_out_of_range_values() {
        let mut rng = seeded(3);
        let y = snapped_laplace_mechanism(&mut rng, 1e9, 1.0, eps(1.0), 50.0).unwrap();
        assert!((-50.0..=50.0).contains(&y));
    }

    #[test]
    fn rejects_bad_parameters() {
        let mut rng = seeded(4);
        let e = eps(1.0);
        assert!(snapped_laplace_mechanism(&mut rng, 0.0, 0.0, e, 1.0).is_err());
        assert!(snapped_laplace_mechanism(&mut rng, 0.0, 1.0, e, 0.0).is_err());
        assert!(snapped_laplace_mechanism(&mut rng, f64::NAN, 1.0, e, 1.0).is_err());
    }

    #[test]
    fn inflation_is_tiny_for_sane_parameters() {
        // B = 1e6, scale = 0.01: inflation still ≪ 1%.
        let infl = snapping_epsilon_inflation(0.01, 1e6);
        assert!(infl < 0.01, "inflation {infl}");
    }
}
