//! The Sparse Vector Technique (Algorithm 1; Lemmas 2.5 and 2.6).
//!
//! SVT consumes a (possibly infinite) sequence of sensitivity-1 queries
//! `Q₁(D), Q₂(D), …` and a threshold `T`, and privately returns the index
//! of the first query whose (noisy) answer exceeds the (noisy) threshold:
//!
//! ```text
//! T̃ ← T + Lap(2/ε)
//! for i = 1, 2, …:
//!     Q̃ᵢ ← Qᵢ(D) + Lap(4/ε)
//!     if Q̃ᵢ > T̃: return i
//! ```
//!
//! The whole loop satisfies ε-DP regardless of how many queries are
//! examined. Lemma 2.5 guarantees SVT does not stop while queries are well
//! below `T`; Lemma 2.6 (proved in the paper) guarantees it *does* stop by
//! the time a query is well above `T`, and that the returned query is
//! itself close to `T` — the property the radius estimator relies on.
//!
//! # Termination
//!
//! The paper feeds SVT genuinely infinite streams (`Count(D, 2^j)` for all
//! j). For the counting queries used in this repository the stream becomes
//! constant once the doubling radius covers the data, after which SVT halts
//! with probability ≥ some constant per step, so it terminates almost
//! surely. To make termination unconditional we impose a *fixed,
//! data-independent* iteration cap (default [`DEFAULT_SVT_CAP`], chosen to
//! cover the entire dynamic range of `f64` exponents with huge margin).
//! Because the cap is a constant, truncating the output at it is
//! post-processing of an ε-DP mechanism and preserves ε-DP exactly.

use crate::laplace::sample_laplace;
use crate::privacy::Epsilon;
use rand::Rng;

/// Default iteration cap for SVT runs over infinite streams.
///
/// Radius searches double a power of two each step, so covering
/// `2^±1100` — far beyond `f64`'s `2^±1074` subnormal range — means the
/// underlying counting query is guaranteed to have saturated long before
/// the cap binds. 4096 leaves two orders of magnitude of slack for the
/// noisy threshold to be crossed after saturation.
pub const DEFAULT_SVT_CAP: usize = 4096;

/// Result of one SVT run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SvtOutcome {
    /// 1-based index of the first query reported above threshold,
    /// matching the paper's indexing.
    pub index: usize,
    /// True if the iteration cap was reached without any query reported
    /// above threshold (`index` then equals the cap). With the counting
    /// streams used here this is an astronomically unlikely noise event.
    pub capped: bool,
}

/// Runs SVT over a lazily-evaluated query stream.
///
/// `queries` is called with the 0-based query position and must return
/// `Qᵢ₊₁(D)`; each query must have global sensitivity 1. The stream is
/// conceptually infinite; evaluation stops at the reported index or the
/// `cap`. Satisfies ε-DP.
pub fn sparse_vector<R, F>(
    rng: &mut R,
    threshold: f64,
    epsilon: Epsilon,
    mut queries: F,
    cap: usize,
) -> SvtOutcome
where
    R: Rng + ?Sized,
    F: FnMut(usize) -> f64,
{
    assert!(cap >= 1, "SVT cap must be at least 1");
    let eps = epsilon.get();
    let noisy_threshold = threshold + sample_laplace(rng, 2.0 / eps);
    for i in 0..cap {
        let noisy_query = queries(i) + sample_laplace(rng, 4.0 / eps);
        if noisy_query > noisy_threshold {
            return SvtOutcome {
                index: i + 1,
                capped: false,
            };
        }
    }
    SvtOutcome {
        index: cap,
        capped: true,
    }
}

/// Convenience wrapper: runs SVT over a finite slice of query answers.
///
/// Returns `None` if no query in the slice was reported above threshold.
/// Useful in tests and for finite query workloads.
pub fn sparse_vector_slice<R: Rng + ?Sized>(
    rng: &mut R,
    threshold: f64,
    epsilon: Epsilon,
    answers: &[f64],
) -> Option<usize> {
    if answers.is_empty() {
        return None;
    }
    let outcome = sparse_vector(rng, threshold, epsilon, |i| answers[i], answers.len());
    if outcome.capped {
        None
    } else {
        Some(outcome.index)
    }
}

/// The threshold margin from Lemma 2.5: if the first `k₁` queries satisfy
/// `Qᵢ(D) ≤ T − (8/ε)·log(2k₁/β)`, SVT passes them all w.p. ≥ 1 − β.
pub fn lemma25_margin(epsilon: Epsilon, k1: usize, beta: f64) -> f64 {
    8.0 / epsilon.get() * (2.0 * k1 as f64 / beta).ln().max(1.0)
}

/// The stopping margin from Lemma 2.6: if some `Q_{k₂}(D) ≥ T +
/// (6/ε)·log(2/β)`, SVT stops by `k₂` w.p. ≥ 1 − β, and the returned query
/// satisfies `Qᵢ(D) ≥ T − (6/ε)·log(2k₂/β)`.
pub fn lemma26_margin(epsilon: Epsilon, beta: f64) -> f64 {
    6.0 / epsilon.get() * (2.0 / beta).ln().max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn stops_at_obvious_jump() {
        // Queries far below threshold, then far above: SVT should stop at
        // the jump almost every time.
        let mut hits = 0;
        for seed in 0..200 {
            let mut rng = seeded(seed);
            let answers = [0.0, 0.0, 0.0, 0.0, 1000.0, 1000.0];
            let idx = sparse_vector_slice(&mut rng, 500.0, eps(1.0), &answers).unwrap();
            if idx == 5 {
                hits += 1;
            }
        }
        assert!(hits >= 195, "stopped at the jump only {hits}/200 times");
    }

    #[test]
    fn rarely_stops_early_below_threshold() {
        // Lemma 2.5: queries at T − margin should essentially never fire.
        let e = eps(1.0);
        let k1 = 50;
        let beta = 0.05;
        let margin = lemma25_margin(e, k1, beta);
        let mut early = 0;
        let trials = 400;
        for seed in 0..trials {
            let mut rng = seeded(1000 + seed);
            let answers = vec![100.0 - margin; k1];
            if sparse_vector_slice(&mut rng, 100.0, e, &answers).is_some() {
                early += 1;
            }
        }
        let rate = early as f64 / trials as f64;
        assert!(rate <= beta + 0.05, "early-stop rate {rate} > β + slack");
    }

    #[test]
    fn stops_by_k2_when_far_above() {
        // Lemma 2.6: a query at T + margin forces a stop by that index.
        let e = eps(0.5);
        let beta = 0.05;
        let margin = lemma26_margin(e, beta);
        let mut late = 0;
        let trials = 400;
        for seed in 0..trials {
            let mut rng = seeded(5000 + seed);
            let mut answers = vec![-1e9; 10];
            answers.push(50.0 + margin); // k2 = 11
            answers.extend(vec![50.0 + margin; 5]);
            let idx = sparse_vector_slice(&mut rng, 50.0, e, &answers).unwrap();
            if idx > 11 {
                late += 1;
            }
        }
        let rate = late as f64 / trials as f64;
        assert!(rate <= beta + 0.05, "late-stop rate {rate}");
    }

    #[test]
    fn infinite_stream_is_lazy() {
        // The closure would panic past index 10; SVT must stop before
        // evaluating those because query 10 is enormous.
        let mut rng = seeded(9);
        let outcome = sparse_vector(
            &mut rng,
            0.0,
            eps(1.0),
            |i| {
                assert!(i <= 10, "evaluated query {i} past the guaranteed stop");
                if i == 10 {
                    1e12
                } else {
                    -1e12
                }
            },
            DEFAULT_SVT_CAP,
        );
        assert_eq!(outcome.index, 11);
        assert!(!outcome.capped);
    }

    #[test]
    fn cap_is_respected() {
        let mut rng = seeded(10);
        let outcome = sparse_vector(&mut rng, 0.0, eps(1.0), |_| -1e12, 17);
        assert!(outcome.capped);
        assert_eq!(outcome.index, 17);
    }

    #[test]
    fn empty_slice_returns_none() {
        let mut rng = seeded(11);
        assert_eq!(sparse_vector_slice(&mut rng, 0.0, eps(1.0), &[]), None);
    }
}
