//! The exponential mechanism, in plain and weighted-segment forms.
//!
//! Given candidates `y ∈ Y` with utility scores `u(D, y)` of sensitivity
//! `Δu`, the exponential mechanism samples `y` with probability
//! `∝ exp(ε·u(D,y) / (2Δu))` and satisfies ε-DP. The inverse sensitivity
//! mechanism (Section 2.5) instantiates it with `u = −len(Q, D, y)`.
//!
//! Sampling is done with the Gumbel-max trick in log space, which is exact
//! (same distribution as normalized weights) and immune to `exp` overflow
//! or underflow even when scores span thousands of nats — which happens
//! routinely for quantile domains of width `2^40`.

use crate::error::{ensure_nonempty, Result, UpdpError};
use crate::privacy::Epsilon;
use rand::Rng;

/// Draws one standard Gumbel variate: `−ln(−ln U)` for `U ~ Uniform(0,1)`.
#[inline]
pub fn sample_gumbel<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.gen();
        if u > 0.0 {
            let e = -u.ln();
            if e > 0.0 {
                return -e.ln();
            }
        }
    }
}

/// The exponential mechanism over an explicit candidate list.
///
/// Samples index `i` with probability `∝ exp(ε·utilities[i] / (2·Δu))`.
/// Returns the chosen index. Errors on empty input, non-positive
/// sensitivity, or non-finite utilities (use `f64::NEG_INFINITY`-free
/// scores; impossible candidates should simply be omitted).
pub fn exponential_mechanism<R: Rng + ?Sized>(
    rng: &mut R,
    utilities: &[f64],
    sensitivity: f64,
    epsilon: Epsilon,
) -> Result<usize> {
    ensure_nonempty(utilities)?;
    if !(sensitivity.is_finite() && sensitivity > 0.0) {
        return Err(UpdpError::InvalidParameter {
            name: "sensitivity",
            reason: format!("must be finite and positive, got {sensitivity}"),
        });
    }
    if utilities.iter().any(|u| !u.is_finite()) {
        return Err(UpdpError::NonFiniteInput {
            context: "exponential mechanism utilities",
        });
    }
    let factor = epsilon.get() / (2.0 * sensitivity);
    let mut best = 0;
    let mut best_score = f64::NEG_INFINITY;
    for (i, &u) in utilities.iter().enumerate() {
        let score = factor * u + sample_gumbel(rng);
        if score > best_score {
            best_score = score;
            best = i;
        }
    }
    Ok(best)
}

/// A segment of candidates sharing one log-weight.
///
/// The inverse sensitivity mechanism over an interval domain partitions
/// the domain into `O(n)` maximal runs of equal score; each run is a
/// `WeightedSegment` with `count` = number of candidates in the run and
/// `log_weight` = per-candidate log weight (`−ε·len/2` for INV).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightedSegment {
    /// Number of equally-weighted candidates in this segment (> 0).
    pub count: u64,
    /// Natural-log weight of *each* candidate in the segment.
    pub log_weight: f64,
}

/// Samples a segment index from `segments` where segment `j` has total
/// weight `count_j · exp(log_weight_j)`.
///
/// Exact sampling via Gumbel-max over `ln(count) + log_weight`. Segments
/// with `count == 0` are skipped. Errors if every segment is empty.
pub fn sample_weighted_segment<R: Rng + ?Sized>(
    rng: &mut R,
    segments: &[WeightedSegment],
) -> Result<usize> {
    let mut best: Option<usize> = None;
    let mut best_score = f64::NEG_INFINITY;
    for (j, seg) in segments.iter().enumerate() {
        if seg.count == 0 {
            continue;
        }
        // updp-lint: allow(R5, reason="-inf is the exact empty-weight sentinel in log space; equality against it is a tag check, not an approximate comparison")
        debug_assert!(seg.log_weight.is_finite() || seg.log_weight == f64::NEG_INFINITY);
        // updp-lint: allow(R5, reason="-inf is the exact empty-weight sentinel in log space; equality against it is a tag check, not an approximate comparison")
        if seg.log_weight == f64::NEG_INFINITY {
            continue;
        }
        let score = (seg.count as f64).ln() + seg.log_weight + sample_gumbel(rng);
        if score > best_score {
            best_score = score;
            best = Some(j);
        }
    }
    best.ok_or(UpdpError::EmptyDataset)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn prefers_high_utility() {
        let mut rng = seeded(1);
        let utilities = [0.0, 0.0, 40.0, 0.0];
        let mut counts = [0usize; 4];
        for _ in 0..500 {
            let i = exponential_mechanism(&mut rng, &utilities, 1.0, eps(1.0)).unwrap();
            counts[i] += 1;
        }
        assert!(counts[2] > 480, "counts = {counts:?}");
    }

    #[test]
    fn frequencies_match_exponential_weights() {
        let mut rng = seeded(2);
        // Two candidates with utility gap g: ratio should be e^{εg/2}.
        let utilities = [0.0, 2.0];
        let e = eps(1.0);
        let trials = 200_000;
        let mut hit1 = 0;
        for _ in 0..trials {
            if exponential_mechanism(&mut rng, &utilities, 1.0, e).unwrap() == 1 {
                hit1 += 1;
            }
        }
        let p1 = hit1 as f64 / trials as f64;
        let expected = (1.0f64).exp() / (1.0 + (1.0f64).exp()); // e^{ε·2/2} vs e^0
        assert!(
            (p1 - expected).abs() < 0.01,
            "p1 = {p1}, expected {expected}"
        );
    }

    #[test]
    fn survives_huge_score_ranges() {
        let mut rng = seeded(3);
        // Scores spanning thousands of nats would overflow a naive exp.
        let utilities: Vec<f64> = (0..100).map(|i| -(i as f64) * 100.0).collect();
        let i = exponential_mechanism(&mut rng, &utilities, 1.0, eps(1.0)).unwrap();
        assert_eq!(i, 0);
    }

    #[test]
    fn rejects_bad_inputs() {
        let mut rng = seeded(4);
        assert!(exponential_mechanism(&mut rng, &[], 1.0, eps(1.0)).is_err());
        assert!(exponential_mechanism(&mut rng, &[0.0], 0.0, eps(1.0)).is_err());
        assert!(exponential_mechanism(&mut rng, &[f64::NAN], 1.0, eps(1.0)).is_err());
    }

    #[test]
    fn segment_sampling_respects_count_and_weight() {
        let mut rng = seeded(5);
        // Segment 0: 1000 candidates at weight e^0; segment 1: 1 candidate
        // at weight e^0. Segment 0 should win ~1000/1001 of the time.
        let segments = [
            WeightedSegment {
                count: 1000,
                log_weight: 0.0,
            },
            WeightedSegment {
                count: 1,
                log_weight: 0.0,
            },
        ];
        let trials = 50_000;
        let mut seg0 = 0;
        for _ in 0..trials {
            if sample_weighted_segment(&mut rng, &segments).unwrap() == 0 {
                seg0 += 1;
            }
        }
        let p = seg0 as f64 / trials as f64;
        assert!(p > 0.995, "p = {p}");
    }

    #[test]
    fn segment_sampling_balances_count_against_weight() {
        let mut rng = seeded(6);
        // count 100 at log-weight −ln(100) ≡ total weight 1, vs count 1 at
        // log-weight 0 ≡ total weight 1: should be ~50/50.
        let segments = [
            WeightedSegment {
                count: 100,
                log_weight: -(100.0f64).ln(),
            },
            WeightedSegment {
                count: 1,
                log_weight: 0.0,
            },
        ];
        let trials = 100_000;
        let mut seg0 = 0;
        for _ in 0..trials {
            if sample_weighted_segment(&mut rng, &segments).unwrap() == 0 {
                seg0 += 1;
            }
        }
        let p = seg0 as f64 / trials as f64;
        assert!((p - 0.5).abs() < 0.01, "p = {p}");
    }

    #[test]
    fn segment_sampling_skips_empty_segments() {
        let mut rng = seeded(7);
        let segments = [
            WeightedSegment {
                count: 0,
                log_weight: 100.0,
            },
            WeightedSegment {
                count: 1,
                log_weight: -50.0,
            },
        ];
        assert_eq!(sample_weighted_segment(&mut rng, &segments).unwrap(), 1);
    }

    #[test]
    fn segment_sampling_errors_on_all_empty() {
        let mut rng = seeded(8);
        let segments = [WeightedSegment {
            count: 0,
            log_weight: 0.0,
        }];
        assert!(sample_weighted_segment(&mut rng, &segments).is_err());
    }
}
