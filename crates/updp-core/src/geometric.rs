//! The two-sided geometric ("discrete Laplace") mechanism.
//!
//! For integer-valued queries the natural pure-DP noise is the two-sided
//! geometric distribution `Pr[K = k] ∝ exp(−|k|·ε/Δ)`. It is an optional
//! extension used by integer-domain counting experiments; the paper itself
//! uses continuous Laplace noise throughout, which we follow in the main
//! algorithms.

use crate::error::{Result, UpdpError};
use crate::privacy::Epsilon;
use rand::Rng;

/// Draws one two-sided geometric variate with parameter
/// `alpha = exp(−ε/Δ) ∈ (0, 1)`:
/// `Pr[K = k] = (1 − α)/(1 + α) · α^{|k|}`.
pub fn sample_two_sided_geometric<R: Rng + ?Sized>(rng: &mut R, alpha: f64) -> i64 {
    debug_assert!((0.0..1.0).contains(&alpha), "alpha must be in [0, 1)");
    // updp-lint: allow(R5, reason="alpha == 0.0 exactly (infinite epsilon) collapses the distribution to the point mass at 0; near-zero alpha must still sample")
    if alpha == 0.0 {
        return 0;
    }
    // Inverse-CDF on the folded magnitude, then a random sign for k ≠ 0.
    // Pr[|K| = 0] = (1−α)/(1+α); Pr[|K| = m] = 2α^m (1−α)/(1+α), m ≥ 1.
    let u: f64 = rng.gen();
    let p0 = (1.0 - alpha) / (1.0 + alpha);
    if u < p0 {
        return 0;
    }
    // Remaining mass is split evenly over ±m, m ≥ 1, each geometric.
    let v: f64 = rng.gen();
    let m = 1 + (v.ln() / alpha.ln()).floor().max(0.0) as i64;
    if rng.gen::<bool>() {
        m
    } else {
        -m
    }
}

/// ε-DP release of an integer query with global sensitivity `sensitivity`.
pub fn geometric_mechanism<R: Rng + ?Sized>(
    rng: &mut R,
    value: i64,
    sensitivity: u64,
    epsilon: Epsilon,
) -> Result<i64> {
    if sensitivity == 0 {
        return Err(UpdpError::InvalidParameter {
            name: "sensitivity",
            reason: "must be positive".into(),
        });
    }
    let alpha = (-epsilon.get() / sensitivity as f64).exp();
    Ok(value.saturating_add(sample_two_sided_geometric(rng, alpha)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;

    #[test]
    fn noise_is_symmetric_and_centered() {
        let mut rng = seeded(1);
        let alpha = (-0.5f64).exp();
        let n = 200_000;
        let sum: i64 = (0..n)
            .map(|_| sample_two_sided_geometric(&mut rng, alpha))
            .sum();
        let mean = sum as f64 / n as f64;
        assert!(mean.abs() < 0.05, "mean = {mean}");
    }

    #[test]
    fn zero_probability_matches_analytic() {
        let mut rng = seeded(2);
        let alpha: f64 = 0.5;
        let n = 100_000;
        let zeros = (0..n)
            .filter(|_| sample_two_sided_geometric(&mut rng, alpha) == 0)
            .count() as f64
            / n as f64;
        let p0 = (1.0 - alpha) / (1.0 + alpha);
        assert!((zeros - p0).abs() < 0.01, "zeros {zeros} vs p0 {p0}");
    }

    #[test]
    fn magnitude_distribution_is_geometric() {
        let mut rng = seeded(3);
        let alpha: f64 = 0.6;
        let n = 200_000;
        let mut count1 = 0usize;
        let mut count2 = 0usize;
        for _ in 0..n {
            match sample_two_sided_geometric(&mut rng, alpha).abs() {
                1 => count1 += 1,
                2 => count2 += 1,
                _ => {}
            }
        }
        // Pr[|K|=2]/Pr[|K|=1] = α.
        let ratio = count2 as f64 / count1 as f64;
        assert!((ratio - alpha).abs() < 0.03, "ratio {ratio} vs α {alpha}");
    }

    #[test]
    fn mechanism_rejects_zero_sensitivity() {
        let mut rng = seeded(4);
        let eps = Epsilon::new(1.0).unwrap();
        assert!(geometric_mechanism(&mut rng, 5, 0, eps).is_err());
    }

    #[test]
    fn mechanism_centers_on_value() {
        let mut rng = seeded(5);
        let eps = Epsilon::new(2.0).unwrap();
        let n = 50_000;
        let sum: i64 = (0..n)
            .map(|_| geometric_mechanism(&mut rng, 100, 1, eps).unwrap())
            .sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 100.0).abs() < 0.1, "mean = {mean}");
    }

    #[test]
    fn alpha_zero_gives_no_noise() {
        let mut rng = seeded(6);
        for _ in 0..100 {
            assert_eq!(sample_two_sided_geometric(&mut rng, 0.0), 0);
        }
    }
}
