//! Deterministic parallel trial execution (DESIGN.md §5).
//!
//! The experiment harness runs thousands of independent Monte-Carlo
//! trials, and §1.1's SplitMix64 child-seed scheme makes each trial a
//! self-contained RNG stream: trial `t` is a pure function of
//! `(master, t)`. That makes the workload *embarrassingly parallel with
//! bit-identical output* — the only requirement is that results are
//! collected by trial index, never by completion order.
//!
//! This module is a first-party replacement for `rayon`'s
//! `par_iter().map().collect()` (the build environment has no crates.io
//! access): a chunked work-stealing map over [`std::thread::scope`] with
//! an atomic work index. Properties the rest of the workspace relies on:
//!
//! * **Determinism** — [`par_map_indexed`] returns exactly
//!   `(0..n).map(f).collect()` for any thread count, because each index
//!   is evaluated exactly once and results are reassembled by index.
//!   Thread count, scheduling, and chunk boundaries are unobservable in
//!   the output (they only matter if `f` itself is impure).
//! * **`UPDP_THREADS` contract** — the environment variable overrides
//!   the worker count: `UPDP_THREADS=1` forces the serial fast path
//!   (zero threads spawned, zero synchronization), `UPDP_THREADS=k`
//!   uses `k` workers, unset/`0`/unparsable falls back to
//!   [`std::thread::available_parallelism`].
//! * **Panic propagation** — a panic in `f` propagates to the caller
//!   when the scope joins, exactly like the serial loop.
//!
//! Work is handed out in contiguous chunks of size ~`n/(4·workers)`
//! (capped at 64, floored at 1) claimed from a shared [`AtomicUsize`],
//! so fast workers steal leftover chunks from slow ones; per-trial cost
//! variance (e.g. SVT runs of data-dependent length) does not serialize
//! the run.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

/// Environment variable overriding the worker count. `0`, empty, or an
/// unparsable value mean "auto" (use [`std::thread::available_parallelism`]).
pub const THREADS_ENV: &str = "UPDP_THREADS";

/// Parses a raw `UPDP_THREADS` value. `None`/`0`/garbage → `None` (auto).
fn parse_threads(raw: Option<&str>) -> Option<usize> {
    match raw.map(str::trim) {
        Some(s) if !s.is_empty() => match s.parse::<usize>() {
            Ok(0) | Err(_) => None,
            Ok(k) => Some(k),
        },
        _ => None,
    }
}

/// The worker count in effect: the `UPDP_THREADS` override if set and
/// valid, otherwise the machine's available parallelism (≥ 1).
pub fn max_threads() -> usize {
    // updp-lint: allow(R1, reason="UPDP_THREADS only picks the worker count; §5 proves output is bit-identical at any thread count, so this env read cannot influence released values")
    let env = std::env::var(THREADS_ENV).ok();
    parse_threads(env.as_deref()).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    })
}

/// Maps `f` over `0..n` with the default worker count ([`max_threads`])
/// and returns the results **in index order** — bit-identical to
/// `(0..n).map(f).collect()` at any thread count.
pub fn par_map_indexed<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    par_map_indexed_threads(max_threads(), n, f)
}

/// [`par_map_indexed`] with an explicit worker count (1 ⇒ serial fast
/// path: no threads spawned, no synchronization).
pub fn par_map_indexed_threads<T, F>(threads: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let workers = threads.min(n);
    // ~4 chunks per worker balances steal granularity against
    // contention on the shared index; 64 caps the tail latency when a
    // single chunk lands on a slow trial.
    let chunk = (n / (workers * 4)).clamp(1, 64);
    let next = AtomicUsize::new(0);
    // Safe collection without unsafe slot writes (updp-core forbids
    // unsafe code): each worker accumulates (start, results) runs
    // locally and merges once under the lock at exit.
    let collected: Mutex<Vec<(usize, Vec<T>)>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut local: Vec<(usize, Vec<T>)> = Vec::new();
                loop {
                    let start = next.fetch_add(chunk, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    let end = (start + chunk).min(n);
                    local.push((start, (start..end).map(&f).collect()));
                }
                if !local.is_empty() {
                    // Poison recovery is sound here: poisoning means a
                    // sibling worker panicked mid-`extend`, the scope
                    // will re-panic at join so no caller ever observes
                    // the result, and merging into the Vec cannot make
                    // it more inconsistent than the panic already did.
                    collected
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .extend(local);
                }
            });
        }
    });
    let mut runs = collected
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner);
    runs.sort_unstable_by_key(|(start, _)| *start);
    let mut out = Vec::with_capacity(n);
    for (start, run) in runs {
        debug_assert_eq!(start, out.len(), "non-contiguous chunk reassembly");
        out.extend(run);
    }
    debug_assert_eq!(out.len(), n);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_threads_contract() {
        assert_eq!(parse_threads(None), None);
        assert_eq!(parse_threads(Some("")), None);
        assert_eq!(parse_threads(Some("0")), None);
        assert_eq!(parse_threads(Some("auto")), None);
        assert_eq!(parse_threads(Some("1")), Some(1));
        assert_eq!(parse_threads(Some(" 8 ")), Some(8));
    }

    #[test]
    fn max_threads_is_at_least_one() {
        assert!(max_threads() >= 1);
    }

    #[test]
    fn matches_serial_at_every_thread_count() {
        let serial: Vec<u64> = (0..257).map(|i| (i as u64).wrapping_mul(0x9E37)).collect();
        for threads in [1, 2, 3, 4, 8, 16] {
            let par = par_map_indexed_threads(threads, 257, |i| (i as u64).wrapping_mul(0x9E37));
            assert_eq!(par, serial, "threads = {threads}");
        }
    }

    #[test]
    fn handles_empty_and_single() {
        assert_eq!(par_map_indexed_threads(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_indexed_threads(4, 1, |i| i * 2), vec![0]);
    }

    #[test]
    fn uneven_chunk_boundaries_cover_everything() {
        // n chosen so n % chunk != 0 for the computed chunk size.
        for n in [2usize, 5, 63, 64, 65, 100, 1000] {
            let got = par_map_indexed_threads(3, n, |i| i);
            let want: Vec<usize> = (0..n).collect();
            assert_eq!(got, want, "n = {n}");
        }
    }

    #[test]
    fn per_index_rng_streams_are_thread_count_independent() {
        // The exact pattern the experiment harness uses: seed a child
        // RNG per index and draw from it.
        let draw = |i: usize| {
            use rand::Rng;
            let mut rng = crate::rng::seeded(crate::rng::child_seed(42, i as u64));
            rng.gen::<f64>()
        };
        let one = par_map_indexed_threads(1, 100, draw);
        let eight = par_map_indexed_threads(8, 100, draw);
        assert_eq!(one, eight);
    }

    #[test]
    #[should_panic]
    fn panics_propagate() {
        // `thread::scope` re-panics at join with its own payload
        // ("a scoped thread panicked"), so only panic *occurrence* is
        // asserted, not the message.
        let _ = par_map_indexed_threads(4, 32, |i| {
            if i == 7 {
                panic!("trial 7 exploded");
            }
            i
        });
    }
}
