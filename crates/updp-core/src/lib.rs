//! # updp-core — differential-privacy primitives
//!
//! The substrate layer of the *Universal Private Estimators* reproduction
//! (Dong & Yi, PODS 2023). This crate implements every DP building block
//! used by the paper:
//!
//! * [`privacy`] — validated ε/δ types, basic composition (Lemma 2.2),
//!   budget accounting;
//! * [`laplace`] — the Laplace mechanism (Lemma 2.3) and tail bounds;
//! * [`svt`] — the Sparse Vector Technique (Algorithm 1; Lemmas 2.5–2.6)
//!   over lazily-evaluated, possibly infinite query streams;
//! * [`exponential`] — the exponential mechanism with log-space
//!   Gumbel-max sampling and weighted-segment support;
//! * [`inverse_sensitivity`] — the inverse sensitivity mechanism and
//!   `FiniteDomainQuantile` (Algorithm 2; Lemmas 2.7–2.8);
//! * [`clipped_mean`] — the clipped mean estimator (Section 2.6);
//! * [`amplification`] — privacy amplification by subsampling
//!   (Theorem 2.4);
//! * [`geometric`] — the discrete-Laplace mechanism (extension);
//! * [`snapping`] — Mironov's floating-point-safe snapped Laplace
//!   release (hardening extension);
//! * [`rng`] — deterministic seeding utilities for reproducible
//!   experiments;
//! * [`json`] — the workspace's single first-party JSON writer/parser
//!   (report schemas, the serving wire format, ledger snapshots);
//! * [`parallel`] — deterministic parallel map for embarrassingly
//!   parallel trial workloads (chunked work-stealing over
//!   `std::thread::scope`, bit-identical to the serial loop at any
//!   thread count; DESIGN.md §5).
//!
//! Everything downstream (`updp-empirical`, `updp-statistical`,
//! `updp-baselines`) is built from these pieces; no other crate touches
//! raw noise.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod amplification;
pub mod clipped_mean;
pub mod error;
pub mod exponential;
pub mod geometric;
pub mod inverse_sensitivity;
pub mod json;
pub mod laplace;
pub mod parallel;
pub mod privacy;
pub mod rng;
pub mod snapping;
pub mod svt;

pub use error::{Result, UpdpError};
pub use privacy::{BudgetAccountant, Delta, Epsilon, PrivacyGuarantee};
