//! The inverse sensitivity mechanism and `FiniteDomainQuantile`
//! (Section 2.5, Algorithm 2, Lemmas 2.7–2.8).
//!
//! To privately release the τ-th order statistic of a dataset `D` over a
//! finite ordered domain `X = Z ∩ [lo, hi]`, INV instantiates the
//! exponential mechanism with the *path length* score
//! `len(Q, D, y) = min { d(D, D′) : Q(D′) = y }`, i.e. the number of
//! records that must change before `y` becomes the true τ-quantile:
//!
//! ```text
//! Pr[INV(Q, D) = y] ∝ exp(−ε · len(Q, D, y) / 2).
//! ```
//!
//! `len` only changes when `y` crosses an element of `D`, so the domain
//! partitions into `O(n)` maximal segments of constant score, and sampling
//! is `O(n)` after sorting (`O(n log n)` total) rather than `O(|X|)` —
//! which matters because the paper routinely uses domains of width `2^40+`.
//!
//! Algorithm 2 additionally clamps ranks that are too extreme (within
//! `(2/ε)·log(|X|/β)` of either end), because INV can behave arbitrarily
//! badly there; Lemma 2.8 then gives rank error `≤ (4/ε)·log(|X|/β)`.

use crate::error::{Result, UpdpError};
use crate::exponential::{sample_weighted_segment, WeightedSegment};
use crate::privacy::Epsilon;
use rand::Rng;

/// The rank-clamping margin of Algorithm 2: `(2/ε)·log(|X|/β)`.
///
/// `domain_size` is `|X| = hi − lo + 1`.
pub fn rank_clamp_margin(epsilon: Epsilon, domain_size: f64, beta: f64) -> f64 {
    (2.0 / epsilon.get()) * (domain_size / beta).ln().max(1.0)
}

/// The rank-error bound of Lemma 2.8: `(4/ε)·log(|X|/β)`, valid whenever
/// `n` exceeds the same quantity.
pub fn rank_error_bound(epsilon: Epsilon, domain_size: f64, beta: f64) -> f64 {
    (4.0 / epsilon.get()) * (domain_size / beta).ln().max(1.0)
}

/// Releases a privatized τ-th order statistic of `sorted` over the finite
/// integer domain `[lo, hi]` — Algorithm 2 (`FiniteDomainQuantile`).
///
/// * `sorted` must be sorted ascending; values are clipped into `[lo, hi]`
///   (Algorithm 6 clips before calling, so this is a harmless no-op there).
/// * `tau` is the 1-based target rank; it is clamped per Algorithm 2.
/// * Satisfies ε-DP.
///
/// With probability ≥ 1 − β the result is within rank error
/// [`rank_error_bound`] of the true `X_τ`, provided
/// `n > (4/ε)·log(|X|/β)` (Lemma 2.8). The mechanism still runs (and is
/// still private) below that size; only the utility guarantee lapses.
pub fn finite_domain_quantile<R: Rng + ?Sized>(
    rng: &mut R,
    sorted: &[i64],
    tau: usize,
    lo: i64,
    hi: i64,
    epsilon: Epsilon,
    beta: f64,
) -> Result<i64> {
    if sorted.is_empty() {
        return Err(UpdpError::EmptyDataset);
    }
    if lo > hi {
        return Err(UpdpError::InvalidParameter {
            name: "domain",
            reason: format!("lo ({lo}) must not exceed hi ({hi})"),
        });
    }
    if !(beta > 0.0 && beta < 1.0) {
        return Err(UpdpError::InvalidParameter {
            name: "beta",
            reason: format!("must be in (0, 1), got {beta}"),
        });
    }
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "input not sorted");

    if lo == hi {
        return Ok(lo);
    }

    let n = sorted.len();
    let domain_size = (hi as i128 - lo as i128 + 1) as f64;

    // Rank clamping (Algorithm 2 lines 1–7).
    let margin = rank_clamp_margin(epsilon, domain_size, beta);
    let tau_f = tau as f64;
    let tau_prime_f = if tau_f <= margin {
        margin
    } else if tau_f >= n as f64 - margin {
        n as f64 - margin
    } else {
        tau_f
    };
    let tau_prime = (tau_prime_f.round() as i64).clamp(1, n as i64) as usize;

    // Build the constant-score segments. Values are clipped into the
    // domain first; duplicates collapse into (value, multiplicity) runs.
    let mut segments: Vec<WeightedSegment> = Vec::with_capacity(2 * n + 1);
    let mut starts: Vec<i128> = Vec::with_capacity(2 * n + 1);

    let eps = epsilon.get();
    // len(y) given counts: c_le = #{x ≤ y}, c_lt = #{x < y}.
    let len_for = |c_le: usize, c_lt: usize| -> u64 {
        let need_low = tau_prime.saturating_sub(c_le);
        let need_high = (c_lt + 1).saturating_sub(tau_prime);
        (need_low + need_high) as u64
    };
    let push = |start: i128,
                width: i128,
                c_le: usize,
                c_lt: usize,
                segments: &mut Vec<WeightedSegment>,
                starts: &mut Vec<i128>| {
        if width <= 0 {
            return;
        }
        let len = len_for(c_le, c_lt);
        segments.push(WeightedSegment {
            count: width as u64,
            log_weight: -eps * len as f64 / 2.0,
        });
        starts.push(start);
    };

    let lo_w = lo as i128;
    let hi_w = hi as i128;
    let mut cursor = lo_w; // first domain point not yet covered
    let mut count_before = 0usize; // #{x < current unique value}
    let mut i = 0usize;
    while i < n {
        let v = (sorted[i].clamp(lo, hi)) as i128;
        let mut j = i;
        while j < n && (sorted[j].clamp(lo, hi)) as i128 == v {
            j += 1;
        }
        let mult = j - i;
        // Gap strictly below v (may be empty if duplicates clip together).
        if v > cursor {
            push(
                cursor,
                v - cursor,
                count_before,
                count_before,
                &mut segments,
                &mut starts,
            );
        }
        // Singleton at v.
        if v >= cursor {
            push(
                v,
                1,
                count_before + mult,
                count_before,
                &mut segments,
                &mut starts,
            );
            cursor = v + 1;
        }
        count_before += mult;
        i = j;
    }
    // Gap above the largest value.
    if hi_w >= cursor {
        push(cursor, hi_w - cursor + 1, n, n, &mut segments, &mut starts);
    }

    let chosen = sample_weighted_segment(rng, &segments)?;
    let seg = segments[chosen];
    let start = starts[chosen];
    let offset = if seg.count == 1 {
        0
    } else {
        rng.gen_range(0..seg.count)
    };
    Ok((start + offset as i128) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    /// True rank distance between the returned value and the target order
    /// statistic: number of data elements strictly between them.
    fn rank_error(sorted: &[i64], tau: usize, y: i64) -> usize {
        let xt = sorted[tau - 1];
        if y >= xt {
            sorted.iter().filter(|&&x| x > xt && x <= y).count()
        } else {
            sorted.iter().filter(|&&x| x >= y && x < xt).count()
        }
    }

    #[test]
    fn median_of_large_dataset_is_accurate() {
        let n = 2000i64;
        let sorted: Vec<i64> = (0..n).collect();
        let e = eps(1.0);
        let beta = 0.1;
        let mut failures = 0;
        let trials = 100;
        for seed in 0..trials {
            let mut rng = seeded(seed);
            let y =
                finite_domain_quantile(&mut rng, &sorted, 1000, -10_000, 10_000, e, beta).unwrap();
            let err = rank_error(&sorted, 1000, y);
            let bound = rank_error_bound(e, 20_001.0, beta);
            if err as f64 > bound {
                failures += 1;
            }
        }
        assert!(failures <= 15, "rank-error bound violated {failures}/100");
    }

    #[test]
    fn respects_domain_bounds() {
        let sorted = vec![5, 5, 5, 5, 5];
        for seed in 0..50 {
            let mut rng = seeded(seed);
            let y = finite_domain_quantile(&mut rng, &sorted, 3, 0, 10, eps(1.0), 0.1).unwrap();
            assert!((0..=10).contains(&y));
        }
    }

    #[test]
    fn point_mass_concentrates_on_value() {
        // 1000 copies of 42 in a wide domain: the median must be 42 nearly
        // always, because any other value needs ≥ 500 changes.
        let sorted = vec![42i64; 1000];
        let mut hits = 0;
        for seed in 0..100 {
            let mut rng = seeded(100 + seed);
            let y = finite_domain_quantile(
                &mut rng,
                &sorted,
                500,
                -1_000_000,
                1_000_000,
                eps(1.0),
                0.1,
            )
            .unwrap();
            if y == 42 {
                hits += 1;
            }
        }
        assert_eq!(hits, 100, "point mass leaked: {hits}/100");
    }

    #[test]
    fn handles_duplicates_correctly() {
        let sorted = vec![0, 0, 0, 10, 10, 10, 10, 20, 20, 20];
        let mut rng = seeded(7);
        for tau in 1..=10 {
            let y =
                finite_domain_quantile(&mut rng, &sorted, tau, -100, 100, eps(2.0), 0.1).unwrap();
            assert!((-100..=100).contains(&y));
        }
    }

    #[test]
    fn extreme_ranks_are_clamped_not_crazy() {
        // τ = 1 with a small margin would let INV return the domain edge;
        // clamping keeps it near the low order statistics.
        let sorted: Vec<i64> = (0..1000).collect();
        let mut rng = seeded(8);
        let y = finite_domain_quantile(&mut rng, &sorted, 1, -1_000_000, 1_000_000, eps(1.0), 0.1)
            .unwrap();
        // Clamped rank is ~29; allow the Lemma 2.8 slack around it.
        assert!(y > -500 && y < 500, "clamped extreme rank gave {y}");
    }

    #[test]
    fn degenerate_domain_returns_the_point() {
        let sorted = vec![3, 3, 3];
        let mut rng = seeded(9);
        assert_eq!(
            finite_domain_quantile(&mut rng, &sorted, 2, 7, 7, eps(1.0), 0.1).unwrap(),
            7
        );
    }

    #[test]
    fn rejects_invalid_inputs() {
        let mut rng = seeded(10);
        assert!(finite_domain_quantile(&mut rng, &[], 1, 0, 10, eps(1.0), 0.1).is_err());
        assert!(finite_domain_quantile(&mut rng, &[1], 1, 10, 0, eps(1.0), 0.1).is_err());
        assert!(finite_domain_quantile(&mut rng, &[1], 1, 0, 10, eps(1.0), 0.0).is_err());
        assert!(finite_domain_quantile(&mut rng, &[1], 1, 0, 10, eps(1.0), 1.0).is_err());
    }

    #[test]
    fn huge_domain_does_not_overflow() {
        let sorted = vec![0i64; 100];
        let mut rng = seeded(11);
        let y = finite_domain_quantile(
            &mut rng,
            &sorted,
            50,
            i64::MIN / 2,
            i64::MAX / 2,
            eps(1.0),
            0.1,
        )
        .unwrap();
        assert!((i64::MIN / 2..=i64::MAX / 2).contains(&y));
    }

    #[test]
    fn values_outside_domain_are_clipped() {
        // Data far outside [0, 10] behaves as if clipped to the edges.
        let sorted = vec![-1000, -1000, 5, 1000, 1000];
        let mut rng = seeded(12);
        for _ in 0..20 {
            let y = finite_domain_quantile(&mut rng, &sorted, 3, 0, 10, eps(5.0), 0.1).unwrap();
            assert!((0..=10).contains(&y));
        }
    }

    #[test]
    fn higher_epsilon_concentrates_sampling() {
        let sorted: Vec<i64> = (0..500).map(|i| i * 2).collect();
        let tau = 250;
        let spread = |e: f64, master: u64| -> f64 {
            let mut errs = Vec::new();
            for s in 0..60 {
                let mut rng = seeded(master + s);
                let y =
                    finite_domain_quantile(&mut rng, &sorted, tau, -10_000, 10_000, eps(e), 0.1)
                        .unwrap();
                errs.push(rank_error(&sorted, tau, y) as f64);
            }
            errs.iter().sum::<f64>() / errs.len() as f64
        };
        let loose = spread(0.1, 400);
        let tight = spread(5.0, 800);
        assert!(
            tight < loose,
            "mean rank error did not shrink with ε: {tight} !< {loose}"
        );
    }
}
