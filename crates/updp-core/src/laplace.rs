//! The Laplace distribution and the Laplace mechanism (Lemma 2.3).
//!
//! `M_Q(D) = Q(D) + Lap(GS_Q / ε)` is ε-DP for any query `Q` with global
//! sensitivity `GS_Q`. The Laplace distribution with scale `b` has density
//! `f(x) = exp(−|x|/b) / (2b)`, variance `2b²`, and the tail bound
//! `Pr[|Lap(b)| ≥ t] = exp(−t/b)` used throughout the paper's proofs.

use crate::error::{Result, UpdpError};
use crate::privacy::Epsilon;
use rand::Rng;

/// Draws one sample from the Laplace distribution with the given `scale`.
///
/// Uses the inverse-CDF method: for `U ~ Uniform(−1/2, 1/2)`,
/// `−b · sgn(U) · ln(1 − 2|U|) ~ Lap(b)`.
pub fn sample_laplace<R: Rng + ?Sized>(rng: &mut R, scale: f64) -> f64 {
    debug_assert!(scale > 0.0 && scale.is_finite(), "scale must be positive");
    // u ∈ [0, 1); shift to (−1/2, 1/2]; the endpoint u = 0.5 maps to
    // ln(1 − 2·0.5)... guard by resampling the measure-zero edge so the
    // log argument stays strictly positive.
    loop {
        let u: f64 = rng.gen::<f64>() - 0.5;
        let a = 1.0 - 2.0 * u.abs();
        if a > 0.0 {
            return -scale * u.signum() * a.ln();
        }
    }
}

/// The Laplace mechanism: releases `value + Lap(sensitivity / ε)`.
///
/// Returns an error if `sensitivity` is non-positive or non-finite.
pub fn laplace_mechanism<R: Rng + ?Sized>(
    rng: &mut R,
    value: f64,
    sensitivity: f64,
    epsilon: Epsilon,
) -> Result<f64> {
    if !(sensitivity.is_finite() && sensitivity > 0.0) {
        return Err(UpdpError::InvalidParameter {
            name: "sensitivity",
            reason: format!("must be finite and positive, got {sensitivity}"),
        });
    }
    Ok(value + sample_laplace(rng, sensitivity / epsilon.get()))
}

/// Two-sided tail probability `Pr[|Lap(scale)| ≥ t]` for `t ≥ 0`.
#[inline]
pub fn laplace_tail(scale: f64, t: f64) -> f64 {
    debug_assert!(t >= 0.0);
    (-t / scale).exp()
}

/// The magnitude `t` such that `Pr[|Lap(scale)| ≥ t] = beta`.
///
/// This is the `(b/1)·log(1/β)` bound used in the paper's utility proofs.
#[inline]
pub fn laplace_tail_bound(scale: f64, beta: f64) -> f64 {
    debug_assert!(beta > 0.0 && beta < 1.0);
    scale * (1.0 / beta).ln()
}

/// Density of `Lap(scale)` at `x`.
#[inline]
pub fn laplace_pdf(scale: f64, x: f64) -> f64 {
    (-x.abs() / scale).exp() / (2.0 * scale)
}

/// CDF of `Lap(scale)` at `x`.
#[inline]
pub fn laplace_cdf(scale: f64, x: f64) -> f64 {
    if x < 0.0 {
        0.5 * (x / scale).exp()
    } else {
        1.0 - 0.5 * (-x / scale).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;

    #[test]
    fn sample_mean_is_near_zero() {
        let mut rng = seeded(1);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| sample_laplace(&mut rng, 1.0)).sum::<f64>() / n as f64;
        // std error of the mean is sqrt(2/n) ≈ 0.0032
        assert!(mean.abs() < 0.02, "mean = {mean}");
    }

    #[test]
    fn sample_variance_matches_two_b_squared() {
        let mut rng = seeded(2);
        let b = 3.0;
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_laplace(&mut rng, b)).collect();
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let var: f64 = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        let expected = 2.0 * b * b;
        assert!(
            (var - expected).abs() / expected < 0.05,
            "var = {var}, expected {expected}"
        );
    }

    #[test]
    fn empirical_tail_matches_analytic() {
        let mut rng = seeded(3);
        let b = 2.0;
        let t = 4.0;
        let n = 100_000;
        let exceed = (0..n)
            .filter(|_| sample_laplace(&mut rng, b).abs() >= t)
            .count() as f64
            / n as f64;
        let analytic = laplace_tail(b, t);
        assert!(
            (exceed - analytic).abs() < 0.01,
            "empirical {exceed} vs analytic {analytic}"
        );
    }

    #[test]
    fn tail_bound_inverts_tail() {
        let b = 1.7;
        for beta in [0.5, 0.1, 0.01] {
            let t = laplace_tail_bound(b, beta);
            assert!((laplace_tail(b, t) - beta).abs() < 1e-12);
        }
    }

    #[test]
    fn cdf_is_monotone_and_bounded() {
        let b = 1.0;
        let mut prev = 0.0;
        for i in -50..=50 {
            let x = i as f64 / 5.0;
            let c = laplace_cdf(b, x);
            assert!((0.0..=1.0).contains(&c));
            assert!(c >= prev);
            prev = c;
        }
        assert!((laplace_cdf(b, 0.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn pdf_integrates_to_one() {
        let b = 0.8;
        let mut sum = 0.0;
        let h = 0.001;
        let mut x = -30.0;
        while x < 30.0 {
            sum += laplace_pdf(b, x) * h;
            x += h;
        }
        assert!((sum - 1.0).abs() < 1e-3, "integral = {sum}");
    }

    #[test]
    fn mechanism_rejects_bad_sensitivity() {
        let mut rng = seeded(4);
        let eps = Epsilon::new(1.0).unwrap();
        assert!(laplace_mechanism(&mut rng, 0.0, 0.0, eps).is_err());
        assert!(laplace_mechanism(&mut rng, 0.0, -1.0, eps).is_err());
        assert!(laplace_mechanism(&mut rng, 0.0, f64::NAN, eps).is_err());
    }

    #[test]
    fn mechanism_centers_on_value() {
        let mut rng = seeded(5);
        let eps = Epsilon::new(2.0).unwrap();
        let n = 100_000;
        let mean: f64 = (0..n)
            .map(|_| laplace_mechanism(&mut rng, 10.0, 1.0, eps).unwrap())
            .sum::<f64>()
            / n as f64;
        assert!((mean - 10.0).abs() < 0.02, "mean = {mean}");
    }
}
