//! Property pins for the histogram algebra: per-shard snapshots must
//! fold in any order — and any grouping — to the same totals, with
//! the empty snapshot as identity, and re-rendering equal state must
//! be byte-stable. These are the laws `/v1/metrics` relies on when it
//! merges shard histograms at scrape time.

use proptest::prelude::*;
use updp_obs::{Histogram, HistogramSnapshot};

fn snapshot_of(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.observe_micros(v);
    }
    h.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// merge is associative: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c).
    #[test]
    fn merge_is_associative(
        a in prop::collection::vec(0u64..2_000_000, 0..64),
        b in prop::collection::vec(0u64..2_000_000, 0..64),
        c in prop::collection::vec(0u64..2_000_000, 0..64),
    ) {
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));
        prop_assert_eq!(sa.merge(&sb).merge(&sc), sa.merge(&sb.merge(&sc)));
    }

    /// merge is commutative and the empty snapshot is its identity —
    /// merging in a zero shard (or the same shard twice into separate
    /// accumulators) never changes what a scrape reports.
    #[test]
    fn merge_commutes_with_empty_identity(
        a in prop::collection::vec(0u64..2_000_000, 0..64),
        b in prop::collection::vec(0u64..2_000_000, 0..64),
    ) {
        let (sa, sb) = (snapshot_of(&a), snapshot_of(&b));
        prop_assert_eq!(sa.merge(&sb), sb.merge(&sa));
        prop_assert_eq!(sa.merge(&HistogramSnapshot::empty()), sa);
    }

    /// Merging equals observing the concatenation: a histogram fed
    /// a ++ b snapshots identically to merge(snapshot(a), snapshot(b)).
    /// With `delta`, this is also the idempotence story for scrapes:
    /// (after - before) + before == after.
    #[test]
    fn merge_equals_concatenation_and_delta_inverts(
        a in prop::collection::vec(0u64..2_000_000, 0..64),
        b in prop::collection::vec(0u64..2_000_000, 0..64),
    ) {
        let combined: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        let (sa, sb) = (snapshot_of(&a), snapshot_of(&b));
        let merged = sa.merge(&sb);
        prop_assert_eq!(merged, snapshot_of(&combined));
        prop_assert_eq!(merged.delta(&sa), sb);
        prop_assert_eq!(merged.delta(&sa).merge(&sa), merged);
    }

    /// Quantiles are deterministic bucket upper edges that actually
    /// bound the nearest-rank observation.
    #[test]
    fn quantile_upper_bounds_nearest_rank(
        mut values in prop::collection::vec(0u64..2_000_000, 1..64),
        q in 0.0f64..1.0,
    ) {
        let snap = snapshot_of(&values);
        let edge = snap.quantile_micros(q).expect("non-empty");
        values.sort_unstable();
        let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
        prop_assert!(values[rank - 1] <= edge,
            "rank value {} above reported edge {edge}", values[rank - 1]);
    }
}
