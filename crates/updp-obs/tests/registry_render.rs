//! Golden test for the Prometheus text exposition renderer, a
//! JSON-render consistency check, and the concurrent-counter hammer.
//! The golden text is the determinism pin: equal metric state must
//! render byte-identically, families in registration order, children
//! in sorted label order.

use updp_core::json::JsonValue;
use updp_obs::{Kind, Registry, ScrapedFamily};

#[test]
fn prometheus_text_golden() {
    let mut registry = Registry::new();
    let requests = registry.counters(
        "updp_http_requests_total",
        "Requests dispatched, by endpoint.",
        &["endpoint"],
    );
    let active = registry.gauges("updp_reactor_connections_active", "Open connections.", &[]);
    let epsilon = registry.float_counters(
        "updp_engine_epsilon_charged_total",
        "Total epsilon charged.",
        &["estimator"],
    );
    let latency = registry.histograms(
        "updp_http_handle_seconds",
        "Handler wall time.",
        &["endpoint"],
    );

    requests.with_labels(&["/v1/query"]).add(3);
    requests.with_labels(&["/v1/healthz"]).inc();
    active.with_labels(&[]).set(2);
    epsilon.with_labels(&["mean"]).add(0.25);
    let h = latency.with_labels(&["/v1/query"]);
    h.observe_micros(1); // bucket 0 (le = 1 µs)
    h.observe_micros(3); // bucket 2 (le = 4 µs)
    h.observe_micros(3_000_000); // bucket 22 (le ≈ 4.19 s)

    let scraped = ScrapedFamily {
        name: "updp_ledger_epsilon_remaining".into(),
        help: "Remaining budget.".into(),
        kind: Kind::Gauge,
        label_keys: vec!["dataset".into()],
        samples: vec![(vec!["salaries".into()], 1.5)],
    };
    let text = registry.render_prometheus(&[scraped]);

    let mut expected = String::new();
    expected.push_str(concat!(
        "# HELP updp_http_requests_total Requests dispatched, by endpoint.\n",
        "# TYPE updp_http_requests_total counter\n",
        "updp_http_requests_total{endpoint=\"/v1/healthz\"} 1\n",
        "updp_http_requests_total{endpoint=\"/v1/query\"} 3\n",
        "# HELP updp_reactor_connections_active Open connections.\n",
        "# TYPE updp_reactor_connections_active gauge\n",
        "updp_reactor_connections_active 2\n",
        "# HELP updp_engine_epsilon_charged_total Total epsilon charged.\n",
        "# TYPE updp_engine_epsilon_charged_total counter\n",
        "updp_engine_epsilon_charged_total{estimator=\"mean\"} 0.25\n",
        "# HELP updp_http_handle_seconds Handler wall time.\n",
        "# TYPE updp_http_handle_seconds histogram\n",
    ));
    // 32 cumulative buckets: count 1 from bucket 0, 2 from bucket 2,
    // 3 from bucket 22 (3 s lands in (2.097152, 4.194304]).
    let edges_micros: Vec<Option<u64>> = (0..32)
        .map(|i| if i < 31 { Some(1u64 << i) } else { None })
        .collect();
    for (i, edge) in edges_micros.iter().enumerate() {
        let cumulative = if i < 2 {
            1
        } else if i < 22 {
            2
        } else {
            3
        };
        let le = match edge {
            Some(us) => {
                let whole = us / 1_000_000;
                let frac = us % 1_000_000;
                if frac == 0 {
                    format!("{whole}")
                } else {
                    format!("{whole}.{}", format!("{frac:06}").trim_end_matches('0'))
                }
            }
            None => "+Inf".into(),
        };
        expected.push_str(&format!(
            "updp_http_handle_seconds_bucket{{endpoint=\"/v1/query\",le=\"{le}\"}} {cumulative}\n"
        ));
    }
    expected.push_str(concat!(
        "updp_http_handle_seconds_sum{endpoint=\"/v1/query\"} 3.000004\n",
        "updp_http_handle_seconds_count{endpoint=\"/v1/query\"} 3\n",
        "# HELP updp_ledger_epsilon_remaining Remaining budget.\n",
        "# TYPE updp_ledger_epsilon_remaining gauge\n",
        "updp_ledger_epsilon_remaining{dataset=\"salaries\"} 1.5\n",
    ));
    assert_eq!(text, expected);

    // Equal state renders byte-identically — the scrape-stability pin.
    let scraped_again = ScrapedFamily {
        name: "updp_ledger_epsilon_remaining".into(),
        help: "Remaining budget.".into(),
        kind: Kind::Gauge,
        label_keys: vec!["dataset".into()],
        samples: vec![(vec!["salaries".into()], 1.5)],
    };
    assert_eq!(registry.render_prometheus(&[scraped_again]), expected);
}

#[test]
fn json_render_round_trips_and_matches_text_counts() {
    let mut registry = Registry::new();
    let requests = registry.counters("r_total", "requests", &["endpoint"]);
    requests.with_labels(&["/v1/query"]).add(7);
    let latency = registry.histograms("h_seconds", "latency", &[]);
    latency.with_labels(&[]).observe_micros(500);

    let json = registry.render_json(&[]);
    let parsed = JsonValue::parse(&json.to_compact()).expect("self-produced JSON parses");
    let families = parsed
        .as_object("metrics")
        .unwrap()
        .get_array("families")
        .unwrap();
    assert_eq!(families.len(), 2);

    let counter = families[0].as_object("family").unwrap();
    assert_eq!(counter.get_str("name").unwrap(), "r_total");
    assert_eq!(counter.get_str("kind").unwrap(), "counter");
    let samples = counter.get_array("samples").unwrap();
    let sample = samples[0].as_object("sample").unwrap();
    assert_eq!(sample.get_f64("value").unwrap() as u64, 7);

    let histogram = families[1].as_object("family").unwrap();
    let samples = histogram.get_array("samples").unwrap();
    let sample = samples[0].as_object("sample").unwrap();
    assert_eq!(sample.get_usize("count").unwrap(), 1);
    assert_eq!(sample.get_usize("sum_micros").unwrap(), 500);
    let buckets = sample.get_array("buckets").unwrap();
    assert_eq!(buckets.len(), 32);
    // 500 µs lands in the bucket with upper edge 512 µs (index 9).
    let hit = buckets[9].as_object("bucket").unwrap();
    assert_eq!(hit.get_usize("le_micros").unwrap(), 512);
    assert_eq!(hit.get_usize("count").unwrap(), 1);
    // The +Inf bucket carries a null edge.
    assert!(buckets[31]
        .as_object("bucket")
        .unwrap()
        .opt("le_micros")
        .is_none());
}

/// The striped-counter hammer: heavy concurrent increments from many
/// threads with interleaved reads lose no update.
#[test]
fn concurrent_counter_hammer_is_exact() {
    let mut registry = Registry::new();
    let family = registry.counters("hammer_total", "hammer", &["worker_kind"]);
    const THREADS: usize = 16;
    const PER_THREAD: u64 = 50_000;

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let family = &family;
            scope.spawn(move || {
                // Half the threads hit one child, half the other, and
                // every thread re-resolves its child mid-run to
                // exercise the get-or-create read path under load.
                let label = if t % 2 == 0 { "even" } else { "odd" };
                let child = family.with_labels(&[label]);
                for i in 0..PER_THREAD {
                    if i == PER_THREAD / 2 {
                        let again = family.with_labels(&[label]);
                        again.inc();
                    } else {
                        child.inc();
                    }
                }
            });
        }
        // Concurrent reads must not disturb the totals.
        scope.spawn(|| {
            for _ in 0..1_000 {
                let _ = family.with_labels(&["even"]).get();
            }
        });
    });

    let expected = (THREADS as u64 / 2) * PER_THREAD;
    assert_eq!(family.with_labels(&["even"]).get(), expected);
    assert_eq!(family.with_labels(&["odd"]).get(), expected);
}
