//! First-party observability for the workspace: metrics primitives, a
//! Prometheus/JSON registry, and bounded request-trace rings.
//!
//! # Design constraints
//!
//! The serving stack (DESIGN.md §10/§11) has a hard determinism
//! contract: released bytes must be a pure function of
//! `(snapshot version, estimator, params, seed)`. Observability must
//! therefore be strictly *observe-only* — nothing recorded here may
//! ever feed back into request handling. This crate enforces its half
//! of that contract structurally:
//!
//! - **Clock-free.** No `Instant`, no `SystemTime` anywhere in this
//!   crate. Durations and timestamps arrive as plain `u64`
//!   microseconds/milliseconds measured by the caller (transport code
//!   that already lives outside the R1 ambient-authority lint scope).
//!   `updp-obs` only aggregates values it is handed.
//! - **Non-throwing.** Recording never panics and never returns
//!   errors; a poisoned lock degrades to dropping the observation
//!   rather than taking the request path down.
//! - **Deterministic rendering.** Histogram bucket boundaries are
//!   fixed powers of two, label sets render in sorted (BTreeMap)
//!   order, and families render in registration order, so two
//!   snapshots of equal state produce byte-equal exposition text.
//!
//! The crate is dependency-free except for `updp_core::json`, the
//! workspace's single JSON codec, used for the `?format=json` render.

mod metrics;
mod registry;
mod trace;

pub use metrics::{
    bucket_index, upper_edge_micros, Counter, FloatCounter, Gauge, Histogram, HistogramSnapshot,
    BUCKETS,
};
pub use registry::{Family, Kind, Registry, ScrapedFamily};
pub use trace::{TraceEvent, TraceRing};
