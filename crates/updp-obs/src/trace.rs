//! Bounded ring buffers of recent request events — the flight
//! recorder behind `GET /v1/trace` and `--log-json`.

use std::collections::VecDeque;
use std::sync::Mutex;

use updp_core::json::JsonValue;

/// One recorded request, with the phase timings the transport
/// measured. All times are plain integers stamped by the caller; this
/// module never reads a clock.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Process-wide monotone request id.
    pub id: u64,
    /// Reactor shard that served the request.
    pub shard: usize,
    /// HTTP method.
    pub method: String,
    /// Request path (the route, query string included).
    pub path: String,
    /// Dataset the request touched, when the route names one.
    pub dataset: Option<String>,
    /// Response status code.
    pub status: u16,
    /// Time from first byte of the request to a complete parse, in
    /// microseconds (0 for requests that arrived fully within an
    /// earlier read, e.g. later requests of a pipelined burst).
    pub parse_micros: u64,
    /// Handler (route dispatch) wall time in microseconds.
    pub handle_micros: u64,
    /// Request body bytes.
    pub bytes_in: u64,
    /// Response body bytes.
    pub bytes_out: u64,
    /// Wall-clock timestamp (Unix milliseconds) stamped by the caller.
    pub unix_ms: u64,
}

impl TraceEvent {
    /// The event as a JSON object (used by `/v1/trace` and the
    /// `--log-json` stderr lines).
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("id", JsonValue::Number(self.id as f64)),
            ("shard", JsonValue::Number(self.shard as f64)),
            ("method", JsonValue::from(self.method.as_str())),
            ("path", JsonValue::from(self.path.as_str())),
            (
                "dataset",
                match &self.dataset {
                    Some(name) => JsonValue::from(name.as_str()),
                    None => JsonValue::Null,
                },
            ),
            ("status", JsonValue::Number(f64::from(self.status))),
            ("parse_us", JsonValue::Number(self.parse_micros as f64)),
            ("handle_us", JsonValue::Number(self.handle_micros as f64)),
            ("bytes_in", JsonValue::Number(self.bytes_in as f64)),
            ("bytes_out", JsonValue::Number(self.bytes_out as f64)),
            ("unix_ms", JsonValue::Number(self.unix_ms as f64)),
        ])
    }
}

/// A bounded FIFO of the most recent [`TraceEvent`]s; one per reactor
/// shard so recording never contends across workers.
pub struct TraceRing {
    cap: usize,
    events: Mutex<VecDeque<TraceEvent>>,
}

impl TraceRing {
    /// A ring holding at most `cap` events (`cap` ≥ 1).
    pub fn new(cap: usize) -> TraceRing {
        TraceRing {
            cap: cap.max(1),
            events: Mutex::new(VecDeque::with_capacity(cap.max(1))),
        }
    }

    /// Records `event`, evicting the oldest once full. A poisoned
    /// lock drops the event — tracing is observe-only and must not
    /// propagate failures into request handling.
    pub fn push(&self, event: TraceEvent) {
        if let Ok(mut events) = self.events.lock() {
            if events.len() == self.cap {
                events.pop_front();
            }
            events.push_back(event);
        }
    }

    /// The buffered events, oldest first (empty if poisoned).
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        match self.events.lock() {
            Ok(events) => events.iter().cloned().collect(),
            Err(_) => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(id: u64) -> TraceEvent {
        TraceEvent {
            id,
            shard: 0,
            method: "GET".into(),
            path: "/v1/healthz".into(),
            dataset: None,
            status: 200,
            parse_micros: 3,
            handle_micros: 7,
            bytes_in: 0,
            bytes_out: 11,
            unix_ms: 1_000,
        }
    }

    #[test]
    fn ring_is_bounded_and_fifo() {
        let ring = TraceRing::new(3);
        for id in 0..5 {
            ring.push(event(id));
        }
        let ids: Vec<u64> = ring.snapshot().iter().map(|e| e.id).collect();
        assert_eq!(ids, vec![2, 3, 4]);
    }

    #[test]
    fn event_renders_stable_json() {
        let json = event(42).to_json().to_compact();
        assert_eq!(
            json,
            "{\"id\":42,\"shard\":0,\"method\":\"GET\",\"path\":\"/v1/healthz\",\
             \"dataset\":null,\"status\":200,\"parse_us\":3,\"handle_us\":7,\
             \"bytes_in\":0,\"bytes_out\":11,\"unix_ms\":1000}"
        );
    }
}
