//! Lock-free metric primitives: striped counters, gauges with
//! high-water tracking, float accumulators, and a fixed-boundary
//! log₂-bucketed latency histogram with mergeable snapshots.

use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};

/// Number of stripes a [`Counter`] spreads its increments across.
const STRIPES: usize = 8;

/// Number of histogram buckets. Bucket `i < BUCKETS - 1` covers
/// values `v` with `2^(i-1) < v <= 2^i` microseconds (bucket 0 covers
/// `v <= 1`); the last bucket is the `+Inf` overflow.
pub const BUCKETS: usize = 32;

static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Each thread gets a stable stripe assignment round-robin, so
    /// concurrent incrementers mostly touch distinct cache lines.
    static STRIPE: usize = NEXT_STRIPE.fetch_add(1, Ordering::Relaxed) % STRIPES;
}

/// One cache line worth of counter so adjacent stripes don't false-share.
#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

/// A monotonically increasing counter, striped across cache lines so
/// many threads can increment it without contending on one atomic.
///
/// Reads (`get`) sum the stripes; they are linearizable per stripe but
/// the total is a relaxed snapshot, which is all a metric needs.
#[derive(Default)]
pub struct Counter {
    stripes: [PaddedU64; STRIPES],
}

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        STRIPE.with(|&s| self.stripes[s].0.fetch_add(n, Ordering::Relaxed));
    }

    /// The current total across all stripes.
    pub fn get(&self) -> u64 {
        self.stripes
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// A signed instantaneous value (e.g. active connections, high-water
/// queue depth).
#[derive(Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A zeroed gauge.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Raises the value to `v` if `v` is larger (high-water marks).
    pub fn observe_max(&self, v: i64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A monotonically increasing `f64` accumulator (e.g. total ε charged,
/// total snapping inflation), implemented as a CAS loop over the bit
/// pattern.
#[derive(Default)]
pub struct FloatCounter {
    bits: AtomicU64,
}

impl FloatCounter {
    /// A zeroed accumulator.
    pub fn new() -> FloatCounter {
        FloatCounter::default()
    }

    /// Adds `x` to the total.
    pub fn add(&self, x: f64) {
        let mut current = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + x).to_bits();
            match self.bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => current = seen,
            }
        }
    }

    /// The current total.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// The bucket index a microsecond value falls into: bucket `i` has
/// upper edge `2^i` µs, and the last bucket absorbs everything larger.
pub fn bucket_index(micros: u64) -> usize {
    let bits = u64::BITS - micros.saturating_sub(1).leading_zeros();
    (bits as usize).min(BUCKETS - 1)
}

/// The inclusive upper edge of bucket `i` in microseconds, or `None`
/// for the final `+Inf` bucket.
pub fn upper_edge_micros(i: usize) -> Option<u64> {
    if i + 1 < BUCKETS {
        Some(1u64 << i)
    } else {
        None
    }
}

/// A fixed-boundary log₂-bucketed latency histogram over microsecond
/// observations.
///
/// Boundaries are powers of two from 1 µs to ~17.9 min, identical for
/// every instance, so snapshots from different shards (or different
/// processes) merge by element-wise addition and render with stable
/// bucket edges.
#[derive(Default)]
pub struct Histogram {
    counts: [AtomicU64; BUCKETS],
    sum_micros: AtomicU64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one observation of `micros` microseconds.
    pub fn observe_micros(&self, micros: u64) {
        self.counts[bucket_index(micros)].fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
    }

    /// A point-in-time copy of the bucket counts and sum.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut counts = [0u64; BUCKETS];
        for (slot, count) in counts.iter_mut().zip(&self.counts) {
            *slot = count.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            counts,
            sum_micros: self.sum_micros.load(Ordering::Relaxed),
        }
    }
}

/// An owned, mergeable copy of a [`Histogram`]'s state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket (non-cumulative) observation counts.
    pub counts: [u64; BUCKETS],
    /// Sum of all observed values, in microseconds.
    pub sum_micros: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> HistogramSnapshot {
        HistogramSnapshot {
            counts: [0; BUCKETS],
            sum_micros: 0,
        }
    }
}

impl HistogramSnapshot {
    /// An empty snapshot (the merge identity).
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot::default()
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Element-wise sum of two snapshots. Associative and commutative
    /// with [`HistogramSnapshot::empty`] as identity, so per-shard
    /// snapshots fold in any order to the same result.
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let mut counts = [0u64; BUCKETS];
        for (i, slot) in counts.iter_mut().enumerate() {
            *slot = self.counts[i].saturating_add(other.counts[i]);
        }
        HistogramSnapshot {
            counts,
            sum_micros: self.sum_micros.saturating_add(other.sum_micros),
        }
    }

    /// The difference `self - earlier`, bucket-wise (for interval
    /// measurements from two scrapes of a monotone histogram).
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut counts = [0u64; BUCKETS];
        for (i, slot) in counts.iter_mut().enumerate() {
            *slot = self.counts[i].saturating_sub(earlier.counts[i]);
        }
        HistogramSnapshot {
            counts,
            sum_micros: self.sum_micros.saturating_sub(earlier.sum_micros),
        }
    }

    /// A deterministic upper-bound quantile in microseconds: the upper
    /// edge of the bucket containing the nearest-rank observation.
    /// Observations in the `+Inf` bucket report twice the last finite
    /// edge (saturated). Returns `None` for an empty snapshot.
    pub fn quantile_micros(&self, q: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let clamped = q.clamp(0.0, 1.0);
        // Nearest-rank: the smallest rank r with r >= q * total, at least 1.
        let rank = ((clamped * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return Some(upper_edge_micros(i).unwrap_or(2u64 << (BUCKETS - 2)));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_are_deterministic_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(1025), 11);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        // Every value lands in the bucket whose edge bounds it.
        for i in 0..BUCKETS - 1 {
            let edge = upper_edge_micros(i).expect("finite edge");
            assert_eq!(bucket_index(edge), i, "edge {edge} must be inclusive");
            assert_eq!(bucket_index(edge + 1), i + 1, "edge {edge} + 1 spills over");
        }
        assert!(upper_edge_micros(BUCKETS - 1).is_none());
    }

    #[test]
    fn counter_sums_across_threads() {
        let counter = Counter::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..10_000 {
                        counter.inc();
                    }
                });
            }
        });
        assert_eq!(counter.get(), 80_000);
    }

    #[test]
    fn gauge_tracks_value_and_high_water() {
        let gauge = Gauge::new();
        gauge.add(5);
        gauge.add(-2);
        assert_eq!(gauge.get(), 3);
        let high = Gauge::new();
        high.observe_max(10);
        high.observe_max(4);
        assert_eq!(high.get(), 10);
    }

    #[test]
    #[allow(clippy::float_cmp)]
    fn float_counter_accumulates_concurrently() {
        let fc = FloatCounter::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        fc.add(0.5);
                    }
                });
            }
        });
        // 0.5 is exactly representable: the total is exact.
        assert_eq!(fc.get(), 2000.0);
    }

    #[test]
    fn histogram_quantiles_report_bucket_upper_edges() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 100, 1000, 100_000] {
            h.observe_micros(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 6);
        assert_eq!(snap.sum_micros, 101_106);
        assert_eq!(snap.quantile_micros(0.0), Some(1));
        assert_eq!(snap.quantile_micros(0.5), Some(4)); // 3rd of 6 → bucket of 3 → edge 4
        assert_eq!(snap.quantile_micros(1.0), Some(131_072));
        assert_eq!(HistogramSnapshot::empty().quantile_micros(0.5), None);
    }

    #[test]
    fn snapshot_delta_recovers_interval_counts() {
        let h = Histogram::new();
        h.observe_micros(10);
        let before = h.snapshot();
        h.observe_micros(10);
        h.observe_micros(5000);
        let after = h.snapshot();
        let delta = after.delta(&before);
        assert_eq!(delta.count(), 2);
        assert_eq!(delta.sum_micros, 5010);
    }
}
