//! Metric families and the registry that renders them.
//!
//! A [`Family`] is a named metric with a fixed set of label keys and a
//! lazily-created child per label-value combination. The [`Registry`]
//! owns every family and renders the whole set as Prometheus text
//! exposition format or JSON (via `updp_core::json`). Rendering is
//! deterministic: families appear in registration order, children in
//! sorted label order (`BTreeMap`), and histogram edges are the fixed
//! power-of-two boundaries of [`crate::Histogram`].

use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};

use updp_core::json::JsonValue;

use crate::metrics::{upper_edge_micros, Counter, FloatCounter, Gauge, Histogram, BUCKETS};

/// What a family measures, for exposition `# TYPE` lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Monotone counter.
    Counter,
    /// Instantaneous value.
    Gauge,
    /// Bucketed latency distribution.
    Histogram,
}

impl Kind {
    fn exposition(&self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

/// A named metric with labelled children, created on first use.
///
/// Children live behind an `RwLock<BTreeMap>`: reads (the hot
/// recording path re-resolving a child, and scrapes) take the shared
/// lock; only the first observation for a new label set takes the
/// exclusive lock.
pub struct Family<M> {
    label_keys: &'static [&'static str],
    children: RwLock<BTreeMap<Vec<String>, Arc<M>>>,
}

impl<M: Default> Family<M> {
    fn new(label_keys: &'static [&'static str]) -> Family<M> {
        Family {
            label_keys,
            children: RwLock::new(BTreeMap::new()),
        }
    }

    /// The child for `labels` (one value per label key, in key order),
    /// created on first use.
    ///
    /// Lock poisoning is unwrapped into the inner guard: the map's
    /// own invariants survive a panicking holder (only `Vec<String>`
    /// keys, whose `Ord` cannot panic, and `Arc` clones live inside),
    /// and observability must keep working after an isolated handler
    /// panic elsewhere in the process.
    pub fn with_labels(&self, labels: &[&str]) -> Arc<M> {
        debug_assert_eq!(labels.len(), self.label_keys.len());
        let key: Vec<String> = labels.iter().map(|s| s.to_string()).collect();
        if let Some(child) = self
            .children
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(&key)
        {
            return Arc::clone(child);
        }
        let mut children = self.children.write().unwrap_or_else(|e| e.into_inner());
        Arc::clone(children.entry(key).or_default())
    }

    /// Sorted `(label values, child)` pairs for rendering.
    fn collect(&self) -> Vec<(Vec<String>, Arc<M>)> {
        self.children
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect()
    }
}

enum Handle {
    Counters(Arc<Family<Counter>>),
    Floats(Arc<Family<FloatCounter>>),
    Gauges(Arc<Family<Gauge>>),
    Histograms(Arc<Family<Histogram>>),
}

struct FamilyMeta {
    name: &'static str,
    help: &'static str,
    label_keys: &'static [&'static str],
    handle: Handle,
}

/// A set of metric families rendered together.
///
/// Families are registered once at startup (the registry hands back
/// `Arc<Family<_>>` handles the instrumented code keeps); scrapes can
/// additionally pass [`ScrapedFamily`] rows for values that live
/// outside the registry (e.g. the privacy ledger's ε accounts, read
/// from their single source of truth at scrape time).
#[derive(Default)]
pub struct Registry {
    families: Vec<FamilyMeta>,
}

/// A family materialized at scrape time from external state rather
/// than stored in the registry.
pub struct ScrapedFamily {
    /// Metric name (`snake_case`, `_total` suffix for counters).
    pub name: String,
    /// One-line help text.
    pub help: String,
    /// Counter or gauge (scraped histograms are not supported).
    pub kind: Kind,
    /// Label keys, matching every sample's label values.
    pub label_keys: Vec<String>,
    /// `(label values, value)` rows; rendered in the given order.
    pub samples: Vec<(Vec<String>, f64)>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Registers a counter family and returns its handle.
    pub fn counters(
        &mut self,
        name: &'static str,
        help: &'static str,
        label_keys: &'static [&'static str],
    ) -> Arc<Family<Counter>> {
        let family = Arc::new(Family::new(label_keys));
        self.families.push(FamilyMeta {
            name,
            help,
            label_keys,
            handle: Handle::Counters(Arc::clone(&family)),
        });
        family
    }

    /// Registers a float-valued counter family (rendered as a counter).
    pub fn float_counters(
        &mut self,
        name: &'static str,
        help: &'static str,
        label_keys: &'static [&'static str],
    ) -> Arc<Family<FloatCounter>> {
        let family = Arc::new(Family::new(label_keys));
        self.families.push(FamilyMeta {
            name,
            help,
            label_keys,
            handle: Handle::Floats(Arc::clone(&family)),
        });
        family
    }

    /// Registers a gauge family and returns its handle.
    pub fn gauges(
        &mut self,
        name: &'static str,
        help: &'static str,
        label_keys: &'static [&'static str],
    ) -> Arc<Family<Gauge>> {
        let family = Arc::new(Family::new(label_keys));
        self.families.push(FamilyMeta {
            name,
            help,
            label_keys,
            handle: Handle::Gauges(Arc::clone(&family)),
        });
        family
    }

    /// Registers a histogram family and returns its handle.
    pub fn histograms(
        &mut self,
        name: &'static str,
        help: &'static str,
        label_keys: &'static [&'static str],
    ) -> Arc<Family<Histogram>> {
        let family = Arc::new(Family::new(label_keys));
        self.families.push(FamilyMeta {
            name,
            help,
            label_keys,
            handle: Handle::Histograms(Arc::clone(&family)),
        });
        family
    }

    /// Renders Prometheus text exposition format (version 0.0.4),
    /// followed by the scrape-time `extra` families.
    pub fn render_prometheus(&self, extra: &[ScrapedFamily]) -> String {
        let mut out = String::new();
        for meta in &self.families {
            let kind = match meta.handle {
                Handle::Counters(_) | Handle::Floats(_) => Kind::Counter,
                Handle::Gauges(_) => Kind::Gauge,
                Handle::Histograms(_) => Kind::Histogram,
            };
            header(&mut out, meta.name, meta.help, kind);
            match &meta.handle {
                Handle::Counters(family) => {
                    for (labels, child) in family.collect() {
                        sample(
                            &mut out,
                            meta.name,
                            meta.label_keys,
                            &labels,
                            &[],
                            child.get() as f64,
                        );
                    }
                }
                Handle::Floats(family) => {
                    for (labels, child) in family.collect() {
                        sample(
                            &mut out,
                            meta.name,
                            meta.label_keys,
                            &labels,
                            &[],
                            child.get(),
                        );
                    }
                }
                Handle::Gauges(family) => {
                    for (labels, child) in family.collect() {
                        sample(
                            &mut out,
                            meta.name,
                            meta.label_keys,
                            &labels,
                            &[],
                            child.get() as f64,
                        );
                    }
                }
                Handle::Histograms(family) => {
                    for (labels, child) in family.collect() {
                        let snap = child.snapshot();
                        let mut cumulative = 0u64;
                        for (i, &count) in snap.counts.iter().enumerate() {
                            cumulative += count;
                            let le = match upper_edge_micros(i) {
                                Some(edge) => seconds_text(edge),
                                None => "+Inf".to_string(),
                            };
                            sample(
                                &mut out,
                                &format!("{}_bucket", meta.name),
                                meta.label_keys,
                                &labels,
                                &[("le", &le)],
                                cumulative as f64,
                            );
                        }
                        sample(
                            &mut out,
                            &format!("{}_sum", meta.name),
                            meta.label_keys,
                            &labels,
                            &[],
                            snap.sum_micros as f64 / 1e6,
                        );
                        sample(
                            &mut out,
                            &format!("{}_count", meta.name),
                            meta.label_keys,
                            &labels,
                            &[],
                            snap.count() as f64,
                        );
                    }
                }
            }
        }
        for scraped in extra {
            header(&mut out, &scraped.name, &scraped.help, scraped.kind);
            let keys: Vec<&str> = scraped.label_keys.iter().map(String::as_str).collect();
            for (labels, value) in &scraped.samples {
                sample(&mut out, &scraped.name, &keys, labels, &[], *value);
            }
        }
        out
    }

    /// Renders the same state as JSON: a `families` array where each
    /// entry carries `name`, `kind`, `help`, `label_keys`, and
    /// `samples` (scalar `value` rows, or histogram rows with
    /// non-cumulative `buckets` + `sum_micros` so scrape deltas merge
    /// exactly).
    pub fn render_json(&self, extra: &[ScrapedFamily]) -> JsonValue {
        let mut families = Vec::new();
        for meta in &self.families {
            let (kind, samples) = match &meta.handle {
                Handle::Counters(family) => (
                    Kind::Counter,
                    family
                        .collect()
                        .into_iter()
                        .map(|(labels, child)| {
                            scalar_json(meta.label_keys, &labels, child.get() as f64)
                        })
                        .collect(),
                ),
                Handle::Floats(family) => (
                    Kind::Counter,
                    family
                        .collect()
                        .into_iter()
                        .map(|(labels, child)| scalar_json(meta.label_keys, &labels, child.get()))
                        .collect(),
                ),
                Handle::Gauges(family) => (
                    Kind::Gauge,
                    family
                        .collect()
                        .into_iter()
                        .map(|(labels, child)| {
                            scalar_json(meta.label_keys, &labels, child.get() as f64)
                        })
                        .collect(),
                ),
                Handle::Histograms(family) => (
                    Kind::Histogram,
                    family
                        .collect()
                        .into_iter()
                        .map(|(labels, child)| {
                            let snap = child.snapshot();
                            let buckets: Vec<JsonValue> = (0..BUCKETS)
                                .map(|i| {
                                    JsonValue::object(vec![
                                        (
                                            "le_micros",
                                            match upper_edge_micros(i) {
                                                Some(edge) => JsonValue::Number(edge as f64),
                                                None => JsonValue::Null,
                                            },
                                        ),
                                        ("count", JsonValue::Number(snap.counts[i] as f64)),
                                    ])
                                })
                                .collect();
                            JsonValue::object(vec![
                                ("labels", labels_json(meta.label_keys, &labels)),
                                ("count", JsonValue::Number(snap.count() as f64)),
                                ("sum_micros", JsonValue::Number(snap.sum_micros as f64)),
                                ("buckets", JsonValue::Array(buckets)),
                            ])
                        })
                        .collect(),
                ),
            };
            families.push(family_json(
                meta.name,
                meta.help,
                kind,
                meta.label_keys,
                samples,
            ));
        }
        for scraped in extra {
            let keys: Vec<&str> = scraped.label_keys.iter().map(String::as_str).collect();
            let samples = scraped
                .samples
                .iter()
                .map(|(labels, value)| scalar_json(&keys, labels, *value))
                .collect();
            families.push(family_json(
                &scraped.name,
                &scraped.help,
                scraped.kind,
                &keys,
                samples,
            ));
        }
        JsonValue::object(vec![("families", JsonValue::Array(families))])
    }
}

fn family_json(
    name: &str,
    help: &str,
    kind: Kind,
    label_keys: &[&str],
    samples: Vec<JsonValue>,
) -> JsonValue {
    JsonValue::object(vec![
        ("name", JsonValue::from(name)),
        ("kind", JsonValue::from(kind.exposition())),
        ("help", JsonValue::from(help)),
        (
            "label_keys",
            JsonValue::Array(label_keys.iter().map(|&k| JsonValue::from(k)).collect()),
        ),
        ("samples", JsonValue::Array(samples)),
    ])
}

fn scalar_json(label_keys: &[&str], labels: &[String], value: f64) -> JsonValue {
    JsonValue::object(vec![
        ("labels", labels_json(label_keys, labels)),
        ("value", JsonValue::Number(value)),
    ])
}

fn labels_json(label_keys: &[&str], labels: &[String]) -> JsonValue {
    JsonValue::Object(
        label_keys
            .iter()
            .zip(labels)
            .map(|(&k, v)| (k.to_string(), JsonValue::from(v.as_str())))
            .collect(),
    )
}

fn header(out: &mut String, name: &str, help: &str, kind: Kind) {
    out.push_str("# HELP ");
    out.push_str(name);
    out.push(' ');
    out.push_str(help);
    out.push('\n');
    out.push_str("# TYPE ");
    out.push_str(name);
    out.push(' ');
    out.push_str(kind.exposition());
    out.push('\n');
}

/// One exposition line: `name{labels} value`. Extra fixed labels
/// (e.g. `le`) render after the family's own.
fn sample(
    out: &mut String,
    name: &str,
    label_keys: &[&str],
    labels: &[String],
    extra: &[(&str, &str)],
    value: f64,
) {
    out.push_str(name);
    if !label_keys.is_empty() || !extra.is_empty() {
        out.push('{');
        let mut first = true;
        for (key, val) in label_keys.iter().zip(labels) {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(key);
            out.push_str("=\"");
            out.push_str(&escape_label(val));
            out.push('"');
        }
        for (key, val) in extra {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(key);
            out.push_str("=\"");
            out.push_str(&escape_label(val));
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(&format_value(value));
    out.push('\n');
}

fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// A power-of-two microsecond edge in seconds, as exact decimal text.
fn seconds_text(micros: u64) -> String {
    // micros / 1e6 with exact decimal expansion: power-of-two
    // microsecond counts divided by 10^6 always terminate.
    let whole = micros / 1_000_000;
    let frac = micros % 1_000_000;
    if frac == 0 {
        format!("{whole}")
    } else {
        let text = format!("{frac:06}");
        format!("{whole}.{}", text.trim_end_matches('0'))
    }
}

fn format_value(value: f64) -> String {
    if value.is_finite() {
        format!("{value}")
    } else if value.is_nan() {
        "NaN".to_string()
    } else if value > 0.0 {
        "+Inf".to_string()
    } else {
        "-Inf".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seconds_text_is_exact() {
        assert_eq!(seconds_text(1), "0.000001");
        assert_eq!(seconds_text(1024), "0.001024");
        assert_eq!(seconds_text(1_000_000), "1");
        assert_eq!(seconds_text(1 << 20), "1.048576");
        assert_eq!(seconds_text(1 << 30), "1073.741824");
    }

    #[test]
    fn labels_escape_quotes_and_backslashes() {
        assert_eq!(escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn children_are_created_once_and_sorted() {
        let mut registry = Registry::new();
        let family = registry.counters("t_total", "t", &["k"]);
        family.with_labels(&["b"]).add(2);
        family.with_labels(&["a"]).inc();
        family.with_labels(&["b"]).inc();
        let rows = family.collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, vec!["a".to_string()]);
        assert_eq!(rows[1].0, vec!["b".to_string()]);
        assert_eq!(rows[1].1.get(), 3);
    }
}
