//! Gaussian mixtures, including the paper's "ill-behaved" distributions.
//!
//! The universal estimators' only weakness is a distribution with a very
//! narrow, very high density peak: then `ϕ(1/16) ≪ σ` and the
//! `log log(1/ϕ(1/16))` terms in the sample-size requirements blow up
//! (gracefully — only log-log). [`GaussianMixture::ill_behaved_spike`]
//! constructs exactly that shape for the `ill-behaved` experiment.

use crate::error::{DistError, Result};
use crate::gaussian::Gaussian;
use crate::numeric::monotone_root;
use crate::traits::ContinuousDistribution;
use rand::Rng;
use rand::RngCore;

/// A finite mixture of Gaussian components.
#[derive(Debug, Clone)]
pub struct GaussianMixture {
    weights: Vec<f64>,
    components: Vec<Gaussian>,
}

impl GaussianMixture {
    /// Creates a mixture from `(weight, component)` pairs. Weights must be
    /// positive; they are normalized to sum to 1.
    pub fn new(parts: Vec<(f64, Gaussian)>) -> Result<Self> {
        if parts.is_empty() {
            return Err(DistError::bad_param("parts", "must be non-empty"));
        }
        if parts.iter().any(|(w, _)| !(w.is_finite() && *w > 0.0)) {
            return Err(DistError::bad_param(
                "weights",
                "must be finite and positive",
            ));
        }
        let total: f64 = parts.iter().map(|(w, _)| w).sum();
        let (weights, components) = parts.into_iter().map(|(w, c)| (w / total, c)).unzip();
        Ok(GaussianMixture {
            weights,
            components,
        })
    }

    /// An ill-behaved distribution: half the mass in a spike of width
    /// `spike_sigma` at 0, half in a unit-width Gaussian. As
    /// `spike_sigma → 0`, `ϕ(1/16) → 0` while `σ` stays Θ(1).
    pub fn ill_behaved_spike(spike_sigma: f64) -> Result<Self> {
        GaussianMixture::new(vec![
            (0.5, Gaussian::new(0.0, spike_sigma)?),
            (0.5, Gaussian::new(0.0, 1.0)?),
        ])
    }

    /// A well-separated bimodal mixture, used to exercise multi-modal
    /// range finding.
    pub fn bimodal(separation: f64, sigma: f64) -> Result<Self> {
        GaussianMixture::new(vec![
            (0.5, Gaussian::new(-separation / 2.0, sigma)?),
            (0.5, Gaussian::new(separation / 2.0, sigma)?),
        ])
    }

    /// Number of mixture components.
    pub fn num_components(&self) -> usize {
        self.components.len()
    }
}

impl ContinuousDistribution for GaussianMixture {
    fn name(&self) -> String {
        format!(
            "GaussianMixture({})",
            self.weights
                .iter()
                .zip(&self.components)
                .map(|(w, c)| format!("{w:.3}*{}", c.name()))
                .collect::<Vec<_>>()
                .join(" + ")
        )
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        let mut u: f64 = rng.gen();
        for (w, c) in self.weights.iter().zip(&self.components) {
            if u < *w {
                return c.sample(rng);
            }
            u -= w;
        }
        // Floating-point slack: fall back to the last component.
        self.components
            .last()
            .expect("mixture has at least one component")
            .sample(rng)
    }

    fn pdf(&self, x: f64) -> f64 {
        self.weights
            .iter()
            .zip(&self.components)
            .map(|(w, c)| w * c.pdf(x))
            .sum()
    }

    fn cdf(&self, x: f64) -> f64 {
        self.weights
            .iter()
            .zip(&self.components)
            .map(|(w, c)| w * c.cdf(x))
            .sum()
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0);
        let seed_scale = self
            .components
            .iter()
            .map(|c| c.sigma())
            .fold(f64::NEG_INFINITY, f64::max);
        monotone_root(|x| self.cdf(x) - p, self.mean(), seed_scale, 1e-12)
    }

    fn mean(&self) -> f64 {
        self.weights
            .iter()
            .zip(&self.components)
            .map(|(w, c)| w * c.mu())
            .sum()
    }

    fn variance(&self) -> f64 {
        let mu = self.mean();
        self.weights
            .iter()
            .zip(&self.components)
            .map(|(w, c)| w * (c.sigma().powi(2) + (c.mu() - mu).powi(2)))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_validates() {
        assert!(GaussianMixture::new(vec![]).is_err());
        assert!(GaussianMixture::new(vec![(0.0, Gaussian::standard())]).is_err());
        assert!(GaussianMixture::new(vec![(1.0, Gaussian::standard())]).is_ok());
    }

    #[test]
    fn weights_are_normalized() {
        let m = GaussianMixture::new(vec![
            (2.0, Gaussian::new(0.0, 1.0).unwrap()),
            (6.0, Gaussian::new(10.0, 1.0).unwrap()),
        ])
        .unwrap();
        // mean = 0.25·0 + 0.75·10 = 7.5
        assert!((m.mean() - 7.5).abs() < 1e-12);
    }

    #[test]
    fn single_component_matches_gaussian() {
        let g = Gaussian::new(2.0, 3.0).unwrap();
        let m = GaussianMixture::new(vec![(1.0, g)]).unwrap();
        for i in -10..=10 {
            let x = i as f64;
            assert!((m.pdf(x) - g.pdf(x)).abs() < 1e-14);
            assert!((m.cdf(x) - g.cdf(x)).abs() < 1e-14);
        }
        assert!((m.variance() - 9.0).abs() < 1e-12);
    }

    #[test]
    fn bimodal_variance_includes_separation() {
        let m = GaussianMixture::bimodal(10.0, 1.0).unwrap();
        // var = σ² + (sep/2)² = 1 + 25.
        assert!((m.variance() - 26.0).abs() < 1e-12);
        assert!((m.mean()).abs() < 1e-12);
    }

    #[test]
    fn quantile_roundtrip_bimodal() {
        let m = GaussianMixture::bimodal(8.0, 0.5).unwrap();
        for i in 1..40 {
            let p = i as f64 / 40.0;
            let x = m.quantile(p);
            assert!((m.cdf(x) - p).abs() < 1e-9, "p = {p}");
        }
    }

    #[test]
    fn ill_behaved_spike_has_tiny_phi() {
        let m = GaussianMixture::ill_behaved_spike(1e-4).unwrap();
        let phi = m.phi(1.0 / 16.0);
        let sigma = m.std_dev();
        // The spike holds 1/2 the mass in width ~4e-4, so a 1/16-mass
        // interval is tiny while σ ≈ 0.7.
        assert!(phi < 1e-3, "phi = {phi}");
        assert!(sigma > 0.5, "sigma = {sigma}");
    }

    #[test]
    fn sample_mean_matches() {
        let m = GaussianMixture::new(vec![
            (1.0, Gaussian::new(-5.0, 1.0).unwrap()),
            (3.0, Gaussian::new(3.0, 2.0).unwrap()),
        ])
        .unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let s = m.sample_vec(&mut rng, 200_000);
        let mean = s.iter().sum::<f64>() / s.len() as f64;
        assert!(
            (mean - m.mean()).abs() < 0.05,
            "mean {mean} vs {}",
            m.mean()
        );
    }
}
