//! The Laplace distribution as a *data* distribution `Lap(μ, b)`.
//!
//! Distinct from the Laplace *mechanism* in `updp-core`: here Laplace
//! models heavier-than-Gaussian but light-tailed data, with all central
//! moments `μ_k = k!·b^k` finite.

use crate::error::{DistError, Result};
use crate::special::factorial;
use crate::traits::ContinuousDistribution;
use rand::Rng;
use rand::RngCore;

/// A Laplace distribution with location `mu` and scale `b`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaplaceDist {
    mu: f64,
    b: f64,
}

impl LaplaceDist {
    /// Creates `Lap(mu, b)`; `b` must be finite and positive, `mu` finite.
    pub fn new(mu: f64, b: f64) -> Result<Self> {
        if !mu.is_finite() {
            return Err(DistError::bad_param("mu", "must be finite"));
        }
        if !(b.is_finite() && b > 0.0) {
            return Err(DistError::bad_param("b", "must be finite and positive"));
        }
        Ok(LaplaceDist { mu, b })
    }

    /// The scale parameter `b`.
    pub fn scale(&self) -> f64 {
        self.b
    }
}

impl ContinuousDistribution for LaplaceDist {
    fn name(&self) -> String {
        format!("Laplace(mu={}, b={})", self.mu, self.b)
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        loop {
            let u: f64 = rng.gen::<f64>() - 0.5;
            let a = 1.0 - 2.0 * u.abs();
            if a > 0.0 {
                return self.mu - self.b * u.signum() * a.ln();
            }
        }
    }

    fn pdf(&self, x: f64) -> f64 {
        (-(x - self.mu).abs() / self.b).exp() / (2.0 * self.b)
    }

    fn cdf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / self.b;
        if z < 0.0 {
            0.5 * z.exp()
        } else {
            1.0 - 0.5 * (-z).exp()
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0);
        if p < 0.5 {
            self.mu + self.b * (2.0 * p).ln()
        } else {
            self.mu - self.b * (2.0 * (1.0 - p)).ln()
        }
    }

    fn mean(&self) -> f64 {
        self.mu
    }

    fn variance(&self) -> f64 {
        2.0 * self.b * self.b
    }

    fn central_moment(&self, k: u32) -> f64 {
        // |X − μ| ~ Exp(1/b): E|X−μ|^k = k!·b^k.
        factorial(k) * self.b.powi(k as i32)
    }

    fn phi(&self, beta: f64) -> f64 {
        assert!(beta > 0.0 && beta < 1.0);
        // Symmetric unimodal: centered interval; F(w/2)−F(−w/2) = 1−e^{−w/(2b)}.
        -2.0 * self.b * (1.0 - beta).ln()
    }
}

#[cfg(test)]
// Exact `==` on f64 is deliberate in tests: they pin bit-identical
// outputs (DESIGN.md §5), so an epsilon tolerance would weaken them.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_validates() {
        assert!(LaplaceDist::new(0.0, 0.0).is_err());
        assert!(LaplaceDist::new(f64::NAN, 1.0).is_err());
        assert!(LaplaceDist::new(0.0, 2.0).is_ok());
    }

    #[test]
    fn moments() {
        let l = LaplaceDist::new(1.0, 3.0).unwrap();
        assert_eq!(l.mean(), 1.0);
        assert_eq!(l.variance(), 18.0);
        assert!((l.central_moment(2) - 18.0).abs() < 1e-12);
        // μ₄ = 24 b⁴
        assert!((l.central_moment(4) - 24.0 * 81.0).abs() < 1e-9);
        // μ₁ = b
        assert!((l.central_moment(1) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_quantile_roundtrip() {
        let l = LaplaceDist::new(-2.0, 0.7).unwrap();
        for i in 1..100 {
            let p = i as f64 / 100.0;
            assert!((l.cdf(l.quantile(p)) - p).abs() < 1e-12);
        }
    }

    #[test]
    fn phi_mass_is_exactly_beta() {
        let l = LaplaceDist::new(0.0, 2.0).unwrap();
        let beta = 1.0 / 16.0;
        let w = l.phi(beta);
        let mass = l.cdf(w / 2.0) - l.cdf(-w / 2.0);
        assert!((mass - beta).abs() < 1e-12, "mass = {mass}");
    }

    #[test]
    fn sample_moments_match() {
        let l = LaplaceDist::new(5.0, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let s = l.sample_vec(&mut rng, 200_000);
        let mean = s.iter().sum::<f64>() / s.len() as f64;
        let var = s.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / s.len() as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
        assert!((var - 8.0).abs() < 0.3, "var {var}");
    }
}
