//! Primitive samplers shared by the distribution implementations.
//!
//! Everything is built from `rand`'s uniform generator: standard normal
//! via Box–Muller, gamma via Marsaglia–Tsang, and exponential via inverse
//! CDF. These are deliberately simple, well-tested textbook methods — the
//! experiments care about statistical correctness and reproducibility,
//! not about squeezing nanoseconds out of the samplers.

use rand::Rng;
use rand::RngCore;

/// Draws a standard normal variate (Box–Muller, polar-free form).
pub fn sample_standard_normal(rng: &mut dyn RngCore) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        if u1 <= 0.0 {
            continue;
        }
        let u2: f64 = rng.gen();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        let z = r * theta.cos();
        if z.is_finite() {
            return z;
        }
    }
}

/// Draws `Exp(1)` via inverse CDF.
pub fn sample_standard_exponential(rng: &mut dyn RngCore) -> f64 {
    loop {
        let u: f64 = rng.gen();
        if u > 0.0 {
            return -u.ln();
        }
    }
}

/// Draws `Gamma(shape, 1)` via Marsaglia–Tsang (2000), with the standard
/// boost for `shape < 1`.
pub fn sample_standard_gamma(rng: &mut dyn RngCore, shape: f64) -> f64 {
    assert!(shape > 0.0 && shape.is_finite(), "shape must be positive");
    if shape < 1.0 {
        // Γ(a) = Γ(a+1) · U^{1/a}
        let g = sample_standard_gamma(rng, shape + 1.0);
        loop {
            let u: f64 = rng.gen();
            if u > 0.0 {
                return g * u.powf(1.0 / shape);
            }
        }
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = sample_standard_normal(rng);
        let v = 1.0 + c * x;
        if v <= 0.0 {
            continue;
        }
        let v3 = v * v * v;
        let u: f64 = rng.gen();
        if u <= 0.0 {
            continue;
        }
        if u < 1.0 - 0.0331 * x.powi(4) || u.ln() < 0.5 * x * x + d * (1.0 - v3 + v3.ln()) {
            return d * v3;
        }
    }
}

/// Draws `χ²_ν` (chi-squared with `nu` degrees of freedom).
pub fn sample_chi_squared(rng: &mut dyn RngCore, nu: f64) -> f64 {
    2.0 * sample_standard_gamma(rng, nu / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn moments(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let s: Vec<f64> = (0..200_000)
            .map(|_| sample_standard_normal(&mut rng))
            .collect();
        let (mean, var) = moments(&s);
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn standard_normal_tail_fraction() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 200_000;
        let above2 = (0..n)
            .filter(|_| sample_standard_normal(&mut rng) > 2.0)
            .count() as f64
            / n as f64;
        // Pr[Z > 2] ≈ 0.02275
        assert!((above2 - 0.02275).abs() < 0.003, "tail {above2}");
    }

    #[test]
    fn exponential_moments() {
        let mut rng = StdRng::seed_from_u64(3);
        let s: Vec<f64> = (0..200_000)
            .map(|_| sample_standard_exponential(&mut rng))
            .collect();
        let (mean, var) = moments(&s);
        assert!((mean - 1.0).abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn gamma_moments_large_shape() {
        let mut rng = StdRng::seed_from_u64(4);
        let shape = 7.5;
        let s: Vec<f64> = (0..200_000)
            .map(|_| sample_standard_gamma(&mut rng, shape))
            .collect();
        let (mean, var) = moments(&s);
        assert!((mean - shape).abs() / shape < 0.02, "mean {mean}");
        assert!((var - shape).abs() / shape < 0.05, "var {var}");
    }

    #[test]
    fn gamma_moments_small_shape() {
        let mut rng = StdRng::seed_from_u64(5);
        let shape = 0.3;
        let s: Vec<f64> = (0..200_000)
            .map(|_| sample_standard_gamma(&mut rng, shape))
            .collect();
        let (mean, var) = moments(&s);
        assert!((mean - shape).abs() / shape < 0.05, "mean {mean}");
        assert!((var - shape).abs() / shape < 0.1, "var {var}");
        assert!(s.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn chi_squared_mean_is_nu() {
        let mut rng = StdRng::seed_from_u64(6);
        let nu = 4.0;
        let s: Vec<f64> = (0..100_000)
            .map(|_| sample_chi_squared(&mut rng, nu))
            .collect();
        let (mean, var) = moments(&s);
        assert!((mean - nu).abs() / nu < 0.03, "mean {mean}");
        assert!((var - 2.0 * nu).abs() / (2.0 * nu) < 0.08, "var {var}");
    }
}
