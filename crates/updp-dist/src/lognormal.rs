//! The log-normal distribution `LogNormal(μ, σ)` (parameters of the
//! underlying normal).
//!
//! Heavily right-skewed with all moments finite but rapidly growing —
//! a realistic income/latency-style workload for the IQR and mean
//! experiments.

use crate::error::{DistError, Result};
use crate::sampling::sample_standard_normal;
use crate::special::{inverse_normal_cdf, normal_cdf, normal_pdf};
use crate::traits::{numeric_central_moment, ContinuousDistribution};
use rand::RngCore;

/// A log-normal distribution: `ln X ~ N(mu, sigma²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates `LogNormal(mu, sigma)`; `sigma` finite positive, `mu` finite.
    pub fn new(mu: f64, sigma: f64) -> Result<Self> {
        if !mu.is_finite() {
            return Err(DistError::bad_param("mu", "must be finite"));
        }
        if !(sigma.is_finite() && sigma > 0.0) {
            return Err(DistError::bad_param("sigma", "must be finite and positive"));
        }
        Ok(LogNormal { mu, sigma })
    }

    /// Raw moment `E[X^n] = exp(nμ + n²σ²/2)`.
    pub fn raw_moment(&self, n: u32) -> f64 {
        let nf = n as f64;
        (nf * self.mu + 0.5 * nf * nf * self.sigma * self.sigma).exp()
    }
}

impl ContinuousDistribution for LogNormal {
    fn name(&self) -> String {
        format!("LogNormal(mu={}, sigma={})", self.mu, self.sigma)
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        (self.mu + self.sigma * sample_standard_normal(rng)).exp()
    }

    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        normal_pdf((x.ln() - self.mu) / self.sigma) / (x * self.sigma)
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        normal_cdf((x.ln() - self.mu) / self.sigma)
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0);
        (self.mu + self.sigma * inverse_normal_cdf(p)).exp()
    }

    fn mean(&self) -> f64 {
        self.raw_moment(1)
    }

    fn variance(&self) -> f64 {
        let s2 = self.sigma * self.sigma;
        (s2.exp() - 1.0) * (2.0 * self.mu + s2).exp()
    }

    fn central_moment(&self, k: u32) -> f64 {
        if k == 2 {
            self.variance()
        } else {
            numeric_central_moment(self, k)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_validates() {
        assert!(LogNormal::new(0.0, 0.0).is_err());
        assert!(LogNormal::new(f64::INFINITY, 1.0).is_err());
        assert!(LogNormal::new(0.0, 0.5).is_ok());
    }

    #[test]
    fn mean_and_variance_formulas() {
        let ln = LogNormal::new(0.0, 1.0).unwrap();
        assert!((ln.mean() - (0.5f64).exp()).abs() < 1e-12);
        let expected_var = (1.0f64.exp() - 1.0) * 1.0f64.exp();
        assert!((ln.variance() - expected_var).abs() < 1e-10);
    }

    #[test]
    fn cdf_quantile_roundtrip() {
        let ln = LogNormal::new(1.0, 0.5).unwrap();
        for i in 1..100 {
            let p = i as f64 / 100.0;
            assert!((ln.cdf(ln.quantile(p)) - p).abs() < 1e-10);
        }
    }

    #[test]
    fn median_is_exp_mu() {
        let ln = LogNormal::new(2.0, 0.7).unwrap();
        assert!((ln.quantile(0.5) - (2.0f64).exp()).abs() < 1e-9);
    }

    #[test]
    fn numeric_central_moment_matches_variance() {
        let ln = LogNormal::new(0.0, 0.5).unwrap();
        let v = ln.variance();
        let m2 = numeric_central_moment(&ln, 2);
        assert!((v - m2).abs() / v < 1e-5, "var {v} vs numeric {m2}");
    }

    #[test]
    fn support_is_positive_and_mean_matches() {
        let ln = LogNormal::new(0.0, 0.75).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let s = ln.sample_vec(&mut rng, 300_000);
        assert!(s.iter().all(|&x| x > 0.0));
        let mean = s.iter().sum::<f64>() / s.len() as f64;
        assert!(
            (mean - ln.mean()).abs() / ln.mean() < 0.02,
            "mean {mean} vs {}",
            ln.mean()
        );
    }

    #[test]
    fn phi_is_smaller_than_iqr() {
        // Skewed density: the highest-density region is narrower than
        // the IQR and sits left of the median.
        let ln = LogNormal::new(0.0, 1.0).unwrap();
        assert!(ln.phi(0.5) < ln.iqr());
    }
}
