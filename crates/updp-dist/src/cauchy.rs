//! The Cauchy distribution `Cauchy(loc, scale)`.
//!
//! No mean, no variance: the paper's utility guarantees for μ and σ² do
//! not apply, but the *IQR* estimator (Theorem 6.2) still does — IQR is
//! always well-defined — and every mechanism must at least run without
//! misbehaving. Cauchy is therefore the stress workload for robustness
//! tests and for the IQR experiments.

use crate::error::{DistError, Result};
use crate::traits::ContinuousDistribution;
use rand::Rng;
use rand::RngCore;

/// A Cauchy distribution with location and scale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cauchy {
    loc: f64,
    scale: f64,
}

impl Cauchy {
    /// Creates `Cauchy(loc, scale)`; `scale` finite positive, `loc` finite.
    pub fn new(loc: f64, scale: f64) -> Result<Self> {
        if !loc.is_finite() {
            return Err(DistError::bad_param("loc", "must be finite"));
        }
        if !(scale.is_finite() && scale > 0.0) {
            return Err(DistError::bad_param("scale", "must be finite and positive"));
        }
        Ok(Cauchy { loc, scale })
    }
}

impl ContinuousDistribution for Cauchy {
    fn name(&self) -> String {
        format!("Cauchy(loc={}, scale={})", self.loc, self.scale)
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        loop {
            let u: f64 = rng.gen();
            if u > 0.0 && u < 1.0 {
                return self.loc + self.scale * (std::f64::consts::PI * (u - 0.5)).tan();
            }
        }
    }

    fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.loc) / self.scale;
        1.0 / (std::f64::consts::PI * self.scale * (1.0 + z * z))
    }

    fn cdf(&self, x: f64) -> f64 {
        let z = (x - self.loc) / self.scale;
        0.5 + z.atan() / std::f64::consts::PI
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0);
        self.loc + self.scale * (std::f64::consts::PI * (p - 0.5)).tan()
    }

    fn mean(&self) -> f64 {
        f64::NAN
    }

    fn variance(&self) -> f64 {
        f64::INFINITY
    }

    fn central_moment(&self, _k: u32) -> f64 {
        f64::INFINITY
    }

    fn phi(&self, beta: f64) -> f64 {
        assert!(beta > 0.0 && beta < 1.0);
        // Symmetric unimodal: centered interval of mass β.
        2.0 * self.scale * (std::f64::consts::PI * beta / 2.0).tan()
    }
}

#[cfg(test)]
// Exact `==` on f64 is deliberate in tests: they pin bit-identical
// outputs (DESIGN.md §5), so an epsilon tolerance would weaken them.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_validates() {
        assert!(Cauchy::new(0.0, 0.0).is_err());
        assert!(Cauchy::new(f64::NAN, 1.0).is_err());
        assert!(Cauchy::new(0.0, 1.0).is_ok());
    }

    #[test]
    fn iqr_is_twice_scale() {
        let c = Cauchy::new(3.0, 2.0).unwrap();
        // quartiles at loc ± scale.
        assert!((c.iqr() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_quantile_roundtrip() {
        let c = Cauchy::new(-1.0, 0.5).unwrap();
        for i in 1..100 {
            let p = i as f64 / 100.0;
            assert!((c.cdf(c.quantile(p)) - p).abs() < 1e-12);
        }
    }

    #[test]
    fn undefined_moments() {
        let c = Cauchy::new(0.0, 1.0).unwrap();
        assert!(c.mean().is_nan());
        assert_eq!(c.variance(), f64::INFINITY);
        assert_eq!(c.central_moment(2), f64::INFINITY);
    }

    #[test]
    fn phi_mass_is_beta() {
        let c = Cauchy::new(0.0, 1.5).unwrap();
        let beta = 1.0 / 16.0;
        let w = c.phi(beta);
        let mass = c.cdf(w / 2.0) - c.cdf(-w / 2.0);
        assert!((mass - beta).abs() < 1e-12);
    }

    #[test]
    fn sample_median_matches_location() {
        let c = Cauchy::new(10.0, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let mut s = c.sample_vec(&mut rng, 100_001);
        s.sort_by(f64::total_cmp);
        let median = s[50_000];
        assert!((median - 10.0).abs() < 0.05, "median {median}");
    }
}
