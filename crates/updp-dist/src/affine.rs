//! Affine transformation of a distribution: `X = scale·Y + shift`.
//!
//! Used by the experiments to place means far from the origin (breaking
//! the A1 baselines, whose `[−R, R]` assumption then fails) and to sweep
//! σ across decades without reimplementing each family.

use crate::error::{DistError, Result};
use crate::traits::ContinuousDistribution;
use rand::RngCore;

/// `scale·Y + shift` for an inner distribution `Y`, with `scale > 0`.
#[derive(Debug, Clone)]
pub struct Affine<D> {
    inner: D,
    shift: f64,
    scale: f64,
}

impl<D: ContinuousDistribution> Affine<D> {
    /// Creates the transformed distribution; `scale` must be finite and
    /// positive, `shift` finite.
    pub fn new(inner: D, shift: f64, scale: f64) -> Result<Self> {
        if !shift.is_finite() {
            return Err(DistError::bad_param("shift", "must be finite"));
        }
        if !(scale.is_finite() && scale > 0.0) {
            return Err(DistError::bad_param("scale", "must be finite and positive"));
        }
        Ok(Affine {
            inner,
            shift,
            scale,
        })
    }

    /// A pure shift (`scale = 1`).
    pub fn shifted(inner: D, shift: f64) -> Result<Self> {
        Affine::new(inner, shift, 1.0)
    }

    fn to_inner(&self, x: f64) -> f64 {
        (x - self.shift) / self.scale
    }
}

impl<D: ContinuousDistribution> ContinuousDistribution for Affine<D> {
    fn name(&self) -> String {
        format!("{}*{} + {}", self.scale, self.inner.name(), self.shift)
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        self.scale * self.inner.sample(rng) + self.shift
    }

    fn pdf(&self, x: f64) -> f64 {
        self.inner.pdf(self.to_inner(x)) / self.scale
    }

    fn cdf(&self, x: f64) -> f64 {
        self.inner.cdf(self.to_inner(x))
    }

    fn quantile(&self, p: f64) -> f64 {
        self.scale * self.inner.quantile(p) + self.shift
    }

    fn mean(&self) -> f64 {
        self.scale * self.inner.mean() + self.shift
    }

    fn variance(&self) -> f64 {
        self.scale * self.scale * self.inner.variance()
    }

    fn central_moment(&self, k: u32) -> f64 {
        self.scale.powi(k as i32) * self.inner.central_moment(k)
    }

    fn phi(&self, beta: f64) -> f64 {
        self.scale * self.inner.phi(beta)
    }

    fn theta(&self, kappa: f64) -> f64 {
        self.inner.theta(kappa / self.scale) / self.scale
    }

    fn statistical_width(&self, m: usize, beta: f64) -> f64 {
        self.scale * self.inner.statistical_width(m, beta)
    }
}

#[cfg(test)]
// Exact `==` on f64 is deliberate in tests: they pin bit-identical
// outputs (DESIGN.md §5), so an epsilon tolerance would weaken them.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::gaussian::Gaussian;
    use crate::pareto::Pareto;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_validates() {
        let g = Gaussian::standard();
        assert!(Affine::new(g, 0.0, 0.0).is_err());
        assert!(Affine::new(g, f64::NAN, 1.0).is_err());
        assert!(Affine::new(g, 1.0, 2.0).is_ok());
    }

    #[test]
    fn affine_gaussian_equals_reparameterized_gaussian() {
        let a = Affine::new(Gaussian::standard(), 100.0, 3.0).unwrap();
        let g = Gaussian::new(100.0, 3.0).unwrap();
        assert!((a.mean() - g.mean()).abs() < 1e-12);
        assert!((a.variance() - g.variance()).abs() < 1e-12);
        for i in 1..20 {
            let p = i as f64 / 20.0;
            assert!((a.quantile(p) - g.quantile(p)).abs() < 1e-9);
        }
        for x in [-5.0, 95.0, 100.0, 106.0] {
            assert!((a.pdf(x) - g.pdf(x)).abs() < 1e-12);
            assert!((a.cdf(x) - g.cdf(x)).abs() < 1e-12);
        }
        assert!((a.phi(0.25) - g.phi(0.25)).abs() < 1e-9);
        assert!((a.central_moment(4) - g.central_moment(4)).abs() < 1e-6);
    }

    #[test]
    fn shift_moves_pareto_off_support() {
        let p = Affine::shifted(Pareto::new(1.0, 3.0).unwrap(), -10.0).unwrap();
        assert!((p.mean() - (1.5 - 10.0)).abs() < 1e-12);
        // Support of Pareto(1, 3) shifted by −10 starts at −9.
        assert!(p.cdf(-8.5) > 0.0);
        assert_eq!(p.cdf(-9.0), 0.0);
    }

    #[test]
    fn theta_transforms_correctly() {
        let inner = Gaussian::standard();
        let a = Affine::new(inner, 0.0, 10.0).unwrap();
        let direct = Gaussian::new(0.0, 10.0).unwrap();
        let k = 0.5;
        assert!((a.theta(k) - direct.theta(k)).abs() < 1e-9);
    }

    #[test]
    fn sampling_matches_parameters() {
        let a = Affine::new(Gaussian::standard(), -50.0, 4.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let s = a.sample_vec(&mut rng, 100_000);
        let mean = s.iter().sum::<f64>() / s.len() as f64;
        assert!((mean + 50.0).abs() < 0.1, "mean {mean}");
    }
}
