//! Parameter-validation errors for distribution constructors.

use std::fmt;

/// Error constructing a distribution with invalid parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistError {
    /// Parameter name.
    pub name: &'static str,
    /// Violated constraint.
    pub reason: &'static str,
}

impl DistError {
    /// Convenience constructor.
    pub fn bad_param(name: &'static str, reason: &'static str) -> Self {
        DistError { name, reason }
    }
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid distribution parameter `{}`: {}",
            self.name, self.reason
        )
    }
}

impl std::error::Error for DistError {}

/// Result alias for distribution construction.
pub type Result<T> = std::result::Result<T, DistError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_parameter() {
        let e = DistError::bad_param("sigma", "must be positive");
        assert!(e.to_string().contains("sigma"));
        assert!(e.to_string().contains("must be positive"));
    }
}
