//! The continuous uniform distribution `U(a, b)`.
//!
//! Featured in the paper's introduction: the mid-range estimator beats the
//! sample mean on uniform data (`O(1/n)` vs `O(1/√n)`), which the
//! `table1` experiment demonstrates alongside its catastrophic failure on
//! Gaussians.

use crate::error::{DistError, Result};
use crate::traits::ContinuousDistribution;
use rand::Rng;
use rand::RngCore;

/// A uniform distribution on `[a, b]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    a: f64,
    b: f64,
}

impl Uniform {
    /// Creates `U(a, b)`; requires finite `a < b`.
    pub fn new(a: f64, b: f64) -> Result<Self> {
        if !(a.is_finite() && b.is_finite()) {
            return Err(DistError::bad_param("a,b", "must be finite"));
        }
        if a >= b {
            return Err(DistError::bad_param("a,b", "must satisfy a < b"));
        }
        Ok(Uniform { a, b })
    }

    /// Lower endpoint.
    pub fn lower(&self) -> f64 {
        self.a
    }

    /// Upper endpoint.
    pub fn upper(&self) -> f64 {
        self.b
    }

    fn width(&self) -> f64 {
        self.b - self.a
    }
}

impl ContinuousDistribution for Uniform {
    fn name(&self) -> String {
        format!("Uniform({}, {})", self.a, self.b)
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        self.a + self.width() * rng.gen::<f64>()
    }

    fn pdf(&self, x: f64) -> f64 {
        if x >= self.a && x <= self.b {
            1.0 / self.width()
        } else {
            0.0
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        ((x - self.a) / self.width()).clamp(0.0, 1.0)
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0);
        self.a + p * self.width()
    }

    fn mean(&self) -> f64 {
        0.5 * (self.a + self.b)
    }

    fn variance(&self) -> f64 {
        self.width() * self.width() / 12.0
    }

    fn central_moment(&self, k: u32) -> f64 {
        // |X − μ| ~ U(0, w/2): E = (w/2)^k/(k+1).
        let half = self.width() / 2.0;
        half.powi(k as i32) / (k as f64 + 1.0)
    }

    fn phi(&self, beta: f64) -> f64 {
        assert!(beta > 0.0 && beta < 1.0);
        beta * self.width()
    }
}

/// The mid-range estimator `(X₍₁₎ + X₍ₙ₎)/2` from the paper's
/// introduction — optimal for uniform data, terrible for Gaussians.
pub fn midrange(data: &[f64]) -> Option<f64> {
    if data.is_empty() {
        return None;
    }
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for &x in data {
        min = min.min(x);
        max = max.max(x);
    }
    Some(0.5 * (min + max))
}

#[cfg(test)]
// Exact `==` on f64 is deliberate in tests: they pin bit-identical
// outputs (DESIGN.md §5), so an epsilon tolerance would weaken them.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_validates() {
        assert!(Uniform::new(1.0, 1.0).is_err());
        assert!(Uniform::new(2.0, 1.0).is_err());
        assert!(Uniform::new(f64::INFINITY, 1.0).is_err());
        assert!(Uniform::new(-1.0, 1.0).is_ok());
    }

    #[test]
    fn moments() {
        let u = Uniform::new(2.0, 8.0).unwrap();
        assert_eq!(u.mean(), 5.0);
        assert_eq!(u.variance(), 3.0);
        assert!((u.central_moment(2) - 3.0).abs() < 1e-12);
        // μ₄ = (w/2)⁴/5 = 81/5
        assert!((u.central_moment(4) - 16.2).abs() < 1e-12);
        // E|X−μ| = (w/2)/2 = 1.5
        assert!((u.central_moment(1) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn cdf_quantile_roundtrip() {
        let u = Uniform::new(-3.0, 7.0).unwrap();
        for i in 1..100 {
            let p = i as f64 / 100.0;
            assert!((u.cdf(u.quantile(p)) - p).abs() < 1e-12);
        }
    }

    #[test]
    fn iqr_is_half_width() {
        let u = Uniform::new(0.0, 4.0).unwrap();
        assert!((u.iqr() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn samples_stay_in_support() {
        let u = Uniform::new(-1.0, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = u.sample(&mut rng);
            assert!((-1.0..=1.0).contains(&x));
        }
    }

    #[test]
    fn midrange_converges_fast_on_uniform() {
        let u = Uniform::new(0.0, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let n = 10_000;
        let data = u.sample_vec(&mut rng, n);
        let mr = midrange(&data).unwrap();
        // mid-range error is O(1/n).
        assert!((mr - 0.5).abs() < 10.0 / n as f64, "midrange = {mr}");
    }

    #[test]
    fn midrange_empty_is_none() {
        assert_eq!(midrange(&[]), None);
    }
}
