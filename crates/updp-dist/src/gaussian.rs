//! The Gaussian (normal) distribution `N(μ, σ²)`.
//!
//! The paper's marquee comparisons (Theorems 4.6 and 5.3 vs. [KV18] and
//! [KLSU19]/[BDKU20]) are stated for Gaussians, where every functional has
//! a closed form: `ϕ(β) = 2σ·Φ⁻¹((1+β)/2)`, `IQR = 2σ·Φ⁻¹(3/4)`, and
//! `μ_k = σ^k · 2^{k/2} Γ((k+1)/2)/√π` (which is `σ^k (k−1)!!` for even k).

use crate::error::{DistError, Result};
use crate::sampling::sample_standard_normal;
use crate::special::{inverse_normal_cdf, ln_gamma, normal_cdf, normal_pdf};
use crate::traits::ContinuousDistribution;
use rand::RngCore;

/// A Gaussian distribution with mean `mu` and standard deviation `sigma`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gaussian {
    mu: f64,
    sigma: f64,
}

impl Gaussian {
    /// Creates `N(mu, sigma²)`; `sigma` must be finite and positive and
    /// `mu` finite.
    pub fn new(mu: f64, sigma: f64) -> Result<Self> {
        if !mu.is_finite() {
            return Err(DistError::bad_param("mu", "must be finite"));
        }
        if !(sigma.is_finite() && sigma > 0.0) {
            return Err(DistError::bad_param("sigma", "must be finite and positive"));
        }
        Ok(Gaussian { mu, sigma })
    }

    /// The standard normal `N(0, 1)`.
    pub fn standard() -> Self {
        Gaussian {
            mu: 0.0,
            sigma: 1.0,
        }
    }

    /// The mean parameter μ.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// The standard-deviation parameter σ.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }
}

impl ContinuousDistribution for Gaussian {
    fn name(&self) -> String {
        format!("Gaussian(mu={}, sigma={})", self.mu, self.sigma)
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        self.mu + self.sigma * sample_standard_normal(rng)
    }

    fn pdf(&self, x: f64) -> f64 {
        normal_pdf((x - self.mu) / self.sigma) / self.sigma
    }

    fn cdf(&self, x: f64) -> f64 {
        normal_cdf((x - self.mu) / self.sigma)
    }

    fn quantile(&self, p: f64) -> f64 {
        self.mu + self.sigma * inverse_normal_cdf(p)
    }

    fn mean(&self) -> f64 {
        self.mu
    }

    fn variance(&self) -> f64 {
        self.sigma * self.sigma
    }

    fn central_moment(&self, k: u32) -> f64 {
        // E|Z|^k = 2^{k/2} Γ((k+1)/2)/√π, then scale by σ^k.
        let kf = k as f64;
        let log_abs_moment =
            0.5 * kf * (2.0f64).ln() + ln_gamma((kf + 1.0) / 2.0) - 0.5 * std::f64::consts::PI.ln();
        self.sigma.powi(k as i32) * log_abs_moment.exp()
    }

    fn phi(&self, beta: f64) -> f64 {
        assert!(beta > 0.0 && beta < 1.0);
        // Highest-density interval is centered at μ by symmetry+unimodality.
        2.0 * self.sigma * inverse_normal_cdf((1.0 + beta) / 2.0)
    }
}

#[cfg(test)]
// Exact `==` on f64 is deliberate in tests: they pin bit-identical
// outputs (DESIGN.md §5), so an epsilon tolerance would weaken them.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_validates() {
        assert!(Gaussian::new(0.0, 0.0).is_err());
        assert!(Gaussian::new(0.0, -1.0).is_err());
        assert!(Gaussian::new(f64::NAN, 1.0).is_err());
        assert!(Gaussian::new(5.0, 2.0).is_ok());
    }

    #[test]
    fn moments_match_formulas() {
        let g = Gaussian::new(3.0, 2.0).unwrap();
        assert_eq!(g.mean(), 3.0);
        assert_eq!(g.variance(), 4.0);
        // μ₂ = σ², μ₄ = 3σ⁴.
        assert!((g.central_moment(2) - 4.0).abs() < 1e-10);
        assert!((g.central_moment(4) - 48.0).abs() < 1e-8);
        // μ₆ = 15 σ⁶ = 15·64
        assert!((g.central_moment(6) - 960.0).abs() < 1e-6);
        // Odd absolute moment: E|X−μ| = σ√(2/π).
        let expected = 2.0 * (2.0 / std::f64::consts::PI).sqrt();
        assert!((g.central_moment(1) - expected).abs() < 1e-10);
    }

    #[test]
    fn cdf_quantile_roundtrip() {
        let g = Gaussian::new(-1.0, 0.5).unwrap();
        for i in 1..100 {
            let p = i as f64 / 100.0;
            let x = g.quantile(p);
            assert!((g.cdf(x) - p).abs() < 1e-10);
        }
    }

    #[test]
    fn phi_matches_analytic() {
        let g = Gaussian::new(0.0, 2.0).unwrap();
        let beta = 1.0 / 16.0;
        let analytic = g.phi(beta);
        // Sanity: mass of the centered interval is exactly β.
        let half = analytic / 2.0;
        let mass = g.cdf(half) - g.cdf(-half);
        assert!((mass - beta).abs() < 1e-10);
        // Numeric default (through a helper struct would be circular); at
        // least confirm ϕ(1/2) ≈ IQR.
        assert!((g.phi(0.5) - g.iqr()).abs() < 1e-9);
    }

    #[test]
    fn sample_moments_match() {
        let g = Gaussian::new(10.0, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let s = g.sample_vec(&mut rng, 200_000);
        let mean = s.iter().sum::<f64>() / s.len() as f64;
        let var = s.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / s.len() as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var - 9.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn pdf_integrates_cdf() {
        let g = Gaussian::new(1.0, 1.5).unwrap();
        let numeric = crate::numeric::adaptive_simpson(|x| g.pdf(x), -20.0, 2.5, 1e-10);
        assert!((numeric - g.cdf(2.5)).abs() < 1e-8);
    }

    #[test]
    fn iqr_formula() {
        let g = Gaussian::new(0.0, 1.0).unwrap();
        assert!((g.iqr() - 1.3489795003921634).abs() < 1e-9);
    }
}
