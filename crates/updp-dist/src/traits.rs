//! The [`ContinuousDistribution`] trait: samplers plus ground truth.
//!
//! Every experiment in this repository compares a private estimate to the
//! *true* parameter of the data distribution, so the trait exposes not
//! only sampling but every functional the paper's bounds are stated in:
//! mean, variance, central moments `μ_k`, `IQR`, the highest-density-width
//! `ϕ(β)` (Section 2.1), the quartile-density `θ(κ)` (Section 6), and the
//! `(m, β)`-statistical width `γ(m, β)` (Section 2.1).
//!
//! Default implementations derive `ϕ`, `θ`, and `γ` numerically from the
//! CDF/quantile functions; distributions override them only when an exact
//! closed form exists.

use crate::numeric::golden_section_min;
use rand::RngCore;

/// A continuous probability distribution over ℝ with full ground truth.
///
/// Object safe: experiments hold `Box<dyn ContinuousDistribution>`.
pub trait ContinuousDistribution: Send + Sync {
    /// Human-readable name with parameters, e.g. `Gaussian(μ=0, σ=1)`.
    fn name(&self) -> String;

    /// Draws one sample.
    fn sample(&self, rng: &mut dyn RngCore) -> f64;

    /// Probability density `f(x)`.
    fn pdf(&self, x: f64) -> f64;

    /// Cumulative distribution `F(x)`.
    fn cdf(&self, x: f64) -> f64;

    /// Quantile function `F⁻¹(p)` for `p ∈ (0, 1)`.
    fn quantile(&self, p: f64) -> f64;

    /// The statistical mean `μ_P`. `NaN` if undefined (Cauchy).
    fn mean(&self) -> f64;

    /// The statistical variance `σ²_P`. `∞` if undefined.
    fn variance(&self) -> f64;

    /// The k-th (absolute) central moment `μ_k = E[|X − μ|^k]`, exactly as
    /// defined in Section 2.1. Returns `∞` when the moment diverges and
    /// `NaN` when the mean itself is undefined.
    ///
    /// Default: quantile-domain quadrature via
    /// [`numeric_central_moment`]; distributions with closed forms
    /// override it.
    fn central_moment(&self, k: u32) -> f64 {
        numeric_central_moment(self, k)
    }

    /// Standard deviation `σ_P`.
    fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Interquartile range `F⁻¹(3/4) − F⁻¹(1/4)`.
    fn iqr(&self) -> f64 {
        self.quantile(0.75) - self.quantile(0.25)
    }

    /// Draws `n` i.i.d. samples.
    fn sample_vec(&self, rng: &mut dyn RngCore, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }

    /// The width of the highest-density region at level β (Section 2.1):
    /// `ϕ(β) = inf { a₂ − a₁ : ∫_{a₁}^{a₂} f = β }`.
    ///
    /// Default: coarse grid over the left endpoint's probability `p`
    /// followed by golden-section refinement of
    /// `w(p) = F⁻¹(p + β) − F⁻¹(p)`. Exact for unimodal densities and a
    /// tight approximation for the mixtures used in experiments.
    fn phi(&self, beta: f64) -> f64 {
        assert!(beta > 0.0 && beta < 1.0, "beta must be in (0,1)");
        let width = |p: f64| self.quantile(p + beta) - self.quantile(p);
        let eps = 1e-9;
        let grid = 256;
        let hi = 1.0 - beta - eps;
        if hi <= eps {
            return width(eps);
        }
        let mut best_p = eps;
        let mut best_w = f64::INFINITY;
        for i in 0..=grid {
            let p = eps + (hi - eps) * i as f64 / grid as f64;
            let w = width(p);
            if w < best_w {
                best_w = w;
                best_p = p;
            }
        }
        let cell = (hi - eps) / grid as f64;
        let lo_p = (best_p - cell).max(eps);
        let hi_p = (best_p + cell).min(hi);
        let p = golden_section_min(width, lo_p, hi_p, 1e-12);
        width(p).min(best_w)
    }

    /// The quartile-neighborhood density `θ(κ)` (Section 6): the smallest
    /// average density over the four width-κ intervals flanking
    /// `F⁻¹(1/4)` and `F⁻¹(3/4)`.
    fn theta(&self, kappa: f64) -> f64 {
        assert!(kappa > 0.0, "kappa must be positive");
        let q1 = self.quantile(0.25);
        let q3 = self.quantile(0.75);
        let mass = |a: f64, b: f64| (self.cdf(b) - self.cdf(a)).max(0.0);
        let m = [
            mass(q1 - kappa, q1),
            mass(q1, q1 + kappa),
            mass(q3 - kappa, q3),
            mass(q3, q3 + kappa),
        ];
        m.iter().cloned().fold(f64::INFINITY, f64::min) / kappa
    }

    /// The `(m, β)`-statistical width `γ(m, β)` (Section 2.1): the
    /// smallest λ such that `Pr[γ(D) ≥ λ] ≤ β` for `D ~ P^m`.
    ///
    /// Default: the union-bound surrogate
    /// `F⁻¹(1 − β/(2m)) − F⁻¹(β/(2m))`, which upper-bounds the true
    /// width and matches its asymptotics — exactly how the paper itself
    /// relaxes `γ(εn)` when simplifying Theorem 4.5 for specific families.
    fn statistical_width(&self, m: usize, beta: f64) -> f64 {
        assert!(m >= 1);
        assert!(beta > 0.0 && beta < 1.0);
        let p = (beta / (2.0 * m as f64)).max(1e-300);
        self.quantile(1.0 - p) - self.quantile(p)
    }
}

/// Quantile-domain quadrature for `μ_k = E[|X − μ|^k] =
/// ∫₀¹ |F⁻¹(p) − μ|^k dp`.
///
/// Shared by the trait default and by overrides that only special-case
/// divergent moments. Accurate for distributions whose k-th moment exists;
/// heavy-tailed distributions must override with `∞` for divergent k.
pub fn numeric_central_moment<D: ContinuousDistribution + ?Sized>(dist: &D, k: u32) -> f64 {
    let mu = dist.mean();
    if !mu.is_finite() {
        return f64::NAN;
    }
    let eps = 1e-12;
    crate::numeric::adaptive_simpson(
        |p| {
            (dist.quantile(p.clamp(eps, 1.0 - eps)) - mu)
                .abs()
                .powi(k as i32)
        },
        eps,
        1.0 - eps,
        1e-10,
    )
}

/// Blanket helpers available on any `&dyn ContinuousDistribution`.
impl dyn ContinuousDistribution + '_ {
    /// `E[(X − x)·1{X < x}]` — the lower truncation bias `E[X < x]` from
    /// Section 2.1, computed by quadrature over the quantile domain:
    /// `∫₀^{F(x)} (F⁻¹(p) − x) dp`.
    pub fn lower_truncation_bias(&self, x: f64) -> f64 {
        let fx = self.cdf(x);
        if fx <= 0.0 {
            return 0.0;
        }
        crate::numeric::adaptive_simpson(
            |p| self.quantile(p.clamp(1e-12, 1.0 - 1e-12)) - x,
            1e-12,
            fx.min(1.0 - 1e-12),
            1e-10,
        )
    }

    /// `E[(X − x)·1{X > x}]` — the upper truncation bias `E[X > x]`.
    pub fn upper_truncation_bias(&self, x: f64) -> f64 {
        let fx = self.cdf(x);
        if fx >= 1.0 {
            return 0.0;
        }
        crate::numeric::adaptive_simpson(
            |p| self.quantile(p.clamp(1e-12, 1.0 - 1e-12)) - x,
            fx.max(1e-12),
            1.0 - 1e-12,
            1e-10,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gaussian::Gaussian;
    use crate::uniform::Uniform;

    #[test]
    fn default_iqr_matches_quantiles() {
        let g = Gaussian::new(0.0, 1.0).unwrap();
        let iqr = g.iqr();
        // Gaussian IQR = 2·Φ⁻¹(0.75)·σ ≈ 1.3489795
        assert!((iqr - 1.3489795003921634).abs() < 1e-9, "iqr = {iqr}");
    }

    #[test]
    fn default_phi_for_uniform_is_beta_times_width() {
        // Uniform density is flat: any interval of mass β has width β(b−a).
        let u = Uniform::new(0.0, 10.0).unwrap();
        let phi = u.phi(1.0 / 16.0);
        assert!((phi - 10.0 / 16.0).abs() < 1e-6, "phi = {phi}");
    }

    #[test]
    fn default_theta_for_uniform_is_density() {
        let u = Uniform::new(0.0, 4.0).unwrap();
        // density = 0.25 everywhere, so θ(κ) = 0.25 for small κ.
        let theta = u.theta(0.1);
        assert!((theta - 0.25).abs() < 1e-9, "theta = {theta}");
    }

    #[test]
    fn statistical_width_grows_with_m() {
        let g = Gaussian::new(0.0, 1.0).unwrap();
        let w10 = g.statistical_width(10, 0.1);
        let w1000 = g.statistical_width(1000, 0.1);
        assert!(w1000 > w10);
        // Gaussian: γ(m, β) ~ 2√(2 ln(2m/β)) grows like √log m.
        assert!(w1000 < 2.0 * w10, "growth should be slow: {w10} -> {w1000}");
    }

    #[test]
    fn truncation_biases_sum_to_zero_at_mean_for_symmetric() {
        let g = Gaussian::new(0.0, 1.0).unwrap();
        let d: &dyn ContinuousDistribution = &g;
        let lower = d.lower_truncation_bias(0.0);
        let upper = d.upper_truncation_bias(0.0);
        // E[X<0] = −E[|X|]/2 = −1/√(2π); upper is +1/√(2π).
        let expected = 1.0 / (2.0 * std::f64::consts::PI).sqrt();
        assert!((upper - expected).abs() < 1e-6, "upper = {upper}");
        assert!((lower + expected).abs() < 1e-6, "lower = {lower}");
    }

    #[test]
    fn truncation_bias_vanishes_in_far_tails() {
        let g = Gaussian::new(0.0, 1.0).unwrap();
        let d: &dyn ContinuousDistribution = &g;
        assert!(d.upper_truncation_bias(10.0).abs() < 1e-8);
        assert!(d.lower_truncation_bias(-10.0).abs() < 1e-8);
    }
}
