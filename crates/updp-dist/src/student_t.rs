//! The (location–scale) Student-t distribution `t_ν(loc, scale)`.
//!
//! Symmetric heavy tails with `μ_k < ∞` iff `k < ν`: the symmetric
//! counterpart of Pareto for the heavy-tailed mean/variance experiments.
//! The CDF uses the regularized incomplete beta function; the quantile is
//! obtained by monotone bracketing + bisection.

use crate::error::{DistError, Result};
use crate::numeric::monotone_root;
use crate::sampling::{sample_chi_squared, sample_standard_normal};
use crate::special::{ln_gamma, regularized_incomplete_beta};
use crate::traits::ContinuousDistribution;
use rand::RngCore;

/// A Student-t distribution with `nu` degrees of freedom, location, and
/// scale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StudentT {
    nu: f64,
    loc: f64,
    scale: f64,
}

impl StudentT {
    /// Creates `t_nu(loc, scale)`; `nu`, `scale` finite positive, `loc`
    /// finite.
    pub fn new(nu: f64, loc: f64, scale: f64) -> Result<Self> {
        if !(nu.is_finite() && nu > 0.0) {
            return Err(DistError::bad_param("nu", "must be finite and positive"));
        }
        if !loc.is_finite() {
            return Err(DistError::bad_param("loc", "must be finite"));
        }
        if !(scale.is_finite() && scale > 0.0) {
            return Err(DistError::bad_param("scale", "must be finite and positive"));
        }
        Ok(StudentT { nu, loc, scale })
    }

    /// Degrees of freedom ν.
    pub fn nu(&self) -> f64 {
        self.nu
    }

    /// Standard-t CDF at `t` via `I_x(ν/2, 1/2)`.
    fn std_cdf(&self, t: f64) -> f64 {
        let x = self.nu / (self.nu + t * t);
        let half_tail = 0.5 * regularized_incomplete_beta(self.nu / 2.0, 0.5, x);
        if t >= 0.0 {
            1.0 - half_tail
        } else {
            half_tail
        }
    }
}

impl ContinuousDistribution for StudentT {
    fn name(&self) -> String {
        format!(
            "StudentT(nu={}, loc={}, scale={})",
            self.nu, self.loc, self.scale
        )
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        let z = sample_standard_normal(rng);
        let v = sample_chi_squared(rng, self.nu).max(f64::MIN_POSITIVE);
        self.loc + self.scale * z / (v / self.nu).sqrt()
    }

    fn pdf(&self, x: f64) -> f64 {
        let t = (x - self.loc) / self.scale;
        let ln_norm = ln_gamma((self.nu + 1.0) / 2.0)
            - ln_gamma(self.nu / 2.0)
            - 0.5 * (self.nu * std::f64::consts::PI).ln();
        let ln_kernel = -(self.nu + 1.0) / 2.0 * (1.0 + t * t / self.nu).ln();
        (ln_norm + ln_kernel).exp() / self.scale
    }

    fn cdf(&self, x: f64) -> f64 {
        self.std_cdf((x - self.loc) / self.scale)
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0);
        if (p - 0.5).abs() < 1e-15 {
            return self.loc;
        }
        let f = |x: f64| self.cdf(x) - p;
        monotone_root(f, self.loc, self.scale, 1e-12 * self.scale.max(1.0))
    }

    fn mean(&self) -> f64 {
        if self.nu > 1.0 {
            self.loc
        } else {
            f64::NAN
        }
    }

    fn variance(&self) -> f64 {
        if self.nu > 2.0 {
            self.scale * self.scale * self.nu / (self.nu - 2.0)
        } else {
            f64::INFINITY
        }
    }

    fn central_moment(&self, k: u32) -> f64 {
        let kf = k as f64;
        if kf >= self.nu {
            return f64::INFINITY;
        }
        // E|T|^k = ν^{k/2}·Γ((k+1)/2)·Γ((ν−k)/2) / (√π·Γ(ν/2)), 0 < k < ν.
        let ln_m =
            0.5 * kf * self.nu.ln() + ln_gamma((kf + 1.0) / 2.0) + ln_gamma((self.nu - kf) / 2.0)
                - 0.5 * std::f64::consts::PI.ln()
                - ln_gamma(self.nu / 2.0);
        self.scale.powi(k as i32) * ln_m.exp()
    }
}

#[cfg(test)]
// Exact `==` on f64 is deliberate in tests: they pin bit-identical
// outputs (DESIGN.md §5), so an epsilon tolerance would weaken them.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_validates() {
        assert!(StudentT::new(0.0, 0.0, 1.0).is_err());
        assert!(StudentT::new(3.0, 0.0, 0.0).is_err());
        assert!(StudentT::new(3.0, f64::NAN, 1.0).is_err());
        assert!(StudentT::new(3.0, 0.0, 1.0).is_ok());
    }

    #[test]
    fn cdf_reference_values() {
        // t with ν=1 is standard Cauchy: F(1) = 3/4.
        let t1 = StudentT::new(1.0, 0.0, 1.0).unwrap();
        assert!((t1.cdf(1.0) - 0.75).abs() < 1e-10);
        assert!((t1.cdf(0.0) - 0.5).abs() < 1e-12);
        // ν=2: F(t) = 1/2 + t/(2√(2+t²)); F(1) ≈ 0.7886751
        let t2 = StudentT::new(2.0, 0.0, 1.0).unwrap();
        assert!((t2.cdf(1.0) - 0.7886751345948129).abs() < 1e-10);
    }

    #[test]
    fn cdf_quantile_roundtrip() {
        let t = StudentT::new(4.0, 2.0, 3.0).unwrap();
        for i in 1..50 {
            let p = i as f64 / 50.0;
            let x = t.quantile(p);
            assert!((t.cdf(x) - p).abs() < 1e-9, "p = {p}");
        }
    }

    #[test]
    fn variance_formula_and_divergence() {
        let t = StudentT::new(5.0, 0.0, 2.0).unwrap();
        assert!((t.variance() - 4.0 * 5.0 / 3.0).abs() < 1e-12);
        let t2 = StudentT::new(2.0, 0.0, 1.0).unwrap();
        assert_eq!(t2.variance(), f64::INFINITY);
        let t1 = StudentT::new(1.0, 0.0, 1.0).unwrap();
        assert!(t1.mean().is_nan());
    }

    #[test]
    fn central_moments_match_known_formulas() {
        // ν = 5: μ₂ = ν/(ν−2) = 5/3; μ₄ = 3ν²/((ν−2)(ν−4)) = 25.
        let t = StudentT::new(5.0, 0.0, 1.0).unwrap();
        assert!((t.central_moment(2) - 5.0 / 3.0).abs() < 1e-9);
        assert!((t.central_moment(4) - 25.0).abs() < 1e-7);
        assert_eq!(t.central_moment(5), f64::INFINITY);
        assert_eq!(t.central_moment(6), f64::INFINITY);
    }

    #[test]
    fn pdf_integrates_to_cdf() {
        let t = StudentT::new(3.0, 0.0, 1.0).unwrap();
        let numeric = crate::numeric::adaptive_simpson(|x| t.pdf(x), -200.0, 1.5, 1e-10);
        assert!((numeric - t.cdf(1.5)).abs() < 1e-6);
    }

    #[test]
    fn sample_moments_match() {
        let t = StudentT::new(6.0, 1.0, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let s = t.sample_vec(&mut rng, 300_000);
        let mean = s.iter().sum::<f64>() / s.len() as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
        let var = s.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / s.len() as f64;
        assert!(
            (var - t.variance()).abs() / t.variance() < 0.1,
            "var {var} vs {}",
            t.variance()
        );
    }
}
