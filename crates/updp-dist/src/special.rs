//! Hand-rolled special functions.
//!
//! No external statistics crates are on the approved dependency list, so
//! the error function family, log-gamma, and the regularized incomplete
//! beta function are implemented here from primary sources:
//!
//! * `erf` — Maclaurin series for `|x| ≤ 2` (alternating, ≤ 2 digits of
//!   cancellation), complementary continued fraction (modified Lentz) for
//!   `|x| > 2`. Near machine precision across the range.
//! * `inverse_normal_cdf` — Acklam's rational approximation (relative
//!   error ≈ 1.15e−9) followed by one Halley refinement step against the
//!   exact CDF, giving ~1e−15 relative accuracy.
//! * `ln_gamma` — Lanczos approximation (g = 7, 9 coefficients).
//! * `regularized_incomplete_beta` — continued fraction per Numerical
//!   Recipes `betacf`, with the standard symmetry split; used by the
//!   Student-t CDF.
//!
//! Property tests in this module pin each function against published
//! reference values and internal identities (e.g. `erf(x) + erfc(x) = 1`,
//! `I_x(a,b) = 1 − I_{1−x}(b,a)`).

// Published approximation coefficients are quoted verbatim from their
// sources, beyond f64 precision where the source gives more digits.
#![allow(clippy::excessive_precision)]

/// √π, used by the error-function series.
const SQRT_PI: f64 = 1.772_453_850_905_516;

/// The error function `erf(x) = (2/√π) ∫₀ˣ e^{−t²} dt`.
pub fn erf(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    let ax = x.abs();
    if ax <= 2.0 {
        erf_series(x)
    } else {
        let tail = erfc_cf(ax);
        let v = 1.0 - tail;
        if x >= 0.0 {
            v
        } else {
            -v
        }
    }
}

/// The complementary error function `erfc(x) = 1 − erf(x)`.
///
/// Computed directly from the continued fraction for large `x` so that
/// tiny tail probabilities (down to ~1e−300) keep full relative accuracy.
pub fn erfc(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    if x > 2.0 {
        erfc_cf(x)
    } else if x < -2.0 {
        2.0 - erfc_cf(-x)
    } else {
        1.0 - erf_series(x)
    }
}

/// Maclaurin series for erf, accurate for `|x| ≤ 2`.
fn erf_series(x: f64) -> f64 {
    let x2 = x * x;
    let mut term = x;
    let mut sum = x;
    // term_{n+1} = term_n · (−x²)·(2n+1) / ((n+1)(2n+3))
    for n in 0..120u32 {
        let nf = n as f64;
        term *= -x2 * (2.0 * nf + 1.0) / ((nf + 1.0) * (2.0 * nf + 3.0));
        let new = sum + term;
        // Exact equality is the convergence criterion: the series has
        // converged precisely when the next term no longer moves the
        // f64 partial sum. A tolerance would stop early and change the
        // released bits.
        #[allow(clippy::float_cmp)]
        if new == sum {
            break;
        }
        sum = new;
    }
    2.0 / SQRT_PI * sum
}

/// Continued fraction for erfc, valid for `x ≥ 2` (modified Lentz).
///
/// `erfc(x) = e^{−x²}/√π · 1/(x + (1/2)/(x + 1/(x + (3/2)/(x + …))))`
fn erfc_cf(x: f64) -> f64 {
    debug_assert!(x >= 2.0);
    const TINY: f64 = 1e-300;
    const EPS: f64 = 1e-16;
    let mut f = x;
    let mut c = x;
    let mut d = 0.0f64;
    for i in 1..200u32 {
        let a = i as f64 / 2.0;
        // b = x for all levels in this CF layout.
        d = x + a * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = x + a / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = c * d;
        f *= delta;
        if (delta - 1.0).abs() < EPS {
            break;
        }
    }
    (-x * x).exp() / SQRT_PI / f
}

/// Standard normal CDF `Φ(x)`.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Standard normal density `φ(x)`.
pub fn normal_pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Inverse standard normal CDF `Φ⁻¹(p)` for `p ∈ (0, 1)`.
///
/// Acklam's rational approximation refined by one Halley step.
pub fn inverse_normal_cdf(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "probability must be in (0,1), got {p}");
    // Coefficients for Acklam's approximation.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383577518672690e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement step: u = (Φ(x) − p)/φ(x);
    // x ← x − u / (1 + x·u/2).
    let e = normal_cdf(x) - p;
    let u = e / normal_pdf(x);
    x - u / (1.0 + x * u / 2.0)
}

/// Inverse error function `erf⁻¹(y)` for `y ∈ (−1, 1)`.
pub fn erf_inv(y: f64) -> f64 {
    assert!(y > -1.0 && y < 1.0, "erf_inv domain is (-1,1), got {y}");
    inverse_normal_cdf((y + 1.0) / 2.0) / std::f64::consts::SQRT_2
}

/// Natural log of the gamma function, Lanczos approximation (g = 7).
pub fn ln_gamma(x: f64) -> f64 {
    const G: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1−x) = π/sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = G[0];
    let t = x + 7.5;
    for (i, &g) in G.iter().enumerate().skip(1) {
        a += g / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized incomplete beta function `I_x(a, b)` for `x ∈ [0, 1]`,
/// `a, b > 0`. Continued fraction evaluation (Numerical Recipes `betacf`)
/// with the usual symmetry split for fast convergence.
pub fn regularized_incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "shape parameters must be positive");
    assert!((0.0..=1.0).contains(&x), "x must be in [0,1], got {x}");
    // updp-lint: allow(R5, reason="endpoint of the beta integral: I(0) = 0 holds exactly only at x == 0.0, and ln(x) below needs x > 0")
    if x == 0.0 {
        return 0.0;
    }
    #[allow(clippy::float_cmp)]
    // updp-lint: allow(R5, reason="endpoint of the beta integral: I(1) = 1 holds exactly only at x == 1.0, and ln(1-x) below needs x < 1")
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Continued fraction kernel for the incomplete beta function.
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    const EPS: f64 = 1e-15;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0f64;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..300u32 {
        let mf = m as f64;
        let m2 = 2.0 * mf;
        // Even step.
        let aa = mf * (b - mf) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + mf) * (qab + mf) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Double factorial `n!! = n·(n−2)·(n−4)⋯` with `0!! = (−1)!! = 1`.
pub fn double_factorial(n: i64) -> f64 {
    if n <= 0 {
        return 1.0;
    }
    let mut acc = 1.0f64;
    let mut k = n;
    while k > 0 {
        acc *= k as f64;
        k -= 2;
    }
    acc
}

/// `n!` as f64 (exact for `n ≤ 22`, then best f64 approximation).
pub fn factorial(n: u32) -> f64 {
    (1..=n).fold(1.0f64, |acc, k| acc * k as f64)
}

/// `C(n, k)` as f64.
pub fn binomial(n: u32, k: u32) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut acc = 1.0f64;
    for i in 0..k {
        acc = acc * (n - i) as f64 / (i + 1) as f64;
    }
    acc
}

#[cfg(test)]
// Exact `==` on f64 is deliberate in tests: they pin bit-identical
// outputs (DESIGN.md �5), so an epsilon tolerance would weaken them.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        let scale = a.abs().max(b.abs()).max(1e-300);
        assert!(
            (a - b).abs() / scale < tol || (a - b).abs() < tol,
            "{a} != {b} (tol {tol})"
        );
    }

    #[test]
    fn erf_reference_values() {
        // Reference values from Abramowitz & Stegun / mpmath.
        assert_close(erf(0.0), 0.0, 1e-15);
        assert_close(erf(0.5), 0.5204998778130465, 1e-12);
        assert_close(erf(1.0), 0.8427007929497149, 1e-12);
        assert_close(erf(2.0), 0.9953222650189527, 1e-12);
        assert_close(erf(3.0), 0.9999779095030014, 1e-12);
        assert_close(erf(-1.0), -0.8427007929497149, 1e-12);
    }

    #[test]
    fn erfc_deep_tail_keeps_relative_accuracy() {
        // erfc(5) = 1.5374597944280349e-12; erfc(10) = 2.0884875837625448e-45
        assert_close(erfc(5.0), 1.5374597944280349e-12, 1e-10);
        assert_close(erfc(10.0), 2.0884875837625448e-45, 1e-10);
        assert_close(erfc(20.0), 5.3958656116079005e-176, 1e-9);
    }

    #[test]
    fn erf_plus_erfc_is_one() {
        for i in -60..=60 {
            let x = i as f64 / 10.0;
            assert_close(erf(x) + erfc(x), 1.0, 1e-13);
        }
    }

    #[test]
    fn erf_is_odd() {
        for i in 1..50 {
            let x = i as f64 / 7.0;
            assert_close(erf(-x), -erf(x), 1e-14);
        }
    }

    #[test]
    fn normal_cdf_reference_values() {
        assert_close(normal_cdf(0.0), 0.5, 1e-15);
        assert_close(normal_cdf(1.0), 0.8413447460685429, 1e-12);
        assert_close(normal_cdf(-1.96), 0.024997895148220435, 1e-10);
        assert_close(normal_cdf(3.0), 0.9986501019683699, 1e-12);
    }

    #[test]
    fn inverse_normal_cdf_round_trips() {
        for i in 1..999 {
            let p = i as f64 / 1000.0;
            let x = inverse_normal_cdf(p);
            assert_close(normal_cdf(x), p, 1e-12);
        }
    }

    #[test]
    fn inverse_normal_cdf_extreme_tails() {
        for p in [1e-10, 1e-8, 1e-4, 1.0 - 1e-4, 1.0 - 1e-8] {
            let x = inverse_normal_cdf(p);
            assert_close(normal_cdf(x), p, 1e-9);
        }
    }

    #[test]
    fn erf_inv_round_trips() {
        for i in -9..=9 {
            let y = i as f64 / 10.0;
            if y.abs() < 1e-12 {
                continue;
            }
            assert_close(erf(erf_inv(y)), y, 1e-12);
        }
    }

    #[test]
    fn ln_gamma_reference_values() {
        assert_close(ln_gamma(1.0), 0.0, 1e-13);
        assert_close(ln_gamma(2.0), 0.0, 1e-13);
        assert_close(ln_gamma(0.5), 0.5723649429247001, 1e-12); // ln √π
        assert_close(ln_gamma(5.0), 24.0f64.ln(), 1e-12);
        // Γ(10.5) = 9.5·8.5·…·0.5·√π ⇒ ln Γ(10.5) ≈ 13.94062521940376
        assert_close(ln_gamma(10.5), 13.940625219403763, 1e-12);
    }

    #[test]
    fn ln_gamma_recurrence() {
        // ln Γ(x+1) = ln x + ln Γ(x)
        for i in 1..40 {
            let x = i as f64 / 3.0;
            assert_close(ln_gamma(x + 1.0), x.ln() + ln_gamma(x), 1e-11);
        }
    }

    #[test]
    fn incomplete_beta_boundaries_and_symmetry() {
        assert_eq!(regularized_incomplete_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(regularized_incomplete_beta(2.0, 3.0, 1.0), 1.0);
        for &(a, b, x) in &[(2.0, 3.0, 0.3), (0.5, 0.5, 0.7), (10.0, 2.0, 0.9)] {
            let lhs = regularized_incomplete_beta(a, b, x);
            let rhs = 1.0 - regularized_incomplete_beta(b, a, 1.0 - x);
            assert_close(lhs, rhs, 1e-12);
        }
    }

    #[test]
    fn incomplete_beta_reference_values() {
        // I_x(1,1) = x; I_x(2,1) = x²; I_x(1,2) = 1−(1−x)² = 2x−x².
        for i in 1..10 {
            let x = i as f64 / 10.0;
            assert_close(regularized_incomplete_beta(1.0, 1.0, x), x, 1e-12);
            assert_close(regularized_incomplete_beta(2.0, 1.0, x), x * x, 1e-12);
            assert_close(
                regularized_incomplete_beta(1.0, 2.0, x),
                2.0 * x - x * x,
                1e-12,
            );
        }
        // mpmath: betainc(3, 5, 0, 0.4, regularized=True)
        assert_close(regularized_incomplete_beta(3.0, 5.0, 0.4), 0.580_096, 1e-5);
    }

    #[test]
    fn double_factorial_values() {
        assert_eq!(double_factorial(-1), 1.0);
        assert_eq!(double_factorial(0), 1.0);
        assert_eq!(double_factorial(1), 1.0);
        assert_eq!(double_factorial(5), 15.0);
        assert_eq!(double_factorial(6), 48.0);
        assert_eq!(double_factorial(7), 105.0);
    }

    #[test]
    fn factorial_and_binomial() {
        assert_eq!(factorial(0), 1.0);
        assert_eq!(factorial(5), 120.0);
        assert_eq!(binomial(10, 3), 120.0);
        assert_eq!(binomial(4, 0), 1.0);
        assert_eq!(binomial(3, 5), 0.0);
        assert_eq!(binomial(52, 5), 2_598_960.0);
    }
}
