//! The exponential distribution `Exp(λ)`.
//!
//! Asymmetric: the truncation biases `E[X < μ−ξ]` and `E[X > μ+ξ]` from
//! Theorem 4.5 do *not* cancel, making it the canonical workload for
//! exercising the bias terms in the statistical mean estimator.

use crate::error::{DistError, Result};
use crate::sampling::sample_standard_exponential;
use crate::traits::{numeric_central_moment, ContinuousDistribution};
use rand::RngCore;

/// An exponential distribution with rate `lambda` (mean `1/lambda`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    lambda: f64,
}

impl Exponential {
    /// Creates `Exp(lambda)`; `lambda` must be finite and positive.
    pub fn new(lambda: f64) -> Result<Self> {
        if !(lambda.is_finite() && lambda > 0.0) {
            return Err(DistError::bad_param(
                "lambda",
                "must be finite and positive",
            ));
        }
        Ok(Exponential { lambda })
    }

    /// The rate parameter λ.
    pub fn rate(&self) -> f64 {
        self.lambda
    }
}

impl ContinuousDistribution for Exponential {
    fn name(&self) -> String {
        format!("Exponential(lambda={})", self.lambda)
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        sample_standard_exponential(rng) / self.lambda
    }

    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            self.lambda * (-self.lambda * x).exp()
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            1.0 - (-self.lambda * x).exp()
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0);
        -(1.0 - p).ln() / self.lambda
    }

    fn mean(&self) -> f64 {
        1.0 / self.lambda
    }

    fn variance(&self) -> f64 {
        1.0 / (self.lambda * self.lambda)
    }

    fn central_moment(&self, k: u32) -> f64 {
        match k {
            1 => 2.0 / (std::f64::consts::E * self.lambda), // E|X−μ| = 2/(eλ)
            2 => self.variance(),
            _ => numeric_central_moment(self, k),
        }
    }

    fn phi(&self, beta: f64) -> f64 {
        assert!(beta > 0.0 && beta < 1.0);
        // Density is maximal at 0 and decreasing, so the narrowest
        // mass-β interval starts at 0: F(w) = β ⇒ w = −ln(1−β)/λ.
        -(1.0 - beta).ln() / self.lambda
    }
}

#[cfg(test)]
// Exact `==` on f64 is deliberate in tests: they pin bit-identical
// outputs (DESIGN.md §5), so an epsilon tolerance would weaken them.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_validates() {
        assert!(Exponential::new(0.0).is_err());
        assert!(Exponential::new(-1.0).is_err());
        assert!(Exponential::new(2.0).is_ok());
    }

    #[test]
    fn moments() {
        let e = Exponential::new(0.5).unwrap();
        assert_eq!(e.mean(), 2.0);
        assert_eq!(e.variance(), 4.0);
        // μ₃ (absolute) numerically; signed third central moment is 2/λ³ = 16,
        // absolute is larger. μ₄ = 9/λ⁴ = 144.
        let mu4 = e.central_moment(4);
        assert!((mu4 - 144.0).abs() / 144.0 < 1e-4, "mu4 = {mu4}");
    }

    #[test]
    fn mean_absolute_deviation_formula() {
        let e = Exponential::new(3.0).unwrap();
        let analytic = 2.0 / (std::f64::consts::E * 3.0);
        let numeric = numeric_central_moment(&e, 1);
        assert!((analytic - numeric).abs() < 1e-6);
    }

    #[test]
    fn cdf_quantile_roundtrip() {
        let e = Exponential::new(1.5).unwrap();
        for i in 1..100 {
            let p = i as f64 / 100.0;
            assert!((e.cdf(e.quantile(p)) - p).abs() < 1e-12);
        }
    }

    #[test]
    fn phi_mass_is_beta() {
        let e = Exponential::new(2.0).unwrap();
        let beta = 1.0 / 16.0;
        let w = e.phi(beta);
        assert!((e.cdf(w) - beta).abs() < 1e-12);
    }

    #[test]
    fn truncation_bias_is_asymmetric() {
        let e = Exponential::new(1.0).unwrap();
        let d: &dyn ContinuousDistribution = &e;
        let xi = 3.0;
        let lower = d.lower_truncation_bias(e.mean() - xi); // below 0: zero mass
        let upper = d.upper_truncation_bias(e.mean() + xi);
        assert_eq!(lower, 0.0);
        assert!(upper > 0.0, "right tail bias must be positive: {upper}");
    }

    #[test]
    fn sample_mean_matches() {
        let e = Exponential::new(0.25).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let s = e.sample_vec(&mut rng, 200_000);
        let mean = s.iter().sum::<f64>() / s.len() as f64;
        assert!((mean - 4.0).abs() < 0.05, "mean {mean}");
        assert!(s.iter().all(|&x| x >= 0.0));
    }
}
