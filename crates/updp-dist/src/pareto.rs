//! The Pareto distribution `Pareto(x_m, α)`.
//!
//! The canonical heavy-tailed workload: `μ_k < ∞` iff `k < α`, which is
//! exactly the regime of Theorem 4.9 (heavy-tailed mean) and Theorem 5.5
//! (heavy-tailed variance). Choosing `α` between 2 and 4 produces data
//! with finite variance but infinite fourth moment — the "arbitrary
//! distributions" case of Section 1.1.2 where prior work's `σ_max`
//! assumption is unobtainable even non-privately.

use crate::error::{DistError, Result};
use crate::traits::{numeric_central_moment, ContinuousDistribution};
use rand::Rng;
use rand::RngCore;

/// A Pareto distribution with scale `x_m > 0` and shape `alpha > 0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    xm: f64,
    alpha: f64,
}

impl Pareto {
    /// Creates `Pareto(xm, alpha)`; both parameters must be finite and
    /// positive.
    pub fn new(xm: f64, alpha: f64) -> Result<Self> {
        if !(xm.is_finite() && xm > 0.0) {
            return Err(DistError::bad_param("xm", "must be finite and positive"));
        }
        if !(alpha.is_finite() && alpha > 0.0) {
            return Err(DistError::bad_param("alpha", "must be finite and positive"));
        }
        Ok(Pareto { xm, alpha })
    }

    /// The tail index α.
    pub fn shape(&self) -> f64 {
        self.alpha
    }

    /// Raw moment `E[X^n] = α·x_m^n/(α − n)` for `n < α`, else `∞`.
    pub fn raw_moment(&self, n: u32) -> f64 {
        let nf = n as f64;
        if nf >= self.alpha {
            f64::INFINITY
        } else {
            self.alpha * self.xm.powi(n as i32) / (self.alpha - nf)
        }
    }
}

impl ContinuousDistribution for Pareto {
    fn name(&self) -> String {
        format!("Pareto(xm={}, alpha={})", self.xm, self.alpha)
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        loop {
            let u: f64 = rng.gen();
            if u > 0.0 {
                return self.xm * u.powf(-1.0 / self.alpha);
            }
        }
    }

    fn pdf(&self, x: f64) -> f64 {
        if x < self.xm {
            0.0
        } else {
            self.alpha * self.xm.powf(self.alpha) / x.powf(self.alpha + 1.0)
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x < self.xm {
            0.0
        } else {
            1.0 - (self.xm / x).powf(self.alpha)
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0);
        self.xm * (1.0 - p).powf(-1.0 / self.alpha)
    }

    fn mean(&self) -> f64 {
        self.raw_moment(1)
    }

    fn variance(&self) -> f64 {
        if self.alpha <= 2.0 {
            f64::INFINITY
        } else {
            self.xm * self.xm * self.alpha / ((self.alpha - 1.0).powi(2) * (self.alpha - 2.0))
        }
    }

    fn central_moment(&self, k: u32) -> f64 {
        if k as f64 >= self.alpha {
            f64::INFINITY
        } else if k == 2 {
            self.variance()
        } else {
            numeric_central_moment(self, k)
        }
    }

    fn phi(&self, beta: f64) -> f64 {
        assert!(beta > 0.0 && beta < 1.0);
        // Density is decreasing on [x_m, ∞): narrowest interval starts at
        // x_m, ending at F⁻¹(β).
        self.quantile(beta) - self.xm
    }
}

#[cfg(test)]
// Exact `==` on f64 is deliberate in tests: they pin bit-identical
// outputs (DESIGN.md §5), so an epsilon tolerance would weaken them.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_validates() {
        assert!(Pareto::new(0.0, 1.0).is_err());
        assert!(Pareto::new(1.0, 0.0).is_err());
        assert!(Pareto::new(1.0, 2.5).is_ok());
    }

    #[test]
    fn moment_finiteness_boundary() {
        let p = Pareto::new(1.0, 3.0).unwrap();
        assert!(p.mean().is_finite());
        assert!(p.variance().is_finite());
        assert_eq!(p.central_moment(3), f64::INFINITY);
        assert_eq!(p.central_moment(4), f64::INFINITY);
        assert_eq!(p.raw_moment(3), f64::INFINITY);

        let heavy = Pareto::new(1.0, 1.5).unwrap();
        assert!(heavy.mean().is_finite());
        assert_eq!(heavy.variance(), f64::INFINITY);
    }

    #[test]
    fn mean_and_variance_formulas() {
        let p = Pareto::new(2.0, 3.0).unwrap();
        assert!((p.mean() - 3.0).abs() < 1e-12); // 3·2/2
        assert!((p.variance() - 3.0).abs() < 1e-12); // 4·3/(4·1)
    }

    #[test]
    fn cdf_quantile_roundtrip() {
        let p = Pareto::new(1.0, 2.0).unwrap();
        for i in 1..100 {
            let q = i as f64 / 100.0;
            assert!((p.cdf(p.quantile(q)) - q).abs() < 1e-12);
        }
    }

    #[test]
    fn samples_respect_support_and_median() {
        let p = Pareto::new(1.0, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let mut s = p.sample_vec(&mut rng, 100_001);
        assert!(s.iter().all(|&x| x >= 1.0));
        s.sort_by(f64::total_cmp);
        let median = s[50_000];
        assert!(
            (median - p.quantile(0.5)).abs() / p.quantile(0.5) < 0.02,
            "median {median}"
        );
    }

    #[test]
    fn numeric_central_moment_close_for_light_tail() {
        // α = 10: μ₂ finite and the numeric integral should match.
        let p = Pareto::new(1.0, 10.0).unwrap();
        let analytic = p.variance();
        let numeric = numeric_central_moment(&p, 2);
        assert!(
            (analytic - numeric).abs() / analytic < 1e-4,
            "analytic {analytic} vs numeric {numeric}"
        );
    }

    #[test]
    fn phi_starts_at_support_edge() {
        let p = Pareto::new(1.0, 2.0).unwrap();
        let beta = 0.25;
        let w = p.phi(beta);
        assert!((p.cdf(1.0 + w) - beta).abs() < 1e-12);
    }
}
