//! # updp-dist — distributions with ground truth
//!
//! The workload substrate for the *Universal Private Estimators*
//! reproduction. Every distribution implements
//! [`ContinuousDistribution`], which exposes both sampling and the exact
//! values of every functional the paper's bounds are stated in — mean,
//! variance, central moments `μ_k`, `IQR`, the highest-density width
//! `ϕ(β)` (Section 2.1), the quartile density `θ(κ)` (Section 6), and the
//! `(m, β)`-statistical width `γ(m, β)`.
//!
//! Families provided (chosen to cover every regime in the paper's
//! evaluation-by-theorem):
//!
//! | Family | Why it is here |
//! |---|---|
//! | [`gaussian::Gaussian`] | Theorems 4.6 & 5.3 vs [KV18]/[KLSU19] |
//! | [`uniform::Uniform`] | intro's mid-range example |
//! | [`laplace::LaplaceDist`] | light-tailed non-Gaussian control |
//! | [`exponential::Exponential`] | asymmetric truncation-bias terms |
//! | [`lognormal::LogNormal`] | skewed IQR workload |
//! | [`pareto::Pareto`] | heavy tails: Theorems 4.9 & 5.5 |
//! | [`student_t::StudentT`] | symmetric heavy tails |
//! | [`cauchy::Cauchy`] | undefined mean/variance stress test |
//! | [`mixture::GaussianMixture`] | ill-behaved spikes (`ϕ(1/16) ≪ σ`) |
//! | [`affine::Affine`] | placing μ far from 0 to break A1 baselines |
//!
//! The special functions in [`special`] are hand-rolled (no external stats
//! crates) and pinned against published reference values.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod affine;
pub mod cauchy;
pub mod error;
pub mod exponential;
pub mod gaussian;
pub mod laplace;
pub mod lognormal;
pub mod mixture;
pub mod numeric;
pub mod pareto;
pub mod sampling;
pub mod special;
pub mod student_t;
pub mod traits;
pub mod uniform;

pub use affine::Affine;
pub use cauchy::Cauchy;
pub use error::{DistError, Result};
pub use exponential::Exponential;
pub use gaussian::Gaussian;
pub use laplace::LaplaceDist;
pub use lognormal::LogNormal;
pub use mixture::GaussianMixture;
pub use pareto::Pareto;
pub use student_t::StudentT;
pub use traits::{numeric_central_moment, ContinuousDistribution};
pub use uniform::{midrange, Uniform};
