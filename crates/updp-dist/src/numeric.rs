//! Numerical building blocks: root finding, minimization, quadrature.
//!
//! These power the default (numeric) implementations of the paper-specific
//! distribution functionals `ϕ(β)`, `θ(κ)`, and quantile inversion for
//! distributions whose CDF has no closed-form inverse (Student-t,
//! mixtures).

/// Finds a root of `f` in `[a, b]` by bisection with a secant
/// acceleration (regula falsi flavor), assuming `f(a)` and `f(b)` bracket
/// a sign change. Returns the midpoint of the final bracket.
pub fn bisect_root<F: Fn(f64) -> f64>(f: F, mut a: f64, mut b: f64, tol: f64) -> f64 {
    let mut fa = f(a);
    let fb = f(b);
    assert!(
        fa * fb <= 0.0,
        "root not bracketed: f({a}) = {fa}, f({b}) = {fb}"
    );
    // updp-lint: allow(R5, reason="exact-root fast path of bisection: f(a) == 0.0 means a IS the root; near-zero values must keep bisecting toward tol")
    if fa == 0.0 {
        return a;
    }
    // updp-lint: allow(R5, reason="exact-root fast path of bisection: f(b) == 0.0 means b IS the root; near-zero values must keep bisecting toward tol")
    if fb == 0.0 {
        return b;
    }
    for _ in 0..200 {
        let m = 0.5 * (a + b);
        let fm = f(m);
        // updp-lint: allow(R5, reason="exact-root fast path of bisection: f(m) == 0.0 means m IS the root; near-zero values must keep bisecting toward tol")
        if fm == 0.0 || (b - a).abs() < tol {
            return m;
        }
        if fa * fm < 0.0 {
            b = m;
        } else {
            a = m;
            fa = fm;
        }
    }
    0.5 * (a + b)
}

/// Expands a bracket around `x0` until `f` changes sign, then bisects.
///
/// `f` must be monotone non-decreasing (true of the CDF-minus-p functions
/// this is used for). `scale0` seeds the expansion step.
pub fn monotone_root<F: Fn(f64) -> f64>(f: F, x0: f64, scale0: f64, tol: f64) -> f64 {
    let f0 = f(x0);
    // updp-lint: allow(R5, reason="exact-root fast path: f(x0) == 0.0 means x0 IS the root; near-zero values must enter the bracket expansion")
    if f0 == 0.0 {
        return x0;
    }
    let mut step = scale0.abs().max(1e-12);
    // Expand in the direction that drives f toward zero.
    let dir = if f0 < 0.0 { 1.0 } else { -1.0 };
    let mut a = x0;
    let mut b = x0 + dir * step;
    for _ in 0..200 {
        let fb = f(b);
        if f0 * fb <= 0.0 {
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            return bisect_root(&f, lo, hi, tol);
        }
        a = b;
        step *= 2.0;
        b = x0 + dir * step;
    }
    panic!("monotone_root failed to bracket a sign change from x0 = {x0}");
}

/// Golden-section minimization of a unimodal `f` over `[a, b]`.
pub fn golden_section_min<F: Fn(f64) -> f64>(f: F, mut a: f64, mut b: f64, tol: f64) -> f64 {
    const INV_PHI: f64 = 0.618_033_988_749_894_9;
    let mut c = b - INV_PHI * (b - a);
    let mut d = a + INV_PHI * (b - a);
    let mut fc = f(c);
    let mut fd = f(d);
    for _ in 0..300 {
        if (b - a).abs() < tol {
            break;
        }
        if fc < fd {
            b = d;
            d = c;
            fd = fc;
            c = b - INV_PHI * (b - a);
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + INV_PHI * (b - a);
            fd = f(d);
        }
    }
    0.5 * (a + b)
}

/// Adaptive Simpson quadrature of `f` over `[a, b]` with absolute
/// tolerance `tol`.
pub fn adaptive_simpson<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, tol: f64) -> f64 {
    fn simpson<F: Fn(f64) -> f64>(f: &F, a: f64, m: f64, b: f64) -> f64 {
        (b - a) / 6.0 * (f(a) + 4.0 * f(m) + f(b))
    }
    fn recurse<F: Fn(f64) -> f64>(f: &F, a: f64, b: f64, whole: f64, tol: f64, depth: u32) -> f64 {
        let m = 0.5 * (a + b);
        let lm = 0.5 * (a + m);
        let rm = 0.5 * (m + b);
        let left = simpson(f, a, lm, m);
        let right = simpson(f, m, rm, b);
        let delta = left + right - whole;
        if depth == 0 || delta.abs() <= 15.0 * tol {
            left + right + delta / 15.0
        } else {
            recurse(f, a, m, left, tol / 2.0, depth - 1)
                + recurse(f, m, b, right, tol / 2.0, depth - 1)
        }
    }
    let m = 0.5 * (a + b);
    let whole = simpson(&f, a, m, b);
    recurse(&f, a, b, whole, tol, 50)
}

#[cfg(test)]
// Exact `==` on f64 is deliberate in tests: they pin bit-identical
// outputs (DESIGN.md §5), so an epsilon tolerance would weaken them.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn bisect_finds_sqrt2() {
        let r = bisect_root(|x| x * x - 2.0, 0.0, 2.0, 1e-12);
        assert!((r - std::f64::consts::SQRT_2).abs() < 1e-10);
    }

    #[test]
    fn bisect_handles_exact_endpoint() {
        assert_eq!(bisect_root(|x| x, 0.0, 1.0, 1e-12), 0.0);
    }

    #[test]
    fn monotone_root_expands_bracket() {
        // Root at 1000, starting far away with a tiny seed scale.
        let r = monotone_root(|x| x - 1000.0, 0.0, 0.5, 1e-9);
        assert!((r - 1000.0).abs() < 1e-6);
        // Root below the start.
        let r = monotone_root(|x| x + 77.0, 0.0, 1.0, 1e-9);
        assert!((r + 77.0).abs() < 1e-6);
    }

    #[test]
    fn golden_section_finds_parabola_min() {
        let m = golden_section_min(|x| (x - 3.5) * (x - 3.5), -10.0, 10.0, 1e-10);
        assert!((m - 3.5).abs() < 1e-7);
    }

    #[test]
    fn simpson_integrates_polynomial_exactly() {
        // Simpson is exact for cubics.
        let v = adaptive_simpson(|x| x * x * x - 2.0 * x + 1.0, 0.0, 2.0, 1e-12);
        assert!((v - 2.0).abs() < 1e-10); // ∫₀² = 4 − 4 + 2 = 2
    }

    #[test]
    fn simpson_integrates_gaussian_density() {
        let v = adaptive_simpson(
            |x| (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt(),
            -10.0,
            10.0,
            1e-12,
        );
        assert!((v - 1.0).abs() < 1e-9, "got {v}");
    }
}
