//! The committed perf-baseline report (`BENCH_baseline.json`).
//!
//! Every later perf PR is judged against the numbers in this file, so
//! the schema is owned by code: the `bench_baseline` binary writes it
//! through [`BaselineReport::to_json`] and CI smoke-checks that the
//! JSON round-trips through [`BaselineReport::from_json`] on every
//! push (`bench_baseline --check`), keeping the binary and the schema
//! from rotting.
//!
//! The JSON codec itself lives in [`updp_core::json`] — it started
//! here and was promoted so `updp-serve` and this report share one
//! implementation (the crate root re-exports it as
//! [`crate::json`]). Numbers are emitted with Rust's
//! shortest-round-trip `Display` for `f64`, so
//! `from_json(to_json(r)) == r` exactly.

use updp_core::json::JsonValue;

/// One macro-workload timing row.
#[derive(Debug, Clone, PartialEq)]
pub struct MicroRow {
    /// Workload name (`estimate_mean`, `estimate_variance`, `estimate_iqr`).
    pub workload: String,
    /// Dataset size.
    pub n: usize,
    /// Wall milliseconds per estimate (averaged over the harness reps).
    pub ms: f64,
}

/// Wall time of `experiments all --quick` under the serial and parallel
/// engines.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentsQuick {
    /// Wall milliseconds with `UPDP_THREADS=1`.
    pub serial_ms: f64,
    /// Wall milliseconds with `UPDP_THREADS=threads`.
    pub parallel_ms: f64,
    /// Worker count used for the parallel measurement.
    pub threads: usize,
    /// `serial_ms / parallel_ms`.
    pub speedup: f64,
}

/// The full baseline report.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineReport {
    /// Schema tag; bump on breaking changes.
    pub schema: String,
    /// `std::thread::available_parallelism()` on the measuring host —
    /// the context needed to interpret `speedup`.
    pub host_threads: usize,
    /// Kernel release of the measuring host (empty when parsed from a
    /// v1 report or when unavailable).
    pub host_kernel: String,
    /// CPU architecture of the measuring host (empty when parsed from
    /// a v1 report).
    pub host_arch: String,
    /// Macro workload timings.
    pub micro: Vec<MicroRow>,
    /// Experiment-suite wall times.
    pub experiments_quick: ExperimentsQuick,
    /// Free-form measurement caveats (e.g. single-core host).
    pub note: String,
}

/// The current schema tag. v2 added the host metadata fields
/// (`host_kernel`, `host_arch`) so a baseline regenerated on
/// different hardware is distinguishable after the fact.
pub const SCHEMA: &str = "updp-bench-baseline/v2";

/// The previous schema tag: the committed BENCH_baseline.json still
/// carries it, and it must keep parsing (the host metadata defaults
/// to empty).
pub const SCHEMA_V1: &str = "updp-bench-baseline/v1";

/// Gross-slowdown factor for the CI perf smoke gate
/// (`bench_baseline --smoke --check-regression FILE`): a measured
/// micro row more than this many times slower than the committed row
/// with the same `(workload, n)` fails the gate. Loose on purpose —
/// CI hosts are noisy and shared; the gate catches accidental
/// complexity-class regressions, not percent-level drift.
pub const REGRESSION_FACTOR: f64 = 3.0;

/// Compares measured micro rows against a committed baseline.
///
/// Rows are matched by `(workload, n)`; rows present on only one side
/// are ignored (the committed file spans sizes a smoke run does not
/// re-measure), as are committed rows with a non-positive time.
/// Returns one human-readable line per regression — empty means the
/// gate passes. Errors when no row matched at all: a silently vacuous
/// gate would be worse than none.
pub fn regressions(
    measured: &BaselineReport,
    committed: &BaselineReport,
    factor: f64,
) -> Result<Vec<String>, String> {
    let mut matched = 0usize;
    let mut failures = Vec::new();
    for row in &measured.micro {
        let Some(base) = committed
            .micro
            .iter()
            .find(|b| b.workload == row.workload && b.n == row.n)
        else {
            continue;
        };
        if base.ms <= 0.0 {
            continue;
        }
        matched += 1;
        if row.ms > base.ms * factor {
            failures.push(format!(
                "{} at n={}: measured {:.3} ms vs committed {:.3} ms (>{factor}x)",
                row.workload, row.n, row.ms, base.ms
            ));
        }
    }
    if matched == 0 {
        return Err(
            "no (workload, n) rows in common between the measured and committed reports".into(),
        );
    }
    Ok(failures)
}

/// Host metadata for the report: `(kernel release, architecture)`.
pub fn host_meta() -> (String, String) {
    let kernel = std::fs::read_to_string("/proc/sys/kernel/osrelease")
        .map(|s| s.trim().to_string())
        .unwrap_or_default();
    (kernel, std::env::consts::ARCH.to_string())
}

impl BaselineReport {
    /// Serializes to pretty-printed JSON (stable field order).
    pub fn to_json(&self) -> String {
        let micro = self
            .micro
            .iter()
            .map(|row| {
                JsonValue::object(vec![
                    ("workload", row.workload.as_str().into()),
                    ("n", row.n.into()),
                    ("ms", row.ms.into()),
                ])
            })
            .collect();
        let eq = &self.experiments_quick;
        let doc = JsonValue::object(vec![
            ("schema", self.schema.as_str().into()),
            ("host_threads", self.host_threads.into()),
            ("host_kernel", self.host_kernel.as_str().into()),
            ("host_arch", self.host_arch.as_str().into()),
            ("micro", JsonValue::Array(micro)),
            (
                "experiments_quick",
                JsonValue::object(vec![
                    ("serial_ms", eq.serial_ms.into()),
                    ("parallel_ms", eq.parallel_ms.into()),
                    ("threads", eq.threads.into()),
                    ("speedup", eq.speedup.into()),
                ]),
            ),
            ("note", self.note.as_str().into()),
        ]);
        let mut out = doc.to_pretty();
        out.push('\n');
        out
    }

    /// Parses a report previously produced by [`BaselineReport::to_json`]
    /// — the current v2 layout or the committed v1 one (whose host
    /// metadata defaults to empty).
    pub fn from_json(input: &str) -> Result<Self, String> {
        let value = JsonValue::parse(input)?;
        let obj = value.as_object("top level")?;
        let schema = obj.get_str("schema")?;
        if schema != SCHEMA && schema != SCHEMA_V1 {
            return Err(format!(
                "unknown schema `{schema}`, expected `{SCHEMA}` (or legacy `{SCHEMA_V1}`)"
            ));
        }
        let (host_kernel, host_arch) = if schema == SCHEMA {
            (obj.get_str("host_kernel")?, obj.get_str("host_arch")?)
        } else {
            (String::new(), String::new())
        };
        let micro = obj
            .get_array("micro")?
            .iter()
            .map(|v| -> Result<MicroRow, String> {
                let row = v.as_object("micro row")?;
                Ok(MicroRow {
                    workload: row.get_str("workload")?,
                    n: row.get_usize("n")?,
                    ms: row.get_f64("ms")?,
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        let eq = obj
            .get("experiments_quick")?
            .as_object("experiments_quick")?;
        Ok(BaselineReport {
            schema,
            host_threads: obj.get_usize("host_threads")?,
            host_kernel,
            host_arch,
            micro,
            experiments_quick: ExperimentsQuick {
                serial_ms: eq.get_f64("serial_ms")?,
                parallel_ms: eq.get_f64("parallel_ms")?,
                threads: eq.get_usize("threads")?,
                speedup: eq.get_f64("speedup")?,
            },
            note: obj.get_str("note")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BaselineReport {
        BaselineReport {
            schema: SCHEMA.into(),
            host_threads: 4,
            host_kernel: "6.1.0-test".into(),
            host_arch: "x86_64".into(),
            micro: vec![
                MicroRow {
                    workload: "estimate_mean".into(),
                    n: 10_000,
                    ms: 1.251231,
                },
                MicroRow {
                    workload: "estimate_iqr".into(),
                    n: 10_000_000,
                    ms: 1523.0625,
                },
            ],
            experiments_quick: ExperimentsQuick {
                serial_ms: 523.25,
                parallel_ms: 151.125,
                threads: 4,
                speedup: 523.25 / 151.125,
            },
            note: "4-core \"test\" host".into(),
        }
    }

    #[test]
    fn round_trips_exactly() {
        let report = sample();
        let json = report.to_json();
        let back = BaselineReport::from_json(&json).unwrap();
        assert_eq!(back, report);
        // And a second trip is byte-stable.
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn round_trips_awkward_floats() {
        let mut report = sample();
        report.micro[0].ms = 0.1 + 0.2; // 0.30000000000000004
        report.experiments_quick.speedup = f64::MIN_POSITIVE;
        let back = BaselineReport::from_json(&report.to_json()).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn parses_the_committed_report_format() {
        // The pre-promotion writer emitted micro rows on single lines;
        // the shared parser must keep reading that committed layout.
        let legacy = "{\n  \"schema\": \"updp-bench-baseline/v1\",\n  \"host_threads\": 1,\n  \
                      \"micro\": [\n    {\"workload\": \"estimate_mean\", \"n\": 10000, \"ms\": 1.5}\n  ],\n  \
                      \"experiments_quick\": {\"serial_ms\": 10, \"parallel_ms\": 10, \"threads\": 1, \"speedup\": 1},\n  \
                      \"note\": \"legacy layout\"\n}\n";
        let report = BaselineReport::from_json(legacy).unwrap();
        assert_eq!(report.micro.len(), 1);
        assert_eq!(report.experiments_quick.threads, 1);
        // v1 carries no host metadata: the fields default to empty.
        assert_eq!(report.schema, SCHEMA_V1);
        assert_eq!(report.host_kernel, "");
        assert_eq!(report.host_arch, "");
    }

    #[test]
    fn rejects_mangled_input() {
        assert!(BaselineReport::from_json("").is_err());
        assert!(BaselineReport::from_json("{}").is_err());
        assert!(BaselineReport::from_json("{\"schema\": \"nope\"}").is_err());
        let json = sample().to_json();
        assert!(BaselineReport::from_json(&json[..json.len() - 3]).is_err());
        assert!(BaselineReport::from_json(&format!("{json}garbage")).is_err());
    }

    #[test]
    fn regression_gate_matches_by_workload_and_n() {
        let committed = sample();
        let mut measured = sample();
        // Within 3x: passes.
        measured.micro[0].ms = committed.micro[0].ms * 2.9;
        // Unmatched row (different n): ignored.
        measured.micro[1].n += 1;
        let fails = regressions(&measured, &committed, REGRESSION_FACTOR).unwrap();
        assert!(fails.is_empty(), "unexpected failures: {fails:?}");
        // Beyond 3x: fails with the workload named.
        measured.micro[0].ms = committed.micro[0].ms * 3.1;
        let fails = regressions(&measured, &committed, REGRESSION_FACTOR).unwrap();
        assert_eq!(fails.len(), 1);
        assert!(fails[0].contains("estimate_mean"), "{}", fails[0]);
    }

    #[test]
    fn regression_gate_rejects_vacuous_comparisons() {
        let committed = sample();
        let mut measured = sample();
        for row in &mut measured.micro {
            row.workload.push('x');
        }
        assert!(regressions(&measured, &committed, REGRESSION_FACTOR).is_err());
        // Non-positive committed times are skipped, not divided by.
        let mut zeroed = sample();
        for row in &mut zeroed.micro {
            row.ms = 0.0;
        }
        assert!(regressions(&sample(), &zeroed, REGRESSION_FACTOR).is_err());
    }

    #[test]
    fn missing_keys_are_named_in_errors() {
        let err = BaselineReport::from_json(
            "{\"schema\": \"updp-bench-baseline/v1\", \"host_threads\": 1}",
        )
        .unwrap_err();
        assert!(err.contains("micro"), "unhelpful error: {err}");
    }
}
