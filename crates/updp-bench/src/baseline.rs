//! The committed perf-baseline report (`BENCH_baseline.json`).
//!
//! Every later perf PR is judged against the numbers in this file, so
//! the schema is owned by code: the `bench_baseline` binary writes it
//! through [`BaselineReport::to_json`] and CI smoke-checks that the
//! JSON round-trips through [`BaselineReport::from_json`] on every
//! push (`bench_baseline --check`), keeping the binary and the schema
//! from rotting.
//!
//! The JSON writer/parser here is deliberately first-party and tiny:
//! the build environment has no crates.io access and the vendored
//! `serde` shim does not include a JSON backend. Numbers are emitted
//! with Rust's shortest-round-trip `Display` for `f64`, so
//! `from_json(to_json(r)) == r` exactly.

/// One macro-workload timing row.
#[derive(Debug, Clone, PartialEq)]
pub struct MicroRow {
    /// Workload name (`estimate_mean`, `estimate_variance`, `estimate_iqr`).
    pub workload: String,
    /// Dataset size.
    pub n: usize,
    /// Wall milliseconds per estimate (averaged over the harness reps).
    pub ms: f64,
}

/// Wall time of `experiments all --quick` under the serial and parallel
/// engines.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentsQuick {
    /// Wall milliseconds with `UPDP_THREADS=1`.
    pub serial_ms: f64,
    /// Wall milliseconds with `UPDP_THREADS=threads`.
    pub parallel_ms: f64,
    /// Worker count used for the parallel measurement.
    pub threads: usize,
    /// `serial_ms / parallel_ms`.
    pub speedup: f64,
}

/// The full baseline report.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineReport {
    /// Schema tag; bump on breaking changes.
    pub schema: String,
    /// `std::thread::available_parallelism()` on the measuring host —
    /// the context needed to interpret `speedup`.
    pub host_threads: usize,
    /// Macro workload timings.
    pub micro: Vec<MicroRow>,
    /// Experiment-suite wall times.
    pub experiments_quick: ExperimentsQuick,
    /// Free-form measurement caveats (e.g. single-core host).
    pub note: String,
}

/// The current schema tag.
pub const SCHEMA: &str = "updp-bench-baseline/v1";

fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

impl BaselineReport {
    /// Serializes to pretty-printed JSON (stable field order).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{}\",\n", esc(&self.schema)));
        out.push_str(&format!("  \"host_threads\": {},\n", self.host_threads));
        out.push_str("  \"micro\": [\n");
        for (i, row) in self.micro.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"workload\": \"{}\", \"n\": {}, \"ms\": {}}}{}\n",
                esc(&row.workload),
                row.n,
                row.ms,
                if i + 1 < self.micro.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        let eq = &self.experiments_quick;
        out.push_str(&format!(
            "  \"experiments_quick\": {{\"serial_ms\": {}, \"parallel_ms\": {}, \"threads\": {}, \"speedup\": {}}},\n",
            eq.serial_ms, eq.parallel_ms, eq.threads, eq.speedup
        ));
        out.push_str(&format!("  \"note\": \"{}\"\n", esc(&self.note)));
        out.push_str("}\n");
        out
    }

    /// Parses a report previously produced by [`BaselineReport::to_json`].
    ///
    /// A minimal recursive-descent JSON reader (objects, arrays,
    /// strings, numbers) — strict enough to reject truncated or
    /// hand-mangled files, lenient about whitespace.
    pub fn from_json(input: &str) -> Result<Self, String> {
        let value = JsonValue::parse(input)?;
        let obj = value.as_object("top level")?;
        let schema = obj.get_str("schema")?;
        if schema != SCHEMA {
            return Err(format!("unknown schema `{schema}`, expected `{SCHEMA}`"));
        }
        let micro = obj
            .get("micro")?
            .as_array("micro")?
            .iter()
            .map(|v| -> Result<MicroRow, String> {
                let row = v.as_object("micro row")?;
                Ok(MicroRow {
                    workload: row.get_str("workload")?,
                    n: row.get_f64("n")? as usize,
                    ms: row.get_f64("ms")?,
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        let eq = obj
            .get("experiments_quick")?
            .as_object("experiments_quick")?;
        Ok(BaselineReport {
            schema,
            host_threads: obj.get_f64("host_threads")? as usize,
            micro,
            experiments_quick: ExperimentsQuick {
                serial_ms: eq.get_f64("serial_ms")?,
                parallel_ms: eq.get_f64("parallel_ms")?,
                threads: eq.get_f64("threads")? as usize,
                speedup: eq.get_f64("speedup")?,
            },
            note: obj.get_str("note")?,
        })
    }
}

/// A parsed JSON value (only the shapes the baseline schema uses).
enum JsonValue {
    Object(Vec<(String, JsonValue)>),
    Array(Vec<JsonValue>),
    String(String),
    Number(f64),
}

struct Object<'a>(&'a [(String, JsonValue)]);

impl<'a> Object<'a> {
    fn get(&self, key: &str) -> Result<&'a JsonValue, String> {
        self.0
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing key `{key}`"))
    }

    fn get_str(&self, key: &str) -> Result<String, String> {
        match self.get(key)? {
            JsonValue::String(s) => Ok(s.clone()),
            _ => Err(format!("key `{key}` is not a string")),
        }
    }

    fn get_f64(&self, key: &str) -> Result<f64, String> {
        match self.get(key)? {
            JsonValue::Number(x) => Ok(*x),
            _ => Err(format!("key `{key}` is not a number")),
        }
    }
}

impl JsonValue {
    fn as_object(&self, what: &str) -> Result<Object<'_>, String> {
        match self {
            JsonValue::Object(fields) => Ok(Object(fields)),
            _ => Err(format!("{what} is not an object")),
        }
    }

    fn as_array(&self, what: &str) -> Result<&[JsonValue], String> {
        match self {
            JsonValue::Array(items) => Ok(items),
            _ => Err(format!("{what} is not an array")),
        }
    }

    fn parse(input: &str) -> Result<JsonValue, String> {
        let bytes = input.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && (b[*pos] as char).is_ascii_whitespace() {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected `{}` at byte {} (found `{}`)",
            c as char,
            pos,
            b.get(*pos).map(|&x| x as char).unwrap_or('∅')
        ))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(JsonValue::String(parse_string(b, pos)?)),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        other => Err(format!(
            "unexpected `{}` at byte {}",
            other.map(|&x| x as char).unwrap_or('∅'),
            pos
        )),
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(b, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Object(fields));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        fields.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Object(fields));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Array(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}")),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    while *pos < b.len() {
        match b[*pos] {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    other => {
                        return Err(format!(
                            "unsupported escape `\\{}` at byte {}",
                            other.map(|&x| x as char).unwrap_or('∅'),
                            pos
                        ))
                    }
                }
                *pos += 1;
            }
            _ => {
                // Multi-byte UTF-8 passes through unchanged.
                let start = *pos;
                while *pos < b.len() && b[*pos] != b'"' && b[*pos] != b'\\' {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?);
            }
        }
    }
    Err("unterminated string".into())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(JsonValue::Number)
        .map_err(|e| format!("bad number `{text}`: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BaselineReport {
        BaselineReport {
            schema: SCHEMA.into(),
            host_threads: 4,
            micro: vec![
                MicroRow {
                    workload: "estimate_mean".into(),
                    n: 10_000,
                    ms: 1.251231,
                },
                MicroRow {
                    workload: "estimate_iqr".into(),
                    n: 10_000_000,
                    ms: 1523.0625,
                },
            ],
            experiments_quick: ExperimentsQuick {
                serial_ms: 523.25,
                parallel_ms: 151.125,
                threads: 4,
                speedup: 523.25 / 151.125,
            },
            note: "4-core \"test\" host".into(),
        }
    }

    #[test]
    fn round_trips_exactly() {
        let report = sample();
        let json = report.to_json();
        let back = BaselineReport::from_json(&json).unwrap();
        assert_eq!(back, report);
        // And a second trip is byte-stable.
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn round_trips_awkward_floats() {
        let mut report = sample();
        report.micro[0].ms = 0.1 + 0.2; // 0.30000000000000004
        report.experiments_quick.speedup = f64::MIN_POSITIVE;
        let back = BaselineReport::from_json(&report.to_json()).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn rejects_mangled_input() {
        assert!(BaselineReport::from_json("").is_err());
        assert!(BaselineReport::from_json("{}").is_err());
        assert!(BaselineReport::from_json("{\"schema\": \"nope\"}").is_err());
        let json = sample().to_json();
        assert!(BaselineReport::from_json(&json[..json.len() - 3]).is_err());
        assert!(BaselineReport::from_json(&format!("{json}garbage")).is_err());
    }

    #[test]
    fn missing_keys_are_named_in_errors() {
        let err = BaselineReport::from_json(
            "{\"schema\": \"updp-bench-baseline/v1\", \"host_threads\": 1}",
        )
        .unwrap_err();
        assert!(err.contains("micro"), "unhelpful error: {err}");
    }
}
