//! Shared helpers for the Criterion benchmarks, plus the committed
//! perf-baseline report schema ([`baseline`], written by the
//! `bench_baseline` binary into `BENCH_baseline.json`).

// The workspace ships zero `unsafe` blocks; every crate forbids them so
// updp-lint's R4 (safety-comment) holds vacuously — see DESIGN.md §9.
#![forbid(unsafe_code)]

pub mod baseline;

/// Re-export of the shared first-party JSON codec (promoted from this
/// crate's `baseline` module into `updp_core::json`).
pub use updp_core::json;

use rand::rngs::StdRng;
use rand::SeedableRng;
use updp_dist::{ContinuousDistribution, Gaussian, Pareto};

/// Deterministic bench RNG.
pub fn bench_rng() -> StdRng {
    StdRng::seed_from_u64(0xBE7C)
}

/// Standard Gaussian sample of size `n` (fixed seed).
pub fn gaussian_data(n: usize) -> Vec<f64> {
    let mut rng = bench_rng();
    Gaussian::new(100.0, 5.0)
        .expect("valid parameters")
        .sample_vec(&mut rng, n)
}

/// Heavy-tailed Pareto sample of size `n` (fixed seed).
pub fn pareto_data(n: usize) -> Vec<f64> {
    let mut rng = bench_rng();
    Pareto::new(1.0, 2.5)
        .expect("valid parameters")
        .sample_vec(&mut rng, n)
}

/// Integer dataset spread over `[−range, range]`.
pub fn int_data(n: usize, range: i64) -> Vec<i64> {
    (0..n)
        .map(|i| -range + ((2 * range) as i128 * i as i128 / (n.max(2) - 1) as i128) as i64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(gaussian_data(10), gaussian_data(10));
        assert_eq!(pareto_data(10), pareto_data(10));
        assert_eq!(int_data(5, 100), int_data(5, 100));
    }

    #[test]
    fn int_data_spans_range() {
        let d = int_data(101, 1000);
        assert_eq!(*d.first().unwrap(), -1000);
        assert_eq!(*d.last().unwrap(), 1000);
    }
}
