//! Measures the perf baseline and writes `BENCH_baseline.json`.
//!
//! ```text
//! bench_baseline [--check] [--smoke [--check-regression FILE]] [--out PATH]
//! ```
//!
//! Full mode times the macro workloads — one universal estimate
//! (mean/variance/IQR) at n ∈ {10⁴, 10⁵, 10⁶, 10⁷} — plus the wall
//! time of the whole `experiments all --quick` suite under
//! `UPDP_THREADS=1` (serial) and under the host's available
//! parallelism, then writes the JSON report every later perf PR is
//! judged against.
//!
//! `--check` is the CI schema smoke: tiny n, a two-experiment suite,
//! and an assertion that the report round-trips through the schema
//! parser (`BaselineReport::from_json(to_json(r)) == r`) — keeping the
//! binary and `BENCH_baseline.json`'s schema from rotting. Nothing is
//! written.
//!
//! `--smoke` is the CI *perf* smoke: re-measures the micro workloads
//! at the committed baseline's smallest size (n = 10⁴, seconds of wall
//! time, not minutes) so `--check-regression FILE` can compare the
//! matching `(workload, n)` rows against the committed
//! `BENCH_baseline.json` and fail the build on a gross (>
//! [`REGRESSION_FACTOR`]x) slowdown. Nothing is written.

use std::time::Instant;
use updp_bench::baseline::{
    host_meta, regressions, BaselineReport, ExperimentsQuick, MicroRow, REGRESSION_FACTOR, SCHEMA,
};
use updp_bench::gaussian_data;
use updp_core::privacy::Epsilon;
use updp_experiments::{registry, ExpConfig};
use updp_statistical::{estimate_iqr, estimate_mean, estimate_variance};

fn eps(v: f64) -> Epsilon {
    Epsilon::new(v).unwrap()
}

/// Times `reps` runs of `f` and returns milliseconds per run.
fn time_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let started = Instant::now();
    for _ in 0..reps {
        f();
    }
    started.elapsed().as_secs_f64() * 1e3 / reps as f64
}

fn micro_rows(sizes: &[usize]) -> Vec<MicroRow> {
    let mut rows = Vec::new();
    for &n in sizes {
        let data = gaussian_data(n);
        // Amortize timer noise on small inputs; one rep suffices at
        // n ≥ 10⁶ where a single estimate is tens of milliseconds.
        let reps = (1_000_000 / n).clamp(1, 50);
        let mut rng = updp_bench::bench_rng();
        rows.push(MicroRow {
            workload: "estimate_mean".into(),
            n,
            ms: time_ms(reps, || {
                estimate_mean(&mut rng, &data, eps(0.5), 0.1).unwrap();
            }),
        });
        let mut rng = updp_bench::bench_rng();
        rows.push(MicroRow {
            workload: "estimate_variance".into(),
            n,
            ms: time_ms(reps, || {
                estimate_variance(&mut rng, &data, eps(0.5), 0.1).unwrap();
            }),
        });
        let mut rng = updp_bench::bench_rng();
        rows.push(MicroRow {
            workload: "estimate_iqr".into(),
            n,
            ms: time_ms(reps, || {
                estimate_iqr(&mut rng, &data, eps(1.0), 0.1).unwrap();
            }),
        });
        eprintln!("  micro n = {n} done");
    }
    rows
}

/// Wall-times the experiment suite once under `UPDP_THREADS=threads`.
fn experiments_ms(cfg: &ExpConfig, ids: Option<&[&str]>, threads: usize) -> f64 {
    std::env::set_var(updp_core::parallel::THREADS_ENV, threads.to_string());
    let started = Instant::now();
    for (id, _, f) in registry() {
        if ids.is_none_or(|list| list.contains(&id)) {
            let _ = f(cfg);
        }
    }
    let ms = started.elapsed().as_secs_f64() * 1e3;
    std::env::remove_var(updp_core::parallel::THREADS_ENV);
    ms
}

fn host_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

fn usage() -> ! {
    eprintln!("usage: bench_baseline [--check] [--smoke [--check-regression FILE]] [--out PATH]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check = args.iter().any(|a| a == "--check");
    let smoke = args.iter().any(|a| a == "--smoke");
    let regression_path = args
        .iter()
        .position(|a| a == "--check-regression")
        .map(|i| args.get(i + 1).cloned().unwrap_or_else(|| usage()));
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_baseline.json".into());
    let known = ["--check", "--smoke", "--check-regression", "--out"];
    if args
        .iter()
        .any(|a| a.starts_with("--") && !known.contains(&a.as_str()))
        || (args.iter().any(|a| a == "--out") && (check || smoke))
        || (check && smoke)
        || (regression_path.is_some() && !smoke)
    {
        usage();
    }

    let threads = host_threads();
    let report = if check {
        eprintln!("bench_baseline --check: smoke run (tiny n)");
        let cfg = ExpConfig {
            trials: 2,
            quick: true,
            ..ExpConfig::default()
        };
        let ids = ["emp-mean", "iqr-lb"];
        let serial_ms = experiments_ms(&cfg, Some(&ids), 1);
        let parallel_ms = experiments_ms(&cfg, Some(&ids), threads);
        let (host_kernel, host_arch) = host_meta();
        BaselineReport {
            schema: SCHEMA.into(),
            host_threads: threads,
            host_kernel,
            host_arch,
            micro: micro_rows(&[2_000]),
            experiments_quick: ExperimentsQuick {
                serial_ms,
                parallel_ms,
                threads,
                speedup: serial_ms / parallel_ms,
            },
            note: "smoke mode (--check): numbers are not a baseline".into(),
        }
    } else if smoke {
        eprintln!("bench_baseline --smoke: small-n re-measurement for the regression gate");
        let cfg = ExpConfig {
            trials: 2,
            quick: true,
            ..ExpConfig::default()
        };
        let ids = ["emp-mean", "iqr-lb"];
        let serial_ms = experiments_ms(&cfg, Some(&ids), 1);
        let parallel_ms = experiments_ms(&cfg, Some(&ids), threads);
        let (host_kernel, host_arch) = host_meta();
        BaselineReport {
            schema: SCHEMA.into(),
            host_threads: threads,
            host_kernel,
            host_arch,
            // The committed baseline's smallest micro size, so the
            // regression gate compares matching (workload, n) rows.
            micro: micro_rows(&[10_000]),
            experiments_quick: ExperimentsQuick {
                serial_ms,
                parallel_ms,
                threads,
                speedup: serial_ms / parallel_ms,
            },
            note: "smoke mode (--smoke): small-n rows for --check-regression, not a baseline"
                .into(),
        }
    } else {
        eprintln!("bench_baseline: full run (this takes a few minutes)");
        let cfg = ExpConfig::quick();
        let serial_ms = experiments_ms(&cfg, None, 1);
        eprintln!("  experiments all --quick serial: {serial_ms:.0} ms");
        let parallel_ms = experiments_ms(&cfg, None, threads);
        eprintln!("  experiments all --quick x{threads}: {parallel_ms:.0} ms");
        let note = if threads == 1 {
            "measured on a single-core host: available_parallelism() = 1, so \
             parallel_ms ~ serial_ms by construction; the >= 2x multi-core \
             speedup claim must be re-measured on >= 4 cores"
                .to_string()
        } else {
            format!("measured at available_parallelism() = {threads}")
        };
        let (host_kernel, host_arch) = host_meta();
        BaselineReport {
            schema: SCHEMA.into(),
            host_threads: threads,
            host_kernel,
            host_arch,
            micro: micro_rows(&[10_000, 100_000, 1_000_000, 10_000_000]),
            experiments_quick: ExperimentsQuick {
                serial_ms,
                parallel_ms,
                threads,
                speedup: serial_ms / parallel_ms,
            },
            note,
        }
    };

    let json = report.to_json();
    let parsed = BaselineReport::from_json(&json)
        .unwrap_or_else(|e| panic!("schema round-trip failed to parse: {e}"));
    assert_eq!(parsed, report, "schema round-trip changed the report");

    if let Some(path) = &regression_path {
        let committed_text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("bench_baseline: read {path}: {e}");
            std::process::exit(1);
        });
        let committed = BaselineReport::from_json(&committed_text).unwrap_or_else(|e| {
            eprintln!("bench_baseline: parse {path}: {e}");
            std::process::exit(1);
        });
        match regressions(&report, &committed, REGRESSION_FACTOR) {
            Ok(failures) if failures.is_empty() => {
                println!(
                    "bench_baseline --check-regression OK: all matched rows within \
                     {REGRESSION_FACTOR}x of {path}"
                );
            }
            Ok(failures) => {
                for failure in &failures {
                    eprintln!("PERF REGRESSION: {failure}");
                }
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("bench_baseline --check-regression: {e}");
                std::process::exit(1);
            }
        }
    }

    if check {
        println!("bench_baseline --check OK: schema {SCHEMA} round-trips");
    } else if smoke {
        println!("bench_baseline --smoke OK");
    } else {
        std::fs::write(&out_path, &json).expect("write baseline report");
        println!("wrote {out_path}");
        print!("{json}");
    }
}
