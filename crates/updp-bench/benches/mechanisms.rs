//! Microbenchmarks for the DP primitives in `updp-core`.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use updp_bench::{bench_rng, int_data};
use updp_core::clipped_mean::private_clipped_mean;
use updp_core::exponential::exponential_mechanism;
use updp_core::inverse_sensitivity::finite_domain_quantile;
use updp_core::laplace::sample_laplace;
use updp_core::privacy::Epsilon;
use updp_core::svt::sparse_vector;

fn eps(v: f64) -> Epsilon {
    Epsilon::new(v).unwrap()
}

fn bench_laplace(c: &mut Criterion) {
    let mut rng = bench_rng();
    c.bench_function("laplace_sample", |b| {
        b.iter(|| black_box(sample_laplace(&mut rng, black_box(1.0))))
    });
}

fn bench_svt(c: &mut Criterion) {
    let mut rng = bench_rng();
    c.bench_function("svt_100_queries", |b| {
        b.iter(|| {
            sparse_vector(
                &mut rng,
                black_box(95.0),
                eps(1.0),
                |i| if i < 99 { i as f64 } else { 1_000.0 },
                200,
            )
        })
    });
}

fn bench_exponential(c: &mut Criterion) {
    let utilities: Vec<f64> = (0..1000).map(|i| -((i % 37) as f64)).collect();
    let mut rng = bench_rng();
    c.bench_function("exponential_mechanism_1k_candidates", |b| {
        b.iter(|| exponential_mechanism(&mut rng, black_box(&utilities), 1.0, eps(1.0)).unwrap())
    });
}

fn bench_quantile(c: &mut Criterion) {
    let mut group = c.benchmark_group("finite_domain_quantile");
    for n in [1_000usize, 10_000, 100_000] {
        let sorted = int_data(n, 1 << 30);
        group.bench_function(format!("n={n}"), |b| {
            let mut rng = bench_rng();
            b.iter(|| {
                finite_domain_quantile(
                    &mut rng,
                    black_box(&sorted),
                    n / 2,
                    -(1 << 31),
                    1 << 31,
                    eps(1.0),
                    0.1,
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_clipped_mean(c: &mut Criterion) {
    let data: Vec<f64> = (0..100_000).map(|i| (i % 1000) as f64).collect();
    c.bench_function("private_clipped_mean_100k", |b| {
        let mut rng = bench_rng();
        b.iter_batched(
            || data.clone(),
            |d| private_clipped_mean(&mut rng, &d, 0.0, 999.0, eps(1.0)).unwrap(),
            BatchSize::LargeInput,
        )
    });
}

criterion_group!(
    benches,
    bench_laplace,
    bench_svt,
    bench_exponential,
    bench_quantile,
    bench_clipped_mean
);
criterion_main!(benches);
