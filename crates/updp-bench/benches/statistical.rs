//! Benchmarks for the Sections 4–6 universal estimators.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use updp_bench::{bench_rng, gaussian_data, pareto_data};
use updp_core::privacy::Epsilon;
use updp_statistical::{estimate_iqr, estimate_iqr_lower_bound, estimate_mean, estimate_variance};

fn eps(v: f64) -> Epsilon {
    Epsilon::new(v).unwrap()
}

fn bench_iqr_lower_bound(c: &mut Criterion) {
    let data = gaussian_data(10_000);
    c.bench_function("estimate_iqr_lower_bound_10k", |b| {
        let mut rng = bench_rng();
        b.iter(|| estimate_iqr_lower_bound(&mut rng, black_box(&data), eps(1.0), 0.1).unwrap())
    });
}

fn bench_mean(c: &mut Criterion) {
    let mut group = c.benchmark_group("estimate_mean");
    for (label, data) in [
        ("gaussian_10k", gaussian_data(10_000)),
        ("pareto_10k", pareto_data(10_000)),
    ] {
        group.bench_function(label, |b| {
            let mut rng = bench_rng();
            b.iter(|| estimate_mean(&mut rng, black_box(&data), eps(0.5), 0.1).unwrap())
        });
    }
    group.finish();
}

fn bench_variance(c: &mut Criterion) {
    let data = gaussian_data(10_000);
    c.bench_function("estimate_variance_10k", |b| {
        let mut rng = bench_rng();
        b.iter(|| estimate_variance(&mut rng, black_box(&data), eps(0.5), 0.1).unwrap())
    });
}

fn bench_iqr(c: &mut Criterion) {
    let data = gaussian_data(10_000);
    c.bench_function("estimate_iqr_10k", |b| {
        let mut rng = bench_rng();
        b.iter(|| estimate_iqr(&mut rng, black_box(&data), eps(1.0), 0.1).unwrap())
    });
}

criterion_group!(
    benches,
    bench_iqr_lower_bound,
    bench_mean,
    bench_variance,
    bench_iqr
);
criterion_main!(benches);
