//! The `O(n log n)` scaling claim (paper §1: "all our estimators can be
//! implemented efficiently in O(n log n) time").
//!
//! Criterion's throughput report makes the claim visible: elements/second
//! should stay nearly flat (up to the log factor) as n grows 64x.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use updp_bench::{bench_rng, gaussian_data};
use updp_core::clipped_mean::{clipped_mean, clipped_mean_with_outside, count_outside};
use updp_core::privacy::Epsilon;
use updp_statistical::{estimate_iqr, estimate_mean, estimate_variance, pair_gaps};

fn eps(v: f64) -> Epsilon {
    Epsilon::new(v).unwrap()
}

fn bench_mean_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling/estimate_mean");
    for n in [4_000usize, 16_000, 64_000, 256_000] {
        let data = gaussian_data(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_function(format!("n={n}"), |b| {
            let mut rng = bench_rng();
            b.iter(|| estimate_mean(&mut rng, black_box(&data), eps(0.5), 0.1).unwrap())
        });
    }
    group.finish();
}

fn bench_variance_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling/estimate_variance");
    for n in [4_000usize, 64_000, 256_000] {
        let data = gaussian_data(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_function(format!("n={n}"), |b| {
            let mut rng = bench_rng();
            b.iter(|| estimate_variance(&mut rng, black_box(&data), eps(0.5), 0.1).unwrap())
        });
    }
    group.finish();
}

fn bench_iqr_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling/estimate_iqr");
    for n in [4_000usize, 64_000, 256_000] {
        let data = gaussian_data(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_function(format!("n={n}"), |b| {
            let mut rng = bench_rng();
            b.iter(|| estimate_iqr(&mut rng, black_box(&data), eps(1.0), 0.1).unwrap())
        });
    }
    group.finish();
}

/// Old-vs-new `pair_gaps` counting at n = 10⁶: the historical
/// implementation sorted all n/2 gaps (`O(n log n)`) so the SVT
/// searches could `partition_point`; the rewrite answers each of the
/// `O(log log)` thresholds with an `O(n)` (summary-assisted) count.
fn bench_pair_gaps_counting(c: &mut Criterion) {
    let n = 1_000_000;
    let data = gaussian_data(n);
    // The thresholds a typical Algorithm 7 run probes (up/down doubling
    // around the data scale).
    let thresholds: Vec<f64> = (-10..=10).map(|k| 2f64.powi(k)).collect();
    let mut group = c.benchmark_group("scaling/pair_gaps_count_n=1e6");
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("old_full_sort", |b| {
        b.iter(|| {
            let mut rng = bench_rng();
            let gaps = pair_gaps(&mut rng, black_box(&data));
            let mut sorted = gaps.values().to_vec();
            sorted.sort_by(f64::total_cmp);
            thresholds
                .iter()
                .map(|&x| sorted.partition_point(|&v| v <= x))
                .sum::<usize>()
        })
    });
    group.bench_function("new_linear_count", |b| {
        b.iter(|| {
            let mut rng = bench_rng();
            let gaps = pair_gaps(&mut rng, black_box(&data));
            thresholds.iter().map(|&x| gaps.count_le(x)).sum::<usize>()
        })
    });
    group.finish();
}

/// Fused vs separate clipped-mean + outside-count at n = 10⁶: the
/// Algorithm 8/9 release formerly re-scanned the full dataset just to
/// fill the `clipped` diagnostic.
fn bench_fused_clipped_mean(c: &mut Criterion) {
    let n = 1_000_000;
    let data = gaussian_data(n);
    let (lo, hi) = (90.0, 110.0);
    let mut group = c.benchmark_group("scaling/clipped_mean_n=1e6");
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("old_two_passes", |b| {
        b.iter(|| {
            let mean = clipped_mean(black_box(&data), lo, hi).unwrap();
            let outside = count_outside(black_box(&data), lo, hi);
            (mean, outside)
        })
    });
    group.bench_function("new_fused_pass", |b| {
        b.iter(|| clipped_mean_with_outside(black_box(&data), lo, hi).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_mean_scaling,
    bench_variance_scaling,
    bench_iqr_scaling,
    bench_pair_gaps_counting,
    bench_fused_clipped_mean
);
criterion_main!(benches);
