//! The `O(n log n)` scaling claim (paper §1: "all our estimators can be
//! implemented efficiently in O(n log n) time").
//!
//! Criterion's throughput report makes the claim visible: elements/second
//! should stay nearly flat (up to the log factor) as n grows 64x.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use updp_bench::{bench_rng, gaussian_data};
use updp_core::clipped_mean::{
    clip, clip_i64, clipped_mean, clipped_mean_with_outside, clipped_sum_i64, count_outside,
};
use updp_core::privacy::Epsilon;
use updp_empirical::gaps::GapSummary;
use updp_empirical::view::sorted_copy_threads;
use updp_statistical::{estimate_iqr, estimate_mean, estimate_variance, pair_gaps};

fn eps(v: f64) -> Epsilon {
    Epsilon::new(v).unwrap()
}

fn bench_mean_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling/estimate_mean");
    for n in [4_000usize, 16_000, 64_000, 256_000] {
        let data = gaussian_data(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_function(format!("n={n}"), |b| {
            let mut rng = bench_rng();
            b.iter(|| estimate_mean(&mut rng, black_box(&data), eps(0.5), 0.1).unwrap())
        });
    }
    group.finish();
}

fn bench_variance_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling/estimate_variance");
    for n in [4_000usize, 64_000, 256_000] {
        let data = gaussian_data(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_function(format!("n={n}"), |b| {
            let mut rng = bench_rng();
            b.iter(|| estimate_variance(&mut rng, black_box(&data), eps(0.5), 0.1).unwrap())
        });
    }
    group.finish();
}

fn bench_iqr_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling/estimate_iqr");
    for n in [4_000usize, 64_000, 256_000] {
        let data = gaussian_data(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_function(format!("n={n}"), |b| {
            let mut rng = bench_rng();
            b.iter(|| estimate_iqr(&mut rng, black_box(&data), eps(1.0), 0.1).unwrap())
        });
    }
    group.finish();
}

/// Old-vs-new `pair_gaps` counting at n = 10⁶: the historical
/// implementation sorted all n/2 gaps (`O(n log n)`) so the SVT
/// searches could `partition_point`; the rewrite answers each of the
/// `O(log log)` thresholds with an `O(n)` (summary-assisted) count.
fn bench_pair_gaps_counting(c: &mut Criterion) {
    let n = 1_000_000;
    let data = gaussian_data(n);
    // The thresholds a typical Algorithm 7 run probes (up/down doubling
    // around the data scale).
    let thresholds: Vec<f64> = (-10..=10).map(|k| 2f64.powi(k)).collect();
    let mut group = c.benchmark_group("scaling/pair_gaps_count_n=1e6");
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("old_full_sort", |b| {
        b.iter(|| {
            let mut rng = bench_rng();
            let gaps = pair_gaps(&mut rng, black_box(&data));
            let mut sorted = gaps.values().to_vec();
            sorted.sort_by(f64::total_cmp);
            thresholds
                .iter()
                .map(|&x| sorted.partition_point(|&v| v <= x))
                .sum::<usize>()
        })
    });
    group.bench_function("new_linear_count", |b| {
        b.iter(|| {
            let mut rng = bench_rng();
            let gaps = pair_gaps(&mut rng, black_box(&data));
            thresholds.iter().map(|&x| gaps.count_le(x)).sum::<usize>()
        })
    });
    group.finish();
}

/// Fused vs separate clipped-mean + outside-count at n = 10⁶: the
/// Algorithm 8/9 release formerly re-scanned the full dataset just to
/// fill the `clipped` diagnostic.
fn bench_fused_clipped_mean(c: &mut Criterion) {
    let n = 1_000_000;
    let data = gaussian_data(n);
    let (lo, hi) = (90.0, 110.0);
    let mut group = c.benchmark_group("scaling/clipped_mean_n=1e6");
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("old_two_passes", |b| {
        b.iter(|| {
            let mean = clipped_mean(black_box(&data), lo, hi).unwrap();
            let outside = count_outside(black_box(&data), lo, hi);
            (mean, outside)
        })
    });
    group.bench_function("new_fused_pass", |b| {
        b.iter(|| clipped_mean_with_outside(black_box(&data), lo, hi).unwrap())
    });
    group.finish();
}

/// Old-vs-new clip+sum kernels (DESIGN.md §12) at n = 10⁶: the
/// historical per-element branchy loops against the chunked/branchless
/// rewrites. Both sides are bit-identical in output; only throughput
/// differs.
fn bench_clip_sum_kernels(c: &mut Criterion) {
    let n = 1_000_000;
    let data = gaussian_data(n);
    let (lo, hi) = (90.0, 110.0);
    let ints: Vec<i64> = data.iter().map(|&x| (x * 1000.0) as i64).collect();
    let (ilo, ihi) = (80_000i64, 120_000i64);

    let mut group = c.benchmark_group("kernels/clip_sum_n=1e6");
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("old_count_outside_branchy", |b| {
        b.iter(|| {
            black_box(&data)
                .iter()
                .filter(|&&x| x < lo || x > hi)
                .count()
        })
    });
    group.bench_function("new_count_outside_branchless", |b| {
        b.iter(|| count_outside(black_box(&data), lo, hi))
    });
    group.bench_function("old_clipped_mean_per_element", |b| {
        b.iter(|| {
            let mut mean = 0.0f64;
            for (i, &x) in black_box(&data).iter().enumerate() {
                mean += (clip(x, lo, hi) - mean) / (i + 1) as f64;
            }
            mean
        })
    });
    group.bench_function("new_clipped_mean_chunked", |b| {
        b.iter(|| clipped_mean(black_box(&data), lo, hi).unwrap())
    });
    group.bench_function("old_clipped_sum_i128_per_element", |b| {
        b.iter(|| {
            black_box(&ints)
                .iter()
                .map(|&x| clip_i64(x, ilo, ihi) as i128)
                .sum::<i128>()
        })
    });
    group.bench_function("new_clipped_sum_chunked", |b| {
        b.iter(|| clipped_sum_i64(black_box(&ints), ilo, ihi))
    });
    group.finish();
}

/// Serial vs parallel deterministic sort for cold `ColumnCache` builds
/// at n = 2²⁰ (above `PAR_SORT_MIN_LEN`). Outputs are bit-identical at
/// any thread count; on a 1-core host the parallel side degenerates to
/// ~1x plus merge overhead — the committed baseline notes this.
fn bench_parallel_sort(c: &mut Criterion) {
    let n = 1 << 20;
    let data = gaussian_data(n);
    let threads = updp_core::parallel::max_threads();
    let mut group = c.benchmark_group("kernels/sorted_copy_n=2^20");
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("old_serial_sort", |b| {
        b.iter(|| {
            let mut v = black_box(&data).clone();
            v.sort_by(f64::total_cmp);
            v
        })
    });
    group.bench_function(format!("new_parallel_sort_t={threads}"), |b| {
        b.iter(|| sorted_copy_threads(black_box(&data), threads))
    });
    group.finish();
}

/// Warm-path gap counting at n = 10⁶: the historical per-call pairing
/// shuffle + O(n) scan against the cached `GapSummary`'s
/// `partition_point` counts (DESIGN.md §12). This is the residual
/// warm-quantile cost PR 4 measured, now amortized to one build.
fn bench_gap_summary(c: &mut Criterion) {
    let n = 1_000_000;
    let data = gaussian_data(n);
    let thresholds: Vec<f64> = (-10..=10).map(|k| 2f64.powi(k)).collect();
    let mut group = c.benchmark_group("kernels/warm_gap_count_n=1e6");
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("old_per_call_pairing", |b| {
        b.iter(|| {
            let mut rng = bench_rng();
            let gaps = pair_gaps(&mut rng, black_box(&data));
            thresholds.iter().map(|&x| gaps.count_le(x)).sum::<usize>()
        })
    });
    let summary = GapSummary::build(&data);
    group.bench_function("new_cached_summary", |b| {
        b.iter(|| {
            thresholds
                .iter()
                .map(|&x| black_box(&summary).count_le(x))
                .sum::<usize>()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_mean_scaling,
    bench_variance_scaling,
    bench_iqr_scaling,
    bench_pair_gaps_counting,
    bench_fused_clipped_mean,
    bench_clip_sum_kernels,
    bench_parallel_sort,
    bench_gap_summary
);
criterion_main!(benches);
