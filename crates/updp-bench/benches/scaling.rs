//! The `O(n log n)` scaling claim (paper §1: "all our estimators can be
//! implemented efficiently in O(n log n) time").
//!
//! Criterion's throughput report makes the claim visible: elements/second
//! should stay nearly flat (up to the log factor) as n grows 64x.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use updp_bench::{bench_rng, gaussian_data};
use updp_core::privacy::Epsilon;
use updp_statistical::{estimate_iqr, estimate_mean, estimate_variance};

fn eps(v: f64) -> Epsilon {
    Epsilon::new(v).unwrap()
}

fn bench_mean_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling/estimate_mean");
    for n in [4_000usize, 16_000, 64_000, 256_000] {
        let data = gaussian_data(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_function(format!("n={n}"), |b| {
            let mut rng = bench_rng();
            b.iter(|| estimate_mean(&mut rng, black_box(&data), eps(0.5), 0.1).unwrap())
        });
    }
    group.finish();
}

fn bench_variance_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling/estimate_variance");
    for n in [4_000usize, 64_000, 256_000] {
        let data = gaussian_data(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_function(format!("n={n}"), |b| {
            let mut rng = bench_rng();
            b.iter(|| estimate_variance(&mut rng, black_box(&data), eps(0.5), 0.1).unwrap())
        });
    }
    group.finish();
}

fn bench_iqr_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling/estimate_iqr");
    for n in [4_000usize, 64_000, 256_000] {
        let data = gaussian_data(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_function(format!("n={n}"), |b| {
            let mut rng = bench_rng();
            b.iter(|| estimate_iqr(&mut rng, black_box(&data), eps(1.0), 0.1).unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_mean_scaling,
    bench_variance_scaling,
    bench_iqr_scaling
);
criterion_main!(benches);
