//! Benchmarks for the Section 3 empirical estimators.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use updp_bench::{bench_rng, int_data};
use updp_core::privacy::Epsilon;
use updp_empirical::{
    infinite_domain_mean, infinite_domain_quantile, infinite_domain_radius, infinite_domain_range,
    SortedInts,
};

fn eps(v: f64) -> Epsilon {
    Epsilon::new(v).unwrap()
}

fn dataset(n: usize) -> SortedInts {
    SortedInts::new(int_data(n, 1 << 24)).unwrap()
}

fn bench_radius(c: &mut Criterion) {
    let d = dataset(10_000);
    c.bench_function("infinite_domain_radius_10k", |b| {
        let mut rng = bench_rng();
        b.iter(|| infinite_domain_radius(&mut rng, black_box(&d), eps(1.0), 0.1))
    });
}

fn bench_range(c: &mut Criterion) {
    let d = dataset(10_000);
    c.bench_function("infinite_domain_range_10k", |b| {
        let mut rng = bench_rng();
        b.iter(|| infinite_domain_range(&mut rng, black_box(&d), eps(1.0), 0.1).unwrap())
    });
}

fn bench_mean(c: &mut Criterion) {
    let mut group = c.benchmark_group("infinite_domain_mean");
    for n in [1_000usize, 10_000, 100_000] {
        let d = dataset(n);
        group.bench_function(format!("n={n}"), |b| {
            let mut rng = bench_rng();
            b.iter(|| infinite_domain_mean(&mut rng, black_box(&d), eps(1.0), 0.1).unwrap())
        });
    }
    group.finish();
}

fn bench_quantile(c: &mut Criterion) {
    let d = dataset(10_000);
    c.bench_function("infinite_domain_quantile_10k", |b| {
        let mut rng = bench_rng();
        b.iter(|| infinite_domain_quantile(&mut rng, black_box(&d), 5_000, eps(1.0), 0.1).unwrap())
    });
}

criterion_group!(
    benches,
    bench_radius,
    bench_range,
    bench_mean,
    bench_quantile
);
criterion_main!(benches);
