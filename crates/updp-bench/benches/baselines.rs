//! Benchmarks for the baseline estimators, so runtime comparisons in
//! EXPERIMENTS.md cover every column of every table.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use updp_baselines::{
    bs19_trimmed_mean, coinpress_mean, dl09_iqr, ksu20_mean, kv18_gaussian_mean, naive_clipped_mean,
};
use updp_bench::{bench_rng, gaussian_data};
use updp_core::privacy::{Delta, Epsilon};

fn eps(v: f64) -> Epsilon {
    Epsilon::new(v).unwrap()
}

fn bench_all_baselines(c: &mut Criterion) {
    let data = gaussian_data(10_000);
    let mut group = c.benchmark_group("baselines_10k");

    group.bench_function("naive_clip", |b| {
        let mut rng = bench_rng();
        b.iter(|| naive_clipped_mean(&mut rng, black_box(&data), 1e4, eps(1.0)).unwrap())
    });
    group.bench_function("kv18_mean", |b| {
        let mut rng = bench_rng();
        b.iter(|| {
            kv18_gaussian_mean(&mut rng, black_box(&data), 1e4, 0.1, 100.0, eps(1.0)).unwrap()
        })
    });
    group.bench_function("coinpress_mean", |b| {
        let mut rng = bench_rng();
        b.iter(|| coinpress_mean(&mut rng, black_box(&data), 1e4, 5.0, eps(1.0), 4).unwrap())
    });
    group.bench_function("ksu20_mean", |b| {
        let mut rng = bench_rng();
        b.iter(|| ksu20_mean(&mut rng, black_box(&data), 1e4, 2, 25.0, eps(1.0)).unwrap())
    });
    group.bench_function("bs19_trimmed_mean", |b| {
        let mut rng = bench_rng();
        b.iter(|| bs19_trimmed_mean(&mut rng, black_box(&data), 1e4, 0.05, eps(1.0)).unwrap())
    });
    group.bench_function("dl09_iqr", |b| {
        let mut rng = bench_rng();
        let delta = Delta::new(1e-6).unwrap();
        b.iter(|| dl09_iqr(&mut rng, black_box(&data), eps(1.0), delta))
    });
    group.finish();
}

criterion_group!(benches, bench_all_baselines);
criterion_main!(benches);
