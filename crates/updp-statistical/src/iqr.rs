//! `EstimateIQR` — Algorithm 10 (Theorem 6.2).
//!
//! The universal ε-DP scale estimator:
//!
//! 1. `IQR̲ ← EstimateIQRLowerBound(D, ε/3, β/6)`;
//! 2. discretize with bucket `b = IQR̲/n` (so discretization error is a
//!    vanishing `IQR/n` term);
//! 3. `X̃_{n/4}, X̃_{3n/4}` via `InfiniteDomainQuantile` (ε/3, β/6 each);
//! 4. return their difference.
//!
//! Theorem 6.2: sample complexity with privacy term
//! `Õ(1/(εα·θ(α/4)))` — convergence `α ∝ 1/(εn) + 1/√n`, versus the
//! previous (and only prior) universal IQR estimator [DL09], which needs
//! `(ε, δ)`-DP *and* converges at `α ∝ 1/(ε log n)` — exponentially
//! slower in n. The `iqr` experiment measures exactly this gap.

use crate::iqr_lower_bound::estimate_iqr_lower_bound_view;
use rand::Rng;
use updp_core::error::{ensure_finite, Result, UpdpError};
use updp_core::privacy::Epsilon;
use updp_empirical::discretize::real_quantile_view;
use updp_empirical::view::{ColumnCache, ColumnView};

/// Diagnostics accompanying a universal IQR estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IqrEstimate {
    /// The ε-DP estimate `ĨQR`.
    pub estimate: f64,
    /// The privatized first quartile `X̃_{n/4}`.
    pub q1: f64,
    /// The privatized third quartile `X̃_{3n/4}`.
    pub q3: f64,
    /// The bucket size `IQR̲/n` used for discretization.
    pub bucket: f64,
}

/// Minimum dataset size accepted.
pub const MIN_N: usize = 16;

/// The universal ε-DP IQR estimator (Algorithm 10).
pub fn estimate_iqr<R: Rng + ?Sized>(
    rng: &mut R,
    data: &[f64],
    epsilon: Epsilon,
    beta: f64,
) -> Result<IqrEstimate> {
    estimate_iqr_view(rng, &ColumnView::bare(data), epsilon, beta)
}

/// [`estimate_iqr`] over a [`ColumnView`]: the discretized grid for
/// the privately-chosen bucket is reused both *within* a call (the
/// two quartiles always share one bucket — a throwaway local cache is
/// attached when the caller's view has none, so every call pays one
/// `O(n log n)` build instead of two) and *across* calls on the same
/// dataset snapshot. Bit-identical to [`estimate_iqr`] for the same
/// seed.
pub fn estimate_iqr_view<R: Rng + ?Sized>(
    rng: &mut R,
    view: &ColumnView<'_>,
    epsilon: Epsilon,
    beta: f64,
) -> Result<IqrEstimate> {
    if !view.has_cache() {
        let cache = ColumnCache::new();
        return estimate_iqr_view(rng, &ColumnView::cached(view.data(), &cache), epsilon, beta);
    }
    let data = view.data();
    // With an opt-in pair-gap summary attached (DESIGN.md §12) the
    // O(n) finiteness scan collapses to an O(1) check with the same
    // error; without one, behavior is bit-identical to before.
    match view.gap_summary() {
        Some(summary) if summary.all_finite() => {}
        Some(_) => {
            return Err(UpdpError::NonFiniteInput {
                context: "estimate_iqr input",
            })
        }
        None => ensure_finite(data, "estimate_iqr input")?,
    }
    let n = data.len();
    if n < MIN_N {
        return Err(UpdpError::InsufficientData {
            required: MIN_N,
            actual: n,
            context: "EstimateIQR",
        });
    }
    if !(beta > 0.0 && beta < 1.0) {
        return Err(UpdpError::InvalidParameter {
            name: "beta",
            reason: format!("must be in (0,1), got {beta}"),
        });
    }

    let third = epsilon.scale(1.0 / 3.0);
    let lb = estimate_iqr_lower_bound_view(rng, view, third, beta / 6.0)?;
    let bucket = (lb / n as f64).max(f64::MIN_POSITIVE);

    let q1 = real_quantile_view(rng, view, n / 4, bucket, third, beta / 6.0)?;
    let q3 = real_quantile_view(rng, view, 3 * n / 4, bucket, third, beta / 6.0)?;

    Ok(IqrEstimate {
        estimate: q3 - q1,
        q1,
        q3,
        bucket,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use updp_core::rng::seeded;
    use updp_dist::{Cauchy, ContinuousDistribution, Gaussian, LogNormal, Uniform};

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    fn median_rel_error<D: ContinuousDistribution>(
        dist: &D,
        n: usize,
        e: Epsilon,
        trials: u64,
        master: u64,
    ) -> f64 {
        let truth = dist.iqr();
        let mut errs: Vec<f64> = (0..trials)
            .map(|t| {
                let mut rng = seeded(updp_core::rng::child_seed(master, t));
                let data = dist.sample_vec(&mut rng, n);
                let r = estimate_iqr(&mut rng, &data, e, 0.1).unwrap();
                (r.estimate - truth).abs() / truth
            })
            .collect();
        errs.sort_by(f64::total_cmp);
        errs[errs.len() / 2]
    }

    #[test]
    fn gaussian_iqr_is_accurate() {
        let g = Gaussian::new(10.0, 2.0).unwrap();
        let err = median_rel_error(&g, 20_000, eps(0.5), 30, 1);
        assert!(err < 0.1, "median relative error {err}");
    }

    #[test]
    fn lognormal_iqr_skewed_data() {
        let ln = LogNormal::new(0.0, 1.0).unwrap();
        let err = median_rel_error(&ln, 20_000, eps(0.5), 30, 2);
        assert!(err < 0.15, "lognormal median relative error {err}");
    }

    #[test]
    fn cauchy_iqr_no_moments_needed() {
        // IQR is defined even when mean/variance are not.
        let c = Cauchy::new(-3.0, 1.0).unwrap();
        let err = median_rel_error(&c, 20_000, eps(0.5), 30, 3);
        assert!(err < 0.15, "cauchy median relative error {err}");
    }

    #[test]
    fn uniform_iqr() {
        let u = Uniform::new(0.0, 100.0).unwrap();
        let err = median_rel_error(&u, 20_000, eps(0.5), 30, 4);
        assert!(err < 0.1, "uniform median relative error {err}");
    }

    #[test]
    fn quartiles_are_ordered_and_near_truth() {
        let g = Gaussian::new(0.0, 1.0).unwrap();
        let mut rng = seeded(5);
        let data = g.sample_vec(&mut rng, 10_000);
        let r = estimate_iqr(&mut rng, &data, eps(1.0), 0.1).unwrap();
        assert!(r.q1 < r.q3, "quartiles out of order: {r:?}");
        assert!((r.q1 - g.quantile(0.25)).abs() < 0.3, "q1 {}", r.q1);
        assert!((r.q3 - g.quantile(0.75)).abs() < 0.3, "q3 {}", r.q3);
        assert!(r.bucket > 0.0 && r.bucket < 1.0);
    }

    #[test]
    fn error_decreases_with_n() {
        let g = Gaussian::new(0.0, 1.0).unwrap();
        let small = median_rel_error(&g, 1_000, eps(0.5), 30, 6);
        let large = median_rel_error(&g, 30_000, eps(0.5), 30, 7);
        assert!(large < small, "no shrink: {small} -> {large}");
    }

    #[test]
    fn tiny_scale_data() {
        let g = Gaussian::new(1.0, 1e-7).unwrap();
        let err = median_rel_error(&g, 10_000, eps(0.5), 20, 8);
        assert!(err < 0.2, "tiny-scale median relative error {err}");
    }

    #[test]
    fn rejects_bad_inputs() {
        let mut rng = seeded(9);
        assert!(estimate_iqr(&mut rng, &[1.0; 4], eps(0.5), 0.1).is_err());
        assert!(estimate_iqr(&mut rng, &[f64::INFINITY; 100], eps(0.5), 0.1).is_err());
        assert!(estimate_iqr(&mut rng, &[1.0; 100], eps(0.5), -0.1).is_err());
    }
}
