//! # updp-statistical — the universal private estimators (Sections 4–6)
//!
//! The paper's headline contribution: ε-DP (pure DP) estimators for the
//! statistical mean, variance, and IQR of an *arbitrary, unknown*
//! continuous distribution `P` over ℝ — no a-priori range for the mean
//! (A1), no variance bounds (A2), no distributional family assumption
//! (A3). This is the first time A1/A2 are removed under pure DP.
//!
//! | Algorithm | Module | Theorems |
//! |---|---|---|
//! | 7 `EstimateIQRLowerBound` | [`iqr_lower_bound`] | 4.3 — the private bucket size |
//! | 8 `EstimateMean` | [`mean`] | 4.5 (general), 4.6 (Gaussian), 4.9 (heavy-tailed) |
//! | 9 `EstimateVariance` | [`variance`] | 5.2 (general), 5.3 (Gaussian), 5.5 (heavy-tailed — first of its kind) |
//! | 10 `EstimateIQR` | [`iqr`] | 6.2 — `α ∝ 1/(εn)` vs [DL09]'s `1/(ε log n)` |
//! | general quantiles (extension) | [`quantile`] | §1's "1/4 and 3/4 are not important" made concrete |
//! | multivariate mean (extension, §1.2) | [`multivariate`] | coordinate-wise Laplace composition, `Õ(d^{3/2}/(εn))` in ℓ₂ |
//!
//! [`UniversalEstimator`] is the one-stop configured facade.
//!
//! All estimators run in `O(n log n)` time and are universal: utility
//! guarantees degrade only with log-log of the ill-behavedness `1/ϕ(1/16)`
//! of `P`, and privacy holds unconditionally for every input.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod estimator;
pub mod iqr;
pub mod iqr_lower_bound;
pub mod mean;
pub mod multivariate;
pub mod quantile;
mod scratch;
pub mod variance;

pub use estimator::{
    check_declared, universal_estimators, AllEstimates, ColumnCache, ColumnView, DataView,
    EstimateParams, Estimator, ParamSpec, PreparedDataset, Release, UniversalEstimator,
    UniversalIqr, UniversalMean, UniversalMultiMean, UniversalQuantile, UniversalVariance,
    DEFAULT_BETA,
};
pub use iqr::{estimate_iqr, estimate_iqr_view, IqrEstimate};
pub use iqr_lower_bound::{
    estimate_iqr_lower_bound, estimate_iqr_lower_bound_view, pair_gaps, Gaps,
};
pub use mean::{
    estimate_mean, estimate_mean_with_bucket, estimate_mean_with_subsample, MeanEstimate,
};
pub use multivariate::{estimate_mean_multivariate, l2_distance, MultivariateMeanEstimate};
pub use quantile::{
    estimate_quantile, estimate_quantile_range, estimate_quantile_view, QuantileEstimate,
};
pub use variance::{estimate_variance, VarianceEstimate};
