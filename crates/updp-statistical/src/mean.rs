//! `EstimateMean` — Algorithm 8 (Theorems 4.5, 4.6, 4.9).
//!
//! The universal ε-DP mean estimator for an arbitrary unknown `P`:
//!
//! 1. bucket size: `IQR̲ ← EstimateIQRLowerBound(D, ε/8, β/9)`;
//! 2. draw a subsample `D′` of `m = εn` values from `D` without
//!    replacement;
//! 3. inner budget `ε′ = log((e^ε − 1)/ε + 1)` (amplification,
//!    Theorem 2.4, makes the subsampled range finder cost `3ε/4`);
//! 4. `R̃(D′) ← InfiniteDomainRange(D′, 3ε′/4, β/9)` with bucket `IQR̲`;
//! 5. release `ClippedMean(D, R̃(D′)) + Lap(8·|R̃(D′)|/(εn))`.
//!
//! Why a subsample? In the empirical setting each clipped outlier may
//! cost `γ(D)/n` of bias, so one minimizes the number of outliers. For
//! i.i.d. data the bias accounting is gentler and a *tighter* range —
//! found on fewer points — wins: the noise scales with `|R̃|` while the
//! extra clipping bias stays controlled. `m = εn` is exactly the point
//! where the number of full-data outliers stops improving (§4.2).
//!
//! Theorem 4.5 gives the instance-specific error; Theorems 4.6/4.9
//! specialize it to Gaussians and heavy tails, beating all prior pure-DP
//! estimators and removing assumptions A1/A2 for the first time.

use crate::iqr_lower_bound::estimate_iqr_lower_bound;
use crate::scratch::with_subsample;
use rand::Rng;
use updp_core::amplification::paper_inner_epsilon;
use updp_core::clipped_mean::clipped_mean_with_outside;
use updp_core::error::{ensure_finite, Result, UpdpError};
use updp_core::laplace::sample_laplace;
use updp_core::privacy::Epsilon;
use updp_empirical::discretize::{real_range, RealRange};

/// Diagnostics accompanying a universal mean estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeanEstimate {
    /// The ε-DP estimate `μ̃`.
    pub estimate: f64,
    /// The private IQR lower bound used as the bucket size.
    pub bucket: f64,
    /// The privatized clipping range found on the subsample.
    pub range: RealRange,
    /// Size of the subsample `D′`.
    pub subsample: usize,
    /// Elements of the *full* data clipped by the range (diagnostic).
    pub clipped: usize,
}

/// Minimum dataset size the implementation accepts. Theorem 4.5's actual
/// requirement is distribution-dependent; this floor only guards the
/// pairing and subsampling plumbing.
pub const MIN_N: usize = 16;

/// The universal ε-DP mean estimator (Algorithm 8).
pub fn estimate_mean<R: Rng + ?Sized>(
    rng: &mut R,
    data: &[f64],
    epsilon: Epsilon,
    beta: f64,
) -> Result<MeanEstimate> {
    ensure_finite(data, "estimate_mean input")?;
    let n = data.len();
    if n < MIN_N {
        return Err(UpdpError::InsufficientData {
            required: MIN_N,
            actual: n,
            context: "EstimateMean",
        });
    }
    if !(beta > 0.0 && beta < 1.0) {
        return Err(UpdpError::InvalidParameter {
            name: "beta",
            reason: format!("must be in (0,1), got {beta}"),
        });
    }

    // Stage 1 (ε/8): private bucket size.
    let bucket = estimate_iqr_lower_bound(rng, data, epsilon.scale(1.0 / 8.0), beta / 9.0)?;

    // Stage 2: subsample of m = εn values (at least enough for the range
    // finder's own pairing plumbing, at most n), drawn into the reusable
    // per-thread scratch buffer.
    let m = ((epsilon.get() * n as f64).ceil() as usize).clamp(MIN_N.min(n), n);

    // Stage 3 (amplified to 3ε/4): range on the subsample.
    let inner = paper_inner_epsilon(epsilon);
    let range = with_subsample(rng, data, m, |rng, subsample| {
        real_range(rng, subsample, bucket, inner.scale(3.0 / 4.0), beta / 9.0)
    })?;

    // Stage 4 (ε/8): clipped mean of the FULL data over R̃(D′), fused
    // with the clipping-bias count — one pass over the data.
    let (mean, clipped) = clipped_mean_with_outside(data, range.lo, range.hi)?;
    let width = range.width();
    let estimate = if width > 0.0 {
        mean + sample_laplace(rng, 8.0 * width / (epsilon.get() * n as f64))
    } else {
        mean
    };

    Ok(MeanEstimate {
        estimate,
        bucket,
        range,
        subsample: m,
        clipped,
    })
}

/// Variant taking an externally-chosen bucket size, for the
/// `ablate-bucket` experiment (§4.1: is the private `IQR̲` bucket as good
/// as an oracle's?). Skips `EstimateIQRLowerBound`; the ε/8 that stage
/// would have spent is simply not spent, so this variant is ε-DP *given*
/// a data-independent bucket.
pub fn estimate_mean_with_bucket<R: Rng + ?Sized>(
    rng: &mut R,
    data: &[f64],
    epsilon: Epsilon,
    beta: f64,
    bucket: f64,
) -> Result<MeanEstimate> {
    ensure_finite(data, "estimate_mean input")?;
    let n = data.len();
    if n < MIN_N {
        return Err(UpdpError::InsufficientData {
            required: MIN_N,
            actual: n,
            context: "EstimateMean",
        });
    }
    if !(bucket.is_finite() && bucket > 0.0) {
        return Err(UpdpError::InvalidParameter {
            name: "bucket",
            reason: format!("must be finite and positive, got {bucket}"),
        });
    }
    let m = ((epsilon.get() * n as f64).ceil() as usize).clamp(MIN_N.min(n), n);
    let inner = paper_inner_epsilon(epsilon);
    let range = with_subsample(rng, data, m, |rng, subsample| {
        real_range(rng, subsample, bucket, inner.scale(3.0 / 4.0), beta / 9.0)
    })?;
    let (mean, clipped) = clipped_mean_with_outside(data, range.lo, range.hi)?;
    let width = range.width();
    let estimate = if width > 0.0 {
        mean + sample_laplace(rng, 8.0 * width / (epsilon.get() * n as f64))
    } else {
        mean
    };
    Ok(MeanEstimate {
        estimate,
        bucket,
        range,
        subsample: m,
        clipped,
    })
}

/// Variant exposing the subsample size for the `ablate-subsample`
/// experiment (§4.2's claim that `m = εn` is the sweet spot). Privacy
/// note: changing `m` changes the amplification, so this variant is *not*
/// ε-DP for `m > εn`; it exists purely for utility ablation.
pub fn estimate_mean_with_subsample<R: Rng + ?Sized>(
    rng: &mut R,
    data: &[f64],
    epsilon: Epsilon,
    beta: f64,
    m: usize,
) -> Result<MeanEstimate> {
    ensure_finite(data, "estimate_mean input")?;
    let n = data.len();
    if n < MIN_N || m < 4 || m > n {
        return Err(UpdpError::InvalidParameter {
            name: "m",
            reason: format!("subsample size {m} out of range for n = {n}"),
        });
    }
    let bucket = estimate_iqr_lower_bound(rng, data, epsilon.scale(1.0 / 8.0), beta / 9.0)?;
    let inner = paper_inner_epsilon(epsilon);
    let range = with_subsample(rng, data, m, |rng, subsample| {
        real_range(rng, subsample, bucket, inner.scale(3.0 / 4.0), beta / 9.0)
    })?;
    let (mean, clipped) = clipped_mean_with_outside(data, range.lo, range.hi)?;
    let width = range.width();
    let estimate = if width > 0.0 {
        mean + sample_laplace(rng, 8.0 * width / (epsilon.get() * n as f64))
    } else {
        mean
    };
    Ok(MeanEstimate {
        estimate,
        bucket,
        range,
        subsample: m,
        clipped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use updp_core::rng::seeded;
    use updp_dist::{
        Affine, ContinuousDistribution, Exponential, Gaussian, LaplaceDist, Pareto, StudentT,
        Uniform,
    };

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    fn median_abs_error<D: ContinuousDistribution>(
        dist: &D,
        n: usize,
        e: Epsilon,
        trials: u64,
        master: u64,
    ) -> f64 {
        let truth = dist.mean();
        let mut errs: Vec<f64> = (0..trials)
            .map(|t| {
                let mut rng = seeded(updp_core::rng::child_seed(master, t));
                let data = dist.sample_vec(&mut rng, n);
                let r = estimate_mean(&mut rng, &data, e, 0.1).unwrap();
                (r.estimate - truth).abs()
            })
            .collect();
        errs.sort_by(f64::total_cmp);
        errs[errs.len() / 2]
    }

    #[test]
    fn gaussian_mean_is_accurate() {
        let g = Gaussian::new(5.0, 2.0).unwrap();
        let err = median_abs_error(&g, 20_000, eps(0.5), 30, 1);
        // sampling error ≈ σ/√n ≈ 0.014; privacy ≈ σ√log/(εn) — tiny.
        assert!(err < 0.2, "median error {err}");
    }

    #[test]
    fn works_with_mean_far_from_origin_no_range_needed() {
        // The A1-free headline: μ = 10^7 with zero prior knowledge.
        let g = Gaussian::new(1e7, 1.0).unwrap();
        let err = median_abs_error(&g, 20_000, eps(0.5), 20, 2);
        assert!(err < 1.0, "far-mean median error {err}");
    }

    #[test]
    fn works_on_heavy_tails_without_moment_bounds() {
        // Pareto α=2.5: finite variance, infinite third moment.
        let p = Pareto::new(1.0, 2.5).unwrap();
        let err = median_abs_error(&p, 40_000, eps(0.5), 30, 3);
        // μ = 5/3; tolerate the heavy-tail bias terms.
        assert!(err < 0.5, "pareto median error {err}");
    }

    #[test]
    fn works_on_asymmetric_distributions() {
        let ex = Exponential::new(0.25).unwrap(); // mean 4
        let err = median_abs_error(&ex, 20_000, eps(0.5), 30, 4);
        assert!(err < 0.5, "exponential median error {err}");
    }

    #[test]
    fn works_on_student_t() {
        let t = StudentT::new(3.0, -2.0, 1.0).unwrap();
        let err = median_abs_error(&t, 40_000, eps(0.5), 30, 5);
        assert!(err < 0.5, "student-t median error {err}");
    }

    #[test]
    fn works_on_light_tails() {
        let u = Uniform::new(100.0, 101.0).unwrap();
        let err = median_abs_error(&u, 10_000, eps(0.5), 20, 6);
        assert!(err < 0.05, "uniform median error {err}");
    }

    #[test]
    fn works_on_laplace_data() {
        let l = LaplaceDist::new(0.0, 3.0).unwrap();
        let err = median_abs_error(&l, 20_000, eps(0.5), 20, 7);
        assert!(err < 0.5, "laplace median error {err}");
    }

    #[test]
    fn error_decreases_with_n() {
        let g = Gaussian::new(0.0, 1.0).unwrap();
        let small = median_abs_error(&g, 2_000, eps(0.5), 30, 8);
        let large = median_abs_error(&g, 50_000, eps(0.5), 30, 9);
        assert!(
            large < small,
            "error did not shrink with n: {small} -> {large}"
        );
    }

    #[test]
    fn diagnostics_are_populated() {
        let g = Gaussian::new(0.0, 1.0).unwrap();
        let mut rng = seeded(10);
        let data = g.sample_vec(&mut rng, 5_000);
        let r = estimate_mean(&mut rng, &data, eps(0.5), 0.1).unwrap();
        assert!(r.bucket > 0.0);
        assert!(r.range.width() > 0.0);
        assert!(r.subsample >= MIN_N && r.subsample <= data.len());
        assert!(r.clipped < data.len());
        // Range must cover the bulk of a standard Gaussian.
        assert!(r.range.lo < 0.0 && r.range.hi > 0.0, "range {:?}", r.range);
    }

    #[test]
    fn scaled_shifted_distribution_consistency() {
        // Estimating on 3X+50 should track 3μ+50.
        let base = Gaussian::new(0.0, 1.0).unwrap();
        let moved = Affine::new(base, 50.0, 3.0).unwrap();
        let err = median_abs_error(&moved, 20_000, eps(0.5), 20, 11);
        assert!(err < 0.5, "affine median error {err}");
    }

    #[test]
    fn rejects_bad_inputs() {
        let mut rng = seeded(12);
        let small = vec![1.0; 4];
        assert!(estimate_mean(&mut rng, &small, eps(0.5), 0.1).is_err());
        let nan = vec![f64::NAN; 100];
        assert!(estimate_mean(&mut rng, &nan, eps(0.5), 0.1).is_err());
        let ok = vec![1.0; 100];
        assert!(estimate_mean(&mut rng, &ok, eps(0.5), 2.0).is_err());
    }

    #[test]
    fn subsample_ablation_variant_runs() {
        let g = Gaussian::new(0.0, 1.0).unwrap();
        let mut rng = seeded(13);
        let data = g.sample_vec(&mut rng, 4_000);
        for m in [64, 512, 4_000] {
            let r = estimate_mean_with_subsample(&mut rng, &data, eps(0.5), 0.1, m).unwrap();
            assert_eq!(r.subsample, m);
        }
        assert!(estimate_mean_with_subsample(&mut rng, &data, eps(0.5), 0.1, 2).is_err());
        assert!(estimate_mean_with_subsample(&mut rng, &data, eps(0.5), 0.1, 5_000).is_err());
    }
}
