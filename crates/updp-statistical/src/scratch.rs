//! Reusable per-thread scratch buffers for the subsampling hot path.
//!
//! Algorithms 8 and 9 draw a subsample of `m = εn` values without
//! replacement on *every* estimate. The vendored `rand` shim's
//! `seq::index::sample` allocates a fresh `Vec<usize>` index pool of
//! length `n` plus a fresh `Vec<f64>` for the values per call — two
//! `O(n)` heap allocations per trial that dominate allocator traffic in
//! many-trial experiments. This module keeps both buffers in
//! thread-local scratch (safe under `updp_core::parallel`, which gives
//! each worker thread its own locals) and replays **exactly** the same
//! partial Fisher–Yates RNG draw sequence as
//! `rand::seq::index::sample`, so subsamples — and therefore every
//! downstream estimate — are bit-identical to the allocating path.

use rand::Rng;
use std::cell::RefCell;

thread_local! {
    static SCRATCH: RefCell<(Vec<usize>, Vec<f64>)> =
        const { RefCell::new((Vec::new(), Vec::new())) };
}

/// Draws `m` values of `data` without replacement into a reusable
/// thread-local buffer and hands the subsample slice (in draw order,
/// matching `rand::seq::index::sample` exactly) to `f` together with
/// the generator.
///
/// Non-reentrant: `f` must not itself call `with_subsample` (the
/// estimator call graph never does; the thread-local panics on
/// re-entrant borrow rather than corrupting the sample).
///
/// Panics if `m > data.len()`, matching `rand::seq::index::sample`.
pub(crate) fn with_subsample<R, T, F>(rng: &mut R, data: &[f64], m: usize, f: F) -> T
where
    R: Rng + ?Sized,
    F: FnOnce(&mut R, &[f64]) -> T,
{
    let n = data.len();
    assert!(m <= n, "cannot sample {m} indices from 0..{n}");
    SCRATCH.with(|cell| {
        let (pool, values) = &mut *cell.borrow_mut();
        // Refill the index pool in place: O(n) writes, no allocation
        // once the high-water capacity is reached.
        pool.clear();
        pool.extend(0..n);
        // Partial Fisher–Yates with the identical draw sequence
        // (`gen_range(i..n)` per position) as the vendored
        // `seq::index::sample`.
        for i in 0..m {
            let j = rng.gen_range(i..n);
            pool.swap(i, j);
        }
        values.clear();
        values.extend(pool[..m].iter().map(|&i| data[i]));
        f(rng, values)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use updp_core::rng::seeded;

    #[test]
    fn matches_vendored_index_sample_bitwise() {
        let data: Vec<f64> = (0..257).map(|i| (i as f64).sin()).collect();
        for (m, seed) in [(1usize, 1u64), (16, 2), (100, 3), (257, 4)] {
            let mut a = seeded(seed);
            let idx = rand::seq::index::sample(&mut a, data.len(), m);
            let reference: Vec<f64> = idx.iter().map(|i| data[i]).collect();
            let after_a: u64 = {
                use rand::Rng;
                a.gen()
            };

            let mut b = seeded(seed);
            let (got, after_b) = with_subsample(&mut b, &data, m, |rng, sub| {
                use rand::Rng;
                (sub.to_vec(), rng.gen::<u64>())
            });
            assert_eq!(got, reference, "m = {m}");
            // The generator must be left in the identical state.
            assert_eq!(after_a, after_b, "m = {m}");
        }
    }

    #[test]
    fn buffer_is_reused_across_calls() {
        let data: Vec<f64> = (0..64).map(f64::from).collect();
        let mut rng = seeded(9);
        let first = with_subsample(&mut rng, &data, 8, |_, sub| sub.to_vec());
        let second = with_subsample(&mut rng, &data, 8, |_, sub| sub.to_vec());
        assert_eq!(first.len(), 8);
        assert_eq!(second.len(), 8);
        // Distinct draws (the RNG advanced) but both valid subsamples.
        assert!(first.iter().all(|v| data.contains(v)));
        assert!(second.iter().all(|v| data.contains(v)));
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn oversampling_panics_like_upstream() {
        let mut rng = seeded(10);
        with_subsample(&mut rng, &[1.0, 2.0], 3, |_, _| ());
    }
}
