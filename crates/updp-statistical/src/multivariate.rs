//! Multivariate mean estimation — the §1.2 extension.
//!
//! The paper (§1.2): "Using the idea of [HLY21] but replacing [the]
//! Gaussian mechanism with [the] Laplace mechanism, we can extend our
//! pure-DP estimator to the multivariate case. However, it does not get
//! the optimal privacy term Õ(d/(εn))" — achieving the optimal
//! d-dependence is listed as the paper's first open problem, open even
//! *with* assumptions A1/A2/A3.
//!
//! We implement the coordinate-wise construction: run the universal
//! univariate estimator per coordinate with budget `ε/d` (basic
//! composition, Lemma 2.2). Per-coordinate error is the Theorem 4.5
//! bound at `ε/d`, so the ℓ∞ privacy term is `Õ(d/(εn))` per coordinate
//! and the ℓ₂ term `Õ(d^{3/2}/(εn))` — exactly the suboptimality the
//! paper describes. Each coordinate keeps full universality: different
//! coordinates may live at wildly different locations and scales with no
//! configuration.

use crate::mean::{estimate_mean, MeanEstimate};
use rand::Rng;
use updp_core::error::{Result, UpdpError};
use updp_core::privacy::Epsilon;

/// Result of a multivariate universal mean estimation.
#[derive(Debug, Clone)]
pub struct MultivariateMeanEstimate {
    /// The ε-DP estimate of the mean vector.
    pub estimate: Vec<f64>,
    /// Per-coordinate diagnostics (each produced at budget ε/d).
    pub coordinates: Vec<MeanEstimate>,
}

/// ε-DP universal estimate of a d-dimensional mean.
///
/// `data` is row-major: each inner slice is one record of length `d`.
/// Total privacy cost is `epsilon` (ε/d per coordinate under basic
/// composition — one record participates in every coordinate).
pub fn estimate_mean_multivariate<R: Rng + ?Sized>(
    rng: &mut R,
    data: &[Vec<f64>],
    epsilon: Epsilon,
    beta: f64,
) -> Result<MultivariateMeanEstimate> {
    if data.is_empty() {
        return Err(UpdpError::EmptyDataset);
    }
    let d = data[0].len();
    if d == 0 {
        return Err(UpdpError::InvalidParameter {
            name: "data",
            reason: "records must have at least one coordinate".into(),
        });
    }
    if data.iter().any(|row| row.len() != d) {
        return Err(UpdpError::InvalidParameter {
            name: "data",
            reason: "all records must have the same dimension".into(),
        });
    }
    let per_coord = epsilon.scale(1.0 / d as f64);
    // β is also split so the whole vector succeeds w.p. ≥ 1 − β.
    let per_beta = beta / d as f64;
    let mut coordinates = Vec::with_capacity(d);
    let mut estimate = Vec::with_capacity(d);
    let mut column = Vec::with_capacity(data.len());
    for j in 0..d {
        column.clear();
        column.extend(data.iter().map(|row| row[j]));
        let r = estimate_mean(rng, &column, per_coord, per_beta)?;
        estimate.push(r.estimate);
        coordinates.push(r);
    }
    Ok(MultivariateMeanEstimate {
        estimate,
        coordinates,
    })
}

/// ℓ₂ distance helper for evaluating multivariate estimates.
pub fn l2_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
// Exact `==` on f64 is deliberate in tests: they pin bit-identical
// outputs (DESIGN.md §5), so an epsilon tolerance would weaken them.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use updp_core::rng::seeded;
    use updp_dist::{ContinuousDistribution, Gaussian};

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    /// Rows with independent Gaussian coordinates of given (μ, σ).
    fn sample_rows(params: &[(f64, f64)], n: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = seeded(seed);
        let dists: Vec<Gaussian> = params
            .iter()
            .map(|&(m, s)| Gaussian::new(m, s).unwrap())
            .collect();
        (0..n)
            .map(|_| dists.iter().map(|g| g.sample(&mut rng)).collect())
            .collect()
    }

    #[test]
    fn recovers_mixed_scale_mean_vector() {
        // Coordinates at completely different locations and scales —
        // universality must hold per coordinate.
        let params = [(0.0, 1.0), (1e6, 10.0), (-500.0, 0.01)];
        let data = sample_rows(&params, 40_000, 1);
        let mut rng = seeded(2);
        let r = estimate_mean_multivariate(&mut rng, &data, eps(1.5), 0.1).unwrap();
        assert_eq!(r.estimate.len(), 3);
        assert!((r.estimate[0] - 0.0).abs() < 0.5, "c0 {}", r.estimate[0]);
        assert!((r.estimate[1] - 1e6).abs() < 5.0, "c1 {}", r.estimate[1]);
        assert!((r.estimate[2] + 500.0).abs() < 0.01, "c2 {}", r.estimate[2]);
    }

    #[test]
    fn l2_error_grows_with_dimension() {
        // The paper's point: coordinate-wise composition pays ~d^{3/2} in
        // ℓ₂; doubling d should visibly increase the ℓ₂ error.
        let n = 8_000;
        let e = eps(0.5);
        let err_for = |d: usize, seed: u64| -> f64 {
            let params: Vec<(f64, f64)> = (0..d).map(|_| (0.0, 1.0)).collect();
            let truth = vec![0.0; d];
            let mut errs: Vec<f64> = (0..10)
                .map(|t| {
                    let data = sample_rows(&params, n, seed + t);
                    let mut rng = seeded(seed ^ t);
                    let r = estimate_mean_multivariate(&mut rng, &data, e, 0.2).unwrap();
                    l2_distance(&r.estimate, &truth)
                })
                .collect();
            errs.sort_by(f64::total_cmp);
            errs[5]
        };
        let d2 = err_for(2, 100);
        let d8 = err_for(8, 200);
        assert!(d8 > d2, "ℓ₂ error should grow with d: {d2} vs {d8}");
    }

    #[test]
    fn rejects_ragged_and_empty_input() {
        let mut rng = seeded(3);
        assert!(estimate_mean_multivariate(&mut rng, &[], eps(1.0), 0.1).is_err());
        let ragged = vec![vec![1.0, 2.0], vec![3.0]];
        assert!(estimate_mean_multivariate(&mut rng, &ragged, eps(1.0), 0.1).is_err());
        let empty_rows = vec![vec![], vec![]];
        assert!(estimate_mean_multivariate(&mut rng, &empty_rows, eps(1.0), 0.1).is_err());
    }

    #[test]
    fn diagnostics_cover_every_coordinate() {
        let data = sample_rows(&[(5.0, 1.0), (7.0, 2.0)], 5_000, 4);
        let mut rng = seeded(5);
        let r = estimate_mean_multivariate(&mut rng, &data, eps(1.0), 0.1).unwrap();
        assert_eq!(r.coordinates.len(), 2);
        for c in &r.coordinates {
            assert!(c.bucket > 0.0);
            assert!(c.range.lo < c.range.hi);
        }
    }

    #[test]
    fn l2_distance_basics() {
        assert_eq!(l2_distance(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(l2_distance(&[1.0], &[1.0]), 0.0);
    }
}
