//! Universal statistical quantile estimation.
//!
//! The paper's Algorithm 10 estimates the IQR as a difference of two
//! privatized order statistics, and notes (§1) that "the particular
//! choices of 1/4 and 3/4 are not very important: changing them to other
//! constants does not affect our results". This module exposes that
//! generality directly: an ε-DP estimator for `F⁻¹(q)` at any fixed
//! `q ∈ (0, 1)`, and the interquantile range between two such points —
//! the building block behind the latency-SLO style applications.
//!
//! Construction (identical budget pattern to Algorithm 10): privately
//! lower-bound the IQR for the bucket size (ε/2), discretize with
//! `b = IQR̲/n`, and run `InfiniteDomainQuantile` (ε/2). By the same
//! analysis as Theorem 6.2 (with `θ` taken near `F⁻¹(q)` instead of the
//! quartiles) the rank error is `O(ε⁻¹ log(γ/(bβ)))` and the value error
//! converges at `α ∝ 1/(εn·θ) + 1/√n` for any `q` bounded away from
//! {0, 1}.

use crate::iqr_lower_bound::{estimate_iqr_lower_bound, estimate_iqr_lower_bound_view};
use rand::Rng;
use updp_core::error::{ensure_finite, Result, UpdpError};
use updp_core::privacy::Epsilon;
use updp_empirical::discretize::real_quantile_view;
use updp_empirical::view::{ColumnCache, ColumnView};

/// Diagnostics accompanying a universal quantile estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantileEstimate {
    /// The ε-DP estimate of `F⁻¹(q)`.
    pub estimate: f64,
    /// The quantile level requested.
    pub q: f64,
    /// The rank targeted (`⌈q·n⌉` clamped to `[1, n]`).
    pub rank: usize,
    /// The bucket size used for discretization.
    pub bucket: f64,
}

/// Minimum dataset size accepted.
pub const MIN_N: usize = 16;

fn validate(data: &[f64], q: f64, beta: f64) -> Result<usize> {
    ensure_finite(data, "estimate_quantile input")?;
    validate_params(data.len(), q, beta)
}

fn validate_params(n: usize, q: f64, beta: f64) -> Result<usize> {
    if n < MIN_N {
        return Err(UpdpError::InsufficientData {
            required: MIN_N,
            actual: n,
            context: "EstimateQuantile",
        });
    }
    if !(q > 0.0 && q < 1.0) {
        return Err(UpdpError::InvalidParameter {
            name: "q",
            reason: format!("quantile level must be in (0,1), got {q}"),
        });
    }
    if !(beta > 0.0 && beta < 1.0) {
        return Err(UpdpError::InvalidParameter {
            name: "beta",
            reason: format!("must be in (0,1), got {beta}"),
        });
    }
    Ok(n)
}

/// ε-DP universal estimate of the `q`-quantile `F⁻¹(q)` of the unknown
/// data distribution.
pub fn estimate_quantile<R: Rng + ?Sized>(
    rng: &mut R,
    data: &[f64],
    q: f64,
    epsilon: Epsilon,
    beta: f64,
) -> Result<QuantileEstimate> {
    estimate_quantile_view(rng, &ColumnView::bare(data), q, epsilon, beta)
}

/// [`estimate_quantile`] over a [`ColumnView`]: with a cached view the
/// discretized grid for the privately-chosen bucket is built once per
/// `(dataset version, bucket)` and reused across calls. When the view
/// additionally carries a pair-gap summary (DESIGN.md §12, opt-in),
/// the per-call `O(n)` finiteness scan and pair-gap scan are replaced
/// by O(1)/O(log n) summary queries, so warm repeat queries do no
/// per-call work linear in `n` outside the mechanism itself.
/// Bit-identical to [`estimate_quantile`] for the same seed whenever
/// no summary is attached (the default).
pub fn estimate_quantile_view<R: Rng + ?Sized>(
    rng: &mut R,
    view: &ColumnView<'_>,
    q: f64,
    epsilon: Epsilon,
    beta: f64,
) -> Result<QuantileEstimate> {
    let data = view.data();
    let n = match view.gap_summary() {
        Some(summary) if summary.all_finite() => validate_params(data.len(), q, beta)?,
        Some(_) => {
            return Err(UpdpError::NonFiniteInput {
                context: "estimate_quantile input",
            })
        }
        None => validate(data, q, beta)?,
    };
    let half = epsilon.scale(0.5);
    let lb = estimate_iqr_lower_bound_view(rng, view, half, beta / 2.0)?;
    let bucket = (lb / n as f64).max(f64::MIN_POSITIVE);
    let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
    let estimate = real_quantile_view(rng, view, rank, bucket, half, beta / 2.0)?;
    Ok(QuantileEstimate {
        estimate,
        q,
        rank,
        bucket,
    })
}

/// ε-DP universal estimate of the interquantile range
/// `F⁻¹(q_hi) − F⁻¹(q_lo)` — Algorithm 10 generalized beyond
/// `(1/4, 3/4)`.
pub fn estimate_quantile_range<R: Rng + ?Sized>(
    rng: &mut R,
    data: &[f64],
    q_lo: f64,
    q_hi: f64,
    epsilon: Epsilon,
    beta: f64,
) -> Result<f64> {
    if q_lo >= q_hi {
        return Err(UpdpError::InvalidParameter {
            name: "q_lo/q_hi",
            reason: format!("need q_lo < q_hi, got {q_lo} and {q_hi}"),
        });
    }
    let n = validate(data, q_lo, beta)?;
    validate(data, q_hi, beta)?;
    let third = epsilon.scale(1.0 / 3.0);
    let lb = estimate_iqr_lower_bound(rng, data, third, beta / 6.0)?;
    let bucket = (lb / n as f64).max(f64::MIN_POSITIVE);
    let rank_lo = ((q_lo * n as f64).ceil() as usize).clamp(1, n);
    let rank_hi = ((q_hi * n as f64).ceil() as usize).clamp(1, n);
    // Both order statistics share one bucket: a throwaway local cache
    // builds the discretized grid once instead of twice.
    let cache = ColumnCache::new();
    let view = ColumnView::cached(data, &cache);
    let lo = real_quantile_view(rng, &view, rank_lo, bucket, third, beta / 6.0)?;
    let hi = real_quantile_view(rng, &view, rank_hi, bucket, third, beta / 6.0)?;
    Ok(hi - lo)
}

#[cfg(test)]
// Exact `==` on f64 is deliberate in tests: they pin bit-identical
// outputs (DESIGN.md §5), so an epsilon tolerance would weaken them.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use updp_core::rng::{child_seed, seeded};
    use updp_dist::{ContinuousDistribution, Exponential, Gaussian, LogNormal, Pareto};

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    fn median_err<D: ContinuousDistribution>(dist: &D, q: f64, n: usize, master: u64) -> f64 {
        let truth = dist.quantile(q);
        let mut errs: Vec<f64> = (0..20)
            .map(|t| {
                let mut rng = seeded(child_seed(master, t));
                let data = dist.sample_vec(&mut rng, n);
                let r = estimate_quantile(&mut rng, &data, q, eps(1.0), 0.1).unwrap();
                (r.estimate - truth).abs()
            })
            .collect();
        errs.sort_by(f64::total_cmp);
        errs[10]
    }

    #[test]
    fn median_of_gaussian() {
        let g = Gaussian::new(42.0, 3.0).unwrap();
        let err = median_err(&g, 0.5, 20_000, 1);
        assert!(err < 0.3, "median error {err}");
    }

    #[test]
    fn deep_tail_quantile_on_lognormal() {
        let ln = LogNormal::new(0.0, 1.0).unwrap();
        let err = median_err(&ln, 0.95, 40_000, 2);
        let truth = ln.quantile(0.95);
        assert!(err / truth < 0.1, "p95 relative error {}", err / truth);
    }

    #[test]
    fn p99_on_pareto_tail() {
        let p = Pareto::new(10.0, 1.5).unwrap(); // infinite variance
        let err = median_err(&p, 0.99, 100_000, 3);
        let truth = p.quantile(0.99);
        assert!(err / truth < 0.15, "p99 relative error {}", err / truth);
    }

    #[test]
    fn low_quantile_on_exponential() {
        let e = Exponential::new(1.0).unwrap();
        let err = median_err(&e, 0.1, 40_000, 4);
        assert!(err < 0.05, "p10 error {err}");
    }

    #[test]
    fn quantile_range_matches_iqr() {
        // (0.25, 0.75) range should agree with the dedicated IQR
        // estimator on the same data up to noise.
        let g = Gaussian::new(0.0, 1.0).unwrap();
        let mut rng = seeded(5);
        let data = g.sample_vec(&mut rng, 30_000);
        let qr = estimate_quantile_range(&mut rng, &data, 0.25, 0.75, eps(1.0), 0.1).unwrap();
        assert!((qr - g.iqr()).abs() < 0.15, "quantile range {qr}");
    }

    #[test]
    fn decile_range_on_lognormal() {
        let ln = LogNormal::new(1.0, 0.5).unwrap();
        let truth = ln.quantile(0.9) - ln.quantile(0.1);
        let mut rng = seeded(6);
        let data = ln.sample_vec(&mut rng, 40_000);
        let qr = estimate_quantile_range(&mut rng, &data, 0.1, 0.9, eps(1.0), 0.1).unwrap();
        assert!(
            (qr - truth).abs() / truth < 0.1,
            "decile range {qr} vs {truth}"
        );
    }

    #[test]
    fn rejects_bad_inputs() {
        let mut rng = seeded(7);
        let data = vec![1.0; 100];
        assert!(estimate_quantile(&mut rng, &data, 0.0, eps(1.0), 0.1).is_err());
        assert!(estimate_quantile(&mut rng, &data, 1.0, eps(1.0), 0.1).is_err());
        assert!(estimate_quantile(&mut rng, &[1.0; 4], 0.5, eps(1.0), 0.1).is_err());
        assert!(estimate_quantile_range(&mut rng, &data, 0.7, 0.3, eps(1.0), 0.1).is_err());
    }

    #[test]
    fn rank_and_bucket_diagnostics() {
        let g = Gaussian::standard();
        let mut rng = seeded(8);
        let data = g.sample_vec(&mut rng, 10_000);
        let r = estimate_quantile(&mut rng, &data, 0.75, eps(1.0), 0.1).unwrap();
        assert_eq!(r.rank, 7_500);
        assert_eq!(r.q, 0.75);
        assert!(r.bucket > 0.0 && r.bucket < 1.0);
    }
}
