//! `EstimateVariance` — Algorithm 9 (Theorems 5.2, 5.3, 5.5).
//!
//! Reduction to mean estimation: pair the sample, set
//! `Z = (X − X′)²` so `E[Z] = 2σ²` (Eq. 41), and estimate `E[Z]` with the
//! universal machinery. Two simplifications relative to `EstimateMean`:
//!
//! * `Z ≥ 0` and the target range is zero-anchored, so only a *radius*
//!   (`InfiniteDomainRadius`) is needed, not a full range — finding a
//!   width is exponentially easier than finding a location, which is why
//!   Theorem 5.3's first term is `log log σ` where the mean's is `log|μ|`;
//! * the bucket size is `IQR̲²` (squared, to live on `Z`'s scale).
//!
//! Theorem 5.5 is the *first* private variance estimator for heavy-tailed
//! distributions.

use crate::iqr_lower_bound::estimate_iqr_lower_bound;
use crate::scratch::with_subsample;
use rand::Rng;
use updp_core::amplification::paper_inner_epsilon;
use updp_core::clipped_mean::clipped_mean_with_outside;
use updp_core::error::{ensure_finite, Result, UpdpError};
use updp_core::laplace::sample_laplace;
use updp_core::privacy::Epsilon;
use updp_empirical::discretize::real_radius;

/// Diagnostics accompanying a universal variance estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VarianceEstimate {
    /// The ε-DP estimate `σ̃²`.
    pub estimate: f64,
    /// The private IQR lower bound (bucket size is its square).
    pub bucket: f64,
    /// The privatized radius: `H` is clipped to `[0, radius]`.
    pub radius: f64,
    /// Number of pairs `n′ = n/2`.
    pub pairs: usize,
    /// Pair products clipped by the radius (diagnostic).
    pub clipped: usize,
}

/// Minimum dataset size accepted (pairing + subsampling plumbing).
pub const MIN_N: usize = 32;

/// The universal ε-DP variance estimator (Algorithm 9).
pub fn estimate_variance<R: Rng + ?Sized>(
    rng: &mut R,
    data: &[f64],
    epsilon: Epsilon,
    beta: f64,
) -> Result<VarianceEstimate> {
    ensure_finite(data, "estimate_variance input")?;
    let n = data.len();
    if n < MIN_N {
        return Err(UpdpError::InsufficientData {
            required: MIN_N,
            actual: n,
            context: "EstimateVariance",
        });
    }
    if !(beta > 0.0 && beta < 1.0) {
        return Err(UpdpError::InvalidParameter {
            name: "beta",
            reason: format!("must be in (0,1), got {beta}"),
        });
    }

    // Stage 1 (ε/8): bucket scale.
    let bucket = estimate_iqr_lower_bound(rng, data, epsilon.scale(1.0 / 8.0), beta / 7.0)?;

    // Stage 2: H = {(X − X′)²} from a *random* pairing (the paper's
    // "randomly group the elements in D into pairs"); the permutation is
    // data-independent, so sensitivity w.r.t. D stays 1. Squares of
    // ~1e155+-magnitude differences overflow f64; clamp to MAX — a
    // deterministic per-record preprocessing that cannot affect privacy,
    // and such values are clipped by the radius anyway.
    let h: Vec<f64> = {
        use rand::seq::SliceRandom;
        let mut idx: Vec<usize> = (0..n).collect();
        idx.shuffle(rng);
        idx.chunks_exact(2)
            .map(|p| {
                let d = data[p[0]] - data[p[1]];
                let z = d * d;
                if z.is_finite() {
                    z
                } else {
                    f64::MAX
                }
            })
            .collect()
    };
    let n_prime = h.len();

    // Stage 3: subsample εn′ products into the reusable per-thread
    // scratch buffer.
    let m = ((epsilon.get() * n_prime as f64).ceil() as usize).clamp(8.min(n_prime), n_prime);

    // Stage 4 (amplified to 3ε/4): radius of the subsample with bucket
    // IQR̲² — only the width matters because Z is zero-anchored.
    let inner = paper_inner_epsilon(epsilon);
    let radius = with_subsample(rng, &h, m, |rng, subsample| {
        real_radius(
            rng,
            subsample,
            // The squared bucket can overflow for ~1e155+-scale data;
            // clamp into the finite positive range.
            (bucket * bucket).clamp(f64::MIN_POSITIVE, f64::MAX),
            inner.scale(3.0 / 4.0),
            beta / 7.0,
        )
    })?;

    // Stage 5 (ε/4 via the 8·rad/(εn) = 4·rad/(εn′) scale): clipped mean
    // of ALL products over [0, r̃ad] — fused with the clipping-bias
    // count into one pass — halved since E[Z] = 2σ².
    let (mean, clipped) = clipped_mean_with_outside(&h, 0.0, radius.max(0.0))?;
    let noisy = if radius > 0.0 {
        mean + sample_laplace(rng, 8.0 * radius / (epsilon.get() * n as f64))
    } else {
        mean
    };
    Ok(VarianceEstimate {
        estimate: 0.5 * noisy,
        bucket,
        radius,
        pairs: n_prime,
        clipped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use updp_core::rng::seeded;
    use updp_dist::{
        ContinuousDistribution, Exponential, Gaussian, LaplaceDist, Pareto, StudentT, Uniform,
    };

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    fn median_rel_error<D: ContinuousDistribution>(
        dist: &D,
        n: usize,
        e: Epsilon,
        trials: u64,
        master: u64,
    ) -> f64 {
        let truth = dist.variance();
        let mut errs: Vec<f64> = (0..trials)
            .map(|t| {
                let mut rng = seeded(updp_core::rng::child_seed(master, t));
                let data = dist.sample_vec(&mut rng, n);
                let r = estimate_variance(&mut rng, &data, e, 0.1).unwrap();
                (r.estimate - truth).abs() / truth
            })
            .collect();
        errs.sort_by(f64::total_cmp);
        errs[errs.len() / 2]
    }

    #[test]
    fn gaussian_variance_is_accurate() {
        let g = Gaussian::new(100.0, 3.0).unwrap();
        let err = median_rel_error(&g, 20_000, eps(0.5), 30, 1);
        assert!(err < 0.1, "median relative error {err}");
    }

    #[test]
    fn tiny_sigma_works_without_sigma_min() {
        // σ = 10⁻⁶ with no prior scale knowledge (the log log 1/σ term).
        let g = Gaussian::new(0.0, 1e-6).unwrap();
        let err = median_rel_error(&g, 20_000, eps(0.5), 20, 2);
        assert!(err < 0.1, "tiny-σ median relative error {err}");
    }

    #[test]
    fn huge_sigma_works_without_sigma_max() {
        let g = Gaussian::new(0.0, 1e6).unwrap();
        let err = median_rel_error(&g, 20_000, eps(0.5), 20, 3);
        assert!(err < 0.1, "huge-σ median relative error {err}");
    }

    #[test]
    fn location_is_irrelevant() {
        // Pairing cancels the mean: μ = 10^9 must not matter.
        let g = Gaussian::new(1e9, 2.0).unwrap();
        let err = median_rel_error(&g, 20_000, eps(0.5), 20, 4);
        assert!(err < 0.1, "far-location median relative error {err}");
    }

    #[test]
    fn heavy_tailed_variance_first_of_its_kind() {
        // Pareto α = 4.5: μ₄ finite (barely) — the Theorem 5.5 regime.
        let p = Pareto::new(1.0, 4.5).unwrap();
        let err = median_rel_error(&p, 60_000, eps(0.5), 30, 5);
        assert!(err < 0.5, "pareto median relative error {err}");
    }

    #[test]
    fn student_t_variance() {
        let t = StudentT::new(5.0, 0.0, 2.0).unwrap();
        let err = median_rel_error(&t, 60_000, eps(0.5), 30, 6);
        assert!(err < 0.5, "student-t median relative error {err}");
    }

    #[test]
    fn exponential_and_laplace_and_uniform() {
        let e1 = median_rel_error(&Exponential::new(2.0).unwrap(), 20_000, eps(0.5), 20, 7);
        assert!(e1 < 0.2, "exponential {e1}");
        let e2 = median_rel_error(
            &LaplaceDist::new(0.0, 1.0).unwrap(),
            20_000,
            eps(0.5),
            20,
            8,
        );
        assert!(e2 < 0.2, "laplace {e2}");
        let e3 = median_rel_error(&Uniform::new(0.0, 10.0).unwrap(), 20_000, eps(0.5), 20, 9);
        assert!(e3 < 0.2, "uniform {e3}");
    }

    #[test]
    fn error_decreases_with_n() {
        let g = Gaussian::new(0.0, 1.0).unwrap();
        let small = median_rel_error(&g, 2_000, eps(0.5), 30, 10);
        let large = median_rel_error(&g, 50_000, eps(0.5), 30, 11);
        assert!(large < small, "no shrink: {small} -> {large}");
    }

    #[test]
    fn diagnostics_are_populated() {
        let g = Gaussian::new(0.0, 1.0).unwrap();
        let mut rng = seeded(12);
        let data = g.sample_vec(&mut rng, 4_000);
        let r = estimate_variance(&mut rng, &data, eps(0.5), 0.1).unwrap();
        assert_eq!(r.pairs, 2_000);
        assert!(r.bucket > 0.0);
        assert!(r.radius > 0.0);
        // Radius must cover typical (X−X′)² ~ 2σ² = 2.
        assert!(r.radius > 1.0, "radius {} too small", r.radius);
    }

    #[test]
    fn estimate_is_nonnegative_most_of_the_time() {
        let g = Gaussian::new(0.0, 1.0).unwrap();
        let mut negatives = 0;
        for seed in 0..50 {
            let mut rng = seeded(100 + seed);
            let data = g.sample_vec(&mut rng, 10_000);
            let r = estimate_variance(&mut rng, &data, eps(0.5), 0.1).unwrap();
            if r.estimate < 0.0 {
                negatives += 1;
            }
        }
        // Laplace noise can push below zero only when noise ≫ signal.
        assert!(negatives <= 2, "negative estimates {negatives}/50");
    }

    #[test]
    fn rejects_bad_inputs() {
        let mut rng = seeded(13);
        assert!(estimate_variance(&mut rng, &[1.0; 8], eps(0.5), 0.1).is_err());
        assert!(estimate_variance(&mut rng, &[f64::NAN; 100], eps(0.5), 0.1).is_err());
        assert!(estimate_variance(&mut rng, &[1.0; 100], eps(0.5), 0.0).is_err());
    }
}
