//! `EstimateIQRLowerBound` — Algorithm 7 (Theorem 4.3).
//!
//! The statistical estimators need a bucket size for discretizing `R`.
//! Prior work (assumption A2) used the given `σ_min`; the paper instead
//! *privately lower-bounds the IQR*:
//!
//! * pair up the sample, `Yᵢ = |X − X′|`, so that (Lemmas 4.1–4.2) the
//!   `5n′/32`-th order statistic of `G = {Yᵢ}` is ≥ `ϕ(1/16)` and the
//!   `7n′/32`-th is ≤ `IQR`, both w.h.p.;
//! * binary-search the scale with *two* SVT instances over doubling /
//!   halving thresholds `2⁰, 2¹, …` and `2⁰, 2⁻¹, …` — avoiding the
//!   circular dependency on a discretization that does not exist yet.
//!
//! Theorem 4.3: with probability ≥ 1 − β,
//! `ϕ(1/16)/4 ≤ IQR̲ ≤ IQR`, at a sample cost of only
//! `O(ε⁻¹·(log log(1/ϕ(1/16)) + log log IQR))` — the log-log terms in
//! every statistical theorem come from here.

use rand::Rng;
use updp_core::error::{ensure_finite, Result, UpdpError};
use updp_core::privacy::Epsilon;
use updp_core::svt::{sparse_vector, DEFAULT_SVT_CAP};
use updp_empirical::view::ColumnView;

/// Floor for the returned scale: ~the smallest positive normal `f64`.
/// Reaching it means the data is (privately indistinguishable from)
/// having more than `3n′/16` exactly-coincident pairs; any smaller bucket
/// would be meaningless at `f64` precision anyway.
const SCALE_FLOOR: f64 = 1e-300;

/// The multiset of pair gaps `G = {|X − X′|}`, stored **unsorted** with
/// a precomputed range summary.
///
/// Algorithm 7's only use of `G` is the counting query
/// `|G ∩ [0, x]|` at the `O(log log)` SVT thresholds, so the former
/// eager full `O(n log n)` sort bought nothing a per-threshold `O(n)`
/// count does not provide. The summary (`zeros`, `min_positive`,
/// `max`) makes thresholds outside the data's dynamic range `O(1)`:
/// the doubling/halving SVT searches only pay a linear pass while the
/// threshold is *inside* the gap range, and the degenerate
/// all-identical-data descent (which runs to the SVT cap) costs `O(1)`
/// per step. As a backstop for adversarially wide gap ranges (gaps
/// spread over hundreds of octaves, where the searches probe many
/// in-range thresholds), the structure falls back to sorting once —
/// the historical cost — after [`LINEAR_SCAN_BUDGET`] linear scans and
/// answers by binary search from then on.
#[derive(Debug, Clone)]
pub struct Gaps {
    values: Vec<f64>,
    zeros: usize,
    min_positive: f64,
    max: f64,
    has_nan: bool,
    linear_scans: std::cell::Cell<usize>,
    sorted: std::cell::OnceCell<Vec<f64>>,
}

/// In-range linear scans [`Gaps::count_le`] performs before sorting
/// once and switching to binary search. Typical Algorithm 7 runs probe
/// only a handful of in-range thresholds and never reach this.
pub const LINEAR_SCAN_BUDGET: usize = 32;

impl Gaps {
    /// Number of pairs `n′ = ⌊n/2⌋`.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when there are no pairs.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The raw (unsorted) gap values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The counting query `|G ∩ [0, x]|` — exactly the value
    /// `partition_point(v ≤ x)` returned on the formerly-sorted
    /// (`total_cmp`) vector, for any input including NaN gaps from
    /// non-finite data. `O(1)` when `x` falls outside
    /// `[min positive gap, max gap]`, an `O(n)` scan inside it, and
    /// amortized `O(log n)` once the scan budget is exhausted.
    pub fn count_le(&self, x: f64) -> usize {
        if x < 0.0 {
            // Gaps are ≥ 0 or NaN; neither satisfies v ≤ x < 0.
            return 0;
        }
        if !self.has_nan {
            // The summary excludes NaNs, so these shortcuts are only
            // exact when no gap is NaN.
            if x < self.min_positive {
                // Only the exactly-zero gaps are ≤ x (covers x = ±0.0).
                return self.zeros;
            }
            if x >= self.max {
                return self.values.len();
            }
        }
        if let Some(sorted) = self.sorted.get() {
            return sorted.partition_point(|&v| v <= x);
        }
        if self.linear_scans.get() >= LINEAR_SCAN_BUDGET {
            let sorted = self.sorted.get_or_init(|| {
                let mut v = self.values.clone();
                v.sort_by(f64::total_cmp);
                v
            });
            return sorted.partition_point(|&v| v <= x);
        }
        self.linear_scans.set(self.linear_scans.get() + 1);
        self.values.iter().filter(|&&v| v <= x).count()
    }
}

/// Randomly pairs up the elements (the paper's "randomly group the
/// elements in D into pairs") and returns the absolute gaps
/// `G = {|X − X′|}` as a [`Gaps`] counting structure.
///
/// The pairing permutation is drawn from the mechanism's own coins,
/// independent of the data, so one record of `D` still influences
/// exactly one element of `G` and counting queries on `G` retain
/// sensitivity 1. Random (rather than consecutive or strided) pairing
/// also makes the estimator robust to callers handing in *sorted* or
/// periodically-patterned data: no fixed arrangement can force all gaps
/// to collapse.
///
/// Public for benchmarking (`updp-bench`'s `scaling` bench compares
/// this against the historical sort-based implementation); not part of
/// the estimator API surface.
pub fn pair_gaps<R: Rng + ?Sized>(rng: &mut R, data: &[f64]) -> Gaps {
    use rand::seq::SliceRandom;
    let mut idx: Vec<usize> = (0..data.len()).collect();
    idx.shuffle(rng);
    let mut values = Vec::with_capacity(data.len() / 2);
    let mut zeros = 0usize;
    let mut min_positive = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut has_nan = false;
    for p in idx.chunks_exact(2) {
        let g = (data[p[0]] - data[p[1]]).abs();
        // updp-lint: allow(R5, reason="Algorithm 7 counts exactly-coincident pairs: gap == 0.0 iff the two draws are equal, and any positive gap however small belongs in min_positive")
        if g == 0.0 {
            zeros += 1;
        } else if g < min_positive {
            min_positive = g;
        }
        if g > max {
            max = g;
        }
        // NaN (possible only for non-finite inputs, which the estimator
        // itself rejects upstream) disables the summary shortcuts so
        // counts stay exact for any caller of this public helper.
        has_nan |= g.is_nan();
        values.push(g);
    }
    Gaps {
        values,
        zeros,
        min_positive,
        max,
        has_nan,
        linear_scans: std::cell::Cell::new(0),
        sorted: std::cell::OnceCell::new(),
    }
}

/// ε-DP lower bound on the IQR (Algorithm 7).
///
/// Returns `IQR̲` with `ϕ(1/16)/4 ≤ IQR̲ ≤ IQR` w.p. ≥ 1 − β, provided
/// `n` meets Theorem 4.3's (log-log sized) requirement.
pub fn estimate_iqr_lower_bound<R: Rng + ?Sized>(
    rng: &mut R,
    data: &[f64],
    epsilon: Epsilon,
    beta: f64,
) -> Result<f64> {
    ensure_finite(data, "estimate_iqr_lower_bound input")?;
    if data.len() < 4 {
        return Err(UpdpError::InsufficientData {
            required: 4,
            actual: data.len(),
            context: "EstimateIQRLowerBound pairing",
        });
    }
    if !(beta > 0.0 && beta < 1.0) {
        return Err(UpdpError::InvalidParameter {
            name: "beta",
            reason: format!("must be in (0,1), got {beta}"),
        });
    }

    let gaps = pair_gaps(rng, data);
    Ok(iqr_lb_search(rng, gaps.len(), epsilon, |x| {
        gaps.count_le(x)
    }))
}

/// [`estimate_iqr_lower_bound`] over a [`ColumnView`].
///
/// When the view carries a cache-legal pair-gap summary (DESIGN.md
/// §12, opt-in via `PreparedDataset::with_gap_summaries`), the per-call
/// pairing shuffle and `O(n)` gap scan are replaced by the cached
/// summary: finiteness is an O(1) check, counting queries are
/// `O(log n)` binary searches, and the warm path does no per-call work
/// linear in `n`. Validation order and error values match the bare
/// path exactly. Because the summary path consumes **no** shuffle
/// coins, its SVT draw sequence — and hence the released value —
/// differs from the historical path; both are equally valid draws of
/// Algorithm 7, and the summary path is bit-reproducible per
/// `(snapshot, seed)`. Views without a summary defer to
/// [`estimate_iqr_lower_bound`] bit-for-bit.
pub fn estimate_iqr_lower_bound_view<R: Rng + ?Sized>(
    rng: &mut R,
    view: &ColumnView<'_>,
    epsilon: Epsilon,
    beta: f64,
) -> Result<f64> {
    let Some(summary) = view.gap_summary() else {
        return estimate_iqr_lower_bound(rng, view.data(), epsilon, beta);
    };
    if !summary.all_finite() {
        return Err(UpdpError::NonFiniteInput {
            context: "estimate_iqr_lower_bound input",
        });
    }
    if summary.records() < 4 {
        return Err(UpdpError::InsufficientData {
            required: 4,
            actual: summary.records(),
            context: "EstimateIQRLowerBound pairing",
        });
    }
    if !(beta > 0.0 && beta < 1.0) {
        return Err(UpdpError::InvalidParameter {
            name: "beta",
            reason: format!("must be in (0,1), got {beta}"),
        });
    }
    Ok(iqr_lb_search(rng, summary.pairs(), epsilon, |x| {
        summary.count_le(x)
    }))
}

/// The two-SVT scale search of Algorithm 7 (lines 3–9), abstracted
/// over the gap counting query so the per-call [`Gaps`] structure and
/// the cached [`updp_empirical::gaps::GapSummary`] share one
/// implementation. For a fixed `count_le` the draw sequence is exactly
/// the historical inline code's.
fn iqr_lb_search<R: Rng + ?Sized>(
    rng: &mut R,
    pairs: usize,
    epsilon: Epsilon,
    count_le: impl Fn(f64) -> usize,
) -> f64 {
    let n_prime = pairs as f64;
    let threshold = 3.0 * n_prime / 16.0;
    let half = epsilon.scale(0.5);

    // SVT #1: increasing scales 2⁰, 2¹, 2², … hunting for the scale at
    // which the count of small gaps crosses 3n′/16 from below.
    let up = sparse_vector(
        rng,
        threshold,
        half,
        |i| count_le(pow2(i as i32)) as f64,
        DEFAULT_SVT_CAP,
    );

    // SVT #2: decreasing scales 2⁰, 2⁻¹, 2⁻², … on the negated counts.
    let down = sparse_vector(
        rng,
        -threshold,
        half,
        |j| -(count_le(pow2(-(j as i32))) as f64),
        DEFAULT_SVT_CAP,
    );

    // Algorithm 7 lines 5–9: prefer the increasing search if it moved.
    let result = if up.index > 1 {
        pow2(up.index as i32 - 2)
    } else {
        pow2(-(down.index as i32))
    };
    result.max(SCALE_FLOOR)
}

/// `2^k` as `f64`, saturating to avoid 0/∞ surprises far out.
fn pow2(k: i32) -> f64 {
    if k > 1023 {
        f64::MAX
    } else if k < -1021 {
        SCALE_FLOOR
    } else {
        2f64.powi(k)
    }
}

/// Theorem 4.3's minimum sample size (with explicit constants `c₁ = c₂ =
/// c₃ = 8`, the values our experiments validate):
/// `n > (c₁/ε)·log log(1/ϕ) + (c₂/ε)·log log IQR + (c₃/ε)·log(1/β)`.
pub fn iqr_lb_required_n(epsilon: Epsilon, phi: f64, iqr: f64, beta: f64) -> usize {
    let e = epsilon.get();
    let loglog = |x: f64| x.ln().max(1.0).ln().max(1.0);
    let t1 = 8.0 / e * loglog(1.0 / phi.max(1e-300));
    let t2 = 8.0 / e * loglog(iqr.max(1.0));
    let t3 = 8.0 / e * (1.0 / beta).ln().max(1.0);
    (t1 + t2 + t3).ceil() as usize
}

#[cfg(test)]
// Exact `==` on f64 is deliberate in tests: they pin bit-identical
// outputs (DESIGN.md §5), so an epsilon tolerance would weaken them.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use updp_core::rng::seeded;
    use updp_dist::{ContinuousDistribution, Gaussian, GaussianMixture, Uniform};

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn pow2_saturates() {
        assert_eq!(pow2(0), 1.0);
        assert_eq!(pow2(3), 8.0);
        assert_eq!(pow2(-2), 0.25);
        assert_eq!(pow2(5000), f64::MAX);
        assert_eq!(pow2(-5000), SCALE_FLOOR);
    }

    #[test]
    fn pair_gaps_shape_and_determinism() {
        let data = [1.0, 4.0, 10.0, 3.0, 5.0];
        let mut a = seeded(1);
        let mut b = seeded(1);
        let ga = pair_gaps(&mut a, &data);
        let gb = pair_gaps(&mut b, &data);
        assert_eq!(
            ga.values(),
            gb.values(),
            "same coins must give the same pairing"
        );
        assert_eq!(ga.len(), 2, "n = 5 yields 2 pairs");
        assert!(ga.values().iter().all(|&g| g >= 0.0));
    }

    #[test]
    fn count_le_matches_sorted_partition_point() {
        // The linear/summary-assisted count must agree exactly with the
        // historical sorted-vector partition_point at every threshold
        // the SVT searches can probe.
        let mut rng = seeded(42);
        use rand::Rng;
        let data: Vec<f64> = (0..501).map(|_| rng.gen::<f64>() * 16.0 - 8.0).collect();
        let gaps = pair_gaps(&mut rng, &data);
        let mut sorted: Vec<f64> = gaps.values().to_vec();
        sorted.sort_by(f64::total_cmp);
        for k in -40i32..40 {
            let x = pow2(k);
            assert_eq!(
                gaps.count_le(x),
                sorted.partition_point(|&v| v <= x),
                "mismatch at threshold 2^{k}"
            );
        }
        for x in [-1.0, -0.0, 0.0, f64::INFINITY, f64::MAX, f64::NAN] {
            assert_eq!(
                gaps.count_le(x),
                sorted.partition_point(|&v| v <= x),
                "mismatch at threshold {x}"
            );
        }
    }

    #[test]
    fn count_le_on_degenerate_and_tiny_inputs() {
        // All-identical data: every gap is zero; counts must be n′ for
        // any x ≥ 0 and 0 below, all via the O(1) summary path.
        let mut rng = seeded(3);
        let gaps = pair_gaps(&mut rng, &[7.0; 100]);
        assert_eq!(gaps.len(), 50);
        assert_eq!(gaps.count_le(0.0), 50);
        assert_eq!(gaps.count_le(1e-300), 50);
        assert_eq!(gaps.count_le(-1.0), 0);
        // Empty gaps (n < 2 would be rejected upstream, but the
        // structure itself must not misbehave).
        let empty = pair_gaps(&mut rng, &[1.0]);
        assert!(empty.is_empty());
        assert_eq!(empty.count_le(1.0), 0);
    }

    #[test]
    fn count_le_exact_with_nan_gaps() {
        // The estimator rejects non-finite data upstream, but the
        // public helper must stay exact (vs the total_cmp-sorted
        // partition_point reference) even when gaps contain NaN.
        let data = [1.0, f64::NAN, 3.0, 8.0, 2.0, 2.0];
        let mut rng = seeded(11);
        let gaps = pair_gaps(&mut rng, &data);
        let mut sorted = gaps.values().to_vec();
        sorted.sort_by(f64::total_cmp);
        for x in [-1.0, -0.0, 0.0, 2.0, 5.0, 1e300, f64::INFINITY, f64::NAN] {
            assert_eq!(
                gaps.count_le(x),
                sorted.partition_point(|&v| v <= x),
                "mismatch at threshold {x}"
            );
        }
    }

    #[test]
    fn count_le_sorted_fallback_stays_exact() {
        // Exhaust the linear-scan budget with in-range probes; the
        // lazily-sorted binary-search path must return identical
        // counts to the scans it replaces.
        let mut rng = seeded(12);
        use rand::Rng;
        let data: Vec<f64> = (0..400).map(|_| rng.gen::<f64>() * 1e6).collect();
        let gaps = pair_gaps(&mut rng, &data);
        let mut sorted_ref = gaps.values().to_vec();
        sorted_ref.sort_by(f64::total_cmp);
        for k in 0..(LINEAR_SCAN_BUDGET * 3) {
            let x = 2f64.powi((k % 40) as i32);
            assert_eq!(
                gaps.count_le(x),
                sorted_ref.partition_point(|&v| v <= x),
                "probe {k} at threshold {x}"
            );
        }
    }

    #[test]
    fn pair_gaps_robust_to_sorted_and_periodic_input() {
        // Sorted input: random pairing keeps gaps at the spread scale
        // (E|i − j| ≈ n/3 for random index pairs), where consecutive
        // pairing would collapse them to 1.
        let sorted: Vec<f64> = (0..1000).map(f64::from).collect();
        let mut rng = seeded(2);
        let g = pair_gaps(&mut rng, &sorted);
        let mut vals: Vec<f64> = g.values().to_vec();
        vals.sort_by(f64::total_cmp);
        assert!(
            vals[vals.len() / 2] > 100.0,
            "median sorted gap {}",
            vals[vals.len() / 2]
        );
        // Periodic input with period dividing every fixed stride: random
        // pairing still produces mostly non-zero gaps.
        let periodic: Vec<f64> = (0..1000).map(|i| (i % 100) as f64).collect();
        let g = pair_gaps(&mut rng, &periodic);
        let nonzero = g.len() - g.count_le(0.0);
        assert!(nonzero > 450, "only {nonzero}/500 non-zero gaps");
    }

    #[test]
    fn bound_holds_on_standard_gaussian() {
        let g = Gaussian::standard();
        let phi = g.phi(1.0 / 16.0);
        let iqr = g.iqr();
        let e = eps(1.0);
        let beta = 0.1;
        let mut violations = 0;
        for seed in 0..100 {
            let mut rng = seeded(seed);
            let data = g.sample_vec(&mut rng, 4000);
            let lb = estimate_iqr_lower_bound(&mut rng, &data, e, beta).unwrap();
            if !(phi / 4.0 <= lb && lb <= iqr) {
                violations += 1;
            }
        }
        assert!(violations <= 15, "Theorem 4.3 violated {violations}/100");
    }

    #[test]
    fn tracks_scale_across_decades() {
        // σ = 1000: IQR ≈ 1349, ϕ/4 ≈ 39. The returned power of two must
        // land between them.
        let g = Gaussian::new(0.0, 1000.0).unwrap();
        let mut ok = 0;
        for seed in 0..50 {
            let mut rng = seeded(200 + seed);
            let data = g.sample_vec(&mut rng, 4000);
            let lb = estimate_iqr_lower_bound(&mut rng, &data, eps(1.0), 0.1).unwrap();
            if lb >= g.phi(1.0 / 16.0) / 4.0 && lb <= g.iqr() {
                ok += 1;
            }
        }
        assert!(ok >= 42, "large-scale tracking ok only {ok}/50");
    }

    #[test]
    fn tracks_tiny_scales() {
        let g = Gaussian::new(5.0, 1e-6).unwrap();
        let mut ok = 0;
        for seed in 0..50 {
            let mut rng = seeded(300 + seed);
            let data = g.sample_vec(&mut rng, 4000);
            let lb = estimate_iqr_lower_bound(&mut rng, &data, eps(1.0), 0.1).unwrap();
            if lb >= g.phi(1.0 / 16.0) / 4.0 && lb <= g.iqr() {
                ok += 1;
            }
        }
        assert!(ok >= 42, "tiny-scale tracking ok only {ok}/50");
    }

    #[test]
    fn ill_behaved_spike_returns_small_bucket() {
        // Half the mass in a 1e-5-wide spike: the lower bound must fall
        // below the *spike's* scale, not the overall σ ≈ 0.7.
        let m = GaussianMixture::ill_behaved_spike(1e-5).unwrap();
        let mut rng = seeded(4);
        let data = m.sample_vec(&mut rng, 8000);
        let lb = estimate_iqr_lower_bound(&mut rng, &data, eps(1.0), 0.1).unwrap();
        assert!(lb <= m.iqr(), "lb {lb} above IQR {}", m.iqr());
    }

    #[test]
    fn uniform_bound_holds() {
        let u = Uniform::new(-50.0, 50.0).unwrap();
        let mut ok = 0;
        for seed in 0..50 {
            let mut rng = seeded(500 + seed);
            let data = u.sample_vec(&mut rng, 4000);
            let lb = estimate_iqr_lower_bound(&mut rng, &data, eps(1.0), 0.1).unwrap();
            if lb >= u.phi(1.0 / 16.0) / 4.0 && lb <= u.iqr() {
                ok += 1;
            }
        }
        assert!(ok >= 42, "uniform ok only {ok}/50");
    }

    #[test]
    fn rejects_bad_inputs() {
        let mut rng = seeded(6);
        assert!(estimate_iqr_lower_bound(&mut rng, &[1.0, 2.0], eps(1.0), 0.1).is_err());
        assert!(
            estimate_iqr_lower_bound(&mut rng, &[1.0, f64::NAN, 2.0, 3.0], eps(1.0), 0.1).is_err()
        );
        assert!(estimate_iqr_lower_bound(&mut rng, &[1.0, 2.0, 3.0, 4.0], eps(1.0), 1.5).is_err());
    }

    #[test]
    fn degenerate_identical_data_hits_floor() {
        // All points identical: every gap is 0; SVT#1 fires immediately
        // (count = n′ ≥ T at x = 1? count_le(1) = n′ > 3n′/16, so the
        // first query already fires → ĩ = 1 → descend), and the descent
        // never crosses, ending at the floor.
        let data = vec![3.25f64; 2000];
        let mut rng = seeded(7);
        let lb = estimate_iqr_lower_bound(&mut rng, &data, eps(1.0), 0.1).unwrap();
        assert!(lb > 0.0, "bucket must remain positive");
    }

    #[test]
    fn required_n_is_log_log_small() {
        let n = iqr_lb_required_n(eps(1.0), 1e-12, 1e9, 0.1);
        // log log of astronomically bad parameters is still tiny.
        assert!(n < 200, "required n = {n}");
    }
}
