//! The `Estimator` abstraction and the high-level facade.
//!
//! Two layers live here:
//!
//! * [`Estimator`] — the workspace-wide trait unifying *every*
//!   estimator (the five universal ones implemented in this crate and
//!   the Table 1 comparators in `updp-baselines`) behind one
//!   signature: `estimate(&mut rng, &DataView, &EstimateParams) ->
//!   Release`. Consumers (the serving engine's name-keyed registry,
//!   the experiment trial runner) dispatch through it instead of
//!   hand-rolled per-estimator glue. The dispatch layer is pure
//!   plumbing: a trait call is **bit-identical** to the direct free
//!   function on the same seed (pinned by the workspace equivalence
//!   suite), so routing a caller through the trait can never change a
//!   released value.
//! * [`UniversalEstimator`] — the configured facade bundling ε and β
//!   so applications configure once and call
//!   [`UniversalEstimator::mean`] / [`variance`](UniversalEstimator::variance)
//!   / [`iqr`](UniversalEstimator::iqr) /
//!   [`quantile`](UniversalEstimator::quantile) /
//!   [`multi_mean`](UniversalEstimator::multi_mean). **Each call
//!   spends a fresh ε** — callers estimating several parameters of the
//!   *same* dataset should split their total budget across calls
//!   (basic composition, Lemma 2.2), e.g. with [`Epsilon::split`].

use crate::iqr::{estimate_iqr, estimate_iqr_view, IqrEstimate};
use crate::mean::{estimate_mean, MeanEstimate};
use crate::multivariate::{estimate_mean_multivariate, MultivariateMeanEstimate};
use crate::quantile::estimate_quantile_view;
use crate::variance::{estimate_variance, VarianceEstimate};
use rand::{Rng, RngCore};
use updp_core::error::{Result, UpdpError};
use updp_core::privacy::Epsilon;
pub use updp_empirical::view::{ColumnCache, ColumnView, DataView, PreparedDataset};

/// Default failure probability for the utility guarantees.
pub const DEFAULT_BETA: f64 = 1.0 / 3.0;

/// A uniform estimator release: the released scalar(s) plus the
/// metadata every consumer layer needs.
#[derive(Debug, Clone, PartialEq)]
pub struct Release {
    /// Released value(s) — one entry for scalar statistics, one per
    /// coordinate for multivariate ones.
    pub values: Vec<f64>,
    /// Per-value final-release sensitivity proxies (same length as
    /// `values`): the scale a hardened re-release (snapped Laplace)
    /// should noise at. Each proxy is either a privately-released
    /// quantity (post-processing) or derived from public parameters —
    /// never raw data. `0.0` means "no meaningful scale" (non-private
    /// estimators); hardened consumers clamp to a positive floor.
    pub sensitivities: Vec<f64>,
    /// Named numeric diagnostics (bucket sizes, clip counts, …).
    pub diagnostics: Vec<(&'static str, f64)>,
}

impl Release {
    /// A single-scalar release.
    pub fn scalar(value: f64, sensitivity: f64) -> Self {
        Release {
            values: vec![value],
            sensitivities: vec![sensitivity],
            diagnostics: Vec::new(),
        }
    }

    /// Attaches a named diagnostic (builder style).
    pub fn with_diagnostic(mut self, name: &'static str, value: f64) -> Self {
        self.diagnostics.push((name, value));
        self
    }

    /// The first released value (the scalar, for scalar statistics).
    pub fn primary(&self) -> f64 {
        self.values[0]
    }
}

/// Declares one named `f64` parameter an estimator understands beyond
/// the universal `(ε, β)` pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParamSpec {
    /// Wire/option name.
    pub name: &'static str,
    /// Whether the estimator refuses to run without it.
    pub required: bool,
    /// Default applied when an optional parameter is absent.
    pub default: Option<f64>,
    /// One-line description (surfaced by the serving `/v1/estimators`
    /// listing).
    pub doc: &'static str,
}

impl ParamSpec {
    /// A required parameter.
    pub const fn required(name: &'static str, doc: &'static str) -> Self {
        ParamSpec {
            name,
            required: true,
            default: None,
            doc,
        }
    }

    /// An optional parameter with a default.
    pub const fn optional(name: &'static str, default: f64, doc: &'static str) -> Self {
        ParamSpec {
            name,
            required: false,
            default: Some(default),
            doc,
        }
    }
}

/// The uniform parameter bundle of an [`Estimator::estimate`] call:
/// the privacy budget ε, the utility failure probability β, and a
/// small name→value bag for estimator-specific knobs (quantile level
/// `q`, assumed range `r`, σ bounds, …) as declared by
/// [`Estimator::params`].
#[derive(Debug, Clone, PartialEq)]
pub struct EstimateParams {
    /// The privacy budget this call spends.
    pub epsilon: Epsilon,
    /// Utility failure probability β ∈ (0, 1).
    pub beta: f64,
    options: Vec<(String, f64)>,
}

impl EstimateParams {
    /// Parameters with the default β = 1/3 and no options.
    pub fn new(epsilon: Epsilon) -> Self {
        EstimateParams {
            epsilon,
            beta: DEFAULT_BETA,
            options: Vec::new(),
        }
    }

    /// Sets β (builder style).
    pub fn with_beta(mut self, beta: f64) -> Self {
        self.beta = beta;
        self
    }

    /// Sets or overwrites a named option (builder style).
    pub fn with(mut self, name: &str, value: f64) -> Self {
        self.set(name, value);
        self
    }

    /// Sets or overwrites a named option.
    pub fn set(&mut self, name: &str, value: f64) {
        if let Some(slot) = self.options.iter_mut().find(|(n, _)| n == name) {
            slot.1 = value;
        } else {
            self.options.push((name.to_string(), value));
        }
    }

    /// Looks an option up by name.
    pub fn option(&self, name: &str) -> Option<f64> {
        self.options
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// All options, in insertion order.
    pub fn options(&self) -> &[(String, f64)] {
        &self.options
    }

    /// Resolves `spec` against the options: the provided value, the
    /// declared default, or an [`UpdpError::InvalidParameter`] for a
    /// missing required parameter.
    pub fn resolve(&self, spec: &ParamSpec) -> Result<f64> {
        match (self.option(spec.name), spec.default) {
            (Some(v), _) => Ok(v),
            (None, Some(default)) => Ok(default),
            (None, None) => Err(UpdpError::InvalidParameter {
                name: "params",
                reason: format!("missing required parameter `{}`", spec.name),
            }),
        }
    }
}

/// One estimator behind the workspace-wide uniform interface.
///
/// Implemented by the five universal estimators here and by every
/// Table 1 comparator in `updp-baselines`; dispatched by name in the
/// serving engine and by reference in the experiment trial runner.
///
/// # Determinism obligation
///
/// `estimate` must be a pure function of `(rng state, view contents,
/// params)` — consuming the generator in **exactly** the same order as
/// the underlying free function — so that trait dispatch is
/// bit-identical to a direct call on the same seed. Implementations
/// must not read cached view artifacts whose construction consumes
/// randomness (see `updp_empirical::view` and DESIGN.md §7).
pub trait Estimator: Send + Sync {
    /// Stable registry/wire name (`[a-z0-9_-]`, e.g. `"mean"`,
    /// `"kv18"`).
    fn name(&self) -> &'static str;

    /// The statistic estimated (`"mean"`, `"variance"`, `"iqr"`,
    /// `"quantile"`, `"multi-mean"`).
    fn statistic(&self) -> &'static str;

    /// The privacy guarantee the released values carry.
    fn privacy(&self) -> &'static str {
        "ε-DP"
    }

    /// Table 1 assumptions the estimator's *utility* needs (`"A1"` =
    /// a-priori mean range, `"A2"` = variance bounds, `"A3"` =
    /// distribution family). Empty for the universal estimators.
    fn assumptions(&self) -> &'static [&'static str] {
        &[]
    }

    /// Extra parameters beyond `(ε, β)` — see [`ParamSpec`].
    fn params(&self) -> &'static [ParamSpec] {
        &[]
    }

    /// Whether the estimator consumes every column of the view
    /// (multivariate). Scalar estimators read column 0 and require a
    /// dimension-1 view.
    fn multi_column(&self) -> bool {
        false
    }

    /// Validates `params` *before* any budget is spent: every required
    /// parameter present, no unknown option names, estimator-specific
    /// range checks. The default checks presence/unknowns only.
    fn validate_params(&self, params: &EstimateParams) -> Result<()> {
        check_declared(self.params(), params)
    }

    /// Runs the estimator. See the trait docs for the determinism
    /// obligation.
    fn estimate(
        &self,
        rng: &mut dyn RngCore,
        view: &DataView<'_>,
        params: &EstimateParams,
    ) -> Result<Release>;
}

/// Default [`Estimator::validate_params`] body: every required spec
/// present (or defaulted) and no undeclared option names.
pub fn check_declared(specs: &[ParamSpec], params: &EstimateParams) -> Result<()> {
    for spec in specs {
        params.resolve(spec)?;
    }
    for (name, _) in params.options() {
        if !specs.iter().any(|spec| spec.name == name) {
            return Err(UpdpError::InvalidParameter {
                name: "params",
                reason: format!("unknown parameter `{name}`"),
            });
        }
    }
    Ok(())
}

/// Resolves the single column a scalar estimator consumes, rejecting
/// multivariate views with a uniform error. Shared by every scalar
/// [`Estimator`] implementation (here and in `updp-baselines`).
pub fn scalar_column<'a, 'v>(
    view: &'a DataView<'v>,
    name: &'static str,
) -> Result<&'a ColumnView<'v>> {
    if view.dim() != 1 {
        return Err(UpdpError::InvalidParameter {
            name,
            reason: format!(
                "scalar estimator needs a dimension-1 dataset, got dimension {}",
                view.dim()
            ),
        });
    }
    Ok(view.col(0))
}

/// The universal mean (Algorithm 8) as an [`Estimator`].
#[derive(Debug, Clone, Copy, Default)]
pub struct UniversalMean;

impl Estimator for UniversalMean {
    fn name(&self) -> &'static str {
        "mean"
    }

    fn statistic(&self) -> &'static str {
        "mean"
    }

    fn estimate(
        &self,
        rng: &mut dyn RngCore,
        view: &DataView<'_>,
        params: &EstimateParams,
    ) -> Result<Release> {
        let col = scalar_column(view, "mean")?;
        let est = estimate_mean(rng, col.data(), params.epsilon, params.beta)?;
        Ok(
            Release::scalar(est.estimate, est.range.width() / col.len() as f64)
                .with_diagnostic("bucket", est.bucket)
                .with_diagnostic("range_lo", est.range.lo)
                .with_diagnostic("range_hi", est.range.hi)
                .with_diagnostic("subsample", est.subsample as f64)
                .with_diagnostic("clipped", est.clipped as f64),
        )
    }
}

/// The universal variance (Algorithm 9) as an [`Estimator`].
#[derive(Debug, Clone, Copy, Default)]
pub struct UniversalVariance;

impl Estimator for UniversalVariance {
    fn name(&self) -> &'static str {
        "variance"
    }

    fn statistic(&self) -> &'static str {
        "variance"
    }

    fn estimate(
        &self,
        rng: &mut dyn RngCore,
        view: &DataView<'_>,
        params: &EstimateParams,
    ) -> Result<Release> {
        let col = scalar_column(view, "variance")?;
        let est = estimate_variance(rng, col.data(), params.epsilon, params.beta)?;
        Ok(
            Release::scalar(est.estimate, est.radius / est.pairs.max(1) as f64)
                .with_diagnostic("bucket", est.bucket)
                .with_diagnostic("radius", est.radius)
                .with_diagnostic("pairs", est.pairs as f64)
                .with_diagnostic("clipped", est.clipped as f64),
        )
    }
}

/// The universal quantile (Algorithm 10 generalized) as an
/// [`Estimator`]; the level is the required parameter `q`.
#[derive(Debug, Clone, Copy, Default)]
pub struct UniversalQuantile;

/// The quantile estimator's parameter table.
pub const QUANTILE_PARAMS: &[ParamSpec] = &[ParamSpec::required(
    "q",
    "quantile level in (0,1), e.g. 0.9 for the p90",
)];

impl Estimator for UniversalQuantile {
    fn name(&self) -> &'static str {
        "quantile"
    }

    fn statistic(&self) -> &'static str {
        "quantile"
    }

    fn params(&self) -> &'static [ParamSpec] {
        QUANTILE_PARAMS
    }

    fn validate_params(&self, params: &EstimateParams) -> Result<()> {
        check_declared(self.params(), params)?;
        let q = params.resolve(&QUANTILE_PARAMS[0])?;
        if !(q > 0.0 && q < 1.0) {
            return Err(UpdpError::InvalidParameter {
                name: "q",
                reason: format!("quantile level must be in (0,1), got {q}"),
            });
        }
        Ok(())
    }

    fn estimate(
        &self,
        rng: &mut dyn RngCore,
        view: &DataView<'_>,
        params: &EstimateParams,
    ) -> Result<Release> {
        let col = scalar_column(view, "quantile")?;
        let q = params.resolve(&QUANTILE_PARAMS[0])?;
        let est = estimate_quantile_view(rng, col, q, params.epsilon, params.beta)?;
        Ok(Release::scalar(est.estimate, est.bucket)
            .with_diagnostic("bucket", est.bucket)
            .with_diagnostic("rank", est.rank as f64))
    }
}

/// The universal IQR (Algorithm 10) as an [`Estimator`].
#[derive(Debug, Clone, Copy, Default)]
pub struct UniversalIqr;

impl Estimator for UniversalIqr {
    fn name(&self) -> &'static str {
        "iqr"
    }

    fn statistic(&self) -> &'static str {
        "iqr"
    }

    fn estimate(
        &self,
        rng: &mut dyn RngCore,
        view: &DataView<'_>,
        params: &EstimateParams,
    ) -> Result<Release> {
        let col = scalar_column(view, "iqr")?;
        let est = estimate_iqr_view(rng, col, params.epsilon, params.beta)?;
        Ok(Release::scalar(est.estimate, est.bucket)
            .with_diagnostic("bucket", est.bucket)
            .with_diagnostic("q1", est.q1)
            .with_diagnostic("q3", est.q3))
    }
}

/// The multivariate mean (§1.2 extension) as an [`Estimator`]: one
/// universal mean per column at ε/d and β/d (basic composition), the
/// same arithmetic as [`estimate_mean_multivariate`].
#[derive(Debug, Clone, Copy, Default)]
pub struct UniversalMultiMean;

impl Estimator for UniversalMultiMean {
    fn name(&self) -> &'static str {
        "multi-mean"
    }

    fn statistic(&self) -> &'static str {
        "multi-mean"
    }

    fn multi_column(&self) -> bool {
        true
    }

    fn estimate(
        &self,
        rng: &mut dyn RngCore,
        view: &DataView<'_>,
        params: &EstimateParams,
    ) -> Result<Release> {
        let d = view.dim();
        if d == 0 {
            return Err(UpdpError::EmptyDataset);
        }
        let per_coord = params.epsilon.scale(1.0 / d as f64);
        let per_beta = params.beta / d as f64;
        let mut release = Release {
            values: Vec::with_capacity(d),
            sensitivities: Vec::with_capacity(d),
            diagnostics: Vec::new(),
        };
        for col in view.cols() {
            let est = estimate_mean(rng, col.data(), per_coord, per_beta)?;
            release.values.push(est.estimate);
            release
                .sensitivities
                .push(est.range.width() / col.len() as f64);
        }
        Ok(release)
    }
}

/// The five universal estimators as trait objects (the statistical
/// half of a serving catalog; `updp_baselines::baseline_estimators`
/// contributes the comparators).
pub fn universal_estimators() -> Vec<Box<dyn Estimator>> {
    vec![
        Box::new(UniversalMean),
        Box::new(UniversalVariance),
        Box::new(UniversalQuantile),
        Box::new(UniversalIqr),
        Box::new(UniversalMultiMean),
    ]
}

/// A configured universal private estimator.
///
/// ```
/// use updp_statistical::UniversalEstimator;
/// use updp_core::privacy::Epsilon;
/// use updp_core::rng::seeded;
///
/// let est = UniversalEstimator::new(Epsilon::new(0.5).unwrap());
/// let mut rng = seeded(7);
/// // Any data, any scale, no range/variance assumptions:
/// let data: Vec<f64> = (0..5000).map(|i| 1e6 + (i % 100) as f64).collect();
/// let mean = est.mean(&mut rng, &data).unwrap();
/// assert!((mean.estimate - 1e6).abs() < 1e3);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct UniversalEstimator {
    epsilon: Epsilon,
    beta: f64,
}

impl UniversalEstimator {
    /// Creates an estimator with privacy parameter `epsilon` and the
    /// default β = 1/3 (the paper's "constant success probability").
    pub fn new(epsilon: Epsilon) -> Self {
        UniversalEstimator {
            epsilon,
            beta: DEFAULT_BETA,
        }
    }

    /// Sets a custom utility failure probability β ∈ (0, 1).
    pub fn with_beta(mut self, beta: f64) -> Self {
        assert!(beta > 0.0 && beta < 1.0, "beta must be in (0,1)");
        self.beta = beta;
        self
    }

    /// The configured ε.
    pub fn epsilon(&self) -> Epsilon {
        self.epsilon
    }

    /// The configured β.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// ε-DP universal mean estimate (Algorithm 8, Theorem 4.5).
    pub fn mean<R: Rng + ?Sized>(&self, rng: &mut R, data: &[f64]) -> Result<MeanEstimate> {
        estimate_mean(rng, data, self.epsilon, self.beta)
    }

    /// ε-DP universal variance estimate (Algorithm 9, Theorem 5.2).
    pub fn variance<R: Rng + ?Sized>(&self, rng: &mut R, data: &[f64]) -> Result<VarianceEstimate> {
        estimate_variance(rng, data, self.epsilon, self.beta)
    }

    /// ε-DP universal IQR estimate (Algorithm 10, Theorem 6.2).
    pub fn iqr<R: Rng + ?Sized>(&self, rng: &mut R, data: &[f64]) -> Result<IqrEstimate> {
        estimate_iqr(rng, data, self.epsilon, self.beta)
    }

    /// ε-DP universal estimate of the `q`-quantile `F⁻¹(q)` (extension
    /// of Algorithm 10; see [`crate::quantile`]).
    pub fn quantile<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        data: &[f64],
        q: f64,
    ) -> Result<crate::quantile::QuantileEstimate> {
        crate::quantile::estimate_quantile(rng, data, q, self.epsilon, self.beta)
    }

    /// ε-DP universal multivariate mean (§1.2 extension): one
    /// universal mean per coordinate at ε/d under basic composition.
    /// `data` is row-major — each inner slice is one d-dimensional
    /// record (see [`estimate_mean_multivariate`]).
    pub fn multi_mean<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        data: &[Vec<f64>],
    ) -> Result<MultivariateMeanEstimate> {
        estimate_mean_multivariate(rng, data, self.epsilon, self.beta)
    }

    /// Estimates all three parameters on one dataset, splitting the
    /// configured ε evenly so the *total* privacy cost is ε (Lemma 2.2).
    pub fn all<R: Rng + ?Sized>(&self, rng: &mut R, data: &[f64]) -> Result<AllEstimates> {
        let shares = self.epsilon.split(&[1.0, 1.0, 1.0]);
        Ok(AllEstimates {
            mean: estimate_mean(rng, data, shares[0], self.beta)?,
            variance: estimate_variance(rng, data, shares[1], self.beta)?,
            iqr: estimate_iqr(rng, data, shares[2], self.beta)?,
        })
    }
}

/// Mean, variance, and IQR estimated together under one total ε.
#[derive(Debug, Clone, Copy)]
pub struct AllEstimates {
    /// The mean estimate.
    pub mean: MeanEstimate,
    /// The variance estimate.
    pub variance: VarianceEstimate,
    /// The IQR estimate.
    pub iqr: IqrEstimate,
}

#[cfg(test)]
// Exact `==` on f64 is deliberate in tests: they pin bit-identical
// outputs (DESIGN.md §5), so an epsilon tolerance would weaken them.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use updp_core::rng::seeded;
    use updp_dist::{ContinuousDistribution, Gaussian};

    #[test]
    fn facade_round_trip() {
        let g = Gaussian::new(50.0, 5.0).unwrap();
        let mut rng = seeded(1);
        let data = g.sample_vec(&mut rng, 30_000);
        let est = UniversalEstimator::new(Epsilon::new(1.0).unwrap());
        let m = est.mean(&mut rng, &data).unwrap();
        let v = est.variance(&mut rng, &data).unwrap();
        let i = est.iqr(&mut rng, &data).unwrap();
        assert!((m.estimate - 50.0).abs() < 1.0, "mean {}", m.estimate);
        assert!((v.estimate - 25.0).abs() < 5.0, "variance {}", v.estimate);
        assert!((i.estimate - g.iqr()).abs() < 1.0, "iqr {}", i.estimate);
    }

    #[test]
    fn all_splits_budget() {
        let g = Gaussian::new(0.0, 1.0).unwrap();
        let mut rng = seeded(2);
        let data = g.sample_vec(&mut rng, 30_000);
        let est = UniversalEstimator::new(Epsilon::new(1.5).unwrap());
        let all = est.all(&mut rng, &data).unwrap();
        assert!(all.mean.estimate.abs() < 0.5);
        assert!((all.variance.estimate - 1.0).abs() < 0.5);
        assert!((all.iqr.estimate - g.iqr()).abs() < 0.5);
    }

    #[test]
    fn facade_quantile() {
        let g = Gaussian::new(10.0, 2.0).unwrap();
        let mut rng = seeded(3);
        let data = g.sample_vec(&mut rng, 20_000);
        let est = UniversalEstimator::new(Epsilon::new(1.0).unwrap());
        let q = est.quantile(&mut rng, &data, 0.9).unwrap();
        let truth = g.quantile(0.9);
        assert!((q.estimate - truth).abs() < 0.3, "p90 {}", q.estimate);
    }

    #[test]
    fn beta_configuration() {
        let est = UniversalEstimator::new(Epsilon::new(1.0).unwrap()).with_beta(0.05);
        assert_eq!(est.beta(), 0.05);
        assert_eq!(est.epsilon().get(), 1.0);
    }

    #[test]
    #[should_panic(expected = "beta must be in (0,1)")]
    fn invalid_beta_panics() {
        let _ = UniversalEstimator::new(Epsilon::new(1.0).unwrap()).with_beta(1.0);
    }

    #[test]
    fn facade_multi_mean() {
        let mut rng = seeded(20);
        let g0 = Gaussian::new(10.0, 1.0).unwrap();
        let g1 = Gaussian::new(-5.0, 2.0).unwrap();
        let rows: Vec<Vec<f64>> = (0..20_000)
            .map(|_| vec![g0.sample(&mut rng), g1.sample(&mut rng)])
            .collect();
        let est = UniversalEstimator::new(Epsilon::new(2.0).unwrap());
        let r = est.multi_mean(&mut rng, &rows).unwrap();
        assert_eq!(r.estimate.len(), 2);
        assert!((r.estimate[0] - 10.0).abs() < 0.5, "{:?}", r.estimate);
        assert!((r.estimate[1] + 5.0).abs() < 0.5, "{:?}", r.estimate);
    }

    #[test]
    fn trait_dispatch_matches_free_functions_bit_for_bit() {
        let g = Gaussian::new(3.0, 2.0).unwrap();
        let mut rng = seeded(30);
        let data = g.sample_vec(&mut rng, 5_000);
        let e = Epsilon::new(0.8).unwrap();
        let params = EstimateParams::new(e).with_beta(0.1);
        let view = DataView::of(&data);

        let direct = estimate_mean(&mut seeded(1), &data, e, 0.1).unwrap();
        let via = UniversalMean
            .estimate(&mut seeded(1), &view, &params)
            .unwrap();
        assert_eq!(via.primary().to_bits(), direct.estimate.to_bits());

        let direct = estimate_variance(&mut seeded(2), &data, e, 0.1).unwrap();
        let via = UniversalVariance
            .estimate(&mut seeded(2), &view, &params)
            .unwrap();
        assert_eq!(via.primary().to_bits(), direct.estimate.to_bits());

        let direct =
            crate::quantile::estimate_quantile(&mut seeded(3), &data, 0.9, e, 0.1).unwrap();
        let via = UniversalQuantile
            .estimate(&mut seeded(3), &view, &params.clone().with("q", 0.9))
            .unwrap();
        assert_eq!(via.primary().to_bits(), direct.estimate.to_bits());

        let direct = estimate_iqr(&mut seeded(4), &data, e, 0.1).unwrap();
        let via = UniversalIqr
            .estimate(&mut seeded(4), &view, &params)
            .unwrap();
        assert_eq!(via.primary().to_bits(), direct.estimate.to_bits());
    }

    #[test]
    fn multi_mean_trait_matches_multivariate_free_function() {
        let mut rng = seeded(40);
        let g = Gaussian::new(1.0, 1.0).unwrap();
        let rows: Vec<Vec<f64>> = (0..4_000)
            .map(|_| vec![g.sample(&mut rng), g.sample(&mut rng), g.sample(&mut rng)])
            .collect();
        let columns: Vec<Vec<f64>> = (0..3)
            .map(|j| rows.iter().map(|r| r[j]).collect())
            .collect();
        let e = Epsilon::new(1.5).unwrap();
        let direct =
            crate::multivariate::estimate_mean_multivariate(&mut seeded(5), &rows, e, 0.1).unwrap();
        let via = UniversalMultiMean
            .estimate(
                &mut seeded(5),
                &DataView::of_columns(&columns),
                &EstimateParams::new(e).with_beta(0.1),
            )
            .unwrap();
        assert_eq!(via.values.len(), 3);
        for (a, b) in via.values.iter().zip(&direct.estimate) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn param_validation_catches_missing_unknown_and_out_of_range() {
        let e = Epsilon::new(1.0).unwrap();
        // Missing required q.
        assert!(UniversalQuantile
            .validate_params(&EstimateParams::new(e))
            .is_err());
        // Out-of-range q.
        assert!(UniversalQuantile
            .validate_params(&EstimateParams::new(e).with("q", 1.5))
            .is_err());
        // Unknown option name.
        assert!(UniversalQuantile
            .validate_params(&EstimateParams::new(e).with("q", 0.5).with("zork", 1.0))
            .is_err());
        // Well-formed.
        assert!(UniversalQuantile
            .validate_params(&EstimateParams::new(e).with("q", 0.5))
            .is_ok());
        // Estimators with no extra params reject any option.
        assert!(UniversalMean
            .validate_params(&EstimateParams::new(e).with("r", 1.0))
            .is_err());
        assert!(UniversalMean
            .validate_params(&EstimateParams::new(e))
            .is_ok());
    }

    #[test]
    fn scalar_estimators_reject_multivariate_views() {
        let columns = vec![vec![1.0; 64], vec![2.0; 64]];
        let view = DataView::of_columns(&columns);
        let params = EstimateParams::new(Epsilon::new(1.0).unwrap());
        let err = UniversalMean
            .estimate(&mut seeded(6), &view, &params)
            .unwrap_err();
        assert!(matches!(err, updp_core::UpdpError::InvalidParameter { .. }));
    }

    #[test]
    fn catalog_names_are_unique_and_metadata_present() {
        let catalog = universal_estimators();
        assert_eq!(catalog.len(), 5);
        let mut names: Vec<&str> = catalog.iter().map(|e| e.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 5);
        for est in &catalog {
            assert!(est.assumptions().is_empty(), "universal = assumption-free");
            assert_eq!(est.privacy(), "ε-DP");
        }
    }

    #[test]
    fn params_bag_roundtrip() {
        let e = Epsilon::new(1.0).unwrap();
        let mut p = EstimateParams::new(e).with("r", 2.0);
        assert_eq!(p.option("r"), Some(2.0));
        p.set("r", 3.0);
        assert_eq!(p.option("r"), Some(3.0));
        assert_eq!(p.option("nope"), None);
        assert_eq!(p.options().len(), 1);
        let spec = ParamSpec::optional("steps", 4.0, "iterations");
        assert_eq!(p.resolve(&spec).unwrap(), 4.0);
    }
}
