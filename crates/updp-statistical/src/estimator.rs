//! High-level facade: one configured object, three universal estimators.
//!
//! [`UniversalEstimator`] bundles the privacy parameter ε and failure
//! probability β so applications configure once and call
//! [`UniversalEstimator::mean`], [`UniversalEstimator::variance`], and
//! [`UniversalEstimator::iqr`]. **Each call spends a fresh ε** — callers
//! estimating several parameters of the *same* dataset should split their
//! total budget across calls (basic composition, Lemma 2.2), e.g. with
//! [`Epsilon::split`].

use crate::iqr::{estimate_iqr, IqrEstimate};
use crate::mean::{estimate_mean, MeanEstimate};
use crate::variance::{estimate_variance, VarianceEstimate};
use rand::Rng;
use updp_core::error::Result;
use updp_core::privacy::Epsilon;

/// Default failure probability for the utility guarantees.
pub const DEFAULT_BETA: f64 = 1.0 / 3.0;

/// A configured universal private estimator.
///
/// ```
/// use updp_statistical::UniversalEstimator;
/// use updp_core::privacy::Epsilon;
/// use updp_core::rng::seeded;
///
/// let est = UniversalEstimator::new(Epsilon::new(0.5).unwrap());
/// let mut rng = seeded(7);
/// // Any data, any scale, no range/variance assumptions:
/// let data: Vec<f64> = (0..5000).map(|i| 1e6 + (i % 100) as f64).collect();
/// let mean = est.mean(&mut rng, &data).unwrap();
/// assert!((mean.estimate - 1e6).abs() < 1e3);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct UniversalEstimator {
    epsilon: Epsilon,
    beta: f64,
}

impl UniversalEstimator {
    /// Creates an estimator with privacy parameter `epsilon` and the
    /// default β = 1/3 (the paper's "constant success probability").
    pub fn new(epsilon: Epsilon) -> Self {
        UniversalEstimator {
            epsilon,
            beta: DEFAULT_BETA,
        }
    }

    /// Sets a custom utility failure probability β ∈ (0, 1).
    pub fn with_beta(mut self, beta: f64) -> Self {
        assert!(beta > 0.0 && beta < 1.0, "beta must be in (0,1)");
        self.beta = beta;
        self
    }

    /// The configured ε.
    pub fn epsilon(&self) -> Epsilon {
        self.epsilon
    }

    /// The configured β.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// ε-DP universal mean estimate (Algorithm 8, Theorem 4.5).
    pub fn mean<R: Rng + ?Sized>(&self, rng: &mut R, data: &[f64]) -> Result<MeanEstimate> {
        estimate_mean(rng, data, self.epsilon, self.beta)
    }

    /// ε-DP universal variance estimate (Algorithm 9, Theorem 5.2).
    pub fn variance<R: Rng + ?Sized>(&self, rng: &mut R, data: &[f64]) -> Result<VarianceEstimate> {
        estimate_variance(rng, data, self.epsilon, self.beta)
    }

    /// ε-DP universal IQR estimate (Algorithm 10, Theorem 6.2).
    pub fn iqr<R: Rng + ?Sized>(&self, rng: &mut R, data: &[f64]) -> Result<IqrEstimate> {
        estimate_iqr(rng, data, self.epsilon, self.beta)
    }

    /// ε-DP universal estimate of the `q`-quantile `F⁻¹(q)` (extension
    /// of Algorithm 10; see [`crate::quantile`]).
    pub fn quantile<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        data: &[f64],
        q: f64,
    ) -> Result<crate::quantile::QuantileEstimate> {
        crate::quantile::estimate_quantile(rng, data, q, self.epsilon, self.beta)
    }

    /// Estimates all three parameters on one dataset, splitting the
    /// configured ε evenly so the *total* privacy cost is ε (Lemma 2.2).
    pub fn all<R: Rng + ?Sized>(&self, rng: &mut R, data: &[f64]) -> Result<AllEstimates> {
        let shares = self.epsilon.split(&[1.0, 1.0, 1.0]);
        Ok(AllEstimates {
            mean: estimate_mean(rng, data, shares[0], self.beta)?,
            variance: estimate_variance(rng, data, shares[1], self.beta)?,
            iqr: estimate_iqr(rng, data, shares[2], self.beta)?,
        })
    }
}

/// Mean, variance, and IQR estimated together under one total ε.
#[derive(Debug, Clone, Copy)]
pub struct AllEstimates {
    /// The mean estimate.
    pub mean: MeanEstimate,
    /// The variance estimate.
    pub variance: VarianceEstimate,
    /// The IQR estimate.
    pub iqr: IqrEstimate,
}

#[cfg(test)]
mod tests {
    use super::*;
    use updp_core::rng::seeded;
    use updp_dist::{ContinuousDistribution, Gaussian};

    #[test]
    fn facade_round_trip() {
        let g = Gaussian::new(50.0, 5.0).unwrap();
        let mut rng = seeded(1);
        let data = g.sample_vec(&mut rng, 30_000);
        let est = UniversalEstimator::new(Epsilon::new(1.0).unwrap());
        let m = est.mean(&mut rng, &data).unwrap();
        let v = est.variance(&mut rng, &data).unwrap();
        let i = est.iqr(&mut rng, &data).unwrap();
        assert!((m.estimate - 50.0).abs() < 1.0, "mean {}", m.estimate);
        assert!((v.estimate - 25.0).abs() < 5.0, "variance {}", v.estimate);
        assert!((i.estimate - g.iqr()).abs() < 1.0, "iqr {}", i.estimate);
    }

    #[test]
    fn all_splits_budget() {
        let g = Gaussian::new(0.0, 1.0).unwrap();
        let mut rng = seeded(2);
        let data = g.sample_vec(&mut rng, 30_000);
        let est = UniversalEstimator::new(Epsilon::new(1.5).unwrap());
        let all = est.all(&mut rng, &data).unwrap();
        assert!(all.mean.estimate.abs() < 0.5);
        assert!((all.variance.estimate - 1.0).abs() < 0.5);
        assert!((all.iqr.estimate - g.iqr()).abs() < 0.5);
    }

    #[test]
    fn facade_quantile() {
        let g = Gaussian::new(10.0, 2.0).unwrap();
        let mut rng = seeded(3);
        let data = g.sample_vec(&mut rng, 20_000);
        let est = UniversalEstimator::new(Epsilon::new(1.0).unwrap());
        let q = est.quantile(&mut rng, &data, 0.9).unwrap();
        let truth = g.quantile(0.9);
        assert!((q.estimate - truth).abs() < 0.3, "p90 {}", q.estimate);
    }

    #[test]
    fn beta_configuration() {
        let est = UniversalEstimator::new(Epsilon::new(1.0).unwrap()).with_beta(0.05);
        assert_eq!(est.beta(), 0.05);
        assert_eq!(est.epsilon().get(), 1.0);
    }

    #[test]
    #[should_panic(expected = "beta must be in (0,1)")]
    fn invalid_beta_panics() {
        let _ = UniversalEstimator::new(Epsilon::new(1.0).unwrap()).with_beta(1.0);
    }
}
