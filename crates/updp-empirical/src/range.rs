//! `InfiniteDomainRange` — Algorithm 4 (Theorem 3.2).
//!
//! Finds a privatized range `R̃(D)` that is close to the true
//! `R(D) = [X₁, Xₙ]` in both *location* and *scale*:
//!
//! 1. `r̃ad(D)` ← `InfiniteDomainRadius(D, ε/8, β/3)`;
//! 2. clip `D` into `[−r̃ad, r̃ad]` and take a private median `X̃` via
//!    `FiniteDomainQuantile` (ε/8, β/3) — a rough *location*;
//! 3. recenter `D″ = D − X̃` and run the radius estimator again
//!    (3ε/4, β/3) — the *scale* around that location;
//! 4. return `[X̃ − r̃ad(D″), X̃ + r̃ad(D″)]`.
//!
//! Theorem 3.2: if `n > (c₁/ε)·log(rad(D)/β)` then with probability
//! ≥ 1 − β, `|R̃(D)| ≤ 4·γ(D)` and only `O((1/ε)·log(log(γ(D))/β))`
//! elements fall outside `R̃(D)`.

use crate::dataset::SortedInts;
use crate::radius::infinite_domain_radius;
use rand::Rng;
use updp_core::error::Result;
use updp_core::inverse_sensitivity::finite_domain_quantile;
use updp_core::privacy::Epsilon;

/// A privatized integer range `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntRange {
    /// Inclusive lower end.
    pub lo: i64,
    /// Inclusive upper end.
    pub hi: i64,
}

impl IntRange {
    /// Width `hi − lo` as `u64`.
    pub fn width(&self) -> u64 {
        (self.hi as i128 - self.lo as i128) as u64
    }

    /// Whether `v` lies inside the range.
    pub fn contains(&self, v: i64) -> bool {
        v >= self.lo && v <= self.hi
    }
}

/// Converts a `u64` radius to a saturating `i64` bound.
fn radius_to_i64(rad: u64) -> i64 {
    i64::try_from(rad).unwrap_or(i64::MAX)
}

/// ε-DP estimate of `R(D)` (Algorithm 4). Satisfies ε-DP by basic
/// composition of the ε/8 + ε/8 + 3ε/4 stages.
pub fn infinite_domain_range<R: Rng + ?Sized>(
    rng: &mut R,
    data: &SortedInts,
    epsilon: Epsilon,
    beta: f64,
) -> Result<IntRange> {
    assert!(beta > 0.0 && beta < 1.0, "beta must be in (0,1)");
    let n = data.len();

    // Stage 1: radius (ε/8, β/3).
    let rad = infinite_domain_radius(rng, data, epsilon.scale(1.0 / 8.0), beta / 3.0);
    let rad_i = radius_to_i64(rad);

    // Stage 2: rough location — private median of the clipped data over
    // the finite domain [−r̃ad, r̃ad] (ε/8, β/3).
    let clipped = data.clip(-rad_i, rad_i);
    let median = finite_domain_quantile(
        rng,
        clipped.values(),
        n.div_ceil(2),
        -rad_i,
        rad_i,
        epsilon.scale(1.0 / 8.0),
        beta / 3.0,
    )?;

    // Stage 3: scale around the location (3ε/4, β/3).
    let recentered = data.shift_by(median);
    let rad2 = infinite_domain_radius(rng, &recentered, epsilon.scale(3.0 / 4.0), beta / 3.0);
    let rad2_i = radius_to_i64(rad2);

    Ok(IntRange {
        lo: median.saturating_sub(rad2_i),
        hi: median.saturating_add(rad2_i),
    })
}

/// The minimum `n` for Theorem 3.2's guarantee (with its universal
/// constant set to the smallest value our experiments confirm):
/// `n > (c₁/ε)·log(rad(D)/β)`.
pub fn range_required_n(epsilon: Epsilon, rad: u64, beta: f64, c1: f64) -> usize {
    let log_term = ((rad.max(1) as f64) / beta).ln().max(1.0);
    (c1 / epsilon.get() * log_term).ceil() as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use updp_core::rng::seeded;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn int_range_helpers() {
        let r = IntRange { lo: -5, hi: 10 };
        assert_eq!(r.width(), 15);
        assert!(r.contains(0));
        assert!(r.contains(-5));
        assert!(r.contains(10));
        assert!(!r.contains(11));
        let extreme = IntRange {
            lo: i64::MIN,
            hi: i64::MAX,
        };
        assert_eq!(extreme.width(), u64::MAX);
    }

    #[test]
    fn width_at_most_four_gamma_far_from_origin() {
        // Cluster near 10^6 with width 100: the returned range must track
        // the cluster, not the distance to the origin.
        let values: Vec<i64> = (0..3000).map(|i| 1_000_000 + (i % 101)).collect();
        let d = SortedInts::new(values).unwrap();
        let gamma = d.width(); // 100
        let mut wide = 0;
        for seed in 0..100 {
            let mut rng = seeded(seed);
            let r = infinite_domain_range(&mut rng, &d, eps(1.0), 0.05).unwrap();
            if r.width() > 4 * gamma.max(1) {
                wide += 1;
            }
        }
        assert!(wide <= 10, "range wider than 4γ in {wide}/100 runs");
    }

    #[test]
    fn range_covers_most_points() {
        let values: Vec<i64> = (0..5000).map(|i| -250 + (i % 501)).collect();
        let d = SortedInts::new(values).unwrap();
        let mut failures = 0;
        for seed in 0..100 {
            let mut rng = seeded(100 + seed);
            let r = infinite_domain_range(&mut rng, &d, eps(1.0), 0.05).unwrap();
            let inside = d.count_in(r.lo, r.hi);
            let outside = d.len() - inside;
            // Theorem 3.2: O((1/ε)log(log γ /β)); generous constant.
            if outside > 200 {
                failures += 1;
            }
        }
        assert!(failures <= 10, "coverage failed {failures}/100");
    }

    #[test]
    fn location_tracks_shifted_clusters() {
        // All mass at −10^9 ± 50: location must go there.
        let values: Vec<i64> = (0..4000).map(|i| -1_000_000_000 + (i % 101) - 50).collect();
        let d = SortedInts::new(values).unwrap();
        let mut rng = seeded(3);
        let r = infinite_domain_range(&mut rng, &d, eps(1.0), 0.1).unwrap();
        assert!(
            r.contains(-1_000_000_000),
            "range {r:?} misses the cluster center"
        );
    }

    #[test]
    fn handles_point_mass_at_zero() {
        let d = SortedInts::new(vec![0; 3000]).unwrap();
        let mut rng = seeded(4);
        let r = infinite_domain_range(&mut rng, &d, eps(1.0), 0.1).unwrap();
        assert!(r.contains(0));
        assert!(r.width() < 100, "degenerate data gave width {}", r.width());
    }

    #[test]
    fn required_n_grows_with_radius() {
        let e = eps(1.0);
        let n_small = range_required_n(e, 1 << 10, 0.1, 8.0);
        let n_large = range_required_n(e, 1 << 40, 0.1, 8.0);
        assert!(n_large > n_small);
        // Logarithmic growth: 4x the exponent ⇒ ~4x the requirement.
        assert!(n_large < 8 * n_small);
    }

    #[test]
    fn deterministic_given_seed() {
        let d = SortedInts::new((0..2000).map(|i| i * 3 - 1000).collect()).unwrap();
        let mut a = seeded(9);
        let mut b = seeded(9);
        assert_eq!(
            infinite_domain_range(&mut a, &d, eps(0.5), 0.1).unwrap(),
            infinite_domain_range(&mut b, &d, eps(0.5), 0.1).unwrap()
        );
    }
}
