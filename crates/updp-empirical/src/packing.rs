//! The packing lower-bound family of Theorem 3.4.
//!
//! Theorem 3.4 proves that for the empirical mean over `[N]ⁿ`, *any* ε-DP
//! mechanism suffers error `≥ γ(D)/(3εn)·log log₂(N)` on at least one of
//! the datasets `D(0), …, D(log₂ N)`, where `D(0)` is all zeros and
//! `D(i)` changes `log log₂(N)/ε` zeros to `2^i`. The existential
//! quantifier cannot be *verified* by running one mechanism, but the
//! family itself is constructive — this module builds it exactly as in
//! the proof, and the `packing` experiment measures our mechanism's error
//! profile across it, confirming the achieved optimality ratio grows as
//! `log log N` (the matching upper-bound side of Theorems 3.3 + 3.4).

use crate::dataset::SortedInts;
use updp_core::error::{Result, UpdpError};
use updp_core::privacy::Epsilon;

/// The packing family over domain `[N] = {0, …, 2^log2_n}`.
#[derive(Debug, Clone)]
pub struct PackingFamily {
    log2_n: u32,
    n: usize,
    moved: usize,
}

impl PackingFamily {
    /// Creates the family over `[2^log2_n]` with datasets of size `n`.
    ///
    /// `moved = ceil(log(log₂ N)/ε)` elements are moved in each `D(i)`,
    /// exactly as in the proof; requires `n > moved`.
    pub fn new(log2_n: u32, n: usize, epsilon: Epsilon) -> Result<Self> {
        if log2_n == 0 {
            return Err(UpdpError::InvalidParameter {
                name: "log2_n",
                reason: "domain must have at least two powers of two".into(),
            });
        }
        let moved = ((log2_n as f64).ln().max(1.0) / epsilon.get()).ceil() as usize;
        if n <= moved {
            return Err(UpdpError::InsufficientData {
                required: moved + 1,
                actual: n,
                context: "Theorem 3.4 packing construction",
            });
        }
        Ok(PackingFamily { log2_n, n, moved })
    }

    /// Number of datasets in the family: `log₂(N) + 1`.
    pub fn family_size(&self) -> usize {
        self.log2_n as usize + 1
    }

    /// Number of moved elements per non-zero dataset.
    pub fn moved(&self) -> usize {
        self.moved
    }

    /// Builds `D(i)`: all zeros for `i = 0`; otherwise `moved` copies of
    /// `2^i` among zeros.
    pub fn dataset(&self, i: u32) -> Result<SortedInts> {
        if i > self.log2_n {
            return Err(UpdpError::InvalidParameter {
                name: "i",
                reason: format!("family index must be ≤ {}", self.log2_n),
            });
        }
        let mut values = vec![0i64; self.n];
        if i > 0 {
            let v = 1i64
                .checked_shl(i)
                .filter(|_| i < 63)
                .ok_or(UpdpError::InvalidParameter {
                    name: "i",
                    reason: "2^i must fit in i64".into(),
                })?;
            for slot in values.iter_mut().take(self.moved) {
                *slot = v;
            }
        }
        SortedInts::new(values)
    }

    /// The true empirical mean of `D(i)` — Eq. (22) in the proof.
    pub fn true_mean(&self, i: u32) -> f64 {
        if i == 0 {
            0.0
        } else {
            (self.moved as f64) * 2f64.powi(i as i32) / self.n as f64
        }
    }

    /// The per-dataset error the theorem says some dataset must incur:
    /// `γ(D(i))/(3εn)·log log₂ N` with `γ(D(i)) = 2^i`.
    pub fn lower_bound_error(&self, i: u32, epsilon: Epsilon) -> f64 {
        if i == 0 {
            return 0.0;
        }
        2f64.powi(i as i32) / (3.0 * epsilon.get() * self.n as f64)
            * (self.log2_n as f64).ln().max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(PackingFamily::new(0, 100, eps(1.0)).is_err());
        assert!(PackingFamily::new(32, 1, eps(1.0)).is_err());
        assert!(PackingFamily::new(32, 1000, eps(1.0)).is_ok());
    }

    #[test]
    fn family_shape_matches_proof() {
        let f = PackingFamily::new(16, 500, eps(0.5)).unwrap();
        assert_eq!(f.family_size(), 17);
        // moved = ceil(ln(16)/0.5) = ceil(5.545) = 6.
        assert_eq!(f.moved(), 6);
        let d0 = f.dataset(0).unwrap();
        assert!(d0.values().iter().all(|&v| v == 0));
        let d3 = f.dataset(3).unwrap();
        assert_eq!(d3.values().iter().filter(|&&v| v == 8).count(), 6);
        assert_eq!(d3.values().iter().filter(|&&v| v == 0).count(), 494);
    }

    #[test]
    fn true_means_match_eq_22() {
        let f = PackingFamily::new(10, 1000, eps(1.0)).unwrap();
        let moved = f.moved() as f64;
        for i in 1..=10u32 {
            let expected = moved * 2f64.powi(i as i32) / 1000.0;
            assert!((f.true_mean(i) - expected).abs() < 1e-12);
            let d = f.dataset(i).unwrap();
            assert!((d.mean() - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn lower_bound_grows_with_domain() {
        let e = eps(1.0);
        let small = PackingFamily::new(8, 1000, e).unwrap();
        let large = PackingFamily::new(48, 1000, e).unwrap();
        assert!(large.lower_bound_error(8, e) > small.lower_bound_error(8, e));
    }

    #[test]
    fn rejects_out_of_range_index() {
        let f = PackingFamily::new(8, 100, eps(1.0)).unwrap();
        assert!(f.dataset(9).is_err());
        assert!(f.dataset(8).is_ok());
    }
}
