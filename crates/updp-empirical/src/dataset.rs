//! Sorted integer multisets with the order/count queries of Section 2.1.
//!
//! All empirical algorithms work on `D ∈ Zⁿ` kept sorted, giving
//! `O(log n)` implementations of the quantities the paper defines:
//! `rad(D) = maxᵢ |Xᵢ|`, `γ(D) = Xₙ − X₁`, and
//! `Count(D, x) = |D ∩ [−x, x]|` (the SVT query of Algorithm 3).

use updp_core::clipped_mean::clipped_sum_i64;
use updp_core::error::{Result, UpdpError};

/// A sorted multiset of integers — the dataset type `D ∈ Zⁿ`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SortedInts {
    values: Vec<i64>,
}

impl SortedInts {
    /// Builds a dataset from arbitrary-order values (sorts internally).
    pub fn new(mut values: Vec<i64>) -> Result<Self> {
        if values.is_empty() {
            return Err(UpdpError::EmptyDataset);
        }
        values.sort_unstable();
        Ok(SortedInts { values })
    }

    /// Builds from already-sorted values (checked in debug builds).
    pub fn from_sorted(values: Vec<i64>) -> Result<Self> {
        if values.is_empty() {
            return Err(UpdpError::EmptyDataset);
        }
        debug_assert!(values.windows(2).all(|w| w[0] <= w[1]));
        Ok(SortedInts { values })
    }

    /// Number of records `n`.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Always false: construction rejects empty datasets.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The sorted values.
    pub fn values(&self) -> &[i64] {
        &self.values
    }

    /// Smallest element `X₁`.
    pub fn min(&self) -> i64 {
        self.values[0]
    }

    /// Largest element `Xₙ`.
    pub fn max(&self) -> i64 {
        *self.values.last().expect("non-empty")
    }

    /// The radius `rad(D) = maxᵢ |Xᵢ|`, as `u64` (handles `i64::MIN`).
    pub fn radius(&self) -> u64 {
        let lo = self.min().unsigned_abs();
        let hi = self.max().unsigned_abs();
        lo.max(hi)
    }

    /// The width `γ(D) = Xₙ − X₁`, as `u64` (cannot overflow in `u64`).
    pub fn width(&self) -> u64 {
        (self.max() as i128 - self.min() as i128) as u64
    }

    /// `Count(D, x) = |D ∩ [−x, x]|` — the sensitivity-1 SVT query of
    /// Algorithm 3. `x` is a `u64` radius; values beyond `i64`'s range
    /// trivially cover everything.
    pub fn count_within_radius(&self, x: u64) -> usize {
        let hi = i64::try_from(x).unwrap_or(i64::MAX);
        let lo = if x >= 1u64 << 63 {
            i64::MIN
        } else {
            -(x as i64)
        };
        self.count_in(lo, hi)
    }

    /// `|D ∩ [lo, hi]|` via two binary searches.
    pub fn count_in(&self, lo: i64, hi: i64) -> usize {
        if lo > hi {
            return 0;
        }
        let start = self.values.partition_point(|&v| v < lo);
        let end = self.values.partition_point(|&v| v <= hi);
        end - start
    }

    /// Number of elements `< x`.
    pub fn count_below(&self, x: i64) -> usize {
        self.values.partition_point(|&v| v < x)
    }

    /// The τ-th order statistic `X_τ` (1-based), with the paper's edge
    /// convention `X_i = X_1` for `i < 1` and `X_i = X_n` for `i > n`.
    pub fn order_statistic(&self, tau: i64) -> i64 {
        let idx = tau.clamp(1, self.values.len() as i64) as usize - 1;
        self.values[idx]
    }

    /// Merges this multiset with another **sorted** run of values in
    /// `O(n + k)`, preserving sortedness. Because both inputs are
    /// sorted, the merged sequence is exactly the sorted multiset of
    /// the concatenation — bit-identical to
    /// `SortedInts::new(concat)` without its `O(n log n)` sort. This
    /// is the grid-maintenance primitive of the streaming append path
    /// (DESIGN.md §8).
    pub fn merge_sorted(&self, other: &[i64]) -> SortedInts {
        debug_assert!(other.windows(2).all(|w| w[0] <= w[1]));
        SortedInts {
            values: merge_sorted_by(&self.values, other, |a, b| a <= b),
        }
    }

    /// Clips every value into `[lo, hi]`, preserving sortedness.
    pub fn clip(&self, lo: i64, hi: i64) -> SortedInts {
        debug_assert!(lo <= hi);
        SortedInts {
            values: self.values.iter().map(|&v| v.clamp(lo, hi)).collect(),
        }
    }

    /// Shifts every value by `−shift` (i.e. recenters at `shift`),
    /// saturating at the `i64` boundary — the `D″ = D − X̃` step of
    /// Algorithm 4.
    pub fn shift_by(&self, shift: i64) -> SortedInts {
        SortedInts {
            values: self
                .values
                .iter()
                .map(|&v| v.saturating_sub(shift))
                .collect(),
        }
    }

    /// The empirical mean `μ(D)` as `f64` (exact i128 accumulation).
    ///
    /// Routed through the chunked [`clipped_sum_i64`] kernel with the
    /// dataset's own min/max as bounds — the clamp is the identity on
    /// every element (the values are sorted, so the bounds are O(1)),
    /// and the kernel's chunked `i64` partials autovectorize where the
    /// historical per-element `i128` loop could not. Integer addition
    /// is exact, so the sum (and the mean) is bit-identical.
    pub fn mean(&self) -> f64 {
        let sum = clipped_sum_i64(&self.values, self.min(), self.max());
        sum as f64 / self.values.len() as f64
    }
}

/// Merges two runs sorted under `le` ("less or equal") in `O(n + k)`.
/// When `le` is (consistent with) a total order, the output is exactly
/// the sorted multiset of the concatenation; when equal-comparing
/// elements are indistinguishable (identical `i64`s, or `f64`s under
/// `total_cmp` where ties are bit-identical), the output is
/// bit-identical to fully sorting the concatenation regardless of how
/// ties are broken. Shared by [`SortedInts::merge_sorted`] and the
/// sorted-copy maintenance in [`crate::view`].
pub(crate) fn merge_sorted_by<T: Copy>(a: &[T], b: &[T], le: impl Fn(&T, &T) -> bool) -> Vec<T> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        if le(&a[i], &b[j]) {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[cfg(test)]
// Exact `==` on f64 is deliberate in tests: they pin bit-identical
// outputs (DESIGN.md §5), so an epsilon tolerance would weaken them.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn construction_sorts_and_rejects_empty() {
        assert!(SortedInts::new(vec![]).is_err());
        let d = SortedInts::new(vec![3, -1, 2]).unwrap();
        assert_eq!(d.values(), &[-1, 2, 3]);
    }

    #[test]
    fn radius_and_width() {
        let d = SortedInts::new(vec![-7, 1, 5]).unwrap();
        assert_eq!(d.radius(), 7);
        assert_eq!(d.width(), 12);
        let single = SortedInts::new(vec![4]).unwrap();
        assert_eq!(single.radius(), 4);
        assert_eq!(single.width(), 0);
    }

    #[test]
    fn radius_handles_i64_min() {
        let d = SortedInts::new(vec![i64::MIN, 0]).unwrap();
        assert_eq!(d.radius(), 1u64 << 63);
        assert_eq!(d.width(), 1u64 << 63);
    }

    #[test]
    fn count_within_radius_matches_naive() {
        let d = SortedInts::new(vec![-10, -3, 0, 0, 4, 9]).unwrap();
        for x in 0..12u64 {
            let naive = d
                .values()
                .iter()
                .filter(|&&v| v.unsigned_abs() <= x)
                .count();
            assert_eq!(d.count_within_radius(x), naive, "x = {x}");
        }
    }

    #[test]
    fn count_within_huge_radius_covers_all() {
        let d = SortedInts::new(vec![i64::MIN, -5, i64::MAX]).unwrap();
        assert_eq!(d.count_within_radius(u64::MAX), 3);
    }

    #[test]
    fn count_in_and_below() {
        let d = SortedInts::new(vec![1, 2, 2, 2, 5]).unwrap();
        assert_eq!(d.count_in(2, 2), 3);
        assert_eq!(d.count_in(0, 10), 5);
        assert_eq!(d.count_in(3, 4), 0);
        assert_eq!(d.count_in(5, 1), 0);
        assert_eq!(d.count_below(2), 1);
        assert_eq!(d.count_below(6), 5);
    }

    #[test]
    fn order_statistic_with_edge_convention() {
        let d = SortedInts::new(vec![10, 20, 30]).unwrap();
        assert_eq!(d.order_statistic(1), 10);
        assert_eq!(d.order_statistic(2), 20);
        assert_eq!(d.order_statistic(3), 30);
        assert_eq!(d.order_statistic(0), 10); // below range → X₁
        assert_eq!(d.order_statistic(99), 30); // above range → Xₙ
    }

    #[test]
    fn clip_and_shift() {
        let d = SortedInts::new(vec![-100, 0, 100]).unwrap();
        let c = d.clip(-10, 10);
        assert_eq!(c.values(), &[-10, 0, 10]);
        let s = d.shift_by(50);
        assert_eq!(s.values(), &[-150, -50, 50]);
    }

    #[test]
    fn shift_saturates() {
        let d = SortedInts::new(vec![i64::MIN + 1]).unwrap();
        let s = d.shift_by(10);
        assert_eq!(s.values(), &[i64::MIN]);
    }

    #[test]
    fn merge_sorted_matches_rebuild() {
        let base = SortedInts::new(vec![5, -2, 9, 0, 5]).unwrap();
        for delta in [
            vec![],
            vec![-7, 3, 5, 12],
            vec![5, 5],
            vec![i64::MIN, i64::MAX],
        ] {
            let merged = base.merge_sorted(&delta);
            let mut concat = base.values().to_vec();
            concat.extend_from_slice(&delta);
            let rebuilt = SortedInts::new(concat).unwrap();
            assert_eq!(merged, rebuilt, "delta {delta:?}");
        }
    }

    #[test]
    fn mean_is_exact() {
        let d = SortedInts::new(vec![1, 2, 3, 4]).unwrap();
        assert_eq!(d.mean(), 2.5);
        let big = SortedInts::new(vec![i64::MAX, i64::MAX]).unwrap();
        assert!((big.mean() - i64::MAX as f64).abs() < 1e3);
    }
}
