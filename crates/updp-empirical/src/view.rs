//! Cached dataset views — the data layer behind the `Estimator` trait.
//!
//! The statistical estimators repeatedly derive the same artifacts from
//! one dataset: a `total_cmp`-sorted copy of a column, and the sorted
//! integer grid `round(x/b)` of the inverse-sensitivity path for a
//! given bucket `b`. Serving workloads re-query the *same* registered
//! dataset over and over, so recomputing those artifacts per query is a
//! pure `O(n log n)` waste. This module provides:
//!
//! * [`ColumnCache`] — thread-safe, lazily-built artifacts of one
//!   column (sorted copy once; one discretized [`SortedInts`] per
//!   distinct bucket size);
//! * [`DataView`] — a borrowed, possibly-cached view of a column-major
//!   dataset, the data argument of
//!   `updp_statistical::estimator::Estimator::estimate`;
//! * [`PreparedDataset`] — an immutable snapshot owning columns *and*
//!   caches, shared as `Arc<PreparedDataset>` by the serving registry;
//!   `append` derives a **new** snapshot (bumped version) whose warm
//!   artifacts are merge-maintained from the parent in `O(n + k)`
//!   rather than rebuilt, so cached artifacts can never leak across
//!   data versions yet appends never pay the cold `O(n log n)` path
//!   twice.
//!
//! # Determinism contract (DESIGN.md §7)
//!
//! Cached artifacts are pure functions of the column contents — they
//! consume **no randomness** — so feeding an estimator a cached
//! artifact instead of a freshly computed one never changes the
//! estimator's RNG draw sequence, and released values stay
//! bit-identical to the uncached path. The pair-gap structure of
//! Algorithm 7 historically drew its pairing from mechanism coins and
//! was therefore not cacheable; DESIGN.md §12 replaces that pairing
//! with a snapshot-derived pseudorandom permutation
//! ([`crate::gaps::GapSummary`]), making a per-column gap summary
//! cache-legal. Because routing consumers through the summary changes
//! *which* coins they draw (the per-call shuffle disappears), the
//! summary is strictly **opt-in** via
//! [`PreparedDataset::with_gap_summaries`]: default snapshots and bare
//! views keep the historical draw sequence bit-for-bit.
//!
//! Cold sorted-copy builds go through [`sorted_copy`], a deterministic
//! parallel merge sort: `total_cmp` ties are bit-identical, so chunked
//! sorting plus run merging (the proptest-pinned `merge_sorted_f64`
//! lemma) yields the identical byte sequence at any `UPDP_THREADS`.

use crate::dataset::SortedInts;
use crate::discretize::Discretizer;
use crate::gaps::GapSummary;
// BTreeMap, not HashMap: grid caches sit in the determinism scope and
// `successor` iterates them, so container order must be a pure
// function of the keys (updp-lint R2, DESIGN.md §5/§7).
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use updp_core::error::Result;

/// How many grids [`PreparedDataset::append`] carries forward to the
/// successor snapshot (most recently built first). Quantile/IQR
/// buckets are `IQR̲/n`, so a growing dataset retires old buckets as
/// `n` advances; merging every historical grid into every successor
/// would make publication cost `O(G·n)` and hold dead grids alive
/// forever. The freshest few cover the live buckets.
pub const MAX_CARRIED_GRIDS: usize = 4;

/// Columns shorter than this sort serially even when `UPDP_THREADS`
/// permits parallelism. Experiment trials are themselves parallelized
/// by the §5 engine, so per-trial sorts must not spawn nested worker
/// pools; only genuinely large cold builds (the serving registry's
/// registration path) clear this bar. Chosen so the O(n) merge rounds
/// amortize the thread spawn cost even on modest hosts.
pub const PAR_SORT_MIN_LEN: usize = 1 << 17;

/// A `total_cmp`-sorted copy of `data`, parallel for large columns.
///
/// Honors `UPDP_THREADS` via [`updp_core::parallel::max_threads`];
/// columns below [`PAR_SORT_MIN_LEN`] take the serial fast path
/// unconditionally. Output is bit-identical at any thread count (see
/// [`sorted_copy_threads`]).
pub fn sorted_copy(data: &[f64]) -> Vec<f64> {
    let threads = if data.len() >= PAR_SORT_MIN_LEN {
        updp_core::parallel::max_threads()
    } else {
        1
    };
    sorted_copy_threads(data, threads)
}

/// [`sorted_copy`] with an explicit worker count (1 ⇒ serial
/// `sort_by(total_cmp)`, no threads, no threshold).
///
/// Parallel path: split into `threads` contiguous chunks, sort each
/// with `total_cmp` via [`updp_core::parallel::par_map_indexed_threads`],
/// then merge runs pairwise (also in parallel) until one remains.
/// **Bit-identity lemma (DESIGN.md §12):** `total_cmp` is a total
/// order in which elements that compare equal have identical bit
/// patterns, so every correct sort of the same multiset — serial,
/// chunked, any merge-tree shape — produces the identical byte
/// sequence. `merge_sorted_f64` is the same proptest-pinned merge the
/// append path uses.
pub fn sorted_copy_threads(data: &[f64], threads: usize) -> Vec<f64> {
    let n = data.len();
    if threads <= 1 || n < 2 {
        let mut v = data.to_vec();
        v.sort_by(f64::total_cmp);
        return v;
    }
    let workers = threads.min(n);
    let chunk = n.div_ceil(workers);
    let pieces = n.div_ceil(chunk);
    let mut runs: Vec<Vec<f64>> =
        updp_core::parallel::par_map_indexed_threads(threads, pieces, |i| {
            let start = i * chunk;
            let end = (start + chunk).min(n);
            let mut run = data[start..end].to_vec();
            run.sort_by(f64::total_cmp);
            run
        });
    while runs.len() > 1 {
        let pairs = runs.len() / 2;
        let mut next = {
            let runs_ref = &runs;
            updp_core::parallel::par_map_indexed_threads(threads, pairs, |i| {
                merge_sorted_f64(&runs_ref[2 * i], &runs_ref[2 * i + 1])
            })
        };
        if runs.len() % 2 == 1 {
            next.push(runs.pop().expect("odd run count implies non-empty"));
        }
        runs = next;
    }
    runs.pop().unwrap_or_default()
}

/// Lazily-built, thread-safe artifacts of one `f64` column.
///
/// Both artifacts are built at most once per cache (the grid: once per
/// distinct bucket size) and shared as `Arc`s, so concurrent readers
/// never block each other after the first build. Each grid is stamped
/// with a build counter so [`ColumnCache::successor`] can carry the
/// freshest [`MAX_CARRIED_GRIDS`] forward.
/// Lock-poisoning policy (updp-lint R3, DESIGN.md §6): every artifact
/// here is a pure function of the column, so the cache is *only* an
/// optimization — a poisoned `grids` lock (a builder panicked) is
/// handled by bypassing the cache (compute fresh, skip insertion),
/// never by propagating the panic into unrelated readers.
#[derive(Debug, Default)]
pub struct ColumnCache {
    sorted: OnceLock<Arc<Vec<f64>>>,
    grids: RwLock<BTreeMap<u64, (u64, Arc<SortedInts>)>>,
    stamp: AtomicU64,
    gaps: RwLock<Option<Arc<GapSummary>>>,
    /// Whether [`ColumnCache::gap_summary`] may build and serve the
    /// snapshot-derived pair-gap summary. Off by default: the summary
    /// path changes which coins consumers draw, so it must be enabled
    /// explicitly ([`PreparedDataset::with_gap_summaries`]) and never
    /// inferred from cache presence.
    gaps_enabled: bool,
}

impl ColumnCache {
    /// An empty cache.
    pub fn new() -> Self {
        ColumnCache::default()
    }

    /// Number of distinct bucket sizes with a cached grid (diagnostic;
    /// a poisoned cache reads as empty).
    pub fn cached_grids(&self) -> usize {
        self.grids.read().map_or(0, |g| g.len())
    }

    /// Whether the sorted copy has been built (diagnostic; never
    /// triggers a build).
    pub fn has_sorted(&self) -> bool {
        self.sorted.get().is_some()
    }

    /// Whether a gap summary has been built (diagnostic; never
    /// triggers a build; a poisoned slot reads as absent).
    pub fn has_gap_summary(&self) -> bool {
        self.gaps.read().is_ok_and(|slot| slot.is_some())
    }

    /// The cached pair-gap summary for this column, building it on
    /// first use — or `None` when the summary path is not enabled.
    ///
    /// Poison-degrading like `grids` (updp-lint R3, DESIGN.md §6): the
    /// summary is a pure function of the column (the pairing seed
    /// derives from the column length, not from any mechanism RNG), so
    /// racing builders produce identical summaries and a poisoned slot
    /// just means this call's fresh build is served uncached.
    pub fn gap_summary(&self, data: &[f64]) -> Option<Arc<GapSummary>> {
        if !self.gaps_enabled {
            return None;
        }
        if let Ok(slot) = self.gaps.read() {
            if let Some(summary) = slot.as_ref() {
                return Some(summary.clone());
            }
        }
        let built = GapSummary::build_arc(data);
        match self.gaps.write() {
            Ok(mut slot) => Some(slot.get_or_insert_with(|| built).clone()),
            Err(_) => Some(built),
        }
    }

    /// Derives the cache of the `old ++ delta` successor column,
    /// carrying **warm** artifacts forward instead of discarding them
    /// (DESIGN.md §8).
    ///
    /// * Sorted copy built → sort only the `k`-row `delta` and merge
    ///   the two `total_cmp`-sorted runs in `O(n + k)`. `total_cmp` is
    ///   a total order on bit patterns (elements that compare equal
    ///   are bit-identical), so the merge is bit-identical to a fresh
    ///   full sort of the concatenation.
    /// * The [`MAX_CARRIED_GRIDS`] most recently built grids →
    ///   discretize the sorted `delta` (monotone map, already sorted)
    ///   and merge it into the parent's [`SortedInts`] in `O(n + k)`.
    ///   A delta value the bucket cannot map (overflow) drops that
    ///   grid instead: the successor rebuilds lazily and reports the
    ///   canonical data-order error.
    /// * Cold parent (nothing built) → empty cache, exactly the
    ///   historical lazy behaviour.
    fn successor(&self, delta: &[f64]) -> ColumnCache {
        let Some(parent_sorted) = self.sorted.get() else {
            // Grids force the sorted copy first (see `grid`), so a
            // missing sorted copy implies no grids either. The gap
            // summary is never carried (the pairing permutation is a
            // function of the column *length*, which the append just
            // changed), but the opt-in flag persists.
            return ColumnCache {
                gaps_enabled: self.gaps_enabled,
                ..ColumnCache::default()
            };
        };
        let sorted_delta = sorted_copy(delta);
        let merged = merge_sorted_f64(parent_sorted, &sorted_delta);

        // Freshest grids first; older buckets (typically retired by
        // the `n`-dependent bucket choice) rebuild lazily if ever
        // queried again. A poisoned parent cache carries nothing: the
        // successor rebuilds lazily, the historical cold behaviour.
        let mut carried: Vec<(u64, u64, Arc<SortedInts>)> = self.grids.read().map_or_else(
            |_| Vec::new(),
            |grids| {
                grids
                    .iter()
                    .map(|(&key, (stamp, grid))| (*stamp, key, grid.clone()))
                    .collect()
            },
        );
        carried.sort_by_key(|&(stamp, _, _)| std::cmp::Reverse(stamp));
        carried.truncate(MAX_CARRIED_GRIDS);

        // Build the successor's grid map before wrapping it in its
        // lock. Reverse order: oldest carried grid stamped first, so
        // relative recency survives chained appends.
        let stamp = AtomicU64::new(0);
        let mut grids = BTreeMap::new();
        for (_, key, grid) in carried.into_iter().rev() {
            let Ok(disc) = Discretizer::new(f64::from_bits(key)) else {
                continue;
            };
            let ints: Result<Vec<i64>> = sorted_delta.iter().map(|&x| disc.to_int(x)).collect();
            if let Ok(ints) = ints {
                let next = stamp.fetch_add(1, Ordering::Relaxed);
                grids.insert(key, (next, Arc::new(grid.merge_sorted(&ints))));
            }
        }
        let successor = ColumnCache {
            sorted: OnceLock::new(),
            grids: RwLock::new(grids),
            stamp,
            gaps: RwLock::new(None),
            gaps_enabled: self.gaps_enabled,
        };
        let _ = successor.sorted.set(Arc::new(merged));
        successor
    }

    fn sorted(&self, data: &[f64]) -> Arc<Vec<f64>> {
        self.sorted
            .get_or_init(|| Arc::new(sorted_copy(data)))
            .clone()
    }

    fn grid(&self, data: &[f64], bucket: f64) -> Result<Arc<SortedInts>> {
        let key = bucket.to_bits();
        if let Ok(grids) = self.grids.read() {
            if let Some((_, hit)) = grids.get(&key) {
                return Ok(hit.clone());
            }
        }
        let grid = Arc::new(build_grid(
            data,
            Some(self.sorted(data).as_slice()),
            bucket,
        )?);
        // Racing builders compute identical grids (the build is a pure
        // function of the column and the bucket); first insert wins.
        // A poisoned lock skips the insert: the grid is still correct,
        // the cache just stops absorbing new entries.
        let stamp = self.stamp.fetch_add(1, Ordering::Relaxed);
        match self.grids.write() {
            Ok(mut grids) => Ok(grids.entry(key).or_insert((stamp, grid)).1.clone()),
            Err(_) => Ok(grid),
        }
    }
}

/// Discretizes a column into its sorted integer grid.
///
/// When a `total_cmp`-sorted copy is available the mapping
/// `x ↦ round(x/b)` is monotone, so the integer sequence is already
/// sorted and the historical `O(n log n)` [`SortedInts::new`] sort is
/// skipped — the result is the identical sorted multiset either way.
/// On a mapping error the column is re-discretized in **data order**
/// so the reported error (first offending element) matches
/// [`Discretizer::discretize`] exactly.
fn build_grid(data: &[f64], sorted: Option<&[f64]>, bucket: f64) -> Result<SortedInts> {
    let disc = Discretizer::new(bucket)?;
    match sorted {
        Some(sorted) => {
            let ints: Result<Vec<i64>> = sorted.iter().map(|&x| disc.to_int(x)).collect();
            match ints {
                Ok(ints) if !ints.is_empty() => SortedInts::from_sorted(ints),
                // Empty or failed: delegate for the canonical error.
                _ => disc.discretize(data),
            }
        }
        None => disc.discretize(data),
    }
}

/// Merges two `total_cmp`-sorted runs in `O(n + k)`. Under `total_cmp`
/// elements that compare equal have identical bit patterns, so the
/// merged sequence is bit-identical to sorting the concatenation from
/// scratch — regardless of how ties are broken.
fn merge_sorted_f64(a: &[f64], b: &[f64]) -> Vec<f64> {
    crate::dataset::merge_sorted_by(a, b, |x, y| x.total_cmp(y).is_le())
}

/// One column of a [`DataView`]: the raw data plus an optional cache.
#[derive(Debug, Clone, Copy)]
pub struct ColumnView<'a> {
    data: &'a [f64],
    cache: Option<&'a ColumnCache>,
}

impl<'a> ColumnView<'a> {
    /// A cache-less view: every artifact is computed on demand.
    pub fn bare(data: &'a [f64]) -> Self {
        ColumnView { data, cache: None }
    }

    /// A view whose artifacts are cached in (and shared through)
    /// `cache`. The caller must pair each cache with exactly one
    /// column's contents for the cache's lifetime.
    pub fn cached(data: &'a [f64], cache: &'a ColumnCache) -> Self {
        ColumnView {
            data,
            cache: Some(cache),
        }
    }

    /// The raw column in its original order.
    pub fn data(&self) -> &'a [f64] {
        self.data
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the column is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The `total_cmp`-sorted copy (cached when a cache is attached).
    pub fn sorted(&self) -> Arc<Vec<f64>> {
        match self.cache {
            Some(cache) => cache.sorted(self.data),
            None => Arc::new(sorted_copy(self.data)),
        }
    }

    /// The cached pair-gap summary, built on first use — `None` for
    /// bare views and for caches that have not opted in via
    /// [`PreparedDataset::with_gap_summaries`]. Consumers fork on this:
    /// `None` keeps the historical per-call random pairing bit-for-bit.
    pub fn gap_summary(&self) -> Option<Arc<GapSummary>> {
        self.cache.and_then(|cache| cache.gap_summary(self.data))
    }

    /// Whether the attached cache holds a built gap summary (false for
    /// bare views; never triggers a build) — a cache-effect diagnostic.
    pub fn has_gap_summary(&self) -> bool {
        self.cache.is_some_and(ColumnCache::has_gap_summary)
    }

    /// The sorted integer grid `round(x/bucket)` (cached per distinct
    /// bucket when a cache is attached). Bit-identical to
    /// `Discretizer::new(bucket)?.discretize(data)` in values *and*
    /// error reporting.
    pub fn grid(&self, bucket: f64) -> Result<Arc<SortedInts>> {
        match self.cache {
            Some(cache) => cache.grid(self.data, bucket),
            None => Ok(Arc::new(build_grid(self.data, None, bucket)?)),
        }
    }

    /// Number of distinct buckets with a cached grid (0 for bare
    /// views) — a cache-effect diagnostic.
    pub fn cached_grids(&self) -> usize {
        self.cache.map_or(0, ColumnCache::cached_grids)
    }

    /// Whether the attached cache holds a built sorted copy (false for
    /// bare views) — a cache-effect diagnostic.
    pub fn has_sorted(&self) -> bool {
        self.cache.is_some_and(ColumnCache::has_sorted)
    }

    /// Whether a [`ColumnCache`] is attached (callers that benefit
    /// from intra-call artifact reuse attach a throwaway cache when
    /// this is false).
    pub fn has_cache(&self) -> bool {
        self.cache.is_some()
    }
}

/// A borrowed, possibly-cached view of a column-major dataset — the
/// uniform data argument of the `Estimator` trait.
#[derive(Debug, Clone)]
pub struct DataView<'a> {
    cols: Vec<ColumnView<'a>>,
}

impl<'a> DataView<'a> {
    /// A dimension-1 view over a bare slice (no caching).
    pub fn of(data: &'a [f64]) -> Self {
        DataView {
            cols: vec![ColumnView::bare(data)],
        }
    }

    /// A multi-column view over bare column-major data (no caching).
    pub fn of_columns(columns: &'a [Vec<f64>]) -> Self {
        DataView {
            cols: columns.iter().map(|c| ColumnView::bare(c)).collect(),
        }
    }

    /// A view from explicit column views (used by [`PreparedDataset`]).
    pub fn from_views(cols: Vec<ColumnView<'a>>) -> Self {
        DataView { cols }
    }

    /// Record dimension (number of columns).
    pub fn dim(&self) -> usize {
        self.cols.len()
    }

    /// Number of records (length of the first column).
    pub fn len(&self) -> usize {
        self.cols.first().map_or(0, |c| c.len())
    }

    /// Whether the view holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `i`-th column view.
    ///
    /// # Panics
    /// If `i` is out of range; estimator arity is validated by callers
    /// before estimation (see `Estimator::multi_column`).
    pub fn col(&self, i: usize) -> &ColumnView<'a> {
        &self.cols[i]
    }

    /// All column views.
    pub fn cols(&self) -> &[ColumnView<'a>] {
        &self.cols
    }
}

/// An immutable, shareable snapshot of a dataset: the columns plus
/// their artifact caches, stamped with a version.
///
/// The serving registry stores `Arc<PreparedDataset>`; queries clone
/// the `Arc` and estimate without holding any registry lock. Mutation
/// is copy-on-write: [`PreparedDataset::append`] builds a **new**
/// snapshot at `version + 1`, so a cached sorted copy or grid can
/// never describe stale data — warm parent artifacts are carried
/// forward by an `O(n + k)` merge (bit-identical to a fresh build),
/// cold ones stay lazy.
#[derive(Debug)]
pub struct PreparedDataset {
    columns: Vec<Vec<f64>>,
    caches: Vec<ColumnCache>,
    version: u64,
    gap_summaries: bool,
}

impl PreparedDataset {
    /// Wraps column-major data as version-0 snapshot.
    pub fn new(columns: Vec<Vec<f64>>) -> Self {
        let caches = columns.iter().map(|_| ColumnCache::new()).collect();
        PreparedDataset {
            columns,
            caches,
            version: 0,
            gap_summaries: false,
        }
    }

    /// Enables the cache-legal pair-gap summary (DESIGN.md §12) on
    /// every column of this snapshot and its appended successors.
    ///
    /// **This changes draw sequences**: quantile/IQR consumers served
    /// a summary skip the per-call pairing shuffle, so their released
    /// values differ from the historical path (equally valid draws of
    /// the same mechanisms, and still fully deterministic per
    /// `(snapshot, seed)`). The experiment suite therefore never calls
    /// this; the serving registry opts in at registration.
    #[must_use]
    pub fn with_gap_summaries(mut self) -> Self {
        for cache in &mut self.caches {
            cache.gaps_enabled = true;
        }
        self.gap_summaries = true;
        self
    }

    /// Whether the gap-summary path is enabled (diagnostic).
    pub fn gap_summaries_enabled(&self) -> bool {
        self.gap_summaries
    }

    /// Record dimension.
    pub fn dim(&self) -> usize {
        self.columns.len()
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.columns.first().map_or(0, Vec::len)
    }

    /// Whether the snapshot holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The snapshot version (0 at registration, +1 per append).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The raw column-major data.
    pub fn columns(&self) -> &[Vec<f64>] {
        &self.columns
    }

    /// A cached view over all columns.
    pub fn view(&self) -> DataView<'_> {
        DataView::from_views(
            self.columns
                .iter()
                .zip(&self.caches)
                .map(|(data, cache)| ColumnView::cached(data, cache))
                .collect(),
        )
    }

    /// A cached view of one column (panics if out of range).
    pub fn column_view(&self, i: usize) -> ColumnView<'_> {
        ColumnView::cached(&self.columns[i], &self.caches[i])
    }

    /// Derives the post-append snapshot: `extra` columns (same
    /// dimension, validated by the caller) concatenated onto copies of
    /// the current columns, with a bumped version.
    ///
    /// **Warm caches are carried forward incrementally** (DESIGN.md
    /// §8): a built sorted copy is extended by merging the sorted
    /// `k`-row delta in `O(n + k)` instead of re-sorting, and each
    /// built discretized grid absorbs the delta the same way. Both
    /// merge-maintained artifacts are bit-identical to what a fresh
    /// build over the concatenated column would produce (pinned by the
    /// append-equivalence suite), so this is purely a cost change.
    /// Artifacts the parent never built stay lazy, exactly as before.
    pub fn append(&self, extra: &[Vec<f64>]) -> PreparedDataset {
        debug_assert_eq!(extra.len(), self.columns.len());
        let columns: Vec<Vec<f64>> = self
            .columns
            .iter()
            .zip(extra)
            .map(|(old, new)| {
                let mut merged = Vec::with_capacity(old.len() + new.len());
                merged.extend_from_slice(old);
                merged.extend_from_slice(new);
                merged
            })
            .collect();
        let caches = self
            .caches
            .iter()
            .zip(extra)
            .map(|(cache, delta)| cache.successor(delta))
            .collect();
        PreparedDataset {
            columns,
            caches,
            version: self.version + 1,
            gap_summaries: self.gap_summaries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_is_cached_and_correct() {
        let cache = ColumnCache::new();
        let data = [3.0, -1.0, 2.0, -0.0, 0.0];
        let view = ColumnView::cached(&data, &cache);
        let a = view.sorted();
        let b = view.sorted();
        assert!(Arc::ptr_eq(&a, &b), "sorted copy must be built once");
        let mut reference = data.to_vec();
        reference.sort_by(f64::total_cmp);
        assert_eq!(a.as_slice(), reference.as_slice());
        // Bare views compute fresh copies with identical contents.
        let bare = ColumnView::bare(&data).sorted();
        assert_eq!(bare.as_slice(), reference.as_slice());
    }

    #[test]
    fn grid_matches_discretize_and_is_cached_per_bucket() {
        let cache = ColumnCache::new();
        let data: Vec<f64> = (0..500).map(|i| (i as f64) * 0.377 - 90.0).collect();
        let view = ColumnView::cached(&data, &cache);
        for bucket in [0.1, 0.25, 1.0] {
            let grid = view.grid(bucket).unwrap();
            let reference = Discretizer::new(bucket).unwrap().discretize(&data).unwrap();
            assert_eq!(*grid, reference, "bucket {bucket}");
            let again = view.grid(bucket).unwrap();
            assert!(Arc::ptr_eq(&grid, &again), "grid must be cached");
        }
        assert_eq!(cache.cached_grids(), 3);
        // Bare path agrees too.
        let bare = ColumnView::bare(&data).grid(0.1).unwrap();
        assert_eq!(
            *bare,
            Discretizer::new(0.1).unwrap().discretize(&data).unwrap()
        );
    }

    #[test]
    fn grid_error_matches_discretize_error() {
        // Overflowing bucket: the cached path must report the same
        // canonical (data-order) error as Discretizer::discretize.
        let data = [1e10, 2.0];
        let cache = ColumnCache::new();
        let view = ColumnView::cached(&data, &cache);
        let err = format!("{}", view.grid(1e-300).unwrap_err());
        let reference = format!(
            "{}",
            Discretizer::new(1e-300)
                .unwrap()
                .discretize(&data)
                .unwrap_err()
        );
        assert_eq!(err, reference);
        // Invalid bucket errors pass through as well.
        assert!(view.grid(0.0).is_err());
        assert!(ColumnView::bare(&data).grid(f64::NAN).is_err());
    }

    #[test]
    fn prepared_dataset_append_invalidates_caches() {
        let prepared = PreparedDataset::new(vec![vec![5.0, 1.0, 3.0]]);
        assert_eq!(prepared.version(), 0);
        let view = prepared.view();
        let sorted = view.col(0).sorted();
        assert_eq!(sorted.as_slice(), &[1.0, 3.0, 5.0]);
        let _ = view.col(0).grid(1.0).unwrap();

        let next = prepared.append(&[vec![9.0, 7.0]]);
        assert_eq!(next.version(), 1);
        assert_eq!(next.len(), 5);
        assert_eq!(next.columns()[0], vec![5.0, 1.0, 3.0, 9.0, 7.0]);
        // Fresh caches: the new sorted copy sees the appended rows.
        let new_sorted = next.view().col(0).sorted();
        assert_eq!(new_sorted.as_slice(), &[1.0, 3.0, 5.0, 7.0, 9.0]);
        // The old snapshot is untouched (readers mid-query are safe).
        assert_eq!(prepared.len(), 3);
        assert_eq!(prepared.view().col(0).sorted().as_slice(), &[1.0, 3.0, 5.0]);
    }

    #[test]
    fn warm_append_carries_caches_forward_bitwise() {
        let parent = PreparedDataset::new(vec![vec![5.0, 1.0, 3.0, -0.0, 0.0]]);
        // Warm both artifacts on the parent.
        let _ = parent.view().col(0).sorted();
        let _ = parent.view().col(0).grid(0.5).unwrap();
        let _ = parent.view().col(0).grid(2.0).unwrap();

        let next = parent.append(&[vec![2.5, -1.0, 0.0]]);
        // The successor starts warm: no lazy build has run yet, but
        // the sorted copy and both grids are already present…
        assert!(next.view().col(0).has_sorted());
        assert_eq!(next.view().col(0).cached_grids(), 2);
        // …and bit-identical to a fresh cold build over the same rows.
        let fresh = PreparedDataset::new(next.columns().to_vec());
        let merged_sorted = next.view().col(0).sorted();
        let fresh_sorted = fresh.view().col(0).sorted();
        assert_eq!(merged_sorted.len(), fresh_sorted.len());
        for (a, b) in merged_sorted.iter().zip(fresh_sorted.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for bucket in [0.5, 2.0] {
            assert_eq!(
                *next.view().col(0).grid(bucket).unwrap(),
                *fresh.view().col(0).grid(bucket).unwrap(),
                "bucket {bucket}"
            );
        }
    }

    #[test]
    fn append_carries_only_the_freshest_grids() {
        let parent = PreparedDataset::new(vec![(0..256).map(|i| i as f64 * 0.37).collect()]);
        let view = parent.view();
        let _ = view.col(0).sorted();
        // Build MAX_CARRIED_GRIDS + 3 grids; only the freshest
        // MAX_CARRIED_GRIDS survive the append.
        let buckets: Vec<f64> = (0..MAX_CARRIED_GRIDS + 3)
            .map(|i| 0.5 + i as f64 * 0.25)
            .collect();
        for &bucket in &buckets {
            let _ = view.col(0).grid(bucket).unwrap();
        }
        let next = parent.append(&[vec![1.0, 2.0]]);
        assert_eq!(next.view().col(0).cached_grids(), MAX_CARRIED_GRIDS);
        // The carried ones are the most recently built, still bitwise
        // equal to a fresh build — and a second append keeps carrying
        // them (relative recency survives the chain).
        let fresh = PreparedDataset::new(next.columns().to_vec());
        for &bucket in &buckets[buckets.len() - MAX_CARRIED_GRIDS..] {
            assert_eq!(
                *next.view().col(0).grid(bucket).unwrap(),
                *fresh.view().col(0).grid(bucket).unwrap(),
                "bucket {bucket}"
            );
        }
        let third = next.append(&[vec![3.0]]);
        assert_eq!(third.view().col(0).cached_grids(), MAX_CARRIED_GRIDS);
    }

    #[test]
    fn cold_append_stays_lazy() {
        let parent = PreparedDataset::new(vec![vec![2.0, 1.0]]);
        let next = parent.append(&[vec![3.0]]);
        assert!(!next.view().col(0).has_sorted());
        assert_eq!(next.view().col(0).cached_grids(), 0);
        assert_eq!(next.view().col(0).sorted().as_slice(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn unmappable_delta_drops_the_grid_and_keeps_the_canonical_error() {
        // Parent grid builds fine; the delta overflows the bucket's
        // integer range, so the carried grid must be dropped and the
        // lazy rebuild must report the same error as a cold build.
        let parent = PreparedDataset::new(vec![vec![1.0, 2.0]]);
        let _ = parent.view().col(0).sorted();
        let _ = parent.view().col(0).grid(1e-3).unwrap();
        let next = parent.append(&[vec![1e30]]);
        assert!(next.view().col(0).has_sorted(), "sorted copy still warm");
        assert_eq!(next.view().col(0).cached_grids(), 0, "bad grid dropped");
        let err = format!("{}", next.view().col(0).grid(1e-3).unwrap_err());
        let reference = format!(
            "{}",
            Discretizer::new(1e-3)
                .unwrap()
                .discretize(next.columns()[0].as_slice())
                .unwrap_err()
        );
        assert_eq!(err, reference);
        // A NaN delta likewise drops grids (NaN cannot discretize) but
        // keeps the sorted copy warm — total_cmp orders NaN fine.
        let nan = parent.append(&[vec![f64::NAN]]);
        assert!(nan.view().col(0).has_sorted());
        assert_eq!(nan.view().col(0).cached_grids(), 0);
        assert!(nan.view().col(0).sorted().last().unwrap().is_nan());
    }

    #[test]
    fn merge_sorted_f64_is_bit_identical_to_full_sort() {
        // Ties under total_cmp are bit-identical, so any merge order
        // equals the full sort — including NaNs and signed zeros.
        let a = vec![-1.0, -0.0, 0.0, 2.0, f64::NAN];
        let b = vec![f64::NEG_INFINITY, -0.0, 0.0, 2.0, 3.0];
        let mut sa = a.clone();
        sa.sort_by(f64::total_cmp);
        let mut sb = b.clone();
        sb.sort_by(f64::total_cmp);
        let merged = merge_sorted_f64(&sa, &sb);
        let mut full: Vec<f64> = a.iter().chain(&b).copied().collect();
        full.sort_by(f64::total_cmp);
        assert_eq!(merged.len(), full.len());
        for (x, y) in merged.iter().zip(&full) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn empty_delta_append_keeps_artifacts() {
        let parent = PreparedDataset::new(vec![vec![3.0, 1.0]]);
        let _ = parent.view().col(0).sorted();
        let _ = parent.view().col(0).grid(1.0).unwrap();
        let next = parent.append(&[vec![]]);
        assert_eq!(next.version(), 1);
        assert_eq!(next.len(), 2);
        assert!(next.view().col(0).has_sorted());
        assert_eq!(next.view().col(0).sorted().as_slice(), &[1.0, 3.0]);
        assert_eq!(
            *next.view().col(0).grid(1.0).unwrap(),
            *parent.view().col(0).grid(1.0).unwrap()
        );
    }

    #[test]
    fn data_view_shapes() {
        let columns = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        let view = DataView::of_columns(&columns);
        assert_eq!(view.dim(), 2);
        assert_eq!(view.len(), 2);
        assert!(!view.is_empty());
        assert_eq!(view.col(1).data(), &[3.0, 4.0]);

        let single = [7.0];
        let view = DataView::of(&single);
        assert_eq!(view.dim(), 1);
        assert_eq!(view.len(), 1);
    }
}
