//! Cached dataset views — the data layer behind the `Estimator` trait.
//!
//! The statistical estimators repeatedly derive the same artifacts from
//! one dataset: a `total_cmp`-sorted copy of a column, and the sorted
//! integer grid `round(x/b)` of the inverse-sensitivity path for a
//! given bucket `b`. Serving workloads re-query the *same* registered
//! dataset over and over, so recomputing those artifacts per query is a
//! pure `O(n log n)` waste. This module provides:
//!
//! * [`ColumnCache`] — thread-safe, lazily-built artifacts of one
//!   column (sorted copy once; one discretized [`SortedInts`] per
//!   distinct bucket size);
//! * [`DataView`] — a borrowed, possibly-cached view of a column-major
//!   dataset, the data argument of
//!   `updp_statistical::estimator::Estimator::estimate`;
//! * [`PreparedDataset`] — an immutable snapshot owning columns *and*
//!   caches, shared as `Arc<PreparedDataset>` by the serving registry;
//!   `append` derives a **new** snapshot (fresh caches, bumped
//!   version), so cached artifacts can never leak across data
//!   versions.
//!
//! # Determinism contract (DESIGN.md §7)
//!
//! Cached artifacts are pure functions of the column contents — they
//! consume **no randomness** — so feeding an estimator a cached
//! artifact instead of a freshly computed one never changes the
//! estimator's RNG draw sequence, and released values stay
//! bit-identical to the uncached path. Artifacts that *do* depend on
//! mechanism coins (the random pair-gap structure of Algorithm 7) are
//! deliberately **not** cacheable here: reusing a pairing across
//! queries would change every subsequent draw.

use crate::dataset::SortedInts;
use crate::discretize::Discretizer;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock, RwLock};
use updp_core::error::Result;

/// Lazily-built, thread-safe artifacts of one `f64` column.
///
/// Both artifacts are built at most once per cache (the grid: once per
/// distinct bucket size) and shared as `Arc`s, so concurrent readers
/// never block each other after the first build.
#[derive(Debug, Default)]
pub struct ColumnCache {
    sorted: OnceLock<Arc<Vec<f64>>>,
    grids: RwLock<HashMap<u64, Arc<SortedInts>>>,
}

impl ColumnCache {
    /// An empty cache.
    pub fn new() -> Self {
        ColumnCache::default()
    }

    /// Number of distinct bucket sizes with a cached grid (diagnostic).
    pub fn cached_grids(&self) -> usize {
        self.grids.read().unwrap().len()
    }

    fn sorted(&self, data: &[f64]) -> Arc<Vec<f64>> {
        self.sorted
            .get_or_init(|| {
                let mut v = data.to_vec();
                v.sort_by(f64::total_cmp);
                Arc::new(v)
            })
            .clone()
    }

    fn grid(&self, data: &[f64], bucket: f64) -> Result<Arc<SortedInts>> {
        let key = bucket.to_bits();
        if let Some(hit) = self.grids.read().unwrap().get(&key) {
            return Ok(hit.clone());
        }
        let grid = Arc::new(build_grid(
            data,
            Some(self.sorted(data).as_slice()),
            bucket,
        )?);
        // Racing builders compute identical grids (the build is a pure
        // function of the column and the bucket); first insert wins.
        Ok(self
            .grids
            .write()
            .unwrap()
            .entry(key)
            .or_insert(grid)
            .clone())
    }
}

/// Discretizes a column into its sorted integer grid.
///
/// When a `total_cmp`-sorted copy is available the mapping
/// `x ↦ round(x/b)` is monotone, so the integer sequence is already
/// sorted and the historical `O(n log n)` [`SortedInts::new`] sort is
/// skipped — the result is the identical sorted multiset either way.
/// On a mapping error the column is re-discretized in **data order**
/// so the reported error (first offending element) matches
/// [`Discretizer::discretize`] exactly.
fn build_grid(data: &[f64], sorted: Option<&[f64]>, bucket: f64) -> Result<SortedInts> {
    let disc = Discretizer::new(bucket)?;
    match sorted {
        Some(sorted) => {
            let ints: Result<Vec<i64>> = sorted.iter().map(|&x| disc.to_int(x)).collect();
            match ints {
                Ok(ints) if !ints.is_empty() => SortedInts::from_sorted(ints),
                // Empty or failed: delegate for the canonical error.
                _ => disc.discretize(data),
            }
        }
        None => disc.discretize(data),
    }
}

/// One column of a [`DataView`]: the raw data plus an optional cache.
#[derive(Debug, Clone, Copy)]
pub struct ColumnView<'a> {
    data: &'a [f64],
    cache: Option<&'a ColumnCache>,
}

impl<'a> ColumnView<'a> {
    /// A cache-less view: every artifact is computed on demand.
    pub fn bare(data: &'a [f64]) -> Self {
        ColumnView { data, cache: None }
    }

    /// A view whose artifacts are cached in (and shared through)
    /// `cache`. The caller must pair each cache with exactly one
    /// column's contents for the cache's lifetime.
    pub fn cached(data: &'a [f64], cache: &'a ColumnCache) -> Self {
        ColumnView {
            data,
            cache: Some(cache),
        }
    }

    /// The raw column in its original order.
    pub fn data(&self) -> &'a [f64] {
        self.data
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the column is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The `total_cmp`-sorted copy (cached when a cache is attached).
    pub fn sorted(&self) -> Arc<Vec<f64>> {
        match self.cache {
            Some(cache) => cache.sorted(self.data),
            None => {
                let mut v = self.data.to_vec();
                v.sort_by(f64::total_cmp);
                Arc::new(v)
            }
        }
    }

    /// The sorted integer grid `round(x/bucket)` (cached per distinct
    /// bucket when a cache is attached). Bit-identical to
    /// `Discretizer::new(bucket)?.discretize(data)` in values *and*
    /// error reporting.
    pub fn grid(&self, bucket: f64) -> Result<Arc<SortedInts>> {
        match self.cache {
            Some(cache) => cache.grid(self.data, bucket),
            None => Ok(Arc::new(build_grid(self.data, None, bucket)?)),
        }
    }

    /// Number of distinct buckets with a cached grid (0 for bare
    /// views) — a cache-effect diagnostic.
    pub fn cached_grids(&self) -> usize {
        self.cache.map_or(0, ColumnCache::cached_grids)
    }

    /// Whether a [`ColumnCache`] is attached (callers that benefit
    /// from intra-call artifact reuse attach a throwaway cache when
    /// this is false).
    pub fn has_cache(&self) -> bool {
        self.cache.is_some()
    }
}

/// A borrowed, possibly-cached view of a column-major dataset — the
/// uniform data argument of the `Estimator` trait.
#[derive(Debug, Clone)]
pub struct DataView<'a> {
    cols: Vec<ColumnView<'a>>,
}

impl<'a> DataView<'a> {
    /// A dimension-1 view over a bare slice (no caching).
    pub fn of(data: &'a [f64]) -> Self {
        DataView {
            cols: vec![ColumnView::bare(data)],
        }
    }

    /// A multi-column view over bare column-major data (no caching).
    pub fn of_columns(columns: &'a [Vec<f64>]) -> Self {
        DataView {
            cols: columns.iter().map(|c| ColumnView::bare(c)).collect(),
        }
    }

    /// A view from explicit column views (used by [`PreparedDataset`]).
    pub fn from_views(cols: Vec<ColumnView<'a>>) -> Self {
        DataView { cols }
    }

    /// Record dimension (number of columns).
    pub fn dim(&self) -> usize {
        self.cols.len()
    }

    /// Number of records (length of the first column).
    pub fn len(&self) -> usize {
        self.cols.first().map_or(0, |c| c.len())
    }

    /// Whether the view holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `i`-th column view.
    ///
    /// # Panics
    /// If `i` is out of range; estimator arity is validated by callers
    /// before estimation (see `Estimator::multi_column`).
    pub fn col(&self, i: usize) -> &ColumnView<'a> {
        &self.cols[i]
    }

    /// All column views.
    pub fn cols(&self) -> &[ColumnView<'a>] {
        &self.cols
    }
}

/// An immutable, shareable snapshot of a dataset: the columns plus
/// their artifact caches, stamped with a version.
///
/// The serving registry stores `Arc<PreparedDataset>`; queries clone
/// the `Arc` and estimate without holding any registry lock. Mutation
/// is copy-on-write: [`PreparedDataset::append`] builds a **new**
/// snapshot with fresh (empty) caches and `version + 1`, so a cached
/// sorted copy or grid can never describe stale data.
#[derive(Debug)]
pub struct PreparedDataset {
    columns: Vec<Vec<f64>>,
    caches: Vec<ColumnCache>,
    version: u64,
}

impl PreparedDataset {
    /// Wraps column-major data as version-0 snapshot.
    pub fn new(columns: Vec<Vec<f64>>) -> Self {
        let caches = columns.iter().map(|_| ColumnCache::new()).collect();
        PreparedDataset {
            columns,
            caches,
            version: 0,
        }
    }

    /// Record dimension.
    pub fn dim(&self) -> usize {
        self.columns.len()
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.columns.first().map_or(0, Vec::len)
    }

    /// Whether the snapshot holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The snapshot version (0 at registration, +1 per append).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The raw column-major data.
    pub fn columns(&self) -> &[Vec<f64>] {
        &self.columns
    }

    /// A cached view over all columns.
    pub fn view(&self) -> DataView<'_> {
        DataView::from_views(
            self.columns
                .iter()
                .zip(&self.caches)
                .map(|(data, cache)| ColumnView::cached(data, cache))
                .collect(),
        )
    }

    /// A cached view of one column (panics if out of range).
    pub fn column_view(&self, i: usize) -> ColumnView<'_> {
        ColumnView::cached(&self.columns[i], &self.caches[i])
    }

    /// Derives the post-append snapshot: `extra` columns (same
    /// dimension, validated by the caller) concatenated onto copies of
    /// the current columns, with fresh caches and a bumped version.
    pub fn append(&self, extra: &[Vec<f64>]) -> PreparedDataset {
        debug_assert_eq!(extra.len(), self.columns.len());
        let columns: Vec<Vec<f64>> = self
            .columns
            .iter()
            .zip(extra)
            .map(|(old, new)| {
                let mut merged = Vec::with_capacity(old.len() + new.len());
                merged.extend_from_slice(old);
                merged.extend_from_slice(new);
                merged
            })
            .collect();
        let caches = columns.iter().map(|_| ColumnCache::new()).collect();
        PreparedDataset {
            columns,
            caches,
            version: self.version + 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_is_cached_and_correct() {
        let cache = ColumnCache::new();
        let data = [3.0, -1.0, 2.0, -0.0, 0.0];
        let view = ColumnView::cached(&data, &cache);
        let a = view.sorted();
        let b = view.sorted();
        assert!(Arc::ptr_eq(&a, &b), "sorted copy must be built once");
        let mut reference = data.to_vec();
        reference.sort_by(f64::total_cmp);
        assert_eq!(a.as_slice(), reference.as_slice());
        // Bare views compute fresh copies with identical contents.
        let bare = ColumnView::bare(&data).sorted();
        assert_eq!(bare.as_slice(), reference.as_slice());
    }

    #[test]
    fn grid_matches_discretize_and_is_cached_per_bucket() {
        let cache = ColumnCache::new();
        let data: Vec<f64> = (0..500).map(|i| (i as f64) * 0.377 - 90.0).collect();
        let view = ColumnView::cached(&data, &cache);
        for bucket in [0.1, 0.25, 1.0] {
            let grid = view.grid(bucket).unwrap();
            let reference = Discretizer::new(bucket).unwrap().discretize(&data).unwrap();
            assert_eq!(*grid, reference, "bucket {bucket}");
            let again = view.grid(bucket).unwrap();
            assert!(Arc::ptr_eq(&grid, &again), "grid must be cached");
        }
        assert_eq!(cache.cached_grids(), 3);
        // Bare path agrees too.
        let bare = ColumnView::bare(&data).grid(0.1).unwrap();
        assert_eq!(
            *bare,
            Discretizer::new(0.1).unwrap().discretize(&data).unwrap()
        );
    }

    #[test]
    fn grid_error_matches_discretize_error() {
        // Overflowing bucket: the cached path must report the same
        // canonical (data-order) error as Discretizer::discretize.
        let data = [1e10, 2.0];
        let cache = ColumnCache::new();
        let view = ColumnView::cached(&data, &cache);
        let err = format!("{}", view.grid(1e-300).unwrap_err());
        let reference = format!(
            "{}",
            Discretizer::new(1e-300)
                .unwrap()
                .discretize(&data)
                .unwrap_err()
        );
        assert_eq!(err, reference);
        // Invalid bucket errors pass through as well.
        assert!(view.grid(0.0).is_err());
        assert!(ColumnView::bare(&data).grid(f64::NAN).is_err());
    }

    #[test]
    fn prepared_dataset_append_invalidates_caches() {
        let prepared = PreparedDataset::new(vec![vec![5.0, 1.0, 3.0]]);
        assert_eq!(prepared.version(), 0);
        let view = prepared.view();
        let sorted = view.col(0).sorted();
        assert_eq!(sorted.as_slice(), &[1.0, 3.0, 5.0]);
        let _ = view.col(0).grid(1.0).unwrap();

        let next = prepared.append(&[vec![9.0, 7.0]]);
        assert_eq!(next.version(), 1);
        assert_eq!(next.len(), 5);
        assert_eq!(next.columns()[0], vec![5.0, 1.0, 3.0, 9.0, 7.0]);
        // Fresh caches: the new sorted copy sees the appended rows.
        let new_sorted = next.view().col(0).sorted();
        assert_eq!(new_sorted.as_slice(), &[1.0, 3.0, 5.0, 7.0, 9.0]);
        // The old snapshot is untouched (readers mid-query are safe).
        assert_eq!(prepared.len(), 3);
        assert_eq!(prepared.view().col(0).sorted().as_slice(), &[1.0, 3.0, 5.0]);
    }

    #[test]
    fn data_view_shapes() {
        let columns = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        let view = DataView::of_columns(&columns);
        assert_eq!(view.dim(), 2);
        assert_eq!(view.len(), 2);
        assert!(!view.is_empty());
        assert_eq!(view.col(1).data(), &[3.0, 4.0]);

        let single = [7.0];
        let view = DataView::of(&single);
        assert_eq!(view.dim(), 1);
        assert_eq!(view.len(), 1);
    }
}
