//! # updp-empirical — instance-optimal empirical estimators (Section 3)
//!
//! The paper's technical core: ε-DP estimators for the *empirical* mean
//! and quantiles of a dataset `D` drawn from the **unbounded** integer
//! domain `Z`, with instance-specific error depending on the data's own
//! width `γ(D)` rather than any a-priori domain bound `N`:
//!
//! | Algorithm | Module | Guarantee |
//! |---|---|---|
//! | 3 `InfiniteDomainRadius` | [`radius`] | Thm 3.1: `r̃ad ≤ 2·rad`, `O(ε⁻¹ log log rad)` uncovered |
//! | 4 `InfiniteDomainRange` | [`range`] | Thm 3.2: `|R̃| ≤ 4γ(D)`, `O(ε⁻¹ log log γ)` clipped |
//! | 5 `InfiniteDomainMean` | [`mean`] | Thm 3.3: error `O((γ/(εn))·log log γ)` — optimality ratio `O(ε⁻¹ log log γ)` |
//! | 6 `InfiniteDomainQuantile` | [`quantile`] | Thm 3.5: rank error `O(ε⁻¹ log γ)` |
//! | §3.5 real-domain wrappers | [`discretize`] | Thms 3.6–3.9 |
//! | cached dataset views | [`view`] | `DataView`/`PreparedDataset` artifact caching (DESIGN.md §7) |
//! | §1.1.1 private sum | [`sum`] | error `O((rad/ε)·log log rad)`, no domain bound `N` |
//! | Thm 3.4 packing family | [`packing`] | `Ω(ε⁻¹ log log N)` ratio is necessary |
//!
//! All run in `O(n log n)` time.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dataset;
pub mod discretize;
pub mod gaps;
pub mod mean;
pub mod packing;
pub mod quantile;
pub mod radius;
pub mod range;
pub mod sum;
pub mod view;

pub use dataset::SortedInts;
pub use discretize::{
    real_mean, real_quantile, real_quantile_view, real_radius, real_range, Discretizer, RealRange,
};
pub use gaps::GapSummary;
pub use mean::{infinite_domain_mean, EmpiricalMeanResult};
pub use packing::PackingFamily;
pub use quantile::{infinite_domain_quantile, rank_error, QuantileResult};
pub use radius::infinite_domain_radius;
pub use range::{infinite_domain_range, IntRange};
pub use sum::{infinite_domain_sum, SumResult};
pub use view::{
    sorted_copy, sorted_copy_threads, ColumnCache, ColumnView, DataView, PreparedDataset,
};
