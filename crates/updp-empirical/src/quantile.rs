//! `InfiniteDomainQuantile` — Algorithm 6 (Theorem 3.5).
//!
//! Quantile release over the unbounded integer domain: find `R̃(D)` with
//! Algorithm 4 (4ε/5, β/2), clip, then run `FiniteDomainQuantile`
//! (ε/5, β/2) over `R̃(D)`. Theorem 3.5: rank error
//! `t = O((1/ε)·log(γ(D)/β))` — instance-specific (depends on the data's
//! own width, not a domain bound `N`) and worst-case optimal via the
//! interior-point reduction of [BKN10, BNSV15].

use crate::dataset::SortedInts;
use crate::range::{infinite_domain_range, IntRange};
use rand::Rng;
use updp_core::error::Result;
use updp_core::inverse_sensitivity::finite_domain_quantile;
use updp_core::privacy::Epsilon;

/// Diagnostic output of the empirical quantile estimator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuantileResult {
    /// The privatized τ-th order statistic `X̃_τ`.
    pub estimate: i64,
    /// The privatized range used for domain reduction.
    pub range: IntRange,
}

/// ε-DP estimate of the τ-th order statistic (1-based) of `D ∈ Zⁿ`
/// (Algorithm 6).
pub fn infinite_domain_quantile<R: Rng + ?Sized>(
    rng: &mut R,
    data: &SortedInts,
    tau: usize,
    epsilon: Epsilon,
    beta: f64,
) -> Result<QuantileResult> {
    let range = infinite_domain_range(rng, data, epsilon.scale(4.0 / 5.0), beta / 2.0)?;
    let clipped = data.clip(range.lo, range.hi);
    let estimate = finite_domain_quantile(
        rng,
        clipped.values(),
        tau,
        range.lo,
        range.hi,
        epsilon.scale(1.0 / 5.0),
        beta / 2.0,
    )?;
    Ok(QuantileResult { estimate, range })
}

/// The rank-error bound of Theorem 3.5 (up to its universal constant):
/// `(1/ε)·log(γ(D)/β)`.
pub fn quantile_rank_error_bound(epsilon: Epsilon, gamma: u64, beta: f64) -> f64 {
    (1.0 / epsilon.get()) * ((gamma.max(1) as f64) / beta).ln().max(1.0)
}

/// The true rank error of an estimate: the number of data elements
/// strictly between `X_τ` and the estimate (the `t` of Theorem 3.5,
/// measured exactly). Used by tests and experiments.
pub fn rank_error(data: &SortedInts, tau: usize, estimate: i64) -> usize {
    let xt = data.order_statistic(tau as i64);
    if estimate >= xt {
        data.count_in(xt, estimate)
            .saturating_sub(data.count_in(xt, xt))
    } else {
        data.count_in(estimate, xt)
            .saturating_sub(data.count_in(xt, xt))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use updp_core::rng::seeded;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn rank_error_is_zero_at_truth() {
        let d = SortedInts::new((0..100).collect()).unwrap();
        assert_eq!(rank_error(&d, 50, d.order_statistic(50)), 0);
    }

    #[test]
    fn rank_error_counts_between() {
        let d = SortedInts::new(vec![0, 10, 20, 30, 40]).unwrap();
        // τ = 3 → X_τ = 20. Estimate 35: elements in (20, 35] = {30} → 1.
        assert_eq!(rank_error(&d, 3, 35), 1);
        // Estimate 5: elements in [5, 20) = {10} → 1.
        assert_eq!(rank_error(&d, 3, 5), 1);
        // Estimate 40: {30, 40} → 2.
        assert_eq!(rank_error(&d, 3, 40), 2);
    }

    #[test]
    fn median_rank_error_within_bound() {
        let d = SortedInts::new((0..3000).map(|i| i * 7 - 10_000).collect()).unwrap();
        let e = eps(1.0);
        let beta = 0.1;
        let bound = quantile_rank_error_bound(e, d.width(), beta);
        let mut failures = 0;
        for seed in 0..100 {
            let mut rng = seeded(seed);
            let r = infinite_domain_quantile(&mut rng, &d, 1500, e, beta).unwrap();
            // Universal-constant slack of 20.
            if rank_error(&d, 1500, r.estimate) as f64 > 20.0 * bound {
                failures += 1;
            }
        }
        assert!(failures <= 10, "rank bound failed {failures}/100");
    }

    #[test]
    fn extreme_quantiles_are_sane() {
        let d = SortedInts::new((0..2000).collect()).unwrap();
        let mut rng = seeded(3);
        let lo = infinite_domain_quantile(&mut rng, &d, 1, eps(1.0), 0.1).unwrap();
        let hi = infinite_domain_quantile(&mut rng, &d, 2000, eps(1.0), 0.1).unwrap();
        // Clamping keeps the answers within/near the data span.
        assert!(lo.estimate >= -2000 && lo.estimate <= 4000, "{lo:?}");
        assert!(hi.estimate >= -2000 && hi.estimate <= 4000, "{hi:?}");
        assert!(lo.estimate < hi.estimate, "quantiles out of order");
    }

    #[test]
    fn quantiles_track_far_clusters() {
        let d = SortedInts::new((0..3000).map(|i| 5_000_000 + (i % 999)).collect()).unwrap();
        let mut rng = seeded(4);
        let r = infinite_domain_quantile(&mut rng, &d, 1500, eps(1.0), 0.1).unwrap();
        assert!(
            (r.estimate - 5_000_500).abs() < 5_000,
            "median estimate {} far from cluster",
            r.estimate
        );
    }

    #[test]
    fn monotone_in_tau_on_average() {
        let d = SortedInts::new((0..4000).map(|i| i % 2001).collect()).unwrap();
        let mut rng = seeded(5);
        let q25: f64 = (0..20)
            .map(|_| {
                infinite_domain_quantile(&mut rng, &d, 1000, eps(1.0), 0.1)
                    .unwrap()
                    .estimate as f64
            })
            .sum::<f64>()
            / 20.0;
        let q75: f64 = (0..20)
            .map(|_| {
                infinite_domain_quantile(&mut rng, &d, 3000, eps(1.0), 0.1)
                    .unwrap()
                    .estimate as f64
            })
            .sum::<f64>()
            / 20.0;
        assert!(q25 < q75, "q25 {q25} !< q75 {q75}");
    }
}
