//! Private sum estimation over the unbounded integer domain.
//!
//! Section 1.1.1 notes that sum estimation is equivalent to answering
//! self-join-free aggregation queries in a relational database under
//! user-level DP [DFY+22], where the state of the art achieved error
//! `O((rad(D)/ε)·log N·log log N)` *and required a domain bound `N`*.
//! Composing the paper's machinery gives a domain-assumption-free sum
//! with error `O((rad(D)/ε)·log log rad(D))` — the "significant
//! improvement" the paper points out.
//!
//! Construction: sum = n·mean is tempting but wasteful — the clipped
//! *sum* has sensitivity `max(|lo|, |hi|)` directly, so we privatize the
//! range once (Algorithm 4) and release
//! `Σ Clip(Xᵢ, R̃) + Lap(max(|R̃.lo|, |R̃.hi|)·5/ε)`.

use crate::dataset::SortedInts;
use crate::range::{infinite_domain_range, IntRange};
use rand::Rng;
use updp_core::clipped_mean::clipped_sum_i64;
use updp_core::error::Result;
use updp_core::laplace::sample_laplace;
use updp_core::privacy::Epsilon;

/// Diagnostic output of the private sum estimator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SumResult {
    /// The ε-DP sum estimate.
    pub estimate: f64,
    /// The privatized clipping range.
    pub range: IntRange,
    /// Elements clipped (diagnostic).
    pub clipped: usize,
}

/// ε-DP estimate of the sum `Σᵢ Xᵢ` of `D ∈ Zⁿ`, with no domain bound.
///
/// Error is `O((rad(D)/ε)·log(log(rad(D))/β))` with probability ≥ 1 − β:
/// the clipping bias is `(#clipped)·O(rad)` with `#clipped =
/// O(ε⁻¹ log log rad)` by Theorem 3.2 applied around the data's own
/// location, and the Laplace scale is `O(rad/ε)`.
pub fn infinite_domain_sum<R: Rng + ?Sized>(
    rng: &mut R,
    data: &SortedInts,
    epsilon: Epsilon,
    beta: f64,
) -> Result<SumResult> {
    let range = infinite_domain_range(rng, data, epsilon.scale(4.0 / 5.0), beta / 2.0)?;
    // Chunked clip+sum kernel (bit-identical to the historical
    // per-element i128 loop — integer addition is exact).
    let clipped_sum = clipped_sum_i64(data.values(), range.lo, range.hi);
    // Sensitivity of the clipped sum: replacing one record moves it by at
    // most max(|lo|, |hi|) + ... — precisely (hi − lo) if both ends share
    // a sign, max(|lo|, |hi|) + min... a clean upper bound is
    // max(|lo|, |hi|) · 2 when signs differ; use the exact width-free
    // bound: one record contributes a value in [lo, hi], so swapping it
    // changes the sum by at most (hi − lo).
    let sensitivity = range.width() as f64;
    let estimate = if sensitivity > 0.0 {
        clipped_sum as f64 + sample_laplace(rng, 5.0 * sensitivity / epsilon.get())
    } else {
        clipped_sum as f64
    };
    let clipped = data.len() - data.count_in(range.lo, range.hi);
    Ok(SumResult {
        estimate,
        range,
        clipped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use updp_core::rng::seeded;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    fn exact_sum(d: &SortedInts) -> f64 {
        d.values().iter().map(|&v| v as i128).sum::<i128>() as f64
    }

    #[test]
    fn accurate_on_concentrated_data() {
        let d = SortedInts::new((0..5000).map(|i| 100 + (i % 7)).collect()).unwrap();
        let truth = exact_sum(&d);
        let mut errs = Vec::new();
        for seed in 0..50 {
            let mut rng = seeded(seed);
            let r = infinite_domain_sum(&mut rng, &d, eps(1.0), 0.1).unwrap();
            errs.push((r.estimate - truth).abs());
        }
        errs.sort_by(f64::total_cmp);
        // rad ≈ 106, so error should be O(rad/ε·loglog) ≈ hundreds.
        assert!(errs[25] < 2_000.0, "median sum error {}", errs[25]);
        // Relative to the sum (~515k) that is ≪ 1%.
        assert!(errs[25] / truth < 0.01);
    }

    #[test]
    fn robust_to_one_outlier() {
        let mut values = vec![10i64; 3000];
        values.push(1 << 40);
        let d = SortedInts::new(values).unwrap();
        let mut rng = seeded(1);
        let r = infinite_domain_sum(&mut rng, &d, eps(1.0), 0.1).unwrap();
        // The bulk sums to 30_000; the outlier must be clipped away
        // rather than poisoning the release with 2^40-scale noise.
        assert!(
            (r.estimate - 30_000.0).abs() < 30_000.0,
            "estimate {}",
            r.estimate
        );
        assert!(r.clipped >= 1);
    }

    #[test]
    fn negative_sums_work() {
        let d = SortedInts::new(vec![-1000; 2000]).unwrap();
        let mut rng = seeded(2);
        let r = infinite_domain_sum(&mut rng, &d, eps(1.0), 0.1).unwrap();
        assert!(
            (r.estimate + 2_000_000.0).abs() < 50_000.0,
            "estimate {}",
            r.estimate
        );
    }

    #[test]
    fn error_scales_with_radius_not_domain() {
        // Same shape at two radically different scales: relative error
        // stays comparable because there is no N anywhere.
        let med_err = |scale: i64, master: u64| -> f64 {
            let d = SortedInts::new((0..4000).map(|i| scale + (i % 11)).collect()).unwrap();
            let truth = exact_sum(&d);
            let mut errs: Vec<f64> = (0..30)
                .map(|s| {
                    let mut rng = seeded(master + s);
                    let r = infinite_domain_sum(&mut rng, &d, eps(1.0), 0.1).unwrap();
                    (r.estimate - truth).abs() / truth.abs()
                })
                .collect();
            errs.sort_by(f64::total_cmp);
            errs[15]
        };
        let small = med_err(1_000, 100);
        let large = med_err(1_000_000_000, 200);
        assert!(small < 0.05, "small-scale rel err {small}");
        assert!(large < 0.05, "large-scale rel err {large}");
    }

    #[test]
    fn deterministic_given_seed() {
        let d = SortedInts::new((0..100).collect()).unwrap();
        let mut a = seeded(9);
        let mut b = seeded(9);
        assert_eq!(
            infinite_domain_sum(&mut a, &d, eps(1.0), 0.1).unwrap(),
            infinite_domain_sum(&mut b, &d, eps(1.0), 0.1).unwrap()
        );
    }
}
