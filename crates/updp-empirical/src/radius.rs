//! `InfiniteDomainRadius` — Algorithm 3 (Theorem 3.1).
//!
//! Privately estimates `rad(D) = maxᵢ|Xᵢ|` over the *unbounded* integer
//! domain by feeding the doubling counting queries
//! `Count(D, 0), Count(D, 2⁰), Count(D, 2¹), …` to SVT with the lowered
//! threshold `T = n − (6/ε)·log(2/β)`.
//!
//! The lowered threshold is the paper's key trick (via Lemma 2.6): it
//! forces SVT to stop *as soon as* a query is close to `n`, avoiding the
//! "late stop" problem where the exponential growth of the query radius
//! would otherwise overshoot `rad(D)` by an unbounded factor. Theorem 3.1:
//! with probability ≥ 1 − β,
//!
//! * `r̃ad(D) ≤ 2·rad(D)`, and
//! * `|D ∖ [−r̃ad(D), r̃ad(D)]| = O((1/ε)·log(log(rad(D))/β))`.

use crate::dataset::SortedInts;
use rand::Rng;
use updp_core::privacy::Epsilon;
use updp_core::svt::{sparse_vector, DEFAULT_SVT_CAP};

/// The SVT query radius for 0-based query index `i`:
/// `x₀ = 0`, `xᵢ = 2^{i−1}` for `i ≥ 1` (saturating in `u64`).
#[inline]
fn query_radius(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i > 64 {
        u64::MAX
    } else {
        1u64 << (i - 1)
    }
}

/// ε-DP estimate of `rad(D)` (Algorithm 3).
///
/// Returns a radius `r̃ad(D)` satisfying Theorem 3.1 with probability
/// ≥ 1 − β.
pub fn infinite_domain_radius<R: Rng + ?Sized>(
    rng: &mut R,
    data: &SortedInts,
    epsilon: Epsilon,
    beta: f64,
) -> u64 {
    assert!(beta > 0.0 && beta < 1.0, "beta must be in (0,1)");
    let n = data.len() as f64;
    let threshold = n - 6.0 / epsilon.get() * (2.0 / beta).ln();
    let outcome = sparse_vector(
        rng,
        threshold,
        epsilon,
        |i| data.count_within_radius(query_radius(i)) as f64,
        DEFAULT_SVT_CAP,
    );
    // ĩ = 1 ⇒ radius 0; otherwise r̃ad = 2^{ĩ−2} = the radius of the
    // query *before* the one that fired... per Algorithm 3 the returned
    // radius is the one of the firing query: ĩ-th query has radius
    // 2^{ĩ−2} for ĩ ≥ 2.
    if outcome.index <= 1 {
        0
    } else {
        query_radius(outcome.index - 1)
    }
}

/// The count bound of Theorem 3.1 (up to its universal constant):
/// `(6/ε)·(log(2/β) + log(2(log₂ rad + 2)/β))` elements may fall outside
/// the returned radius. Exposed for experiment reporting.
pub fn radius_outside_bound(epsilon: Epsilon, rad: u64, beta: f64) -> f64 {
    let log2rad = if rad <= 1 { 1.0 } else { (rad as f64).log2() };
    6.0 / epsilon.get() * ((2.0 / beta).ln() + (2.0 * (log2rad + 2.0) / beta).ln())
}

#[cfg(test)]
mod tests {
    use super::*;
    use updp_core::rng::seeded;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    fn dataset(values: Vec<i64>) -> SortedInts {
        SortedInts::new(values).unwrap()
    }

    #[test]
    fn query_radii_double() {
        assert_eq!(query_radius(0), 0);
        assert_eq!(query_radius(1), 1);
        assert_eq!(query_radius(2), 2);
        assert_eq!(query_radius(3), 4);
        assert_eq!(query_radius(11), 1024);
        assert_eq!(query_radius(65), u64::MAX);
        assert_eq!(query_radius(200), u64::MAX);
    }

    #[test]
    fn all_zeros_returns_zero_radius() {
        // rad(D) = 0 ⇒ Count(D, 0) = n fires immediately (Lemma 2.6).
        let d = dataset(vec![0; 2000]);
        let mut hits = 0;
        for seed in 0..100 {
            let mut rng = seeded(seed);
            if infinite_domain_radius(&mut rng, &d, eps(1.0), 0.1) == 0 {
                hits += 1;
            }
        }
        assert!(hits >= 90, "returned 0 only {hits}/100 times");
    }

    #[test]
    fn never_overshoots_twice_radius() {
        // Theorem 3.1 upper bound: r̃ad ≤ 2·rad with probability ≥ 1−β.
        let rad = 1000u64; // data at ±1000 plus bulk near zero
        let mut values = vec![0i64; 5000];
        values.push(1000);
        values.push(-1000);
        let d = dataset(values);
        let mut violations = 0;
        for seed in 0..200 {
            let mut rng = seeded(seed);
            let r = infinite_domain_radius(&mut rng, &d, eps(1.0), 0.05);
            if r > 2 * rad {
                violations += 1;
            }
        }
        assert!(violations <= 20, "overshot 2·rad {violations}/200 times");
    }

    #[test]
    fn covers_most_points() {
        // Theorem 3.1 coverage: few points outside the returned radius.
        let mut values: Vec<i64> = (0..4000).map(|i| (i % 256) - 128).collect();
        values.push(1 << 30);
        let d = dataset(values);
        let e = eps(1.0);
        let beta = 0.05;
        let mut failures = 0;
        for seed in 0..100 {
            let mut rng = seeded(1000 + seed);
            let r = infinite_domain_radius(&mut rng, &d, e, beta);
            let outside = d.len() - d.count_within_radius(r);
            let bound = radius_outside_bound(e, d.radius(), beta);
            if (outside as f64) > bound {
                failures += 1;
            }
        }
        assert!(failures <= 10, "coverage bound failed {failures}/100");
    }

    #[test]
    fn scales_to_huge_radii() {
        // Data at ±2^50: the doubling search must reach it quickly and
        // stay within a factor 2.
        let mut values = vec![1i64 << 50; 3000];
        values.push(-(1i64 << 50));
        let d = dataset(values);
        let mut rng = seeded(7);
        let r = infinite_domain_radius(&mut rng, &d, eps(1.0), 0.1);
        assert!(r >= 1u64 << 50, "undershot: {r}");
        assert!(r <= 1u64 << 51, "overshot: {r}");
    }

    #[test]
    fn small_n_with_loose_epsilon_still_terminates() {
        let d = dataset(vec![5, -3, 8]);
        let mut rng = seeded(8);
        // With n = 3 the threshold is deeply negative: SVT fires almost
        // immediately, returning a tiny radius — allowed, just useless.
        let r = infinite_domain_radius(&mut rng, &d, eps(0.01), 0.3);
        // Only checking termination and type sanity.
        let _ = r;
    }

    #[test]
    fn deterministic_given_seed() {
        let d = dataset((0..1000).map(|i| i % 64).collect());
        let mut a = seeded(42);
        let mut b = seeded(42);
        assert_eq!(
            infinite_domain_radius(&mut a, &d, eps(0.5), 0.1),
            infinite_domain_radius(&mut b, &d, eps(0.5), 0.1)
        );
    }
}
