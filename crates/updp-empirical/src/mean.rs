//! `InfiniteDomainMean` — Algorithm 5 (Theorems 3.3 and 3.4).
//!
//! The instance-optimal empirical mean over `Z`:
//!
//! 1. `R̃(D)` ← `InfiniteDomainRange(D, 4ε/5, β/2)`;
//! 2. release `ClippedMean(D, R̃(D)) + Lap(5·|R̃(D)|/(εn))`.
//!
//! Theorem 3.3: error `O((γ(D)/(εn))·log(log(γ(D))/β))` — an optimality
//! ratio of `O(log log γ(D)/ε)` against the instance lower bound
//! `L_in-nbr(D) = Θ(γ(D)/n)` of [HLY21], and an *exponential* improvement
//! over the `O(log N/ε)` ratio of the best prior finite-domain estimator.
//! Theorem 3.4 shows `Ω(log log N/ε)` is necessary, so this is worst-case
//! optimal among instance-optimal mechanisms.

use crate::dataset::SortedInts;
use crate::range::{infinite_domain_range, IntRange};
use rand::Rng;
use updp_core::clipped_mean::clipped_mean_i64;
use updp_core::error::Result;
use updp_core::laplace::sample_laplace;
use updp_core::privacy::Epsilon;

/// Diagnostic output of the empirical mean estimator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmpiricalMeanResult {
    /// The ε-DP mean estimate `μ̃(D)`.
    pub estimate: f64,
    /// The privatized range the data was clipped into.
    pub range: IntRange,
    /// How many elements were clipped (post-processing of the DP range —
    /// safe to report... only to the *analyst* holding the raw data; it is
    /// a function of `D` and `R̃`, so treat it as a non-private
    /// diagnostic).
    pub clipped: usize,
}

/// ε-DP estimate of the empirical mean `μ(D)` over `Z` (Algorithm 5).
pub fn infinite_domain_mean<R: Rng + ?Sized>(
    rng: &mut R,
    data: &SortedInts,
    epsilon: Epsilon,
    beta: f64,
) -> Result<EmpiricalMeanResult> {
    let range = infinite_domain_range(rng, data, epsilon.scale(4.0 / 5.0), beta / 2.0)?;
    let mean = clipped_mean_i64(data.values(), range.lo, range.hi)?;
    let n = data.len() as f64;
    let width = range.width() as f64;
    // updp-lint: allow(R5, reason="width is an i64 range cast to f64, so 0.0 is exact: the degenerate single-bucket range needs no Laplace noise (sensitivity 0)")
    let estimate = if width == 0.0 {
        mean
    } else {
        mean + sample_laplace(rng, 5.0 * width / (epsilon.get() * n))
    };
    let clipped = data.len() - data.count_in(range.lo, range.hi);
    Ok(EmpiricalMeanResult {
        estimate,
        range,
        clipped,
    })
}

/// The error bound of Theorem 3.3 (up to its universal constant):
/// `(γ(D)/(εn))·log(log γ(D)/β)`. Exposed for experiment reporting.
pub fn mean_error_bound(epsilon: Epsilon, gamma: u64, n: usize, beta: f64) -> f64 {
    let g = gamma.max(1) as f64;
    let loglog = (g.ln().max(1.0) / beta).ln().max(1.0);
    g / (epsilon.get() * n as f64) * loglog
}

#[cfg(test)]
mod tests {
    use super::*;
    use updp_core::rng::seeded;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn accurate_on_concentrated_data() {
        let values: Vec<i64> = (0..5000).map(|i| 100 + (i % 21) - 10).collect();
        let d = SortedInts::new(values).unwrap();
        let truth = d.mean();
        let mut errs = Vec::new();
        for seed in 0..50 {
            let mut rng = seeded(seed);
            let r = infinite_domain_mean(&mut rng, &d, eps(1.0), 0.1).unwrap();
            errs.push((r.estimate - truth).abs());
        }
        errs.sort_by(f64::total_cmp);
        let median_err = errs[25];
        // γ = 20, n = 5000, ε = 1 ⇒ bound ≈ 20/5000·loglog ≈ 0.02.
        assert!(median_err < 1.0, "median error {median_err}");
    }

    #[test]
    fn error_within_theorem_bound_with_slack() {
        let values: Vec<i64> = (0..4000).map(|i| (i % 1001) - 500).collect();
        let d = SortedInts::new(values).unwrap();
        let truth = d.mean();
        let e = eps(1.0);
        let beta = 0.1;
        let bound = mean_error_bound(e, d.width(), d.len(), beta);
        let mut failures = 0;
        for seed in 0..100 {
            let mut rng = seeded(100 + seed);
            let r = infinite_domain_mean(&mut rng, &d, e, beta).unwrap();
            // Universal-constant slack factor of 20.
            if (r.estimate - truth).abs() > 20.0 * bound {
                failures += 1;
            }
        }
        assert!(failures <= 10, "bound exceeded {failures}/100");
    }

    #[test]
    fn outlier_robustness_beats_naive_width() {
        // One extreme outlier: the clipped mean must not be dragged far.
        let mut values: Vec<i64> = vec![0; 4000];
        values.push(1 << 40);
        let d = SortedInts::new(values).unwrap();
        let mut rng = seeded(5);
        let r = infinite_domain_mean(&mut rng, &d, eps(1.0), 0.1).unwrap();
        // True mean ≈ 2.7e8; clipped estimate should be near 0 (the
        // instance-optimal answer tracks the *bulk*), certainly ≪ 1e8.
        assert!(
            r.estimate.abs() < 1e8,
            "outlier dragged estimate to {}",
            r.estimate
        );
    }

    #[test]
    fn degenerate_point_mass_is_exact_ish() {
        let d = SortedInts::new(vec![77; 3000]).unwrap();
        let mut rng = seeded(6);
        let r = infinite_domain_mean(&mut rng, &d, eps(1.0), 0.1).unwrap();
        assert!((r.estimate - 77.0).abs() < 5.0, "estimate {}", r.estimate);
    }

    #[test]
    fn negative_means_work() {
        let values: Vec<i64> = (0..3000).map(|i| -5000 + (i % 11)).collect();
        let d = SortedInts::new(values).unwrap();
        let truth = d.mean();
        let mut rng = seeded(7);
        let r = infinite_domain_mean(&mut rng, &d, eps(1.0), 0.1).unwrap();
        assert!(
            (r.estimate - truth).abs() < 10.0,
            "estimate {} vs {}",
            r.estimate,
            truth
        );
    }

    #[test]
    fn clipped_count_is_reported() {
        let mut values: Vec<i64> = vec![0; 2000];
        values.extend([1 << 35, -(1 << 35)]);
        let d = SortedInts::new(values).unwrap();
        let mut rng = seeded(8);
        let r = infinite_domain_mean(&mut rng, &d, eps(1.0), 0.1).unwrap();
        assert!(r.clipped <= d.len());
    }

    #[test]
    fn error_bound_shrinks_with_n_and_eps() {
        let e1 = mean_error_bound(eps(0.5), 1000, 1000, 0.1);
        let e2 = mean_error_bound(eps(0.5), 1000, 10_000, 0.1);
        let e3 = mean_error_bound(eps(5.0), 1000, 1000, 0.1);
        assert!(e2 < e1);
        assert!(e3 < e1);
    }
}
