//! Cache-legal pair-gap summary (DESIGN.md §12).
//!
//! Algorithm 7's IQR lower bound pairs up the records and runs two SVTs
//! over counting queries on the absolute gaps `|X − X′|`. Historically
//! the pairing was drawn from the *mechanism's* coins on every call, so
//! the gap structure was RNG-tainted and §7 forbade caching it — the
//! residual O(n) warm-quantile cost PR 4 measured.
//!
//! This module makes the summary cache-legal by deriving the pairing
//! permutation from the snapshot itself: a pseudorandom shuffle seeded
//! by `child_seed(GAP_PAIRING_SALT, n)`. The pairing is then a pure
//! function of the column length — RNG-free per snapshot version, so
//! one summary per column can be built once, sorted once, and answer
//! every later counting query in O(log n).
//!
//! Two properties carry the privacy and robustness arguments:
//!
//! * **Sensitivity 1.** The permutation pairs **original data indices**
//!   and is independent of the data values. Replacing record `j`
//!   perturbs exactly the one gap whose pair contains `j`, so counting
//!   queries on the gap multiset retain sensitivity 1 — the same
//!   argument as the per-call random pairing. (Pairing *sorted
//!   positions* would break this: one replacement shifts a contiguous
//!   block of sorted ranks and could perturb O(n) gaps.)
//! * **Robustness to adversarial input order.** The pairing is a
//!   full-entropy pseudorandom permutation, not consecutive or strided,
//!   so no fixed arrangement of a hostile caller's rows can force all
//!   gaps to collapse — the same robustness rationale as the per-call
//!   shuffle, traded from per-call coins to per-snapshot determinism.

use rand::seq::SliceRandom;
use std::sync::Arc;
use updp_core::rng::{child_seed, seeded};

use crate::view::sorted_copy;

/// Domain-separation salt for the pairing permutation seed. Any fixed
/// odd constant works; it only needs to differ from the trial-engine
/// masters so a snapshot's pairing never aliases a mechanism stream.
pub const GAP_PAIRING_SALT: u64 = 0x9a7_9a17_9a17;

/// Precomputed, sorted pair-gap summary of one column snapshot.
///
/// Built lazily by [`crate::view::ColumnCache::gap_summary`] and shared
/// via `Arc` like the sorted copy and grids; immutable once built.
#[derive(Debug)]
pub struct GapSummary {
    records: usize,
    sorted_gaps: Vec<f64>,
    all_finite: bool,
}

impl GapSummary {
    /// Builds the summary for a column snapshot: derive the pairing
    /// permutation from the column length, form `⌊n/2⌋` absolute gaps
    /// over original indices, and sort them by `total_cmp` for
    /// `partition_point` counting.
    pub fn build(data: &[f64]) -> Self {
        let n = data.len();
        let mut idx: Vec<usize> = (0..n).collect();
        let mut rng = seeded(child_seed(GAP_PAIRING_SALT, n as u64));
        idx.shuffle(&mut rng);
        let mut gaps = Vec::with_capacity(n / 2);
        for p in idx.chunks_exact(2) {
            gaps.push((data[p[0]] - data[p[1]]).abs());
        }
        let sorted_gaps = sorted_copy(&gaps);
        GapSummary {
            records: n,
            sorted_gaps,
            all_finite: data.iter().all(|x| x.is_finite()),
        }
    }

    /// Number of records in the snapshot the summary was built from.
    pub fn records(&self) -> usize {
        self.records
    }

    /// Number of gap pairs (`⌊records/2⌋`).
    pub fn pairs(&self) -> usize {
        self.sorted_gaps.len()
    }

    /// Whether every record of the underlying snapshot is finite —
    /// lets consumers replace their O(n) `ensure_finite` scan with an
    /// O(1) check.
    pub fn all_finite(&self) -> bool {
        self.all_finite
    }

    /// `|{g : g ≤ x}|` in O(log n) via `partition_point`.
    ///
    /// Valid for every `x` (including NaN, ±inf, −0.0): `abs()` clears
    /// sign bits so gaps are `≥ 0.0` or `+NaN`; under `total_cmp` NaNs
    /// sort last, and `v <= x` is false for all NaN `v`, so the
    /// predicate is prefix-true on the sorted gap vector for any `x`.
    pub fn count_le(&self, x: f64) -> usize {
        self.sorted_gaps.partition_point(|&v| v <= x)
    }

    /// The sorted gap multiset, for equivalence tests and benches.
    pub fn sorted_gaps(&self) -> &[f64] {
        &self.sorted_gaps
    }

    /// Convenience: build and wrap in an `Arc` for cache slots.
    pub fn build_arc(data: &[f64]) -> Arc<Self> {
        Arc::new(Self::build(data))
    }
}

#[cfg(test)]
// Exact `==` on f64 is deliberate in tests: they pin bit-identical
// outputs (DESIGN.md §5), so an epsilon tolerance would weaken them.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn summary_is_deterministic_per_snapshot() {
        let data: Vec<f64> = (0..101).map(|i| (i as f64) * 1.37 - 50.0).collect();
        let a = GapSummary::build(&data);
        let b = GapSummary::build(&data);
        let bits =
            |s: &GapSummary| -> Vec<u64> { s.sorted_gaps().iter().map(|g| g.to_bits()).collect() };
        assert_eq!(bits(&a), bits(&b));
        assert_eq!(a.records(), 101);
        assert_eq!(a.pairs(), 50);
        assert!(a.all_finite());
    }

    #[test]
    fn pairing_depends_on_length_not_values() {
        // Same length, different values: the gap *values* differ but
        // both summaries exist and have the same shape.
        let a = GapSummary::build(&[1.0, 2.0, 3.0, 4.0]);
        let b = GapSummary::build(&[10.0, 20.0, 30.0, 40.0]);
        assert_eq!(a.pairs(), b.pairs());
    }

    #[test]
    fn count_le_matches_naive_filter() {
        let data: Vec<f64> = (0..64).map(|i| ((i * 37) % 64) as f64 * 0.5).collect();
        let s = GapSummary::build(&data);
        for x in [-1.0, 0.0, -0.0, 0.25, 1.0, 7.5, 1e9, f64::INFINITY] {
            let naive = s.sorted_gaps().iter().filter(|&&g| g <= x).count();
            assert_eq!(s.count_le(x), naive, "x={x}");
        }
        // NaN threshold: nothing is ≤ NaN.
        assert_eq!(s.count_le(f64::NAN), 0);
    }

    #[test]
    fn nan_gaps_sort_last_and_never_counted() {
        let data = [1.0, f64::NAN, 2.0, 3.0, f64::INFINITY, 5.0];
        let s = GapSummary::build(&data);
        assert!(!s.all_finite());
        // All thresholds remain valid partition points.
        let total_non_nan = s.sorted_gaps().iter().filter(|g| !g.is_nan()).count();
        assert_eq!(s.count_le(f64::INFINITY), total_non_nan);
        assert_eq!(s.count_le(f64::NAN), 0);
    }

    #[test]
    fn odd_and_tiny_lengths() {
        assert_eq!(GapSummary::build(&[]).pairs(), 0);
        assert_eq!(GapSummary::build(&[1.0]).pairs(), 0);
        assert_eq!(GapSummary::build(&[1.0, 4.0]).sorted_gaps(), &[3.0]);
        assert_eq!(GapSummary::build(&[1.0, 4.0, 9.0]).pairs(), 1);
    }
}
