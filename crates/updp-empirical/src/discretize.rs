//! Real-domain extensions via discretization — Section 3.5
//! (Theorems 3.6–3.9).
//!
//! To run the integer-domain estimators on `D ∈ Rⁿ`, discretize `R` with
//! bucket size `b`: `x ↦ round(x/b)`. This adds `b` of additive error to
//! every value estimate and a `1/b` factor inside every logarithm — the
//! precise accounting is Theorems 3.6–3.9. The statistical estimators of
//! Sections 4–6 choose `b` privately from the data (a lower bound on the
//! IQR), which is the whole trick that removes assumption A2.

use crate::dataset::SortedInts;
use crate::mean::{infinite_domain_mean, EmpiricalMeanResult};
use crate::quantile::infinite_domain_quantile;
use crate::radius::infinite_domain_radius;
use crate::range::infinite_domain_range;
use rand::Rng;
use updp_core::error::{ensure_finite, ensure_nonempty, Result, UpdpError};
use updp_core::privacy::Epsilon;

/// A real ↔ integer bucket mapping with bucket size `b`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Discretizer {
    bucket: f64,
}

impl Discretizer {
    /// Creates a discretizer; `bucket` must be finite and positive.
    pub fn new(bucket: f64) -> Result<Self> {
        if !(bucket.is_finite() && bucket > 0.0) {
            return Err(UpdpError::InvalidParameter {
                name: "bucket",
                reason: format!("must be finite and positive, got {bucket}"),
            });
        }
        Ok(Discretizer { bucket })
    }

    /// The bucket size `b`.
    pub fn bucket(&self) -> f64 {
        self.bucket
    }

    /// Maps a real value to its bucket index `round(x/b)`.
    ///
    /// Errors with [`UpdpError::DomainOverflow`] if the index does not fit
    /// in `i64` (only possible for astronomically small buckets).
    pub fn to_int(&self, x: f64) -> Result<i64> {
        if !x.is_finite() {
            return Err(UpdpError::NonFiniteInput {
                context: "discretization",
            });
        }
        let idx = (x / self.bucket).round();
        if idx >= -(2f64.powi(62)) && idx <= 2f64.powi(62) {
            Ok(idx as i64)
        } else {
            Err(UpdpError::DomainOverflow {
                value: x,
                bucket: self.bucket,
            })
        }
    }

    /// Maps a bucket index back to the real bucket center.
    pub fn to_real(&self, i: i64) -> f64 {
        i as f64 * self.bucket
    }

    /// Discretizes a whole real dataset into a sorted integer dataset.
    pub fn discretize(&self, data: &[f64]) -> Result<SortedInts> {
        ensure_nonempty(data)?;
        ensure_finite(data, "discretization input")?;
        let ints = data
            .iter()
            .map(|&x| self.to_int(x))
            .collect::<Result<Vec<i64>>>()?;
        SortedInts::new(ints)
    }
}

/// A privatized real range `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RealRange {
    /// Lower end.
    pub lo: f64,
    /// Upper end.
    pub hi: f64,
}

impl RealRange {
    /// Width `hi − lo`.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }
}

/// Theorem 3.6: ε-DP radius of real data with bucket size `b`.
/// `r̃ad ≤ 2·rad(D) + 3b` while covering all but
/// `O((1/ε)·log(log(rad/b)/β))` elements.
pub fn real_radius<R: Rng + ?Sized>(
    rng: &mut R,
    data: &[f64],
    bucket: f64,
    epsilon: Epsilon,
    beta: f64,
) -> Result<f64> {
    let disc = Discretizer::new(bucket)?;
    let ints = disc.discretize(data)?;
    let rad = infinite_domain_radius(rng, &ints, epsilon, beta);
    // Integer radius r covers buckets [−r, r]; bucket r has real extent
    // (r + 1/2)·b.
    Ok((rad as f64 + 0.5) * bucket)
}

/// Theorem 3.7: ε-DP range of real data with bucket size `b`.
/// `|R̃| ≤ 4γ(D) + 6b` and `O((1/ε)·log(log(γ/b)/β))` clipped.
pub fn real_range<R: Rng + ?Sized>(
    rng: &mut R,
    data: &[f64],
    bucket: f64,
    epsilon: Epsilon,
    beta: f64,
) -> Result<RealRange> {
    let disc = Discretizer::new(bucket)?;
    let ints = disc.discretize(data)?;
    let r = infinite_domain_range(rng, &ints, epsilon, beta)?;
    Ok(RealRange {
        lo: disc.to_real(r.lo) - bucket / 2.0,
        hi: disc.to_real(r.hi) + bucket / 2.0,
    })
}

/// Theorem 3.8: ε-DP empirical mean of real data with bucket size `b`.
/// Error `O(((γ(D)+b)/(εn))·log(log(γ/b)/β)) + b`.
pub fn real_mean<R: Rng + ?Sized>(
    rng: &mut R,
    data: &[f64],
    bucket: f64,
    epsilon: Epsilon,
    beta: f64,
) -> Result<f64> {
    let disc = Discretizer::new(bucket)?;
    let ints = disc.discretize(data)?;
    let EmpiricalMeanResult { estimate, .. } = infinite_domain_mean(rng, &ints, epsilon, beta)?;
    Ok(estimate * bucket)
}

/// Theorem 3.9: ε-DP τ-th order statistic of real data with bucket `b`.
/// Rank error `O((1/ε)·log(γ/(bβ)))` plus `b` of value error.
pub fn real_quantile<R: Rng + ?Sized>(
    rng: &mut R,
    data: &[f64],
    tau: usize,
    bucket: f64,
    epsilon: Epsilon,
    beta: f64,
) -> Result<f64> {
    real_quantile_view(
        rng,
        &crate::view::ColumnView::bare(data),
        tau,
        bucket,
        epsilon,
        beta,
    )
}

/// [`real_quantile`] over a [`crate::view::ColumnView`]: the sorted
/// integer grid comes from the view, so a cached view pays the
/// `O(n log n)` discretize-and-sort once per `(data, bucket)` instead
/// of once per call. Bit-identical to [`real_quantile`] — the grid is
/// a pure function of the inputs and building it consumes no
/// randomness.
pub fn real_quantile_view<R: Rng + ?Sized>(
    rng: &mut R,
    view: &crate::view::ColumnView<'_>,
    tau: usize,
    bucket: f64,
    epsilon: Epsilon,
    beta: f64,
) -> Result<f64> {
    let disc = Discretizer::new(bucket)?;
    let ints = view.grid(bucket)?;
    let q = infinite_domain_quantile(rng, &ints, tau, epsilon, beta)?;
    Ok(disc.to_real(q.estimate))
}

#[cfg(test)]
mod tests {
    use super::*;
    use updp_core::rng::seeded;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn discretizer_round_trips_within_half_bucket() {
        let d = Discretizer::new(0.25).unwrap();
        for i in -100..100 {
            let x = i as f64 * 0.1379;
            let back = d.to_real(d.to_int(x).unwrap());
            assert!((back - x).abs() <= 0.125 + 1e-12, "x = {x}, back = {back}");
        }
    }

    #[test]
    fn discretizer_validates() {
        assert!(Discretizer::new(0.0).is_err());
        assert!(Discretizer::new(-1.0).is_err());
        assert!(Discretizer::new(f64::NAN).is_err());
        let d = Discretizer::new(1.0).unwrap();
        assert!(d.to_int(f64::NAN).is_err());
        assert!(d.to_int(f64::INFINITY).is_err());
    }

    #[test]
    fn overflow_is_reported() {
        let d = Discretizer::new(1e-300).unwrap();
        let err = d.to_int(1e10).unwrap_err();
        assert!(matches!(err, UpdpError::DomainOverflow { .. }));
    }

    #[test]
    fn real_mean_recovers_cluster() {
        let data: Vec<f64> = (0..4000)
            .map(|i| 3.5 + 0.001 * ((i % 100) as f64 - 50.0))
            .collect();
        let mut rng = seeded(1);
        let m = real_mean(&mut rng, &data, 0.01, eps(1.0), 0.1).unwrap();
        assert!((m - 3.5).abs() < 0.1, "mean estimate {m}");
    }

    #[test]
    fn real_quantile_recovers_median() {
        let data: Vec<f64> = (0..3001).map(|i| (i as f64) / 1000.0).collect(); // [0, 3]
        let mut rng = seeded(2);
        let q = real_quantile(&mut rng, &data, 1500, 0.001, eps(1.0), 0.1).unwrap();
        assert!((q - 1.5).abs() < 0.2, "median estimate {q}");
    }

    #[test]
    fn real_range_covers_bulk() {
        let data: Vec<f64> = (0..3000).map(|i| -7.0 + (i % 100) as f64 * 0.01).collect();
        let mut rng = seeded(3);
        let r = real_range(&mut rng, &data, 0.01, eps(1.0), 0.1).unwrap();
        assert!(r.lo < -6.9 && r.hi > -6.2, "range {r:?}");
        // 4γ + 6b bound with slack.
        assert!(r.width() < 10.0 * (1.0 + 0.06), "width {}", r.width());
    }

    #[test]
    fn real_radius_scales_with_bucket() {
        let data = vec![100.0f64; 2000];
        let mut rng = seeded(4);
        let rad = real_radius(&mut rng, &data, 1.0, eps(1.0), 0.1).unwrap();
        assert!((99.0..=210.0).contains(&rad), "radius {rad}");
    }

    #[test]
    fn coarse_bucket_still_centers_correctly() {
        // Bucket far wider than the data spread: everything lands in one
        // bucket, estimate = bucket center.
        let data = vec![41.9f64; 1000];
        let mut rng = seeded(5);
        let m = real_mean(&mut rng, &data, 10.0, eps(1.0), 0.1).unwrap();
        assert!((m - 40.0).abs() < 15.0, "estimate {m}");
    }
}
