//! The kernel determinism contract (DESIGN.md §12), pinned
//! property-style:
//!
//! * the deterministic parallel merge sort produces **bitwise** the
//!   same sequence as the serial `sort_by(f64::total_cmp)` at every
//!   thread count, across `NaN`/`-0.0`/`±inf`/subnormal bit patterns;
//! * the cached pair-gap summary of a snapshot reached by appends is
//!   bitwise identical to a fresh summary built over the concatenated
//!   column (the summary is a pure function of the column), and its
//!   `count_le` matches the naive filter for every threshold.

use proptest::prelude::*;
use updp_empirical::gaps::GapSummary;
use updp_empirical::view::{sorted_copy_threads, PreparedDataset};

/// Replaces a mask-selected subset of `values` with adversarial bit
/// patterns (`NaN`, `-0.0`, `±inf`, huge magnitudes, denormals) so the
/// properties cover the full `total_cmp` order, not just "nice" reals.
fn inject_specials(values: &mut [f64], mask: u64) {
    const SPECIALS: [f64; 8] = [
        f64::NAN,
        -0.0,
        0.0,
        f64::INFINITY,
        f64::NEG_INFINITY,
        1e300,
        -1e300,
        f64::MIN_POSITIVE / 2.0, // a subnormal
    ];
    if values.is_empty() {
        return;
    }
    for bit in 0..64usize {
        if mask & (1 << bit) != 0 {
            let i = bit % values.len();
            values[i] = SPECIALS[bit % SPECIALS.len()];
        }
    }
}

fn assert_bits_equal(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length diverged");
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}[{i}]: {x:?} vs {y:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Parallel sort ≡ serial `total_cmp` sort, bitwise, at
    /// UPDP_THREADS-equivalent worker counts {1, 2, 8}. Explicit
    /// thread counts (not the env var) keep the property race-free
    /// under the parallel test harness.
    #[test]
    fn parallel_sort_matches_serial_bitwise(
        mut values in prop::collection::vec(-1e6f64..1e6, 0..200),
        mask in 0u64..(1 << 16),
    ) {
        inject_specials(&mut values, mask);
        let serial = {
            let mut v = values.clone();
            v.sort_by(f64::total_cmp);
            v
        };
        for threads in [1usize, 2, 8] {
            let par = sorted_copy_threads(&values, threads);
            assert_bits_equal(&par, &serial, &format!("threads={threads}"));
        }
    }

    /// The gap summary of an append-chain snapshot equals a fresh
    /// summary over the concatenated column, bitwise — and `count_le`
    /// equals the naive filter at every probed threshold.
    #[test]
    fn gap_summary_matches_fresh_scan_over_append_chains(
        mut base in prop::collection::vec(-1e6f64..1e6, 1..48),
        mut delta in prop::collection::vec(-1e6f64..1e6, 0..48),
        base_mask in 0u64..(1 << 16),
        delta_mask in 0u64..(1 << 16),
    ) {
        inject_specials(&mut base, base_mask);
        inject_specials(&mut delta, delta_mask);

        let warm = PreparedDataset::new(vec![base]).with_gap_summaries();
        // Warm the parent's artifacts so the append exercises the
        // carry-forward path (which must drop, not stale-carry, the
        // summary: the pairing depends on the column length).
        let _ = warm.view().col(0).sorted();
        let _ = warm.view().col(0).gap_summary();
        let next = warm.append(&[delta]);

        let cached = next.view().col(0).gap_summary().expect("opt-in propagates");
        let fresh = GapSummary::build(&next.columns()[0]);
        assert_bits_equal(cached.sorted_gaps(), fresh.sorted_gaps(), "gaps");
        prop_assert_eq!(cached.records(), fresh.records());
        prop_assert_eq!(cached.all_finite(), fresh.all_finite());

        for x in [-1.0, -0.0, 0.0, 1e-300, 0.5, 1e3, 1e300, f64::INFINITY, f64::NAN] {
            let naive = fresh
                .sorted_gaps()
                .iter()
                .filter(|&&g| g <= x)
                .count();
            prop_assert_eq!(cached.count_le(x), naive, "threshold {}", x);
        }
    }
}

/// Default-mode snapshots must never build or serve a gap summary —
/// the opt-in is what keeps the experiment suite's draw sequences
/// byte-identical to the historical path.
#[test]
fn gap_summary_is_strictly_opt_in() {
    let plain = PreparedDataset::new(vec![vec![1.0, 5.0, 2.0, 4.0]]);
    assert!(!plain.gap_summaries_enabled());
    assert!(plain.view().col(0).gap_summary().is_none());
    assert!(!plain.view().col(0).has_gap_summary());
    // Appending does not conjure one either.
    let next = plain.append(&[vec![9.0]]);
    assert!(next.view().col(0).gap_summary().is_none());

    let opted = PreparedDataset::new(vec![vec![1.0, 5.0, 2.0, 4.0]]).with_gap_summaries();
    assert!(opted.gap_summaries_enabled());
    assert!(!opted.view().col(0).has_gap_summary(), "lazy until asked");
    let summary = opted.view().col(0).gap_summary().expect("opted in");
    assert!(opted.view().col(0).has_gap_summary());
    // Cached: the same Arc is served again.
    let again = opted.view().col(0).gap_summary().expect("still there");
    assert!(std::sync::Arc::ptr_eq(&summary, &again));
    // And the flag survives appends.
    let next = opted.append(&[vec![3.0, 7.0]]);
    assert!(next.gap_summaries_enabled());
    assert!(
        !next.view().col(0).has_gap_summary(),
        "summary is rebuilt, never stale-carried"
    );
    assert!(next.view().col(0).gap_summary().is_some());
}

/// The worst-case column for the sort: every special value duplicated.
/// Deterministic companion to the proptest, pinning the exact NaN and
/// signed-zero layout at several thread counts.
#[test]
fn parallel_sort_nan_and_signed_zero_layout() {
    let values = vec![
        1.0,
        -0.0,
        0.0,
        f64::NAN,
        -1.0,
        0.0,
        -0.0,
        f64::NEG_INFINITY,
        f64::INFINITY,
        f64::NAN,
        f64::MIN_POSITIVE / 2.0,
    ];
    let mut serial = values.clone();
    serial.sort_by(f64::total_cmp);
    for threads in [1usize, 2, 3, 8, 16] {
        let par = sorted_copy_threads(&values, threads);
        assert_bits_equal(&par, &serial, &format!("threads={threads}"));
    }
    // total_cmp layout sanity: -NaN would sort first, +NaN last; -0.0
    // sorts before +0.0.
    assert!(serial.last().unwrap().is_nan());
    let zero_bits: Vec<u64> = serial
        .iter()
        .filter(|x| **x == 0.0)
        .map(|x| x.to_bits())
        .collect();
    assert_eq!(
        zero_bits,
        vec![(-0.0f64).to_bits(), (-0.0f64).to_bits(), 0, 0]
    );
}
