//! The streaming-append determinism contract (DESIGN.md §8), pinned
//! property-style: across random append sequences — including `NaN`,
//! `-0.0`, infinities, and duplicated values — every merge-maintained
//! artifact of a [`PreparedDataset`] chain is **bitwise identical** to
//! the artifact a fresh cold build over the concatenated column would
//! produce, and artifact *errors* (unmappable grids) are identical
//! too. This is what makes `append` purely a cost optimization: no
//! released bit can depend on whether a snapshot was reached by
//! appends or by bulk registration.

use proptest::prelude::*;
use updp_empirical::view::PreparedDataset;

/// Replaces a mask-selected subset of `values` with adversarial bit
/// patterns (`NaN`, `-0.0`, `±inf`, huge magnitudes, denormals) so the
/// property covers the full `total_cmp` order, not just "nice" reals.
fn inject_specials(values: &mut [f64], mask: u64) {
    const SPECIALS: [f64; 8] = [
        f64::NAN,
        -0.0,
        0.0,
        f64::INFINITY,
        f64::NEG_INFINITY,
        1e300,
        -1e300,
        f64::MIN_POSITIVE / 2.0, // a subnormal
    ];
    if values.is_empty() {
        return;
    }
    for bit in 0..64usize {
        if mask & (1 << bit) != 0 {
            let i = bit % values.len();
            values[i] = SPECIALS[bit % SPECIALS.len()];
        }
    }
}

/// Asserts that the warm (append-maintained) snapshot and a fresh
/// cold build over the same rows agree bitwise on the sorted copy and
/// on every probed grid — values and errors alike.
fn assert_bitwise_equivalent(warm: &PreparedDataset, buckets: &[f64]) {
    let fresh = PreparedDataset::new(warm.columns().to_vec());
    let warm_sorted = warm.view().col(0).sorted();
    let fresh_sorted = fresh.view().col(0).sorted();
    assert_eq!(warm_sorted.len(), fresh_sorted.len());
    for (i, (a, b)) in warm_sorted.iter().zip(fresh_sorted.iter()).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "sorted[{i}] diverged: {a:?} vs {b:?}"
        );
    }
    for &bucket in buckets {
        match (
            warm.view().col(0).grid(bucket),
            fresh.view().col(0).grid(bucket),
        ) {
            (Ok(w), Ok(f)) => assert_eq!(*w, *f, "grid for bucket {bucket} diverged"),
            (Err(w), Err(f)) => assert_eq!(
                w.to_string(),
                f.to_string(),
                "grid error for bucket {bucket} diverged"
            ),
            (w, f) => panic!("bucket {bucket}: warm {w:?} vs fresh {f:?}"),
        }
    }
}

const BUCKETS: [f64; 3] = [0.25, 1.0, 17.5];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random base column + up to four random append deltas, with
    /// adversarial bit patterns injected into both: after every link
    /// of the chain, the merge-maintained snapshot equals a fresh
    /// build bitwise (sorted copy and all probed grids).
    #[test]
    fn append_chain_matches_fresh_builds(
        mut base in prop::collection::vec(-1e6f64..1e6, 1..48),
        mut flat in prop::collection::vec(-1e6f64..1e6, 0..48),
        cuts in prop::collection::vec(0usize..48, 1..4),
        base_mask in 0u64..(1 << 16),
        delta_mask in 0u64..(1 << 16),
    ) {
        inject_specials(&mut base, base_mask);
        inject_specials(&mut flat, delta_mask);

        // Split the flat delta pool into an append sequence.
        let mut bounds: Vec<usize> = cuts.iter().map(|&c| c % (flat.len() + 1)).collect();
        bounds.sort_unstable();
        bounds.push(flat.len());
        let mut deltas: Vec<Vec<f64>> = Vec::new();
        let mut start = 0usize;
        for &end in &bounds {
            deltas.push(flat[start..end.max(start)].to_vec());
            start = start.max(end);
        }

        let mut warm = PreparedDataset::new(vec![base]);
        for (i, delta) in deltas.iter().enumerate() {
            // Warm every artifact so the append exercises the merge
            // carry-forward path, not the lazy one.
            let _ = warm.view().col(0).sorted();
            for &bucket in &BUCKETS {
                let _ = warm.view().col(0).grid(bucket);
            }
            warm = warm.append(std::slice::from_ref(delta));
            prop_assert_eq!(warm.version(), i as u64 + 1);
            assert_bitwise_equivalent(&warm, &BUCKETS);
        }
    }

    /// The cold chain (no artifact ever built before the appends) must
    /// agree too — appends on lazy snapshots stay lazy and correct.
    #[test]
    fn cold_append_chain_matches_fresh_builds(
        base in prop::collection::vec(-1e3f64..1e3, 1..32),
        delta in prop::collection::vec(-1e3f64..1e3, 0..32),
    ) {
        let warm = PreparedDataset::new(vec![base]).append(&[delta]);
        assert_bitwise_equivalent(&warm, &BUCKETS);
    }
}

/// The deterministic worst-case column: every special value the
/// `total_cmp` order distinguishes, duplicated, appended in slices —
/// the NaN/-0.0 case the ISSUE calls out explicitly.
#[test]
fn nan_and_signed_zero_chain_is_bitwise_stable() {
    let base = vec![1.0, -0.0, 0.0, f64::NAN, -1.0, 0.0, -0.0];
    let deltas = [
        vec![f64::NAN, -0.0],
        vec![],
        vec![0.0, 0.0, -0.0, f64::NEG_INFINITY],
        vec![f64::INFINITY, 2.5, f64::NAN],
    ];
    let mut warm = PreparedDataset::new(vec![base]);
    for delta in &deltas {
        let _ = warm.view().col(0).sorted();
        let _ = warm.view().col(0).grid(0.5);
        warm = warm.append(std::slice::from_ref(delta));
        assert_bitwise_equivalent(&warm, &[0.5, 2.0]);
    }
    assert_eq!(warm.len(), 7 + 2 + 4 + 3);
    assert_eq!(warm.version(), 4);
}
