//! Parallel-vs-serial determinism of the trial engine (DESIGN.md §5).
//!
//! The contract under test: `UPDP_THREADS` changes wall time only —
//! every experiment's output (all `ErrorStats`-derived cells) is
//! byte-identical at any thread count, because each trial is a pure
//! function of `(master, trial_index)` and results are collected by
//! index.

use std::sync::Mutex;
use updp_experiments::{registry, run_trials, ExpConfig};

/// Serializes the tests in this binary: they mutate the process-wide
/// `UPDP_THREADS` variable.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn with_threads<T>(k: &str, f: impl FnOnce() -> T) -> T {
    std::env::set_var(updp_core::parallel::THREADS_ENV, k);
    let out = f();
    std::env::remove_var(updp_core::parallel::THREADS_ENV);
    out
}

/// Every experiment id must render byte-identically with 1 and 8
/// worker threads.
#[test]
fn every_experiment_is_thread_count_invariant() {
    let _guard = ENV_LOCK.lock().unwrap();
    let cfg = ExpConfig {
        trials: 3,
        quick: true,
        ..ExpConfig::default()
    };
    for (id, _, f) in registry() {
        let serial = with_threads("1", || f(&cfg).render());
        let parallel = with_threads("8", || f(&cfg).render());
        assert_eq!(
            serial, parallel,
            "experiment `{id}` output depends on the thread count"
        );
    }
}

/// Golden pin of one parallel `run_trials` summary: exact bit patterns,
/// so any change to the child-seed scheme, the RNG, the trial engine's
/// collection order, or the summarize order statistics fails loudly and
/// must be accompanied by a conscious regeneration of stored outputs.
#[test]
fn golden_parallel_run_trials() {
    let _guard = ENV_LOCK.lock().unwrap();
    let stats = with_threads("8", || {
        run_trials(64, 0xDECA_FBAD, 0.5, |rng| {
            use rand::Rng;
            Ok(rng.gen::<f64>())
        })
    });
    assert_eq!(stats.trials, 64);
    assert_eq!(stats.failures, 0);
    assert_eq!(
        stats.median.to_bits(),
        GOLDEN_MEDIAN_BITS,
        "median {} drifted",
        stats.median
    );
    assert_eq!(
        stats.p90.to_bits(),
        GOLDEN_P90_BITS,
        "p90 {} drifted",
        stats.p90
    );
    assert_eq!(
        stats.mean.to_bits(),
        GOLDEN_MEAN_BITS,
        "mean {} drifted",
        stats.mean
    );
    // And the identical bits must come back at 1 and 3 threads.
    for k in ["1", "3"] {
        let again = with_threads(k, || {
            run_trials(64, 0xDECA_FBAD, 0.5, |rng| {
                use rand::Rng;
                Ok(rng.gen::<f64>())
            })
        });
        assert_eq!(again, stats, "UPDP_THREADS={k} changed the summary");
    }
}

// Golden values regenerated 2026-07 for the xoshiro256++-backed StdRng
// (vendor/rand); median ≈ 0.23284, p90 ≈ 0.41840, mean ≈ 0.23062.
const GOLDEN_MEDIAN_BITS: u64 = 0x3FCD_CD8C_ABEE_F760;
const GOLDEN_P90_BITS: u64 = 0x3FDA_C70A_EA13_90BE;
const GOLDEN_MEAN_BITS: u64 = 0x3FCD_84F8_DD46_1AB5;
