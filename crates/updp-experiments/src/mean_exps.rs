//! Experiments for statistical mean estimation (Section 4) and the
//! Table 1 assumption matrix.
//!
//! `table1`, `gauss-mean` (Thm 4.6), `heavy-mean` (Thm 4.9),
//! `arb-mean` (Eq. 8 vs Eq. 6/7).

use crate::config::ExpConfig;
use crate::table::Table;
use crate::trial::{estimator_trials, fmt_err, run_trials, ErrorStats};
use updp_baselines::{
    sample_mean, sample_midrange, Bs19TrimmedMean, CoinPressMean, Ksu20Mean, Kv18Mean,
    NaiveClipMean, NonPrivateMean,
};
use updp_core::privacy::Epsilon;
use updp_dist::{Affine, ContinuousDistribution, Gaussian, Pareto, StudentT, Uniform};
use updp_statistical::{EstimateParams, Estimator, UniversalMean};

fn eps(v: f64) -> Epsilon {
    Epsilon::new(v).unwrap()
}

/// Trial sweep of one trait-dispatched estimator on fresh samples of
/// `dist` — the single helper every mean experiment routes through.
fn stats_for(
    cfg: &ExpConfig,
    dist: &dyn ContinuousDistribution,
    n: usize,
    master: u64,
    estimator: &dyn Estimator,
    params: &EstimateParams,
) -> ErrorStats {
    estimator_trials(cfg.trials, master, dist.mean(), estimator, params, |rng| {
        dist.sample_vec(rng, n)
    })
}

/// `table1` — the assumption matrix: every baseline fails when its
/// assumptions fail; the universal estimator never needs them.
pub fn table1(cfg: &ExpConfig) -> Table {
    let mut t = Table::new(
        "table1",
        "Assumption matrix (paper Table 1): who survives broken assumptions?",
        "prior pure-DP estimators rely on A1 (μ range) / A2 (σ range) / A3 (family); the universal estimator removes all three",
        vec![
            "scenario",
            "universal (ours)",
            "naive clip [A1]",
            "KV18 [A1A2A3]",
            "CoinPress [A1A2]",
            "BS19 [A1]",
        ],
    );
    let n = cfg.n(20_000);
    let e = eps(0.5);
    let master = cfg.master_for("table1");
    // (label, distribution, assumed R, assumed σ bounds)
    struct Scenario {
        label: &'static str,
        dist: Box<dyn ContinuousDistribution>,
        r: f64,
        smin: f64,
        smax: f64,
    }
    let scenarios = [
        Scenario {
            label: "A1,A2,A3 hold (N(5,2), R=1e3)",
            dist: Box::new(Gaussian::new(5.0, 2.0).unwrap()),
            r: 1e3,
            smin: 0.1,
            smax: 100.0,
        },
        Scenario {
            label: "A1 broken (N(1e7,1), R=1e3)",
            dist: Box::new(Gaussian::new(1e7, 1.0).unwrap()),
            r: 1e3,
            smin: 0.1,
            smax: 100.0,
        },
        Scenario {
            label: "A2 broken (N(0,1e-5), smin=0.1)",
            dist: Box::new(Gaussian::new(0.0, 1e-5).unwrap()),
            r: 1e3,
            smin: 0.1,
            smax: 100.0,
        },
        Scenario {
            label: "A3 broken (Pareto(1,2.5))",
            dist: Box::new(Pareto::new(1.0, 2.5).unwrap()),
            r: 1e3,
            smin: 0.1,
            smax: 100.0,
        },
    ];
    for (si, sc) in scenarios.iter().enumerate() {
        let m = master.wrapping_add(si as u64 * 7919);
        let d = sc.dist.as_ref();
        let sigma_ref = d.std_dev();
        let ours = stats_for(
            cfg,
            d,
            n,
            m,
            &UniversalMean,
            &EstimateParams::new(e).with_beta(0.1),
        );
        let naive = stats_for(
            cfg,
            d,
            n,
            m ^ 1,
            &NaiveClipMean,
            &EstimateParams::new(e).with("r", sc.r),
        );
        let kv = stats_for(
            cfg,
            d,
            n,
            m ^ 2,
            &Kv18Mean,
            &EstimateParams::new(e)
                .with("r", sc.r)
                .with("sigma_min", sc.smin)
                .with("sigma_max", sc.smax),
        );
        let cp = stats_for(
            cfg,
            d,
            n,
            m ^ 3,
            &CoinPressMean,
            &EstimateParams::new(e)
                .with("r", sc.r)
                .with("sigma", sc.smax),
        );
        let bs = stats_for(
            cfg,
            d,
            n,
            m ^ 4,
            &Bs19TrimmedMean,
            &EstimateParams::new(e)
                .with("r", sc.r)
                .with("trim_frac", 0.05),
        );
        // Verdict: FAIL when the median error is >10x ours and >1σ.
        let verdict = |s: &ErrorStats| -> String {
            if s.median.is_nan() {
                return "refused".into();
            }
            let fail = s.median > 10.0 * ours.median.max(1e-12) && s.median > sigma_ref;
            format!("{}{}", fmt_err(s.median), if fail { " FAIL" } else { "" })
        };
        t.push_row(vec![
            sc.label.to_string(),
            fmt_err(ours.median),
            verdict(&naive),
            verdict(&kv),
            verdict(&cp),
            verdict(&bs),
        ]);
    }
    t.note("median |μ̃ − μ| over trials; FAIL = 10x worse than the universal estimator and worse than 1σ");
    t.note("intro sidebar: the mid-range estimator is great on Uniform and terrible on Gaussian — see notes below");
    // Mid-range sidebar.
    let u = Uniform::new(0.0, 1.0).unwrap();
    let g = Gaussian::new(0.5, 0.3).unwrap();
    let mr_u = run_trials(cfg.trials, master ^ 77, u.mean(), |rng| {
        sample_midrange(&u.sample_vec(rng, n))
    });
    let mr_g = run_trials(cfg.trials, master ^ 78, g.mean(), |rng| {
        sample_midrange(&g.sample_vec(rng, n))
    });
    let sm_u = run_trials(cfg.trials, master ^ 79, u.mean(), |rng| {
        sample_mean(&u.sample_vec(rng, n))
    });
    t.note(format!(
        "mid-range on Uniform: {} (vs sample mean {}); mid-range on Gaussian: {} — distribution-specific estimators fail off-family",
        fmt_err(mr_u.median),
        fmt_err(sm_u.median),
        fmt_err(mr_g.median)
    ));
    t
}

/// `gauss-mean` — Theorem 4.6 vs [KV18]/[KLSU19, BDKU20]: same
/// `σ²/α² + σ/(εα)` behaviour with no `log R` requirement.
pub fn gauss_mean(cfg: &ExpConfig) -> Table {
    let mut t = Table::new(
        "gauss-mean",
        "Gaussian mean: universal vs A1/A2-dependent baselines (Thm 4.6)",
        "ours matches the baselines when their assumptions hold and keeps working with |μ| = 10^7 and no R",
        vec![
            "n",
            "ours",
            "KV18 (honest R)",
            "CoinPress (honest R)",
            "non-private",
            "ours |μ|=1e7 no-R",
        ],
    );
    let e = eps(0.5);
    let master = cfg.master_for("gauss-mean");
    let g = Gaussian::new(100.0, 2.0).unwrap();
    let far = Gaussian::new(1e7, 2.0).unwrap();
    for (ni, &n_full) in [2_000usize, 8_000, 32_000, 128_000].iter().enumerate() {
        let n = cfg.n(n_full);
        let m = master.wrapping_add(ni as u64 * 104729);
        let universal = EstimateParams::new(e).with_beta(0.1);
        let ours = stats_for(cfg, &g, n, m, &UniversalMean, &universal);
        let kv = stats_for(
            cfg,
            &g,
            n,
            m ^ 1,
            &Kv18Mean,
            &EstimateParams::new(e)
                .with("r", 1e4)
                .with("sigma_min", 0.01)
                .with("sigma_max", 1e3),
        );
        let cp = stats_for(
            cfg,
            &g,
            n,
            m ^ 2,
            &CoinPressMean,
            &EstimateParams::new(e).with("r", 1e4).with("sigma", 2.0),
        );
        let np = stats_for(cfg, &g, n, m ^ 3, &NonPrivateMean, &EstimateParams::new(e));
        let ours_far = stats_for(cfg, &far, n, m ^ 4, &UniversalMean, &universal);
        t.push_row(vec![
            n.to_string(),
            fmt_err(ours.median),
            fmt_err(kv.median),
            fmt_err(cp.median),
            fmt_err(np.median),
            fmt_err(ours_far.median),
        ]);
    }
    t.note("all private columns converge at the same ~1/(εn)+1/√n rate; the last column shows universality: no baseline can even run at |μ|=1e7 without being told R ≥ 1e7");
    t
}

/// `heavy-mean` — Theorem 4.9 vs [KSU20]: parity under an honest moment
/// bound, decisive win under misspecification (which is unavoidable when
/// `μ_{2k} = ∞`).
pub fn heavy_mean(cfg: &ExpConfig) -> Table {
    let mut t = Table::new(
        "heavy-mean",
        "Heavy-tailed mean: universal vs KSU20 with (mis)specified moment bounds (Thm 4.9)",
        "KSU20's privacy term needs μ̄_k = O(μ_k); overestimating μ̄_k inflates its noise while the universal estimator needs no bound at all",
        vec![
            "distribution",
            "ours",
            "KSU20 honest μ̄₂",
            "KSU20 μ̄₂·10³",
            "KSU20 μ̄₂·10⁶",
            "non-private",
        ],
    );
    let e = eps(0.2);
    let n = cfg.n(20_000);
    let master = cfg.master_for("heavy-mean");
    let dists: Vec<(String, Box<dyn ContinuousDistribution>)> = vec![
        (
            "Pareto(1, 2.5)".into(),
            Box::new(Pareto::new(1.0, 2.5).unwrap()),
        ),
        (
            "StudentT(3)".into(),
            Box::new(StudentT::new(3.0, 0.0, 1.0).unwrap()),
        ),
        (
            "StudentT(5, loc=50)".into(),
            Box::new(StudentT::new(5.0, 50.0, 1.0).unwrap()),
        ),
    ];
    for (di, (label, dist)) in dists.iter().enumerate() {
        let d = dist.as_ref();
        let m = master.wrapping_add(di as u64 * 31337);
        let mu2 = d.central_moment(2);
        let ours = stats_for(
            cfg,
            d,
            n,
            m,
            &UniversalMean,
            &EstimateParams::new(e).with_beta(0.1),
        );
        let ksu = |factor: f64, salt: u64| {
            stats_for(
                cfg,
                d,
                n,
                m ^ salt,
                &Ksu20Mean,
                &EstimateParams::new(e)
                    .with("r", 1e4)
                    .with("k", 2.0)
                    .with("mu_k_bound", mu2 * factor),
            )
        };
        let honest = ksu(1.0, 1);
        let k3 = ksu(1e3, 2);
        let k6 = ksu(1e6, 3);
        let np = stats_for(cfg, d, n, m ^ 4, &NonPrivateMean, &EstimateParams::new(e));
        t.push_row(vec![
            label.clone(),
            fmt_err(ours.median),
            fmt_err(honest.median),
            fmt_err(k3.median),
            fmt_err(k6.median),
            fmt_err(np.median),
        ]);
    }
    t.note("μ̄₂ misspecification factors follow the paper's point: when μ₄ = ∞ (Pareto α=2.5, t₃), no constant-factor μ̄₂ is obtainable even non-privately");
    t
}

/// `arb-mean` — Eq. (8): finite-σ² distributions where σ_max/σ_min style
/// assumptions are hopeless; compare against [BS19] and [KSU20] k=2.
pub fn arb_mean(cfg: &ExpConfig) -> Table {
    let mut t = Table::new(
        "arb-mean",
        "Arbitrary finite-variance distributions (Eq. 8 vs Eq. 6/7)",
        "with only μ₂ < ∞, ours needs no R/σ bounds and beats the range-calibrated baselines",
        vec![
            "distribution",
            "ours",
            "BS19 (R=1e4)",
            "KSU20 k=2 (honest)",
            "non-private",
        ],
    );
    let e = eps(0.2);
    let n = cfg.n(20_000);
    let master = cfg.master_for("arb-mean");
    // Finite μ₂, infinite μ₄: t-distributions with 2 < ν ≤ 4 and shifted
    // Pareto with 2 < α ≤ 4.
    let dists: Vec<(String, Box<dyn ContinuousDistribution>)> = vec![
        (
            "StudentT(2.5)".into(),
            Box::new(StudentT::new(2.5, 0.0, 1.0).unwrap()),
        ),
        (
            "Pareto(1, 3) − 10".into(),
            Box::new(Affine::shifted(Pareto::new(1.0, 3.0).unwrap(), -10.0).unwrap()),
        ),
    ];
    for (di, (label, dist)) in dists.iter().enumerate() {
        let d = dist.as_ref();
        let m = master.wrapping_add(di as u64 * 997);
        let mu2 = d.central_moment(2);
        let ours = stats_for(
            cfg,
            d,
            n,
            m,
            &UniversalMean,
            &EstimateParams::new(e).with_beta(0.1),
        );
        let bs = stats_for(
            cfg,
            d,
            n,
            m ^ 1,
            &Bs19TrimmedMean,
            &EstimateParams::new(e)
                .with("r", 1e4)
                .with("trim_frac", 0.05),
        );
        let ksu = stats_for(
            cfg,
            d,
            n,
            m ^ 2,
            &Ksu20Mean,
            &EstimateParams::new(e)
                .with("r", 1e4)
                .with("k", 2.0)
                .with("mu_k_bound", mu2),
        );
        let np = stats_for(cfg, d, n, m ^ 3, &NonPrivateMean, &EstimateParams::new(e));
        t.push_row(vec![
            label.clone(),
            fmt_err(ours.median),
            fmt_err(bs.median),
            fmt_err(ksu.median),
            fmt_err(np.median),
        ]);
    }
    t.note("both baselines receive generously honest inputs here; with the R=1e4 input replaced by a defensive 1e8 their noise grows proportionally (see naive-clip noise-floor test)");
    t
}
