//! The experiment driver.
//!
//! ```text
//! experiments <id>... | all   [--quick] [--trials N] [--seed S]
//!                             [--threads K] [--markdown] [--out DIR]
//!                             [--list]
//! ```
//!
//! Trials run on the deterministic parallel engine (DESIGN.md §5):
//! `--threads K` (equivalent to `UPDP_THREADS=K`) only changes wall
//! time, never a single output bit.
//!
//! Each experiment prints an aligned table; `--out DIR` additionally
//! writes `<id>.txt` (and `<id>.md` with `--markdown`) so EXPERIMENTS.md
//! is regenerable.

use std::io::Write;
use updp_experiments::{find, registry, ExpConfig};

fn usage() -> ! {
    eprintln!("usage: experiments <id>...|all [--quick] [--trials N] [--seed S] [--threads K] [--markdown] [--out DIR] [--list]");
    eprintln!("\navailable experiments:");
    for (id, desc, _) in registry() {
        eprintln!("  {id:18} {desc}");
    }
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }

    let mut cfg = ExpConfig::default();
    let mut ids: Vec<String> = Vec::new();
    let mut markdown = false;
    let mut out_dir: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--list" => {
                for (id, desc, _) in registry() {
                    println!("{id:18} {desc}");
                }
                return;
            }
            "--quick" => {
                let t = cfg.trials.min(ExpConfig::quick().trials);
                cfg.quick = true;
                cfg.trials = t;
            }
            "--markdown" => markdown = true,
            "--trials" => {
                i += 1;
                cfg.trials = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--seed" => {
                i += 1;
                cfg.seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--threads" => {
                i += 1;
                let k: usize = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                std::env::set_var(updp_core::parallel::THREADS_ENV, k.to_string());
            }
            "--out" => {
                i += 1;
                out_dir = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "all" => ids.extend(registry().iter().map(|(id, _, _)| id.to_string())),
            other if other.starts_with("--") => usage(),
            other => ids.push(other.to_string()),
        }
        i += 1;
    }
    if ids.is_empty() {
        usage();
    }
    ids.dedup();

    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).expect("create --out directory");
    }

    for id in &ids {
        let Some(f) = find(id) else {
            eprintln!("unknown experiment `{id}`");
            usage();
        };
        let started = std::time::Instant::now();
        let table = f(&cfg);
        let rendered = table.render();
        println!("{rendered}");
        println!(
            "  ({} trials/cell, seed {:#x}, {:.1}s)\n",
            cfg.trials,
            cfg.seed,
            started.elapsed().as_secs_f64()
        );
        if let Some(dir) = &out_dir {
            let mut fh = std::fs::File::create(format!("{dir}/{id}.txt")).expect("write table");
            fh.write_all(rendered.as_bytes()).expect("write table");
            if markdown {
                let mut mh =
                    std::fs::File::create(format!("{dir}/{id}.md")).expect("write markdown");
                mh.write_all(table.render_markdown().as_bytes())
                    .expect("write markdown");
            }
        }
    }
}
