//! Experiments for IQR estimation (Sections 4.1 and 6).
//!
//! `iqr-lb` (Thm 4.3), `iqr` (Thm 6.2 vs [DL09]).

use crate::config::ExpConfig;
use crate::table::Table;
use crate::trial::{estimator_trials, fmt_err, trial_map};
use updp_baselines::{Dl09Estimator, NonPrivateIqr};
use updp_core::privacy::{Delta, Epsilon};
use updp_dist::{Cauchy, ContinuousDistribution, Gaussian, GaussianMixture, LogNormal, Uniform};
use updp_statistical::{estimate_iqr_lower_bound, EstimateParams, UniversalIqr};

fn eps(v: f64) -> Epsilon {
    Epsilon::new(v).unwrap()
}

/// `iqr-lb` — Theorem 4.3: `ϕ(1/16)/4 ≤ IQR̲ ≤ IQR` on well- and
/// ill-behaved distributions alike.
pub fn iqr_lb(cfg: &ExpConfig) -> Table {
    let mut t = Table::new(
        "iqr-lb",
        "EstimateIQRLowerBound sandwich bound (Thm 4.3)",
        "ϕ(1/16)/4 ≤ IQR̲ ≤ IQR with probability ≥ 1 − β, for arbitrary P",
        vec![
            "distribution",
            "ϕ(1/16)/4",
            "med IQR̲",
            "IQR",
            "frac in bounds",
        ],
    );
    let n = cfg.n(8_000);
    let master = cfg.master_for("iqr-lb");
    let dists: Vec<(String, Box<dyn ContinuousDistribution>)> = vec![
        ("Gaussian(0,1)".into(), Box::new(Gaussian::standard())),
        (
            "Gaussian(0,1e6)".into(),
            Box::new(Gaussian::new(0.0, 1e6).unwrap()),
        ),
        (
            "Gaussian(0,1e-6)".into(),
            Box::new(Gaussian::new(0.0, 1e-6).unwrap()),
        ),
        (
            "Uniform(0,100)".into(),
            Box::new(Uniform::new(0.0, 100.0).unwrap()),
        ),
        (
            "LogNormal(0,1)".into(),
            Box::new(LogNormal::new(0.0, 1.0).unwrap()),
        ),
        (
            "spike mixture (1e-6)".into(),
            Box::new(GaussianMixture::ill_behaved_spike(1e-6).unwrap()),
        ),
    ];
    for (di, (label, dist)) in dists.iter().enumerate() {
        let d = dist.as_ref();
        let phi4 = d.phi(1.0 / 16.0) / 4.0;
        let iqr = d.iqr();
        let mut values = trial_map(cfg.trials, master, di as u64 * 1000, |_t, rng| {
            let data = d.sample_vec(rng, n);
            estimate_iqr_lower_bound(rng, &data, eps(1.0), 0.1).unwrap()
        });
        let in_bounds = values.iter().filter(|&&lb| lb >= phi4 && lb <= iqr).count();
        values.sort_by(f64::total_cmp);
        t.push_row(vec![
            label.clone(),
            fmt_err(phi4),
            fmt_err(values[values.len() / 2]),
            fmt_err(iqr),
            format!("{:.2}", in_bounds as f64 / cfg.trials as f64),
        ]);
    }
    t.note("the sandwich holds across 12 decades of scale and on the ill-behaved spike, with no inputs beyond (ε, β)");
    t
}

/// `iqr` — Theorem 6.2 vs [DL09]: `α ∝ 1/(εn)` against `α ∝ 1/(ε log n)`,
/// pure ε-DP against (ε, δ)-DP-with-refusals.
pub fn iqr(cfg: &ExpConfig) -> Table {
    let mut t = Table::new(
        "iqr",
        "IQR: universal ε-DP vs DL09 propose-test-release (Thm 6.2)",
        "ours converges at α ∝ 1/(εn) + 1/√n under pure DP; DL09 needs δ>0, refuses on small n, and its grid resolution only improves as 1/log n",
        vec![
            "distribution",
            "n",
            "ours (ε-DP)",
            "DL09 ((ε,δ)-DP)",
            "DL09 refusal rate",
            "non-private",
        ],
    );
    let e = eps(1.0);
    let delta = Delta::new(1e-6).unwrap();
    let master = cfg.master_for("iqr");
    let dists: Vec<(String, Box<dyn ContinuousDistribution>)> = vec![
        ("Gaussian(0,1)".into(), Box::new(Gaussian::standard())),
        (
            "LogNormal(0,1)".into(),
            Box::new(LogNormal::new(0.0, 1.0).unwrap()),
        ),
        (
            "Cauchy(0,1)".into(),
            Box::new(Cauchy::new(0.0, 1.0).unwrap()),
        ),
    ];
    for (di, (label, dist)) in dists.iter().enumerate() {
        let d = dist.as_ref();
        let truth = d.iqr();
        for (ni, &n_full) in [1_000usize, 10_000, 100_000].iter().enumerate() {
            let n = cfg.n(n_full);
            let m = master.wrapping_add((di * 10 + ni) as u64 * 7127);
            let sample = |rng: &mut rand::rngs::StdRng| d.sample_vec(rng, n);
            let ours = estimator_trials(
                cfg.trials,
                m,
                truth,
                &UniversalIqr,
                &EstimateParams::new(e).with_beta(0.1),
                sample,
            );
            let dl = estimator_trials(
                cfg.trials,
                m ^ 1,
                truth,
                &Dl09Estimator,
                &EstimateParams::new(e).with("delta", delta.get()),
                sample,
            );
            let np = estimator_trials(
                cfg.trials,
                m ^ 2,
                truth,
                &NonPrivateIqr,
                &EstimateParams::new(e),
                sample,
            );
            t.push_row(vec![
                label.clone(),
                n.to_string(),
                fmt_err(ours.median),
                fmt_err(dl.median),
                format!("{:.2}", 1.0 - dl.success_rate()),
                fmt_err(np.median),
            ]);
        }
    }
    t.note("ours shrinks ~linearly in n toward the sampling floor; DL09's error plateaus at its IQR/ln n grid cell, exactly the paper's α ∝ 1/(ε log n) vs 1/(εn) contrast");
    t.note("Cauchy row: mean/variance do not exist, yet both IQR estimators work — scale estimation needs no moments");
    t
}
