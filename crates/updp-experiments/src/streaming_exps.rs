//! Streaming ingestion sweep (DESIGN.md §8): estimator error
//! trajectory as records arrive.
//!
//! Every other experiment hands the estimator one fixed batch. The
//! serving stack, however, *streams*: records arrive, snapshots
//! succeed each other via [`PreparedDataset::append`], and each
//! estimate runs against the current prefix of the stream. This sweep
//! regenerates the paper's `1/(εn)`-flavoured convergence picture in
//! exactly that regime — per trial, one Gaussian stream is ingested
//! checkpoint by checkpoint through the merge-maintained append path
//! (the estimates between appends keep the caches warm, so every
//! append exercises the `O(n + k)` carry-forward), and the universal
//! mean / median / IQR error is recorded at each checkpoint.
//!
//! Determinism: a trial is a pure function of `(master, t)` — the
//! stream is sampled once up front and the three estimators consume
//! the trial generator in a fixed order at each checkpoint — so the
//! table is byte-identical at any thread count, like every other
//! experiment.

use crate::config::ExpConfig;
use crate::table::Table;
use crate::trial::{fmt_err, summarize, trial_map};
use updp_core::privacy::Epsilon;
use updp_dist::{ContinuousDistribution, Gaussian};
use updp_statistical::{
    EstimateParams, Estimator, PreparedDataset, UniversalIqr, UniversalMean, UniversalQuantile,
    DEFAULT_BETA,
};

/// Per-checkpoint absolute errors of one trial (mean, median, IQR);
/// `None` marks an estimator refusal at that checkpoint.
type CheckpointErrors = Vec<[Option<f64>; 3]>;

/// `streaming` — estimator error trajectory as records arrive through
/// the incremental append path.
pub fn streaming(cfg: &ExpConfig) -> Table {
    let mut t = Table::new(
        "streaming",
        "Streaming ingestion: universal-estimator error as records arrive",
        "errors shrink with the arrived prefix length n (the 1/(εn) regime of Thms 4.5/6.2) while every checkpoint transition is an O(n + k) merge-maintained append, never a rebuild",
        vec![
            "records arrived",
            "mean |err| (med)",
            "median |err| (med)",
            "iqr |err| (med)",
            "failures",
        ],
    );
    let dist = Gaussian::new(100.0, 5.0).expect("valid parameters");
    let total = cfg.n(65_536);
    // Doubling checkpoints ending at the full stream.
    let checkpoints: Vec<usize> = (0..8).map(|i| total >> (7 - i)).collect();
    let epsilon = Epsilon::new(0.5).expect("valid epsilon");
    let master = cfg.master_for("streaming");

    let mean = UniversalMean;
    let quantile = UniversalQuantile;
    let iqr = UniversalIqr;
    let mean_params = EstimateParams::new(epsilon).with_beta(DEFAULT_BETA);
    let mut median_params = EstimateParams::new(epsilon).with_beta(DEFAULT_BETA);
    median_params.set("q", 0.5);
    let iqr_params = EstimateParams::new(epsilon).with_beta(DEFAULT_BETA);
    let truths = [dist.mean(), dist.quantile(0.5), dist.iqr()];

    let per_trial: Vec<CheckpointErrors> = trial_map(cfg.trials, master, 0, |_t, rng| {
        let stream = dist.sample_vec(rng, total);
        let mut prepared = PreparedDataset::new(vec![stream[..checkpoints[0]].to_vec()]);
        let mut errors: CheckpointErrors = Vec::with_capacity(checkpoints.len());
        for (i, &n) in checkpoints.iter().enumerate() {
            let view = prepared.view();
            let row: Vec<Option<f64>> = [
                (&mean as &dyn Estimator, &mean_params),
                (&quantile as &dyn Estimator, &median_params),
                (&iqr as &dyn Estimator, &iqr_params),
            ]
            .iter()
            .zip(truths)
            .map(|((est, params), truth)| {
                est.estimate(rng, &view, params)
                    .ok()
                    .map(|release| (release.primary() - truth).abs())
            })
            .collect();
            errors.push([row[0], row[1], row[2]]);
            if let Some(&next) = checkpoints.get(i + 1) {
                // The next prefix arrives: merge-maintained append of
                // the delta (the estimates above left the caches warm).
                prepared = prepared.append(&[stream[n..next].to_vec()]);
                debug_assert_eq!(prepared.len(), next);
                debug_assert_eq!(prepared.version(), i as u64 + 1);
            }
        }
        errors
    });

    for (i, &n) in checkpoints.iter().enumerate() {
        let mut cells = vec![format!("{n}")];
        let mut failures_total = 0usize;
        for stat in 0..3 {
            let errors: Vec<f64> = per_trial
                .iter()
                .filter_map(|trial| trial[i][stat])
                .collect();
            let failures = cfg.trials - errors.len();
            failures_total += failures;
            cells.push(fmt_err(summarize(errors, cfg.trials, failures).median));
        }
        cells.push(format!("{failures_total}"));
        t.push_row(cells);
    }
    t.note(format!(
        "one Gaussian(100, 5) stream per trial, ingested via PreparedDataset::append between checkpoints (caches merge-maintained, DESIGN.md §8); ε = {} per estimate, β = {DEFAULT_BETA}",
        epsilon.get()
    ));
    t.note("append-maintained artifacts are bit-identical to fresh builds (pinned by the append-equivalence suite), so this trajectory equals batch re-estimation at each n — only cheaper");
    t
}
