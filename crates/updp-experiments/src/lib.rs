//! # updp-experiments — the paper's evaluation, regenerated
//!
//! *Universal Private Estimators* is a PODS theory paper with no
//! empirical section; its "results" are Table 1 (the assumption matrix)
//! and the theorem-by-theorem comparisons of §1.1. This crate turns each
//! of those claims into a measured experiment (see DESIGN.md §2 for the
//! full index) and regenerates every table via
//!
//! ```text
//! cargo run --release -p updp-experiments --bin experiments -- <id|all> [--quick]
//! ```
//!
//! EXPERIMENTS.md records claim-vs-measured for every table.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ablation_exps;
pub mod config;
pub mod empirical_exps;
pub mod iqr_exps;
pub mod mean_exps;
pub mod multivariate_exps;
pub mod streaming_exps;
pub mod table;
pub mod trial;
pub mod variance_exps;

pub use config::ExpConfig;
pub use table::Table;
pub use trial::{run_trials, ErrorStats};

/// An experiment entry point.
pub type ExpFn = fn(&ExpConfig) -> Table;

/// The experiment registry: `(id, description, entry point)`, in the
/// order they appear in DESIGN.md §2.
pub fn registry() -> Vec<(&'static str, &'static str, ExpFn)> {
    vec![
        (
            "table1",
            "assumption matrix: baselines vs broken A1/A2/A3",
            mean_exps::table1,
        ),
        (
            "radius",
            "Thm 3.1: private radius, 2x scale + log log coverage",
            empirical_exps::radius,
        ),
        (
            "range",
            "Thm 3.2: private range, 4γ width anywhere on the line",
            empirical_exps::range,
        ),
        (
            "emp-mean",
            "Thm 3.3: empirical mean optimality ratio ~ log log γ",
            empirical_exps::emp_mean,
        ),
        (
            "packing",
            "Thm 3.4: packing family, ratio grows as log log N",
            empirical_exps::packing,
        ),
        (
            "emp-quantile",
            "Thm 3.5: rank error ~ ε⁻¹ log γ",
            empirical_exps::emp_quantile,
        ),
        ("iqr-lb", "Thm 4.3: ϕ(1/16)/4 ≤ IQR̲ ≤ IQR", iqr_exps::iqr_lb),
        (
            "gauss-mean",
            "Thm 4.6: Gaussian mean vs KV18/CoinPress",
            mean_exps::gauss_mean,
        ),
        (
            "heavy-mean",
            "Thm 4.9: heavy tails vs KSU20 (mis)specified μ̄_k",
            mean_exps::heavy_mean,
        ),
        (
            "arb-mean",
            "Eq. 8: arbitrary finite-variance vs BS19/KSU20",
            mean_exps::arb_mean,
        ),
        (
            "gauss-var",
            "Thm 5.3: Gaussian variance across 12 decades of σ",
            variance_exps::gauss_var,
        ),
        (
            "heavy-var",
            "Thm 5.5: first heavy-tailed private variance",
            variance_exps::heavy_var,
        ),
        (
            "iqr",
            "Thm 6.2: IQR 1/(εn) vs DL09 1/(ε log n)",
            iqr_exps::iqr,
        ),
        (
            "ill-behaved",
            "§1: graceful log log(1/ϕ) degradation",
            ablation_exps::ill_behaved,
        ),
        (
            "ablate-subsample",
            "§4.2: m = εn subsample sweet spot",
            ablation_exps::ablate_subsample,
        ),
        (
            "ablate-bucket",
            "§4.1: private bucket vs oracle buckets",
            ablation_exps::ablate_bucket,
        ),
        (
            "multi-mean",
            "§1.2 extension: multivariate mean, d^{3/2} composition cost",
            multivariate_exps::multi_mean,
        ),
        (
            "streaming",
            "DESIGN §8: error trajectory as records arrive (merge-maintained appends)",
            streaming_exps::streaming,
        ),
    ]
}

/// Looks up one experiment by id.
pub fn find(id: &str) -> Option<ExpFn> {
    registry()
        .into_iter()
        .find(|(eid, _, _)| *eid == id)
        .map(|(_, _, f)| f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique() {
        let ids: Vec<&str> = registry().iter().map(|(id, _, _)| *id).collect();
        let mut dedup = ids.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(ids.len(), dedup.len());
        assert_eq!(ids.len(), 18);
    }

    #[test]
    fn find_works() {
        assert!(find("gauss-mean").is_some());
        assert!(find("nope").is_none());
    }

    // Smoke-run the cheapest experiments end to end in quick mode so the
    // harness itself is covered by `cargo test`.
    #[test]
    fn smoke_emp_mean() {
        let cfg = ExpConfig {
            trials: 4,
            quick: true,
            ..ExpConfig::default()
        };
        let t = empirical_exps::emp_mean(&cfg);
        assert_eq!(t.id, "emp-mean");
        assert!(!t.rows.is_empty());
        assert!(t.render().contains("emp-mean"));
    }

    #[test]
    fn smoke_iqr_lb() {
        let cfg = ExpConfig {
            trials: 4,
            quick: true,
            ..ExpConfig::default()
        };
        let t = iqr_exps::iqr_lb(&cfg);
        assert_eq!(t.rows.len(), 6);
    }

    #[test]
    fn smoke_streaming() {
        let cfg = ExpConfig {
            trials: 3,
            quick: true,
            ..ExpConfig::default()
        };
        let t = streaming_exps::streaming(&cfg);
        assert_eq!(t.id, "streaming");
        assert_eq!(t.rows.len(), 8, "one row per checkpoint");
        // Quick mode streams 65_536/8 = 8_192 records; the first
        // doubling checkpoint is 8_192 >> 7 = 64.
        assert_eq!(t.rows[0][0], "64");
        assert_eq!(t.rows[7][0], "8192");
    }

    #[test]
    fn smoke_ablate_bucket() {
        let cfg = ExpConfig {
            trials: 3,
            quick: true,
            ..ExpConfig::default()
        };
        let t = ablation_exps::ablate_bucket(&cfg);
        assert_eq!(t.rows.len(), 5);
    }
}
