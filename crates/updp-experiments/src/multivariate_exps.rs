//! Experiment for the §1.2 multivariate extension.
//!
//! `multi-mean`: coordinate-wise composition pays `Õ(d/(εn))` per
//! coordinate — the suboptimal-but-universal d-dependence the paper
//! describes (optimal `Õ(d/(εn))` in ℓ₂ is its open problem #1).

use crate::config::ExpConfig;
use crate::table::Table;
use crate::trial::{fmt_err, trial_map};
use updp_core::privacy::Epsilon;
use updp_dist::{ContinuousDistribution, Gaussian};
use updp_statistical::multivariate::{estimate_mean_multivariate, l2_distance};

fn eps(v: f64) -> Epsilon {
    Epsilon::new(v).unwrap()
}

/// `multi-mean` — ℓ₂ error of the coordinate-wise universal estimator
/// as a function of dimension, against the d^{3/2}/(εn) reference curve.
pub fn multi_mean(cfg: &ExpConfig) -> Table {
    let mut t = Table::new(
        "multi-mean",
        "Multivariate mean via coordinate-wise composition (§1.2 extension)",
        "per-coordinate budget ε/d keeps universality; ℓ₂ privacy term grows ~d^{3/2}/(εn) (optimal d/(εn) is the paper's open problem)",
        vec![
            "d",
            "med ℓ₂ err",
            "med ℓ∞ err",
            "d^{3/2} reference (scaled)",
            "frac coords within 5σ/√n+noise",
        ],
    );
    let n = cfg.n(16_000);
    let e = eps(1.0);
    let master = cfg.master_for("multi-mean");
    let mut first_l2: Option<f64> = None;
    for (di, &d) in [1usize, 2, 4, 8, 16].iter().enumerate() {
        // Mixed scales per coordinate to keep the universality stress on.
        let dists: Vec<Gaussian> = (0..d)
            .map(|j| Gaussian::new((j as f64) * 100.0, 10f64.powi((j % 3) as i32 - 1)).unwrap())
            .collect();
        let truth: Vec<f64> = dists.iter().map(|g| g.mu()).collect();
        let per_trial = trial_map(cfg.trials.min(24), master, di as u64 * 1000, |_t, rng| {
            let rows: Vec<Vec<f64>> = (0..n)
                .map(|_| dists.iter().map(|g| g.sample(rng)).collect())
                .collect();
            let r = estimate_mean_multivariate(rng, &rows, e, 0.1).unwrap();
            let l2 = l2_distance(&r.estimate, &truth);
            let linf = r
                .estimate
                .iter()
                .zip(&truth)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max);
            let good = dists
                .iter()
                .enumerate()
                .filter(|(j, g)| {
                    let tol = 5.0 * g.sigma() * (d as f64) / (e.get() * (n as f64).sqrt());
                    (r.estimate[*j] - g.mu()).abs() < tol.max(5.0 * g.sigma() / (n as f64).sqrt())
                })
                .count();
            (l2, linf, good)
        });
        let mut l2s: Vec<f64> = per_trial.iter().map(|&(l2, _, _)| l2).collect();
        let mut linfs: Vec<f64> = per_trial.iter().map(|&(_, linf, _)| linf).collect();
        let good_coords: usize = per_trial.iter().map(|&(_, _, g)| g).sum();
        let total_coords = per_trial.len() * d;
        l2s.sort_by(f64::total_cmp);
        linfs.sort_by(f64::total_cmp);
        let med_l2 = l2s[l2s.len() / 2];
        if first_l2.is_none() {
            first_l2 = Some(med_l2);
        }
        let reference = first_l2.unwrap() * (d as f64).powf(1.5);
        t.push_row(vec![
            d.to_string(),
            fmt_err(med_l2),
            fmt_err(linfs[linfs.len() / 2]),
            fmt_err(reference),
            format!("{:.2}", good_coords as f64 / total_coords.max(1) as f64),
        ]);
    }
    t.note("coordinates live at locations 0..1500 with σ spanning 0.1–10: universality per coordinate, no per-coordinate configuration");
    t.note("ℓ₂ error grows at least like the d^{3/2} reference and faster once ε/d drops below the per-coordinate Theorem 4.5 sample requirement (visible at d=16) — exactly the suboptimal d-dependence the paper names as open problem #1");
    t
}
