//! Experiments for the empirical-setting theorems (Section 3).
//!
//! `radius` (Thm 3.1), `range` (Thm 3.2), `emp-mean` (Thm 3.3),
//! `packing` (Thm 3.4), `emp-quantile` (Thm 3.5).

use crate::config::ExpConfig;
use crate::table::Table;
use crate::trial::{fmt_err, trial_map};
use updp_core::privacy::Epsilon;
use updp_empirical::{
    infinite_domain_mean, infinite_domain_quantile, infinite_domain_radius, infinite_domain_range,
    rank_error, PackingFamily, SortedInts,
};

fn eps(v: f64) -> Epsilon {
    Epsilon::new(v).unwrap()
}

fn median(mut v: Vec<f64>) -> f64 {
    assert!(!v.is_empty());
    v.sort_by(f64::total_cmp);
    v[v.len() / 2]
}

/// A spread dataset of `n` integers covering exactly `[−rad, rad]`.
fn spread_dataset(n: usize, rad: i64) -> SortedInts {
    let values: Vec<i64> = (0..n)
        .map(|i| -rad + ((2 * rad) as i128 * i as i128 / (n - 1) as i128) as i64)
        .collect();
    SortedInts::new(values).unwrap()
}

/// `radius` — Theorem 3.1: `r̃ad ≤ 2·rad(D)` while covering all but
/// `O(ε⁻¹ log log rad)` points, across 9 orders of magnitude of radius.
pub fn radius(cfg: &ExpConfig) -> Table {
    let mut t = Table::new(
        "radius",
        "InfiniteDomainRadius across radius magnitudes (Thm 3.1)",
        "r̃ad(D) ≤ 2·rad(D) and |D ∖ [−r̃ad, r̃ad]| = O(ε⁻¹·log log rad(D))",
        vec![
            "rad(D)",
            "eps",
            "med r̃ad/rad",
            "max r̃ad/rad",
            "med #outside",
            "theory O(ε⁻¹ loglog rad)",
        ],
    );
    let n = cfg.n(4000);
    let master = cfg.master_for("radius");
    for (wi, &log2rad) in [8u32, 20, 32, 40].iter().enumerate() {
        let rad = 1i64 << log2rad;
        let data = spread_dataset(n, rad);
        for (ei, &e) in [0.5f64, 2.0].iter().enumerate() {
            let epsilon = eps(e);
            let (ratios, outside): (Vec<f64>, Vec<f64>) = trial_map(
                cfg.trials,
                master,
                (wi * 100 + ei * 10) as u64 * 1000,
                |_t, rng| {
                    let r = infinite_domain_radius(rng, &data, epsilon, 0.1);
                    (
                        r as f64 / rad as f64,
                        (n - data.count_within_radius(r)) as f64,
                    )
                },
            )
            .into_iter()
            .unzip();
            let max_ratio = ratios.iter().cloned().fold(0.0, f64::max);
            let theory = (1.0 / e) * ((log2rad as f64) * std::f64::consts::LN_2).ln();
            t.push_row(vec![
                format!("2^{log2rad}"),
                format!("{e}"),
                fmt_err(median(ratios)),
                fmt_err(max_ratio),
                fmt_err(median(outside)),
                fmt_err(theory),
            ]);
        }
    }
    t.note("ratio ≤ 2 confirms the scale guarantee; #outside grows only with log log rad, not rad");
    t
}

/// `range` — Theorem 3.2: `|R̃(D)| ≤ 4·γ(D)` regardless of how far the
/// data sits from the origin.
pub fn range(cfg: &ExpConfig) -> Table {
    let mut t = Table::new(
        "range",
        "InfiniteDomainRange location/scale tracking (Thm 3.2)",
        "|R̃(D)| ≤ 4·γ(D) and O(ε⁻¹ log log γ) clipped, independent of the data's location",
        vec!["location", "γ(D)", "med |R̃|/γ", "frac ≤ 4γ", "med #clipped"],
    );
    let n = cfg.n(4000);
    let master = cfg.master_for("range");
    let scenarios: Vec<(i64, i64)> = vec![
        (0, 100),
        (0, 1_000_000),
        (1_000_000_000, 100),
        (-1_000_000_000_000, 1_000_000),
    ];
    for (si, &(loc, gamma)) in scenarios.iter().enumerate() {
        let values: Vec<i64> = (0..n)
            .map(|i| loc + (gamma as i128 * i as i128 / (n - 1) as i128) as i64)
            .collect();
        let data = SortedInts::new(values).unwrap();
        let (ratios, clipped): (Vec<f64>, Vec<f64>) =
            trial_map(cfg.trials, master, si as u64 * 1000, |_t, rng| {
                let r = infinite_domain_range(rng, &data, eps(1.0), 0.1).unwrap();
                (
                    r.width() as f64 / gamma as f64,
                    (n - data.count_in(r.lo, r.hi)) as f64,
                )
            })
            .into_iter()
            .unzip();
        let ok = ratios.iter().filter(|&&x| x <= 4.0).count() as f64 / ratios.len() as f64;
        t.push_row(vec![
            format!("{loc:e}"),
            format!("{gamma:e}"),
            fmt_err(median(ratios)),
            format!("{ok:.2}"),
            fmt_err(median(clipped)),
        ]);
    }
    t.note("the 10^12-away cluster costs nothing extra: the range tracks location privately");
    t
}

/// `emp-mean` — Theorem 3.3: error `O((γ/(εn))·log log γ)`; the measured
/// ratio `err·εn/γ` is the achieved optimality ratio, which must stay
/// ~log log γ (compare with the `O(log N)` ratio of prior art).
pub fn emp_mean(cfg: &ExpConfig) -> Table {
    let mut t = Table::new(
        "emp-mean",
        "InfiniteDomainMean instance-optimality (Thm 3.3)",
        "error = O((γ(D)/(εn))·log log γ(D)): the optimality ratio err·εn/γ grows double-logarithmically",
        vec![
            "γ(D)",
            "med |μ̃−μ|",
            "ratio err·εn/γ",
            "log log γ",
            "log γ (prior art ratio)",
        ],
    );
    let n = cfg.n(4000);
    let e = eps(1.0);
    let master = cfg.master_for("emp-mean");
    for (gi, &log2gamma) in [8u32, 16, 24, 32, 40].iter().enumerate() {
        let gamma = 1i64 << log2gamma;
        // Adversarial bimodal data: half at 0, half at γ.
        let mut values = vec![0i64; n / 2];
        values.extend(vec![gamma; n - n / 2]);
        let data = SortedInts::new(values).unwrap();
        let truth = data.mean();
        let errs = trial_map(cfg.trials, master, gi as u64 * 1000, |_t, rng| {
            let r = infinite_domain_mean(rng, &data, e, 0.1).unwrap();
            (r.estimate - truth).abs()
        });
        let med = median(errs);
        let ratio = med * e.get() * n as f64 / gamma as f64;
        let lg = (log2gamma as f64) * std::f64::consts::LN_2;
        t.push_row(vec![
            format!("2^{log2gamma}"),
            fmt_err(med),
            fmt_err(ratio),
            fmt_err(lg.ln()),
            fmt_err(lg),
        ]);
    }
    t.note("ratio column tracks log log γ (4th column), exponentially below the log γ ratio of [HLY21]-style finite-domain estimators");
    t
}

/// `packing` — Theorem 3.4: on the proof's packing family over `[N]`, the
/// worst-case achieved ratio grows like `log log N` — matching the lower
/// bound, i.e. the estimator is worst-case optimal among
/// instance-optimal mechanisms.
pub fn packing(cfg: &ExpConfig) -> Table {
    let mut t = Table::new(
        "packing",
        "Optimality ratio on the Thm 3.4 packing family",
        "for any mechanism, max_i err(D(i))·εn/γ(D(i)) = Ω(log log N); ours achieves O(log log N)",
        vec![
            "N",
            "family size",
            "max_i ratio",
            "lower bound ln log2(N)/3",
        ],
    );
    let n = cfg.n(2000);
    let e = eps(1.0);
    let master = cfg.master_for("packing");
    for (ni, &log2n) in [8u32, 16, 32, 48].iter().enumerate() {
        let family = PackingFamily::new(log2n, n, e).unwrap();
        let mut worst: f64 = 0.0;
        // Sample the family at a few representative exponents to bound
        // runtime (the ratio is near-constant across i by design).
        let picks: Vec<u32> = vec![1, log2n / 2, log2n.saturating_sub(14).max(1), log2n]
            .into_iter()
            .filter(|&i| i >= 1 && i <= log2n)
            .collect();
        for &i in &picks {
            let data = family.dataset(i).unwrap();
            let truth = family.true_mean(i);
            let gamma = data.width().max(1) as f64;
            let errs = trial_map(
                cfg.trials,
                master,
                (ni * 100 + i as usize) as u64 * 1000,
                |_t, rng| {
                    let r = infinite_domain_mean(rng, &data, e, 0.1).unwrap();
                    (r.estimate - truth).abs()
                },
            );
            let ratio = median(errs) * e.get() * n as f64 / gamma;
            worst = worst.max(ratio);
        }
        let lower = (log2n as f64).ln() / 3.0;
        t.push_row(vec![
            format!("2^{log2n}"),
            format!("{}", family.family_size()),
            fmt_err(worst),
            fmt_err(lower),
        ]);
    }
    t.note(
        "achieved ratio grows with log log N and sits above the Thm 3.4 lower bound, as required",
    );
    t
}

/// `emp-quantile` — Theorem 3.5: rank error `O(ε⁻¹ log γ(D))` across
/// width magnitudes and quantile positions.
pub fn emp_quantile(cfg: &ExpConfig) -> Table {
    let mut t = Table::new(
        "emp-quantile",
        "InfiniteDomainQuantile rank error (Thm 3.5)",
        "rank error t = O(ε⁻¹·log γ(D)) — scales with the data's own width, not a domain bound",
        vec![
            "γ(D)",
            "τ/n",
            "med rank err",
            "p90 rank err",
            "theory ε⁻¹ ln γ",
        ],
    );
    let n = cfg.n(4000);
    let e = eps(1.0);
    let master = cfg.master_for("emp-quantile");
    for (gi, &log2gamma) in [10u32, 24, 40].iter().enumerate() {
        let gamma = 1i64 << log2gamma;
        let data = spread_dataset(n, gamma / 2);
        for (ti, &frac) in [0.25f64, 0.5, 0.9].iter().enumerate() {
            let tau = ((n as f64 * frac) as usize).max(1);
            let mut errs = trial_map(
                cfg.trials,
                master,
                (gi * 10 + ti) as u64 * 1000,
                |_t, rng| {
                    let r = infinite_domain_quantile(rng, &data, tau, e, 0.1).unwrap();
                    rank_error(&data, tau, r.estimate) as f64
                },
            );
            errs.sort_by(f64::total_cmp);
            let med = errs[errs.len() / 2];
            // saturating_sub keeps --trials 1 from wrapping to
            // usize::MAX while picking the same index as the historical
            // `- 1` for every len ≥ 2.
            let p90 = errs[((errs.len() as f64 * 0.9) as usize).saturating_sub(1)];
            let theory = (1.0 / e.get()) * (log2gamma as f64) * std::f64::consts::LN_2;
            t.push_row(vec![
                format!("2^{log2gamma}"),
                format!("{frac}"),
                fmt_err(med),
                fmt_err(p90),
                fmt_err(theory),
            ]);
        }
    }
    t.note("rank error grows linearly in log γ (columns 3–4 track column 5), matching the interior-point lower bound");
    t
}
