//! Plain-text experiment tables.
//!
//! Each experiment returns a [`Table`]; the `experiments` binary renders
//! them aligned for the terminal and EXPERIMENTS.md records the same rows
//! in markdown. Keeping rendering centralized guarantees the published
//! tables are regenerable byte-for-byte.

use serde::Serialize;

/// A rendered experiment: title, claim under test, columns, rows, notes.
#[derive(Debug, Clone, Serialize)]
pub struct Table {
    /// Experiment id (e.g. `gauss-mean`).
    pub id: String,
    /// Human title.
    pub title: String,
    /// The paper claim this table checks.
    pub claim: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row cells (already formatted).
    pub rows: Vec<Vec<String>>,
    /// Free-form observations appended below the table.
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        claim: impl Into<String>,
        headers: Vec<&str>,
    ) -> Self {
        Table {
            id: id.into(),
            title: title.into(),
            claim: claim.into(),
            headers: headers.into_iter().map(String::from).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row; must match the header arity.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity mismatch in table {}",
            self.id
        );
        self.rows.push(cells);
    }

    /// Appends an observation note.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Renders as an aligned plain-text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} [{}]\n", self.title, self.id));
        out.push_str(&format!("   claim: {}\n\n", self.claim));
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::from("  ");
            for (i, cell) in cells.iter().enumerate() {
                line.push_str(&format!("{:width$}  ", cell, width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len() + 2;
        out.push_str(&"-".repeat(total.min(120)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("  * {note}\n"));
        }
        out
    }

    /// Renders as a GitHub-flavored markdown table.
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### `{}` — {}\n\n", self.id, self.title));
        out.push_str(&format!("**Claim.** {}\n\n", self.claim));
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(self.headers.len())));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out.push('\n');
        for note in &self.notes {
            out.push_str(&format!("- {note}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("x", "Test", "claim text", vec!["n", "err"]);
        t.push_row(vec!["100".into(), "0.5".into()]);
        t.push_row(vec!["100000".into(), "0.001".into()]);
        t.note("a note");
        t
    }

    #[test]
    fn render_contains_everything() {
        let s = sample().render();
        assert!(s.contains("Test"));
        assert!(s.contains("claim text"));
        assert!(s.contains("100000"));
        assert!(s.contains("a note"));
    }

    #[test]
    fn columns_are_aligned() {
        let s = sample().render();
        let lines: Vec<&str> = s.lines().collect();
        // header line and the wide row should place "err"/"0.001" at the
        // same column.
        let header = lines.iter().find(|l| l.contains("err")).unwrap();
        let wide = lines.iter().find(|l| l.contains("0.001")).unwrap();
        assert_eq!(
            header.find("err").unwrap(),
            wide.find("0.001").unwrap(),
            "misaligned:\n{s}"
        );
    }

    #[test]
    fn markdown_has_separator() {
        let s = sample().render_markdown();
        assert!(s.contains("|---|---|"));
        assert!(s.starts_with("### `x`"));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new("x", "T", "c", vec!["a", "b"]);
        t.push_row(vec!["1".into()]);
    }
}
