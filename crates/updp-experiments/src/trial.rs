//! Trial runner: repeated estimator executions and robust error summary.
//!
//! Every utility statement in the paper holds "with constant success
//! probability" (footnote 4), so experiments report *median* and
//! *90th-percentile* absolute error over many trials — the mean would be
//! polluted by the designed-in failure probability β. Failures
//! (mechanism refusals, e.g. [DL09]'s PTR) are counted, not averaged in.

use serde::Serialize;
use updp_core::error::Result;
use updp_core::rng::{child_seed, seeded};

/// Robust summary of absolute errors over repeated trials.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ErrorStats {
    /// Median absolute error among successful trials.
    pub median: f64,
    /// 90th-percentile absolute error among successful trials.
    pub p90: f64,
    /// Mean absolute error among successful trials (reported for
    /// completeness; interpret with care under heavy-tailed noise).
    pub mean: f64,
    /// Number of trials attempted.
    pub trials: usize,
    /// Number of trials in which the mechanism declined or errored.
    pub failures: usize,
}

impl ErrorStats {
    /// Fraction of trials that produced an estimate.
    pub fn success_rate(&self) -> f64 {
        (self.trials - self.failures) as f64 / self.trials.max(1) as f64
    }
}

/// Runs `trials` independent executions of `f` (each with a fresh child
/// RNG of `master`), comparing against `truth`, and summarizes the
/// absolute errors.
///
/// `f` returns the *estimate*; `Err` counts as a failure.
pub fn run_trials<F>(trials: usize, master: u64, truth: f64, mut f: F) -> ErrorStats
where
    F: FnMut(&mut rand::rngs::StdRng) -> Result<f64>,
{
    let mut errors: Vec<f64> = Vec::with_capacity(trials);
    let mut failures = 0usize;
    for t in 0..trials {
        let mut rng = seeded(child_seed(master, t as u64));
        match f(&mut rng) {
            Ok(est) => errors.push((est - truth).abs()),
            Err(_) => failures += 1,
        }
    }
    summarize(errors, trials, failures)
}

/// Summarizes a raw error vector.
pub fn summarize(mut errors: Vec<f64>, trials: usize, failures: usize) -> ErrorStats {
    if errors.is_empty() {
        return ErrorStats {
            median: f64::NAN,
            p90: f64::NAN,
            mean: f64::NAN,
            trials,
            failures,
        };
    }
    errors.sort_by(f64::total_cmp);
    let pick = |q: f64| errors[((errors.len() as f64 - 1.0) * q).round() as usize];
    ErrorStats {
        median: pick(0.5),
        p90: pick(0.9),
        mean: errors.iter().sum::<f64>() / errors.len() as f64,
        trials,
        failures,
    }
}

/// Formats an error value compactly for tables (3 significant digits,
/// scientific when needed).
pub fn fmt_err(v: f64) -> String {
    if v.is_nan() {
        return "-".into();
    }
    if v == 0.0 {
        return "0".into();
    }
    let a = v.abs();
    if (0.001..10_000.0).contains(&a) {
        format!("{v:.4}")
    } else {
        format!("{v:.2e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarize_quantiles() {
        let errors: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = summarize(errors, 100, 0);
        // index round((100−1)·0.5) = 50 ⇒ the 51st order statistic.
        assert_eq!(s.median, 51.0);
        assert_eq!(s.p90, 90.0);
        assert!((s.mean - 50.5).abs() < 1e-12);
        assert_eq!(s.success_rate(), 1.0);
    }

    #[test]
    fn all_failures_yield_nan() {
        let s = summarize(vec![], 10, 10);
        assert!(s.median.is_nan());
        assert_eq!(s.success_rate(), 0.0);
    }

    #[test]
    fn run_trials_counts_failures() {
        let mut flip = false;
        let s = run_trials(10, 7, 0.0, |_rng| {
            flip = !flip;
            if flip {
                Ok(1.0)
            } else {
                Err(updp_core::UpdpError::EmptyDataset)
            }
        });
        assert_eq!(s.failures, 5);
        assert_eq!(s.median, 1.0);
    }

    #[test]
    fn run_trials_is_deterministic() {
        let f = |rng: &mut rand::rngs::StdRng| -> Result<f64> {
            use rand::Rng;
            Ok(rng.gen::<f64>())
        };
        let a = run_trials(20, 42, 0.0, f);
        let b = run_trials(20, 42, 0.0, f);
        assert_eq!(a, b);
    }

    #[test]
    fn fmt_err_ranges() {
        assert_eq!(fmt_err(f64::NAN), "-");
        assert_eq!(fmt_err(0.0), "0");
        assert_eq!(fmt_err(1.23456), "1.2346");
        assert!(fmt_err(1e-9).contains('e'));
        assert!(fmt_err(1e9).contains('e'));
    }
}
