//! Trial runner: repeated estimator executions and robust error summary.
//!
//! Every utility statement in the paper holds "with constant success
//! probability" (footnote 4), so experiments report *median* and
//! *90th-percentile* absolute error over many trials — the mean would be
//! polluted by the designed-in failure probability β. Failures
//! (mechanism refusals, e.g. [DL09]'s PTR) are counted, not averaged in.
//!
//! # Parallel execution (DESIGN.md §5)
//!
//! Trials run on `updp_core::parallel`'s deterministic work-stealing
//! map: trial `t` is a pure function of `(master, t)` under §1.1's
//! child-seed scheme, and results are collected **by trial index**, so
//! [`ErrorStats`] is bit-identical at any thread count (`UPDP_THREADS`
//! contract) and identical to the historical serial loop.

use serde::Serialize;
use updp_core::error::Result;
use updp_core::parallel::par_map_indexed;
use updp_core::rng::{child_seed, seeded};
use updp_statistical::{DataView, EstimateParams, Estimator};

/// Robust summary of absolute errors over repeated trials.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ErrorStats {
    /// Median absolute error among successful trials.
    pub median: f64,
    /// 90th-percentile absolute error among successful trials.
    pub p90: f64,
    /// Mean absolute error among successful trials (reported for
    /// completeness; interpret with care under heavy-tailed noise).
    pub mean: f64,
    /// Number of trials attempted.
    pub trials: usize,
    /// Number of trials in which the mechanism declined or errored.
    pub failures: usize,
}

impl ErrorStats {
    /// Fraction of trials that produced an estimate.
    pub fn success_rate(&self) -> f64 {
        (self.trials - self.failures) as f64 / self.trials.max(1) as f64
    }
}

/// Runs `trials` independent executions of `f` — in parallel, collected
/// by trial index — where trial `t` receives a fresh RNG seeded with
/// `child_seed(master, offset + t)`, and returns the per-trial results
/// in trial order.
///
/// This is the engine every experiment loop routes through: the
/// `offset` parameter preserves the historical per-cell seed layouts
/// (e.g. `di·1000 + trial`) so outputs match the former hand-rolled
/// serial loops bit for bit.
pub fn trial_map<T, F>(trials: usize, master: u64, offset: u64, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64, &mut rand::rngs::StdRng) -> T + Sync,
{
    par_map_indexed(trials, |t| {
        let mut rng = seeded(child_seed(master, offset + t as u64));
        f(t as u64, &mut rng)
    })
}

/// Runs `trials` independent executions of `f` (each with a fresh child
/// RNG of `master`), comparing against `truth`, and summarizes the
/// absolute errors.
///
/// `f` returns the *estimate*; `Err` counts as a failure. Trials run in
/// parallel (see [`trial_map`]); the returned [`ErrorStats`] is
/// bit-identical at any `UPDP_THREADS` setting.
pub fn run_trials<F>(trials: usize, master: u64, truth: f64, f: F) -> ErrorStats
where
    F: Fn(&mut rand::rngs::StdRng) -> Result<f64> + Sync,
{
    let outcomes = trial_map(trials, master, 0, |_t, rng| {
        f(rng).map(|est| (est - truth).abs())
    });
    let mut errors: Vec<f64> = Vec::with_capacity(trials);
    let mut failures = 0usize;
    for outcome in outcomes {
        match outcome {
            Ok(err) => errors.push(err),
            Err(_) => failures += 1,
        }
    }
    summarize(errors, trials, failures)
}

/// Runs `trials` independent executions of an [`Estimator`] (the
/// workspace-wide trait — universal estimators and Table 1 baselines
/// alike), sampling a fresh dataset per trial with `sample`, and
/// summarizes the absolute errors against `truth`.
///
/// This replaces the per-experiment closure glue: experiments name an
/// estimator and its [`EstimateParams`] instead of hand-wiring each
/// free function. Trait dispatch is bit-identical to the direct free
/// function on the same seed (the equivalence suite pins this), so
/// routing an experiment through here never changes its table.
pub fn estimator_trials<F>(
    trials: usize,
    master: u64,
    truth: f64,
    estimator: &dyn Estimator,
    params: &EstimateParams,
    sample: F,
) -> ErrorStats
where
    F: Fn(&mut rand::rngs::StdRng) -> Vec<f64> + Sync,
{
    run_trials(trials, master, truth, |rng| {
        let data = sample(rng);
        estimator
            .estimate(rng, &DataView::of(&data), params)
            .map(|release| release.primary())
    })
}

/// Summarizes a raw error vector.
///
/// The error vector is only ever queried at two order statistics
/// (median and p90), so those are picked with `select_nth_unstable_by`
/// — `O(n)` instead of a full `O(n log n)` sort. The mean is summed in
/// the caller's (trial) order, before any reordering, keeping it a pure
/// function of the input vector.
pub fn summarize(mut errors: Vec<f64>, trials: usize, failures: usize) -> ErrorStats {
    if errors.is_empty() {
        return ErrorStats {
            median: f64::NAN,
            p90: f64::NAN,
            mean: f64::NAN,
            trials,
            failures,
        };
    }
    let len = errors.len();
    let mean = errors.iter().sum::<f64>() / len as f64;
    let rank = |q: f64| ((len as f64 - 1.0) * q).round() as usize;
    let (i50, i90) = (rank(0.5), rank(0.9));
    let (below_p90, p90_ref, _) = errors.select_nth_unstable_by(i90, f64::total_cmp);
    let p90 = *p90_ref;
    let median = if i50 == i90 {
        p90
    } else {
        *below_p90.select_nth_unstable_by(i50, f64::total_cmp).1
    };
    ErrorStats {
        median,
        p90,
        mean,
        trials,
        failures,
    }
}

/// Formats an error value compactly for tables (3 significant digits,
/// scientific when needed).
pub fn fmt_err(v: f64) -> String {
    if v.is_nan() {
        return "-".into();
    }
    // updp-lint: allow(R5, reason="table formatting: exactly-zero errors print as `0`; near-zero errors must keep their scientific form to stay machine-diffable")
    if v == 0.0 {
        return "0".into();
    }
    let a = v.abs();
    if (0.001..10_000.0).contains(&a) {
        format!("{v:.4}")
    } else {
        format!("{v:.2e}")
    }
}

#[cfg(test)]
// Exact `==` on f64 is deliberate in tests: they pin bit-identical
// outputs (DESIGN.md §5), so an epsilon tolerance would weaken them.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn summarize_quantiles() {
        let errors: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = summarize(errors, 100, 0);
        // index round((100−1)·0.5) = 50 ⇒ the 51st order statistic.
        assert_eq!(s.median, 51.0);
        assert_eq!(s.p90, 90.0);
        assert!((s.mean - 50.5).abs() < 1e-12);
        assert_eq!(s.success_rate(), 1.0);
    }

    #[test]
    fn all_failures_yield_nan() {
        let s = summarize(vec![], 10, 10);
        assert!(s.median.is_nan());
        assert_eq!(s.success_rate(), 0.0);
    }

    #[test]
    fn run_trials_counts_failures() {
        // Failures determined per trial index (via trial_map, which
        // passes it), half the trials fail.
        let outcomes = trial_map(10, 7, 0, |t, _rng| -> Result<f64> {
            if t % 2 == 0 {
                Ok(1.0)
            } else {
                Err(updp_core::UpdpError::EmptyDataset)
            }
        });
        let mut errors = Vec::new();
        let mut failures = 0;
        for o in outcomes {
            match o {
                Ok(v) => errors.push(v),
                Err(_) => failures += 1,
            }
        }
        let s = summarize(errors, 10, failures);
        assert_eq!(s.failures, 5);
        assert_eq!(s.median, 1.0);

        // And through run_trials itself: an always-failing closure.
        let s = run_trials(10, 7, 0.0, |_rng| -> Result<f64> {
            Err(updp_core::UpdpError::EmptyDataset)
        });
        assert_eq!(s.failures, 10);
        assert!(s.median.is_nan());
    }

    #[test]
    fn trial_map_results_are_in_trial_order_at_any_thread_count() {
        use rand::Rng;
        let f = |t: u64, rng: &mut rand::rngs::StdRng| (t, rng.gen::<u64>());
        let serial: Vec<(u64, u64)> = (0..33)
            .map(|t| {
                let mut rng = seeded(child_seed(9, 100 + t));
                f(t, &mut rng)
            })
            .collect();
        let par = trial_map(33, 9, 100, f);
        assert_eq!(par, serial);
        for (t, (idx, _)) in par.iter().enumerate() {
            assert_eq!(*idx, t as u64);
        }
    }

    #[test]
    fn summarize_matches_full_sort_reference() {
        use rand::Rng;
        let mut rng = seeded(5);
        for len in [1usize, 2, 3, 7, 60, 101] {
            let errors: Vec<f64> = (0..len).map(|_| rng.gen::<f64>() * 10.0).collect();
            let s = summarize(errors.clone(), len, 0);
            let mut sorted = errors.clone();
            sorted.sort_by(f64::total_cmp);
            let pick = |q: f64| sorted[((len as f64 - 1.0) * q).round() as usize];
            assert_eq!(s.median, pick(0.5), "median at len {len}");
            assert_eq!(s.p90, pick(0.9), "p90 at len {len}");
            let mean = errors.iter().sum::<f64>() / len as f64;
            assert_eq!(s.mean, mean, "mean at len {len}");
        }
    }

    #[test]
    fn run_trials_is_deterministic() {
        let f = |rng: &mut rand::rngs::StdRng| -> Result<f64> {
            use rand::Rng;
            Ok(rng.gen::<f64>())
        };
        let a = run_trials(20, 42, 0.0, f);
        let b = run_trials(20, 42, 0.0, f);
        assert_eq!(a, b);
    }

    #[test]
    fn fmt_err_ranges() {
        assert_eq!(fmt_err(f64::NAN), "-");
        assert_eq!(fmt_err(0.0), "0");
        assert_eq!(fmt_err(1.23456), "1.2346");
        assert!(fmt_err(1e-9).contains('e'));
        assert!(fmt_err(1e9).contains('e'));
    }
}
