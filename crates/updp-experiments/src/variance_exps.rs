//! Experiments for statistical variance estimation (Section 5).
//!
//! `gauss-var` (Thm 5.3 vs Eq. 10/11), `heavy-var` (Thm 5.5).

use crate::config::ExpConfig;
use crate::table::Table;
use crate::trial::{estimator_trials, fmt_err, ErrorStats};
use updp_baselines::{CoinPressVariance, Kv18Variance, NonPrivateVariance};
use updp_core::privacy::Epsilon;
use updp_dist::{ContinuousDistribution, Gaussian, LogNormal, Pareto, StudentT};
use updp_statistical::{EstimateParams, Estimator, UniversalVariance};

fn eps(v: f64) -> Epsilon {
    Epsilon::new(v).unwrap()
}

/// Trial sweep of one trait-dispatched estimator against the true
/// variance of `dist`.
fn stats_for(
    cfg: &ExpConfig,
    dist: &dyn ContinuousDistribution,
    n: usize,
    master: u64,
    estimator: &dyn Estimator,
    params: &EstimateParams,
) -> ErrorStats {
    estimator_trials(
        cfg.trials,
        master,
        dist.variance(),
        estimator,
        params,
        |rng| dist.sample_vec(rng, n),
    )
}

/// `gauss-var` — Theorem 5.3: the universal estimator tracks σ across 12
/// orders of magnitude with NO σ_min/σ_max, while both baselines need the
/// bounds and degrade when they are loose.
pub fn gauss_var(cfg: &ExpConfig) -> Table {
    let mut t = Table::new(
        "gauss-var",
        "Gaussian variance across scale decades (Thm 5.3 vs Eq. 10/11)",
        "ours: log log σ dependence, no bounds; KV18 pays log(σmax/σmin) bins, CoinPress pays its starting interval",
        vec![
            "σ",
            "ours rel err",
            "KV18 rel err (loose bounds)",
            "CoinPress rel err (loose bounds)",
            "non-private rel err",
        ],
    );
    let e = eps(0.5);
    let n = cfg.n(20_000);
    let master = cfg.master_for("gauss-var");
    // Loose-but-valid bounds spanning everything: σ ∈ [1e-8, 1e8].
    let (smin, smax) = (1e-8, 1e8);
    for (si, &sigma) in [1e-6f64, 1e-2, 1.0, 1e2, 1e6].iter().enumerate() {
        let g = Gaussian::new(0.0, sigma).unwrap();
        let truth = g.variance();
        let m = master.wrapping_add(si as u64 * 3571);
        let rel = |s: ErrorStats| s.median / truth;
        let bounds = EstimateParams::new(e)
            .with("sigma_min", smin)
            .with("sigma_max", smax);
        let ours = stats_for(
            cfg,
            &g,
            n,
            m,
            &UniversalVariance,
            &EstimateParams::new(e).with_beta(0.1),
        );
        let kv = stats_for(cfg, &g, n, m ^ 1, &Kv18Variance, &bounds);
        let cp = stats_for(cfg, &g, n, m ^ 2, &CoinPressVariance, &bounds);
        let np = stats_for(
            cfg,
            &g,
            n,
            m ^ 3,
            &NonPrivateVariance,
            &EstimateParams::new(e),
        );
        t.push_row(vec![
            format!("{sigma:e}"),
            fmt_err(rel(ours)),
            fmt_err(rel(kv)),
            fmt_err(rel(cp)),
            fmt_err(rel(np)),
        ]);
    }
    t.note("relative error |σ̃²−σ²|/σ²; the universal column stays flat across 12 decades of σ with zero prior knowledge");
    t
}

/// `heavy-var` — Theorem 5.5: the first private variance estimator for
/// heavy-tailed distributions; only the non-private estimator exists as a
/// reference.
pub fn heavy_var(cfg: &ExpConfig) -> Table {
    let mut t = Table::new(
        "heavy-var",
        "Heavy-tailed variance — first of its kind (Thm 5.5)",
        "error √μ₄/√n + Õ(μ_k^{2/k}/(εn)^{1−2/k}); no prior private estimator exists for these families",
        vec![
            "distribution",
            "n",
            "ours rel err",
            "non-private rel err",
            "ours p90 rel",
        ],
    );
    let e = eps(0.5);
    let master = cfg.master_for("heavy-var");
    let dists: Vec<(String, Box<dyn ContinuousDistribution>)> = vec![
        (
            "Pareto(1, 5)".into(),
            Box::new(Pareto::new(1.0, 5.0).unwrap()),
        ),
        (
            "StudentT(6)".into(),
            Box::new(StudentT::new(6.0, 0.0, 1.0).unwrap()),
        ),
        (
            "LogNormal(0, 0.75)".into(),
            Box::new(LogNormal::new(0.0, 0.75).unwrap()),
        ),
    ];
    for (di, (label, dist)) in dists.iter().enumerate() {
        let d = dist.as_ref();
        let truth = d.variance();
        for (ni, &n_full) in [8_000usize, 64_000].iter().enumerate() {
            let n = cfg.n(n_full);
            let m = master.wrapping_add((di * 10 + ni) as u64 * 6007);
            let ours = stats_for(
                cfg,
                d,
                n,
                m,
                &UniversalVariance,
                &EstimateParams::new(e).with_beta(0.1),
            );
            let np = stats_for(
                cfg,
                d,
                n,
                m ^ 1,
                &NonPrivateVariance,
                &EstimateParams::new(e),
            );
            t.push_row(vec![
                label.clone(),
                n.to_string(),
                fmt_err(ours.median / truth),
                fmt_err(np.median / truth),
                fmt_err(ours.p90 / truth),
            ]);
        }
    }
    t.note("the private column approaches the non-private one as n grows: privacy is asymptotically free at these moments");
    t
}
