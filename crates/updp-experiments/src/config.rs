//! Experiment configuration: trial counts, seeds, quick/full scaling.

/// Shared configuration for all experiments.
#[derive(Debug, Clone, Copy)]
pub struct ExpConfig {
    /// Master seed; every trial derives a child seed from it.
    pub seed: u64,
    /// Trials per table cell.
    pub trials: usize,
    /// Quick mode shrinks sample sizes ~8x for smoke runs.
    pub quick: bool,
}

impl Default for ExpConfig {
    fn default() -> Self {
        ExpConfig {
            seed: 0xDECA_FBAD,
            trials: 60,
            quick: false,
        }
    }
}

impl ExpConfig {
    /// A fast configuration for CI smoke tests.
    pub fn quick() -> Self {
        ExpConfig {
            seed: 0xDECA_FBAD,
            trials: 12,
            quick: true,
        }
    }

    /// Scales a full-size sample count down in quick mode.
    pub fn n(&self, full: usize) -> usize {
        if self.quick {
            (full / 8).max(64)
        } else {
            full
        }
    }

    /// A per-experiment master seed derived from the experiment id, so
    /// reordering experiments never changes any one experiment's output.
    pub fn master_for(&self, id: &str) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in id.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h ^ self.seed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_shrinks_n() {
        let q = ExpConfig::quick();
        let f = ExpConfig::default();
        assert!(q.n(10_000) < f.n(10_000));
        assert_eq!(f.n(10_000), 10_000);
        assert!(q.n(10) >= 64);
    }

    #[test]
    fn master_depends_on_id_and_seed() {
        let c = ExpConfig::default();
        assert_ne!(c.master_for("a"), c.master_for("b"));
        let mut c2 = c;
        c2.seed = 1;
        assert_ne!(c.master_for("a"), c2.master_for("a"));
    }
}
