//! Ablation experiments for the design choices DESIGN.md calls out.
//!
//! `ill-behaved` (§1: graceful log-log degradation on tiny `ϕ(1/16)`),
//! `ablate-subsample` (§4.2: `m = εn` is the right subsample size),
//! `ablate-bucket` (§4.1: the private `IQR̲` bucket vs oracle choices).

use crate::config::ExpConfig;
use crate::table::Table;
use crate::trial::{fmt_err, run_trials, summarize, trial_map};
use updp_core::privacy::Epsilon;
use updp_dist::{ContinuousDistribution, Gaussian, GaussianMixture, Pareto};
use updp_statistical::{estimate_mean, estimate_mean_with_bucket, estimate_mean_with_subsample};

fn eps(v: f64) -> Epsilon {
    Epsilon::new(v).unwrap()
}

/// `ill-behaved` — the estimator's only weakness: a narrow high spike
/// makes `ϕ(1/16)` tiny. The sample requirement grows only like
/// `log log(1/ϕ)`, so the error should degrade *gracefully* as the spike
/// sharpens by 8 orders of magnitude.
pub fn ill_behaved(cfg: &ExpConfig) -> Table {
    let mut t = Table::new(
        "ill-behaved",
        "Graceful degradation on ill-behaved P (spike mixtures)",
        "error and chosen bucket degrade only ~log log(1/ϕ(1/16)) as the spike narrows from 1e-2 to 1e-10",
        vec![
            "spike width",
            "ϕ(1/16)",
            "med |μ̃−μ|",
            "med bucket IQR̲",
            "med |σ̃²−σ²|/σ²",
        ],
    );
    let e = eps(0.5);
    let n = cfg.n(20_000);
    let master = cfg.master_for("ill-behaved");
    for (si, &w) in [1e-2f64, 1e-6, 1e-10].iter().enumerate() {
        let d = GaussianMixture::ill_behaved_spike(w).unwrap();
        let truth = d.mean();
        let var = d.variance();
        let m = master.wrapping_add(si as u64 * 131);
        // Each trial returns (estimate, bucket) so the per-trial bucket
        // diagnostic is collected by index, not by side effect — the
        // closure stays `Fn + Sync` for the parallel engine.
        let outcomes = trial_map(cfg.trials, m, 0, |_t, rng| {
            let data = d.sample_vec(rng, n);
            estimate_mean(rng, &data, e, 0.1).map(|r| (r.estimate, r.bucket))
        });
        let mut errors = Vec::with_capacity(cfg.trials);
        let mut buckets = Vec::with_capacity(cfg.trials);
        let mut failures = 0usize;
        for outcome in outcomes {
            match outcome {
                Ok((est, bucket)) => {
                    errors.push((est - truth).abs());
                    buckets.push(bucket);
                }
                Err(_) => failures += 1,
            }
        }
        let mean_stats = summarize(errors, cfg.trials, failures);
        let var_stats = run_trials(cfg.trials, m ^ 1, var, |rng| {
            let data = d.sample_vec(rng, n);
            updp_statistical::estimate_variance(rng, &data, e, 0.1).map(|r| r.estimate)
        });
        buckets.sort_by(f64::total_cmp);
        t.push_row(vec![
            format!("{w:e}"),
            fmt_err(d.phi(1.0 / 16.0)),
            fmt_err(mean_stats.median),
            fmt_err(buckets[buckets.len() / 2]),
            fmt_err(var_stats.median / var),
        ]);
    }
    t.note("8 orders of magnitude sharper spike ⇒ error moves by far less than one order: the log-log claim in action");
    t
}

/// `ablate-subsample` — §4.2: sweep the subsample size around the
/// prescribed `m = εn`; both much smaller and much larger m should be
/// worse (bias vs noise trade-off).
pub fn ablate_subsample(cfg: &ExpConfig) -> Table {
    let mut t = Table::new(
        "ablate-subsample",
        "Subsample size ablation around the paper's m = εn (§4.2)",
        "m = εn balances range-tightness against outlier bias; deviating in either direction hurts (utility-only ablation — amplification accounting assumes m ≤ εn)",
        vec!["m/(εn)", "Gaussian med err", "Pareto(1,2.5) med err"],
    );
    let e = eps(0.2);
    let n = cfg.n(20_000);
    let en = (e.get() * n as f64) as usize;
    let master = cfg.master_for("ablate-subsample");
    let g = Gaussian::new(0.0, 1.0).unwrap();
    let p = Pareto::new(1.0, 2.5).unwrap();
    for (fi, &factor) in [0.05f64, 0.25, 1.0, 4.0, 16.0].iter().enumerate() {
        let m = ((en as f64 * factor) as usize).clamp(16, n);
        let master_i = master.wrapping_add(fi as u64 * 313);
        let ge = run_trials(cfg.trials, master_i, g.mean(), |rng| {
            let data = g.sample_vec(rng, n);
            estimate_mean_with_subsample(rng, &data, e, 0.1, m).map(|r| r.estimate)
        });
        let pe = run_trials(cfg.trials, master_i ^ 1, p.mean(), |rng| {
            let data = p.sample_vec(rng, n);
            estimate_mean_with_subsample(rng, &data, e, 0.1, m).map(|r| r.estimate)
        });
        t.push_row(vec![
            format!("{factor}"),
            fmt_err(ge.median),
            fmt_err(pe.median),
        ]);
    }
    t.note("on heavy tails, large m widens the range (more noise); tiny m clips too aggressively (more bias)");
    t
}

/// `ablate-bucket` — §4.1: compare the private `IQR̲` bucket against
/// oracle and deliberately-wrong buckets.
pub fn ablate_bucket(cfg: &ExpConfig) -> Table {
    let mut t = Table::new(
        "ablate-bucket",
        "Bucket-size ablation: private IQR̲ vs oracle vs wrong (§4.1)",
        "the privately-found bucket matches the oracle σ-scale bucket; far-off buckets cost accuracy or overflow",
        vec!["bucket", "med err (σ=1e3 Gaussian)", "notes"],
    );
    let e = eps(0.5);
    let n = cfg.n(20_000);
    let master = cfg.master_for("ablate-bucket");
    let g = Gaussian::new(0.0, 1e3).unwrap();
    let truth = g.mean();

    // The paper's private bucket.
    let private = run_trials(cfg.trials, master, truth, |rng| {
        let data = g.sample_vec(rng, n);
        estimate_mean(rng, &data, e, 0.1).map(|r| r.estimate)
    });
    t.push_row(vec![
        "private IQR̲ (the paper)".into(),
        fmt_err(private.median),
        "no assumptions".into(),
    ]);

    let fixed = |bucket: f64, salt: u64| {
        run_trials(cfg.trials, master ^ salt, truth, |rng| {
            let data = g.sample_vec(rng, n);
            estimate_mean_with_bucket(rng, &data, e, 0.1, bucket).map(|r| r.estimate)
        })
    };
    let sigma = g.std_dev();
    for (label, bucket, salt, note) in [
        (
            "oracle σ/√n",
            sigma / (n as f64).sqrt(),
            1u64,
            "A2-style oracle",
        ),
        ("oracle σ", sigma, 2, "coarse but in-scale"),
        ("too fine σ·1e-6", sigma * 1e-6, 3, "huge integer domain"),
        ("too coarse σ·1e3", sigma * 1e3, 4, "quantization dominates"),
    ] {
        let s = fixed(bucket, salt);
        t.push_row(vec![label.into(), fmt_err(s.median), note.into()]);
    }
    t.note("the private bucket is within a small factor of the oracle choices; badly wrong fixed buckets visibly hurt — finding the bucket privately is load-bearing");
    t
}
