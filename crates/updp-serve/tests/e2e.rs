//! End-to-end acceptance: a real server on an ephemeral port, driven
//! over real sockets through the client library.
//!
//! Pins the ISSUE's flow: register → batched query (mean + quantile +
//! iqr) → bit-identical `results` on repeat with the same seed →
//! budget-exhaustion refusal → restart does not restore spent budget.

// Exact `==` on f64 is deliberate here: these tests pin bit-identical
// outputs (DESIGN.md §5), so an epsilon tolerance would weaken them.
#![allow(clippy::float_cmp)]

use std::path::PathBuf;
use updp_core::json::JsonValue;
use updp_dist::ContinuousDistribution;
use updp_serve::client::{query_body, query_body_named, ClientError, Connection, NamedQuery};
use updp_serve::{FlushPolicy, Ledger, Server};

fn temp_ledger(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("updp-e2e-{}-{tag}.json", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

/// Starts a server over `ledger`; returns its address and the thread
/// to join after shutdown.
fn start(
    ledger: Ledger,
) -> (
    String,
    std::thread::JoinHandle<std::io::Result<updp_serve::DrainSummary>>,
) {
    let server = Server::bind("127.0.0.1:0", ledger).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr").to_string();
    (addr, std::thread::spawn(move || server.run()))
}

fn gaussian(n: usize) -> Vec<f64> {
    let mut rng = updp_core::rng::seeded(0xE2E);
    updp_dist::Gaussian::new(50.0, 5.0)
        .expect("valid parameters")
        .sample_vec(&mut rng, n)
}

/// The `results` array of a query response — the part of the wire
/// contract that must be bit-identical across repeats (the `budget`
/// trailer legitimately advances).
fn results_of(body: &str) -> String {
    let doc = JsonValue::parse(body).expect("valid response JSON");
    let obj = doc.as_object("response").expect("response object");
    JsonValue::Array(obj.get_array("results").expect("results").to_vec()).to_compact()
}

#[test]
fn register_query_repeat_exhaust_restart() {
    let ledger_path = temp_ledger("flow");
    let (addr, server) = start(Ledger::open(&ledger_path).expect("open ledger"));
    let mut client = Connection::open(&addr).expect("connect");

    // Register: 5k Gaussian records, ε budget 2.0.
    let body = client.register("salaries", 2.0, &gaussian(5_000)).unwrap();
    let doc = JsonValue::parse(&body).unwrap();
    let obj = doc.as_object("register response").unwrap();
    assert_eq!(obj.get_str("name").unwrap(), "salaries");
    assert_eq!(obj.get_usize("records").unwrap(), 5_000);

    // Batched hardened query: mean + p90 quantile + iqr, 0.2 ε each.
    let batch = |seed: u64| {
        query_body(
            "salaries",
            seed,
            false,
            &[
                ("mean", 0.2, None),
                ("quantile", 0.2, Some(0.9)),
                ("iqr", 0.2, None),
            ],
        )
    };
    let first = client.query(&batch(7)).unwrap();
    let repeat = client.query(&batch(7)).unwrap();
    // Bit-identical released values for the same request seed.
    assert_eq!(results_of(&first), results_of(&repeat));
    // A different seed draws different noise.
    let other = client.query(&batch(8)).unwrap();
    assert_ne!(results_of(&first), results_of(&other));

    // All three results released, each on the snapping grid, each
    // charged more than its nominal ε (hardened inflation).
    let doc = JsonValue::parse(&first).unwrap();
    let results = doc
        .as_object("response")
        .unwrap()
        .get_array("results")
        .unwrap()
        .to_vec();
    assert_eq!(results.len(), 3);
    for result in &results {
        let result = result.as_object("result").unwrap();
        let values = result.get_array("values").unwrap();
        let release = result.get("release").unwrap().as_object("release").unwrap();
        assert!(release.get_bool("snapped").unwrap());
        let lambdas = release.get_array("lambdas").unwrap();
        for (value, lambda) in values.iter().zip(lambdas) {
            let value = value.as_f64("value").unwrap();
            let lambda = lambda.as_f64("lambda").unwrap();
            let k = value / lambda;
            assert!((k - k.round()).abs() < 1e-9, "{value} not on grid {lambda}");
        }
        assert!(result.get_f64("epsilon_charged").unwrap() > 0.2);
    }

    // Three batches × 0.6+ε spent ⇒ ~1.8+; a fourth 0.6 batch must be
    // refused wholesale (HTTP 403, structured per-query errors).
    let refusal = client.query(&batch(9));
    let Err(ClientError::Status { status, body }) = refusal else {
        panic!("expected starved refusal, got {refusal:?}");
    };
    assert_eq!(status, 403);
    assert!(body.contains("budget_exhausted"), "{body}");

    // Restart the server over the same ledger snapshot.
    client.shutdown().unwrap();
    server.join().unwrap().unwrap();
    let (addr, server) = start(Ledger::open(&ledger_path).expect("reopen ledger"));
    let mut client = Connection::open(&addr).expect("reconnect");

    // Re-registering the same name must resume the spent ledger —
    // restarts cannot replay budget.
    let body = client.register("salaries", 2.0, &gaussian(5_000)).unwrap();
    let doc = JsonValue::parse(&body).unwrap();
    let budget = doc
        .as_object("register response")
        .unwrap()
        .get("budget")
        .unwrap()
        .as_object("budget")
        .unwrap();
    assert!(
        budget.get_f64("spent").unwrap() > 1.8,
        "restart restored spent budget: {body}"
    );
    let refusal = client.query(&batch(10));
    assert!(
        matches!(refusal, Err(ClientError::Status { status: 403, .. })),
        "query after restart should still be starved: {refusal:?}"
    );

    client.shutdown().unwrap();
    server.join().unwrap().unwrap();
    let _ = std::fs::remove_file(&ledger_path);
}

#[test]
fn raw_mode_and_dataset_lifecycle() {
    let (addr, server) = start(Ledger::in_memory());
    let mut client = Connection::open(&addr).expect("connect");

    client.register("d", 10.0, &gaussian(2_000)).unwrap();

    // Raw mode: un-snapped values, exactly the nominal ε charged.
    let body = client
        .query(&query_body("d", 3, true, &[("mean", 0.5, None)]))
        .unwrap();
    let doc = JsonValue::parse(&body).unwrap();
    let results = doc
        .as_object("response")
        .unwrap()
        .get_array("results")
        .unwrap()
        .to_vec();
    let result = results[0].as_object("result").unwrap();
    assert_eq!(result.get_f64("epsilon_charged").unwrap(), 0.5);
    let release = result.get("release").unwrap().as_object("release").unwrap();
    assert!(!release.get_bool("snapped").unwrap());

    // Append then list reflects the new count and the spent budget.
    let body = client
        .request(
            "POST",
            "/v1/append",
            r#"{"name":"d","data":[50.1,49.9,50.0]}"#,
        )
        .unwrap();
    assert!(body.contains("2003"), "{body}");
    let listing = client.request("GET", "/v1/datasets", "").unwrap();
    assert!(listing.contains("\"records\":2003"), "{listing}");

    // Drop removes the data but a re-register cannot mint budget: the
    // ledger entry survives with its spend, and even a bigger
    // requested budget is ignored — the first registration pinned it.
    client
        .request("POST", "/v1/drop", r#"{"name":"d"}"#)
        .unwrap();
    let err = client.query(&query_body("d", 4, true, &[("mean", 0.1, None)]));
    assert!(matches!(err, Err(ClientError::Status { status: 404, .. })));
    let body = client.register("d", 1e9, &gaussian(2_000)).unwrap();
    assert!(body.contains("\"spent\":0.5"), "{body}");
    assert!(
        body.contains("\"total\":10"),
        "re-register raised the pinned budget: {body}"
    );

    // Unknown routes 404, wrong methods 405, garbage bodies 400.
    let (status, _) = client.request_raw("GET", "/v1/nope", "").unwrap();
    assert_eq!(status, 404);
    let (status, _) = client.request_raw("GET", "/v1/query", "").unwrap();
    assert_eq!(status, 405);
    let (status, _) = client
        .request_raw("POST", "/v1/query", "{ not json")
        .unwrap();
    assert_eq!(status, 400);

    client.shutdown().unwrap();
    server.join().unwrap().unwrap();
}

#[test]
fn baselines_by_name_with_assumptions_and_unknown_estimator_error() {
    let (addr, server) = start(Ledger::in_memory());
    let mut client = Connection::open(&addr).expect("connect");
    client.register("b", 10.0, &gaussian(4_000)).unwrap();

    // The estimator catalog is discoverable.
    let listing = client.request("GET", "/v1/estimators", "").unwrap();
    for name in ["mean", "kv18", "coinpress", "dl09", "nonprivate"] {
        assert!(
            listing.contains(&format!("\"name\":\"{name}\"")),
            "{listing}"
        );
    }

    // A baseline batch by name, with required-assumption metadata
    // echoed back, bit-identical on a repeated seed.
    let batch = |seed: u64| {
        query_body_named(
            "b",
            seed,
            true,
            &[
                NamedQuery {
                    estimator: "kv18",
                    epsilon: 0.2,
                    params: vec![("r", 1000.0), ("sigma_min", 0.1), ("sigma_max", 100.0)],
                },
                NamedQuery {
                    estimator: "naive_clip",
                    epsilon: 0.2,
                    params: vec![("r", 1000.0)],
                },
            ],
        )
    };
    let first = client.query(&batch(7)).unwrap();
    let repeat = client.query(&batch(7)).unwrap();
    assert_eq!(results_of(&first), results_of(&repeat));
    assert!(first.contains(r#""kind":"kv18""#), "{first}");
    assert!(
        first.contains(r#""assumptions":["A1","A2","A3"]"#),
        "{first}"
    );
    assert!(first.contains(r#""assumptions":["A1"]"#), "{first}");

    // Unknown estimator: structured, named error before any budget.
    let err = client.query(&query_body_named(
        "b",
        1,
        true,
        &[NamedQuery {
            estimator: "mode",
            epsilon: 0.1,
            params: vec![],
        }],
    ));
    let Err(ClientError::Status { status, body }) = err else {
        panic!("expected unknown-estimator error, got {err:?}");
    };
    assert_eq!(status, 400);
    assert!(body.contains(r#""code":"unknown_estimator""#), "{body}");
    assert!(body.contains("kv18"), "lists known names: {body}");

    // Missing required baseline parameter: bad_query before budget.
    let err = client.query(&query_body_named(
        "b",
        1,
        true,
        &[NamedQuery {
            estimator: "kv18",
            epsilon: 0.1,
            params: vec![],
        }],
    ));
    let Err(ClientError::Status { status, body }) = err else {
        panic!("expected bad_query, got {err:?}");
    };
    assert_eq!(status, 400);
    assert!(
        body.contains("sigma_min") || body.contains("missing required"),
        "{body}"
    );

    client.shutdown().unwrap();
    server.join().unwrap().unwrap();
}

#[test]
fn append_invalidates_the_cached_snapshot_over_the_wire() {
    // Regression for the PreparedDataset cache: a cached quantile
    // query, then an append that shifts the distribution wholesale —
    // the next query (same seed) must see the new rows, not a stale
    // cached grid.
    let (addr, server) = start(Ledger::in_memory());
    let mut client = Connection::open(&addr).expect("connect");
    // 4k points near 50.
    client.register("acc", 1e6, &gaussian(4_000)).unwrap();

    let median = |client: &mut Connection, seed: u64| -> f64 {
        let body = client
            .query(&query_body(
                "acc",
                seed,
                true,
                &[("quantile", 0.5, Some(0.5))],
            ))
            .unwrap();
        let doc = JsonValue::parse(&body).unwrap();
        let results = doc
            .as_object("response")
            .unwrap()
            .get_array("results")
            .unwrap()
            .to_vec();
        results[0]
            .as_object("result")
            .unwrap()
            .get_array("values")
            .unwrap()[0]
            .as_f64("value")
            .unwrap()
    };

    let before = median(&mut client, 3);
    assert!((before - 50.0).abs() < 5.0, "pre-append median {before}");

    // Append 40k points near 5000: the true median moves to ~5000.
    let mut far = Vec::with_capacity(40_000);
    let mut rng = updp_core::rng::seeded(0xAFFE);
    let g = updp_dist::Gaussian::new(5_000.0, 5.0).expect("valid parameters");
    for _ in 0..40_000 {
        far.push(g.sample(&mut rng));
    }
    let body = JsonValue::object(vec![
        ("name", "acc".into()),
        ("data", JsonValue::numbers(&far)),
    ])
    .to_compact();
    client.request("POST", "/v1/append", &body).unwrap();

    let after = median(&mut client, 3);
    assert!(
        (after - 5_000.0).abs() < 100.0,
        "post-append median {after} ignored the appended rows"
    );

    client.shutdown().unwrap();
    server.join().unwrap().unwrap();
}

#[test]
fn buffered_appends_plus_flush_bitwise_equal_one_bulk_append() {
    // DESIGN.md §8's determinism obligation over the wire: a burst of
    // buffered 1-row appends followed by a flush must publish the SAME
    // snapshot version with the SAME bits as one bulk append of the
    // identical rows — the client cannot tell how the rows arrived.
    let policy = FlushPolicy::buffered(usize::MAX, std::time::Duration::from_secs(86_400));
    let buffered =
        Server::bind_with_policy("127.0.0.1:0", Ledger::in_memory(), policy).expect("bind");
    let addr_a = buffered.local_addr().expect("local addr").to_string();
    let server_a = std::thread::spawn(move || buffered.run());
    let (addr_b, server_b) = start(Ledger::in_memory());

    let base = gaussian(2_000);
    let extra = {
        let mut rng = updp_core::rng::seeded(0xDE17A);
        let g = updp_dist::Gaussian::new(80.0, 3.0).expect("valid parameters");
        g.sample_vec(&mut rng, 10)
    };
    let batch = query_body(
        "s",
        7,
        false,
        &[("mean", 0.2, None), ("quantile", 0.2, Some(0.9))],
    );

    // Server A: buffered 1-row appends, then one flush.
    let mut a = Connection::open(&addr_a).expect("connect A");
    a.register("s", 1e6, &base).unwrap();
    // Warm the snapshot caches so the flush exercises merge-carry.
    a.query(&batch).unwrap();
    for (i, &row) in extra.iter().enumerate() {
        let body = a.append("s", &[row]).unwrap();
        let doc = JsonValue::parse(&body).unwrap();
        let obj = doc.as_object("append response").unwrap();
        assert!(!obj.get_bool("flushed").unwrap(), "{body}");
        assert_eq!(obj.get_usize("pending").unwrap(), i + 1, "{body}");
        assert_eq!(obj.get_usize("records").unwrap(), 2_000, "{body}");
        assert_eq!(obj.get_f64("version").unwrap(), 0.0, "{body}");
    }
    // Pending rows are visible in the listing, not to queries.
    let listing = a.request("GET", "/v1/datasets", "").unwrap();
    assert!(listing.contains("\"pending\":10"), "{listing}");
    let body = a.flush("s").unwrap();
    let doc = JsonValue::parse(&body).unwrap();
    let obj = doc.as_object("flush response").unwrap();
    assert_eq!(obj.get_usize("flushed_rows").unwrap(), 10, "{body}");
    assert_eq!(obj.get_usize("records").unwrap(), 2_010, "{body}");
    assert_eq!(
        obj.get_f64("version").unwrap(),
        1.0,
        "a 10-append burst must cost ONE snapshot: {body}"
    );
    let released_a = results_of(&a.query(&batch).unwrap());

    // Server B: the same rows as one bulk append (also version 1).
    let mut b = Connection::open(&addr_b).expect("connect B");
    b.register("s", 1e6, &base).unwrap();
    b.query(&batch).unwrap();
    let body = b.append("s", &extra).unwrap();
    assert!(body.contains("\"version\":1"), "{body}");
    assert!(body.contains("\"flushed\":true"), "{body}");
    let released_b = results_of(&b.query(&batch).unwrap());

    assert_eq!(
        released_a, released_b,
        "buffered-then-flushed releases diverged from bulk-append releases"
    );

    a.shutdown().unwrap();
    server_a.join().unwrap().unwrap();
    b.shutdown().unwrap();
    server_b.join().unwrap().unwrap();
}

#[test]
fn shutdown_completes_despite_an_idle_keep_alive_connection() {
    // An idle client must not pin the server process alive after
    // shutdown: the per-connection read timeout polls the shutdown
    // flag. If that mechanism breaks, this test hangs (and the
    // harness timeout flags it) instead of passing slowly.
    let (addr, server) = start(Ledger::in_memory());
    let _idler = Connection::open(&addr).expect("idle connection");
    let mut client = Connection::open(&addr).expect("connect");
    client.shutdown().unwrap();
    server.join().unwrap().unwrap();
}

#[test]
fn concurrent_clients_share_one_budget_safely() {
    // 8 client threads race 40 queries of ε = 0.05 against a budget
    // of 1.0: exactly 20 can be granted. The refusal *count* is
    // deterministic even though which thread wins each grant is not.
    let (addr, server) = start(Ledger::in_memory());
    let mut setup = Connection::open(&addr).expect("connect");
    setup.register("hot", 1.0, &gaussian(2_000)).unwrap();

    let granted: usize = std::thread::scope(|scope| {
        let addr = addr.as_str();
        let handles: Vec<_> = (0..8)
            .map(|worker| {
                scope.spawn(move || {
                    let mut client = Connection::open(addr).expect("connect");
                    (0..5)
                        .filter(|i| {
                            client
                                .query(&query_body(
                                    "hot",
                                    (worker * 5 + i) as u64,
                                    true,
                                    &[("mean", 0.05, None)],
                                ))
                                .is_ok()
                        })
                        .count()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    assert_eq!(granted, 20, "grant count must be deterministic");

    setup.shutdown().unwrap();
    server.join().unwrap().unwrap();
}
