//! End-to-end acceptance: a real server on an ephemeral port, driven
//! over real sockets through the client library.
//!
//! Pins the ISSUE's flow: register → batched query (mean + quantile +
//! iqr) → bit-identical `results` on repeat with the same seed →
//! budget-exhaustion refusal → restart does not restore spent budget.

use std::path::PathBuf;
use updp_core::json::JsonValue;
use updp_dist::ContinuousDistribution;
use updp_serve::client::{query_body, ClientError, Connection};
use updp_serve::{Ledger, Server};

fn temp_ledger(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("updp-e2e-{}-{tag}.json", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

/// Starts a server over `ledger`; returns its address and the thread
/// to join after shutdown.
fn start(ledger: Ledger) -> (String, std::thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind("127.0.0.1:0", ledger).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr").to_string();
    (addr, std::thread::spawn(move || server.run()))
}

fn gaussian(n: usize) -> Vec<f64> {
    let mut rng = updp_core::rng::seeded(0xE2E);
    updp_dist::Gaussian::new(50.0, 5.0)
        .expect("valid parameters")
        .sample_vec(&mut rng, n)
}

/// The `results` array of a query response — the part of the wire
/// contract that must be bit-identical across repeats (the `budget`
/// trailer legitimately advances).
fn results_of(body: &str) -> String {
    let doc = JsonValue::parse(body).expect("valid response JSON");
    let obj = doc.as_object("response").expect("response object");
    JsonValue::Array(obj.get_array("results").expect("results").to_vec()).to_compact()
}

#[test]
fn register_query_repeat_exhaust_restart() {
    let ledger_path = temp_ledger("flow");
    let (addr, server) = start(Ledger::open(&ledger_path).expect("open ledger"));
    let mut client = Connection::open(&addr).expect("connect");

    // Register: 5k Gaussian records, ε budget 2.0.
    let body = client.register("salaries", 2.0, &gaussian(5_000)).unwrap();
    let doc = JsonValue::parse(&body).unwrap();
    let obj = doc.as_object("register response").unwrap();
    assert_eq!(obj.get_str("name").unwrap(), "salaries");
    assert_eq!(obj.get_usize("records").unwrap(), 5_000);

    // Batched hardened query: mean + p90 quantile + iqr, 0.2 ε each.
    let batch = |seed: u64| {
        query_body(
            "salaries",
            seed,
            false,
            &[
                ("mean", 0.2, None),
                ("quantile", 0.2, Some(0.9)),
                ("iqr", 0.2, None),
            ],
        )
    };
    let first = client.query(&batch(7)).unwrap();
    let repeat = client.query(&batch(7)).unwrap();
    // Bit-identical released values for the same request seed.
    assert_eq!(results_of(&first), results_of(&repeat));
    // A different seed draws different noise.
    let other = client.query(&batch(8)).unwrap();
    assert_ne!(results_of(&first), results_of(&other));

    // All three results released, each on the snapping grid, each
    // charged more than its nominal ε (hardened inflation).
    let doc = JsonValue::parse(&first).unwrap();
    let results = doc
        .as_object("response")
        .unwrap()
        .get_array("results")
        .unwrap()
        .to_vec();
    assert_eq!(results.len(), 3);
    for result in &results {
        let result = result.as_object("result").unwrap();
        let values = result.get_array("values").unwrap();
        let release = result.get("release").unwrap().as_object("release").unwrap();
        assert!(release.get_bool("snapped").unwrap());
        let lambdas = release.get_array("lambdas").unwrap();
        for (value, lambda) in values.iter().zip(lambdas) {
            let value = value.as_f64("value").unwrap();
            let lambda = lambda.as_f64("lambda").unwrap();
            let k = value / lambda;
            assert!((k - k.round()).abs() < 1e-9, "{value} not on grid {lambda}");
        }
        assert!(result.get_f64("epsilon_charged").unwrap() > 0.2);
    }

    // Three batches × 0.6+ε spent ⇒ ~1.8+; a fourth 0.6 batch must be
    // refused wholesale (HTTP 403, structured per-query errors).
    let refusal = client.query(&batch(9));
    let Err(ClientError::Status { status, body }) = refusal else {
        panic!("expected starved refusal, got {refusal:?}");
    };
    assert_eq!(status, 403);
    assert!(body.contains("budget_exhausted"), "{body}");

    // Restart the server over the same ledger snapshot.
    client.shutdown().unwrap();
    server.join().unwrap().unwrap();
    let (addr, server) = start(Ledger::open(&ledger_path).expect("reopen ledger"));
    let mut client = Connection::open(&addr).expect("reconnect");

    // Re-registering the same name must resume the spent ledger —
    // restarts cannot replay budget.
    let body = client.register("salaries", 2.0, &gaussian(5_000)).unwrap();
    let doc = JsonValue::parse(&body).unwrap();
    let budget = doc
        .as_object("register response")
        .unwrap()
        .get("budget")
        .unwrap()
        .as_object("budget")
        .unwrap();
    assert!(
        budget.get_f64("spent").unwrap() > 1.8,
        "restart restored spent budget: {body}"
    );
    let refusal = client.query(&batch(10));
    assert!(
        matches!(refusal, Err(ClientError::Status { status: 403, .. })),
        "query after restart should still be starved: {refusal:?}"
    );

    client.shutdown().unwrap();
    server.join().unwrap().unwrap();
    let _ = std::fs::remove_file(&ledger_path);
}

#[test]
fn raw_mode_and_dataset_lifecycle() {
    let (addr, server) = start(Ledger::in_memory());
    let mut client = Connection::open(&addr).expect("connect");

    client.register("d", 10.0, &gaussian(2_000)).unwrap();

    // Raw mode: un-snapped values, exactly the nominal ε charged.
    let body = client
        .query(&query_body("d", 3, true, &[("mean", 0.5, None)]))
        .unwrap();
    let doc = JsonValue::parse(&body).unwrap();
    let results = doc
        .as_object("response")
        .unwrap()
        .get_array("results")
        .unwrap()
        .to_vec();
    let result = results[0].as_object("result").unwrap();
    assert_eq!(result.get_f64("epsilon_charged").unwrap(), 0.5);
    let release = result.get("release").unwrap().as_object("release").unwrap();
    assert!(!release.get_bool("snapped").unwrap());

    // Append then list reflects the new count and the spent budget.
    let body = client
        .request(
            "POST",
            "/v1/append",
            r#"{"name":"d","data":[50.1,49.9,50.0]}"#,
        )
        .unwrap();
    assert!(body.contains("2003"), "{body}");
    let listing = client.request("GET", "/v1/datasets", "").unwrap();
    assert!(listing.contains("\"records\":2003"), "{listing}");

    // Drop removes the data but a re-register cannot mint budget: the
    // ledger entry survives with its spend, and even a bigger
    // requested budget is ignored — the first registration pinned it.
    client
        .request("POST", "/v1/drop", r#"{"name":"d"}"#)
        .unwrap();
    let err = client.query(&query_body("d", 4, true, &[("mean", 0.1, None)]));
    assert!(matches!(err, Err(ClientError::Status { status: 404, .. })));
    let body = client.register("d", 1e9, &gaussian(2_000)).unwrap();
    assert!(body.contains("\"spent\":0.5"), "{body}");
    assert!(
        body.contains("\"total\":10"),
        "re-register raised the pinned budget: {body}"
    );

    // Unknown routes 404, wrong methods 405, garbage bodies 400.
    let (status, _) = client.request_raw("GET", "/v1/nope", "").unwrap();
    assert_eq!(status, 404);
    let (status, _) = client.request_raw("GET", "/v1/query", "").unwrap();
    assert_eq!(status, 405);
    let (status, _) = client
        .request_raw("POST", "/v1/query", "{ not json")
        .unwrap();
    assert_eq!(status, 400);

    client.shutdown().unwrap();
    server.join().unwrap().unwrap();
}

#[test]
fn shutdown_completes_despite_an_idle_keep_alive_connection() {
    // An idle client must not pin the server process alive after
    // shutdown: the per-connection read timeout polls the shutdown
    // flag. If that mechanism breaks, this test hangs (and the
    // harness timeout flags it) instead of passing slowly.
    let (addr, server) = start(Ledger::in_memory());
    let _idler = Connection::open(&addr).expect("idle connection");
    let mut client = Connection::open(&addr).expect("connect");
    client.shutdown().unwrap();
    server.join().unwrap().unwrap();
}

#[test]
fn concurrent_clients_share_one_budget_safely() {
    // 8 client threads race 40 queries of ε = 0.05 against a budget
    // of 1.0: exactly 20 can be granted. The refusal *count* is
    // deterministic even though which thread wins each grant is not.
    let (addr, server) = start(Ledger::in_memory());
    let mut setup = Connection::open(&addr).expect("connect");
    setup.register("hot", 1.0, &gaussian(2_000)).unwrap();

    let granted: usize = std::thread::scope(|scope| {
        let addr = addr.as_str();
        let handles: Vec<_> = (0..8)
            .map(|worker| {
                scope.spawn(move || {
                    let mut client = Connection::open(addr).expect("connect");
                    (0..5)
                        .filter(|i| {
                            client
                                .query(&query_body(
                                    "hot",
                                    (worker * 5 + i) as u64,
                                    true,
                                    &[("mean", 0.05, None)],
                                ))
                                .is_ok()
                        })
                        .count()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    assert_eq!(granted, 20, "grant count must be deterministic");

    setup.shutdown().unwrap();
    server.join().unwrap().unwrap();
}
