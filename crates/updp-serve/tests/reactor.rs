//! Reactor-specific acceptance over real sockets: backpressure
//! (bounded write queues ⇒ structured 503 + teardown, no worker
//! stall), panic isolation, the accept-then-503 connection cap,
//! pipelining order, and a 64-connection concurrency smoke.
//!
//! The protocol-level e2e flows live in `e2e.rs`; everything here is
//! about the transport contracts of DESIGN.md §10.

use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use updp_serve::client::Connection;
use updp_serve::http::read_response;
use updp_serve::{DrainSummary, FlushPolicy, Ledger, Server, ServerConfig};

fn temp_ledger(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("updp-reactor-{}-{tag}.json", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

/// Starts a server with explicit transport knobs; returns its address
/// and the thread to join after shutdown.
fn start_with(
    tag: &str,
    config: ServerConfig,
    panic_route: bool,
) -> (
    String,
    std::thread::JoinHandle<std::io::Result<DrainSummary>>,
) {
    let ledger = Ledger::open(&temp_ledger(tag)).expect("open ledger");
    let server = Server::bind_with_config("127.0.0.1:0", ledger, FlushPolicy::immediate(), config)
        .expect("bind ephemeral port");
    if panic_route {
        server.enable_test_panic_route();
    }
    let addr = server.local_addr().expect("local addr").to_string();
    (addr, std::thread::spawn(move || server.run()))
}

/// A peer that pipelines requests but never reads responses must get
/// a structured 503 `overloaded` and a teardown — and must not stall
/// the worker for other connections.
#[test]
fn write_queue_backpressure_answers_503_and_tears_down() {
    // One worker (so the healthz probe below shares the shard with
    // the misbehaving peer), a small write-queue bound, and a clamped
    // kernel send buffer so the queue actually fills instead of
    // disappearing into kernel memory.
    let config = ServerConfig {
        workers: 1,
        max_write_queue: 8 * 1024,
        send_buffer: Some(4096),
        ..ServerConfig::default()
    };
    let (addr, server) = start_with("backpressure", config, false);

    let mut abuser = TcpStream::connect(&addr).expect("connect");
    // ~300 pipelined healthz requests (≈12 KiB — well under the
    // reactor's 64 KiB read chunk, so the server consumes the whole
    // burst) with zero reads on our side: responses pile up behind
    // the clamped send buffer until the queue bound trips.
    let mut burst = Vec::new();
    for _ in 0..300 {
        burst.extend_from_slice(b"GET /v1/healthz HTTP/1.1\r\nHost: t\r\n\r\n");
    }
    abuser.write_all(&burst).expect("pipeline burst");

    // The same (sole) worker still serves other connections while the
    // abuser's responses sit queued: no stall.
    let mut probe = Connection::open(&addr).expect("connect probe");
    let healthz = probe.request("GET", "/v1/healthz", "").expect("healthz");
    assert!(healthz.contains("\"ok\":true"), "{healthz}");

    // Now drain the abused connection: some 200s, then exactly one
    // structured 503, then EOF (teardown).
    let mut reader = BufReader::new(abuser.try_clone().expect("clone"));
    let mut ok_count = 0usize;
    let body = loop {
        match read_response(&mut reader) {
            Ok((200, _)) => ok_count += 1,
            Ok((503, body)) => break body,
            Ok((status, body)) => panic!("unexpected response {status}: {body}"),
            Err(e) => panic!("connection died before the 503: {e}"),
        }
    };
    assert!(body.contains("\"code\":\"overloaded\""), "{body}");
    assert!(
        ok_count > 0 && ok_count < 300,
        "expected a partial run of 200s before the 503, got {ok_count}"
    );
    // After the 503 the server hangs up: clean EOF, no further bytes.
    match read_response(&mut reader) {
        Err(updp_serve::http::HttpError::Malformed(reason)) => {
            assert!(reason.contains("EOF"), "{reason}")
        }
        other => panic!("expected EOF after the 503, got {other:?}"),
    }

    probe.shutdown().expect("shutdown");
    server.join().expect("join").expect("clean shutdown");
}

/// A panicking handler costs that request a 500 and its connection —
/// the worker and every other connection keep going.
#[test]
fn handler_panic_is_isolated_to_its_connection() {
    let config = ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    };
    let (addr, server) = start_with("panic", config, true);

    let mut bystander = Connection::open(&addr).expect("connect bystander");
    bystander.request("GET", "/v1/healthz", "").expect("warmup");

    let mut victim = Connection::open(&addr).expect("connect victim");
    let (status, body) = victim
        .request_raw("POST", "/v1/test/panic", "")
        .expect("panic route responds before closing");
    assert_eq!(status, 500, "{body}");
    assert!(body.contains("\"code\":\"internal\""), "{body}");

    // Same worker, different connection: unaffected, repeatedly.
    for _ in 0..3 {
        let healthz = bystander
            .request("GET", "/v1/healthz", "")
            .expect("healthz");
        assert!(healthz.contains("\"ok\":true"), "{healthz}");
    }
    // The poisoned connection is gone (server closed it after the 500).
    assert!(victim.request("GET", "/v1/healthz", "").is_err());

    bystander.shutdown().expect("shutdown");
    server.join().expect("join").expect("clean shutdown");
}

/// Beyond `max_connections` the server accepts and answers a
/// structured 503 instead of letting the peer time out in the SYN
/// backlog; closing a connection frees a slot.
#[test]
fn connection_cap_accepts_then_503s() {
    let config = ServerConfig {
        workers: 1,
        max_connections: 2,
        ..ServerConfig::default()
    };
    let (addr, server) = start_with("cap", config, false);

    let mut first = Connection::open(&addr).expect("connect 1");
    first.request("GET", "/v1/healthz", "").expect("healthz 1");
    let mut second = Connection::open(&addr).expect("connect 2");
    second.request("GET", "/v1/healthz", "").expect("healthz 2");

    // Third connection: accepted, answered 503, closed — without the
    // server ever reading a request.
    let mut third = Connection::open(&addr).expect("connect 3");
    let (status, body) = third
        .request_raw("GET", "/v1/healthz", "")
        .expect("pre-queued 503 readable");
    assert_eq!(status, 503, "{body}");
    assert!(body.contains("\"code\":\"overloaded\""), "{body}");
    assert!(body.contains("connection limit"), "{body}");

    // Freeing a slot re-opens admission. The close is observed
    // asynchronously by the reactor, so poll briefly.
    drop(second);
    let mut readmitted = None;
    for _ in 0..100 {
        let mut conn = Connection::open(&addr).expect("connect retry");
        if let Ok((200, _)) = conn.request_raw("GET", "/v1/healthz", "") {
            readmitted = Some(conn);
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert!(readmitted.is_some(), "slot never freed after close");

    first.shutdown().expect("shutdown");
    server.join().expect("join").expect("clean shutdown");
}

/// Pipelined requests on one connection are answered in order, one
/// response per request, statuses included.
#[test]
fn pipelined_requests_are_answered_in_order() {
    let config = ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    };
    let (addr, server) = start_with("pipeline", config, false);

    let mut stream = TcpStream::connect(&addr).expect("connect");
    let mut wire = Vec::new();
    for path in ["/v1/healthz", "/v1/datasets", "/v1/nope", "/v1/healthz"] {
        wire.extend_from_slice(format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes());
    }
    stream.write_all(&wire).expect("pipeline");

    let mut reader = BufReader::new(stream);
    let expect = [
        (200u16, "\"ok\":true"),
        (200, "\"datasets\""),
        (404, "\"code\":\"not_found\""),
        (200, "\"ok\":true"),
    ];
    for (i, (status, needle)) in expect.iter().enumerate() {
        let (got, body) = read_response(&mut reader).expect("response");
        assert_eq!(got, *status, "response {i}: {body}");
        assert!(body.contains(needle), "response {i}: {body}");
    }

    Connection::open(&addr)
        .expect("connect")
        .shutdown()
        .expect("shutdown");
    server.join().expect("join").expect("clean shutdown");
}

/// 64 concurrent keep-alive connections across a small worker pool,
/// all making real budgeted queries, all served.
#[test]
fn sixty_four_concurrent_connections_are_served() {
    let config = ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    };
    let (addr, server) = start_with("fanin", config, false);

    let mut setup = Connection::open(&addr).expect("connect setup");
    let data: Vec<f64> = (0..2000).map(|i| (i % 500) as f64).collect();
    setup.register("fanin", 1.0e6, &data).expect("register");

    std::thread::scope(|scope| {
        for worker in 0..64 {
            let addr = addr.clone();
            scope.spawn(move || {
                let mut conn = Connection::open(&addr).expect("connect");
                for round in 0..3 {
                    let body = updp_serve::client::query_body(
                        "fanin",
                        (worker * 31 + round) as u64,
                        false,
                        &[("mean", 0.001, None)],
                    );
                    let response = conn.query(&body).expect("query");
                    assert!(response.contains("\"values\""), "{response}");
                }
            });
        }
    });

    setup.shutdown().expect("shutdown");
    server.join().expect("join").expect("clean shutdown");
}
