//! Flight-recorder acceptance (DESIGN.md §11) over real sockets:
//! `/v1/metrics` family coverage in both renderings, `/v1/trace`
//! events, the enriched `/v1/healthz`, drain summaries on shutdown —
//! and the load-bearing determinism pin: a workload served with
//! metrics hot is byte-identical to the same workload served with
//! metrics cold.

use std::io::Write;
use std::net::TcpStream;
use std::path::PathBuf;
use updp_core::json::JsonValue;
use updp_serve::client::{query_body, Connection};
use updp_serve::{DrainSummary, FlushPolicy, Ledger, Server, ServerConfig};

fn temp_ledger(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("updp-obs-{}-{tag}.json", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

/// Starts a server; returns its address and the join handle carrying
/// the drain summary.
fn start(
    tag: &str,
    config: ServerConfig,
    policy: FlushPolicy,
) -> (
    String,
    std::thread::JoinHandle<std::io::Result<DrainSummary>>,
) {
    let ledger = Ledger::open(&temp_ledger(tag)).expect("open ledger");
    let server =
        Server::bind_with_config("127.0.0.1:0", ledger, policy, config).expect("bind ephemeral");
    let addr = server.local_addr().expect("local addr").to_string();
    (addr, std::thread::spawn(move || server.run()))
}

fn one_worker() -> ServerConfig {
    ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    }
}

#[test]
fn healthz_reports_uptime_workers_connections_and_pending_rows() {
    // Buffered policy with unreachable thresholds: appends stay
    // pending until an explicit flush, so healthz has rows to report.
    let policy = FlushPolicy::buffered(usize::MAX, std::time::Duration::from_secs(86_400));
    let (addr, server) = start("healthz", one_worker(), policy);

    let mut conn = Connection::open(&addr).expect("connect");
    conn.register("hz", 10.0, &[1.0, 2.0, 3.0])
        .expect("register");
    conn.append("hz", &[4.0]).expect("append");
    conn.append("hz", &[5.0]).expect("append");

    let body = conn.healthz().expect("healthz");
    let doc = JsonValue::parse(&body).expect("healthz parses");
    let obj = doc.as_object("healthz").expect("object");
    assert!(obj.get_bool("ok").expect("ok"));
    assert_eq!(obj.get_usize("workers").expect("workers"), 1);
    // Our own keep-alive connection is counted.
    assert!(obj.get_usize("active_connections").expect("conns") >= 1);
    // Uptime is present (may round to 0 ms on a fast machine).
    obj.get_f64("uptime_ms").expect("uptime_ms");
    let datasets = obj.get_array("datasets").expect("datasets");
    let hz = datasets
        .iter()
        .map(|d| d.as_object("dataset").expect("dataset object"))
        .find(|d| d.get_str("name").expect("name") == "hz")
        .expect("hz row present");
    assert_eq!(hz.get_usize("pending_rows").expect("pending_rows"), 2);

    conn.shutdown().expect("shutdown");
    server.join().expect("join").expect("clean shutdown");
}

#[test]
fn metrics_expose_reactor_http_engine_and_ledger_families() {
    let (addr, server) = start("families", one_worker(), FlushPolicy::immediate());

    let mut conn = Connection::open(&addr).expect("connect");
    conn.register("obs", 100.0, &[1.0, 2.0, 3.0, 4.0, 5.0])
        .expect("register");
    conn.query(&query_body("obs", 7, false, &[("mean", 0.01, None)]))
        .expect("query");

    let text = conn.metrics_text().expect("metrics text");
    // One family from each instrumented layer, with live children.
    assert!(
        text.contains("updp_reactor_connections_accepted_total{shard=\"0\"}"),
        "{text}"
    );
    assert!(
        text.contains("updp_reactor_handler_panics_total{shard=\"0\"} 0"),
        "{text}"
    );
    assert!(
        text.contains("updp_http_requests_total{endpoint=\"/v1/query\"} 1"),
        "{text}"
    );
    assert!(
        text.contains("updp_http_responses_total{endpoint=\"/v1/query\",class=\"2xx\"} 1"),
        "{text}"
    );
    assert!(
        text.contains("updp_http_handle_seconds_bucket{endpoint=\"/v1/query\",le=\"+Inf\"} 1"),
        "{text}"
    );
    assert!(
        text.contains("updp_engine_queries_total{estimator="),
        "{text}"
    );
    assert!(
        text.contains("updp_ledger_epsilon_budget{dataset=\"obs\"} 100"),
        "{text}"
    );
    assert!(
        text.contains("updp_ledger_epsilon_spent{dataset=\"obs\"}"),
        "{text}"
    );
    assert!(text.contains("updp_reactor_connections_active"), "{text}");
    assert!(text.contains("updp_server_uptime_seconds"), "{text}");

    // The JSON rendering parses through the shared codec and reports
    // the same query count.
    let json = conn.metrics_json().expect("metrics json");
    let doc = JsonValue::parse(&json).expect("metrics json parses");
    let families = doc
        .as_object("metrics")
        .expect("object")
        .get_array("families")
        .expect("families");
    let requests = families
        .iter()
        .map(|f| f.as_object("family").expect("family"))
        .find(|f| f.get_str("name").expect("name") == "updp_http_requests_total")
        .expect("requests family");
    let sample = requests.get_array("samples").expect("samples")[0]
        .as_object("sample")
        .expect("sample");
    assert!(sample.get_f64("value").expect("value") >= 1.0);

    // An unknown format is a structured 400, not a silent default.
    let err = conn
        .request("GET", "/v1/metrics?format=xml", "")
        .expect_err("unknown format rejected");
    assert!(err.to_string().contains("400"), "{err}");

    conn.shutdown().expect("shutdown");
    server.join().expect("join").expect("clean shutdown");
}

#[test]
fn budget_refusals_are_counted_per_dataset() {
    let (addr, server) = start("refusals", one_worker(), FlushPolicy::immediate());

    let mut conn = Connection::open(&addr).expect("connect");
    conn.register("tiny", 0.01, &[1.0, 2.0, 3.0])
        .expect("register");
    // Raw mode keeps the accounting exact: the first query spends the
    // whole budget, the second is refused outright (403).
    conn.query(&query_body("tiny", 1, true, &[("mean", 0.01, None)]))
        .expect("first query spends the budget");
    let err = conn
        .query(&query_body("tiny", 2, true, &[("mean", 0.01, None)]))
        .expect_err("starved request is 403");
    assert!(err.to_string().contains("403"), "{err}");

    let text = conn.metrics_text().expect("metrics text");
    assert!(
        text.contains("updp_ledger_refusals_total{dataset=\"tiny\"} 1"),
        "{text}"
    );

    conn.shutdown().expect("shutdown");
    server.join().expect("join").expect("clean shutdown");
}

#[test]
fn trace_buffers_request_events_in_order() {
    let (addr, server) = start("trace", one_worker(), FlushPolicy::immediate());

    let mut conn = Connection::open(&addr).expect("connect");
    conn.register("tr", 10.0, &[1.0, 2.0, 3.0])
        .expect("register");
    conn.query(&query_body("tr", 3, false, &[("mean", 0.01, None)]))
        .expect("query");

    let body = conn.trace().expect("trace");
    let doc = JsonValue::parse(&body).expect("trace parses");
    let events = doc
        .as_object("trace")
        .expect("object")
        .get_array("events")
        .expect("events");
    assert!(events.len() >= 2, "register + query at minimum: {body}");
    let mut last_id = None;
    let mut saw_query = false;
    for event in events {
        let event = event.as_object("event").expect("event");
        let id = event.get_usize("id").expect("id");
        if let Some(prev) = last_id {
            assert!(id > prev, "ids ascending");
        }
        last_id = Some(id);
        if event.get_str("path").expect("path") == "/v1/query" {
            saw_query = true;
            assert_eq!(event.get_usize("status").expect("status"), 200);
            assert_eq!(event.get_str("dataset").expect("dataset"), "tr");
            assert!(event.get_usize("bytes_out").expect("bytes_out") > 0);
        }
    }
    assert!(saw_query, "query event buffered: {body}");

    conn.shutdown().expect("shutdown");
    server.join().expect("join").expect("clean shutdown");
}

#[test]
fn shutdown_advertises_drain_plan_and_clean_drain_aborts_nothing() {
    let (addr, server) = start("drain-clean", one_worker(), FlushPolicy::immediate());

    let mut conn = Connection::open(&addr).expect("connect");
    conn.healthz().expect("healthz");
    let body = conn.shutdown().expect("shutdown");
    let doc = JsonValue::parse(&body).expect("shutdown body parses");
    let obj = doc.as_object("shutdown").expect("object");
    assert!(obj.get_bool("shutting_down").expect("flag"));
    assert!(obj.get_usize("draining_connections").expect("draining") >= 1);
    assert_eq!(obj.get_usize("drain_deadline_ms").expect("deadline"), 2000);

    let summary = server.join().expect("join").expect("clean shutdown");
    assert_eq!(summary.aborted, 0, "{summary:?}");
    assert!(summary.drained >= 1, "{summary:?}");
}

#[test]
fn stalled_peer_is_aborted_at_the_drain_deadline() {
    // Clamped send buffer plus a huge write-queue cap: responses
    // must stay queued server-side (no 503 teardown) when the peer
    // never reads them.
    let config = ServerConfig {
        workers: 1,
        send_buffer: Some(4096),
        max_write_queue: 64 * 1024 * 1024,
        ..ServerConfig::default()
    };
    let (addr, server) = start("drain-abort", config, FlushPolicy::immediate());

    // A peer that pipelines requests and never reads. The response
    // volume (~1 MiB) far exceeds what the clamped server send buffer
    // plus the peer's kernel receive buffer can absorb, so bytes are
    // still queued at shutdown.
    let mut stalled = TcpStream::connect(&addr).expect("connect stalled");
    let mut burst = Vec::new();
    for _ in 0..8000 {
        burst.extend_from_slice(b"GET /v1/healthz HTTP/1.1\r\nHost: t\r\n\r\n");
    }
    stalled.write_all(&burst).expect("burst");

    // Give the reactor a moment to serve the burst into the queue,
    // then shut down from a second connection.
    std::thread::sleep(std::time::Duration::from_millis(200));
    let mut conn = Connection::open(&addr).expect("connect");
    conn.shutdown().expect("shutdown");

    // ~2 s: the drain deadline expires with the stalled peer's bytes
    // still queued, so it is force-closed and counted as aborted.
    let summary = server.join().expect("join").expect("drained");
    assert!(summary.aborted >= 1, "{summary:?}");
    drop(stalled);
}

/// The determinism pin: the same workload against an instrumented
/// server (with interleaved scrapes and trace reads) and an
/// uninstrumented one (`metrics: false`) must release byte-identical
/// responses. Metrics are observe-only by contract; this is the test
/// that keeps them that way.
#[test]
fn released_bytes_are_identical_with_metrics_on_or_off() {
    let run = |tag: &str, metrics: bool| -> Vec<String> {
        let config = ServerConfig {
            workers: 1,
            metrics,
            ..ServerConfig::default()
        };
        let (addr, server) = start(tag, config, FlushPolicy::immediate());
        let mut conn = Connection::open(&addr).expect("connect");
        let data: Vec<f64> = (0..500).map(|i| (i % 97) as f64).collect();
        let mut released = Vec::new();
        released.push(conn.register("pin", 50.0, &data).expect("register"));
        for seed in 0..5u64 {
            // Interleaved scrapes on the instrumented server: recording
            // AND rendering must both be invisible to the released bytes.
            if metrics {
                conn.metrics_text().expect("scrape");
                conn.trace().expect("trace");
            }
            released.push(
                conn.query(&query_body(
                    "pin",
                    seed,
                    false,
                    &[
                        ("mean", 0.01, None),
                        ("quantile", 0.01, Some(0.9)),
                        ("iqr", 0.01, None),
                    ],
                ))
                .expect("query"),
            );
        }
        released.push(conn.append("pin", &[7.0, 11.0]).expect("append"));
        released.push(
            conn.query(&query_body("pin", 99, false, &[("variance", 0.01, None)]))
                .expect("query after append"),
        );
        conn.shutdown().expect("shutdown");
        server.join().expect("join").expect("clean shutdown");
        released
    };

    let hot = run("pin-hot", true);
    let cold = run("pin-cold", false);
    assert_eq!(hot, cold, "instrumentation leaked into released bytes");
}

#[test]
fn disabled_metrics_still_answer_with_empty_families() {
    let config = ServerConfig {
        workers: 1,
        metrics: false,
        ..ServerConfig::default()
    };
    let (addr, server) = start("metrics-off", config, FlushPolicy::immediate());

    let mut conn = Connection::open(&addr).expect("connect");
    conn.healthz().expect("healthz");
    let text = conn.metrics_text().expect("metrics text");
    // Family headers render (the surface is stable) but no recorded
    // children appear.
    assert!(
        text.contains("# TYPE updp_http_requests_total counter"),
        "{text}"
    );
    assert!(!text.contains("updp_http_requests_total{"), "{text}");
    let trace = conn.trace().expect("trace");
    assert_eq!(trace, "{\"events\":[]}", "{trace}");

    conn.shutdown().expect("shutdown");
    server.join().expect("join").expect("clean shutdown");
}
