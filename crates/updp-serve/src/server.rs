//! The long-lived serving process: routing and the
//! registry/ledger/engine wiring, served by the sharded epoll
//! reactor in [`crate::reactor`] (DESIGN.md §10) — a fixed worker
//! pool of event loops over non-blocking sockets, with bounded
//! per-connection write queues and event-driven shutdown. All shared
//! state sits behind the registry/ledger synchronization described
//! in their modules. The HTTP surface:
//!
//! | Route | Body | Effect |
//! |---|---|---|
//! | `GET /v1/healthz` | — | liveness probe |
//! | `GET /v1/datasets` | — | list datasets + budgets |
//! | `GET /v1/estimators` | — | list servable estimators + assumptions |
//! | `POST /v1/register` | `{name, budget, data\|columns}` | create dataset + ledger account |
//! | `POST /v1/append` | `{name, data\|columns}` | buffer records (publishes per [`FlushPolicy`]) |
//! | `POST /v1/flush` | `{name}` | publish the pending delta log now |
//! | `POST /v1/drop` | `{name}` | drop data (ledger entry survives) |
//! | `POST /v1/query` | see [`crate::wire::parse_query`] | budgeted batch estimation |
//! | `POST /v1/shutdown` | — | graceful stop |

use crate::engine::{execute_batch, EngineError, EstimatorCatalog, QueryOutcome, ReleaseMode};
use crate::http::Request;
use crate::ledger::{Ledger, LedgerError};
use crate::registry::{FlushPolicy, Registry, RegistryError};
use crate::{reactor, wire};
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use updp_core::json::JsonValue;

/// Transport knobs for the reactor (DESIGN.md §10). The defaults are
/// the production configuration; tests tighten them to make the
/// backpressure paths deterministic.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Reactor worker shards; `0` means available parallelism.
    pub workers: usize,
    /// Live-connection cap across all shards. Connections beyond it
    /// are accepted, answered with a structured 503 `overloaded`, and
    /// closed (accept-then-503 — the peer gets an answer instead of
    /// a SYN-backlog timeout).
    pub max_connections: usize,
    /// Per-connection write-queue bound in bytes. A peer that
    /// pipelines requests without reading responses gets a final 503
    /// `overloaded` and teardown once this many bytes are queued.
    pub max_write_queue: usize,
    /// Optional `SO_SNDBUF` clamp per connection: bounds kernel-side
    /// buffering at high connection counts and makes the write-queue
    /// backpressure observable with small deterministic buffers.
    pub send_buffer: Option<usize>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 0,
            max_connections: 4096,
            max_write_queue: 256 * 1024,
            send_buffer: None,
        }
    }
}

impl ServerConfig {
    /// `workers` with `0` resolved to available parallelism.
    pub fn resolved_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Shared server state.
pub struct AppState {
    /// The sharded dataset registry.
    pub registry: Registry,
    /// The persisted privacy-budget ledger.
    pub ledger: Ledger,
    /// The name-keyed estimator catalog (universal + baselines).
    pub estimators: EstimatorCatalog,
    shutdown: AtomicBool,
    /// Test-only hook: arms the panicking `/v1/test/panic` route used
    /// to prove reactor panic isolation. Never set in production.
    panic_route: AtomicBool,
}

impl AppState {
    /// True once a `POST /v1/shutdown` has been served.
    pub(crate) fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Flips the shutdown flag (the reactor then wakes every shard).
    pub(crate) fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }
}

/// A bound-but-not-yet-running server.
pub struct Server {
    listener: TcpListener,
    state: Arc<AppState>,
    config: ServerConfig,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) over `ledger`
    /// with the immediate (unbuffered) flush policy.
    pub fn bind(addr: &str, ledger: Ledger) -> std::io::Result<Server> {
        Server::bind_with_policy(addr, ledger, FlushPolicy::immediate())
    }

    /// Binds `addr` over `ledger` with an explicit write-buffer
    /// [`FlushPolicy`] (DESIGN.md §8): appends coalesce into a pending
    /// delta log and publish one snapshot per threshold crossing or
    /// explicit `POST /v1/flush`.
    pub fn bind_with_policy(
        addr: &str,
        ledger: Ledger,
        policy: FlushPolicy,
    ) -> std::io::Result<Server> {
        Server::bind_with_config(addr, ledger, policy, ServerConfig::default())
    }

    /// Binds with explicit transport knobs ([`ServerConfig`]) on top
    /// of the flush policy.
    pub fn bind_with_config(
        addr: &str,
        ledger: Ledger,
        policy: FlushPolicy,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            state: Arc::new(AppState {
                registry: Registry::with_policy(policy),
                ledger,
                estimators: EstimatorCatalog::standard(),
                shutdown: AtomicBool::new(false),
                panic_route: AtomicBool::new(false),
            }),
            config,
        })
    }

    /// The bound address (reports the ephemeral port after `:0` binds).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Arms the `POST /v1/test/panic` route, which panics inside the
    /// handler. Exists so tests can prove the reactor survives a
    /// poisoned handler; hidden because production servers must never
    /// enable it.
    #[doc(hidden)]
    pub fn enable_test_panic_route(&self) {
        self.state.panic_route.store(true, Ordering::SeqCst);
    }

    /// Serves on the epoll reactor until a `POST /v1/shutdown`
    /// arrives, then drains every in-flight connection before
    /// returning.
    pub fn run(self) -> std::io::Result<()> {
        reactor::run(self.listener, self.state, self.config)
    }
}

type Response = (u16, String);

fn ok(value: JsonValue) -> Response {
    (200, value.to_compact())
}

fn error(status: u16, code: &str, message: &str) -> Response {
    (status, wire::error_body(code, message))
}

fn registry_error(e: &RegistryError) -> Response {
    let (status, code) = match e {
        RegistryError::NotFound(_) => (404, "not_found"),
        RegistryError::AlreadyExists(_) => (409, "already_exists"),
        RegistryError::BadName(_) => (400, "bad_name"),
        RegistryError::DimensionMismatch { .. } | RegistryError::BadData(_) => (400, "bad_data"),
        // A poisoned lock means one worker panicked; answer 500 and
        // keep serving instead of cascading the panic.
        RegistryError::Poisoned => (500, "internal"),
    };
    error(status, code, &e.to_string())
}

fn ledger_error(e: &LedgerError) -> Response {
    match e {
        LedgerError::UnknownDataset(_) => error(404, "not_found", &e.to_string()),
        LedgerError::BadParameter(_) => error(400, "bad_request", &e.to_string()),
        LedgerError::Snapshot(_) => error(500, "ledger_io", &e.to_string()),
        LedgerError::Poisoned => error(500, "internal", &e.to_string()),
    }
}

/// Routes one request to its handler. Called by the reactor workers;
/// panics escaping a handler are caught at the call site
/// (`catch_unwind`), costing the request a 500 and its connection but
/// never the worker.
pub(crate) fn route(state: &AppState, request: &Request) -> Response {
    let body = match std::str::from_utf8(&request.body) {
        Ok(text) => text,
        Err(_) => return error(400, "bad_request", "body is not UTF-8"),
    };
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/v1/healthz") => ok(JsonValue::object(vec![("ok", true.into())])),
        // Test-only poison pill (see Server::enable_test_panic_route):
        // unarmed servers fall through to the 404 arm below.
        ("POST", "/v1/test/panic") if state.panic_route.load(Ordering::SeqCst) => {
            panic!("test panic route")
        }
        ("GET", "/v1/datasets") => list(state),
        ("GET", "/v1/estimators") => (200, wire::estimators_response(state.estimators.iter())),
        ("POST", "/v1/register") => register(state, body),
        ("POST", "/v1/append") => append(state, body),
        ("POST", "/v1/flush") => flush(state, body),
        ("POST", "/v1/drop") => drop_dataset(state, body),
        ("POST", "/v1/query") => query(state, body),
        ("POST", "/v1/shutdown") => ok(JsonValue::object(vec![("shutting_down", true.into())])),
        (_, path) if known_path(path) => error(405, "method_not_allowed", path),
        (_, path) => error(404, "not_found", path),
    }
}

fn known_path(path: &str) -> bool {
    matches!(
        path,
        "/v1/healthz"
            | "/v1/datasets"
            | "/v1/estimators"
            | "/v1/register"
            | "/v1/append"
            | "/v1/flush"
            | "/v1/drop"
            | "/v1/query"
            | "/v1/shutdown"
    )
}

fn list(state: &AppState) -> Response {
    let rows = match state.registry.list() {
        Ok(rows) => rows,
        Err(e) => return registry_error(&e),
    };
    let rows = rows
        .into_iter()
        .map(|row| {
            let mut fields = vec![
                ("name", row.name.as_str().into()),
                ("dim", row.dim.into()),
                ("records", row.records.into()),
                ("pending", row.pending.into()),
            ];
            if let Ok(account) = state.ledger.account(&row.name) {
                fields.push(("budget", wire::budget_json(&account)));
            }
            JsonValue::object(fields)
        })
        .collect();
    ok(JsonValue::object(vec![(
        "datasets",
        JsonValue::Array(rows),
    )]))
}

fn register(state: &AppState, body: &str) -> Response {
    let request = match wire::parse_register(body) {
        Ok(r) => r,
        Err(e) => return error(400, "bad_request", &e.to_string()),
    };
    // Validate everything before touching either store: a rejected
    // registration must not create or alter any persisted account.
    if !(request.budget.is_finite() && request.budget > 0.0) {
        return error(400, "bad_request", "budget must be finite and positive");
    }
    if let Err(e) = crate::registry::validate_name(&request.name) {
        return registry_error(&e);
    }
    if let Err(e) = crate::registry::validate_columns(&request.columns) {
        return registry_error(&e);
    }
    // Ledger before registry: the moment a dataset becomes visible to
    // queries, its account must already exist (registry-first would
    // open a window of spurious 404s). The ledger owns replay
    // protection — re-registering re-attaches with spent and the
    // originally pinned budget intact. If the registry then reports a
    // duplicate, the account we touched is the *same dataset's*
    // account (names are the ids), so there is nothing to roll back.
    let account = match state.ledger.register(&request.name, request.budget) {
        Ok(account) => account,
        Err(e) => return ledger_error(&e),
    };
    match state.registry.register(&request.name, request.columns) {
        Ok(dataset) => {
            let records = match dataset.len() {
                Ok(records) => records,
                Err(e) => return registry_error(&e),
            };
            ok(JsonValue::object(vec![
                ("name", dataset.name.as_str().into()),
                ("dim", dataset.dim.into()),
                ("records", records.into()),
                ("budget", wire::budget_json(&account)),
            ]))
        }
        Err(e) => registry_error(&e),
    }
}

fn append(state: &AppState, body: &str) -> Response {
    let (name, columns) = match wire::parse_append(body) {
        Ok(r) => r,
        Err(e) => return error(400, "bad_request", &e.to_string()),
    };
    match state.registry.append(&name, columns) {
        Ok(outcome) => ok(JsonValue::object(vec![
            ("name", name.as_str().into()),
            ("records", outcome.records.into()),
            ("pending", outcome.pending.into()),
            ("version", (outcome.version as f64).into()),
            ("flushed", outcome.flushed.into()),
        ])),
        Err(e) => registry_error(&e),
    }
}

fn flush(state: &AppState, body: &str) -> Response {
    let name = match wire::parse_flush(body) {
        Ok(name) => name,
        Err(e) => return error(400, "bad_request", &e.to_string()),
    };
    match state.registry.flush(&name) {
        Ok(outcome) => ok(JsonValue::object(vec![
            ("name", name.as_str().into()),
            ("records", outcome.records.into()),
            ("version", (outcome.version as f64).into()),
            ("flushed_rows", outcome.flushed_rows.into()),
        ])),
        Err(e) => registry_error(&e),
    }
}

fn drop_dataset(state: &AppState, body: &str) -> Response {
    let name = match wire::parse_drop(body) {
        Ok(name) => name,
        Err(e) => return error(400, "bad_request", &e.to_string()),
    };
    match state.registry.drop_dataset(&name) {
        Ok(()) => ok(JsonValue::object(vec![
            ("name", name.as_str().into()),
            ("dropped", true.into()),
            // The ledger entry survives by design (replay protection).
            ("ledger_retained", true.into()),
        ])),
        Err(e) => registry_error(&e),
    }
}

fn query(state: &AppState, body: &str) -> Response {
    let request = match wire::parse_query(body) {
        Ok(r) => r,
        Err(e) => return error(400, "bad_request", &e.to_string()),
    };
    let dataset = match state.registry.get(&request.dataset) {
        Ok(d) => d,
        Err(e) => return registry_error(&e),
    };
    let mode = if request.raw {
        ReleaseMode::Raw
    } else {
        if !(request.bound.is_finite() && request.bound > 0.0) {
            return error(400, "bad_request", "bound must be finite and positive");
        }
        ReleaseMode::Hardened {
            bound: request.bound,
        }
    };
    let outcomes = match execute_batch(
        &dataset,
        &state.estimators,
        &state.ledger,
        &request.specs,
        request.seed,
        mode,
    ) {
        Ok(outcomes) => outcomes,
        Err(EngineError::BadQuery(reason)) => return error(400, "bad_query", &reason),
        Err(e @ EngineError::UnknownEstimator { .. }) => {
            return error(400, "unknown_estimator", &e.to_string())
        }
        Err(EngineError::Ledger(e)) => return ledger_error(&e),
        Err(e @ EngineError::Internal(_)) => return error(500, "internal", &e.to_string()),
    };
    let account = match state.ledger.account(&request.dataset) {
        Ok(account) => account,
        Err(e) => return ledger_error(&e),
    };
    // Every query refused ⇒ the whole request was starved: 403 so
    // scripted callers (CI smoke, loadgen) fail loudly.
    let starved = outcomes
        .iter()
        .all(|o| matches!(o, QueryOutcome::Refused { .. }));
    let status = if starved { 403 } else { 200 };
    (status, wire::query_response(&request, &outcomes, &account))
}
