//! The long-lived serving process: routing and the
//! registry/ledger/engine wiring, served by the sharded epoll
//! reactor in [`crate::reactor`] (DESIGN.md §10) — a fixed worker
//! pool of event loops over non-blocking sockets, with bounded
//! per-connection write queues and event-driven shutdown. All shared
//! state sits behind the registry/ledger synchronization described
//! in their modules. The HTTP surface:
//!
//! | Route | Body | Effect |
//! |---|---|---|
//! | `GET /v1/healthz` | — | liveness probe |
//! | `GET /v1/datasets` | — | list datasets + budgets |
//! | `GET /v1/estimators` | — | list servable estimators + assumptions |
//! | `POST /v1/register` | `{name, budget, data\|columns}` | create dataset + ledger account |
//! | `POST /v1/append` | `{name, data\|columns}` | buffer records (publishes per [`FlushPolicy`]) |
//! | `POST /v1/flush` | `{name}` | publish the pending delta log now |
//! | `POST /v1/drop` | `{name}` | drop data (ledger entry survives) |
//! | `POST /v1/query` | see [`crate::wire::parse_query`] | budgeted batch estimation |
//! | `POST /v1/shutdown` | — | graceful stop |

use crate::engine::{
    execute_batch_observed, EngineError, EstimatorCatalog, QueryOutcome, ReleaseMode,
};
use crate::http::Request;
use crate::ledger::{Ledger, LedgerError};
use crate::metrics::{endpoint_label, ServeMetrics};
use crate::registry::{FlushPolicy, Registry, RegistryError};
use crate::{reactor, wire};
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;
use updp_core::json::JsonValue;
use updp_obs::{Kind, ScrapedFamily};

/// Transport knobs for the reactor (DESIGN.md §10). The defaults are
/// the production configuration; tests tighten them to make the
/// backpressure paths deterministic.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Reactor worker shards; `0` means available parallelism.
    pub workers: usize,
    /// Live-connection cap across all shards. Connections beyond it
    /// are accepted, answered with a structured 503 `overloaded`, and
    /// closed (accept-then-503 — the peer gets an answer instead of
    /// a SYN-backlog timeout).
    pub max_connections: usize,
    /// Per-connection write-queue bound in bytes. A peer that
    /// pipelines requests without reading responses gets a final 503
    /// `overloaded` and teardown once this many bytes are queued.
    pub max_write_queue: usize,
    /// Optional `SO_SNDBUF` clamp per connection: bounds kernel-side
    /// buffering at high connection counts and makes the write-queue
    /// backpressure observable with small deterministic buffers.
    pub send_buffer: Option<usize>,
    /// Record metrics and trace events (DESIGN.md §11). Always
    /// observe-only; `false` exists so the e2e suite can pin that
    /// released bytes are bit-identical with instrumentation hot or
    /// cold.
    pub metrics: bool,
    /// Emit one structured JSON line per request on stderr (the
    /// opt-in `--log-json` flight-recorder stream).
    pub log_json: bool,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 0,
            max_connections: 4096,
            max_write_queue: 256 * 1024,
            send_buffer: None,
            metrics: true,
            log_json: false,
        }
    }
}

impl ServerConfig {
    /// `workers` with `0` resolved to available parallelism.
    pub fn resolved_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Shared server state.
pub struct AppState {
    /// The sharded dataset registry.
    pub registry: Registry,
    /// The persisted privacy-budget ledger.
    pub ledger: Ledger,
    /// The name-keyed estimator catalog (universal + baselines).
    pub estimators: EstimatorCatalog,
    /// The metric families and trace rings (DESIGN.md §11).
    pub(crate) metrics: ServeMetrics,
    /// Live connections across all shards. The reactor is the only
    /// writer; `/v1/healthz` and `/v1/metrics` read it.
    pub(crate) conns: AtomicUsize,
    /// Bind time, for the healthz uptime report. Transport-scoped
    /// wall clock: never feeds any release path.
    pub(crate) started: Instant,
    /// Resolved reactor worker count.
    pub(crate) workers: usize,
    shutdown: AtomicBool,
    /// Test-only hook: arms the panicking `/v1/test/panic` route used
    /// to prove reactor panic isolation. Never set in production.
    panic_route: AtomicBool,
}

impl AppState {
    /// True once a `POST /v1/shutdown` has been served.
    pub(crate) fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Flips the shutdown flag (the reactor then wakes every shard).
    pub(crate) fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }
}

/// What the drain phase of a shutdown did: how many connections
/// flushed and closed cleanly, and how many were force-closed when
/// the 2 s drain deadline expired. Returned by [`Server::run`];
/// summed across reactor shards.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DrainSummary {
    /// Connections that drained (flushed their queued responses, or
    /// were already idle) during shutdown.
    pub drained: usize,
    /// Connections force-closed at the drain deadline with bytes
    /// still queued.
    pub aborted: usize,
}

/// A bound-but-not-yet-running server.
pub struct Server {
    listener: TcpListener,
    state: Arc<AppState>,
    config: ServerConfig,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) over `ledger`
    /// with the immediate (unbuffered) flush policy.
    pub fn bind(addr: &str, ledger: Ledger) -> std::io::Result<Server> {
        Server::bind_with_policy(addr, ledger, FlushPolicy::immediate())
    }

    /// Binds `addr` over `ledger` with an explicit write-buffer
    /// [`FlushPolicy`] (DESIGN.md §8): appends coalesce into a pending
    /// delta log and publish one snapshot per threshold crossing or
    /// explicit `POST /v1/flush`.
    pub fn bind_with_policy(
        addr: &str,
        ledger: Ledger,
        policy: FlushPolicy,
    ) -> std::io::Result<Server> {
        Server::bind_with_config(addr, ledger, policy, ServerConfig::default())
    }

    /// Binds with explicit transport knobs ([`ServerConfig`]) on top
    /// of the flush policy.
    pub fn bind_with_config(
        addr: &str,
        ledger: Ledger,
        policy: FlushPolicy,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let workers = config.resolved_workers();
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            state: Arc::new(AppState {
                registry: Registry::with_policy(policy),
                ledger,
                estimators: EstimatorCatalog::standard(),
                metrics: ServeMetrics::new(workers, config.metrics),
                conns: AtomicUsize::new(0),
                started: Instant::now(),
                workers,
                shutdown: AtomicBool::new(false),
                panic_route: AtomicBool::new(false),
            }),
            config,
        })
    }

    /// The bound address (reports the ephemeral port after `:0` binds).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Arms the `POST /v1/test/panic` route, which panics inside the
    /// handler. Exists so tests can prove the reactor survives a
    /// poisoned handler; hidden because production servers must never
    /// enable it.
    #[doc(hidden)]
    pub fn enable_test_panic_route(&self) {
        self.state.panic_route.store(true, Ordering::SeqCst);
    }

    /// Serves on the epoll reactor until a `POST /v1/shutdown`
    /// arrives, then drains every in-flight connection before
    /// returning the drain's outcome.
    pub fn run(self) -> std::io::Result<DrainSummary> {
        reactor::run(self.listener, self.state, self.config)
    }
}

/// `Content-Type` of every JSON response.
pub(crate) const CONTENT_TYPE_JSON: &str = "application/json";
/// `Content-Type` of the Prometheus text exposition.
pub(crate) const CONTENT_TYPE_TEXT: &str = "text/plain; version=0.0.4";

/// A routed response: status + body + content type, plus the dataset
/// the request touched (trace labelling only — the reactor never
/// branches on it).
pub(crate) struct Routed {
    pub(crate) status: u16,
    pub(crate) body: String,
    pub(crate) content_type: &'static str,
    pub(crate) dataset: Option<String>,
}

impl Routed {
    fn json(status: u16, body: String) -> Routed {
        Routed {
            status,
            body,
            content_type: CONTENT_TYPE_JSON,
            dataset: None,
        }
    }

    fn text(status: u16, body: String) -> Routed {
        Routed {
            status,
            body,
            content_type: CONTENT_TYPE_TEXT,
            dataset: None,
        }
    }

    /// Tags the response with the dataset it touched.
    fn tagged(mut self, dataset: &str) -> Routed {
        self.dataset = Some(dataset.to_string());
        self
    }
}

fn ok(value: JsonValue) -> Routed {
    Routed::json(200, value.to_compact())
}

fn error(status: u16, code: &str, message: &str) -> Routed {
    Routed::json(status, wire::error_body(code, message))
}

fn registry_error(e: &RegistryError) -> Routed {
    let (status, code) = match e {
        RegistryError::NotFound(_) => (404, "not_found"),
        RegistryError::AlreadyExists(_) => (409, "already_exists"),
        RegistryError::BadName(_) => (400, "bad_name"),
        RegistryError::DimensionMismatch { .. } | RegistryError::BadData(_) => (400, "bad_data"),
        // A poisoned lock means one worker panicked; answer 500 and
        // keep serving instead of cascading the panic.
        RegistryError::Poisoned => (500, "internal"),
    };
    error(status, code, &e.to_string())
}

fn ledger_error(e: &LedgerError) -> Routed {
    match e {
        LedgerError::UnknownDataset(_) => error(404, "not_found", &e.to_string()),
        LedgerError::BadParameter(_) => error(400, "bad_request", &e.to_string()),
        LedgerError::Snapshot(_) => error(500, "ledger_io", &e.to_string()),
        LedgerError::Poisoned => error(500, "internal", &e.to_string()),
    }
}

/// Routes one request to its handler. Called by the reactor workers;
/// panics escaping a handler are caught at the call site
/// (`catch_unwind`), costing the request a 500 and its connection but
/// never the worker.
pub(crate) fn route(state: &AppState, request: &Request) -> Routed {
    let body = match std::str::from_utf8(&request.body) {
        Ok(text) => text,
        Err(_) => return error(400, "bad_request", "body is not UTF-8"),
    };
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/v1/healthz") => healthz(state),
        // Test-only poison pill (see Server::enable_test_panic_route):
        // unarmed servers fall through to the 404 arm below.
        ("POST", "/v1/test/panic") if state.panic_route.load(Ordering::SeqCst) => {
            panic!("test panic route")
        }
        ("GET", "/v1/datasets") => list(state),
        ("GET", "/v1/estimators") => {
            Routed::json(200, wire::estimators_response(state.estimators.iter()))
        }
        // The metrics/trace endpoints are the only routes with a
        // query string ("?format=json"); every other path is matched
        // verbatim, query string and all, exactly as before.
        ("GET", path) if endpoint_label(path) == "/v1/metrics" => metrics_scrape(state, path),
        ("GET", path) if endpoint_label(path) == "/v1/trace" => {
            Routed::json(200, wire::trace_body(&state.metrics.trace_snapshot()))
        }
        ("POST", "/v1/register") => register(state, body),
        ("POST", "/v1/append") => append(state, body),
        ("POST", "/v1/flush") => flush(state, body),
        ("POST", "/v1/drop") => drop_dataset(state, body),
        ("POST", "/v1/query") => query(state, body),
        ("POST", "/v1/shutdown") => shutdown(state),
        (_, path) if known_path(path) => error(405, "method_not_allowed", path),
        (_, path) => error(404, "not_found", path),
    }
}

fn known_path(path: &str) -> bool {
    matches!(
        path,
        "/v1/healthz"
            | "/v1/datasets"
            | "/v1/estimators"
            | "/v1/register"
            | "/v1/append"
            | "/v1/flush"
            | "/v1/drop"
            | "/v1/query"
            | "/v1/shutdown"
            | "/v1/metrics"
            | "/v1/trace"
    )
}

/// The readiness probe: liveness plus uptime, worker count, active
/// connections, and per-dataset pending delta-log rows. A wedged
/// registry degrades to an empty dataset list — healthz must answer.
fn healthz(state: &AppState) -> Routed {
    let pending: Vec<(String, usize)> = state
        .registry
        .list()
        .unwrap_or_default()
        .into_iter()
        .map(|row| (row.name, row.pending))
        .collect();
    Routed::json(
        200,
        wire::healthz_body(
            state.started.elapsed().as_millis() as u64,
            state.workers,
            state.conns.load(Ordering::SeqCst),
            &pending,
        ),
    )
}

/// `POST /v1/shutdown`: acknowledges with the drain plan — how many
/// connections are up for draining and the force-close deadline. The
/// *outcome* (drained vs aborted counts) is only knowable after the
/// drain completes; [`Server::run`] returns it as a [`DrainSummary`].
fn shutdown(state: &AppState) -> Routed {
    ok(JsonValue::object(vec![
        ("shutting_down", true.into()),
        (
            "draining_connections",
            state.conns.load(Ordering::SeqCst).into(),
        ),
        (
            "drain_deadline_ms",
            (reactor::DRAIN_DEADLINE.as_millis() as f64).into(),
        ),
    ]))
}

/// `GET /v1/metrics`: Prometheus text by default, JSON with
/// `?format=json`. Registry families render from their atomics;
/// ledger ε accounts, refusal counts, pending rows, active
/// connections, and uptime are scraped from their single sources of
/// truth at render time.
fn metrics_scrape(state: &AppState, path: &str) -> Routed {
    let format = path.split_once('?').map(|(_, q)| q).unwrap_or("");
    let extra = scraped_families(state);
    match format {
        "" | "format=text" | "format=prometheus" => {
            Routed::text(200, state.metrics.render_prometheus(&extra))
        }
        "format=json" => Routed::json(200, state.metrics.render_json(&extra).to_compact()),
        other => error(400, "bad_request", &format!("unknown query `{other}`")),
    }
}

/// The scrape-time families: values owned by the ledger/registry/
/// reactor rather than duplicated into metric state.
fn scraped_families(state: &AppState) -> Vec<ScrapedFamily> {
    let accounts = state.ledger.list().unwrap_or_default();
    let gauge = |name: &str, help: &str, rows: Vec<(Vec<String>, f64)>, kind| ScrapedFamily {
        name: name.to_string(),
        help: help.to_string(),
        kind,
        label_keys: if rows.iter().any(|(labels, _)| !labels.is_empty()) {
            vec!["dataset".to_string()]
        } else {
            Vec::new()
        },
        samples: rows,
    };
    let per_account = |f: fn(&crate::ledger::Account) -> f64| -> Vec<(Vec<String>, f64)> {
        accounts
            .iter()
            .map(|(name, account)| (vec![name.clone()], f(account)))
            .collect()
    };
    vec![
        gauge(
            "updp_ledger_epsilon_budget",
            "Total epsilon budget pinned at first registration, by dataset.",
            per_account(|a| a.budget),
            Kind::Gauge,
        ),
        gauge(
            "updp_ledger_epsilon_spent",
            "Epsilon spent (monotone, survives restarts), by dataset.",
            per_account(|a| a.spent),
            Kind::Gauge,
        ),
        gauge(
            "updp_ledger_epsilon_remaining",
            "Epsilon still available, by dataset.",
            per_account(|a| a.remaining()),
            Kind::Gauge,
        ),
        gauge(
            "updp_ledger_refusals_total",
            "budget_exhausted refusals served this process lifetime, by dataset.",
            state
                .ledger
                .refusal_counts()
                .into_iter()
                .map(|(name, count)| (vec![name], count as f64))
                .collect(),
            Kind::Counter,
        ),
        gauge(
            "updp_registry_pending_rows",
            "Unflushed delta-log rows, by dataset.",
            state
                .registry
                .list()
                .unwrap_or_default()
                .into_iter()
                .map(|row| (vec![row.name], row.pending as f64))
                .collect(),
            Kind::Gauge,
        ),
        gauge(
            "updp_reactor_connections_active",
            "Open connections across all shards.",
            vec![(Vec::new(), state.conns.load(Ordering::SeqCst) as f64)],
            Kind::Gauge,
        ),
        gauge(
            "updp_server_uptime_seconds",
            "Seconds since the server bound its listener.",
            vec![(Vec::new(), state.started.elapsed().as_secs_f64())],
            Kind::Gauge,
        ),
    ]
}

fn list(state: &AppState) -> Routed {
    let rows = match state.registry.list() {
        Ok(rows) => rows,
        Err(e) => return registry_error(&e),
    };
    let rows = rows
        .into_iter()
        .map(|row| {
            let mut fields = vec![
                ("name", row.name.as_str().into()),
                ("dim", row.dim.into()),
                ("records", row.records.into()),
                ("pending", row.pending.into()),
            ];
            if let Ok(account) = state.ledger.account(&row.name) {
                fields.push(("budget", wire::budget_json(&account)));
            }
            JsonValue::object(fields)
        })
        .collect();
    ok(JsonValue::object(vec![(
        "datasets",
        JsonValue::Array(rows),
    )]))
}

fn register(state: &AppState, body: &str) -> Routed {
    let request = match wire::parse_register(body) {
        Ok(r) => r,
        Err(e) => return error(400, "bad_request", &e.to_string()),
    };
    // Validate everything before touching either store: a rejected
    // registration must not create or alter any persisted account.
    if !(request.budget.is_finite() && request.budget > 0.0) {
        return error(400, "bad_request", "budget must be finite and positive");
    }
    if let Err(e) = crate::registry::validate_name(&request.name) {
        return registry_error(&e);
    }
    if let Err(e) = crate::registry::validate_columns(&request.columns) {
        return registry_error(&e);
    }
    // Ledger before registry: the moment a dataset becomes visible to
    // queries, its account must already exist (registry-first would
    // open a window of spurious 404s). The ledger owns replay
    // protection — re-registering re-attaches with spent and the
    // originally pinned budget intact. If the registry then reports a
    // duplicate, the account we touched is the *same dataset's*
    // account (names are the ids), so there is nothing to roll back.
    let account = match state.ledger.register(&request.name, request.budget) {
        Ok(account) => account,
        Err(e) => return ledger_error(&e),
    };
    match state.registry.register(&request.name, request.columns) {
        Ok(dataset) => {
            let records = match dataset.len() {
                Ok(records) => records,
                Err(e) => return registry_error(&e),
            };
            ok(JsonValue::object(vec![
                ("name", dataset.name.as_str().into()),
                ("dim", dataset.dim.into()),
                ("records", records.into()),
                ("budget", wire::budget_json(&account)),
            ]))
            .tagged(&request.name)
        }
        Err(e) => registry_error(&e),
    }
}

fn append(state: &AppState, body: &str) -> Routed {
    let (name, columns) = match wire::parse_append(body) {
        Ok(r) => r,
        Err(e) => return error(400, "bad_request", &e.to_string()),
    };
    match state.registry.append(&name, columns) {
        Ok(outcome) => ok(JsonValue::object(vec![
            ("name", name.as_str().into()),
            ("records", outcome.records.into()),
            ("pending", outcome.pending.into()),
            ("version", (outcome.version as f64).into()),
            ("flushed", outcome.flushed.into()),
        ]))
        .tagged(&name),
        Err(e) => registry_error(&e),
    }
}

fn flush(state: &AppState, body: &str) -> Routed {
    let name = match wire::parse_flush(body) {
        Ok(name) => name,
        Err(e) => return error(400, "bad_request", &e.to_string()),
    };
    match state.registry.flush(&name) {
        Ok(outcome) => ok(JsonValue::object(vec![
            ("name", name.as_str().into()),
            ("records", outcome.records.into()),
            ("version", (outcome.version as f64).into()),
            ("flushed_rows", outcome.flushed_rows.into()),
        ]))
        .tagged(&name),
        Err(e) => registry_error(&e),
    }
}

fn drop_dataset(state: &AppState, body: &str) -> Routed {
    let name = match wire::parse_drop(body) {
        Ok(name) => name,
        Err(e) => return error(400, "bad_request", &e.to_string()),
    };
    match state.registry.drop_dataset(&name) {
        Ok(()) => ok(JsonValue::object(vec![
            ("name", name.as_str().into()),
            ("dropped", true.into()),
            // The ledger entry survives by design (replay protection).
            ("ledger_retained", true.into()),
        ]))
        .tagged(&name),
        Err(e) => registry_error(&e),
    }
}

fn query(state: &AppState, body: &str) -> Routed {
    let request = match wire::parse_query(body) {
        Ok(r) => r,
        Err(e) => return error(400, "bad_request", &e.to_string()),
    };
    let dataset = match state.registry.get(&request.dataset) {
        Ok(d) => d,
        Err(e) => return registry_error(&e),
    };
    let mode = if request.raw {
        ReleaseMode::Raw
    } else {
        if !(request.bound.is_finite() && request.bound > 0.0) {
            return error(400, "bad_request", "bound must be finite and positive");
        }
        ReleaseMode::Hardened {
            bound: request.bound,
        }
    };
    let outcomes = match execute_batch_observed(
        &dataset,
        &state.estimators,
        &state.ledger,
        &request.specs,
        request.seed,
        mode,
        Some(&state.metrics),
    ) {
        Ok(outcomes) => outcomes,
        Err(EngineError::BadQuery(reason)) => return error(400, "bad_query", &reason),
        Err(e @ EngineError::UnknownEstimator { .. }) => {
            return error(400, "unknown_estimator", &e.to_string())
        }
        Err(EngineError::Ledger(e)) => return ledger_error(&e),
        Err(e @ EngineError::Internal(_)) => return error(500, "internal", &e.to_string()),
    };
    let account = match state.ledger.account(&request.dataset) {
        Ok(account) => account,
        Err(e) => return ledger_error(&e),
    };
    // Every query refused ⇒ the whole request was starved: 403 so
    // scripted callers (CI smoke, loadgen) fail loudly.
    let starved = outcomes
        .iter()
        .all(|o| matches!(o, QueryOutcome::Refused { .. }));
    let status = if starved { 403 } else { 200 };
    Routed::json(status, wire::query_response(&request, &outcomes, &account))
        .tagged(&request.dataset)
}
