//! The long-lived serving process: TCP accept loop, routing, and the
//! registry/ledger/engine wiring.
//!
//! One OS thread per connection (connections are long-lived and
//! keep-alive; the per-request work is estimator-bound, not
//! connection-bound), with all shared state behind the
//! registry/ledger synchronization described in their modules. The
//! HTTP surface:
//!
//! | Route | Body | Effect |
//! |---|---|---|
//! | `GET /v1/healthz` | — | liveness probe |
//! | `GET /v1/datasets` | — | list datasets + budgets |
//! | `GET /v1/estimators` | — | list servable estimators + assumptions |
//! | `POST /v1/register` | `{name, budget, data\|columns}` | create dataset + ledger account |
//! | `POST /v1/append` | `{name, data\|columns}` | buffer records (publishes per [`FlushPolicy`]) |
//! | `POST /v1/flush` | `{name}` | publish the pending delta log now |
//! | `POST /v1/drop` | `{name}` | drop data (ledger entry survives) |
//! | `POST /v1/query` | see [`crate::wire::parse_query`] | budgeted batch estimation |
//! | `POST /v1/shutdown` | — | graceful stop |

use crate::engine::{execute_batch, EngineError, EstimatorCatalog, QueryOutcome, ReleaseMode};
use crate::http::{read_request, write_response, HttpError, Request};
use crate::ledger::{Ledger, LedgerError};
use crate::registry::{FlushPolicy, Registry, RegistryError};
use crate::wire;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use updp_core::json::JsonValue;

/// Shared server state.
pub struct AppState {
    /// The sharded dataset registry.
    pub registry: Registry,
    /// The persisted privacy-budget ledger.
    pub ledger: Ledger,
    /// The name-keyed estimator catalog (universal + baselines).
    pub estimators: EstimatorCatalog,
    shutdown: AtomicBool,
}

/// A bound-but-not-yet-running server.
pub struct Server {
    listener: TcpListener,
    state: Arc<AppState>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) over `ledger`
    /// with the immediate (unbuffered) flush policy.
    pub fn bind(addr: &str, ledger: Ledger) -> std::io::Result<Server> {
        Server::bind_with_policy(addr, ledger, FlushPolicy::immediate())
    }

    /// Binds `addr` over `ledger` with an explicit write-buffer
    /// [`FlushPolicy`] (DESIGN.md §8): appends coalesce into a pending
    /// delta log and publish one snapshot per threshold crossing or
    /// explicit `POST /v1/flush`.
    pub fn bind_with_policy(
        addr: &str,
        ledger: Ledger,
        policy: FlushPolicy,
    ) -> std::io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            state: Arc::new(AppState {
                registry: Registry::with_policy(policy),
                ledger,
                estimators: EstimatorCatalog::standard(),
                shutdown: AtomicBool::new(false),
            }),
        })
    }

    /// The bound address (reports the ephemeral port after `:0` binds).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until a `POST /v1/shutdown` arrives, then joins every
    /// in-flight connection before returning.
    pub fn run(self) -> std::io::Result<()> {
        let mut handles: Vec<std::thread::JoinHandle<()>> = Vec::new();
        for stream in self.listener.incoming() {
            if self.state.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(_) => continue,
            };
            // Responses are written as head + body; without NODELAY
            // that pattern hits Nagle/delayed-ACK stalls (~40 ms per
            // response on loopback).
            let _ = stream.set_nodelay(true);
            // Idle connections wake every 500 ms to poll the shutdown
            // flag (HttpError::IdleTimeout), so a lingering keep-alive
            // client cannot block the post-shutdown join.
            let _ = stream.set_read_timeout(Some(std::time::Duration::from_millis(500)));
            let state = Arc::clone(&self.state);
            handles.retain(|h| !h.is_finished());
            handles.push(std::thread::spawn(move || serve_connection(stream, &state)));
            if self.state.shutdown.load(Ordering::SeqCst) {
                break;
            }
        }
        for handle in handles {
            let _ = handle.join();
        }
        Ok(())
    }
}

/// Signals shutdown and wakes the blocked accept loop with a
/// throwaway connection to ourselves.
fn trigger_shutdown(state: &AppState, local: std::io::Result<SocketAddr>) {
    state.shutdown.store(true, Ordering::SeqCst);
    if let Ok(addr) = local {
        let _ = TcpStream::connect(addr);
    }
}

fn serve_connection(stream: TcpStream, state: &AppState) {
    let peer_local = stream.local_addr();
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = stream;
    loop {
        let request = match read_request(&mut reader) {
            Ok(Some(request)) => request,
            Ok(None) => return, // peer closed an idle connection
            Err(HttpError::IdleTimeout) => {
                if state.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(HttpError::Malformed(reason)) => {
                let _ = write_response(
                    &mut writer,
                    400,
                    &wire::error_body("bad_request", &reason),
                    false,
                );
                return;
            }
            Err(HttpError::Io(_)) => return,
        };
        let keep_alive = request.keep_alive;
        let (status, body) = route(state, &request);
        let is_shutdown = request.method == "POST" && request.path == "/v1/shutdown";
        if write_response(&mut writer, status, &body, keep_alive && !is_shutdown).is_err() {
            return;
        }
        if is_shutdown {
            trigger_shutdown(state, peer_local);
            return;
        }
        if !keep_alive {
            return;
        }
    }
}

type Response = (u16, String);

fn ok(value: JsonValue) -> Response {
    (200, value.to_compact())
}

fn error(status: u16, code: &str, message: &str) -> Response {
    (status, wire::error_body(code, message))
}

fn registry_error(e: &RegistryError) -> Response {
    let (status, code) = match e {
        RegistryError::NotFound(_) => (404, "not_found"),
        RegistryError::AlreadyExists(_) => (409, "already_exists"),
        RegistryError::BadName(_) => (400, "bad_name"),
        RegistryError::DimensionMismatch { .. } | RegistryError::BadData(_) => (400, "bad_data"),
        // A poisoned lock means one worker panicked; answer 500 and
        // keep serving instead of cascading the panic.
        RegistryError::Poisoned => (500, "internal"),
    };
    error(status, code, &e.to_string())
}

fn ledger_error(e: &LedgerError) -> Response {
    match e {
        LedgerError::UnknownDataset(_) => error(404, "not_found", &e.to_string()),
        LedgerError::BadParameter(_) => error(400, "bad_request", &e.to_string()),
        LedgerError::Snapshot(_) => error(500, "ledger_io", &e.to_string()),
        LedgerError::Poisoned => error(500, "internal", &e.to_string()),
    }
}

fn route(state: &AppState, request: &Request) -> Response {
    let body = match std::str::from_utf8(&request.body) {
        Ok(text) => text,
        Err(_) => return error(400, "bad_request", "body is not UTF-8"),
    };
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/v1/healthz") => ok(JsonValue::object(vec![("ok", true.into())])),
        ("GET", "/v1/datasets") => list(state),
        ("GET", "/v1/estimators") => (200, wire::estimators_response(state.estimators.iter())),
        ("POST", "/v1/register") => register(state, body),
        ("POST", "/v1/append") => append(state, body),
        ("POST", "/v1/flush") => flush(state, body),
        ("POST", "/v1/drop") => drop_dataset(state, body),
        ("POST", "/v1/query") => query(state, body),
        ("POST", "/v1/shutdown") => ok(JsonValue::object(vec![("shutting_down", true.into())])),
        (_, path) if known_path(path) => error(405, "method_not_allowed", path),
        (_, path) => error(404, "not_found", path),
    }
}

fn known_path(path: &str) -> bool {
    matches!(
        path,
        "/v1/healthz"
            | "/v1/datasets"
            | "/v1/estimators"
            | "/v1/register"
            | "/v1/append"
            | "/v1/flush"
            | "/v1/drop"
            | "/v1/query"
            | "/v1/shutdown"
    )
}

fn list(state: &AppState) -> Response {
    let rows = match state.registry.list() {
        Ok(rows) => rows,
        Err(e) => return registry_error(&e),
    };
    let rows = rows
        .into_iter()
        .map(|row| {
            let mut fields = vec![
                ("name", row.name.as_str().into()),
                ("dim", row.dim.into()),
                ("records", row.records.into()),
                ("pending", row.pending.into()),
            ];
            if let Ok(account) = state.ledger.account(&row.name) {
                fields.push(("budget", wire::budget_json(&account)));
            }
            JsonValue::object(fields)
        })
        .collect();
    ok(JsonValue::object(vec![(
        "datasets",
        JsonValue::Array(rows),
    )]))
}

fn register(state: &AppState, body: &str) -> Response {
    let request = match wire::parse_register(body) {
        Ok(r) => r,
        Err(e) => return error(400, "bad_request", &e.to_string()),
    };
    // Validate everything before touching either store: a rejected
    // registration must not create or alter any persisted account.
    if !(request.budget.is_finite() && request.budget > 0.0) {
        return error(400, "bad_request", "budget must be finite and positive");
    }
    if let Err(e) = crate::registry::validate_name(&request.name) {
        return registry_error(&e);
    }
    if let Err(e) = crate::registry::validate_columns(&request.columns) {
        return registry_error(&e);
    }
    // Ledger before registry: the moment a dataset becomes visible to
    // queries, its account must already exist (registry-first would
    // open a window of spurious 404s). The ledger owns replay
    // protection — re-registering re-attaches with spent and the
    // originally pinned budget intact. If the registry then reports a
    // duplicate, the account we touched is the *same dataset's*
    // account (names are the ids), so there is nothing to roll back.
    let account = match state.ledger.register(&request.name, request.budget) {
        Ok(account) => account,
        Err(e) => return ledger_error(&e),
    };
    match state.registry.register(&request.name, request.columns) {
        Ok(dataset) => {
            let records = match dataset.len() {
                Ok(records) => records,
                Err(e) => return registry_error(&e),
            };
            ok(JsonValue::object(vec![
                ("name", dataset.name.as_str().into()),
                ("dim", dataset.dim.into()),
                ("records", records.into()),
                ("budget", wire::budget_json(&account)),
            ]))
        }
        Err(e) => registry_error(&e),
    }
}

fn append(state: &AppState, body: &str) -> Response {
    let (name, columns) = match wire::parse_append(body) {
        Ok(r) => r,
        Err(e) => return error(400, "bad_request", &e.to_string()),
    };
    match state.registry.append(&name, columns) {
        Ok(outcome) => ok(JsonValue::object(vec![
            ("name", name.as_str().into()),
            ("records", outcome.records.into()),
            ("pending", outcome.pending.into()),
            ("version", (outcome.version as f64).into()),
            ("flushed", outcome.flushed.into()),
        ])),
        Err(e) => registry_error(&e),
    }
}

fn flush(state: &AppState, body: &str) -> Response {
    let name = match wire::parse_flush(body) {
        Ok(name) => name,
        Err(e) => return error(400, "bad_request", &e.to_string()),
    };
    match state.registry.flush(&name) {
        Ok(outcome) => ok(JsonValue::object(vec![
            ("name", name.as_str().into()),
            ("records", outcome.records.into()),
            ("version", (outcome.version as f64).into()),
            ("flushed_rows", outcome.flushed_rows.into()),
        ])),
        Err(e) => registry_error(&e),
    }
}

fn drop_dataset(state: &AppState, body: &str) -> Response {
    let name = match wire::parse_drop(body) {
        Ok(name) => name,
        Err(e) => return error(400, "bad_request", &e.to_string()),
    };
    match state.registry.drop_dataset(&name) {
        Ok(()) => ok(JsonValue::object(vec![
            ("name", name.as_str().into()),
            ("dropped", true.into()),
            // The ledger entry survives by design (replay protection).
            ("ledger_retained", true.into()),
        ])),
        Err(e) => registry_error(&e),
    }
}

fn query(state: &AppState, body: &str) -> Response {
    let request = match wire::parse_query(body) {
        Ok(r) => r,
        Err(e) => return error(400, "bad_request", &e.to_string()),
    };
    let dataset = match state.registry.get(&request.dataset) {
        Ok(d) => d,
        Err(e) => return registry_error(&e),
    };
    let mode = if request.raw {
        ReleaseMode::Raw
    } else {
        if !(request.bound.is_finite() && request.bound > 0.0) {
            return error(400, "bad_request", "bound must be finite and positive");
        }
        ReleaseMode::Hardened {
            bound: request.bound,
        }
    };
    let outcomes = match execute_batch(
        &dataset,
        &state.estimators,
        &state.ledger,
        &request.specs,
        request.seed,
        mode,
    ) {
        Ok(outcomes) => outcomes,
        Err(EngineError::BadQuery(reason)) => return error(400, "bad_query", &reason),
        Err(e @ EngineError::UnknownEstimator { .. }) => {
            return error(400, "unknown_estimator", &e.to_string())
        }
        Err(EngineError::Ledger(e)) => return ledger_error(&e),
        Err(e @ EngineError::Internal(_)) => return error(500, "internal", &e.to_string()),
    };
    let account = match state.ledger.account(&request.dataset) {
        Ok(account) => account,
        Err(e) => return ledger_error(&e),
    };
    // Every query refused ⇒ the whole request was starved: 403 so
    // scripted callers (CI smoke, loadgen) fail loudly.
    let starved = outcomes
        .iter()
        .all(|o| matches!(o, QueryOutcome::Refused { .. }));
    let status = if starved { 403 } else { 200 };
    (status, wire::query_response(&request, &outcomes, &account))
}
