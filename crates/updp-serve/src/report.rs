//! The `BENCH_serve.json` load-test report, mirroring
//! `updp-bench::baseline`: schema owned by code, round-tripped through
//! the shared [`updp_core::json`] codec, smoke-checked in CI by
//! `loadgen --check` so the report machinery cannot rot.

use updp_core::json::JsonValue;

/// The current schema tag. v5 added the server-side flight-recorder
/// columns per run (`server_p50_ms`/`server_p99_ms` from the
/// `/v1/metrics` handle-latency histogram delta around the run, plus
/// `server_503`/`server_panics` counter deltas), so the report shows
/// queue/transport time separately from in-handler time.
pub const SCHEMA: &str = "updp-serve-loadgen/v5";

/// The previous schema tag. v4 added host metadata (`host_kernel`,
/// `host_arch`) alongside `host_threads`, and the reactor-era
/// high-connection-count sweep rows (64/256/1024) in the batch
/// workload; a committed v4 report still parses (the v5 server-side
/// columns default to zero).
pub const SCHEMA_V4: &str = "updp-serve-loadgen/v4";

/// Two schemas back. v3 added the streaming workload rows and the
/// top-level `streaming_ratio` field; a committed v3 report still
/// parses (the v4 host metadata defaults to empty), so old baselines
/// remain readable.
pub const SCHEMA_V3: &str = "updp-serve-loadgen/v3";

/// Three schemas back. A committed v2 report (no `streaming_ratio`,
/// no streaming rows, no host metadata) still parses too.
pub const SCHEMA_V2: &str = "updp-serve-loadgen/v2";

/// Host metadata for the report: `(kernel release, architecture)`.
/// Reports carry it so a baseline regenerated on different hardware
/// is distinguishable after the fact.
pub fn host_meta() -> (String, String) {
    let kernel = std::fs::read_to_string("/proc/sys/kernel/osrelease")
        .map(|s| s.trim().to_string())
        .unwrap_or_default();
    (kernel, std::env::consts::ARCH.to_string())
}

/// One measured load level.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadRun {
    /// Workload id: `"batch"` (the hardened mean+p90+iqr batch),
    /// `"repeat-quantile-cold"` (fresh dataset per request — every
    /// query pays the full discretize-and-sort), or
    /// `"repeat-quantile-warm"` (one dataset queried repeatedly — the
    /// `PreparedDataset` grid cache absorbs the sort). Cold vs warm
    /// p50/p99 is the cache win. Since v3, the streaming ingestion
    /// triple: `"streaming-append"` (buffered 1-row appends),
    /// `"streaming-flush"` (publication of the pending delta log — the
    /// `O(n + k)` cache merge), and `"streaming-query"` (quantile
    /// queries against freshly-published snapshots; materially below
    /// the cold baseline because appended snapshots keep their caches
    /// warm).
    pub workload: String,
    /// Concurrent client connections.
    pub connections: usize,
    /// Total requests completed across all connections.
    pub requests: usize,
    /// Wall milliseconds for the whole run.
    pub wall_ms: f64,
    /// Requests per second (`requests / wall`).
    pub rps: f64,
    /// Median request latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile request latency, milliseconds.
    pub p99_ms: f64,
    /// Server-side median handler latency (ms) over the run, from the
    /// `/v1/metrics` handle-latency histogram delta. Bucketed
    /// (nearest-rank on log₂ bucket upper edges), so it is coarser
    /// than the client-side `p50_ms`; the gap between the two is
    /// queue + transport time. Zero when parsed from a pre-v5 report
    /// or when the scrape was unavailable.
    pub server_p50_ms: f64,
    /// Server-side 99th-percentile handler latency (ms); see
    /// `server_p50_ms`.
    pub server_p99_ms: f64,
    /// 503s the server issued during the run (connection-cap
    /// rejections + write-queue overload), from counter deltas.
    pub server_503: usize,
    /// Handler panics the reactor caught during the run (should stay
    /// 0; CI asserts it).
    pub server_panics: usize,
}

/// The full load report.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Schema tag; bump on breaking changes.
    pub schema: String,
    /// `available_parallelism()` on the measuring host.
    pub host_threads: usize,
    /// Kernel release of the measuring host (empty when parsed from a
    /// pre-v4 report or when unavailable).
    pub host_kernel: String,
    /// CPU architecture of the measuring host (empty when parsed from
    /// a pre-v4 report).
    pub host_arch: String,
    /// Records per request-target dataset (batch workload).
    pub dataset_records: usize,
    /// Records per dataset in the repeat-quantile workloads.
    pub quantile_records: usize,
    /// Append:query ratio of the streaming workload (`"1:1"`; empty
    /// when parsed from a pre-v3 report).
    pub streaming_ratio: String,
    /// One row per connection count (the committed file measures 1
    /// and 8).
    pub runs: Vec<LoadRun>,
    /// Free-form measurement caveats.
    pub note: String,
}

impl ServeReport {
    /// Serializes to pretty-printed JSON (stable field order).
    pub fn to_json(&self) -> String {
        let runs = self
            .runs
            .iter()
            .map(|run| {
                JsonValue::object(vec![
                    ("workload", run.workload.as_str().into()),
                    ("connections", run.connections.into()),
                    ("requests", run.requests.into()),
                    ("wall_ms", run.wall_ms.into()),
                    ("rps", run.rps.into()),
                    ("p50_ms", run.p50_ms.into()),
                    ("p99_ms", run.p99_ms.into()),
                    ("server_p50_ms", run.server_p50_ms.into()),
                    ("server_p99_ms", run.server_p99_ms.into()),
                    ("server_503", run.server_503.into()),
                    ("server_panics", run.server_panics.into()),
                ])
            })
            .collect();
        let mut out = JsonValue::object(vec![
            ("schema", self.schema.as_str().into()),
            ("host_threads", self.host_threads.into()),
            ("host_kernel", self.host_kernel.as_str().into()),
            ("host_arch", self.host_arch.as_str().into()),
            ("dataset_records", self.dataset_records.into()),
            ("quantile_records", self.quantile_records.into()),
            ("streaming_ratio", self.streaming_ratio.as_str().into()),
            ("runs", JsonValue::Array(runs)),
            ("note", self.note.as_str().into()),
        ])
        .to_pretty();
        out.push('\n');
        out
    }

    /// Parses a report previously produced by [`ServeReport::to_json`]
    /// — the current v5 layout or a committed v4/v3/v2 one (v4 lacks
    /// the server-side columns, which default to zero; v3 additionally
    /// lacks host metadata; v2 additionally lacks `streaming_ratio`
    /// and the streaming rows). Missing legacy fields default to
    /// empty/zero.
    pub fn from_json(input: &str) -> Result<Self, String> {
        let doc = JsonValue::parse(input)?;
        let obj = doc.as_object("top level")?;
        let schema = obj.get_str("schema")?;
        if schema != SCHEMA && schema != SCHEMA_V4 && schema != SCHEMA_V3 && schema != SCHEMA_V2 {
            return Err(format!(
                "unknown schema `{schema}`, expected `{SCHEMA}` (or legacy `{SCHEMA_V4}`/`{SCHEMA_V3}`/`{SCHEMA_V2}`)"
            ));
        }
        let streaming_ratio = if schema == SCHEMA_V2 {
            String::new()
        } else {
            obj.get_str("streaming_ratio")?
        };
        let (host_kernel, host_arch) = if schema == SCHEMA_V3 || schema == SCHEMA_V2 {
            (String::new(), String::new())
        } else {
            (obj.get_str("host_kernel")?, obj.get_str("host_arch")?)
        };
        let runs = obj
            .get_array("runs")?
            .iter()
            .map(|v| -> Result<LoadRun, String> {
                let run = v.as_object("run")?;
                let (server_p50_ms, server_p99_ms, server_503, server_panics) = if schema == SCHEMA
                {
                    (
                        run.get_f64("server_p50_ms")?,
                        run.get_f64("server_p99_ms")?,
                        run.get_usize("server_503")?,
                        run.get_usize("server_panics")?,
                    )
                } else {
                    (0.0, 0.0, 0, 0)
                };
                Ok(LoadRun {
                    workload: run.get_str("workload")?,
                    connections: run.get_usize("connections")?,
                    requests: run.get_usize("requests")?,
                    wall_ms: run.get_f64("wall_ms")?,
                    rps: run.get_f64("rps")?,
                    p50_ms: run.get_f64("p50_ms")?,
                    p99_ms: run.get_f64("p99_ms")?,
                    server_p50_ms,
                    server_p99_ms,
                    server_503,
                    server_panics,
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ServeReport {
            schema,
            host_threads: obj.get_usize("host_threads")?,
            host_kernel,
            host_arch,
            dataset_records: obj.get_usize("dataset_records")?,
            quantile_records: obj.get_usize("quantile_records")?,
            streaming_ratio,
            runs,
            note: obj.get_str("note")?,
        })
    }
}

/// The `p`-quantile of `sorted` latencies (nearest-rank).
pub fn percentile_ms(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[cfg(test)]
// Exact `==` on f64 is deliberate in tests: they pin bit-identical
// outputs (DESIGN.md §5), so an epsilon tolerance would weaken them.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    fn sample() -> ServeReport {
        ServeReport {
            schema: SCHEMA.into(),
            host_threads: 4,
            host_kernel: "6.1.0-test".into(),
            host_arch: "x86_64".into(),
            dataset_records: 10_000,
            quantile_records: 100_000,
            streaming_ratio: "1:1".into(),
            runs: vec![
                LoadRun {
                    workload: "batch".into(),
                    connections: 1,
                    requests: 500,
                    wall_ms: 1250.5,
                    rps: 399.84,
                    p50_ms: 2.25,
                    p99_ms: 8.875,
                    server_p50_ms: 1.024,
                    server_p99_ms: 4.096,
                    server_503: 0,
                    server_panics: 0,
                },
                LoadRun {
                    workload: "batch".into(),
                    connections: 8,
                    requests: 4_000,
                    wall_ms: 3000.125,
                    rps: 1333.28,
                    p50_ms: 5.5,
                    p99_ms: 19.25,
                    server_p50_ms: 2.048,
                    server_p99_ms: 8.192,
                    server_503: 3,
                    server_panics: 0,
                },
            ],
            note: "test sample".into(),
        }
    }

    #[test]
    fn round_trips_exactly() {
        let report = sample();
        let json = report.to_json();
        let back = ServeReport::from_json(&json).unwrap();
        assert_eq!(back, report);
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn rejects_wrong_schema_and_mangled_input() {
        assert!(ServeReport::from_json("{}").is_err());
        assert!(ServeReport::from_json("{\"schema\": \"updp-bench-baseline/v1\"}").is_err());
        let json = sample().to_json();
        assert!(ServeReport::from_json(&json[..json.len() - 2]).is_err());
    }

    #[test]
    fn committed_v4_layout_still_parses() {
        // The exact shape of the BENCH_serve.json committed before
        // the v5 bump: no server-side flight-recorder columns. Old
        // baselines must stay readable, with those columns zero.
        let v4 = r#"{
  "schema": "updp-serve-loadgen/v4",
  "host_threads": 1,
  "host_kernel": "6.1.0-test",
  "host_arch": "x86_64",
  "dataset_records": 10000,
  "quantile_records": 100000,
  "streaming_ratio": "1:1",
  "runs": [
    {
      "workload": "batch",
      "connections": 64,
      "requests": 640,
      "wall_ms": 812.75,
      "rps": 787.4500153798832,
      "p50_ms": 71.924,
      "p99_ms": 117.30999999999999
    }
  ],
  "note": "hardened batch (mean + p90 + iqr) per request"
}
"#;
        let report = ServeReport::from_json(v4).unwrap();
        assert_eq!(report.schema, SCHEMA_V4);
        assert_eq!(report.host_kernel, "6.1.0-test");
        assert_eq!(report.runs[0].p50_ms, 71.924);
        assert_eq!(report.runs[0].server_p50_ms, 0.0);
        assert_eq!(report.runs[0].server_p99_ms, 0.0);
        assert_eq!(report.runs[0].server_503, 0);
        assert_eq!(report.runs[0].server_panics, 0);
        // Re-rendering writes the current layout, which round-trips.
        let mut upgraded = report.clone();
        upgraded.schema = SCHEMA.into();
        let json = upgraded.to_json();
        assert_eq!(ServeReport::from_json(&json).unwrap(), upgraded);
    }

    #[test]
    fn committed_v3_layout_still_parses() {
        // The exact shape of the BENCH_serve.json committed before
        // the v4 bump: no `host_kernel`/`host_arch`. Old baselines
        // must stay readable.
        let v3 = r#"{
  "schema": "updp-serve-loadgen/v3",
  "host_threads": 1,
  "dataset_records": 10000,
  "quantile_records": 100000,
  "streaming_ratio": "1:1",
  "runs": [
    {
      "workload": "batch",
      "connections": 1,
      "requests": 500,
      "wall_ms": 319.2396,
      "rps": 1566.2217343963594,
      "p50_ms": 0.6157670000000001,
      "p99_ms": 0.9463959999999999
    }
  ],
  "note": "hardened batch (mean + p90 + iqr) per request"
}
"#;
        let report = ServeReport::from_json(v3).unwrap();
        assert_eq!(report.schema, SCHEMA_V3);
        assert_eq!(report.host_kernel, "");
        assert_eq!(report.host_arch, "");
        assert_eq!(report.streaming_ratio, "1:1");
        assert_eq!(report.runs[0].p50_ms, 0.6157670000000001);
        // Re-rendering writes the current layout, which round-trips.
        let mut upgraded = report.clone();
        upgraded.schema = SCHEMA.into();
        let json = upgraded.to_json();
        assert_eq!(ServeReport::from_json(&json).unwrap(), upgraded);
    }

    #[test]
    fn committed_v2_layout_still_parses() {
        // The exact shape of the BENCH_serve.json committed before the
        // v3 bump: no `streaming_ratio`, no streaming rows. Old
        // baselines must stay readable.
        let v2 = r#"{
  "schema": "updp-serve-loadgen/v2",
  "host_threads": 1,
  "dataset_records": 10000,
  "quantile_records": 100000,
  "runs": [
    {
      "workload": "repeat-quantile-cold",
      "connections": 1,
      "requests": 100,
      "wall_ms": 593.9923,
      "rps": 168.35235069545513,
      "p50_ms": 5.754673,
      "p99_ms": 10.455720999999999
    }
  ],
  "note": "hardened batch (mean + p90 + iqr) per request"
}
"#;
        let report = ServeReport::from_json(v2).unwrap();
        assert_eq!(report.schema, SCHEMA_V2);
        assert_eq!(report.streaming_ratio, "");
        assert_eq!(report.runs.len(), 1);
        assert_eq!(report.runs[0].p50_ms, 5.754673);
        // Re-rendering writes the current layout, which round-trips.
        let mut upgraded = report.clone();
        upgraded.schema = SCHEMA.into();
        let json = upgraded.to_json();
        assert_eq!(ServeReport::from_json(&json).unwrap(), upgraded);
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let sorted: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile_ms(&sorted, 0.50), 50.0);
        assert_eq!(percentile_ms(&sorted, 0.99), 99.0);
        assert_eq!(percentile_ms(&sorted, 1.0), 100.0);
        assert_eq!(percentile_ms(&[], 0.5), 0.0);
    }
}
