//! `serve-client` — scripted queries against a running `updp-serve`.
//!
//! ```text
//! serve-client --addr HOST:PORT <command> [args]
//!
//! commands:
//!   register NAME --budget E (--data x,y,… | --gaussian N)
//!   append   NAME --data x,y,…
//!   flush    NAME
//!   drop     NAME
//!   list
//!   query    NAME --seed S [--raw] [--mean E] [--variance E]
//!            [--quantile Q:E] [--iqr E] [--multi-mean E]
//!            [--estimator NAME:E]... [--param k=v]...
//!   estimators
//!   healthz
//!   metrics [--json]
//!   trace
//!   shutdown
//! ```
//!
//! Prints the server's JSON response body on stdout. Exits 0 on a 2xx
//! response, 1 otherwise (so shell pipelines can assert refusals —
//! the CI smoke step relies on a budget-exhausted query exiting
//! nonzero).

use updp_serve::client::{query_body, query_body_named, ClientError, Connection, NamedQuery};

fn die(message: &str) -> ! {
    eprintln!("serve-client: {message}");
    std::process::exit(2);
}

fn parse_data(text: &str) -> Vec<f64> {
    text.split(',')
        .map(|tok| {
            tok.trim()
                .parse::<f64>()
                .unwrap_or_else(|_| die(&format!("bad number `{tok}` in --data")))
        })
        .collect()
}

/// Deterministic Gaussian(100, 5) sample for quickstart registration.
fn gaussian(n: usize) -> Vec<f64> {
    use updp_dist::ContinuousDistribution;
    let mut rng = updp_core::rng::seeded(0xDA7A);
    updp_dist::Gaussian::new(100.0, 5.0)
        .expect("valid parameters")
        .sample_vec(&mut rng, n)
}

struct Args(Vec<String>);

impl Args {
    fn flag(&mut self, name: &str) -> bool {
        if let Some(i) = self.0.iter().position(|a| a == name) {
            self.0.remove(i);
            true
        } else {
            false
        }
    }

    fn value(&mut self, name: &str) -> Option<String> {
        let i = self.0.iter().position(|a| a == name)?;
        if i + 1 >= self.0.len() {
            die(&format!("{name} needs a value"));
        }
        self.0.remove(i);
        Some(self.0.remove(i))
    }

    fn f64_value(&mut self, name: &str) -> Option<f64> {
        self.value(name).map(|v| {
            v.parse()
                .unwrap_or_else(|_| die(&format!("{name} needs a number, got `{v}`")))
        })
    }

    fn positional(&mut self) -> Option<String> {
        let i = self.0.iter().position(|a| !a.starts_with("--"))?;
        Some(self.0.remove(i))
    }

    fn finish(self) {
        if let Some(extra) = self.0.first() {
            die(&format!("unexpected argument `{extra}`"));
        }
    }
}

fn main() {
    let mut args = Args(std::env::args().skip(1).collect());
    let addr = args
        .value("--addr")
        .unwrap_or_else(|| "127.0.0.1:7817".into());
    let command = args.positional().unwrap_or_else(|| die("missing command"));

    let mut connection =
        Connection::open(&addr).unwrap_or_else(|e| die(&format!("cannot reach {addr}: {e}")));
    let result = match command.as_str() {
        "register" => {
            let name = args.positional().unwrap_or_else(|| die("register NAME"));
            let budget = args
                .f64_value("--budget")
                .unwrap_or_else(|| die("register needs --budget"));
            let data = match (args.value("--data"), args.value("--gaussian")) {
                (Some(text), None) => parse_data(&text),
                (None, Some(n)) => gaussian(
                    n.parse()
                        .unwrap_or_else(|_| die(&format!("bad --gaussian `{n}`"))),
                ),
                _ => die("register needs exactly one of --data / --gaussian"),
            };
            args.finish();
            connection.register(&name, budget, &data)
        }
        "append" => {
            let name = args.positional().unwrap_or_else(|| die("append NAME"));
            let data = args
                .value("--data")
                .map(|text| parse_data(&text))
                .unwrap_or_else(|| die("append needs --data"));
            args.finish();
            connection.append(&name, &data)
        }
        "flush" => {
            let name = args.positional().unwrap_or_else(|| die("flush NAME"));
            args.finish();
            connection.flush(&name)
        }
        "drop" => {
            let name = args.positional().unwrap_or_else(|| die("drop NAME"));
            args.finish();
            let body = updp_core::json::JsonValue::object(vec![("name", name.as_str().into())])
                .to_compact();
            connection.request("POST", "/v1/drop", &body)
        }
        "list" => {
            args.finish();
            connection.request("GET", "/v1/datasets", "")
        }
        "query" => {
            let name = args.positional().unwrap_or_else(|| die("query NAME"));
            let seed = args
                .f64_value("--seed")
                .unwrap_or_else(|| die("query needs --seed")) as u64;
            let raw = args.flag("--raw");
            let mut queries: Vec<(&str, f64, Option<f64>)> = Vec::new();
            if let Some(eps) = args.f64_value("--mean") {
                queries.push(("mean", eps, None));
            }
            if let Some(eps) = args.f64_value("--variance") {
                queries.push(("variance", eps, None));
            }
            if let Some(spec) = args.value("--quantile") {
                let (q, eps) = spec
                    .split_once(':')
                    .unwrap_or_else(|| die("--quantile needs Q:E"));
                queries.push((
                    "quantile",
                    eps.parse().unwrap_or_else(|_| die("bad --quantile ε")),
                    Some(q.parse().unwrap_or_else(|_| die("bad --quantile level"))),
                ));
            }
            if let Some(eps) = args.f64_value("--iqr") {
                queries.push(("iqr", eps, None));
            }
            if let Some(eps) = args.f64_value("--multi-mean") {
                queries.push(("multi-mean", eps, None));
            }
            // Any catalog estimator by name: --estimator NAME:E with
            // its parameters as repeated --param k=v (applied to every
            // --estimator query in the request).
            let mut named: Vec<(String, f64)> = Vec::new();
            while let Some(spec) = args.value("--estimator") {
                let (est, eps) = spec
                    .split_once(':')
                    .unwrap_or_else(|| die("--estimator needs NAME:E"));
                named.push((
                    est.to_string(),
                    eps.parse().unwrap_or_else(|_| die("bad --estimator ε")),
                ));
            }
            let mut params: Vec<(String, f64)> = Vec::new();
            while let Some(kv) = args.value("--param") {
                let (k, v) = kv
                    .split_once('=')
                    .unwrap_or_else(|| die("--param needs k=v"));
                params.push((
                    k.to_string(),
                    v.parse().unwrap_or_else(|_| die("bad --param value")),
                ));
            }
            if queries.is_empty() && named.is_empty() {
                die("query needs at least one of --mean/--variance/--quantile/--iqr/--multi-mean/--estimator");
            }
            args.finish();
            if named.is_empty() {
                connection.query(&query_body(&name, seed, raw, &queries))
            } else {
                if !queries.is_empty() {
                    die("mix of kind flags and --estimator is not supported; use --estimator for all");
                }
                let named: Vec<NamedQuery<'_>> = named
                    .iter()
                    .map(|(est, eps)| NamedQuery {
                        estimator: est,
                        epsilon: *eps,
                        params: params.iter().map(|(k, v)| (k.as_str(), *v)).collect(),
                    })
                    .collect();
                connection.query(&query_body_named(&name, seed, raw, &named))
            }
        }
        "estimators" => {
            args.finish();
            connection.request("GET", "/v1/estimators", "")
        }
        "healthz" => {
            args.finish();
            connection.healthz()
        }
        "metrics" => {
            let json = args.flag("--json");
            args.finish();
            if json {
                connection.metrics_json()
            } else {
                connection.metrics_text()
            }
        }
        "trace" => {
            args.finish();
            connection.trace()
        }
        "shutdown" => {
            args.finish();
            connection.shutdown()
        }
        other => die(&format!("unknown command `{other}`")),
    };

    match result {
        Ok(body) => println!("{body}"),
        Err(ClientError::Status { status, body }) => {
            println!("{body}");
            eprintln!("serve-client: http {status}");
            std::process::exit(1);
        }
        Err(ClientError::Transport(reason)) => {
            eprintln!("serve-client: {reason}");
            std::process::exit(1);
        }
    }
}
