//! `loadgen` — drives N concurrent connections against `updp-serve`
//! and writes the `BENCH_serve.json` throughput/latency report.
//!
//! ```text
//! loadgen [--addr HOST:PORT] [--requests N] [--connections a,b,…]
//!         [--records N] [--quantile-records N]
//!         [--streaming-ratio A:Q] [--out PATH] [--check]
//! ```
//!
//! Without `--addr`, an in-process server is started on an ephemeral
//! port (self-contained measurement). Each connection count `c` gets
//! a fresh run: `c` threads, each with its own keep-alive connection
//! over a registered dataset (a huge ε budget, so the run is never
//! starved; at most 64 distinct datasets per level — beyond that,
//! workers share round-robin, keeping setup cost sane at the 256/1024
//! fan-in levels), each issuing hardened batch queries
//! (mean + quantile(0.9) + iqr). Per-connection request counts scale
//! down past 8 connections (`requests·8/c`, floor 10) so the sweep
//! measures fan-in latency, not ever-longer wall time. Latency is per
//! request, merged across connections; p50/p99 are nearest-rank.
//!
//! Two additional single-connection workloads measure the
//! `PreparedDataset` cache win on repeated same-dataset quantile
//! queries over `--quantile-records` rows:
//! `repeat-quantile-cold` registers a **fresh** dataset before every
//! request (so each query pays the full discretize-and-sort, the
//! pre-cache behaviour), `repeat-quantile-warm` queries **one**
//! dataset repeatedly (the cached grid absorbs the sort after the
//! first hit). Cold vs warm p50/p99 in `BENCH_serve.json` is the
//! before/after of the cache.
//!
//! The `streaming` workload (schema v3, DESIGN.md §8) measures the
//! ingestion path on a warm `--quantile-records` dataset: each
//! iteration issues `A` buffered 1-row appends, one `/v1/flush` (the
//! whole burst publishes as ONE successor snapshot whose caches are
//! merge-maintained in `O(n + k)`), then `Q` quantile queries against
//! the freshly-published snapshot — `A:Q` from `--streaming-ratio`.
//! Three rows land in the report: `streaming-append`,
//! `streaming-flush`, and `streaming-query`. The acceptance number is
//! `streaming-query` p50: with incremental cache maintenance it stays
//! near the warm baseline instead of regressing to
//! `repeat-quantile-cold`'s full re-sort.
//!
//! Around every workload the generator scrapes the server's
//! `/v1/metrics?format=json` and embeds the deltas in the run rows
//! (schema v5): `server_p50_ms`/`server_p99_ms` from the per-endpoint
//! handle-latency histogram (bucketed upper bounds — the gap to the
//! client-side percentiles is queue + transport time), plus
//! `server_503`/`server_panics` counters. A server without the
//! flight recorder (`--no-metrics`) yields zeros.
//!
//! `--check` is the CI smoke mode (mirroring `bench_baseline
//! --check`): tiny run, then an assertion that the report
//! round-trips through the shared JSON codec. Nothing is written.

use std::time::{Duration, Instant};
use updp_core::json::JsonValue;
use updp_obs::{HistogramSnapshot, BUCKETS};
use updp_serve::client::{query_body, Connection};
use updp_serve::report::{host_meta, percentile_ms, LoadRun, ServeReport, SCHEMA};
use updp_serve::{FlushPolicy, Ledger, Server};

fn die(message: &str) -> ! {
    eprintln!("loadgen: {message}");
    std::process::exit(2);
}

fn gaussian(n: usize, seed: u64) -> Vec<f64> {
    use updp_dist::ContinuousDistribution;
    let mut rng = updp_core::rng::seeded(seed);
    updp_dist::Gaussian::new(100.0, 5.0)
        .expect("valid parameters")
        .sample_vec(&mut rng, n)
}

/// At most this many distinct datasets per load level: beyond it,
/// connections share datasets round-robin. Keeps the 256/1024 fan-in
/// levels about transport fan-in rather than registration volume.
const MAX_LEVEL_DATASETS: usize = 64;

/// Per-connection request count at level `c`: the configured count up
/// to 8 connections, then scaled down (`requests·8/c`, floor 10) so
/// total work per level stays roughly constant across the sweep.
fn requests_at(connections: usize, requests: usize) -> usize {
    if connections <= 8 {
        requests
    } else {
        ((requests * 8) / connections).max(10)
    }
}

/// One load level: `connections` worker threads, each issuing
/// [`requests_at`] queries on its (possibly shared) dataset. Returns
/// the merged run row.
fn run_level(addr: &str, connections: usize, requests: usize, records: usize) -> LoadRun {
    let requests = requests_at(connections, requests);
    let datasets = connections.min(MAX_LEVEL_DATASETS);
    // Register the datasets first over one connection (setup, not
    // timed). 409 means a previous loadgen run against this server
    // already registered the name — re-attach instead of dying, so
    // repeat measurements against a long-running server work.
    let mut setup = Connection::open(addr).unwrap_or_else(|e| die(&e.to_string()));
    for dataset in 0..datasets {
        let name = format!("load-c{connections}-w{dataset}");
        match setup.register(&name, 1e12, &gaussian(records, dataset as u64)) {
            Ok(_) => {}
            Err(updp_serve::client::ClientError::Status { status: 409, .. }) => {}
            Err(e) => die(&format!("register {name}: {e}")),
        }
    }
    let started = Instant::now();
    let latencies: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|worker| {
                scope.spawn(move || {
                    let name = format!("load-c{connections}-w{}", worker % datasets);
                    let mut connection =
                        Connection::open(addr).unwrap_or_else(|e| die(&e.to_string()));
                    let mut latencies = Vec::with_capacity(requests);
                    for i in 0..requests {
                        let body = query_body(
                            &name,
                            i as u64,
                            false,
                            &[
                                ("mean", 1e-3, None),
                                ("quantile", 1e-3, Some(0.9)),
                                ("iqr", 1e-3, None),
                            ],
                        );
                        let sent = Instant::now();
                        connection
                            .query(&body)
                            .unwrap_or_else(|e| die(&format!("query {name}: {e}")));
                        latencies.push(sent.elapsed().as_secs_f64() * 1e3);
                    }
                    latencies
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    summarize("batch", connections, latencies, wall_ms)
}

fn summarize(workload: &str, connections: usize, mut latencies: Vec<f64>, wall_ms: f64) -> LoadRun {
    latencies.sort_by(f64::total_cmp);
    LoadRun {
        workload: workload.into(),
        connections,
        requests: latencies.len(),
        wall_ms,
        rps: latencies.len() as f64 / (wall_ms / 1e3),
        p50_ms: percentile_ms(&latencies, 0.50),
        p99_ms: percentile_ms(&latencies, 0.99),
        // Filled in by `with_scrape` from the /v1/metrics deltas.
        server_p50_ms: 0.0,
        server_p99_ms: 0.0,
        server_503: 0,
        server_panics: 0,
    }
}

/// One `/v1/metrics?format=json` scrape, reduced to what the report
/// embeds: the per-endpoint handle-latency histograms and the
/// 503/panic counters (summed over shards).
#[derive(Default)]
struct Scrape {
    handle: Vec<(String, HistogramSnapshot)>,
    refused: u64,
    panics: u64,
}

impl Scrape {
    fn handle_for(&self, endpoint: &str) -> HistogramSnapshot {
        self.handle
            .iter()
            .find(|(name, _)| name == endpoint)
            .map(|(_, snap)| *snap)
            .unwrap_or_else(HistogramSnapshot::empty)
    }
}

/// Scrapes the server's metrics; a server without the flight recorder
/// (or an unreachable one) degrades to an all-zero scrape, never an
/// abort — metrics must not be able to fail a load run.
fn scrape(addr: &str) -> Scrape {
    Connection::open(addr)
        .ok()
        .and_then(|mut connection| connection.metrics_json().ok())
        .and_then(|body| parse_scrape(&body))
        .unwrap_or_default()
}

fn parse_scrape(body: &str) -> Option<Scrape> {
    let doc = JsonValue::parse(body).ok()?;
    let families = doc.as_object("metrics").ok()?.get_array("families").ok()?;
    let mut out = Scrape::default();
    for family in families {
        let family = family.as_object("family").ok()?;
        let name = family.get_str("name").ok()?;
        let samples = family.get_array("samples").ok()?;
        match name.as_str() {
            "updp_http_handle_seconds" => {
                for sample in samples {
                    let sample = sample.as_object("sample").ok()?;
                    let endpoint = sample
                        .get("labels")
                        .ok()?
                        .as_object("labels")
                        .ok()?
                        .get_str("endpoint")
                        .ok()?;
                    let mut snap = HistogramSnapshot::empty();
                    snap.sum_micros = sample.get_f64("sum_micros").ok()? as u64;
                    let buckets = sample.get_array("buckets").ok()?;
                    for (i, bucket) in buckets.iter().enumerate().take(BUCKETS) {
                        snap.counts[i] =
                            bucket.as_object("bucket").ok()?.get_f64("count").ok()? as u64;
                    }
                    out.handle.push((endpoint, snap));
                }
            }
            "updp_reactor_overloaded_total" | "updp_reactor_connections_rejected_total" => {
                for sample in samples {
                    out.refused += sample.as_object("sample").ok()?.get_f64("value").ok()? as u64;
                }
            }
            "updp_reactor_handler_panics_total" => {
                for sample in samples {
                    out.panics += sample.as_object("sample").ok()?.get_f64("value").ok()? as u64;
                }
            }
            _ => {}
        }
    }
    Some(out)
}

/// Which handle-latency histogram a run row reads.
fn workload_endpoint(workload: &str) -> &'static str {
    match workload {
        "streaming-append" => "/v1/append",
        "streaming-flush" => "/v1/flush",
        _ => "/v1/query",
    }
}

/// Runs `work` with a metrics scrape on either side and embeds the
/// server-side deltas into the returned rows.
fn with_scrape(addr: &str, work: impl FnOnce() -> Vec<LoadRun>) -> Vec<LoadRun> {
    let before = scrape(addr);
    let mut rows = work();
    let after = scrape(addr);
    let quantile_ms = |snap: &HistogramSnapshot, q: f64| {
        snap.quantile_micros(q)
            .map_or(0.0, |micros| micros as f64 / 1e3)
    };
    for row in &mut rows {
        let endpoint = workload_endpoint(&row.workload);
        let delta = after
            .handle_for(endpoint)
            .delta(&before.handle_for(endpoint));
        row.server_p50_ms = quantile_ms(&delta, 0.50);
        row.server_p99_ms = quantile_ms(&delta, 0.99);
        row.server_503 = after.refused.saturating_sub(before.refused) as usize;
        row.server_panics = after.panics.saturating_sub(before.panics) as usize;
    }
    rows
}

/// One repeated-quantile request (p90 at a tiny ε, hardened like the
/// batch workload).
fn quantile_query(dataset: &str, seed: u64) -> String {
    query_body(dataset, seed, false, &[("quantile", 1e-3, Some(0.9))])
}

/// `repeat-quantile-cold`: a fresh dataset before every request, so
/// every query discretizes and sorts from scratch — the pre-cache
/// cost. Registration is setup, not timed.
fn run_quantile_cold(addr: &str, requests: usize, records: usize) -> LoadRun {
    let mut connection = Connection::open(addr).unwrap_or_else(|e| die(&e.to_string()));
    let mut latencies = Vec::with_capacity(requests);
    let mut wall_ms = 0.0;
    // Unique names per loadgen run: a 409-reused dataset from an
    // earlier run against a long-lived server would already have a
    // warm grid cache, silently turning "cold" latencies warm.
    let run_tag = format!(
        "{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos())
            .unwrap_or(0)
    );
    for i in 0..requests {
        let name = format!("qcold-{run_tag}-{i}");
        match connection.register(&name, 1e12, &gaussian(records, 1_000 + i as u64)) {
            Ok(_) => {}
            Err(e) => die(&format!("register {name}: {e}")),
        }
        let sent = Instant::now();
        connection
            .query(&quantile_query(&name, i as u64))
            .unwrap_or_else(|e| die(&format!("query {name}: {e}")));
        let elapsed = sent.elapsed().as_secs_f64() * 1e3;
        latencies.push(elapsed);
        wall_ms += elapsed;
    }
    // Wall excludes the untimed registrations: sum of query latencies.
    summarize("repeat-quantile-cold", 1, latencies, wall_ms)
}

/// `repeat-quantile-warm`: one dataset queried `requests` times — the
/// `PreparedDataset` grid cache absorbs the sort after the first hit.
fn run_quantile_warm(addr: &str, requests: usize, records: usize) -> LoadRun {
    let mut connection = Connection::open(addr).unwrap_or_else(|e| die(&e.to_string()));
    match connection.register("qwarm", 1e12, &gaussian(records, 0xC0FFEE)) {
        Ok(_) | Err(updp_serve::client::ClientError::Status { status: 409, .. }) => {}
        Err(e) => die(&format!("register qwarm: {e}")),
    }
    let started = Instant::now();
    let mut latencies = Vec::with_capacity(requests);
    for i in 0..requests {
        let sent = Instant::now();
        connection
            .query(&quantile_query("qwarm", i as u64))
            .unwrap_or_else(|e| die(&format!("query qwarm: {e}")));
        latencies.push(sent.elapsed().as_secs_f64() * 1e3);
    }
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    summarize("repeat-quantile-warm", 1, latencies, wall_ms)
}

/// The `streaming` workload: interleaved buffered appends, explicit
/// flushes, and quantile queries on one warm dataset of `records`
/// rows, at `append_ratio` appends per `query_ratio` queries per
/// iteration. Returns the `streaming-append` / `streaming-flush` /
/// `streaming-query` rows.
fn run_streaming(
    addr: &str,
    iterations: usize,
    records: usize,
    append_ratio: usize,
    query_ratio: usize,
) -> Vec<LoadRun> {
    let mut connection = Connection::open(addr).unwrap_or_else(|e| die(&e.to_string()));
    match connection.register("stream", 1e12, &gaussian(records, 0x57EA4)) {
        Ok(_) | Err(updp_serve::client::ClientError::Status { status: 409, .. }) => {}
        Err(e) => die(&format!("register stream: {e}")),
    }
    // Warm the snapshot's sorted copy + grid (untimed): the workload
    // measures the steady streaming state, not the first cold query.
    connection
        .query(&quantile_query("stream", 0))
        .unwrap_or_else(|e| die(&format!("warm-up query: {e}")));

    let fresh_rows = gaussian(iterations * append_ratio, 0xF70C);
    let mut fresh = fresh_rows.iter();
    let mut append_lat = Vec::with_capacity(iterations * append_ratio);
    let mut flush_lat = Vec::with_capacity(iterations);
    let mut query_lat = Vec::with_capacity(iterations * query_ratio);
    for i in 0..iterations {
        for _ in 0..append_ratio {
            let row = [*fresh.next().expect("pre-sampled row")];
            let sent = Instant::now();
            connection
                .append("stream", &row)
                .unwrap_or_else(|e| die(&format!("append stream: {e}")));
            append_lat.push(sent.elapsed().as_secs_f64() * 1e3);
        }
        let sent = Instant::now();
        connection
            .flush("stream")
            .unwrap_or_else(|e| die(&format!("flush stream: {e}")));
        flush_lat.push(sent.elapsed().as_secs_f64() * 1e3);
        for q in 0..query_ratio {
            let seed = 1 + (i * query_ratio + q) as u64;
            let sent = Instant::now();
            connection
                .query(&quantile_query("stream", seed))
                .unwrap_or_else(|e| die(&format!("query stream: {e}")));
            query_lat.push(sent.elapsed().as_secs_f64() * 1e3);
        }
    }
    let wall = |lat: &[f64]| lat.iter().sum::<f64>();
    vec![
        summarize("streaming-append", 1, append_lat.clone(), wall(&append_lat)),
        summarize("streaming-flush", 1, flush_lat.clone(), wall(&flush_lat)),
        summarize("streaming-query", 1, query_lat.clone(), wall(&query_lat)),
    ]
}

fn main() {
    let mut addr: Option<String> = None;
    let mut requests = 500usize;
    let mut connections = vec![1usize, 8, 64, 256, 1024];
    let mut records = 10_000usize;
    let mut quantile_records = 100_000usize;
    let mut streaming_ratio = "1:1".to_string();
    let mut out_path = "BENCH_serve.json".to_string();
    let mut check = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| die(&format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--addr" => addr = Some(value("--addr")),
            "--requests" => {
                requests = value("--requests")
                    .parse()
                    .unwrap_or_else(|_| die("bad --requests"))
            }
            "--connections" => {
                connections = value("--connections")
                    .split(',')
                    .map(|tok| tok.trim().parse().unwrap_or_else(|_| die("bad --connections")))
                    .collect()
            }
            "--records" => {
                records = value("--records")
                    .parse()
                    .unwrap_or_else(|_| die("bad --records"))
            }
            "--quantile-records" => {
                quantile_records = value("--quantile-records")
                    .parse()
                    .unwrap_or_else(|_| die("bad --quantile-records"))
            }
            "--streaming-ratio" => streaming_ratio = value("--streaming-ratio"),
            "--out" => out_path = value("--out"),
            "--check" => check = true,
            _ => die("usage: loadgen [--addr HOST:PORT] [--requests N] [--connections a,b,…] [--records N] [--quantile-records N] [--streaming-ratio A:Q] [--out PATH] [--check]"),
        }
    }
    let (append_ratio, query_ratio) = streaming_ratio
        .split_once(':')
        .and_then(|(a, q)| Some((a.trim().parse().ok()?, q.trim().parse().ok()?)))
        .filter(|&(a, q): &(usize, usize)| a > 0 && q > 0)
        .unwrap_or_else(|| die("bad --streaming-ratio, need A:Q with A, Q >= 1"));
    if check {
        requests = 5;
        // 64 connections in smoke mode: exercises the reactor's
        // fan-in path (sharded accept, per-connection parsers) in CI,
        // not just the schema.
        connections = vec![1, 64];
        records = 2_000;
        quantile_records = 2_000;
    }

    // Self-contained mode: host an in-process server. Its write
    // buffer defers publication entirely to the streaming workload's
    // explicit `/v1/flush` calls (row/age thresholds out of reach), so
    // a burst of A appends demonstrably costs one snapshot.
    let mut server_thread = None;
    let addr = match addr {
        Some(addr) => addr,
        None => {
            let policy = FlushPolicy::buffered(usize::MAX, Duration::from_secs(86_400));
            let server = Server::bind_with_policy("127.0.0.1:0", Ledger::in_memory(), policy)
                .unwrap_or_else(|e| die(&format!("bind: {e}")));
            let local = server.local_addr().expect("bound listener has an address");
            eprintln!("loadgen: in-process server on {local}");
            server_thread = Some(std::thread::spawn(move || server.run()));
            local.to_string()
        }
    };

    let host_threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let mut runs: Vec<LoadRun> = Vec::new();
    for &c in &connections {
        eprintln!(
            "loadgen: level c = {c} ({} requests/connection)",
            requests_at(c, requests)
        );
        runs.extend(with_scrape(&addr, || {
            vec![run_level(&addr, c, requests, records)]
        }));
    }
    // The cache-effect pair: cold pays the sort per request, warm
    // reuses the snapshot's cached grid.
    let q_requests = if check { 3 } else { requests.min(100) };
    eprintln!(
        "loadgen: repeat-quantile cold/warm ({q_requests} requests, {quantile_records} records)"
    );
    runs.extend(with_scrape(&addr, || {
        vec![run_quantile_cold(&addr, q_requests, quantile_records)]
    }));
    runs.extend(with_scrape(&addr, || {
        vec![run_quantile_warm(&addr, q_requests, quantile_records)]
    }));
    // The streaming ingestion triple (schema v3): buffered appends,
    // one publication per flush, queries on freshly-published
    // snapshots with merge-maintained caches.
    let s_iterations = if check { 3 } else { requests.min(100) };
    eprintln!(
        "loadgen: streaming {append_ratio}:{query_ratio} ({s_iterations} iterations, {quantile_records} records)"
    );
    runs.extend(with_scrape(&addr, || {
        run_streaming(
            &addr,
            s_iterations,
            quantile_records,
            append_ratio,
            query_ratio,
        )
    }));
    let (host_kernel, host_arch) = host_meta();
    let report = ServeReport {
        schema: SCHEMA.into(),
        host_threads,
        host_kernel,
        host_arch,
        dataset_records: records,
        quantile_records,
        streaming_ratio: format!("{append_ratio}:{query_ratio}"),
        runs,
        note: if check {
            "smoke mode (--check): numbers are not a baseline".into()
        } else {
            let single_core_caveat = if host_threads == 1 {
                " CAVEAT: measured on 1 core — a closed-loop sweep on a saturated single core queues requests behind each other, so p50/p99 grow roughly linearly with the connection count (c × service time); flat-p99 fan-in is only observable with more cores than the request stream saturates."
            } else {
                ""
            };
            format!("hardened batch (mean + p90 + iqr) per request, epoll reactor transport; repeat-quantile cold = fresh dataset per request (pre-cache cost), warm = one dataset repeatedly (PreparedDataset grid cache); streaming = buffered 1-row appends + flush (one snapshot per burst, caches merge-maintained) + quantile queries on the fresh snapshot; host_threads = {host_threads}.{single_core_caveat}")
        },
    };

    let json = report.to_json();
    let parsed = ServeReport::from_json(&json)
        .unwrap_or_else(|e| panic!("schema round-trip failed to parse: {e}"));
    assert_eq!(parsed, report, "schema round-trip changed the report");

    if server_thread.is_some() {
        let mut connection = Connection::open(&addr).unwrap_or_else(|e| die(&e.to_string()));
        let _ = connection.shutdown();
    }
    if let Some(handle) = server_thread {
        let _ = handle.join();
    }

    if check {
        println!("loadgen --check OK: schema {SCHEMA} round-trips");
    } else {
        std::fs::write(&out_path, &json).unwrap_or_else(|e| die(&format!("write {out_path}: {e}")));
        println!("wrote {out_path}");
        print!("{json}");
    }
}
